module Generate = Lhws_dag.Generate
open Lhws_core
open Lhws_analysis

let series () =
  Sweep.speedups ~dag:(Generate.map_reduce ~n:16 ~leaf_work:3 ~latency:30) ~ps:[ 1; 2; 4 ] ()

let contains s affix = Astring.String.is_infix ~affix s

let test_csv_series () =
  let csv = Report.csv_of_series (series ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check bool) "header" true
    (contains (List.hd lines) "p,LHWS_rounds,LHWS_speedup,WS_rounds,WS_speedup");
  List.iteri
    (fun i line ->
      if i > 0 then
        Alcotest.(check int) "5 columns" 5 (List.length (String.split_on_char ',' line)))
    lines

let test_markdown_series () =
  let md = Report.markdown_of_series (series ()) in
  Alcotest.(check bool) "pipe table" true (contains md "| p | LHWS_rounds");
  Alcotest.(check bool) "separator" true (contains md "|---|");
  Alcotest.(check bool) "row for p=4" true (contains md "| 4 |")

let test_misaligned_rejected () =
  let s1 = series () in
  let s2 =
    Sweep.speedups ~dag:(Generate.map_reduce ~n:16 ~leaf_work:3 ~latency:30) ~ps:[ 1; 2 ] ()
  in
  match Report.csv_of_series [ List.hd s1; List.nth s2 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_csv_stats () =
  let r1 = Lhws_sim.run (Generate.diamond ()) ~p:1 in
  let r2 = Lhws_sim.run (Generate.diamond ()) ~p:2 in
  let csv = Report.csv_of_stats [ ("p1", r1.Run.stats); ("p2", r2.Run.stats) ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "run column" true (contains (List.hd lines) "run,rounds");
  Alcotest.(check bool) "labels present" true (contains csv "p1" && contains csv "p2")

let test_markdown_stats () =
  let r = Lhws_sim.run (Generate.diamond ()) ~p:1 in
  let md = Report.markdown_of_stats [ ("only", r.Run.stats) ] in
  Alcotest.(check bool) "table" true (contains md "| run | rounds");
  Alcotest.(check bool) "row" true (contains md "| only |")

let test_empty_stats () = Alcotest.(check string) "empty" "" (Report.csv_of_stats [])

let test_write_file () =
  let path = Filename.temp_file "lhws_report" ".csv" in
  Report.write_file path "a,b\n1,2\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "written" "a,b" line

let test_gantt_small () =
  let g = Generate.diamond () in
  let run = Lhws_sim.run ~config:{ Config.default with trace = true } g ~p:2 in
  let chart = Gantt.render_run ~workers:2 run in
  Alcotest.(check bool) "worker rows" true (contains chart "w0" && contains chart "w1");
  (* the root (vertex 0) executes at round 0 on worker 0 *)
  Alcotest.(check bool) "root glyph" true (contains chart "w0    0")

let test_gantt_truncation () =
  let g = Generate.chain ~n:50 () in
  let run = Lhws_sim.run ~config:{ Config.default with trace = true } g ~p:1 in
  let chart = Gantt.render ~workers:1 ~max_columns:10 (Run.trace_exn run) in
  Alcotest.(check bool) "truncation note" true (contains chart "more rounds")

let test_gantt_pfor_glyph () =
  let g = Generate.resume_burst ~n:8 ~leaf_work:1 ~latency:10 in
  let config = { Config.analysis with fast_forward = true } in
  let run = Lhws_sim.run ~config g ~p:1 in
  let chart = Gantt.render_run ~workers:1 ~max_columns:120 run in
  Alcotest.(check bool) "pfor glyph appears" true (contains chart "*")

let test_gantt_empty () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  Alcotest.(check string) "empty" "(empty trace)\n" (Gantt.render ~workers:2 tr)

let () =
  Alcotest.run "report"
    [
      ( "series",
        [
          Alcotest.test_case "csv" `Quick test_csv_series;
          Alcotest.test_case "markdown" `Quick test_markdown_series;
          Alcotest.test_case "misaligned rejected" `Quick test_misaligned_rejected;
        ] );
      ( "stats",
        [
          Alcotest.test_case "csv" `Quick test_csv_stats;
          Alcotest.test_case "markdown" `Quick test_markdown_stats;
          Alcotest.test_case "empty" `Quick test_empty_stats;
          Alcotest.test_case "write file" `Quick test_write_file;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "small" `Quick test_gantt_small;
          Alcotest.test_case "truncation" `Quick test_gantt_truncation;
          Alcotest.test_case "pfor glyph" `Quick test_gantt_pfor_glyph;
          Alcotest.test_case "empty" `Quick test_gantt_empty;
        ] );
    ]
