module Dot = Lhws_dag.Dot
module Generate = Lhws_dag.Generate

let contains s affix = Astring.String.is_infix ~affix s

let test_basic () =
  let s = Dot.to_dot (Generate.diamond ()) in
  Alcotest.(check bool) "digraph header" true (contains s "digraph dag {");
  Alcotest.(check bool) "edge 0->1" true (contains s "v0 -> v1");
  Alcotest.(check bool) "closing brace" true (contains s "}")

let test_heavy_styling () =
  let s = Dot.to_dot (Generate.single_latency ~delta:7) in
  Alcotest.(check bool) "bold heavy edge" true (contains s "style=bold");
  Alcotest.(check bool) "weight label" true (contains s "label=\"7\"")

let test_labels_and_ids () =
  let g = Generate.map_reduce ~n:2 ~leaf_work:1 ~latency:3 in
  let s = Dot.to_dot g in
  Alcotest.(check bool) "getValue label" true (contains s "getValue");
  let s_noids = Dot.to_dot ~show_ids:false g in
  Alcotest.(check bool) "no id suffix on labelled" true (not (contains s_noids "getValue 0\\n"))

let test_name () =
  let s = Dot.to_dot ~name:"myname" (Generate.diamond ()) in
  Alcotest.(check bool) "custom name" true (contains s "digraph myname {")

let test_write_file () =
  let path = Filename.temp_file "lhws" ".dot" in
  Dot.write_file path (Generate.diamond ());
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 20)

let test_vertex_count () =
  let g = Generate.fib ~n:6 () in
  let s = Dot.to_dot g in
  let lines = String.split_on_char '\n' s in
  let node_lines =
    List.filter (fun l -> contains l "[label=" && not (contains l "->")) lines
  in
  Alcotest.(check int) "one node line per vertex" (Lhws_dag.Dag.num_vertices g)
    (List.length node_lines)

let () =
  Alcotest.run "dot"
    [
      ( "export",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "heavy styling" `Quick test_heavy_styling;
          Alcotest.test_case "labels and ids" `Quick test_labels_and_ids;
          Alcotest.test_case "custom name" `Quick test_name;
          Alcotest.test_case "write file" `Quick test_write_file;
          Alcotest.test_case "vertex count" `Quick test_vertex_count;
        ] );
    ]
