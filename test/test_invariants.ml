module Generate = Lhws_dag.Generate
open Lhws_core
open Lhws_analysis

let traced_run ?(config = Config.analysis) dag ~p =
  let run = Lhws_sim.run ~config dag ~p in
  Run.trace_exn run

let test_depth_report_fib () =
  (* No latency: the enabling tree is the dag's own spanning tree, so
     d(v) = d_G(v) exactly. *)
  let dag = Generate.fib ~n:11 () in
  let tr = traced_run dag ~p:4 in
  let r = Invariants.depth_report ~suspension_width:0 dag tr in
  Alcotest.(check (float 1e-9)) "max ratio is 1" 1.0 r.Invariants.max_ratio;
  Alcotest.(check int) "no violations" 0 r.Invariants.violations;
  Alcotest.(check bool) "lemma2_ok" true (Invariants.lemma2_ok r)

let test_depth_report_grid () =
  List.iter
    (fun (name, dag, u) ->
      List.iter
        (fun p ->
          let tr = traced_run dag ~p in
          let r = Invariants.depth_report ~suspension_width:u dag tr in
          Alcotest.(check bool)
            (Printf.sprintf "%s P=%d max_ratio=%.2f <= bound=%.2f" name p r.Invariants.max_ratio
               r.Invariants.bound)
            true (Invariants.lemma2_ok r))
        [ 1; 2; 4; 8 ])
    [
      ("map_reduce", Generate.map_reduce ~n:24 ~leaf_work:3 ~latency:30, 24);
      ("server", Generate.server ~n:10 ~f_work:5 ~latency:12, 1);
      ("pipeline", Generate.pipeline ~stages:3 ~items:6 ~latency:9, 6);
    ]

let test_enabling_span_vs_span () =
  let dag = Generate.map_reduce ~n:16 ~leaf_work:2 ~latency:25 in
  let tr = traced_run dag ~p:2 in
  let r = Invariants.depth_report ~suspension_width:16 dag tr in
  Alcotest.(check bool) "S* >= something" true (r.Invariants.enabling_span > 0);
  Alcotest.(check bool) "S* within Corollary 1" true
    (float_of_int r.Invariants.enabling_span
    <= 2. *. float_of_int r.Invariants.span *. (1. +. Bounds.lg 16))

let test_pp () =
  let dag = Generate.diamond () in
  let tr = traced_run dag ~p:1 in
  let r = Invariants.depth_report dag tr in
  let s = Format.asprintf "%a" Invariants.pp_depth_report r in
  Alcotest.(check bool) "mentions violations" true
    (Astring.String.is_infix ~affix:"violations" s)

let prop_lemma2_random =
  QCheck.Test.make ~name:"Lemma 2 depth bound on random dags" ~count:30
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 6);
      let dag =
        Generate.random_fork_join ~seed ~size_hint:100 ~latency_prob:0.25 ~max_latency:15
      in
      let tr = traced_run dag ~p in
      let r = Invariants.depth_report dag tr in
      Invariants.lemma2_ok r)

let () =
  Alcotest.run "invariants"
    [
      ( "lemma 2",
        [
          Alcotest.test_case "fib exact depths" `Quick test_depth_report_fib;
          Alcotest.test_case "grid" `Slow test_depth_report_grid;
          Alcotest.test_case "enabling span" `Quick test_enabling_span_vs_span;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_lemma2_random ]);
    ]
