open Lhws_runtime

let test_empty () =
  let t = Timer.create () in
  Alcotest.(check int) "pending" 0 (Timer.pending t);
  Alcotest.(check int) "poll fires nothing" 0 (Timer.poll t);
  Alcotest.(check bool) "no deadline" true (Timer.next_deadline t = None)

let test_fires_due () =
  let t = Timer.create () in
  let hits = ref [] in
  let now = Unix.gettimeofday () in
  Timer.add t ~deadline:(now -. 0.1) (fun () -> hits := "past" :: !hits);
  Timer.add t ~deadline:(now +. 60.) (fun () -> hits := "future" :: !hits);
  Alcotest.(check int) "one fired" 1 (Timer.poll t);
  Alcotest.(check (list string)) "the past one" [ "past" ] !hits;
  Alcotest.(check int) "one pending" 1 (Timer.pending t)

let test_order () =
  let t = Timer.create () in
  let hits = ref [] in
  let now = Unix.gettimeofday () in
  Timer.add t ~deadline:(now -. 0.01) (fun () -> hits := 2 :: !hits);
  Timer.add t ~deadline:(now -. 0.03) (fun () -> hits := 1 :: !hits);
  Timer.add t ~deadline:(now -. 0.001) (fun () -> hits := 3 :: !hits);
  Alcotest.(check int) "all fired" 3 (Timer.poll t);
  Alcotest.(check (list int)) "deadline order" [ 1; 2; 3 ] (List.rev !hits)

let test_add_in () =
  let t = Timer.create () in
  let fired = ref false in
  Timer.add_in t ~seconds:0.02 (fun () -> fired := true);
  Alcotest.(check int) "not due yet" 0 (Timer.poll t);
  Unix.sleepf 0.03;
  Alcotest.(check int) "due now" 1 (Timer.poll t);
  Alcotest.(check bool) "callback ran" true !fired

let test_next_deadline () =
  let t = Timer.create () in
  Timer.add t ~deadline:50. (fun () -> ());
  Timer.add t ~deadline:10. (fun () -> ());
  (match Timer.next_deadline t with
  | Some d -> Alcotest.(check (float 1e-9)) "min deadline" 10. d
  | None -> Alcotest.fail "expected a deadline");
  Alcotest.(check int) "pending" 2 (Timer.pending t)

let test_many () =
  let t = Timer.create () in
  let count = ref 0 in
  let now = Unix.gettimeofday () in
  for i = 1 to 1000 do
    Timer.add t ~deadline:(now -. (0.0001 *. float_of_int i)) (fun () -> incr count)
  done;
  Alcotest.(check int) "all fired" 1000 (Timer.poll t);
  Alcotest.(check int) "count" 1000 !count

let test_cancel () =
  let t = Timer.create () in
  let hits = ref [] in
  let now = Unix.gettimeofday () in
  Timer.add t ~deadline:(now -. 0.03) (fun () -> hits := "a" :: !hits);
  let h = Timer.add_cancellable t ~deadline:(now -. 0.02) (fun () -> hits := "x" :: !hits) in
  Timer.add t ~deadline:(now -. 0.01) (fun () -> hits := "b" :: !hits);
  Timer.cancel t h;
  Alcotest.(check int) "entry removed from heap" 2 (Timer.pending t);
  Alcotest.(check int) "survivors fire" 2 (Timer.poll t);
  Alcotest.(check (list string)) "cancelled one skipped" [ "a"; "b" ] (List.rev !hits);
  (* Idempotent, and harmless after the heap has drained. *)
  Timer.cancel t h;
  Alcotest.(check int) "empty" 0 (Timer.pending t)

let test_cancel_after_fire () =
  let t = Timer.create () in
  let fired = ref 0 in
  let now = Unix.gettimeofday () in
  let h = Timer.add_cancellable t ~deadline:(now -. 0.01) (fun () -> incr fired) in
  Alcotest.(check int) "fires" 1 (Timer.poll t);
  Timer.cancel t h;
  Alcotest.(check int) "cancel after fire is a no-op" 1 !fired;
  Alcotest.(check int) "nothing pending" 0 (Timer.pending t)

let test_cancel_updates_earliest () =
  let t = Timer.create () in
  let h = Timer.add_cancellable t ~deadline:10. (fun () -> ()) in
  Timer.add t ~deadline:50. (fun () -> ());
  Alcotest.(check (float 1e-9)) "earliest is 10" 10. (Timer.next_deadline_hint t);
  Timer.cancel t h;
  Alcotest.(check (float 1e-9)) "earliest refreshed" 50. (Timer.next_deadline_hint t);
  (match Timer.next_deadline t with
  | Some d -> Alcotest.(check (float 1e-9)) "heap agrees" 50. d
  | None -> Alcotest.fail "expected a deadline")

(* Interior removal must restore heap order in both directions. *)
let test_cancel_many_random () =
  let t = Timer.create () in
  let fired = ref [] in
  let now = Unix.gettimeofday () in
  let handles =
    List.init 64 (fun i ->
        (i, Timer.add_cancellable t ~deadline:(now -. (0.001 *. float_of_int (64 - i)))
              (fun () -> fired := i :: !fired)))
  in
  let cancelled, kept = List.partition (fun (i, _) -> i mod 3 = 0) handles in
  List.iter (fun (_, h) -> Timer.cancel t h) cancelled;
  Alcotest.(check int) "heap shrank" (List.length kept) (Timer.pending t);
  Alcotest.(check int) "kept fire" (List.length kept) (Timer.poll t);
  Alcotest.(check (list int)) "deadline order preserved"
    (List.map fst kept) (List.rev !fired)

let test_concurrent_add_poll () =
  let t = Timer.create () in
  let fired = Atomic.make 0 in
  let adders =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Timer.add_in t ~seconds:0.0001 (fun () -> Atomic.incr fired)
            done))
  in
  let stop = Atomic.make false in
  let poller =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          ignore (Timer.poll t);
          Domain.cpu_relax ()
        done)
  in
  Array.iter Domain.join adders;
  Unix.sleepf 0.01;
  while Timer.pending t > 0 do
    ignore (Timer.poll t)
  done;
  Atomic.set stop true;
  Domain.join poller;
  Alcotest.(check int) "all callbacks fired" 1500 (Atomic.get fired)

let () =
  Alcotest.run "timer"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "fires due" `Quick test_fires_due;
          Alcotest.test_case "order" `Quick test_order;
          Alcotest.test_case "add_in" `Quick test_add_in;
          Alcotest.test_case "next deadline" `Quick test_next_deadline;
          Alcotest.test_case "many" `Quick test_many;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire;
          Alcotest.test_case "cancel updates earliest" `Quick test_cancel_updates_earliest;
          Alcotest.test_case "cancel many random" `Quick test_cancel_many_random;
        ] );
      ("concurrency", [ Alcotest.test_case "add vs poll" `Slow test_concurrent_add_poll ]);
    ]
