open Lhws_runtime

let test_empty () =
  let t = Timer.create () in
  Alcotest.(check int) "pending" 0 (Timer.pending t);
  Alcotest.(check int) "poll fires nothing" 0 (Timer.poll t);
  Alcotest.(check bool) "no deadline" true (Timer.next_deadline t = None)

let test_fires_due () =
  let t = Timer.create () in
  let hits = ref [] in
  let now = Unix.gettimeofday () in
  Timer.add t ~deadline:(now -. 0.1) (fun () -> hits := "past" :: !hits);
  Timer.add t ~deadline:(now +. 60.) (fun () -> hits := "future" :: !hits);
  Alcotest.(check int) "one fired" 1 (Timer.poll t);
  Alcotest.(check (list string)) "the past one" [ "past" ] !hits;
  Alcotest.(check int) "one pending" 1 (Timer.pending t)

let test_order () =
  let t = Timer.create () in
  let hits = ref [] in
  let now = Unix.gettimeofday () in
  Timer.add t ~deadline:(now -. 0.01) (fun () -> hits := 2 :: !hits);
  Timer.add t ~deadline:(now -. 0.03) (fun () -> hits := 1 :: !hits);
  Timer.add t ~deadline:(now -. 0.001) (fun () -> hits := 3 :: !hits);
  Alcotest.(check int) "all fired" 3 (Timer.poll t);
  Alcotest.(check (list int)) "deadline order" [ 1; 2; 3 ] (List.rev !hits)

let test_add_in () =
  let t = Timer.create () in
  let fired = ref false in
  Timer.add_in t ~seconds:0.02 (fun () -> fired := true);
  Alcotest.(check int) "not due yet" 0 (Timer.poll t);
  Unix.sleepf 0.03;
  Alcotest.(check int) "due now" 1 (Timer.poll t);
  Alcotest.(check bool) "callback ran" true !fired

let test_next_deadline () =
  let t = Timer.create () in
  Timer.add t ~deadline:50. (fun () -> ());
  Timer.add t ~deadline:10. (fun () -> ());
  (match Timer.next_deadline t with
  | Some d -> Alcotest.(check (float 1e-9)) "min deadline" 10. d
  | None -> Alcotest.fail "expected a deadline");
  Alcotest.(check int) "pending" 2 (Timer.pending t)

let test_many () =
  let t = Timer.create () in
  let count = ref 0 in
  let now = Unix.gettimeofday () in
  for i = 1 to 1000 do
    Timer.add t ~deadline:(now -. (0.0001 *. float_of_int i)) (fun () -> incr count)
  done;
  Alcotest.(check int) "all fired" 1000 (Timer.poll t);
  Alcotest.(check int) "count" 1000 !count

let test_concurrent_add_poll () =
  let t = Timer.create () in
  let fired = Atomic.make 0 in
  let adders =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 500 do
              Timer.add_in t ~seconds:0.0001 (fun () -> Atomic.incr fired)
            done))
  in
  let stop = Atomic.make false in
  let poller =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          ignore (Timer.poll t);
          Domain.cpu_relax ()
        done)
  in
  Array.iter Domain.join adders;
  Unix.sleepf 0.01;
  while Timer.pending t > 0 do
    ignore (Timer.poll t)
  done;
  Atomic.set stop true;
  Domain.join poller;
  Alcotest.(check int) "all callbacks fired" 1500 (Atomic.get fired)

let () =
  Alcotest.run "timer"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "fires due" `Quick test_fires_due;
          Alcotest.test_case "order" `Quick test_order;
          Alcotest.test_case "add_in" `Quick test_add_in;
          Alcotest.test_case "next deadline" `Quick test_next_deadline;
          Alcotest.test_case "many" `Quick test_many;
        ] );
      ("concurrency", [ Alcotest.test_case "add vs poll" `Slow test_concurrent_add_poll ]);
    ]
