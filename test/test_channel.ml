open Lhws_runtime
module Pool = Lhws_pool

let in_pool ?(workers = 2) f = Pool.with_pool ~workers (fun p -> Pool.run p (fun () -> f p))

let test_send_then_recv () =
  in_pool (fun _ ->
      let ch = Channel.create () in
      Channel.send ch 41;
      Channel.send ch 42;
      Alcotest.(check int) "fifo 1" 41 (Channel.recv ch);
      Alcotest.(check int) "fifo 2" 42 (Channel.recv ch))

let test_recv_suspends_until_send () =
  in_pool (fun p ->
      let ch = Channel.create () in
      let receiver = Pool.async p (fun () -> Channel.recv ch) in
      (* The sender runs after the receiver has parked. *)
      Pool.sleep p 0.005;
      Channel.send ch 99;
      Alcotest.(check int) "received" 99 (Pool.await receiver))

let test_try_ops () =
  in_pool (fun _ ->
      let ch = Channel.create ~capacity:1 () in
      Alcotest.(check (option int)) "empty" None (Channel.try_recv ch);
      Alcotest.(check bool) "send ok" true (Channel.try_send ch 1);
      Alcotest.(check bool) "full" false (Channel.try_send ch 2);
      Alcotest.(check int) "length" 1 (Channel.length ch);
      Alcotest.(check (option int)) "take" (Some 1) (Channel.try_recv ch))

let test_bounded_send_suspends () =
  in_pool (fun p ->
      let ch = Channel.create ~capacity:2 () in
      let producer =
        Pool.async p (fun () ->
            for i = 1 to 6 do
              Channel.send ch i
            done;
            "done")
      in
      Pool.sleep p 0.005;
      (* Producer can be at most 2 ahead. *)
      Alcotest.(check int) "buffered at capacity" 2 (Channel.length ch);
      let got = List.init 6 (fun _ -> Channel.recv ch) in
      Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5; 6 ] got;
      Alcotest.(check string) "producer finished" "done" (Pool.await producer))

let test_many_producers_consumers () =
  in_pool ~workers:2 (fun p ->
      let ch = Channel.create ~capacity:8 () in
      let producers =
        List.init 4 (fun k ->
            Pool.async p (fun () ->
                for i = 0 to 24 do
                  Channel.send ch ((k * 100) + i)
                done))
      in
      let consumers =
        List.init 2 (fun _ ->
            Pool.async p (fun () ->
                let acc = ref 0 in
                for _ = 1 to 50 do
                  acc := !acc + Channel.recv ch
                done;
                !acc))
      in
      List.iter (Pool.await) producers;
      let total = List.fold_left (fun a c -> a + Pool.await c) 0 consumers in
      let expect = List.init 4 (fun k -> List.init 25 (fun i -> (k * 100) + i)) in
      let expect = List.fold_left (fun a l -> a + List.fold_left ( + ) 0 l) 0 expect in
      Alcotest.(check int) "all elements consumed once" expect total)

let test_close_wakes_receivers () =
  in_pool (fun p ->
      let ch : int Channel.t = Channel.create () in
      let receiver =
        Pool.async p (fun () ->
            match Channel.recv ch with
            | _ -> "value"
            | exception Channel.Closed -> "closed")
      in
      Pool.sleep p 0.005;
      Channel.close ch;
      Alcotest.(check string) "woken with Closed" "closed" (Pool.await receiver))

let test_close_semantics () =
  in_pool (fun _ ->
      let ch = Channel.create () in
      Channel.send ch 7;
      Channel.close ch;
      Alcotest.(check bool) "is_closed" true (Channel.is_closed ch);
      Alcotest.(check int) "drain buffered" 7 (Channel.recv ch);
      (match Channel.recv ch with
      | _ -> Alcotest.fail "expected Closed"
      | exception Channel.Closed -> ());
      (match Channel.send ch 8 with
      | () -> Alcotest.fail "expected Closed"
      | exception Channel.Closed -> ());
      (* close is idempotent *)
      Channel.close ch)

let test_close_wakes_senders () =
  in_pool (fun p ->
      let ch = Channel.create ~capacity:1 () in
      Channel.send ch 1;
      let sender =
        Pool.async p (fun () ->
            match Channel.send ch 2 with
            | () -> "sent"
            | exception Channel.Closed -> "closed")
      in
      Pool.sleep p 0.005;
      Channel.close ch;
      Alcotest.(check string) "sender woken with Closed" "closed" (Pool.await sender))

let test_capacity_invalid () =
  match Channel.create ~capacity:0 () with
  | (_ : int Channel.t) -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pipeline_stages () =
  (* Three stages connected by channels: a miniature of the paper's
     "interacting computations". *)
  in_pool ~workers:2 (fun p ->
      let a = Channel.create () and b = Channel.create () in
      let stage1 =
        Pool.async p (fun () ->
            for i = 1 to 20 do
              Channel.send a (i * 2)
            done;
            Channel.close a)
      in
      let stage2 =
        Pool.async p (fun () ->
            (try
               while true do
                 Channel.send b (Channel.recv a + 1)
               done
             with Channel.Closed -> ());
            Channel.close b)
      in
      let acc = ref [] in
      (try
         while true do
           acc := Channel.recv b :: !acc
         done
       with Channel.Closed -> ());
      Pool.await stage1;
      Pool.await stage2;
      Alcotest.(check (list int)) "pipeline output"
        (List.init 20 (fun i -> ((i + 1) * 2) + 1))
        (List.rev !acc))

(* Model-based property: an arbitrary sequence of non-suspending channel
   operations behaves like a FIFO queue with the same capacity. *)
let prop_model =
  QCheck.Test.make ~name:"try_send/try_recv match a queue model" ~count:300
    QCheck.(pair (int_range 1 4) (list (int_bound 2)))
    (fun (capacity, ops) ->
      QCheck.assume (capacity >= 1);
      let ch = Channel.create ~capacity () in
      let model = Queue.create () in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              let sent = Channel.try_send ch !counter in
              let model_sent = Queue.length model < capacity in
              if model_sent then Queue.add !counter model;
              sent = model_sent
          | 1 -> Channel.try_recv ch = Queue.take_opt model
          | _ -> Channel.length ch = Queue.length model)
        ops)

let () =
  Alcotest.run "channel"
    [
      ( "basics",
        [
          Alcotest.test_case "send then recv" `Quick test_send_then_recv;
          Alcotest.test_case "recv suspends" `Quick test_recv_suspends_until_send;
          Alcotest.test_case "try ops" `Quick test_try_ops;
          Alcotest.test_case "capacity invalid" `Quick test_capacity_invalid;
        ] );
      ( "bounded",
        [ Alcotest.test_case "send suspends at capacity" `Quick test_bounded_send_suspends ] );
      ( "concurrency",
        [ Alcotest.test_case "producers/consumers" `Quick test_many_producers_consumers ] );
      ( "close",
        [
          Alcotest.test_case "wakes receivers" `Quick test_close_wakes_receivers;
          Alcotest.test_case "semantics" `Quick test_close_semantics;
          Alcotest.test_case "wakes senders" `Quick test_close_wakes_senders;
        ] );
      ("pipeline", [ Alcotest.test_case "three stages" `Quick test_pipeline_stages ]);
      ("model", [ QCheck_alcotest.to_alcotest prop_model ]);
    ]
