module Dag = Lhws_dag.Dag
module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core

let check = Alcotest.(check int)
let traced = { Config.default with trace = true }
let run ?(config = traced) dag ~p = Ws_sim.run ~config dag ~p

let test_chain_p1 () =
  let g = Generate.chain ~n:30 () in
  let r = run g ~p:1 in
  check "rounds = work" 30 r.Run.rounds

let test_single_latency_blocks () =
  (* Blocking semantics: the worker waits out the whole latency. *)
  let g = Generate.single_latency ~delta:10 in
  let r = run g ~p:1 in
  check "rounds = delta + 1" 11 r.Run.rounds;
  check "blocked rounds" 9 r.Run.stats.Stats.blocked_rounds

let test_latency_serializes () =
  (* A chain with a heavy edge every 2 vertices: the blocking scheduler
     pays W + total latency on one worker. *)
  let g = Generate.chain ~latency_every:2 ~latency:6 ~n:11 () in
  let r = run g ~p:1 in
  check "rounds = W + latency" (11 + Metrics.total_latency g) r.Run.rounds

let test_mapreduce_blocking_cost () =
  (* On one worker, every leaf's latency is paid sequentially. *)
  let n = 10 and latency = 50 in
  let g = Generate.map_reduce ~n ~leaf_work:2 ~latency in
  let r = run g ~p:1 in
  check "rounds = W + n * (delta-1)" (Metrics.work g + (n * (latency - 1))) r.Run.rounds

let test_all_executed_and_valid () =
  let g = Generate.map_reduce ~n:20 ~leaf_work:3 ~latency:12 in
  List.iter
    (fun p ->
      let r = run g ~p in
      check "all vertices" (Metrics.work g) r.Run.stats.Stats.vertices_executed;
      Schedule.check_exn g (Run.trace_exn r);
      Alcotest.(check bool) "balanced" true (Stats.balanced r.Run.stats))
    [ 1; 2; 4; 8 ]

let test_determinism () =
  let g = Generate.map_reduce ~n:16 ~leaf_work:3 ~latency:9 in
  let r1 = run g ~p:4 and r2 = run g ~p:4 in
  check "same rounds" r1.Run.rounds r2.Run.rounds;
  Alcotest.(check bool) "same schedule" true
    (Trace.executions (Run.trace_exn r1) = Trace.executions (Run.trace_exn r2))

let test_steals_during_block () =
  (* While one worker is blocked, its deque remains stealable: with two
     workers, a map-reduce of two leaves overlaps the two latencies. *)
  let g = Generate.map_reduce ~n:2 ~leaf_work:2 ~latency:40 in
  let r1 = run g ~p:1 in
  let r2 = run g ~p:2 in
  Alcotest.(check bool) "P=2 overlaps blocking" true (r2.Run.rounds < r1.Run.rounds - 20)

let test_fib_matches_lhws () =
  (* With no heavy edges both schedulers do essentially the same thing. *)
  let g = Generate.fib ~n:12 () in
  let ws = run g ~p:1 in
  let lh = Lhws_sim.run ~config:traced g ~p:1 in
  check "same rounds at P=1" lh.Run.rounds ws.Run.rounds

let test_fast_forward_equivalence () =
  let g = Generate.map_reduce ~n:6 ~leaf_work:2 ~latency:60 in
  let rff = run ~config:{ traced with fast_forward = true } g ~p:2 in
  let rslow = run ~config:{ traced with fast_forward = false } g ~p:2 in
  check "same vertices" rff.Run.stats.Stats.vertices_executed
    rslow.Run.stats.Stats.vertices_executed;
  check "same rounds" rff.Run.rounds rslow.Run.rounds;
  Schedule.check_exn g (Run.trace_exn rff)

let test_invalid_p () =
  match Ws_sim.run (Generate.diamond ()) ~p:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let random_dag seed =
  Generate.random_fork_join ~seed ~size_hint:100 ~latency_prob:0.25 ~max_latency:15

let prop_valid_schedules =
  QCheck.Test.make ~name:"random dags: WS schedule valid" ~count:40
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 5);
      let g = random_dag seed in
      let r = run g ~p in
      Schedule.valid g (Run.trace_exn r)
      && r.Run.stats.Stats.vertices_executed = Metrics.work g)

let prop_ws_pays_latency_p1 =
  QCheck.Test.make ~name:"P=1: WS rounds >= W + critical latency" ~count:40 QCheck.small_int
    (fun seed ->
      let g = random_dag seed in
      let r = run g ~p:1 in
      r.Run.rounds >= Metrics.work g + Metrics.critical_path_latency g)

let () =
  Alcotest.run "ws_sim"
    [
      ( "unit",
        [
          Alcotest.test_case "chain P=1" `Quick test_chain_p1;
          Alcotest.test_case "single latency blocks" `Quick test_single_latency_blocks;
          Alcotest.test_case "latency serializes" `Quick test_latency_serializes;
          Alcotest.test_case "map-reduce blocking cost" `Quick test_mapreduce_blocking_cost;
          Alcotest.test_case "all executed, valid" `Quick test_all_executed_and_valid;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "steals during block" `Quick test_steals_during_block;
          Alcotest.test_case "fib matches LHWS" `Quick test_fib_matches_lhws;
          Alcotest.test_case "fast-forward equivalence" `Quick test_fast_forward_equivalence;
          Alcotest.test_case "invalid p" `Quick test_invalid_p;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_valid_schedules;
          QCheck_alcotest.to_alcotest prop_ws_pays_latency_p1;
        ] );
    ]
