module Dag = Lhws_dag.Dag
module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core

let check = Alcotest.(check int)

let traced = { Config.default with trace = true }

let run ?(config = traced) dag ~p = Lhws_sim.run ~config dag ~p

let test_single_vertex () =
  let b = Dag.Builder.create () in
  let _ = Dag.Builder.add_vertex b in
  let g = Dag.Builder.build b in
  let r = run g ~p:1 in
  check "one round" 1 r.Run.rounds;
  check "one vertex" 1 r.Run.stats.Stats.vertices_executed

let test_chain_p1 () =
  (* A pure chain on one worker executes one vertex per round. *)
  let g = Generate.chain ~n:25 () in
  let r = run g ~p:1 in
  check "rounds = work" 25 r.Run.rounds;
  check "no steals succeed" 0 r.Run.stats.Stats.steals_ok

let test_chain_extra_workers_useless () =
  let g = Generate.chain ~n:25 () in
  let r1 = run g ~p:1 in
  let r4 = run g ~p:4 in
  check "same rounds" r1.Run.rounds r4.Run.rounds

let test_single_latency () =
  (* root at round 0; final ready at round delta; the scheduler needs two
     more rounds to switch back to the resumed deque and execute. *)
  let g = Generate.single_latency ~delta:10 in
  let r = run g ~p:1 in
  Alcotest.(check bool) "rounds >= delta + 1" true (r.Run.rounds >= 11);
  Alcotest.(check bool) "rounds <= delta + 4" true (r.Run.rounds <= 14);
  check "one suspension" 1 r.Run.stats.Stats.suspensions;
  check "one resume" 1 r.Run.stats.Stats.resumes

let test_all_executed_and_valid () =
  let g = Generate.map_reduce ~n:30 ~leaf_work:4 ~latency:20 in
  List.iter
    (fun p ->
      let r = run g ~p in
      check "all vertices" (Metrics.work g) r.Run.stats.Stats.vertices_executed;
      Schedule.check_exn g (Run.trace_exn r))
    [ 1; 2; 3; 5; 8 ]

let test_determinism () =
  let g = Generate.map_reduce ~n:20 ~leaf_work:3 ~latency:15 in
  let r1 = run g ~p:4 in
  let r2 = run g ~p:4 in
  check "same rounds" r1.Run.rounds r2.Run.rounds;
  check "same steals" r1.Run.stats.Stats.steals_ok r2.Run.stats.Stats.steals_ok;
  Alcotest.(check bool) "same schedule" true
    (Trace.executions (Run.trace_exn r1) = Trace.executions (Run.trace_exn r2))

let test_seed_changes_schedule () =
  let g = Generate.map_reduce ~n:20 ~leaf_work:3 ~latency:15 in
  let r1 = run ~config:{ traced with seed = 1 } g ~p:4 in
  let r2 = run ~config:{ traced with seed = 2 } g ~p:4 in
  (* The schedules almost surely differ; the executed set never does. *)
  check "same vertices" r1.Run.stats.Stats.vertices_executed
    r2.Run.stats.Stats.vertices_executed

let test_token_balance () =
  let g = Generate.map_reduce ~n:25 ~leaf_work:5 ~latency:30 in
  List.iter
    (fun p ->
      let r = run g ~p in
      Alcotest.(check bool) (Printf.sprintf "balanced P=%d" p) true (Stats.balanced r.Run.stats))
    [ 1; 2; 4; 7 ]

let test_server_single_deque () =
  (* U = 1: every worker keeps at most one live deque (Lemma 7 is tight). *)
  let g = Generate.server ~n:12 ~f_work:6 ~latency:9 in
  List.iter
    (fun p ->
      let r = run g ~p in
      check (Printf.sprintf "one deque P=%d" p) 1 r.Run.stats.Stats.max_deques_per_worker)
    [ 1; 2; 4 ]

let test_map_reduce_suspensions () =
  let n = 16 in
  let g = Generate.map_reduce ~n ~leaf_work:2 ~latency:50 in
  let r = run g ~p:4 in
  check "n suspensions" n r.Run.stats.Stats.suspensions;
  check "n resumes" n r.Run.stats.Stats.resumes;
  Alcotest.(check bool) "live suspended le U" true (r.Run.stats.Stats.max_live_suspended <= n)

let test_pfor_work_bounded () =
  let g = Generate.map_reduce ~n:64 ~leaf_work:1 ~latency:100 in
  let r = run ~config:{ traced with wrap_single_resume = true } g ~p:2 in
  Alcotest.(check bool) "W + Wpfor <= 2W" true
    (r.Run.stats.Stats.vertices_executed + r.Run.stats.Stats.pfor_executed
    <= 2 * Metrics.work g)

let test_no_latency_no_extra_deques () =
  (* With U = 0 the algorithm behaves like standard work stealing: no
     suspensions, no pfor vertices, one deque per worker at a time. *)
  let g = Generate.fib ~n:13 () in
  let r = run g ~p:4 in
  check "no suspensions" 0 r.Run.stats.Stats.suspensions;
  check "no pfor" 0 r.Run.stats.Stats.pfor_executed;
  check "one deque per worker" 1 r.Run.stats.Stats.max_deques_per_worker

let test_steal_policy_worker () =
  let g = Generate.map_reduce ~n:24 ~leaf_work:4 ~latency:25 in
  let config = { traced with steal_policy = Config.Steal_worker_then_deque } in
  let r = run ~config g ~p:4 in
  check "all executed" (Metrics.work g) r.Run.stats.Stats.vertices_executed;
  Schedule.check_exn g (Run.trace_exn r)

let test_fast_forward_equivalence () =
  (* Fast-forward changes only how idle stretches are simulated; the work
     done and the schedule validity are unaffected. *)
  let g = Generate.server ~n:6 ~f_work:3 ~latency:40 in
  let rff = run ~config:{ traced with fast_forward = true } g ~p:2 in
  let rslow = run ~config:{ traced with fast_forward = false } g ~p:2 in
  check "same vertices" rff.Run.stats.Stats.vertices_executed
    rslow.Run.stats.Stats.vertices_executed;
  Schedule.check_exn g (Run.trace_exn rff);
  Schedule.check_exn g (Run.trace_exn rslow);
  Alcotest.(check bool) "ff actually skipped rounds" true
    (rff.Run.stats.Stats.fast_forwarded_rounds > 0)

let test_wrap_single_resume () =
  let g = Generate.server ~n:6 ~f_work:3 ~latency:12 in
  let r = run ~config:{ traced with wrap_single_resume = true } g ~p:1 in
  Alcotest.(check bool) "pfor vertices appear" true (r.Run.stats.Stats.pfor_executed > 0);
  let r2 = run g ~p:1 in
  check "unwrapped has none" 0 r2.Run.stats.Stats.pfor_executed

let test_resume_burst_batching () =
  (* All n suspended tasks resume in the same round on one deque at P=1,
     so they are injected as a single pfor tree whose internal vertices
     number n - 1. *)
  let n = 32 in
  let g = Generate.resume_burst ~n ~leaf_work:2 ~latency:40 in
  let r = run g ~p:1 in
  check "n suspensions" n r.Run.stats.Stats.suspensions;
  check "single batch" 1 r.Run.stats.Stats.pfor_batches;
  check "pfor internal vertices" (n - 1) r.Run.stats.Stats.pfor_executed;
  Schedule.check_exn g (Run.trace_exn r)

let test_resume_linear_policy () =
  let g = Generate.resume_burst ~n:64 ~leaf_work:3 ~latency:50 in
  let tree = run ~config:{ traced with resume_policy = Config.Resume_pfor_tree } g ~p:8 in
  let lin = run ~config:{ traced with resume_policy = Config.Resume_linear } g ~p:8 in
  Schedule.check_exn g (Run.trace_exn tree);
  Schedule.check_exn g (Run.trace_exn lin);
  Alcotest.(check bool) "tree is faster on a burst" true (tree.Run.rounds < lin.Run.rounds)

let test_fresh_deque_target () =
  (* The Spoonhower-style variant must still produce valid schedules, and
     its deque allocation scales with resumes rather than steals. *)
  let g = Generate.map_reduce ~n:40 ~leaf_work:3 ~latency:30 in
  let cfg = { traced with resume_target = Config.Fresh_deque } in
  List.iter
    (fun p ->
      let r = run ~config:cfg g ~p in
      check "all executed" (Metrics.work g) r.Run.stats.Stats.vertices_executed;
      Schedule.check_exn g (Run.trace_exn r);
      Alcotest.(check bool) "balanced" true (Stats.balanced r.Run.stats))
    [ 1; 2; 4 ];
  (* On the server (U = 1) the paper's policy allocates only the initial
     deques, while the fresh-deque variant allocates on every resume
     (recycling keeps live counts low, so compare totals). *)
  let sv = Generate.server ~n:30 ~f_work:5 ~latency:12 in
  let orig = run sv ~p:1 in
  let fresh = run ~config:{ cfg with trace = true } sv ~p:1 in
  Alcotest.(check bool) "fresh allocates at least as many deques" true
    (fresh.Run.stats.Stats.deques_allocated >= orig.Run.stats.Stats.deques_allocated)

let test_availability () =
  (* Multiprogrammed extension: with every other round stolen from every
     worker by the environment, the computation still completes, the
     schedule stays valid, and tokens (now including unavailable rounds)
     still balance. *)
  let g = Generate.map_reduce ~n:20 ~leaf_work:4 ~latency:15 in
  let config =
    { traced with availability = Some (fun round worker -> (round + worker) mod 2 = 0) }
  in
  let r = run ~config g ~p:3 in
  check "all executed" (Metrics.work g) r.Run.stats.Stats.vertices_executed;
  Schedule.check_exn g (Run.trace_exn r);
  Alcotest.(check bool) "balanced with unavailable" true (Stats.balanced r.Run.stats);
  Alcotest.(check bool) "unavailability recorded" true
    (r.Run.stats.Stats.unavailable_rounds > 0);
  (* Halving availability roughly doubles the rounds vs the dedicated run. *)
  let dedicated = run g ~p:3 in
  Alcotest.(check bool) "slower than dedicated" true (r.Run.rounds > dedicated.Run.rounds)

let test_availability_single_survivor () =
  (* Only worker 0 is ever scheduled: degenerates to P=1 behaviour. *)
  let g = Generate.fib ~n:10 () in
  let config = { traced with availability = Some (fun _ worker -> worker = 0) } in
  let r = run ~config g ~p:4 in
  let solo = run g ~p:1 in
  check "work done" (Metrics.work g) r.Run.stats.Stats.vertices_executed;
  check "same rounds as P=1" solo.Run.rounds r.Run.rounds

let test_invalid_p () =
  let g = Generate.diamond () in
  match Lhws_sim.run g ~p:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_malformed_rejected () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v2;
  Dag.Builder.add_edge b v1 v2;
  let g = Dag.Builder.build b in
  match Lhws_sim.run g ~p:1 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_max_rounds () =
  let g = Generate.single_latency ~delta:1000 in
  let config = { Config.default with max_rounds = 10; fast_forward = false } in
  match Lhws_sim.run ~config g ~p:1 with
  | _ -> Alcotest.fail "expected Stuck"
  | exception Config.Stuck _ -> ()

let test_observer_rounds () =
  let g = Generate.map_reduce ~n:4 ~leaf_work:2 ~latency:8 in
  let count = ref 0 in
  let r =
    Lhws_sim.run ~config:{ traced with fast_forward = false }
      ~observer:(fun s ->
        incr count;
        Alcotest.(check int) "round index" (!count - 1) s.Snapshot.round)
      g ~p:2
  in
  check "observer called once per round" r.Run.rounds !count

(* Properties over random dags. *)
let random_dag seed =
  Generate.random_fork_join ~seed ~size_hint:120 ~latency_prob:0.25 ~max_latency:20

let prop_valid_schedules =
  QCheck.Test.make ~name:"random dags: schedule valid on 1..6 workers" ~count:40
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 6);
      let g = random_dag seed in
      let r = run g ~p in
      Schedule.valid g (Run.trace_exn r)
      && r.Run.stats.Stats.vertices_executed = Metrics.work g
      && Stats.balanced r.Run.stats)

let prop_rounds_at_least_span_fraction =
  QCheck.Test.make ~name:"rounds >= max(W/P, 1)" ~count:40
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 6);
      let g = random_dag seed in
      let r = run g ~p in
      r.Run.rounds >= (Metrics.work g + p - 1) / p)

let () =
  Alcotest.run "lhws_sim"
    [
      ( "unit",
        [
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "chain P=1" `Quick test_chain_p1;
          Alcotest.test_case "chain extra workers" `Quick test_chain_extra_workers_useless;
          Alcotest.test_case "single latency" `Quick test_single_latency;
          Alcotest.test_case "all executed, valid" `Quick test_all_executed_and_valid;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed variation" `Quick test_seed_changes_schedule;
          Alcotest.test_case "token balance" `Quick test_token_balance;
          Alcotest.test_case "server: one deque" `Quick test_server_single_deque;
          Alcotest.test_case "map_reduce suspensions" `Quick test_map_reduce_suspensions;
          Alcotest.test_case "pfor work bounded" `Quick test_pfor_work_bounded;
          Alcotest.test_case "no latency, no extras" `Quick test_no_latency_no_extra_deques;
          Alcotest.test_case "worker steal policy" `Quick test_steal_policy_worker;
          Alcotest.test_case "fast-forward equivalence" `Quick test_fast_forward_equivalence;
          Alcotest.test_case "wrap single resume" `Quick test_wrap_single_resume;
          Alcotest.test_case "resume burst batching" `Quick test_resume_burst_batching;
          Alcotest.test_case "linear resume policy" `Quick test_resume_linear_policy;
          Alcotest.test_case "fresh deque target" `Quick test_fresh_deque_target;
          Alcotest.test_case "availability mask" `Quick test_availability;
          Alcotest.test_case "availability single survivor" `Quick test_availability_single_survivor;
          Alcotest.test_case "invalid p" `Quick test_invalid_p;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "max rounds" `Quick test_max_rounds;
          Alcotest.test_case "observer" `Quick test_observer_rounds;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_valid_schedules;
          QCheck_alcotest.to_alcotest prop_rounds_at_least_span_fraction;
        ] );
    ]
