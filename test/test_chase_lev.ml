module CL = Lhws_deque.Chase_lev

let check_opt = Alcotest.(check (option int))

let test_sequential_lifo () =
  let d = CL.create () in
  List.iter (CL.push_bottom d) [ 1; 2; 3 ];
  check_opt "pop 3" (Some 3) (CL.pop_bottom d);
  check_opt "pop 2" (Some 2) (CL.pop_bottom d);
  check_opt "pop 1" (Some 1) (CL.pop_bottom d);
  check_opt "empty" None (CL.pop_bottom d)

let test_sequential_steal_fifo () =
  let d = CL.create () in
  List.iter (CL.push_bottom d) [ 1; 2; 3 ];
  check_opt "steal 1" (Some 1) (CL.steal d);
  check_opt "steal 2" (Some 2) (CL.steal d);
  check_opt "steal 3" (Some 3) (CL.steal d);
  check_opt "empty" None (CL.steal d)

let test_empty_after_mixed () =
  let d = CL.create () in
  List.iter (CL.push_bottom d) [ 1; 2 ];
  ignore (CL.steal d);
  ignore (CL.pop_bottom d);
  Alcotest.(check bool) "empty" true (CL.is_empty d);
  check_opt "pop none" None (CL.pop_bottom d);
  check_opt "steal none" None (CL.steal d);
  (* still usable *)
  CL.push_bottom d 9;
  check_opt "after reuse" (Some 9) (CL.pop_bottom d)

let test_growth () =
  let d = CL.create ~capacity:2 () in
  for i = 1 to 200 do
    CL.push_bottom d i
  done;
  Alcotest.(check int) "size" 200 (CL.size d);
  check_opt "steal oldest" (Some 1) (CL.steal d);
  check_opt "pop newest" (Some 200) (CL.pop_bottom d)

let test_interleaved_grow_steal () =
  let d = CL.create ~capacity:2 () in
  for i = 1 to 50 do
    CL.push_bottom d i;
    if i mod 3 = 0 then ignore (CL.steal d)
  done;
  (* drain and verify no element lost or duplicated *)
  let seen = Hashtbl.create 64 in
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        Alcotest.(check bool) "no dup" false (Hashtbl.mem seen x);
        Hashtbl.add seen x ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "drained the rest" (50 - 16) (Hashtbl.length seen)

(* Concurrency: one owner domain pushes/pops, several thieves steal; every
   element must be consumed exactly once across all parties. *)
let test_concurrent_owner_thieves () =
  let total = 20_000 in
  let nthieves = 3 in
  let d = CL.create () in
  let consumed = Array.make (total + 1) 0 in
  let consumed_mu = Mutex.create () in
  let record xs =
    Mutex.lock consumed_mu;
    List.iter (fun x -> consumed.(x) <- consumed.(x) + 1) xs;
    Mutex.unlock consumed_mu
  in
  let done_pushing = Atomic.make false in
  let thief () =
    let mine = ref [] in
    let rec go misses =
      match CL.steal d with
      | Some x ->
          mine := x :: !mine;
          go 0
      | None ->
          if Atomic.get done_pushing && misses > 100 then ()
          else begin
            Domain.cpu_relax ();
            go (misses + 1)
          end
    in
    go 0;
    record !mine
  in
  let thieves = Array.init nthieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  for i = 1 to total do
    CL.push_bottom d i;
    (* owner occasionally pops a few *)
    if i mod 7 = 0 then
      match CL.pop_bottom d with Some x -> mine := x :: !mine | None -> ()
  done;
  Atomic.set done_pushing true;
  (* owner drains what remains *)
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  Array.iter Domain.join thieves;
  record !mine;
  let missing = ref 0 and dup = ref 0 in
  for i = 1 to total do
    if consumed.(i) = 0 then incr missing;
    if consumed.(i) > 1 then incr dup
  done;
  Alcotest.(check int) "no element lost" 0 !missing;
  Alcotest.(check int) "no element duplicated" 0 !dup

(* The grow path under fire: starting from the minimum capacity, the owner
   pushes enough to force many buffer doublings while three thieves drain
   concurrently, so grows race with in-flight steals of the old buffer.
   Every element must still be consumed exactly once. *)
let test_concurrent_grow () =
  let total = 50_000 in
  let nthieves = 3 in
  let d = CL.create ~capacity:2 () in
  let consumed = Array.make (total + 1) 0 in
  let consumed_mu = Mutex.create () in
  let record xs =
    Mutex.lock consumed_mu;
    List.iter (fun x -> consumed.(x) <- consumed.(x) + 1) xs;
    Mutex.unlock consumed_mu
  in
  let done_pushing = Atomic.make false in
  let thief () =
    let mine = ref [] in
    let rec go misses =
      match CL.steal d with
      | Some x ->
          mine := x :: !mine;
          go 0
      | None ->
          if Atomic.get done_pushing && misses > 100 then ()
          else begin
            Domain.cpu_relax ();
            go (misses + 1)
          end
    in
    go 0;
    record !mine
  in
  let thieves = Array.init nthieves (fun _ -> Domain.spawn thief) in
  for i = 1 to total do
    CL.push_bottom d i
  done;
  Atomic.set done_pushing true;
  let mine = ref [] in
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  Array.iter Domain.join thieves;
  record !mine;
  let missing = ref 0 and dup = ref 0 in
  for i = 1 to total do
    if consumed.(i) = 0 then incr missing;
    if consumed.(i) > 1 then incr dup
  done;
  Alcotest.(check int) "no element lost" 0 !missing;
  Alcotest.(check int) "no element duplicated" 0 !dup

let () =
  Alcotest.run "chase_lev"
    [
      ( "sequential",
        [
          Alcotest.test_case "LIFO pop" `Quick test_sequential_lifo;
          Alcotest.test_case "FIFO steal" `Quick test_sequential_steal_fifo;
          Alcotest.test_case "empty after mixed" `Quick test_empty_after_mixed;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "interleaved grow/steal" `Quick test_interleaved_grow_steal;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "owner vs thieves" `Slow test_concurrent_owner_thieves;
          Alcotest.test_case "grow under steals" `Slow test_concurrent_grow;
        ] );
    ]
