module CL = Lhws_deque.Chase_lev

let check_opt = Alcotest.(check (option int))

let test_sequential_lifo () =
  let d = CL.create () in
  List.iter (CL.push_bottom d) [ 1; 2; 3 ];
  check_opt "pop 3" (Some 3) (CL.pop_bottom d);
  check_opt "pop 2" (Some 2) (CL.pop_bottom d);
  check_opt "pop 1" (Some 1) (CL.pop_bottom d);
  check_opt "empty" None (CL.pop_bottom d)

let test_sequential_steal_fifo () =
  let d = CL.create () in
  List.iter (CL.push_bottom d) [ 1; 2; 3 ];
  check_opt "steal 1" (Some 1) (CL.steal d);
  check_opt "steal 2" (Some 2) (CL.steal d);
  check_opt "steal 3" (Some 3) (CL.steal d);
  check_opt "empty" None (CL.steal d)

let test_empty_after_mixed () =
  let d = CL.create () in
  List.iter (CL.push_bottom d) [ 1; 2 ];
  ignore (CL.steal d);
  ignore (CL.pop_bottom d);
  Alcotest.(check bool) "empty" true (CL.is_empty d);
  check_opt "pop none" None (CL.pop_bottom d);
  check_opt "steal none" None (CL.steal d);
  (* still usable *)
  CL.push_bottom d 9;
  check_opt "after reuse" (Some 9) (CL.pop_bottom d)

let test_growth () =
  let d = CL.create ~capacity:2 () in
  for i = 1 to 200 do
    CL.push_bottom d i
  done;
  Alcotest.(check int) "size" 200 (CL.size d);
  check_opt "steal oldest" (Some 1) (CL.steal d);
  check_opt "pop newest" (Some 200) (CL.pop_bottom d)

let test_interleaved_grow_steal () =
  let d = CL.create ~capacity:2 () in
  for i = 1 to 50 do
    CL.push_bottom d i;
    if i mod 3 = 0 then ignore (CL.steal d)
  done;
  (* drain and verify no element lost or duplicated *)
  let seen = Hashtbl.create 64 in
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        Alcotest.(check bool) "no dup" false (Hashtbl.mem seen x);
        Hashtbl.add seen x ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "drained the rest" (50 - 16) (Hashtbl.length seen)

(* Concurrency: one owner domain pushes/pops, several thieves steal; every
   element must be consumed exactly once across all parties. *)
let test_concurrent_owner_thieves () =
  let total = 20_000 in
  let nthieves = 3 in
  let d = CL.create () in
  let consumed = Array.make (total + 1) 0 in
  let consumed_mu = Mutex.create () in
  let record xs =
    Mutex.lock consumed_mu;
    List.iter (fun x -> consumed.(x) <- consumed.(x) + 1) xs;
    Mutex.unlock consumed_mu
  in
  let done_pushing = Atomic.make false in
  let thief () =
    let mine = ref [] in
    let rec go misses =
      match CL.steal d with
      | Some x ->
          mine := x :: !mine;
          go 0
      | None ->
          if Atomic.get done_pushing && misses > 100 then ()
          else begin
            Domain.cpu_relax ();
            go (misses + 1)
          end
    in
    go 0;
    record !mine
  in
  let thieves = Array.init nthieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  for i = 1 to total do
    CL.push_bottom d i;
    (* owner occasionally pops a few *)
    if i mod 7 = 0 then
      match CL.pop_bottom d with Some x -> mine := x :: !mine | None -> ()
  done;
  Atomic.set done_pushing true;
  (* owner drains what remains *)
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  Array.iter Domain.join thieves;
  record !mine;
  let missing = ref 0 and dup = ref 0 in
  for i = 1 to total do
    if consumed.(i) = 0 then incr missing;
    if consumed.(i) > 1 then incr dup
  done;
  Alcotest.(check int) "no element lost" 0 !missing;
  Alcotest.(check int) "no element duplicated" 0 !dup

(* The grow path under fire: starting from the minimum capacity, the owner
   pushes enough to force many buffer doublings while three thieves drain
   concurrently, so grows race with in-flight steals of the old buffer.
   Every element must still be consumed exactly once. *)
let test_concurrent_grow () =
  let total = 50_000 in
  let nthieves = 3 in
  let d = CL.create ~capacity:2 () in
  let consumed = Array.make (total + 1) 0 in
  let consumed_mu = Mutex.create () in
  let record xs =
    Mutex.lock consumed_mu;
    List.iter (fun x -> consumed.(x) <- consumed.(x) + 1) xs;
    Mutex.unlock consumed_mu
  in
  let done_pushing = Atomic.make false in
  let thief () =
    let mine = ref [] in
    let rec go misses =
      match CL.steal d with
      | Some x ->
          mine := x :: !mine;
          go 0
      | None ->
          if Atomic.get done_pushing && misses > 100 then ()
          else begin
            Domain.cpu_relax ();
            go (misses + 1)
          end
    in
    go 0;
    record !mine
  in
  let thieves = Array.init nthieves (fun _ -> Domain.spawn thief) in
  for i = 1 to total do
    CL.push_bottom d i
  done;
  Atomic.set done_pushing true;
  let mine = ref [] in
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  Array.iter Domain.join thieves;
  record !mine;
  let missing = ref 0 and dup = ref 0 in
  for i = 1 to total do
    if consumed.(i) = 0 then incr missing;
    if consumed.(i) > 1 then incr dup
  done;
  Alcotest.(check int) "no element lost" 0 !missing;
  Alcotest.(check int) "no element duplicated" 0 !dup

(* ---- steal_half ---- *)

let steal_half_list d =
  let got = ref [] in
  let k = CL.steal_half d (fun x -> got := x :: !got) in
  (k, List.rev !got)

(* Exact split arithmetic: a single steal_half on an n-element deque takes
   ceil(n/2) elements — the oldest, in push order — and the owner's drain
   gets exactly the newest floor(n/2) back. *)
let test_steal_half_split () =
  List.iter
    (fun n ->
      let d = CL.create ~capacity:2 () in
      for i = 1 to n do
        CL.push_bottom d i
      done;
      let expect = (n + 1) / 2 in
      let k, got = steal_half_list d in
      Alcotest.(check int) (Printf.sprintf "n=%d batch size" n) expect k;
      Alcotest.(check (list int))
        (Printf.sprintf "n=%d oldest first" n)
        (List.init expect (fun i -> i + 1))
        got;
      (* Owner pops newest-first; consing reverses back to push order. *)
      let rest = ref [] in
      let rec drain () =
        match CL.pop_bottom d with
        | Some x ->
            rest := x :: !rest;
            drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check (list int))
        (Printf.sprintf "n=%d remainder" n)
        (List.init (n - expect) (fun i -> expect + 1 + i))
        !rest)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 64; 65 ]

(* Steal-half racing the owner's pop for the boundary element: the owner
   pops right after every push, so the deque is never more than one
   element deep and every successful steal_half contends with pop_bottom
   for the same slot.  Exactly one side may win each element. *)
let test_steal_half_pop_boundary () =
  let items = 10_000 in
  let d = CL.create () in
  let done_pushing = Atomic.make false in
  let thief () =
    let mine = ref [] in
    let rec go misses =
      if CL.steal_half d (fun x -> mine := x :: !mine) > 0 then go 0
      else if Atomic.get done_pushing && misses > 200 then ()
      else begin
        Domain.cpu_relax ();
        go (misses + 1)
      end
    in
    go 0;
    !mine
  in
  let t = Domain.spawn thief in
  let mine = ref [] in
  for i = 1 to items do
    CL.push_bottom d i;
    (match CL.pop_bottom d with Some x -> mine := x :: !mine | None -> ());
    (* Real sleeps: on a single core the thief only runs when the owner
       yields the CPU. *)
    if i mod 50 = 0 then Unix.sleepf 1e-6
  done;
  Atomic.set done_pushing true;
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  let stolen = Domain.join t in
  let consumed = Array.make (items + 1) 0 in
  List.iter (fun x -> consumed.(x) <- consumed.(x) + 1) !mine;
  List.iter (fun x -> consumed.(x) <- consumed.(x) + 1) stolen;
  let missing = ref 0 and dup = ref 0 in
  for i = 1 to items do
    if consumed.(i) = 0 then incr missing;
    if consumed.(i) > 1 then incr dup
  done;
  Alcotest.(check int) "no element lost" 0 !missing;
  Alcotest.(check int) "no element duplicated" 0 !dup;
  Alcotest.(check int) "all consumed" items (List.length !mine + List.length stolen)

(* Steal-half racing grow: from the minimum capacity the owner forces many
   buffer doublings while three thieves batch-steal, so steal_half's
   buffer re-reads race in-flight grows.  Exactly-once must still hold. *)
let test_steal_half_concurrent_grow () =
  let total = 50_000 in
  let nthieves = 3 in
  let d = CL.create ~capacity:2 () in
  let consumed = Array.make (total + 1) 0 in
  let consumed_mu = Mutex.create () in
  let record xs =
    Mutex.lock consumed_mu;
    List.iter (fun x -> consumed.(x) <- consumed.(x) + 1) xs;
    Mutex.unlock consumed_mu
  in
  let done_pushing = Atomic.make false in
  let thief () =
    let mine = ref [] in
    let rec go misses =
      if CL.steal_half d (fun x -> mine := x :: !mine) > 0 then go 0
      else if Atomic.get done_pushing && misses > 100 then ()
      else begin
        Domain.cpu_relax ();
        go (misses + 1)
      end
    in
    go 0;
    record !mine
  in
  let thieves = Array.init nthieves (fun _ -> Domain.spawn thief) in
  for i = 1 to total do
    CL.push_bottom d i;
    if i mod 1000 = 0 then Unix.sleepf 1e-6
  done;
  Atomic.set done_pushing true;
  let mine = ref [] in
  let rec drain () =
    match CL.pop_bottom d with
    | Some x ->
        mine := x :: !mine;
        drain ()
    | None -> ()
  in
  drain ();
  Array.iter Domain.join thieves;
  record !mine;
  let missing = ref 0 and dup = ref 0 in
  for i = 1 to total do
    if consumed.(i) = 0 then incr missing;
    if consumed.(i) > 1 then incr dup
  done;
  Alcotest.(check int) "no element lost" 0 !missing;
  Alcotest.(check int) "no element duplicated" 0 !dup

(* 3-thief steal_half storm via the shared stress harness; the paused
   owner gives the thieves CPU windows for consecutive batched steals. *)
let test_steal_half_storm () =
  let module Stress = Lhws_proptest.Stress in
  let r =
    Stress.hammer
      (module Stress.Chase_lev_deque)
      ~thieves:3 ~items:30_000 ~pop_every:5 ~owner_pause_every:40 ~steal:`Half ()
  in
  if not (Stress.ok r) then
    Alcotest.failf "steal-half storm flagged: %a" (fun ppf -> Stress.pp_report ppf) r;
  Alcotest.(check int) "all consumed" r.Stress.pushed (r.Stress.popped + r.Stress.stolen)

let () =
  Alcotest.run "chase_lev"
    [
      ( "sequential",
        [
          Alcotest.test_case "LIFO pop" `Quick test_sequential_lifo;
          Alcotest.test_case "FIFO steal" `Quick test_sequential_steal_fifo;
          Alcotest.test_case "empty after mixed" `Quick test_empty_after_mixed;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "interleaved grow/steal" `Quick test_interleaved_grow_steal;
          Alcotest.test_case "steal-half split arithmetic" `Quick test_steal_half_split;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "owner vs thieves" `Slow test_concurrent_owner_thieves;
          Alcotest.test_case "grow under steals" `Slow test_concurrent_grow;
          Alcotest.test_case "steal-half vs owner pop at boundary" `Slow
            test_steal_half_pop_boundary;
          Alcotest.test_case "steal-half under concurrent grow" `Slow
            test_steal_half_concurrent_grow;
          Alcotest.test_case "steal-half 3-thief storm" `Slow test_steal_half_storm;
        ] );
    ]
