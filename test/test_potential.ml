module Generate = Lhws_dag.Generate
open Lhws_core
open Lhws_analysis

let test_phi_values () =
  (* s_star = 3: a vertex at depth 1 has weight 2 -> phi = 3^4 = 81, or
     3^3 = 27 while assigned. *)
  Alcotest.(check (float 1e-9)) "queued" 81. (Potential.phi ~s_star:3 ~assigned:false 1);
  Alcotest.(check (float 1e-9)) "assigned" 27. (Potential.phi ~s_star:3 ~assigned:true 1);
  Alcotest.(check (float 1e-9)) "at s_star" 1. (Potential.phi ~s_star:3 ~assigned:false 3)

let test_phi_decreases_with_depth () =
  for d = 0 to 9 do
    Alcotest.(check bool) "monotone" true
      (Potential.phi ~s_star:10 ~assigned:false (d + 1)
      < Potential.phi ~s_star:10 ~assigned:false d)
  done

let view ?(state = Snapshot.Ready) ?(suspend_ctr = 0) ?(anchor = (0, 0)) depths =
  {
    Snapshot.owner = 0;
    state;
    task_depths = depths;
    suspend_ctr;
    anchor_depth = fst anchor;
    anchor_round = snd anchor;
  }

let test_deque_potential_sums_tasks () =
  let d = view [ 2; 1 ] in
  Alcotest.(check (float 1e-9)) "sum of task phis"
    (Potential.phi ~s_star:4 ~assigned:false 2 +. Potential.phi ~s_star:4 ~assigned:false 1)
    (Potential.deque_potential ~s_star:4 ~round:0 d)

let test_extra_potential_decay () =
  (* Suspended deque: extra potential 2 * 3^(2w - 2j) decays with rounds. *)
  let d = view ~state:Snapshot.Suspended ~suspend_ctr:1 ~anchor:(1, 10) [] in
  let at r = Potential.deque_potential ~s_star:4 ~round:r d in
  Alcotest.(check (float 1e-9)) "at anchor round" (2. *. (3. ** 6.)) (at 10);
  Alcotest.(check (float 1e-9)) "one round later" (2. *. (3. ** 4.)) (at 11);
  Alcotest.(check bool) "decays" true (at 12 < at 11)

let test_active_no_extra () =
  let d = view ~state:Snapshot.Active ~suspend_ctr:3 ~anchor:(1, 0) [] in
  Alcotest.(check (float 1e-9)) "no extra when active" 0.
    (Potential.deque_potential ~s_star:4 ~round:5 d)

(* Lemma 3: a deque whose task depths strictly decrease toward the top
   (bottom-to-top increasing weights) is top-heavy. *)
let test_top_heavy_ok () =
  let snap =
    {
      Snapshot.round = 0;
      assigned_depths = [];
      deques = [ view [ 5; 4; 3 ] (* bottom..top: depths decrease upward *) ];
      live_suspended = 0;
      steal_attempts = 0;
    }
  in
  Alcotest.(check int) "no violations" 0 (Potential.top_heavy_violations ~s_star:8 snap)

let test_top_heavy_violation_detected () =
  (* Inverted depths: the top vertex is the deepest (lightest), which
     cannot happen in real runs (Lemma 2 condition 5) — the checker must
     flag it. *)
  let snap =
    {
      Snapshot.round = 0;
      assigned_depths = [];
      deques = [ view [ 3; 4; 5 ] ];
      live_suspended = 0;
      steal_attempts = 0;
    }
  in
  Alcotest.(check int) "violation" 1 (Potential.top_heavy_violations ~s_star:8 snap)

let test_monotonicity_report () =
  let m = Potential.check_monotone [ 100.; 50.; 50.; 10.; 0. ] in
  Alcotest.(check int) "checked" 4 m.Potential.rounds_checked;
  Alcotest.(check int) "no violations" 0 m.Potential.violations;
  let m2 = Potential.check_monotone [ 10.; 20.; 5. ] in
  Alcotest.(check int) "one violation" 1 m2.Potential.violations;
  Alcotest.(check (float 1e-9)) "ratio 2" 2. m2.Potential.max_increase_ratio

(* End-to-end: on small traced runs the reconstructed potential starts
   high, ends at zero, and is near-monotone (the reconstruction introduces
   small approximations at resume boundaries, so we allow a small
   violation fraction; see DESIGN.md). *)
let run_potential dag p =
  let snaps = ref [] in
  let run =
    Lhws_sim.run ~config:Config.analysis ~observer:(fun s -> snaps := s :: !snaps) dag ~p
  in
  let s_star = Trace.enabling_span (Run.trace_exn run) in
  let series = List.rev_map (Potential.total ~s_star) !snaps in
  (series, List.rev !snaps, s_star)

let test_run_potential_decreases () =
  List.iter
    (fun (name, dag) ->
      let series, _, _ = run_potential dag 2 in
      let m = Potential.check_monotone series in
      Alcotest.(check bool)
        (Printf.sprintf "%s: near-monotone (%d/%d violations)" name m.Potential.violations
           m.Potential.rounds_checked)
        true
        (float_of_int m.Potential.violations
        <= 0.2 *. float_of_int (max 1 m.Potential.rounds_checked));
      Alcotest.(check bool) (name ^ ": ends below start") true
        (m.Potential.final < m.Potential.initial))
    [
      ("map_reduce", Generate.map_reduce ~n:4 ~leaf_work:2 ~latency:6);
      ("server", Generate.server ~n:3 ~f_work:2 ~latency:5);
      ("fib", Generate.fib ~n:7 ());
    ]

let test_exact_monotone_without_latency () =
  (* With no heavy edges there are no resume approximations: the
     reconstructed potential is exactly non-increasing, every round, at
     every worker count — the classical ABP argument, verified. *)
  List.iter
    (fun p ->
      let series, _, _ = run_potential (Generate.fib ~n:9 ()) p in
      let m = Potential.check_monotone series in
      Alcotest.(check int) (Printf.sprintf "P=%d: zero violations" p) 0
        m.Potential.violations)
    [ 1; 2; 3; 4 ]

let test_run_deque_order () =
  (* Lemma 2 condition 5, reflected as depth ordering within deques:
     holds in every observed round. *)
  List.iter
    (fun (name, dag) ->
      let _, snaps, _ = run_potential dag 2 in
      let v =
        List.fold_left (fun acc s -> acc + Invariants.deque_order_violations s) 0 snaps
      in
      Alcotest.(check int) (name ^ ": deques depth-ordered") 0 v)
    [
      ("map_reduce", Generate.map_reduce ~n:6 ~leaf_work:2 ~latency:8);
      ("fib", Generate.fib ~n:8 ());
      ("burst", Generate.resume_burst ~n:8 ~leaf_work:2 ~latency:10);
    ]

let test_run_lemma4 () =
  (* The per-execution potential drop of Lemma 4, allowing a small
     violation fraction from the depth reconstruction (see DESIGN.md). *)
  List.iter
    (fun (name, dag) ->
      let _, snaps, s_star = run_potential dag 2 in
      let r = Potential.check_lemma4 ~s_star snaps in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d/%d lemma-4 violations" name r.Potential.violations
           r.Potential.pairs_checked)
        true
        (float_of_int r.Potential.violations
        <= 0.2 *. float_of_int (max 1 r.Potential.pairs_checked)))
    [
      ("map_reduce", Generate.map_reduce ~n:4 ~leaf_work:2 ~latency:6);
      ("fib", Generate.fib ~n:7 ());
    ]

let test_run_top_heavy () =
  List.iter
    (fun (name, dag) ->
      let _, snaps, s_star = run_potential dag 2 in
      let v =
        List.fold_left (fun acc s -> acc + Potential.top_heavy_violations ~s_star s) 0 snaps
      in
      Alcotest.(check int) (name ^ ": Lemma 3 holds every round") 0 v)
    [
      ("map_reduce", Generate.map_reduce ~n:6 ~leaf_work:2 ~latency:8);
      ("fib", Generate.fib ~n:8 ());
      ("server", Generate.server ~n:4 ~f_work:3 ~latency:6);
    ]

let test_phase_report () =
  (* Lemma 8: phases of P(U+1) steal attempts succeed (drop >= 2/9 of the
     ready-deque potential) with probability > 1/4.  On the map-reduce
     run most phases succeed outright; assert a conservative floor. *)
  let dag = Generate.map_reduce ~n:12 ~leaf_work:3 ~latency:25 in
  let snaps = ref [] in
  let run =
    Lhws_sim.run
      ~config:{ Config.analysis with fast_forward = false }
      ~observer:(fun s -> snaps := s :: !snaps)
      dag ~p:3
  in
  let s_star = Trace.enabling_span (Run.trace_exn run) in
  let r = Potential.phase_report ~s_star ~p:3 ~u:12 (List.rev !snaps) in
  Alcotest.(check bool)
    (Printf.sprintf "phases found (%d)" r.Potential.phases)
    true (r.Potential.phases >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "success fraction %.2f > 0.25" r.Potential.fraction)
    true
    (r.Potential.fraction > 0.25)

let test_ready_deque_potential () =
  let snap depths state =
    {
      Snapshot.round = 0;
      assigned_depths = [];
      deques = [ view ~state depths ];
      live_suspended = 0;
      steal_attempts = 0;
    }
  in
  Alcotest.(check bool) "ready deques counted" true
    (Potential.ready_deque_potential ~s_star:5 (snap [ 2 ] Snapshot.Ready) > 0.);
  Alcotest.(check (float 1e-9)) "active deques not counted" 0.
    (Potential.ready_deque_potential ~s_star:5 (snap [ 2 ] Snapshot.Active))

(* Lemma 6, empirically: for beta = 1/2 the success probability of the
   balls-in-bins experiment exceeds 1 - 1/((1-beta)e) ~ 0.26. *)
let test_balls_in_bins () =
  let rng = Rng.make 2024 in
  List.iter
    (fun p ->
      let weights = Array.init p (fun i -> float_of_int (1 + (i * 7 mod 13))) in
      let rate = Potential.balls_in_bins_success_rate rng ~weights ~beta:0.5 ~trials:2000 in
      Alcotest.(check bool)
        (Printf.sprintf "P=%d rate=%.3f > 0.26" p rate)
        true (rate > 0.26))
    [ 2; 8; 32; 128 ]

let test_balls_in_bins_trial_bounds () =
  let rng = Rng.make 7 in
  let weights = [| 1.; 2.; 3. |] in
  for _ = 1 to 100 do
    let x = Potential.balls_in_bins_trial rng ~weights in
    Alcotest.(check bool) "within [0, total]" true (x >= 0. && x <= 6.)
  done

let () =
  Alcotest.run "potential"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "phi values" `Quick test_phi_values;
          Alcotest.test_case "phi monotone in depth" `Quick test_phi_decreases_with_depth;
          Alcotest.test_case "deque potential" `Quick test_deque_potential_sums_tasks;
          Alcotest.test_case "extra potential decay" `Quick test_extra_potential_decay;
          Alcotest.test_case "active: no extra" `Quick test_active_no_extra;
          Alcotest.test_case "top-heavy ok" `Quick test_top_heavy_ok;
          Alcotest.test_case "top-heavy violation" `Quick test_top_heavy_violation_detected;
          Alcotest.test_case "monotonicity report" `Quick test_monotonicity_report;
        ] );
      ( "runs",
        [
          Alcotest.test_case "potential decreases" `Quick test_run_potential_decreases;
          Alcotest.test_case "Lemma 3 on runs" `Quick test_run_top_heavy;
          Alcotest.test_case "deque depth order" `Quick test_run_deque_order;
          Alcotest.test_case "Lemma 4 on runs" `Quick test_run_lemma4;
          Alcotest.test_case "exact monotone (U=0)" `Quick test_exact_monotone_without_latency;
          Alcotest.test_case "Lemma 8 phases" `Quick test_phase_report;
          Alcotest.test_case "ready-deque potential" `Quick test_ready_deque_potential;
        ] );
      ( "lemma 6",
        [
          Alcotest.test_case "success rate" `Quick test_balls_in_bins;
          Alcotest.test_case "trial bounds" `Quick test_balls_in_bins_trial_bounds;
        ] );
    ]
