module W = Lhws_workloads
module Program = W.Program
module P = W.Pool_intf
module Metrics = Lhws_dag.Metrics
module Check = Lhws_dag.Check
open Lhws_core

let sample () =
  (* (3*2 fetched remotely) + (5+1 computed locally), with some extra work *)
  Program.fork2
    (Program.latency 10 (Program.map (fun x -> x * 2) (Program.return 3)))
    (Program.work 4 (Program.map (fun x -> x + 1) (Program.return 5)))
    ( + )

let test_value () = Alcotest.(check int) "value" 12 (Program.value (sample ()))

let test_work_units_match_dag () =
  List.iter
    (fun (name, p) ->
      let dag = Program.to_dag p in
      Alcotest.(check bool) (name ^ " well-formed") true (Check.well_formed dag);
      Alcotest.(check int) (name ^ " work units") (Program.work_units p) (Metrics.work dag))
    [
      ("sample", sample ());
      ("pure", Program.return 0);
      ("deep", Program.work 7 (Program.latency 5 (Program.work 3 (Program.return 1))));
      ( "map_reduce",
        Program.dist_map_reduce ~n:9 ~latency:6 ~leaf_work:3 ~f:(fun x -> x * x)
          ~g:( + ) ~id:0 );
    ]

let test_dag_latency () =
  let p = Program.latency 25 (Program.return 1) in
  let dag = Program.to_dag p in
  Alcotest.(check int) "heavy edges" 1 (Metrics.num_heavy_edges dag);
  Alcotest.(check int) "span includes latency" (1 + 25 + 0) (Metrics.span dag)

let test_simulate () =
  let p =
    Program.dist_map_reduce ~n:12 ~latency:40 ~leaf_work:5 ~f:(fun x -> x + 1) ~g:( + ) ~id:0
  in
  let run = Program.simulate ~config:Config.analysis p ~p:4 in
  Schedule.check_exn (Program.to_dag p) (Run.trace_exn run);
  Alcotest.(check int) "all work done" (Program.work_units p)
    run.Run.stats.Stats.vertices_executed;
  Alcotest.(check int) "12 suspensions" 12 run.Run.stats.Stats.suspensions

let test_run_on_pools () =
  let expect = Program.value (sample ()) in
  List.iter
    (fun (pool : P.pool) ->
      let module Pool = (val pool : P.POOL) in
      let pl = Pool.create ~workers:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pl)
        (fun () ->
          Alcotest.(check int)
            (Pool.name ^ " executes to the same value")
            expect
            (Program.run_on (module Pool) pl ~tick:0.0005 (sample ()))))
    [ P.lhws; P.ws ]

let test_map_reduce_value () =
  let p =
    Program.dist_map_reduce ~n:20 ~latency:4 ~leaf_work:2 ~f:(fun x -> x * x) ~g:( + ) ~id:0
  in
  let expect = List.fold_left (fun a i -> a + (i * i)) 0 (List.init 20 Fun.id) in
  Alcotest.(check int) "reference" expect (Program.value p);
  let module Pool = (val P.lhws : P.POOL) in
  let pl = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pl)
    (fun () ->
      Alcotest.(check int) "executed" expect
        (Program.run_on (module Pool) pl ~tick:0.0002 p))

let test_latency_hidden_in_program () =
  (* 16 remote leaves of 20ms on the latency-hiding pool overlap. *)
  let p =
    Program.dist_map_reduce ~n:16 ~latency:20 ~leaf_work:1 ~f:Fun.id ~g:( + ) ~id:0
  in
  let module Pool = (val P.lhws : P.POOL) in
  let pl = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pl)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      ignore (Program.run_on (module Pool) pl ~tick:0.001 p);
      let dt = Unix.gettimeofday () -. t0 in
      (* serial latency would be 16 * 20ms = 0.32s *)
      Alcotest.(check bool) (Printf.sprintf "%.3fs < 0.2s" dt) true (dt < 0.2))

let test_invalid_args () =
  (match Program.work 0 (Program.return 1) with
  | _ -> Alcotest.fail "work 0"
  | exception Invalid_argument _ -> ());
  (match Program.latency 1 (Program.return 1) with
  | _ -> Alcotest.fail "latency 1"
  | exception Invalid_argument _ -> ());
  (match Program.fork_list [] Fun.id with
  | (_ : int list Program.t) -> Alcotest.fail "empty fork_list"
  | exception Invalid_argument _ -> ());
  match Program.dist_map_reduce ~n:0 ~latency:5 ~leaf_work:1 ~f:Fun.id ~g:( + ) ~id:0 with
  | _ -> Alcotest.fail "n 0"
  | exception Invalid_argument _ -> ()

let test_fork_list_order () =
  let p = Program.fork_list (List.init 7 Program.return) (fun xs -> xs) in
  Alcotest.(check (list int)) "order preserved" [ 0; 1; 2; 3; 4; 5; 6 ] (Program.value p)

let test_server_program () =
  (* Figure 10's server: correct value, well-formed dag, and — the point
     of the example — suspension width exactly 1. *)
  let prog = Program.server ~n:3 ~latency:6 ~f_work:2 ~f:(fun x -> x * 10) ~g:( + ) ~id:0 in
  Alcotest.(check int) "value" 30 (Program.value prog);
  let dag = Program.to_dag prog in
  Alcotest.(check bool) "wf" true (Check.well_formed dag);
  Alcotest.(check int) "work matches" (Program.work_units prog) (Metrics.work dag);
  Alcotest.(check int) "U = 1" 1 (Lhws_dag.Suspension.exact ~max_vertices:22 dag);
  (* one deque per worker when simulated, per Lemma 7 at U = 1 *)
  let bigger = Program.server ~n:20 ~latency:15 ~f_work:6 ~f:Fun.id ~g:( + ) ~id:0 in
  let run = Program.simulate bigger ~p:4 in
  Alcotest.(check int) "one deque per worker" 1
    run.Run.stats.Stats.max_deques_per_worker;
  Alcotest.(check int) "value 0+..+19" 190 (Program.value bigger)

let test_server_program_on_pool () =
  let prog = Program.server ~n:8 ~latency:4 ~f_work:2 ~f:(fun x -> x + 1) ~g:( + ) ~id:0 in
  let module Pool = (val P.lhws : P.POOL) in
  let pl = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pl)
    (fun () ->
      Alcotest.(check int) "executed value" (Program.value prog)
        (Program.run_on (module Pool) pl ~tick:0.0005 prog))

let test_seq_fork2_semantics () =
  (* value flows from the prefix into the left branch only *)
  let prog =
    Program.seq_fork2 (Program.return 7) ~work:3 ~f:(fun x -> x * 2) (Program.return 5)
      (fun a b -> (a, b))
  in
  Alcotest.(check (pair int int)) "value" (14, 5) (Program.value prog);
  Alcotest.(check int) "work units" (1 + 3 + 1 + 2) (Program.work_units prog);
  match Program.seq_fork2 (Program.return 0) ~work:0 ~f:Fun.id (Program.return 0) ( + ) with
  | _ -> Alcotest.fail "work 0"
  | exception Invalid_argument _ -> ()

(* Random series-parallel programs from a seed. *)
let gen_program seed =
  let st = Random.State.make [| seed; 0xBEEF |] in
  let rec go fuel =
    if fuel <= 1 then Program.return (Random.State.int st 100)
    else
      match Random.State.int st 5 with
      | 0 ->
          let k = Random.State.int st 10 in
          Program.map (fun x -> x + k) (go (fuel - 1))
      | 1 -> Program.work (1 + Random.State.int st 3) (go (fuel - 1))
      | 2 -> Program.latency (2 + Random.State.int st 6) (go (fuel - 1))
      | _ ->
          let a = 1 + Random.State.int st (fuel - 1) in
          Program.fork2 (go a) (go (fuel - a)) ( + )
  in
  go (3 + (seed mod 20))

let test_random_programs_agree_across_semantics () =
  (* One pool, many programs: reference value = pool-executed value, and
     the compiled dag is well-formed with matching work. *)
  let module Pool = (val P.lhws : P.POOL) in
  let pl = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pl)
    (fun () ->
      List.iter
        (fun seed ->
          let prog = gen_program seed in
          let dag = Program.to_dag prog in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d wf" seed)
            true (Check.well_formed dag);
          Alcotest.(check int)
            (Printf.sprintf "seed %d work" seed)
            (Program.work_units prog) (Metrics.work dag);
          Alcotest.(check int)
            (Printf.sprintf "seed %d value" seed)
            (Program.value prog)
            (Program.run_on (module Pool) pl ~tick:0.0002 prog))
        (List.init 15 (fun i -> (i * 37) + 1)))

let prop_value_independent_of_simulation =
  (* Simulating the program's dag on any worker count executes exactly its
     work units — structure is scheduler-independent. *)
  QCheck.Test.make ~name:"simulated work = work_units for random programs" ~count:40
    QCheck.(pair (int_range 1 12) (int_range 1 5))
    (fun (n, p) ->
      QCheck.assume (n >= 1 && p >= 1);
      let prog =
        Program.dist_map_reduce ~n ~latency:8 ~leaf_work:2 ~f:Fun.id ~g:( + ) ~id:0
      in
      let run = Program.simulate prog ~p in
      run.Run.stats.Stats.vertices_executed = Program.work_units prog)

let () =
  Alcotest.run "program"
    [
      ( "semantics",
        [
          Alcotest.test_case "value" `Quick test_value;
          Alcotest.test_case "work units = dag work" `Quick test_work_units_match_dag;
          Alcotest.test_case "dag latency" `Quick test_dag_latency;
          Alcotest.test_case "simulate" `Quick test_simulate;
          Alcotest.test_case "run on pools" `Quick test_run_on_pools;
          Alcotest.test_case "map-reduce value" `Quick test_map_reduce_value;
          Alcotest.test_case "latency hidden" `Quick test_latency_hidden_in_program;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "fork_list order" `Quick test_fork_list_order;
          Alcotest.test_case "random programs agree" `Quick test_random_programs_agree_across_semantics;
          Alcotest.test_case "server (Figure 10)" `Quick test_server_program;
          Alcotest.test_case "server on pool" `Quick test_server_program_on_pool;
          Alcotest.test_case "seq_fork2" `Quick test_seq_fork2_semantics;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_value_independent_of_simulation ]);
    ]
