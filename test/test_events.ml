open Lhws_core

let check_opt = Alcotest.(check (option string))

let test_empty () =
  let q : string Events.t = Events.create () in
  Alcotest.(check bool) "is_empty" true (Events.is_empty q);
  Alcotest.(check (option int)) "next_time" None (Events.next_time q);
  check_opt "pop_due" None (Events.pop_due q 100)

let test_ordering () =
  let q = Events.create () in
  Events.add q 30 "c";
  Events.add q 10 "a";
  Events.add q 20 "b";
  check_opt "a first" (Some "a") (Events.pop_due q 100);
  check_opt "b second" (Some "b") (Events.pop_due q 100);
  check_opt "c third" (Some "c") (Events.pop_due q 100);
  check_opt "drained" None (Events.pop_due q 100)

let test_due_filtering () =
  let q = Events.create () in
  Events.add q 10 "early";
  Events.add q 50 "late";
  check_opt "early due" (Some "early") (Events.pop_due q 10);
  check_opt "late not due" None (Events.pop_due q 10);
  Alcotest.(check (option int)) "next_time" (Some 50) (Events.next_time q);
  check_opt "late due at 50" (Some "late") (Events.pop_due q 50)

let test_fifo_ties () =
  let q = Events.create () in
  List.iter (fun s -> Events.add q 5 s) [ "x"; "y"; "z" ];
  check_opt "x" (Some "x") (Events.pop_due q 5);
  check_opt "y" (Some "y") (Events.pop_due q 5);
  check_opt "z" (Some "z") (Events.pop_due q 5)

let test_length () =
  let q = Events.create () in
  for i = 1 to 100 do
    Events.add q i "e"
  done;
  Alcotest.(check int) "length" 100 (Events.length q);
  ignore (Events.pop_due q 1);
  Alcotest.(check int) "after pop" 99 (Events.length q)

let test_interleaved () =
  let q = Events.create () in
  Events.add q 3 "c";
  Events.add q 1 "a";
  check_opt "a" (Some "a") (Events.pop_due q 10);
  Events.add q 2 "b";
  check_opt "b" (Some "b") (Events.pop_due q 10);
  check_opt "c" (Some "c") (Events.pop_due q 10)

(* Property: popping everything yields sorted (time, insertion) order. *)
let prop_heap_sort =
  QCheck.Test.make ~name:"pop order sorted by time then insertion" ~count:200
    QCheck.(list (int_bound 50))
    (fun times ->
      let q = Events.create () in
      List.iteri (fun i t -> Events.add q t (t, i)) times;
      let rec drain acc =
        match Events.pop_due q max_int with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      let sorted = List.stable_sort (fun (t1, i1) (t2, i2) -> compare (t1, i1) (t2, i2)) popped in
      popped = sorted && List.length popped = List.length times)

let () =
  Alcotest.run "events"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "due filtering" `Quick test_due_filtering;
          Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
          Alcotest.test_case "length" `Quick test_length;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_heap_sort ]);
    ]
