(* Steal-mode (one-vs-half) behaviour across the simulators and the real
   pools: determinism of the batched steal (identical snapshot streams),
   internal consistency of the batched-steal accounting, the latency
   crossover the knob exists to show, and a smoke check that the real
   pools agree with the simulated accounting on contention-shaped work.

   The crossover (AB5 in EXPERIMENTS.md): on a wide map-reduce under the
   latency-hiding scheduler, batched resumes give deques worth batching,
   so at extreme steal latency taking half a deque per steal beats paying
   the latency once per task.  At zero latency the two modes tie; at
   moderate latency steal-one is marginally ahead (stripping a victim's
   fork-tree nodes forces it to steal back).  The blocking baseline never
   accumulates deep deques and shows no crossover. *)

module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core

let cfg ?(steal_mode = Config.Steal_one) ?(steal_latency = 0) ?(seed = 42) () =
  { Config.default with steal_mode; steal_latency; seed }

let half = Config.Steal_half
let wide () = Generate.map_reduce ~n:128 ~leaf_work:1 ~latency:2

(* Same seed + config => identical snapshot stream, rounds, and steal
   accounting, with both batched steals and steal latency in play. *)
let test_lhws_determinism () =
  let g = wide () in
  let capture () =
    let snaps = ref [] in
    let r =
      Lhws_sim.run
        ~config:(cfg ~steal_mode:half ~steal_latency:8 ())
        ~observer:(fun s -> snaps := s :: !snaps)
        g ~p:4
    in
    (r, List.rev !snaps)
  in
  let r1, s1 = capture () in
  let r2, s2 = capture () in
  Alcotest.(check int) "same rounds" r1.Run.rounds r2.Run.rounds;
  Alcotest.(check bool) "identical snapshot stream" true (s1 = s2);
  Alcotest.(check int) "same steals" r1.Run.stats.Stats.steals_ok r2.Run.stats.Stats.steals_ok;
  Alcotest.(check int) "same batched steals" r1.Run.stats.Stats.steals_batched
    r2.Run.stats.Stats.steals_batched;
  Alcotest.(check int) "same tasks stolen" r1.Run.stats.Stats.tasks_stolen
    r2.Run.stats.Stats.tasks_stolen;
  Alcotest.(check int) "same latency rounds" r1.Run.stats.Stats.steal_latency_rounds
    r2.Run.stats.Stats.steal_latency_rounds

let test_ws_determinism () =
  let g = wide () in
  let config = { (cfg ~steal_mode:half ~steal_latency:8 ()) with trace = true } in
  let r1 = Ws_sim.run ~config g ~p:4 and r2 = Ws_sim.run ~config g ~p:4 in
  Alcotest.(check int) "same rounds" r1.Run.rounds r2.Run.rounds;
  Alcotest.(check bool) "same schedule" true
    (Trace.executions (Run.trace_exn r1) = Trace.executions (Run.trace_exn r2))

(* The steal accounting must be internally consistent in both modes at
   any latency, and the token balance must still hold (latency-occupied
   rounds are accounted, not lost). *)
let accounting_checks name (st : Stats.t) ~steal_latency =
  Alcotest.(check bool) (name ^ ": batched <= steals") true
    (st.Stats.steals_batched <= st.Stats.steals_ok);
  Alcotest.(check bool) (name ^ ": tasks_stolen >= steals") true
    (st.Stats.tasks_stolen >= st.Stats.steals_ok);
  Alcotest.(check bool) (name ^ ": balanced") true (Stats.balanced st);
  if steal_latency = 0 then
    Alcotest.(check int) (name ^ ": no latency rounds at L=0") 0 st.Stats.steal_latency_rounds
  else
    (* Each successful remote steal occupies the thief for at most L
       rounds (fewer only if the run ends first). *)
    Alcotest.(check bool) (name ^ ": latency rounds bounded by L * steals") true
      (st.Stats.steal_latency_rounds >= 0
      && st.Stats.steal_latency_rounds <= steal_latency * st.Stats.steals_ok)

let test_accounting () =
  let g = wide () in
  List.iter
    (fun steal_latency ->
      List.iter
        (fun steal_mode ->
          let lh = Lhws_sim.run ~config:(cfg ~steal_mode ~steal_latency ()) g ~p:4 in
          Alcotest.(check int) "lhws: all vertices" (Metrics.work g)
            lh.Run.stats.Stats.vertices_executed;
          accounting_checks "lhws" lh.Run.stats ~steal_latency;
          let ws = Ws_sim.run ~config:(cfg ~steal_mode ~steal_latency ()) g ~p:4 in
          Alcotest.(check int) "ws: all vertices" (Metrics.work g)
            ws.Run.stats.Stats.vertices_executed;
          accounting_checks "ws" ws.Run.stats ~steal_latency)
        [ Config.Steal_one; Config.Steal_half ])
    [ 0; 8 ]

let test_steal_half_batches () =
  (* In half mode at least some steals must actually be batched on a dag
     wide enough to leave several tasks in a deque at once. *)
  let g = wide () in
  let r = Lhws_sim.run ~config:(cfg ~steal_mode:half ()) g ~p:4 in
  Alcotest.(check bool) "some batched steals" true (r.Run.stats.Stats.steals_batched > 0);
  Alcotest.(check bool) "batches move extra tasks" true
    (r.Run.stats.Stats.tasks_stolen > r.Run.stats.Stats.steals_ok)

let seeds = List.init 10 (fun i -> 1 + (37 * i))

let total_rounds ~steal_mode ~steal_latency =
  List.fold_left
    (fun acc seed ->
      acc + (Lhws_sim.run ~config:(cfg ~steal_mode ~steal_latency ~seed ()) (wide ()) ~p:2).Run.rounds)
    0 seeds

(* The AB5 crossover, pinned loosely enough to be seed-robust: summed
   over 10 seeds, the two modes tie within 5% at L=0, and steal-half
   wins by at least 10% at L=256 under the latency-hiding scheduler. *)
let test_crossover () =
  let one0 = total_rounds ~steal_mode:Config.Steal_one ~steal_latency:0 in
  let half0 = total_rounds ~steal_mode:half ~steal_latency:0 in
  Alcotest.(check bool)
    (Printf.sprintf "L=0 parity: %d vs %d" one0 half0)
    true
    (float_of_int (abs (half0 - one0)) <= 0.05 *. float_of_int one0);
  let one_l = total_rounds ~steal_mode:Config.Steal_one ~steal_latency:256 in
  let half_l = total_rounds ~steal_mode:half ~steal_latency:256 in
  Alcotest.(check bool)
    (Printf.sprintf "L=256: half (%d) beats one (%d) by >= 10%%" half_l one_l)
    true
    (float_of_int half_l <= 0.9 *. float_of_int one_l)

(* ---- real pools: steal-half smoke on contention-shaped work ---- *)

module Pool_intf = Lhws_workloads.Pool_intf

let smoke (module Pool : Pool_intf.POOL) =
  let p = Pool.create ~workers:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      (* fib-shaped contention: plenty of small forks to steal. *)
      let rec fib n =
        if n < 2 then n
        else
          let a, b = Pool.fork2 p (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
          a + b
      in
      Alcotest.(check int) "fib 18" 2584 (Pool.run p (fun () -> fib 18));
      let s = Pool.stats p in
      Alcotest.(check bool) "batched <= steals" true (s.steals_batched <= s.steals);
      Alcotest.(check bool) "tasks_stolen >= steals" true (s.tasks_stolen >= s.steals);
      Alcotest.(check int) "hist partitions steals" s.steals
        (Array.fold_left ( + ) 0 s.tasks_per_steal_hist))

let test_real_lhws_steal_half () = smoke (module Pool_intf.Lhws_steal_half_instance)
let test_real_ws_steal_half () = smoke (module Pool_intf.Ws_steal_half_instance)

let () =
  Alcotest.run "steal_modes"
    [
      ( "sim",
        [
          Alcotest.test_case "lhws determinism (snapshots)" `Quick test_lhws_determinism;
          Alcotest.test_case "ws determinism (trace)" `Quick test_ws_determinism;
          Alcotest.test_case "steal accounting consistent" `Quick test_accounting;
          Alcotest.test_case "steal-half batches" `Quick test_steal_half_batches;
          Alcotest.test_case "latency crossover (AB5)" `Slow test_crossover;
        ] );
      ( "real",
        [
          Alcotest.test_case "lhws pool steal-half smoke" `Quick test_real_lhws_steal_half;
          Alcotest.test_case "ws pool steal-half smoke" `Quick test_real_ws_steal_half;
        ] );
    ]
