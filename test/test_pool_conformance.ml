(* Policy-conformance suite: one functor over the extended POOL
   signature, run against every pool instance.  Anything here must hold
   for the latency-hiding pool, the blocking baseline and the
   thread-per-task pool alike, with no pool-specific branching —
   pool-specific behaviour (latency hiding, blocking sleeps, shutdown
   paths) stays in the per-pool test files. *)

open Lhws_runtime
module Pool_intf = Lhws_workloads.Pool_intf

module Conformance (Pool : Pool_intf.POOL) = struct
  let with_pool ?(workers = 2) f =
    let p = Pool.create ~workers () in
    Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

  let test_run_returns () =
    with_pool ~workers:1 (fun p -> Alcotest.(check int) "value" 7 (Pool.run p (fun () -> 7)))

  let test_run_reusable () =
    with_pool (fun p ->
        Alcotest.(check int) "first" 1 (Pool.run p (fun () -> 1));
        Alcotest.(check int) "second" 2 (Pool.run p (fun () -> 2)))

  let test_run_exception () =
    with_pool ~workers:1 (fun p ->
        Alcotest.check_raises "raises" (Failure "root") (fun () ->
            Pool.run p (fun () -> failwith "root")))

  let test_fork2 () =
    with_pool (fun p ->
        let a, b = Pool.run p (fun () -> Pool.fork2 p (fun () -> 10) (fun () -> 20)) in
        Alcotest.(check (pair int int)) "results" (10, 20) (a, b))

  let test_async_await () =
    with_pool (fun p ->
        let v =
          Pool.run p (fun () ->
              let pr = Pool.async p (fun () -> 5 * 5) in
              Pool.await p pr)
        in
        Alcotest.(check int) "await" 25 v)

  let test_await_exception () =
    with_pool (fun p ->
        Alcotest.check_raises "child exn" (Failure "child") (fun () ->
            Pool.run p (fun () -> Pool.await p (Pool.async p (fun () -> failwith "child")))))

  let test_nested_fib () =
    with_pool (fun p ->
        let rec fib n =
          if n < 2 then n
          else
            let a, b = Pool.fork2 p (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
            a + b
        in
        Alcotest.(check int) "fib 16" 987 (Pool.run p (fun () -> fib 16)))

  let test_parallel_for_covers_range () =
    with_pool ~workers:3 (fun p ->
        let n = 300 in
        let hits = Array.init n (fun _ -> Atomic.make 0) in
        Pool.run p (fun () -> Pool.parallel_for p ~lo:0 ~hi:n (fun i -> Atomic.incr hits.(i)));
        Array.iteri
          (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 (Atomic.get h))
          hits)

  let test_parallel_map_reduce () =
    with_pool (fun p ->
        let sum =
          Pool.run p (fun () ->
              Pool.parallel_map_reduce p ~lo:1 ~hi:101 ~map:Fun.id ~combine:( + ) ~id:0)
        in
        Alcotest.(check int) "gauss" 5050 sum)

  let test_sleep_at_least () =
    (* Every pool must wait out a sleep; whether the worker blocks or
       switches meanwhile is pool-specific and tested elsewhere. *)
    with_pool ~workers:1 (fun p ->
        let d = 0.02 in
        let t0 = Unix.gettimeofday () in
        Pool.run p (fun () -> Pool.sleep p d);
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) (Printf.sprintf "slept %.3fs >= %.3fs" dt d) true (dt >= d *. 0.9);
        Alcotest.(check unit) "sleep 0 is a no-op" () (Pool.run p (fun () -> Pool.sleep p 0.)))

  let burn_some p =
    ignore
      (Pool.run p (fun () ->
           Pool.parallel_map_reduce p ~lo:0 ~hi:64
             ~map:(fun i ->
               let rec burn k acc = if k = 0 then acc else burn (k - 1) (acc + i) in
               burn 500 0)
             ~combine:( + ) ~id:0))

  let test_stats_monotone () =
    with_pool (fun p ->
        burn_some p;
        let a = Pool.stats p in
        let nonneg (s : Scheduler_core.stats) =
          s.tasks_run >= 0 && s.steals >= 0 && s.failed_steals >= 0
          && s.steals_batched >= 0
          && s.tasks_stolen >= 0 && s.deques_allocated >= 0
          && s.suspensions >= 0 && s.resumes >= 0 && s.max_deques_per_worker >= 0
          && s.io_pending >= 0 && s.io_syscalls >= 0 && s.conns_shed >= 0
          && s.scavenge_steals >= 0 && s.tasks_scavenged >= 0
          && s.tasks_donated >= 0
          && Array.for_all (fun c -> c >= 0) s.tasks_per_steal_hist
        in
        Alcotest.(check bool) "counters non-negative" true (nonneg a);
        burn_some p;
        let b = Pool.stats p in
        Alcotest.(check bool) "counters never decrease" true
          (b.tasks_run >= a.tasks_run
          && b.steals >= a.steals
          && b.failed_steals >= a.failed_steals
          && b.steals_batched >= a.steals_batched
          && b.tasks_stolen >= a.tasks_stolen
          && b.deques_allocated >= a.deques_allocated
          && b.suspensions >= a.suspensions && b.resumes >= a.resumes
          && b.max_deques_per_worker >= a.max_deques_per_worker
          && b.scavenge_steals >= a.scavenge_steals
          && b.tasks_scavenged >= a.tasks_scavenged
          && b.tasks_donated >= a.tasks_donated
          && b.io_syscalls >= a.io_syscalls
          (* io_pending is a gauge, not a counter: deliberately excluded *)))

  let test_steal_stats_consistent () =
    (* The batched-steal accounting must be internally consistent on every
       pool, in both steal modes: a batched steal is still one steal, a
       steal moves at least one task, and the tasks-per-steal histogram is
       a partition of the successful steals with singletons in bucket 0. *)
    with_pool ~workers:3 (fun p ->
        burn_some p;
        burn_some p;
        let s = Pool.stats p in
        Alcotest.(check bool) "batched <= steals" true (s.steals_batched <= s.steals);
        Alcotest.(check bool) "tasks_stolen >= steals" true (s.tasks_stolen >= s.steals);
        let hist_sum = Array.fold_left ( + ) 0 s.tasks_per_steal_hist in
        Alcotest.(check int) "hist partitions steals" s.steals hist_sum;
        Alcotest.(check int) "bucket 0 = single-task steals"
          (s.steals - s.steals_batched)
          s.tasks_per_steal_hist.(0))

  let test_submit_pinned () =
    (* [submit] is safe from outside [run] and the thunk is pinned: it
       executes under this pool's own accounting.  The root [await] is
       what lets worker 0 serve its share of the inboxes (on the ws pool
       the await IS the helping loop). *)
    with_pool (fun p ->
        let before = (Pool.stats p).Scheduler_core.tasks_run in
        let n = 50 in
        let hits = Atomic.make 0 in
        let all_done = Promise.create () in
        for _ = 1 to n do
          Pool.submit p (fun () ->
              if Atomic.fetch_and_add hits 1 = n - 1 then
                Promise.fulfill all_done (Ok ()))
        done;
        Pool.run p (fun () -> Pool.await p all_done);
        Alcotest.(check int) "every submitted thunk ran once" n (Atomic.get hits);
        let after = (Pool.stats p).Scheduler_core.tasks_run in
        Alcotest.(check bool)
          (Printf.sprintf "pool executed them itself (%d -> %d)" before after)
          true
          (after - before >= n))

  let test_scavenge_books_balance () =
    (* This pool as scavenge donor, a latency-hiding pool as thief: after
       the work drains, every task the thief counted scavenged must be
       counted donated by this pool — no loot is double-counted or lost.
       Pools that export nothing (thread-per-task) skip by construction. *)
    with_pool (fun donor ->
        match Pool.scavenge_source donor with
        | None -> ()
        | Some src ->
            let module L = Pool_intf.Lhws_instance in
            let thief = L.create ~workers:2 () in
            Fun.protect
              ~finally:(fun () -> L.shutdown thief)
              (fun () ->
                Alcotest.(check bool) "thief accepts the edge" true
                  (L.set_scavenge thief src);
                let n = 30 in
                let hits = Atomic.make 0 in
                let all_done = Promise.create () in
                for _ = 1 to n do
                  Pool.submit donor (fun () ->
                      let t0 = Unix.gettimeofday () in
                      while Unix.gettimeofday () -. t0 < 0.001 do
                        Domain.cpu_relax ()
                      done;
                      if Atomic.fetch_and_add hits 1 = n - 1 then
                        Promise.fulfill all_done (Ok ()))
                done;
                Pool.run donor (fun () -> Pool.await donor all_done);
                (* Let any in-flight raid finish its bookkeeping. *)
                Unix.sleepf 0.05;
                let ds = Pool.stats donor and ts = L.stats thief in
                Alcotest.(check int) "every thunk ran exactly once" n
                  (Atomic.get hits);
                Alcotest.(check int) "donor books = thief books"
                  ds.Scheduler_core.tasks_donated ts.Scheduler_core.tasks_scavenged;
                Alcotest.(check bool) "thief raids are counted" true
                  (ts.Scheduler_core.tasks_scavenged
                  >= ts.Scheduler_core.scavenge_steals)))

  let test_echo_roundtrip () =
    (* Serving a socket must work on every pool.  Deliberately the
       lowest-common-denominator setup: a blocking reactor (valid on all
       three pools — a wait just occupies a worker) and an external
       OS-thread client, so no pool primitive ever races the
       non-terminating accept-loop task (helping [await] on the WS pool
       could otherwise bury the caller beneath it). *)
    with_pool ~workers:4 (fun p ->
        Pool.run p (fun () ->
            let rt = Lhws_net.Reactor.blocking () in
            let l =
              Lhws_net.Listener.serve
                (module Pool)
                p rt
                (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                ~handler:(fun c ->
                  let b = Bytes.create 4 in
                  Lhws_net.Conn.read_exactly c b 4;
                  Lhws_net.Conn.write_all c b)
            in
            let got = ref "" in
            let client =
              Thread.create
                (fun () ->
                  let addr = Lhws_net.Listener.addr l in
                  let fd =
                    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
                  in
                  Fun.protect
                    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                    (fun () ->
                      Unix.connect fd addr;
                      ignore (Unix.write fd (Bytes.of_string "ping") 0 4 : int);
                      let b = Bytes.create 4 in
                      let rec fill pos =
                        if pos < 4 then
                          match Unix.read fd b pos (4 - pos) with
                          | 0 -> failwith "echo: eof"
                          | n -> fill (pos + n)
                      in
                      fill 0;
                      got := Bytes.to_string b))
                ()
            in
            Thread.join client;
            Lhws_net.Listener.shutdown ~grace:2. l;
            Alcotest.(check string) "echoed" "ping" !got;
            Alcotest.(check int) "drained" 0 (Lhws_net.Listener.live l)))

  (* Retry/breaker semantics must be identical on every pool: the only
     pool-specific part is what [sleep] costs, which is not observable
     here.  Socket-level resilience (reconnects, fault storms) lives in
     test_faults.ml. *)

  let test_retry_eventually_succeeds () =
    with_pool (fun p ->
        let module R = Lhws_net.Resilience in
        let attempts = Atomic.make 0 in
        let policy = R.Retry.policy ~max_attempts:5 ~base_backoff:0.001 ~max_backoff:0.004 () in
        let v =
          Pool.run p (fun () ->
              R.Retry.call
                (module Pool)
                p policy
                (fun _ ->
                  if Atomic.fetch_and_add attempts 1 < 3 then raise Lhws_net.Net.Timeout
                  else 42))
        in
        Alcotest.(check int) "value after transient failures" 42 v;
        Alcotest.(check int) "exactly four attempts" 4 (Atomic.get attempts))

  let test_retry_stops () =
    with_pool (fun p ->
        let module R = Lhws_net.Resilience in
        (* Non-retryable: one attempt, the error passes straight through. *)
        let attempts = Atomic.make 0 in
        Alcotest.check_raises "protocol error not retried"
          (Lhws_net.Net.Protocol_error "junk") (fun () ->
            Pool.run p (fun () ->
                R.Retry.call
                  (module Pool)
                  p
                  (R.Retry.policy ~max_attempts:5 ())
                  (fun _ ->
                    Atomic.incr attempts;
                    raise (Lhws_net.Net.Protocol_error "junk"))));
        Alcotest.(check int) "single attempt" 1 (Atomic.get attempts);
        (* Retryable but persistent: max_attempts bounds the attempts and
           the last error is re-raised. *)
        let attempts = Atomic.make 0 in
        Alcotest.check_raises "exhaustion re-raises" Lhws_net.Net.Timeout (fun () ->
            Pool.run p (fun () ->
                R.Retry.call
                  (module Pool)
                  p
                  (R.Retry.policy ~max_attempts:3 ~base_backoff:0.001 ~max_backoff:0.002 ())
                  (fun _ ->
                    Atomic.incr attempts;
                    raise Lhws_net.Net.Timeout)));
        Alcotest.(check int) "max_attempts attempts" 3 (Atomic.get attempts))

  let test_breaker_lifecycle () =
    with_pool (fun p ->
        let module R = Lhws_net.Resilience in
        Pool.run p (fun () ->
            let b = R.Breaker.create ~failure_threshold:3 ~cooldown:0.05 () in
            let once = R.Retry.no_retry in
            let fail () =
              match
                R.Retry.call (module Pool) p ~breaker:b once (fun _ ->
                    raise Lhws_net.Net.Timeout)
              with
              | () -> Alcotest.fail "failing call returned"
              | exception Lhws_net.Net.Timeout -> ()
            in
            fail ();
            fail ();
            Alcotest.(check bool) "still closed below threshold" true
              (R.Breaker.state b = R.Breaker.Closed);
            fail ();
            Alcotest.(check bool) "open at threshold" true (R.Breaker.state b = R.Breaker.Open);
            Alcotest.(check int) "one trip" 1 (R.Breaker.trips b);
            (* While open: fail-fast, the protected function never runs. *)
            let ran = ref false in
            (match
               R.Retry.call (module Pool) p ~breaker:b once (fun _ ->
                   ran := true;
                   ())
             with
            | () -> Alcotest.fail "open breaker admitted a call"
            | exception Lhws_net.Net.Circuit_open -> ());
            Alcotest.(check bool) "call not attempted while open" false !ran;
            (* A failed half-open probe re-opens... *)
            Pool.sleep p 0.08;
            Alcotest.(check bool) "half-open after cooldown" true
              (R.Breaker.state b = R.Breaker.Half_open);
            fail ();
            Alcotest.(check bool) "probe failure re-opens" true
              (R.Breaker.state b = R.Breaker.Open);
            Alcotest.(check int) "second trip" 2 (R.Breaker.trips b);
            (* ...and a successful probe closes for good. *)
            Pool.sleep p 0.08;
            Alcotest.(check int) "probe admitted" 7
              (R.Retry.call (module Pool) p ~breaker:b once (fun _ -> 7));
            Alcotest.(check bool) "closed after good probe" true
              (R.Breaker.state b = R.Breaker.Closed);
            Alcotest.(check int) "healthy call flows" 8
              (R.Retry.call (module Pool) p ~breaker:b once (fun _ -> 8))))

  let test_invalid_workers () =
    match Pool.create ~workers:0 () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()

  let test_tracer_smoke () =
    with_pool (fun p ->
        let tr = Tracing.create ~workers:2 () in
        Pool.set_tracer p tr;
        burn_some p;
        Alcotest.(check bool) "events recorded" true (Tracing.events tr <> []);
        Alcotest.(check int) "none dropped" 0 (Tracing.dropped tr);
        List.iter
          (fun (e : Tracing.event) ->
            if e.Tracing.worker < 0 || e.Tracing.worker >= 2 then
              Alcotest.failf "event on worker %d" e.Tracing.worker)
          (Tracing.events tr))

  let suite =
    [
      Alcotest.test_case "run returns" `Quick test_run_returns;
      Alcotest.test_case "run reusable" `Quick test_run_reusable;
      Alcotest.test_case "run exception" `Quick test_run_exception;
      Alcotest.test_case "fork2" `Quick test_fork2;
      Alcotest.test_case "async/await" `Quick test_async_await;
      Alcotest.test_case "await exception" `Quick test_await_exception;
      Alcotest.test_case "nested fib" `Quick test_nested_fib;
      Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_covers_range;
      Alcotest.test_case "map_reduce" `Quick test_parallel_map_reduce;
      Alcotest.test_case "sleep at least" `Quick test_sleep_at_least;
      Alcotest.test_case "stats monotone" `Quick test_stats_monotone;
      Alcotest.test_case "steal stats consistent" `Quick test_steal_stats_consistent;
      Alcotest.test_case "submit is pinned" `Quick test_submit_pinned;
      Alcotest.test_case "scavenge books balance" `Quick test_scavenge_books_balance;
      Alcotest.test_case "echo round trip" `Quick test_echo_roundtrip;
      Alcotest.test_case "retry eventually succeeds" `Quick test_retry_eventually_succeeds;
      Alcotest.test_case "retry stops" `Quick test_retry_stops;
      Alcotest.test_case "breaker lifecycle" `Quick test_breaker_lifecycle;
      Alcotest.test_case "invalid workers" `Quick test_invalid_workers;
      Alcotest.test_case "tracer smoke" `Quick test_tracer_smoke;
    ]
end

module Lhws = Conformance (Pool_intf.Lhws_instance)
module Lhws_half = Conformance (Pool_intf.Lhws_steal_half_instance)
module Lhws_aged = Conformance (Pool_intf.Lhws_aged_fifo_instance)
module Ws = Conformance (Pool_intf.Ws_instance)
module Ws_half = Conformance (Pool_intf.Ws_steal_half_instance)
module Threads = Conformance (Pool_intf.Threaded_instance)

let () =
  Alcotest.run "pool_conformance"
    [
      ("lhws", Lhws.suite);
      ("lhws-steal-half", Lhws_half.suite);
      ("lhws-aged-fifo", Lhws_aged.suite);
      ("ws", Ws.suite);
      ("ws-steal-half", Ws_half.suite);
      ("threads", Threads.suite);
    ]
