module Dag = Lhws_dag.Dag

let check = Alcotest.(check int)

let build_diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex ~label:"fork" b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  let v3 = Dag.Builder.add_vertex ~label:"join" b in
  Dag.Builder.add_edge b v0 v1;
  Dag.Builder.add_edge b v0 v2;
  Dag.Builder.add_edge b v1 v3;
  Dag.Builder.add_edge b v2 v3;
  Dag.Builder.build b

let test_ids_dense () =
  let b = Dag.Builder.create () in
  for i = 0 to 99 do
    check "vertex id" i (Dag.Builder.add_vertex b)
  done;
  check "count" 100 (Dag.Builder.num_vertices b)

let test_diamond_structure () =
  let g = build_diamond () in
  check "vertices" 4 (Dag.num_vertices g);
  check "root" 0 (Dag.root g);
  check "final" 3 (Dag.final g);
  check "root out-degree" 2 (Dag.out_degree g 0);
  check "join in-degree" 2 (Dag.in_degree g 3);
  Alcotest.(check (pair int int)) "left child first" (1, 1) (Dag.out_edges g 0).(0);
  Alcotest.(check (pair int int)) "right child second" (2, 1) (Dag.out_edges g 0).(1)

let test_labels () =
  let g = build_diamond () in
  Alcotest.(check string) "labelled" "fork" (Dag.label g 0);
  Alcotest.(check string) "unlabelled" "" (Dag.label g 1)

let test_edges_list () =
  let g = build_diamond () in
  check "edge count" 4 (List.length (Dag.edges g));
  check "no heavy edges" 0 (List.length (Dag.heavy_edges g))

let test_heavy_edges () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge ~weight:7 b v0 v1;
  Dag.Builder.add_edge b v1 v2;
  let g = Dag.Builder.build b in
  (match Dag.heavy_edges g with
  | [ { Dag.src; dst; weight } ] ->
      check "heavy src" 0 src;
      check "heavy dst" 1 dst;
      check "heavy weight" 7 weight
  | _ -> Alcotest.fail "expected exactly one heavy edge");
  Alcotest.(check bool) "v1 is heavy target" true (Dag.is_heavy_target g v1);
  Alcotest.(check bool) "v2 is not" false (Dag.is_heavy_target g v2)

let test_topological_order () =
  let g = build_diamond () in
  let order = Dag.topological_order g in
  check "order length" 4 (Array.length order);
  let pos = Array.make 4 (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  List.iter
    (fun (e : Dag.edge) ->
      Alcotest.(check bool)
        (Printf.sprintf "edge %d->%d respects order" e.src e.dst)
        true
        (pos.(e.src) < pos.(e.dst)))
    (Dag.edges g)

let test_in_edges_match_out_edges () =
  let g = build_diamond () in
  let out_total = ref 0 and in_total = ref 0 in
  Dag.iter_vertices g (fun v ->
      out_total := !out_total + Dag.out_degree g v;
      in_total := !in_total + Dag.in_degree g v);
  check "degree sums agree" !out_total !in_total

let test_cycle_rejected () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v1;
  Dag.Builder.add_edge b v1 v0;
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.Builder.build: dag contains a cycle")
    (fun () -> ignore (Dag.Builder.build b))

let test_empty_rejected () =
  let b = Dag.Builder.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Dag.Builder.build: empty dag") (fun () ->
      ignore (Dag.Builder.build b))

let test_bad_weight_rejected () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  Alcotest.check_raises "weight 0" (Invalid_argument "Dag.Builder.add_edge: weight must be >= 1")
    (fun () -> Dag.Builder.add_edge ~weight:0 b v0 v1)

let test_unknown_vertex_rejected () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  Alcotest.check_raises "unknown target"
    (Invalid_argument "Dag.Builder.add_edge: unknown target vertex 5") (fun () ->
      Dag.Builder.add_edge b v0 5)

let test_single_vertex () =
  let b = Dag.Builder.create () in
  let v = Dag.Builder.add_vertex b in
  let g = Dag.Builder.build b in
  check "root = final" v (Dag.root g);
  check "final" v (Dag.final g)

let test_pp_smoke () =
  let g = build_diamond () in
  let s = Format.asprintf "%a" Dag.pp g in
  Alcotest.(check bool) "mentions root" true (Astring.String.is_infix ~affix:"root=0" s)

let test_large_chain () =
  let b = Dag.Builder.create () in
  let first = Dag.Builder.add_vertex b in
  let _last =
    List.fold_left
      (fun prev _ ->
        let v = Dag.Builder.add_vertex b in
        Dag.Builder.add_edge b prev v;
        v)
      first
      (List.init 9999 Fun.id)
  in
  let g = Dag.Builder.build b in
  check "n" 10000 (Dag.num_vertices g);
  check "root" 0 (Dag.root g);
  check "final" 9999 (Dag.final g)

let () =
  Alcotest.run "dag"
    [
      ( "builder",
        [
          Alcotest.test_case "dense ids" `Quick test_ids_dense;
          Alcotest.test_case "diamond structure" `Quick test_diamond_structure;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "bad weight rejected" `Quick test_bad_weight_rejected;
          Alcotest.test_case "unknown vertex rejected" `Quick test_unknown_vertex_rejected;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "large chain" `Quick test_large_chain;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "edges list" `Quick test_edges_list;
          Alcotest.test_case "heavy edges" `Quick test_heavy_edges;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "degrees agree" `Quick test_in_edges_match_out_edges;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
