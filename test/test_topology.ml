(* Micropool topology: class-pinned submission, cross-pool scavenging,
   lifecycle.  The conformance suite covers each pool kind in isolation;
   this file covers what only exists between pools. *)

open Lhws_runtime
module Pool_intf = Lhws_workloads.Pool_intf
module T = Lhws_workloads.Topology

let spin_for seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    Domain.cpu_relax ()
  done

let scavenge_totals stats =
  List.fold_left
    (fun (sc, dn) (_, s) ->
      Scheduler_core.(sc + s.tasks_scavenged, dn + s.tasks_donated))
    (0, 0) stats

(* --- construction --- *)

let test_create_rejects_empty () =
  Alcotest.check_raises "no pools" (Invalid_argument "Topology.create: no pools")
    (fun () -> ignore (T.create [] : T.t))

let test_create_rejects_duplicate_class () =
  match T.create [ T.spec ~workers:1 T.Latency; T.spec ~workers:1 T.Latency ] with
  | t ->
      T.shutdown t;
      Alcotest.fail "duplicate class accepted"
  | exception Invalid_argument _ -> ()

let test_create_rejects_self_scavenge () =
  match T.create [ T.spec ~workers:1 ~scavenges:T.Latency T.Latency ] with
  | t ->
      T.shutdown t;
      Alcotest.fail "self-scavenge accepted"
  | exception Invalid_argument _ -> ()

let test_create_rejects_unknown_donor () =
  match T.create [ T.spec ~workers:1 ~scavenges:T.Batch T.Latency ] with
  | t ->
      T.shutdown t;
      Alcotest.fail "unknown donor accepted"
  | exception Invalid_argument _ -> ()

let test_create_rejects_threaded_donor () =
  (* The thread-per-task pool has no deques to raid: an edge pointing at
     it must fail construction, and the partially built topology must
     still tear down (this test hangs otherwise). *)
  match
    T.create
      [
        T.spec ~workers:1 ~scavenges:T.Batch T.Latency;
        T.spec ~pool:Pool_intf.threads T.Batch;
      ]
  with
  | t ->
      T.shutdown t;
      Alcotest.fail "threaded donor accepted"
  | exception Invalid_argument _ -> ()

let test_classes_and_pool_names () =
  T.with_topology
    [ T.spec ~workers:1 T.Latency; T.spec ~pool:Pool_intf.ws ~workers:1 T.Batch ]
    (fun t ->
      Alcotest.(check (list string))
        "classes in spec order" [ "latency"; "batch" ]
        (List.map T.class_name (T.classes t));
      Alcotest.(check string)
        "batch pool kind" "ws"
        (List.assoc T.Batch (T.pool_names t)))

(* --- submission and run --- *)

let test_submit_unknown_class_raises () =
  T.with_topology [ T.spec ~workers:1 T.Latency ] (fun t ->
      match T.submit t ~class_:(T.Custom "nope") (fun () -> ()) with
      | () -> Alcotest.fail "unknown class accepted"
      | exception Invalid_argument _ -> ())

let test_submit_runs_without_callers () =
  (* The driver domains hold every member's [run], so submitted work
     drains with no caller anywhere near the topology. *)
  T.with_topology
    [ T.spec ~workers:2 T.Latency; T.spec ~workers:2 T.Batch ]
    (fun t ->
      let n = 40 in
      let hits = Atomic.make 0 in
      for i = 1 to n do
        let class_ = if i mod 2 = 0 then T.Latency else T.Batch in
        T.submit t ~class_ (fun () -> Atomic.incr hits)
      done;
      let deadline = Unix.gettimeofday () +. 5. in
      while Atomic.get hits < n && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.002
      done;
      Alcotest.(check int) "every thunk ran" n (Atomic.get hits))

let test_run_returns_and_raises () =
  T.with_topology [ T.spec ~workers:1 T.Latency ] (fun t ->
      Alcotest.(check int) "value" 41 (T.run t ~class_:T.Latency (fun () -> 41));
      Alcotest.check_raises "exception crosses back" (Failure "boom") (fun () ->
          T.run t ~class_:T.Latency (fun () -> failwith "boom")))

let test_run_is_class_pinned () =
  (* The thunk must execute on the named member's workers: its pool's
     [tasks_run] moves, the sibling's stays put (drivers idle at 0 new
     tasks once up). *)
  T.with_topology
    [ T.spec ~workers:1 T.Latency; T.spec ~workers:1 T.Batch ]
    (fun t ->
      let before = List.assoc T.Batch (T.stats t) in
      for _ = 1 to 10 do
        T.run t ~class_:T.Batch (fun () -> ())
      done;
      let after = List.assoc T.Batch (T.stats t) in
      Alcotest.(check bool) "batch pool ran them" true
        Scheduler_core.(after.tasks_run - before.tasks_run >= 10))

let test_use_gives_member_operations () =
  T.with_topology [ T.spec ~workers:2 T.Latency ] (fun t ->
      let v =
        T.run t ~class_:T.Latency (fun () ->
            T.use t ~class_:T.Latency
              {
                T.use =
                  (fun (type p) (module P : Pool_intf.POOL with type t = p)
                       (pool : p) -> P.await pool (P.async pool (fun () -> 17)));
              })
      in
      Alcotest.(check int) "async/await through use" 17 v)

(* --- scavenging --- *)

let test_scavenge_books_balance_lhws () =
  (* An idle 2-worker latency pool raids a loaded batch pool; whatever
     crossed must be double-entry: thief scavenged = donor donated, and
     every job still runs exactly once. *)
  T.with_topology
    [ T.spec ~workers:2 ~scavenges:T.Batch T.Latency; T.spec ~workers:2 T.Batch ]
    (fun t ->
      let n = 32 in
      let hits = Atomic.make 0 in
      for _ = 1 to n do
        T.submit t ~class_:T.Batch (fun () ->
            spin_for 0.002;
            Atomic.incr hits)
      done;
      let deadline = Unix.gettimeofday () +. 10. in
      while Atomic.get hits < n && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.002
      done;
      Unix.sleepf 0.05;
      Alcotest.(check int) "every job ran exactly once" n (Atomic.get hits);
      let scavenged, donated = scavenge_totals (T.stats t) in
      Alcotest.(check int) "books balance" donated scavenged)

let test_scavenge_books_balance_ws_thief () =
  (* Mixed kinds: a blocking ws pool scavenging an lhws batch pool —
     leaf thunks are portable in that direction too. *)
  T.with_topology
    [
      T.spec ~pool:Pool_intf.ws ~workers:2 ~scavenges:T.Batch T.Latency;
      T.spec ~workers:2 T.Batch;
    ]
    (fun t ->
      let n = 32 in
      let hits = Atomic.make 0 in
      for _ = 1 to n do
        T.submit t ~class_:T.Batch (fun () ->
            spin_for 0.002;
            Atomic.incr hits)
      done;
      let deadline = Unix.gettimeofday () +. 10. in
      while Atomic.get hits < n && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.002
      done;
      Unix.sleepf 0.05;
      Alcotest.(check int) "every job ran exactly once" n (Atomic.get hits);
      let scavenged, donated = scavenge_totals (T.stats t) in
      Alcotest.(check int) "books balance" donated scavenged)

let test_scavenge_moves_work () =
  (* Liveness, with slack for scheduling nondeterminism: given a long
     backlog and an idle sibling, at least one of a few attempts must
     actually move loot. *)
  let attempt () =
    T.with_topology
      [ T.spec ~workers:2 ~scavenges:T.Batch T.Latency; T.spec ~workers:2 T.Batch ]
      (fun t ->
        let n = 24 in
        let hits = Atomic.make 0 in
        for _ = 1 to n do
          T.submit t ~class_:T.Batch (fun () ->
              spin_for 0.004;
              Atomic.incr hits)
        done;
        let deadline = Unix.gettimeofday () +. 10. in
        while Atomic.get hits < n && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.002
        done;
        Unix.sleepf 0.05;
        fst (scavenge_totals (T.stats t)))
  in
  let rec go tries =
    if attempt () > 0 then ()
    else if tries > 1 then go (tries - 1)
    else Alcotest.fail "no task scavenged in any attempt"
  in
  go 5

(* --- lifecycle --- *)

let test_shutdown_idempotent () =
  let t = T.create [ T.spec ~workers:1 T.Latency ] in
  T.shutdown t;
  T.shutdown t

let test_scavenging_teardown_race () =
  (* Regression: the [run] root task (the driver's awaiting fiber) used
     to be exportable, so a scavenger could steal a sibling's root right
     at startup; once the thief pool died first, the donor's stop
     promise resumed into a dead pool and [Domain.join] hung forever.
     Create/destroy scavenging topologies back to back — with the root
     pinned this terminates, without it this test hangs within a few
     iterations. *)
  for _ = 1 to 15 do
    T.with_topology
      [ T.spec ~workers:1 ~scavenges:T.Batch T.Latency; T.spec ~workers:1 T.Batch ]
      (fun t ->
        T.submit t ~class_:T.Batch (fun () -> ());
        ())
  done

let () =
  Alcotest.run "topology"
    [
      ( "construction",
        [
          Alcotest.test_case "rejects empty" `Quick test_create_rejects_empty;
          Alcotest.test_case "rejects duplicate class" `Quick
            test_create_rejects_duplicate_class;
          Alcotest.test_case "rejects self scavenge" `Quick
            test_create_rejects_self_scavenge;
          Alcotest.test_case "rejects unknown donor" `Quick
            test_create_rejects_unknown_donor;
          Alcotest.test_case "rejects threaded donor" `Quick
            test_create_rejects_threaded_donor;
          Alcotest.test_case "classes and pool names" `Quick
            test_classes_and_pool_names;
        ] );
      ( "submission",
        [
          Alcotest.test_case "unknown class raises" `Quick
            test_submit_unknown_class_raises;
          Alcotest.test_case "submit drains with no callers" `Quick
            test_submit_runs_without_callers;
          Alcotest.test_case "run returns and raises" `Quick
            test_run_returns_and_raises;
          Alcotest.test_case "run is class-pinned" `Quick test_run_is_class_pinned;
          Alcotest.test_case "use exposes member ops" `Quick
            test_use_gives_member_operations;
        ] );
      ( "scavenging",
        [
          Alcotest.test_case "books balance (lhws thief)" `Quick
            test_scavenge_books_balance_lhws;
          Alcotest.test_case "books balance (ws thief)" `Quick
            test_scavenge_books_balance_ws_thief;
          Alcotest.test_case "scavenging moves work" `Slow test_scavenge_moves_work;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          Alcotest.test_case "teardown race with scavenging" `Quick
            test_scavenging_teardown_race;
        ] );
    ]
