module Dag = Lhws_dag.Dag
module Generate = Lhws_dag.Generate
open Lhws_core

let test_enabling_diamond () =
  let g = Generate.diamond () in
  let es = Exec_state.create g in
  Alcotest.(check bool) "nothing executed" false (Exec_state.executed es 0);
  (* root enables both children *)
  (match Exec_state.execute es (Dag.root g) with
  | [ (_, 1); (_, 1) ] -> ()
  | _ -> Alcotest.fail "root should enable two light children");
  (* first branch does not enable the join *)
  let l, r = ((Dag.out_edges g (Dag.root g)).(0), (Dag.out_edges g (Dag.root g)).(1)) in
  (match Exec_state.execute es (fst l) with
  | [] -> ()
  | _ -> Alcotest.fail "join not enabled yet");
  (* second branch enables the join *)
  (match Exec_state.execute es (fst r) with
  | [ (j, 1) ] -> Alcotest.(check int) "join" (Dag.final g) j
  | _ -> Alcotest.fail "join should be enabled");
  Alcotest.(check int) "count" 3 (Exec_state.num_executed es);
  Alcotest.(check bool) "not complete" false (Exec_state.complete es);
  ignore (Exec_state.execute es (Dag.final g));
  Alcotest.(check bool) "complete" true (Exec_state.complete es);
  Alcotest.(check bool) "final executed" true (Exec_state.final_executed es)

let test_heavy_weight_reported () =
  let g = Generate.single_latency ~delta:9 in
  let es = Exec_state.create g in
  match Exec_state.execute es (Dag.root g) with
  | [ (v, 9) ] -> Alcotest.(check int) "heavy child" (Dag.final g) v
  | _ -> Alcotest.fail "expected heavy child with weight 9"

let test_double_execute_rejected () =
  let g = Generate.diamond () in
  let es = Exec_state.create g in
  ignore (Exec_state.execute es 0);
  match Exec_state.execute es 0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_premature_execute_rejected () =
  let g = Generate.diamond () in
  let es = Exec_state.create g in
  match Exec_state.execute es (Dag.final g) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_topological_replay () =
  (* Executing any topological order works and enables every vertex. *)
  let g = Generate.map_reduce ~n:8 ~leaf_work:3 ~latency:5 in
  let es = Exec_state.create g in
  Array.iter (fun v -> ignore (Exec_state.execute es v)) (Dag.topological_order g);
  Alcotest.(check bool) "complete" true (Exec_state.complete es)

let () =
  Alcotest.run "exec_state"
    [
      ( "enabling",
        [
          Alcotest.test_case "diamond" `Quick test_enabling_diamond;
          Alcotest.test_case "heavy weight reported" `Quick test_heavy_weight_reported;
          Alcotest.test_case "double execute rejected" `Quick test_double_execute_rejected;
          Alcotest.test_case "premature execute rejected" `Quick test_premature_execute_rejected;
          Alcotest.test_case "topological replay" `Quick test_topological_replay;
        ] );
    ]
