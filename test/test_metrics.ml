module Dag = Lhws_dag.Dag
module Block = Lhws_dag.Block
module Metrics = Lhws_dag.Metrics
module Generate = Lhws_dag.Generate

let check = Alcotest.(check int)

let test_chain () =
  let g = Generate.chain ~n:10 () in
  check "work" 10 (Metrics.work g);
  check "span = edges" 9 (Metrics.span g);
  check "unweighted same" 9 (Metrics.unweighted_span g);
  check "no latency" 0 (Metrics.total_latency g);
  check "no heavy" 0 (Metrics.num_heavy_edges g)

let test_weighted_chain () =
  (* every 3rd edge heavy with weight 5 *)
  let g = Generate.chain ~latency_every:3 ~latency:5 ~n:10 () in
  (* edges i=1..9; heavy at i=3,6,9 -> 3 heavy edges *)
  check "heavy count" 3 (Metrics.num_heavy_edges g);
  check "total latency" 12 (Metrics.total_latency g);
  check "span includes weights" (6 + (3 * 5)) (Metrics.span g);
  check "unweighted span" 9 (Metrics.unweighted_span g);
  check "critical latency" 12 (Metrics.critical_path_latency g)

let test_single_latency () =
  let g = Generate.single_latency ~delta:42 in
  check "work" 2 (Metrics.work g);
  check "span" 42 (Metrics.span g);
  check "critical latency" 41 (Metrics.critical_path_latency g)

let test_diamond () =
  let g = Generate.diamond () in
  check "work" 4 (Metrics.work g);
  check "span" 2 (Metrics.span g)

let test_off_critical_latency () =
  (* fork: left = long chain, right = short latency op.  The latency is off
     the critical path, so span is the chain, but total latency counts it. *)
  let b = Dag.Builder.create () in
  let left = Block.chain b 30 in
  let right = Block.latency b 10 in
  let g = Block.finish b (Block.fork2 b left right) in
  check "work" (30 + 2 + 2) (Metrics.work g);
  check "span from chain" (1 + 29 + 1) (Metrics.span g);
  check "total latency" 9 (Metrics.total_latency g);
  check "critical latency < total" 9 (Metrics.critical_path_latency g)

let test_weighted_depth () =
  let g = Generate.single_latency ~delta:7 in
  let d = Metrics.weighted_depth g in
  check "root depth" 0 d.(Dag.root g);
  check "final depth" 7 d.(Dag.final g)

let test_parallelism () =
  let g = Generate.parallel_chains ~k:8 ~len:10 in
  Alcotest.(check bool) "parallelism > 5" true (Metrics.parallelism g > 5.)

let test_parallelism_single () =
  let b = Dag.Builder.create () in
  let _ = Block.vertex b in
  let g = Dag.Builder.build b in
  Alcotest.(check bool) "infinite on single vertex" true (Metrics.parallelism g = infinity)

let test_map_reduce_closed_form () =
  let n = 16 and leaf_work = 5 and latency = 9 in
  let g = Generate.map_reduce ~n ~leaf_work ~latency in
  (* leaves: latency op (2 vertices) + chain leaf_work; internal: n-1 fork2,
     2 vertices each *)
  check "work" ((n * (2 + leaf_work)) + (2 * (n - 1))) (Metrics.work g);
  (* span: lg n forks + latency + leaf chain + lg n joins *)
  check "span" (4 + latency + (leaf_work - 1) + 1 + 4) (Metrics.span g)

let test_server_closed_form () =
  let n = 5 and f_work = 3 and latency = 7 in
  let g = Generate.server ~n ~f_work ~latency in
  (* per non-last input: latency op (2) + fork + join + f chain; last: latency op + done *)
  check "work" (((n - 1) * (2 + 2 + f_work)) + 2 + 1) (Metrics.work g);
  (* Critical path: down the spine of getInputs (delta + 2 edges per
     iteration), through the last input's "done", then up the join chain
     (n - 1 edges). *)
  check "span" (((n - 1) * (latency + 3)) + latency + 1) (Metrics.span g)

(* Properties on random dags *)
let random_dag seed =
  Generate.random_fork_join ~seed ~size_hint:80 ~latency_prob:0.25 ~max_latency:12

let prop_span_le_work_plus_latency =
  QCheck.Test.make ~name:"span <= work + total latency" ~count:100 QCheck.small_int (fun seed ->
      let g = random_dag seed in
      Metrics.span g <= Metrics.work g + Metrics.total_latency g)

let prop_unweighted_le_weighted =
  QCheck.Test.make ~name:"unweighted span <= weighted span" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_dag seed in
      Metrics.unweighted_span g <= Metrics.span g)

let prop_critical_le_total_latency =
  QCheck.Test.make ~name:"critical-path latency <= total latency" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_dag seed in
      Metrics.critical_path_latency g <= Metrics.total_latency g)

let () =
  Alcotest.run "metrics"
    [
      ( "closed forms",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "weighted chain" `Quick test_weighted_chain;
          Alcotest.test_case "single latency" `Quick test_single_latency;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "off-critical latency" `Quick test_off_critical_latency;
          Alcotest.test_case "weighted depth" `Quick test_weighted_depth;
          Alcotest.test_case "parallelism" `Quick test_parallelism;
          Alcotest.test_case "parallelism single" `Quick test_parallelism_single;
          Alcotest.test_case "map_reduce W and S" `Quick test_map_reduce_closed_form;
          Alcotest.test_case "server W and S" `Quick test_server_closed_form;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_span_le_work_plus_latency;
          QCheck_alcotest.to_alcotest prop_unweighted_le_weighted;
          QCheck_alcotest.to_alcotest prop_critical_le_total_latency;
        ] );
    ]
