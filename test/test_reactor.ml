(* The submission/completion reactor's contract, driven through
   [Reactor.run_io] on real descriptors:

   - eager completion: a non-blocking op that succeeds immediately never
     touches the reactor (one exec, no park);
   - an EAGAIN — kernel-reported or injected — forces the park/submit
     path, the pump executes the op on readiness, and the fiber resumes
     exactly once with the result;
   - legacy mode resumes the fiber on readiness and lets it reissue the
     op itself, with the same exactly-once surface;
   - a deadline claims a parked intent and surfaces Net.Timeout, leaving
     io_pending drained;
   - the mutation check: a completion dropped on the floor (the bug the
     chaos hook simulates) is *detected* — every racing deadline fires,
     the gauge sticks while parked — rather than hanging the suite;
   - the vectored-I/O shim delivers exact byte streams for multi-buffer
     vectors, and its drop/take algebra holds. *)

open Lhws_runtime
module P = Lhws_workloads.Pool_intf
module Net = Lhws_net.Net
module Reactor = Lhws_net.Reactor
module Conn = Lhws_net.Conn

let with_rt ?(workers = 2) ?legacy f =
  Lhws_pool.with_pool ~workers (fun p ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller p ?pending ?syscalls poll)
          ?legacy ()
      in
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () -> f p rt))

let socketpair () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.set_nonblock b;
  (a, b)

let close_both (a, b) =
  (try Unix.close a with Unix.Unix_error _ -> ());
  try Unix.close b with Unix.Unix_error _ -> ()

let drained p =
  (* The gauge may lag the resume by one pump iteration. *)
  let module Pl = P.Lhws_instance in
  let rec go i =
    let g = (Pl.stats p).Scheduler_core.io_pending in
    if g = 0 then true
    else if i > 1000 then false
    else begin
      Pl.sleep p 0.002;
      go (i + 1)
    end
  in
  go 0

(* --- eager completion: a ready op never parks --- *)

let test_eager_inline () =
  with_rt (fun p rt ->
      let ((a, b) as pair) = socketpair () in
      Fun.protect ~finally:(fun () -> close_both pair) @@ fun () ->
      ignore (Unix.write b (Bytes.of_string "x") 0 1 : int);
      let execs = ref 0 in
      let buf = Bytes.create 1 in
      let n =
        Reactor.run_io rt `Readable a ~exec:(fun () ->
            incr execs;
            Unix.read a buf 0 1)
      in
      Alcotest.(check int) "one byte" 1 n;
      Alcotest.(check char) "the byte" 'x' (Bytes.get buf 0);
      Alcotest.(check int) "exactly one exec, inline" 1 !execs;
      Alcotest.(check int) "nothing parked"
        0
        (P.Lhws_instance.stats p).Scheduler_core.io_pending;
      Alcotest.(check bool) "ops are counted" true (Reactor.io_syscalls rt > 0))

(* --- an injected EAGAIN forces park/submit; resume is exactly once --- *)

let test_injected_eagain_parks () =
  with_rt (fun p rt ->
      let ((a, b) as pair) = socketpair () in
      Fun.protect ~finally:(fun () -> close_both pair) @@ fun () ->
      (* Data is already there, but the first exec lies EAGAIN: eager
         completion must NOT retry inline — the injected would-block has
         to push the op through the real submit/park/pump path. *)
      ignore (Unix.write b (Bytes.of_string "y") 0 1 : int);
      let execs = ref 0 in
      let resumes = ref 0 in
      let buf = Bytes.create 1 in
      let n =
        Reactor.run_io rt `Readable a ~exec:(fun () ->
            incr execs;
            if !execs = 1 then raise (Unix.Unix_error (Unix.EAGAIN, "read", "injected"))
            else Unix.read a buf 0 1)
      in
      incr resumes;
      Alcotest.(check int) "one byte through the pump" 1 n;
      Alcotest.(check char) "the byte" 'y' (Bytes.get buf 0);
      Alcotest.(check int) "eager attempt + one pump execution" 2 !execs;
      Alcotest.(check int) "resumed exactly once" 1 !resumes;
      Alcotest.(check bool) "io_pending drains" true (drained p))

(* --- a real park: empty socket, writer fires later, one resume --- *)

let run_parked_read ?legacy () =
  with_rt ?legacy (fun p rt ->
      let ((a, b) as pair) = socketpair () in
      Fun.protect ~finally:(fun () -> close_both pair) @@ fun () ->
      let module Pl = P.Lhws_instance in
      let execs = ref 0 in
      let buf = Bytes.create 1 in
      let reader =
        Pl.async p (fun () ->
            Reactor.run_io rt `Readable a ~exec:(fun () ->
                incr execs;
                Unix.read a buf 0 1))
      in
      Pl.sleep p 0.02;
      ignore (Unix.write b (Bytes.of_string "z") 0 1 : int);
      let n = Pl.await p reader in
      Alcotest.(check int) "one byte after the park" 1 n;
      Alcotest.(check char) "the byte" 'z' (Bytes.get buf 0);
      (* Batched: eager EAGAIN + pump exec = 2.  Legacy: eager EAGAIN +
         post-wake retry by the fiber itself = 2.  Either way the op ran
         once for real and the fiber resumed once. *)
      Alcotest.(check int) "no duplicate executions" 2 !execs;
      Alcotest.(check bool) "io_pending drains" true (drained p))

let test_parked_read_batched () = run_parked_read ()
let test_parked_read_legacy () = run_parked_read ~legacy:true ()

(* --- deadline beats a never-ready intent; the intent is reclaimed --- *)

let test_deadline_claims_intent () =
  with_rt (fun p rt ->
      let ((a, _b) as pair) = socketpair () in
      Fun.protect ~finally:(fun () -> close_both pair) @@ fun () ->
      let buf = Bytes.create 1 in
      let deadline = Unix.gettimeofday () +. 0.05 in
      (match
         Reactor.run_io rt ~deadline `Readable a ~exec:(fun () -> Unix.read a buf 0 1)
       with
      | (_ : int) -> Alcotest.fail "nothing was ever written"
      | exception Net.Timeout -> ());
      Alcotest.(check bool) "cancelled intent leaves no pending" true (drained p))

(* --- the mutation check: dropped completions are detected, not hung ---

   [chaos_drop_completions ~every:1] loses every completion in transit —
   the exact bug the hook exists to simulate.  Twenty concurrent reads,
   each with data available (after an eager-defeating injected EAGAIN)
   and each raced against a deadline: every single fiber must come back
   with Net.Timeout — the deadline reclaims the orphaned intent — and
   none may hang.  While the orphans are parked the io_pending gauge
   sticks at a non-zero value, which is what the 500-conn chaos suite's
   drain assertion would catch; after the timeouts it drains to zero. *)

let test_dropped_completion_detected () =
  with_rt ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      let n = 20 in
      let pairs = Array.init n (fun _ -> socketpair ()) in
      Fun.protect ~finally:(fun () -> Array.iter close_both pairs) @@ fun () ->
      Reactor.chaos_drop_completions rt ~every:1;
      Fun.protect ~finally:(fun () -> Reactor.chaos_drop_completions rt ~every:0)
      @@ fun () ->
      let tasks =
        Array.map
          (fun (a, b) ->
            Pl.async p (fun () ->
                ignore (Unix.write b (Bytes.of_string "!") 0 1 : int);
                let tried = ref 0 in
                let buf = Bytes.create 1 in
                let deadline = Unix.gettimeofday () +. 0.1 in
                match
                  Reactor.run_io rt ~deadline `Readable a ~exec:(fun () ->
                      incr tried;
                      if !tried = 1 then
                        raise (Unix.Unix_error (Unix.EAGAIN, "read", "injected"))
                      else Unix.read a buf 0 1)
                with
                | (_ : int) -> `Completed
                | exception Net.Timeout -> `Timed_out))
          pairs
      in
      let timeouts =
        Array.fold_left
          (fun acc t -> match Pl.await p t with `Timed_out -> acc + 1 | `Completed -> acc)
          0 tasks
      in
      Alcotest.(check int) "every dropped completion surfaced as a timeout" n timeouts;
      Alcotest.(check bool) "gauge drains once the deadlines reclaim" true (drained p))

(* --- vectored I/O: the shim's algebra and its wire behaviour --- *)

let test_iov_algebra () =
  let module Iov = Io.Iov in
  let v = [ Bytes.of_string "ab"; Bytes.of_string ""; Bytes.of_string "cdef" ] in
  let str iovs = String.concat "" (List.map Bytes.to_string iovs) in
  Alcotest.(check int) "length" 6 (Iov.length v);
  Alcotest.(check string) "drop 0" "abcdef" (str (Iov.drop v 0));
  Alcotest.(check string) "drop within first" "bcdef" (str (Iov.drop v 1));
  Alcotest.(check string) "drop across buffers" "def" (str (Iov.drop v 3));
  Alcotest.(check string) "drop all" "" (str (Iov.drop v 6));
  Alcotest.(check string) "take 0" "" (str (Iov.take v 0));
  Alcotest.(check string) "take within first" "a" (str (Iov.take v 1));
  Alcotest.(check string) "take across buffers" "abcd" (str (Iov.take v 4));
  Alcotest.(check string) "take beyond end" "abcdef" (str (Iov.take v 99))

let test_writev_wire () =
  with_rt (fun _p rt ->
      let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let conn = Conn.create rt b in
      Fun.protect
        ~finally:(fun () ->
          Conn.close conn;
          try Unix.close a with Unix.Unix_error _ -> ())
      @@ fun () ->
      (* Header+payload shaped vectors, like Rpc frames. *)
      let frames =
        [
          [ Bytes.of_string "HDR1"; Bytes.of_string "payload-one" ];
          [ Bytes.of_string "HDR2"; Bytes.of_string "" ];
          [ Bytes.of_string "HDR3"; Bytes.of_string "payload-three" ];
        ]
      in
      List.iter (Conn.writev_all conn) frames;
      let expect = "HDR1payload-oneHDR2HDR3payload-three" in
      let buf = Bytes.create (String.length expect) in
      let rec read_all pos =
        if pos < Bytes.length buf then
          match Unix.read a buf pos (Bytes.length buf - pos) with
          | 0 -> Alcotest.fail "peer closed early"
          | n -> read_all (pos + n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              Unix.sleepf 0.002;
              read_all pos
      in
      read_all 0;
      Alcotest.(check string) "vectors arrive intact and in order" expect
        (Bytes.to_string buf))

let () =
  Alcotest.run "reactor"
    [
      ( "eager",
        [
          Alcotest.test_case "ready op completes inline" `Quick test_eager_inline;
          Alcotest.test_case "injected EAGAIN parks, resumes once" `Quick
            test_injected_eagain_parks;
        ] );
      ( "park",
        [
          Alcotest.test_case "pump executes on readiness (batched)" `Quick
            test_parked_read_batched;
          Alcotest.test_case "readiness wakes the fiber (legacy)" `Quick
            test_parked_read_legacy;
          Alcotest.test_case "deadline claims a parked intent" `Quick
            test_deadline_claims_intent;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "dropped completions detected, not hung" `Quick
            test_dropped_completion_detected;
        ] );
      ( "vectored",
        [
          Alcotest.test_case "iov drop/take algebra" `Quick test_iov_algebra;
          Alcotest.test_case "writev frames arrive intact" `Quick test_writev_wire;
        ] );
    ]
