(* Chaos suite: the fault plane's determinism contract, then the
   acceptance bar — storms of injected resets, short ops, delays and
   blackouts over real sockets, survived by the retry/breaker layer with
   correct checksums, zero leaked descriptors and a drained io_pending
   gauge.  The storm seed comes from CHAOS_SEED (default 42) and is
   echoed in every failure message so a red run can be replayed. *)

open Lhws_runtime
module P = Lhws_workloads.Pool_intf
module Net = Lhws_net.Net
module Reactor = Lhws_net.Reactor
module Conn = Lhws_net.Conn
module Listener = Lhws_net.Listener
module Rpc = Lhws_net.Rpc
module Fault = Lhws_net.Fault
module Rs = Lhws_net.Resilience
module Nmr = Lhws_net.Net_map_reduce

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string s with Failure _ -> 42)
  | None -> 42

let seeded msg = Printf.sprintf "%s (CHAOS_SEED=%d)" msg chaos_seed
let loopback0 = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)
let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let with_lhws_net ?(workers = 4) ?fault f =
  Lhws_pool.with_pool ~workers (fun p ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller p ?pending ?syscalls poll)
          ?fault ()
      in
      f p rt)

let raw_connect addr =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  fd

let payload ci k =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int ((ci * 1_000_003) + k));
  b

let chaos_policy () =
  Rs.Retry.policy ~max_attempts:10 ~base_backoff:0.001 ~max_backoff:0.01
    ~seed:chaos_seed ()

(* --- the replay contract: the verdict stream is a function of the seed --- *)

let test_fault_determinism () =
  (* Blackouts excluded: their windows are wall-clock state, so two
     planes drawn at different speeds would disagree on the remaining
     delay.  Everything that comes off the decision stream itself must
     replay exactly. *)
  let cfg rate seed =
    { (Fault.storm ~seed ~rate ()) with Fault.p_blackout = 0. }
  in
  let draw cfg n =
    let t = Fault.create cfg in
    let vs =
      List.init n (fun i ->
          if i mod 2 = 0 then Fault.on_read (Some t) Unix.stdin
          else Fault.on_write (Some t) Unix.stdin)
    in
    (vs, Fault.injected t, Fault.decisions t)
  in
  let a, ia, da = draw (cfg 0.3 chaos_seed) 400 in
  let b, ib, db = draw (cfg 0.3 chaos_seed) 400 in
  Alcotest.(check bool) (seeded "same seed, same verdict stream") true (a = b);
  Alcotest.(check bool) (seeded "same seed, same injected totals") true (ia = ib);
  Alcotest.(check int) "every draw consumed one decision" 400 da;
  Alcotest.(check int) "on both planes" 400 db;
  Alcotest.(check bool) (seeded "a 30% storm injects") true (Fault.total ia > 0);
  let c, _, _ = draw (cfg 0.3 (chaos_seed + 1)) 400 in
  Alcotest.(check bool) (seeded "different seed, different schedule") true (a <> c);
  (* The clean config never injects. *)
  let d, id_, _ = draw Fault.disabled 100 in
  Alcotest.(check bool) "disabled plane always passes" true
    (List.for_all (fun v -> v = Fault.Pass) d);
  Alcotest.(check int) "disabled plane injects nothing" 0 (Fault.total id_)

(* --- the acceptance bar: 500 connections through a 1% storm --- *)

let test_chaos_echo_lhws () =
  let before = count_fds () in
  let n =
    match Sys.getenv_opt "CHAOS_CONNS" with
    | Some s -> ( try int_of_string s with Failure _ -> 500)
    | None -> 500
  and calls = 3 in
  (* Bisect knobs for replaying a red run: CHAOS_CONNS scales the client
     count; CHAOS_ONLY=error,delay,... restricts the storm to a
     comma-separated subset of fault classes at an elevated rate. *)
  let cfg =
    let base = Fault.storm ~seed:chaos_seed ~rate:0.01 () in
    match Sys.getenv_opt "CHAOS_ONLY" with
    | None -> base
    | Some modes ->
        List.fold_left
          (fun c m ->
            match m with
            | "error" -> { c with Fault.p_error = 0.05 }
            | "eagain" -> { c with Fault.p_eagain = 0.05 }
            | "short" -> { c with Fault.p_short = 0.05 }
            | "delay" -> { c with Fault.p_delay = 0.05; delay_s = 0.002 }
            | "blackout" -> { c with Fault.p_blackout = 0.05; blackout_s = 0.01 }
            | "accept" -> { c with Fault.p_accept_fail = 0.05 }
            | _ -> c)
          { Fault.disabled with Fault.seed = base.Fault.seed }
          (String.split_on_char ',' modes)
  in
  let fault = Fault.create cfg in
  with_lhws_net ~workers:4 ~fault (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let config =
            { Listener.default_config with max_conns = 600; backlog = 512 }
          in
          let l = Rpc.serve (module Pl) p rt ~config loopback0 ~handler:Fun.id in
          let addr = Listener.addr l in
          let clients =
            Array.init n (fun _ ->
                Rs.Client.create (module Pl) p rt ~policy:(chaos_policy ()) addr)
          in
          let tasks =
            Array.mapi
              (fun ci cl ->
                Pl.async p (fun () ->
                    let ok = ref 0 in
                    for k = 0 to calls - 1 do
                      let b = payload ci k in
                      if Bytes.equal (Rs.Client.call cl b) b then incr ok
                    done;
                    !ok))
              clients
          in
          let total_ok = Array.fold_left (fun acc t -> acc + Pl.await p t) 0 tasks in
          Alcotest.(check int) (seeded "every chaos echo checksummed") (n * calls) total_ok;
          Array.iter Rs.Client.close clients;
          Listener.shutdown ~grace:10. l;
          Alcotest.(check int) (seeded "handlers drained") 0 (Listener.live l);
          (* No wedged fibers: every parked I/O wait must unwind. *)
          let rec wait_drain i =
            let g = (Pl.stats p).Scheduler_core.io_pending in
            if g > 0 then
              if i > 1000 then
                Alcotest.failf "io_pending stuck at %d (CHAOS_SEED=%d)" g chaos_seed
              else begin
                Pl.sleep p 0.005;
                wait_drain (i + 1)
              end
          in
          wait_drain 0));
  Alcotest.(check bool) (seeded "the storm actually fired") true
    (Fault.total (Fault.injected fault) > 0);
  Alcotest.(check int) (seeded "zero leaked fds") before (count_fds ())

(* --- same storm, blocking pools: Sync_client reconnects from OS
       threads while the pool's workers block in handlers --- *)

let run_chaos_sync (type p) (module Pw : P.POOL with type t = p) (pool : p) ~clients:nc
    ~iters =
  let fault = Fault.create (Fault.storm ~seed:chaos_seed ~rate:0.01 ()) in
  let rt = Reactor.blocking ~fault () in
  Pw.run pool (fun () ->
      let config = { Listener.default_config with backlog = 256 } in
      let l = Rpc.serve (module Pw) pool rt ~config loopback0 ~handler:Fun.id in
      let addr = Listener.addr l in
      let oks = Array.make nc 0 in
      let threads =
        Array.init nc (fun ci ->
            Thread.create
              (fun () ->
                let sc = Rs.Sync_client.create rt ~policy:(chaos_policy ()) addr in
                Fun.protect
                  ~finally:(fun () -> Rs.Sync_client.close sc)
                  (fun () ->
                    for k = 0 to iters - 1 do
                      let b = payload ci k in
                      if Bytes.equal (Rs.Sync_client.call sc b) b then
                        oks.(ci) <- oks.(ci) + 1
                    done))
              ())
      in
      Array.iter Thread.join threads;
      Listener.shutdown ~grace:10. l;
      Alcotest.(check int) (seeded "handlers drained") 0 (Listener.live l);
      Alcotest.(check int)
        (seeded "every sync chaos echo checksummed")
        (nc * iters)
        (Array.fold_left ( + ) 0 oks));
  Alcotest.(check bool) (seeded "the storm actually fired") true
    (Fault.total (Fault.injected fault) > 0)

let test_chaos_echo_ws () =
  let before = count_fds () in
  Ws_pool.with_pool ~workers:8 (fun p ->
      run_chaos_sync (module P.Ws_instance) p ~clients:4 ~iters:25);
  Alcotest.(check int) (seeded "zero leaked fds") before (count_fds ())

let test_chaos_echo_threads () =
  let before = count_fds () in
  let module Pt = P.Threaded_instance in
  let p = Pt.create () in
  Fun.protect
    ~finally:(fun () -> Pt.shutdown p)
    (fun () -> run_chaos_sync (module Pt) p ~clients:8 ~iters:25);
  Alcotest.(check int) (seeded "zero leaked fds") before (count_fds ())

(* --- chaos net_map_reduce: the reduction's checksum survives the storm
       on all three pools (the data server's own domain stays clean; the
       storm lives on the client reactor) --- *)

let test_chaos_net_map_reduce () =
  Nmr.with_data_server ~delta:0.001 (fun addr ->
      let n = 48 and fib_n = 5 in
      let expect = Nmr.expected ~n ~fib_n in
      let retry = chaos_policy () in
      let storm () = Fault.create (Fault.storm ~seed:chaos_seed ~rate:0.05 ()) in
      (let fault = storm () in
       with_lhws_net ~workers:2 ~fault (fun p rt ->
           let module Pl = P.Lhws_instance in
           let sum =
             Pl.run p (fun () ->
                 Nmr.run (module Pl) p rt ~addr ~n ~conns:2 ~fib_n ~retry ())
           in
           Alcotest.(check int) (seeded "lhws chaos checksum") expect sum;
           Alcotest.(check bool) (seeded "the storm actually fired") true
             (Fault.total (Fault.injected fault) > 0)));
      (let module Pw = P.Ws_instance in
       Ws_pool.with_pool ~workers:2 (fun p ->
           let rt = Reactor.blocking ~fault:(storm ()) () in
           let sum =
             Pw.run p (fun () -> Nmr.run (module Pw) p rt ~addr ~n ~conns:2 ~fib_n ~retry ())
           in
           Alcotest.(check int) (seeded "ws chaos checksum") expect sum));
      let module Pt = P.Threaded_instance in
      let p = Pt.create () in
      Fun.protect
        ~finally:(fun () -> Pt.shutdown p)
        (fun () ->
          let rt = Reactor.blocking ~fault:(storm ()) () in
          let sum =
            Pt.run p (fun () -> Nmr.run (module Pt) p rt ~addr ~n ~conns:2 ~fib_n ~retry ())
          in
          Alcotest.(check int) (seeded "threads chaos checksum") expect sum))

(* --- breaker convergence against a genuinely dead endpoint, then
       recovery once it comes back --- *)

let test_breaker_converges () =
  (* Claim an ephemeral port, then free it: a dead-but-routable endpoint. *)
  let probe = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt probe Unix.SO_REUSEADDR true;
  Unix.bind probe (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let addr = Unix.getsockname probe in
  Unix.close probe;
  let b = Rs.Breaker.create ~failure_threshold:3 ~cooldown:0.3 () in
  let rt = Reactor.blocking () in
  let sc =
    Rs.Sync_client.create rt ~policy:(Rs.Retry.policy ~max_attempts:1 ()) ~breaker:b addr
  in
  let refused = ref 0 and circuit = ref 0 in
  for _ = 1 to 6 do
    match Rs.Sync_client.call sc (Bytes.of_string "x") with
    | (_ : bytes) -> Alcotest.fail "dead endpoint answered"
    | exception Net.Circuit_open -> incr circuit
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> incr refused
  done;
  Alcotest.(check int) "threshold dials actually attempted" 3 !refused;
  Alcotest.(check int) "the rest refused by the breaker" 3 !circuit;
  Alcotest.(check bool) "converged to open" true (Rs.Breaker.state b = Rs.Breaker.Open);
  (* Fail-fast means microseconds, not a connect timeout. *)
  let t0 = Unix.gettimeofday () in
  (match Rs.Sync_client.call sc (Bytes.of_string "x") with
  | (_ : bytes) -> Alcotest.fail "dead endpoint answered"
  | exception Net.Circuit_open -> ());
  Alcotest.(check bool) "fail-fast is fast" true (Unix.gettimeofday () -. t0 < 0.05);
  (* Resurrect the endpoint on the very port the breaker is judging.  The
     probe's blocking socket calls run on an OS thread, not the test
     fiber: a raw blocking syscall would take worker 0 out of the engine,
     and the server's acceptor fiber — whose deque worker 0 owns — could
     never be resumed to answer it. *)
  with_lhws_net ~workers:2 (fun p rt_f ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let l = Rpc.serve (module Pl) p rt_f addr ~handler:Fun.id in
          Pl.sleep p 0.35;  (* wait out the cooldown *)
          let result = Atomic.make None in
          let th =
            Thread.create
              (fun () ->
                Atomic.set result
                  (Some
                     (try Ok (Rs.Sync_client.call sc (Bytes.of_string "back"))
                      with e -> Error e)))
              ()
          in
          let rec wait_probe i =
            match Atomic.get result with
            | Some r -> r
            | None ->
                if i > 2000 then Alcotest.fail "half-open probe never returned"
                else begin
                  Pl.sleep p 0.005;
                  wait_probe (i + 1)
                end
          in
          let r = wait_probe 0 in
          Thread.join th;
          (match r with
          | Ok r ->
              Alcotest.(check string) "half-open probe recovers" "back" (Bytes.to_string r)
          | Error e -> raise e);
          Alcotest.(check bool) "converged back to closed" true
            (Rs.Breaker.state b = Rs.Breaker.Closed);
          Listener.shutdown ~grace:2. l));
  Rs.Sync_client.close sc

(* --- overload shedding: arrivals above the high-water mark get a
       prompt close, the shed counter reaches the pool's stats --- *)

let test_overload_shed () =
  with_lhws_net ~workers:4 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let config = { Listener.default_config with shed_above = Some 4 } in
          let l =
            Listener.serve (module Pl) p rt ~config loopback0
              ~handler:(fun c ->
                let b = Bytes.create 1 in
                ignore (Conn.read c b 0 1 : int))
          in
          let addr = Listener.addr l in
          let fillers = Array.init 4 (fun _ -> raw_connect addr) in
          let rec wait_live i =
            if Listener.live l < 4 then
              if i > 1000 then Alcotest.fail "fillers not accepted"
              else begin
                Pl.sleep p 0.005;
                wait_live (i + 1)
              end
          in
          wait_live 0;
          let shed_fds = Array.init 8 (fun _ -> raw_connect addr) in
          (* Wait for the acceptor (a fiber) to process the arrivals
             BEFORE blocking this worker in [Unix.read]: a raw blocking
             syscall takes worker 0 out of the engine, and parked fibers
             whose deques it owns — the acceptor — can then never be
             resumed.  [Pl.sleep] keeps the worker scheduling instead. *)
          let rec wait_shed i =
            if Listener.shed l < 8 then
              if i > 1000 then Alcotest.fail "arrivals not shed"
              else begin
                Pl.sleep p 0.005;
                wait_shed (i + 1)
              end
          in
          wait_shed 0;
          (* A shed arrival's whole story: accepted, closed — the client
             reads a prompt EOF (or reset) instead of waiting in a queue. *)
          Array.iter
            (fun fd ->
              let b = Bytes.create 1 in
              match Unix.read fd b 0 1 with
              | 0 -> ()
              | _ -> Alcotest.fail "shed connection delivered data"
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ())
            shed_fds;
          Alcotest.(check int) "all overload arrivals shed" 8 (Listener.shed l);
          Alcotest.(check int) "shed counter reaches pool stats" 8
            (Pl.stats p).Scheduler_core.conns_shed;
          Alcotest.(check int) "live handlers untouched" 4 (Listener.live l);
          Array.iter Unix.close shed_fds;
          Array.iter Unix.close fillers;
          Listener.shutdown ~grace:5. l))

(* --- timer races: the retry budget and the per-operation Timer
       deadline race inside one resilient call, both ways --- *)

let test_budget_bounds_retries () =
  (* The server never answers in time; per-op deadlines keep cutting
     attempts, the budget ends the loop — not max_attempts. *)
  with_lhws_net ~workers:4 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let l =
            Rpc.serve (module Pl) p rt loopback0
              ~handler:(fun b ->
                Pl.sleep p 0.5;
                b)
          in
          let policy =
            Rs.Retry.policy ~max_attempts:50 ~base_backoff:0.001 ~max_backoff:0.002
              ~budget:0.12 ~seed:chaos_seed ()
          in
          let cl =
            Rs.Client.create (module Pl) p rt ~policy ~read_timeout:0.04
              (Listener.addr l)
          in
          let t0 = Unix.gettimeofday () in
          (match Rs.Client.call cl (Bytes.of_string "never") with
          | (_ : bytes) -> Alcotest.fail "server cannot have answered in time"
          | exception Net.Circuit_open -> Alcotest.fail "no breaker configured"
          | exception e ->
              Alcotest.(check bool) "the loop re-raises the transport failure" true
                (Rs.Retry.default_retryable e));
          let dt = Unix.gettimeofday () -. t0 in
          Alcotest.(check bool)
            (Printf.sprintf "budget bounded the call: %.3fs (CHAOS_SEED=%d)" dt chaos_seed)
            true
            (dt >= 0.1 && dt < 0.45);
          Rs.Client.close cl;
          Listener.shutdown ~grace:2. l))

let test_deadline_cuts_slow_attempt () =
  (* The other direction: a per-op Timer deadline kills a slow first
     attempt early enough that a retry wins well inside the budget. *)
  with_lhws_net ~workers:4 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let served = Atomic.make 0 in
          let l =
            Rpc.serve (module Pl) p rt loopback0
              ~handler:(fun b ->
                if Atomic.fetch_and_add served 1 = 0 then Pl.sleep p 0.3;
                b)
          in
          let policy =
            Rs.Retry.policy ~max_attempts:4 ~base_backoff:0.001 ~max_backoff:0.005
              ~budget:2.0 ~seed:chaos_seed ()
          in
          let cl =
            Rs.Client.create (module Pl) p rt ~policy ~read_timeout:0.05
              (Listener.addr l)
          in
          let t0 = Unix.gettimeofday () in
          let r = Rs.Client.call cl (Bytes.of_string "again") in
          let dt = Unix.gettimeofday () -. t0 in
          Alcotest.(check string) "retry answered" "again" (Bytes.to_string r);
          Alcotest.(check bool)
            (Printf.sprintf "deadline cut the stuck attempt: %.3fs" dt)
            true (dt < 0.28);
          Alcotest.(check bool) "the cut attempt cost a reconnect" true
            (Rs.Client.reconnects cl >= 1);
          Rs.Client.close cl;
          Listener.shutdown ~grace:2. l))

let () =
  Alcotest.run "faults"
    [
      ("plane", [ Alcotest.test_case "seeded determinism" `Quick test_fault_determinism ]);
      ( "chaos",
        [
          Alcotest.test_case "500-conn echo storm (lhws)" `Quick test_chaos_echo_lhws;
          Alcotest.test_case "sync echo storm (ws)" `Quick test_chaos_echo_ws;
          Alcotest.test_case "sync echo storm (threads)" `Quick test_chaos_echo_threads;
          Alcotest.test_case "net_map_reduce storm, 3 pools" `Quick test_chaos_net_map_reduce;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "breaker converges and recovers" `Quick test_breaker_converges;
          Alcotest.test_case "overload shedding" `Quick test_overload_shed;
          Alcotest.test_case "budget bounds retries" `Quick test_budget_bounds_retries;
          Alcotest.test_case "deadline cuts slow attempt" `Quick test_deadline_cuts_slow_attempt;
        ] );
    ]
