open Lhws_runtime
module Pool = Lhws_pool

let in_pool f = Pool.with_pool ~workers:2 (fun p -> Pool.run p (fun () -> f p))

let test_spawn_await () =
  in_pool (fun p -> Alcotest.(check int) "value" 9 (Future.await (Future.spawn p (fun () -> 9))))

let test_map () =
  in_pool (fun p ->
      let f = Future.map p (fun x -> x * 2) (Future.spawn p (fun () -> 21)) in
      Alcotest.(check int) "mapped" 42 (Future.await f))

let test_both () =
  in_pool (fun p ->
      let a = Future.spawn p (fun () -> "a") in
      let b = Future.spawn p (fun () -> "b") in
      Alcotest.(check (pair string string)) "both" ("a", "b") (Future.await (Future.both p a b)))

let test_all_order () =
  in_pool (fun p ->
      let futures =
        List.init 10 (fun i ->
            Future.spawn p (fun () ->
                (* later elements finish first *)
                Pool.sleep p (float_of_int (10 - i) *. 0.001);
                i))
      in
      Alcotest.(check (list int)) "order preserved" (List.init 10 Fun.id)
        (Future.await (Future.all p futures)))

let test_all_empty () =
  in_pool (fun p -> Alcotest.(check (list int)) "empty" [] (Future.await (Future.all p [])))

let test_all_propagates_exception () =
  in_pool (fun p ->
      let futures =
        [ Future.spawn p (fun () -> 1); Future.spawn p (fun () -> failwith "all boom") ]
      in
      match Future.await (Future.all p futures) with
      | _ -> Alcotest.fail "expected exception"
      | exception Failure m -> Alcotest.(check string) "message" "all boom" m)

let test_first_resolved () =
  in_pool (fun p ->
      let slow =
        Future.spawn p (fun () ->
            Pool.sleep p 0.05;
            "slow")
      in
      let fast =
        Future.spawn p (fun () ->
            Pool.sleep p 0.002;
            "fast")
      in
      Alcotest.(check string) "fast wins" "fast"
        (Future.await (Future.first_resolved p [ slow; fast ])))

let test_first_resolved_already_done () =
  in_pool (fun p ->
      let done_ = Future.spawn p (fun () -> 1) in
      let _ = Future.await done_ in
      let pending =
        Future.spawn p (fun () ->
            Pool.sleep p 0.05;
            2)
      in
      Alcotest.(check int) "resolved one wins" 1
        (Future.await (Future.first_resolved p [ done_; pending ])))

let test_first_resolved_empty () =
  in_pool (fun p ->
      match Future.first_resolved p [] with
      | (_ : int Future.t) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_traverse () =
  in_pool (fun p ->
      Alcotest.(check (list int)) "squares" [ 1; 4; 9; 16 ]
        (Future.await (Future.traverse p (fun x -> x * x) [ 1; 2; 3; 4 ])))

let () =
  Alcotest.run "future"
    [
      ( "combinators",
        [
          Alcotest.test_case "spawn/await" `Quick test_spawn_await;
          Alcotest.test_case "map" `Quick test_map;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "all order" `Quick test_all_order;
          Alcotest.test_case "all empty" `Quick test_all_empty;
          Alcotest.test_case "all exception" `Quick test_all_propagates_exception;
          Alcotest.test_case "first_resolved" `Quick test_first_resolved;
          Alcotest.test_case "first_resolved done" `Quick test_first_resolved_already_done;
          Alcotest.test_case "first_resolved empty" `Quick test_first_resolved_empty;
          Alcotest.test_case "traverse" `Quick test_traverse;
        ] );
    ]
