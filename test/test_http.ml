(* The HTTP serving layer's robustness battery.

   Parser side: the incremental parser must produce byte-identical
   results whether a recorded request stream arrives as one slab,
   byte-at-a-time, or split at random boundaries (seeded, replayable) —
   and malformed input must come back as a typed 4xx/5xx error, never an
   exception, never a hang.

   Server side: keep-alive echo and routing over a real lhws pool,
   pipelined response ordering, 400-close on garbage, 408 on a
   mid-request stall, 503 on shed/drain, and the fd/io_pending hygiene
   checks every net suite here pins. *)

open Lhws_runtime
module P = Lhws_workloads.Pool_intf
module Net = Lhws_net.Net
module Reactor = Lhws_net.Reactor
module Conn = Lhws_net.Conn
module Listener = Lhws_net.Listener
module Http = Lhws_net.Http
module Load = Lhws_net.Load
module Fault = Lhws_net.Fault

let loopback0 = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)

let with_lhws_net ?(workers = 2) ?fault f =
  Lhws_pool.with_pool ~workers (fun p ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller p ?pending ?syscalls poll)
          ?fault ()
      in
      f p rt)

let raw_connect addr =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  fd

(* Read everything until EOF on a raw blocking socket. *)
let slurp fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Parser: split-invariance property                                   *)
(* ------------------------------------------------------------------ *)

(* Canonical rendering of a parse outcome, so outcomes compare as
   strings and a mismatch prints both sides. *)
let render_request (r : Http.request) =
  Printf.sprintf "%s %s path=%s query=%s v=%s keep=%b hdrs=[%s] body=%S" r.meth
    r.target r.path r.query
    (match r.version with `Http_1_1 -> "1.1" | `Http_1_0 -> "1.0")
    r.keep_alive
    (String.concat "; " (List.map (fun (n, v) -> n ^ "=" ^ v) r.headers))
    (Bytes.to_string r.body)

let drain p =
  let rec go acc =
    match Http.Parser.next p with
    | Http.Parser.Request r -> go (render_request r :: acc)
    | Http.Parser.Need_more -> (List.rev acc, None)
    | Http.Parser.Failed e -> (List.rev acc, Some (e.status, e.reason))
  in
  go []

(* Feed [stream] split at the given cut points, draining after every
   fragment (so intermediate Need_more states are exercised too). *)
let parse_with_cuts stream cuts =
  let p = Http.Parser.create () in
  let bytes = Bytes.of_string stream in
  let n = Bytes.length bytes in
  let reqs = ref [] in
  let err = ref None in
  let feed_seg off len =
    Http.Parser.feed p ~off ~len bytes;
    let rs, e = drain p in
    reqs := !reqs @ rs;
    if !err = None then err := e
  in
  let rec go off = function
    | [] -> if off < n then feed_seg off (n - off)
    | c :: tl ->
        feed_seg off (c - off);
        go c tl
  in
  go 0 (List.sort_uniq compare (List.filter (fun c -> c > 0 && c < n) cuts));
  (!reqs, !err)

let whole stream = parse_with_cuts stream []
let bytewise stream = parse_with_cuts stream (List.init (String.length stream) Fun.id)

let recorded_stream =
  String.concat ""
    [
      "GET /hello?x=1&y=2 HTTP/1.1\r\nHost: t\r\nUser-Agent: battery\r\n\r\n";
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 11\r\n\r\nhello world";
      "POST /chunky HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n"
      ^ "4;ext=1\r\nWiki\r\n5\r\npedia\r\n0\r\nX-Trailer: ignored\r\n\r\n";
      "HEAD /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
      "DELETE /last HTTP/1.1\r\nConnection: close\r\n\r\n";
    ]

let test_parser_simple () =
  let reqs, err = whole recorded_stream in
  Alcotest.(check (option (pair int string))) "stream parses clean" None err;
  Alcotest.(check int) "five requests" 5 (List.length reqs);
  let first = List.nth reqs 0 in
  Alcotest.(check bool) "query split" true
    (Astring.String.is_infix ~affix:"path=/hello query=x=1&y=2" first);
  Alcotest.(check bool) "1.1 default keep-alive" true
    (Astring.String.is_infix ~affix:"keep=true" first);
  Alcotest.(check bool) "chunked body reassembled" true
    (Astring.String.is_infix ~affix:"body=\"Wikipedia\"" (List.nth reqs 2));
  Alcotest.(check bool) "1.0 keep-alive opt-in honoured" true
    (Astring.String.is_infix ~affix:"keep=true" (List.nth reqs 3));
  Alcotest.(check bool) "explicit close honoured" true
    (Astring.String.is_infix ~affix:"keep=false" (List.nth reqs 4))

let test_parser_split_invariance () =
  let reference = whole recorded_stream in
  Alcotest.(check (pair (list string) (option (pair int string))))
    "byte-at-a-time delivery parses identically" reference (bytewise recorded_stream);
  let n = String.length recorded_stream in
  for seed = 0 to 19 do
    let st = Random.State.make [| 0xB17E; seed |] in
    let cuts = List.init 12 (fun _ -> 1 + Random.State.int st (n - 1)) in
    Alcotest.(check (pair (list string) (option (pair int string))))
      (Printf.sprintf "random split (seed %d) parses identically" seed)
      reference
      (parse_with_cuts recorded_stream cuts)
  done

let test_parser_malformed () =
  let expect_status what stream status =
    (* Whole-slab and byte-at-a-time must agree on the failure too. *)
    List.iter
      (fun (mode, (reqs, err)) ->
        match err with
        | Some (got, reason) ->
            Alcotest.(check int)
              (Printf.sprintf "%s (%s) fails with %d (got %d: %s, after %d reqs)"
                 what mode status got reason (List.length reqs))
              status got
        | None -> Alcotest.failf "%s (%s): expected status %d, parsed clean" what mode status)
      [ ("whole", whole stream); ("bytewise", bytewise stream) ]
  in
  expect_status "conflicting content-length pair"
    "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello" 400;
  expect_status "content-length alongside transfer-encoding"
    "POST / HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
    400;
  expect_status "non-numeric content-length"
    "POST / HTTP/1.1\r\nContent-Length: 5x\r\n\r\n" 400;
  expect_status "bad chunk size"
    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhi\r\n0\r\n\r\n" 400;
  expect_status "chunk data overruns its size"
    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhello\r\n0\r\n\r\n" 400;
  expect_status "space before header colon"
    "GET / HTTP/1.1\r\nHost : t\r\n\r\n" 400;
  expect_status "obsolete line folding" "GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n" 400;
  expect_status "bare CR inside request line" "GET /\rx HTTP/1.1\r\n\r\n" 400;
  expect_status "unsupported transfer coding"
    "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n" 501;
  expect_status "unsupported protocol version" "GET / HTTP/2.0\r\n\r\n" 505;
  expect_status "garbage request line" "florble blorp\r\n\r\n" 400;
  (* Oversized head: build one bigger than the default 16 KiB limit. *)
  expect_status "oversized header block"
    ("GET / HTTP/1.1\r\nBig: " ^ String.make (17 * 1024) 'x' ^ "\r\n\r\n")
    431;
  (* A poisoned parser stays poisoned. *)
  let p = Http.Parser.create () in
  Http.Parser.feed p (Bytes.of_string "florble\r\n\r\n");
  (match Http.Parser.next p with
  | Http.Parser.Failed _ -> ()
  | _ -> Alcotest.fail "expected Failed");
  Http.Parser.feed p (Bytes.of_string "GET / HTTP/1.1\r\n\r\n");
  match Http.Parser.next p with
  | Http.Parser.Failed _ -> ()
  | _ -> Alcotest.fail "parser must stay failed after poisoning"

let test_parser_limits () =
  let p = Http.Parser.create ~max_body_bytes:8 () in
  Http.Parser.feed p
    (Bytes.of_string "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
  (match Http.Parser.next p with
  | Http.Parser.Failed e -> Alcotest.(check int) "oversized body is 413" 413 e.status
  | _ -> Alcotest.fail "expected 413");
  let p = Http.Parser.create ~max_body_bytes:8 () in
  Http.Parser.feed p
    (Bytes.of_string
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nabcdef\r\n6\r\nabcdef\r\n0\r\n\r\n");
  match Http.Parser.next p with
  | Http.Parser.Failed e -> Alcotest.(check int) "oversized chunked body is 413" 413 e.status
  | _ -> Alcotest.fail "expected 413 for chunked overrun"

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let dummy_req ?(meth = "GET") target =
  let p = Http.Parser.create () in
  Http.Parser.feed p (Bytes.of_string (meth ^ " " ^ target ^ " HTTP/1.1\r\n\r\n"));
  match Http.Parser.next p with
  | Http.Parser.Request r -> r
  | _ -> Alcotest.fail "dummy request failed to parse"

let test_router () =
  let r =
    Http.Router.create
      [
        Http.Router.route ~meth:"GET" "/fib/:n" (fun ps _ ->
            Http.text ("fib " ^ List.assoc "n" ps));
        Http.Router.route ~meth:"POST" "/echo" (fun _ req -> Http.response req.Http.body);
        Http.Router.route ~meth:"GET" "/files/*" (fun ps _ ->
            Http.text (List.assoc "*" ps));
      ]
  in
  let run req =
    let _, thunk = Http.Router.dispatch_of r req in
    thunk ()
  in
  let resp = run (dummy_req "/fib/32") in
  Alcotest.(check string) "capture" "fib 32" (Bytes.to_string resp.Http.resp_body);
  let resp = run (dummy_req "/files/a/b/c.txt") in
  Alcotest.(check string) "tail wildcard" "a/b/c.txt" (Bytes.to_string resp.Http.resp_body);
  let resp = run (dummy_req "/nope") in
  Alcotest.(check int) "unmatched path is 404" 404 resp.Http.status;
  let resp = run (dummy_req ~meth:"PUT" "/echo") in
  Alcotest.(check int) "wrong method is 405" 405 resp.Http.status;
  Alcotest.(check (option string))
    "405 carries allow" (Some "POST")
    (List.assoc_opt "allow" resp.Http.resp_headers)

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)
(* ------------------------------------------------------------------ *)

let echo_handler (req : Http.request) =
  match req.Http.path with
  | "/echo" -> Http.response req.Http.body
  | p -> Http.text ("hi " ^ p)

let test_http_echo_keepalive () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let before = count_fds () in
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let srv = Http.serve (module Pl) p rt loopback0 ~handler:echo_handler in
          let cl = Http.Client.connect (module Pl) p rt (Http.addr srv) in
          (* Sequential keep-alive reuse. *)
          for i = 1 to 5 do
            let body = Bytes.of_string (Printf.sprintf "round %d" i) in
            let resp =
              Pl.await p (Http.Client.call cl ~body ~meth:"POST" ~target:"/echo" ())
            in
            Alcotest.(check int) "echo status" 200 resp.Http.Client.status;
            Alcotest.(check string)
              "echo body" (Bytes.to_string body)
              (Bytes.to_string resp.Http.Client.body)
          done;
          (* Pipelined burst from concurrent fibers on one connection. *)
          let tasks =
            List.init 16 (fun i ->
                Pl.async p (fun () ->
                    let body = Bytes.of_string (string_of_int i) in
                    let resp =
                      Pl.await p
                        (Http.Client.call cl ~body ~meth:"POST" ~target:"/echo" ())
                    in
                    resp.Http.Client.status = 200
                    && Bytes.to_string resp.Http.Client.body = string_of_int i))
          in
          Alcotest.(check bool)
            "pipelined echoes all intact" true
            (List.for_all (fun t -> Pl.await p t) tasks);
          (* HEAD gets headers but no body. *)
          let resp =
            Pl.await p (Http.Client.call cl ~meth:"HEAD" ~target:"/stats" ())
          in
          Alcotest.(check int) "HEAD status" 200 resp.Http.Client.status;
          Alcotest.(check int) "HEAD body empty" 0 (Bytes.length resp.Http.Client.body);
          Alcotest.(check (option string))
            "HEAD still states the length" (Some "9")
            (List.assoc_opt "content-length" resp.Http.Client.headers);
          Http.Client.close cl;
          Alcotest.(check bool) "served counter moved" true (Http.served srv >= 22);
          Http.shutdown ~grace:2. srv);
      (* All intents drained: nothing parked once the server is down. *)
      Alcotest.(check int) "io_pending gauge drained" 0
        (Pl.stats p).Scheduler_core.io_pending);
  Alcotest.(check int) "no descriptor leaked" before (count_fds ())

let test_http_pipeline_order () =
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let router =
            Http.Router.create
              [
                Http.Router.route ~meth:"GET" "/slow" (fun _ _ ->
                    Pl.sleep p 0.1;
                    Http.text "slow");
                Http.Router.route ~meth:"GET" "/fast" (fun _ _ -> Http.text "fast");
              ]
          in
          let srv = Http.serve_router (module Pl) p rt loopback0 ~router in
          let cl = Http.Client.connect (module Pl) p rt (Http.addr srv) in
          let slow = Http.Client.call cl ~meth:"GET" ~target:"/slow" () in
          let fast = Http.Client.call cl ~meth:"GET" ~target:"/fast" () in
          let fast_resp = Pl.await p fast in
          (* HTTP/1.1 pipelining: the fast handler finished first, but
             its response cannot overtake the slow one on the wire. *)
          Alcotest.(check bool)
            "response order is request order" true
            (Promise.is_resolved slow);
          let slow_resp = Pl.await p slow in
          Alcotest.(check string) "slow body" "slow"
            (Bytes.to_string slow_resp.Http.Client.body);
          Alcotest.(check string) "fast body" "fast"
            (Bytes.to_string fast_resp.Http.Client.body);
          Http.Client.close cl;
          Http.shutdown ~grace:2. srv))

let test_http_malformed_400_and_close () =
  with_lhws_net (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let srv = Http.serve (module Pl) p rt loopback0 ~handler:echo_handler in
          let check_garbage what payload status =
            let fd = raw_connect (Http.addr srv) in
            let b = Bytes.of_string payload in
            ignore (Unix.write fd b 0 (Bytes.length b) : int);
            let answer = slurp fd in
            Unix.close fd;
            Alcotest.(check bool)
              (Printf.sprintf "%s answered %d and closed" what status)
              true
              (Astring.String.is_prefix
                 ~affix:(Printf.sprintf "HTTP/1.1 %d" status)
                 answer)
          in
          check_garbage "garbage request line" "florble blorp\r\n\r\n" 400;
          check_garbage "smuggled content-length pair"
            "POST /echo HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nhi" 400;
          check_garbage "cl+te smuggling"
            "POST /echo HTTP/1.1\r\nContent-Length: 2\r\nTransfer-Encoding: chunked\r\n\r\n"
            400;
          check_garbage "oversized header"
            ("GET / HTTP/1.1\r\nBig: " ^ String.make (17 * 1024) 'x' ^ "\r\n\r\n")
            431;
          Http.shutdown ~grace:2. srv))

let test_http_chunked_request_roundtrip () =
  with_lhws_net (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let srv = Http.serve (module Pl) p rt loopback0 ~handler:echo_handler in
          let fd = raw_connect (Http.addr srv) in
          let payload =
            "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
            ^ "7\r\nchunked\r\n6\r\n works\r\n0\r\n\r\n"
          in
          let b = Bytes.of_string payload in
          ignore (Unix.write fd b 0 (Bytes.length b) : int);
          let answer = slurp fd in
          Unix.close fd;
          Alcotest.(check bool) "status 200" true
            (Astring.String.is_prefix ~affix:"HTTP/1.1 200" answer);
          Alcotest.(check bool) "decoded chunked body echoed" true
            (Astring.String.is_suffix ~affix:"chunked works" answer);
          Http.shutdown ~grace:2. srv))

let test_http_408_mid_request () =
  with_lhws_net (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let config =
            {
              Http.default_config with
              listener =
                { Listener.default_config with read_timeout = Some 0.08 };
            }
          in
          let srv = Http.serve (module Pl) p rt ~config loopback0 ~handler:echo_handler in
          (* Stall mid-request: the head never terminates. *)
          let fd = raw_connect (Http.addr srv) in
          let b = Bytes.of_string "GET /echo HTTP/1.1\r\nHost: t\r\n" in
          ignore (Unix.write fd b 0 (Bytes.length b) : int);
          let answer = slurp fd in
          Unix.close fd;
          Alcotest.(check bool) "stalled request answered 408" true
            (Astring.String.is_prefix ~affix:"HTTP/1.1 408" answer);
          (* Idle at a request boundary: closed silently, no response. *)
          let fd = raw_connect (Http.addr srv) in
          let answer = slurp fd in
          Unix.close fd;
          Alcotest.(check string) "idle connection closed without a status" "" answer;
          Http.shutdown ~grace:2. srv))

let test_http_shed_503 () =
  with_lhws_net (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let config = { Http.default_config with shed_above = Some 0 } in
          let srv = Http.serve (module Pl) p rt ~config loopback0 ~handler:echo_handler in
          let cl = Http.Client.connect (module Pl) p rt (Http.addr srv) in
          let resp = Pl.await p (Http.Client.call cl ~meth:"GET" ~target:"/x" ()) in
          Alcotest.(check int) "shed answers 503" 503 resp.Http.Client.status;
          Alcotest.(check (option string))
            "shed advertises retry" (Some "1")
            (List.assoc_opt "retry-after" resp.Http.Client.headers);
          (* The connection survived the shed: a later request still works
             (here it sheds again, proving the conn is alive). *)
          let resp2 = Pl.await p (Http.Client.call cl ~meth:"GET" ~target:"/y" ()) in
          Alcotest.(check int) "connection survives shedding" 503 resp2.Http.Client.status;
          Alcotest.(check bool) "shed counter moved" true (Http.shed_503 srv >= 2);
          Http.Client.close cl;
          Http.shutdown ~grace:2. srv))

(* --- slowloris: concurrent trickled headers must all be 408'd, with
       no hung fiber and no leaked descriptor.  Seeded via CHAOS_SEED so
       a failing drip pattern replays exactly. --- *)

let test_http_slowloris_chaos () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let before = count_fds () in
  let seed =
    match Sys.getenv_opt "CHAOS_SEED" with Some s -> int_of_string s | None -> 0x51f
  in
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let config =
            {
              Http.default_config with
              listener =
                { Listener.default_config with read_timeout = Some 0.05 };
            }
          in
          let srv = Http.serve (module Pl) p rt ~config loopback0 ~handler:echo_handler in
          let addr = Http.addr srv in
          let n = 8 in
          let answers = Array.make n "" in
          let finished = Atomic.make 0 in
          (* Raw OS threads so the trickling clients can block freely
             without occupying pool workers. *)
          let clients =
            List.init n (fun i ->
                Thread.create
                  (fun () ->
                    let rng = Random.State.make [| seed; i |] in
                    let fd = raw_connect addr in
                    (* A header that never terminates, dripped 1-3 bytes
                       at a time with every gap longer than the read
                       timeout: the server must 408 the first stalled
                       read rather than wait for a complete request. *)
                    let header =
                      Printf.sprintf
                        "GET /drip-%d HTTP/1.1\r\nHost: slow\r\nX-Drip: 0123456789\r\n" i
                    in
                    (try
                       let off = ref 0 in
                       while !off < String.length header do
                         let k =
                           min (1 + Random.State.int rng 3) (String.length header - !off)
                         in
                         ignore (Unix.write_substring fd header !off k : int);
                         off := !off + k;
                         Unix.sleepf (0.08 +. Random.State.float rng 0.05)
                       done
                     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                       (* The 408+close landed mid-drip — expected. *)
                       ());
                    answers.(i) <-
                      (try slurp fd with Unix.Unix_error _ -> "");
                    Unix.close fd;
                    Atomic.incr finished)
                  ())
          in
          (* Keep this worker scheduling (fiber sleeps) while the clients
             drip: joining now would take it out of the engine, and any
             parked resume it owns — the acceptor, a conn reader — could
             never be delivered. *)
          let rec wait i =
            if Atomic.get finished < n then
              if i > 2000 then Alcotest.fail "slowloris clients stuck"
              else begin
                Pl.sleep p 0.01;
                wait (i + 1)
              end
          in
          wait 0;
          List.iter Thread.join clients;
          Array.iteri
            (fun i a ->
              Alcotest.(check bool)
                (Printf.sprintf "slowloris conn %d answered 408 (seed %#x)" i seed)
                true
                (Astring.String.is_prefix ~affix:"HTTP/1.1 408" a))
            answers;
          Http.shutdown ~grace:5. srv);
      (* Every stalled connection was reclaimed: nothing left parked. *)
      Alcotest.(check int) "io_pending gauge drained" 0
        (Pl.stats p).Scheduler_core.io_pending);
  Alcotest.(check int) "no descriptor leaked" before (count_fds ())

(* --- deadline-aware admission: once the oldest admitted request has
       waited past [max_queue_age], fresh work is browned out --- *)

let test_http_brownout_max_queue_age () =
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let config = { Http.default_config with max_queue_age = Some 0.05 } in
          let srv =
            Http.serve (module Pl) p rt ~config loopback0
              ~handler:(fun req ->
                if req.Http.path = "/slow" then Pl.sleep p 0.4;
                Http.text "done")
          in
          let cl = Http.Client.connect (module Pl) p rt (Http.addr srv) in
          let slow = Http.Client.call cl ~meth:"GET" ~target:"/slow" () in
          Pl.sleep p 0.15;
          Alcotest.(check bool) "age gauge sees the stuck head" true
            (Http.oldest_pending_age srv > 0.05);
          (* Pipelined on the live connection: refused per-request. *)
          let late = Http.Client.call cl ~meth:"GET" ~target:"/fresh" () in
          (* Brand-new connection: shed at accept with a prompt EOF,
             before it can park a parser fiber the server can't afford.
             Spin on the shed counter with fiber sleeps BEFORE touching
             the raw socket: a blocking [slurp] would take this worker
             out of the engine while the acceptor's resume may be parked
             on it (see test_faults's overload-shed note). *)
          let fd = raw_connect (Http.addr srv) in
          let rec wait_shed i =
            if Listener.shed (Http.listener srv) < 1 then
              if i > 1000 then Alcotest.fail "fresh connection not shed"
              else begin
                Pl.sleep p 0.005;
                wait_shed (i + 1)
              end
          in
          wait_shed 0;
          let eof = slurp fd in
          Unix.close fd;
          Alcotest.(check string) "fresh connection shed at accept" "" eof;
          let late_resp = Pl.await p late in
          Alcotest.(check int) "brownout refuses fresh work with 503" 503
            late_resp.Http.Client.status;
          Alcotest.(check (option string))
            "brownout advertises retry" (Some "1")
            (List.assoc_opt "retry-after" late_resp.Http.Client.headers);
          let slow_resp = Pl.await p slow in
          Alcotest.(check int) "aged request still completes" 200
            slow_resp.Http.Client.status;
          (* Pressure gone: admission recovers without intervention. *)
          let ok = Pl.await p (Http.Client.call cl ~meth:"GET" ~target:"/again" ()) in
          Alcotest.(check int) "admission recovers after the queue drains" 200
            ok.Http.Client.status;
          Alcotest.(check bool) "brownout counted as shed" true (Http.shed_503 srv >= 1);
          Http.Client.close cl;
          Http.shutdown ~grace:2. srv))

let test_http_drain_503 () =
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let srv =
            Http.serve (module Pl) p rt loopback0
              ~handler:(fun req ->
                if req.Http.path = "/slow" then Pl.sleep p 0.3;
                Http.text "done")
          in
          let cl = Http.Client.connect (module Pl) p rt (Http.addr srv) in
          let slow = Http.Client.call cl ~meth:"GET" ~target:"/slow" () in
          Pl.sleep p 0.05;
          let stopper = Pl.async p (fun () -> Http.shutdown ~grace:5. srv) in
          (* Give the drain flag time to land, then pipeline another
             request on the live connection: it must get 503 + close,
             while the in-flight one still completes. *)
          while not (Http.draining srv) do
            Pl.sleep p 0.005
          done;
          let late = Http.Client.call cl ~meth:"GET" ~target:"/late" () in
          let slow_resp = Pl.await p slow in
          Alcotest.(check int) "in-flight request completes through drain" 200
            slow_resp.Http.Client.status;
          let late_status =
            match Pl.await p late with
            | resp -> resp.Http.Client.status
            | exception (Net.Closed | Net.Peer_closed) ->
                (* The force-close raced our late request in: also a
                   valid drain outcome, but with grace >> handler time
                   the 503 should win in practice. *)
                -1
          in
          Alcotest.(check int) "request during drain is refused with 503" 503
            late_status;
          Pl.await p stopper;
          Alcotest.(check bool) "drain counted a shed" true (Http.shed_503 srv >= 1);
          Http.Client.close cl))

(* --- the fault battery: a short-read/delay storm must not corrupt
       framing, leak descriptors, or leave intents parked --- *)

let test_http_fault_storm () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let before = count_fds () in
  let seed =
    match Sys.getenv_opt "CHAOS_SEED" with Some s -> int_of_string s | None -> 0x417
  in
  (* Shorts, spurious EAGAINs and delays only: those must be absorbed
     with zero failures.  Hard errors/resets are exercised by the RPC
     chaos suite; here the property is parse integrity under
     fragmentation. *)
  let cfg =
    {
      (Fault.storm ~seed ~rate:0.0 ()) with
      Fault.p_short = 0.15;
      p_eagain = 0.05;
      p_delay = 0.05;
      delay_s = 0.001;
    }
  in
  let fault = Fault.create cfg in
  with_lhws_net ~workers:2 ~fault (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let srv = Http.serve (module Pl) p rt loopback0 ~handler:echo_handler in
          let body i = Bytes.of_string (Printf.sprintf "payload-%04d" i) in
          let report =
            Load.run_http (module Pl) p rt ~conns:4 ~inflight:2 ~iters:10
              ~req:(fun i ->
                {
                  Load.meth = "POST";
                  target = "/echo";
                  req_body = Some (body i);
                })
              (Http.addr srv)
          in
          Alcotest.(check int)
            (Printf.sprintf "no transport errors under the storm (seed %#x)" seed)
            0 report.Load.errors;
          Alcotest.(check int) "no non-2xx under the storm" 0 report.Load.non_2xx;
          Alcotest.(check int) "no connect failures" 0 report.Load.connect_failures;
          Alcotest.(check int) "every request answered" 80 report.Load.total;
          Http.shutdown ~grace:5. srv);
      Alcotest.(check bool)
        (Printf.sprintf "storm actually injected (seed %#x)" seed)
        true
        (Fault.total (Fault.injected fault) > 0);
      Alcotest.(check int) "io_pending gauge drained" 0
        (Pl.stats p).Scheduler_core.io_pending);
  Alcotest.(check int) "no descriptor leaked" before (count_fds ())

(* --- the load generator surfaces application failures per class --- *)

let test_http_load_counters () =
  with_lhws_net (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let srv =
            Http.serve (module Pl) p rt loopback0 ~handler:(fun req ->
                if req.Http.path = "/fail" then Http.text ~status:500 "boom"
                else Http.text "ok")
          in
          let report =
            Load.run_http (module Pl) p rt ~conns:2 ~inflight:1 ~iters:10
              ~req:(fun i -> Load.get (if i mod 2 = 0 then "/ok" else "/fail"))
              (Http.addr srv)
          in
          Alcotest.(check int) "transport clean" 0 report.Load.errors;
          Alcotest.(check int) "non-2xx counted per failing request" 10
            report.Load.non_2xx;
          Alcotest.(check int) "offered load accounted" 20 report.Load.total;
          Http.shutdown ~grace:2. srv))

let () =
  Alcotest.run "http"
    [
      ( "parser",
        [
          Alcotest.test_case "simple stream" `Quick test_parser_simple;
          Alcotest.test_case "split invariance" `Quick test_parser_split_invariance;
          Alcotest.test_case "malformed inputs" `Quick test_parser_malformed;
          Alcotest.test_case "size limits" `Quick test_parser_limits;
        ] );
      ("router", [ Alcotest.test_case "routing" `Quick test_router ]);
      ( "serving",
        [
          Alcotest.test_case "echo keep-alive" `Quick test_http_echo_keepalive;
          Alcotest.test_case "pipeline order" `Quick test_http_pipeline_order;
          Alcotest.test_case "malformed 400+close" `Quick test_http_malformed_400_and_close;
          Alcotest.test_case "chunked roundtrip" `Quick test_http_chunked_request_roundtrip;
          Alcotest.test_case "408 mid-request" `Quick test_http_408_mid_request;
          Alcotest.test_case "503 shed" `Quick test_http_shed_503;
          Alcotest.test_case "slowloris chaos" `Quick test_http_slowloris_chaos;
          Alcotest.test_case "brownout max_queue_age" `Quick
            test_http_brownout_max_queue_age;
          Alcotest.test_case "503 drain" `Quick test_http_drain_503;
          Alcotest.test_case "fault storm" `Quick test_http_fault_storm;
          Alcotest.test_case "load counters" `Quick test_http_load_counters;
        ] );
    ]
