(* Latency-hiding-specific behaviour: suspension, deque recycling,
   pollers, steal policies and shutdown paths.  The policy-independent
   contract (run/fork/await/parallel_for/stats/tracing) is covered for
   every pool by test_pool_conformance.ml. *)

open Lhws_runtime
module Pool = Lhws_pool

let test_sleep_duration () =
  Pool.with_pool ~workers:1 (fun p ->
      let t0 = Unix.gettimeofday () in
      Pool.run p (fun () -> Pool.sleep p 0.05);
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "slept at least 50ms" true (dt >= 0.045);
      Alcotest.(check bool) "did not oversleep wildly" true (dt < 0.5))

let test_sleep_zero () =
  Pool.with_pool ~workers:1 (fun p ->
      Alcotest.(check unit) "no-op" () (Pool.run p (fun () -> Pool.sleep p 0.)))

let test_latency_hiding_one_worker () =
  (* The headline behaviour: k concurrent sleeps of d seconds on ONE worker
     finish in ~d, not k*d, because fibers suspend instead of blocking. *)
  Pool.with_pool ~workers:1 (fun p ->
      let k = 10 and d = 0.04 in
      let t0 = Unix.gettimeofday () in
      Pool.run p (fun () ->
          Pool.parallel_for p ~lo:0 ~hi:k (fun _ -> Pool.sleep p d));
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "%.3fs ~ d, not k*d" dt)
        true
        (dt < float_of_int k *. d /. 2.))

let test_suspension_stats () =
  Pool.with_pool ~workers:1 (fun p ->
      Pool.run p (fun () -> Pool.parallel_for p ~lo:0 ~hi:8 (fun _ -> Pool.sleep p 0.01));
      let st = Pool.stats p in
      Alcotest.(check bool) "some suspensions" true (st.Pool.suspensions >= 8);
      Alcotest.(check bool) "resumed as many" true (st.Pool.resumes >= 8);
      Alcotest.(check bool) "allocated deques" true (st.Pool.deques_allocated >= 1))

let test_many_fibers () =
  Pool.with_pool ~workers:2 (fun p ->
      let n = 2000 in
      let sum =
        Pool.run p (fun () ->
            Pool.parallel_map_reduce p ~lo:0 ~hi:n ~map:(fun i -> i mod 7) ~combine:( + ) ~id:0)
      in
      let expect = List.fold_left (fun a i -> a + (i mod 7)) 0 (List.init n Fun.id) in
      Alcotest.(check int) "sum" expect sum)

let test_mixed_sleep_compute () =
  Pool.with_pool ~workers:2 (fun p ->
      let v =
        Pool.run p (fun () ->
            Pool.parallel_map_reduce p ~lo:0 ~hi:20
              ~map:(fun i ->
                if i mod 2 = 0 then Pool.sleep p 0.005;
                i)
              ~combine:( + ) ~id:0)
      in
      Alcotest.(check int) "sum" 190 v)

let test_yield () =
  Pool.with_pool ~workers:1 (fun p ->
      let order = ref [] in
      Pool.run p (fun () ->
          let pr =
            Pool.async p (fun () -> order := "child" :: !order)
          in
          Fiber.yield ();
          order := "parent" :: !order;
          Pool.await pr);
      (* Exact interleaving depends on drain timing; both must have run. *)
      Alcotest.(check (list string)) "both ran" [ "child"; "parent" ]
        (List.sort compare !order))

let test_deep_nesting () =
  Pool.with_pool ~workers:2 (fun p ->
      let rec nest d = if d = 0 then 1 else fst (Pool.fork2 p (fun () -> nest (d - 1)) (fun () -> 0)) in
      Alcotest.(check int) "deep" 1 (Pool.run p (fun () -> nest 200)))

let test_exception_after_suspension () =
  (* A fiber that suspends and then fails: the exception must surface at
     the await, not kill a worker. *)
  Pool.with_pool ~workers:2 (fun p ->
      Alcotest.check_raises "late failure" (Failure "after sleep") (fun () ->
          Pool.run p (fun () ->
              let pr =
                Pool.async p (fun () ->
                    Pool.sleep p 0.005;
                    failwith "after sleep")
              in
              Pool.await pr));
      (* pool still healthy afterwards *)
      Alcotest.(check int) "still works" 3 (Pool.run p (fun () -> 3)))

let test_many_runs_with_suspension () =
  (* Repeated run cycles leave no residue: deques recycle, counters grow
     consistently. *)
  Pool.with_pool ~workers:2 (fun p ->
      for round = 1 to 5 do
        let v =
          Pool.run p (fun () ->
              Pool.parallel_map_reduce p ~lo:0 ~hi:8
                ~map:(fun i ->
                  Pool.sleep p 0.002;
                  i)
                ~combine:( + ) ~id:0)
        in
        Alcotest.(check int) (Printf.sprintf "round %d" round) 28 v
      done;
      let st = Pool.stats p in
      Alcotest.(check bool) "suspensions accumulated" true (st.Pool.suspensions >= 5 * 8))

let test_timer_and_io_pollers_coexist () =
  Pool.with_pool ~workers:1 (fun p ->
      let io = Io.create () in
      Pool.register_poller p (fun () -> Io.poll io);
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () ->
          Unix.close r;
          Unix.close w)
        (fun () ->
          let result =
            Pool.run p (fun () ->
                let sleeper =
                  Pool.async p (fun () ->
                      Pool.sleep p 0.01;
                      Io.write_all io w (Bytes.of_string "k");
                      1)
                in
                let reader =
                  Pool.async p (fun () ->
                      let buf = Bytes.create 1 in
                      Io.read_exactly io r buf 1;
                      2)
                in
                Pool.await sleeper + Pool.await reader)
          in
          Alcotest.(check int) "both event sources served" 3 result))

let test_deque_table_growth () =
  (* Regression for the fixed-size global deque table, which used to die
     with [failwith "deque table overflow"] when allocations outran its
     slots.  Deque ids are never reused (recycling keeps the id), so the
     table's high-water mark is lifetime fresh allocations; [Spread]
     resume placement allocates a fresh deque per suspend/resume round
     (the pinned home deque is abandoned, the continuation re-enters
     through a new one), which deterministically pushes a 2-slot table
     through several doublings.  Every suspension must still resume and
     the grown table must serve normal compute. *)
  Pool.with_pool ~workers:1 ~resume_placement:Pool.Spread ~initial_deques:2
    (fun p ->
      let rounds = 12 in
      let hits = ref 0 in
      Pool.run p (fun () ->
          for _ = 1 to rounds do
            Pool.sleep p 0.002;
            incr hits
          done);
      Alcotest.(check int) "every round crossed its suspension" rounds !hits;
      let st = Pool.stats p in
      Alcotest.(check bool)
        (Printf.sprintf "grew past the initial table (%d allocated)"
           st.Pool.deques_allocated)
        true
        (st.Pool.deques_allocated > 2);
      (* The grown table serves normal compute untouched. *)
      Alcotest.(check int) "map_reduce after growth" 5050
        (Pool.run p (fun () ->
             Pool.parallel_map_reduce p ~lo:1 ~hi:101 ~map:Fun.id ~combine:( + )
               ~id:0)))

let test_victim_stats_growth () =
  let module VS = Scheduler_core.Victim_stats in
  let t = VS.create ~victims:2 in
  Alcotest.(check int) "initial capacity" 2 (VS.capacity t);
  VS.record t 0 ~hit:true;
  VS.record t 0 ~hit:true;
  VS.record t 1 ~hit:false;
  let r0 = VS.rate t 0 and r1 = VS.rate t 1 in
  Alcotest.(check bool) "hits raise the rate" true (r0 > 0.5);
  Alcotest.(check bool) "misses lower the rate" true (r1 < 0.5);
  VS.ensure_capacity t 8;
  Alcotest.(check int) "grown" 8 (VS.capacity t);
  Alcotest.(check (float 1e-9)) "existing rate kept (hit)" r0 (VS.rate t 0);
  Alcotest.(check (float 1e-9)) "existing rate kept (miss)" r1 (VS.rate t 1);
  Alcotest.(check (float 1e-9)) "new slots start at the prior" 0.5 (VS.rate t 5);
  VS.ensure_capacity t 4;
  Alcotest.(check int) "never shrinks" 8 (VS.capacity t)

let test_victim_stats_pick_foreign () =
  let module VS = Scheduler_core.Victim_stats in
  let t = VS.create ~victims:8 in
  let rng = Random.State.make [| 42 |] in
  Alcotest.(check int) "single victim" 0 (VS.pick_foreign t rng ~n:1);
  (* [n] may trail the tracker's capacity: draws stay inside [0, n). *)
  for _ = 1 to 200 do
    let v = VS.pick_foreign t rng ~n:3 in
    if v < 0 || v >= 3 then Alcotest.failf "draw %d out of range" v
  done;
  (* Two-choice bias: with one clearly hot slot, most draws find it. *)
  for v = 0 to 2 do
    for _ = 1 to 20 do
      VS.record t v ~hit:(v = 2)
    done
  done;
  let hot = ref 0 in
  for _ = 1 to 200 do
    if VS.pick_foreign t rng ~n:3 = 2 then incr hot
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hot victim favoured (%d/200)" !hot)
    (* Two-choice sampling over 3 slots draws the hot slot with
       probability 1 - (2/3)^2 = 5/9, so the mean is 111/200; 90 sits
       ~3σ below that and well above the unbiased 67. *)
    true (!hot > 90)

let test_worker_steal_policy () =
  (* Section 6's worker-targeted steals: same results, and with latency in
     play steals still succeed (fibers migrate). *)
  Pool.with_pool ~workers:2 ~steal_policy:Pool.Worker_then_deque (fun p ->
      let v =
        Pool.run p (fun () ->
            Pool.parallel_map_reduce p ~lo:0 ~hi:40
              ~map:(fun i ->
                if i mod 4 = 0 then Pool.sleep p 0.002;
                Lhws_workloads.Fib.seq 10 + i)
              ~combine:( + ) ~id:0)
      in
      let expect = List.fold_left (fun a i -> a + 55 + i) 0 (List.init 40 Fun.id) in
      Alcotest.(check int) "value" expect v;
      let rec fib n =
        if n < 2 then n
        else
          let a, b = Pool.fork2 p (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
          a + b
      in
      Alcotest.(check int) "fib under worker steals" 987 (Pool.run p (fun () -> fib 16)))

let test_resume_batch_ordering () =
  (* addResumedVertices contract: a batch of resumes drained together is
     re-injected as a pfor tree that unfolds in arrival order.  One worker;
     k fibers suspend, parking their resume callbacks; a blocker task then
     pins the worker while an external domain fires every callback in index
     order, so all k land in the deque's MPSC channel as one batch.  On a
     single worker the pfor tree must then execute them 0, 1, ..., k-1. *)
  let k = 16 in
  Pool.with_pool ~workers:1 (fun p ->
      let slots = Array.make k (fun () -> ()) in
      let registered = Atomic.make 0 in
      let release = Atomic.make false in
      let order = ref [] in
      let executed =
        Pool.run p (fun () ->
            (* Pushed first = popped last: the blocker runs only after every
               suspender has suspended. *)
            let blocker =
              Pool.async p (fun () ->
                  while not (Atomic.get release) do
                    Domain.cpu_relax ()
                  done)
            in
            let prs =
              List.init k (fun i ->
                  Pool.async p (fun () ->
                      Fiber.suspend (fun resume ->
                          slots.(i) <- resume;
                          Atomic.incr registered);
                      order := i :: !order))
            in
            let firer =
              Domain.spawn (fun () ->
                  while Atomic.get registered < k do
                    Domain.cpu_relax ()
                  done;
                  Array.iter (fun resume -> resume ()) slots;
                  Atomic.set release true)
            in
            List.iter (fun pr -> Pool.await pr) prs;
            Pool.await blocker;
            Domain.join firer;
            List.rev !order)
      in
      Alcotest.(check (list int)) "batch executes in arrival order" (List.init k Fun.id) executed)

let test_idle_backoff_wakes_for_timer () =
  (* The idle path backs off exponentially, but the sleep is clamped to the
     next timer deadline: a 1 ms timer on an otherwise-idle pool must not
     be overslept by workers parked at the 1 ms backoff cap.  The upper
     bound is wall-clock on a possibly-shared machine, so the measurement
     retries a few times — the test only fails if every attempt exceeds
     the tolerance, which OS scheduling jitter alone will not sustain. *)
  Pool.with_pool ~workers:4 (fun p ->
      ignore (Pool.run p (fun () -> 0));
      let tolerance = 0.05 in
      let attempts = 3 in
      let rec measure attempt =
        (* give the other workers time to climb to the backoff cap *)
        Unix.sleepf 0.02;
        let t0 = Unix.gettimeofday () in
        Pool.run p (fun () -> Pool.sleep p 0.001);
        let dt = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) (Printf.sprintf "slept %.4fs >= 1ms" dt) true (dt >= 0.001);
        if dt >= tolerance && attempt < attempts then measure (attempt + 1)
        else
          Alcotest.(check bool)
            (Printf.sprintf "woke within %.0fms (%.4fs, attempt %d/%d)"
               (tolerance *. 1e3) dt attempt attempts)
            true (dt < tolerance)
      in
      measure 1)

(* --- shutdown paths --- *)

let test_shutdown_after_root_exception () =
  (* A root fiber that raises (after actually suspending) must not wedge
     the workers: shutdown still joins every domain promptly. *)
  let p = Pool.create ~workers:3 () in
  (try
     Pool.run p (fun () ->
         Pool.parallel_for p ~lo:0 ~hi:4 (fun _ -> Pool.sleep p 0.002);
         failwith "boom")
   with Failure _ -> ());
  Pool.shutdown p;
  Alcotest.(check pass) "joined cleanly" () ()

let test_double_shutdown () =
  let p = Pool.create ~workers:2 () in
  Alcotest.(check int) "works" 1 (Pool.run p (fun () -> 1));
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check pass) "second shutdown is a no-op" () ()

let test_run_after_shutdown_raises () =
  let p = Pool.create ~workers:2 () in
  Pool.shutdown p;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Lhws_pool.run: pool is shut down") (fun () ->
      ignore (Pool.run p (fun () -> 0)))

let test_with_pool_propagates_and_shuts_down () =
  (* with_pool must shut the pool down even when the body raises, and the
     body's exception wins. *)
  Alcotest.check_raises "body exception surfaces" (Failure "body") (fun () ->
      Pool.with_pool ~workers:2 (fun p ->
          ignore (Pool.run p (fun () -> 1));
          failwith "body"))

let test_shutdown_timely () =
  (* Domains with nothing to do are spinning thieves; shutdown must not
     wait on timers or sleeps to stop them. *)
  let p = Pool.create ~workers:4 () in
  ignore (Pool.run p (fun () -> 0));
  let t0 = Unix.gettimeofday () in
  Pool.shutdown p;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) (Printf.sprintf "shutdown took %.3fs" dt) true (dt < 1.0)

let () =
  Alcotest.run "lhws_pool"
    [
      ("basics", [ Alcotest.test_case "worker steal policy" `Quick test_worker_steal_policy ]);
      ( "deques",
        [
          Alcotest.test_case "table growth under suspension" `Quick
            test_deque_table_growth;
          Alcotest.test_case "victim stats growth" `Quick test_victim_stats_growth;
          Alcotest.test_case "victim stats pick_foreign" `Quick
            test_victim_stats_pick_foreign;
        ] );
      ( "latency",
        [
          Alcotest.test_case "sleep duration" `Quick test_sleep_duration;
          Alcotest.test_case "sleep zero" `Quick test_sleep_zero;
          Alcotest.test_case "hiding on one worker" `Quick test_latency_hiding_one_worker;
          Alcotest.test_case "suspension stats" `Quick test_suspension_stats;
          Alcotest.test_case "mixed sleep/compute" `Quick test_mixed_sleep_compute;
          Alcotest.test_case "exception after suspension" `Quick test_exception_after_suspension;
          Alcotest.test_case "many runs with suspension" `Quick test_many_runs_with_suspension;
          Alcotest.test_case "timer + io pollers" `Quick test_timer_and_io_pollers_coexist;
          Alcotest.test_case "resume batch ordering" `Quick test_resume_batch_ordering;
          Alcotest.test_case "idle backoff wakes for timer" `Quick test_idle_backoff_wakes_for_timer;
        ] );
      ( "stress",
        [
          Alcotest.test_case "many fibers" `Slow test_many_fibers;
          Alcotest.test_case "yield" `Quick test_yield;
          Alcotest.test_case "deep nesting" `Slow test_deep_nesting;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "after root exception" `Quick test_shutdown_after_root_exception;
          Alcotest.test_case "double shutdown" `Quick test_double_shutdown;
          Alcotest.test_case "run after shutdown raises" `Quick test_run_after_shutdown_raises;
          Alcotest.test_case "with_pool on body exception" `Quick
            test_with_pool_propagates_and_shuts_down;
          Alcotest.test_case "shutdown is timely" `Quick test_shutdown_timely;
        ] );
    ]
