(* The Chase-Lev stress layer, and the mutation checks that prove it can
   actually catch deque bugs: six deliberately broken deques — a racy
   unsynchronized one, one that steals from the wrong end, one that
   silently drops elements, and three broken steal-half variants
   (off-by-one floor split, single-CAS range reservation, stale-top blind
   store) — must each be flagged. *)

module Stress = Lhws_proptest.Stress
module CL = Lhws_deque.Chase_lev

let real = (module Stress.Chase_lev_deque : Stress.DEQUE)

let test_real_hammer () =
  let r = Stress.hammer real ~thieves:3 ~items:20_000 () in
  if not (Stress.ok r) then Alcotest.failf "chase-lev flagged: %a" (fun ppf -> Stress.pp_report ppf) r;
  Alcotest.(check int) "all consumed" 20_000 (r.Stress.popped + r.Stress.stolen)

let test_real_hammer_many_thieves () =
  let r = Stress.hammer real ~thieves:6 ~items:8_000 ~pop_every:3 () in
  if not (Stress.ok r) then Alcotest.failf "chase-lev flagged: %a" (fun ppf -> Stress.pp_report ppf) r

let test_real_sequential_model () =
  for seed = 1 to 10 do
    let r = Stress.sequential_model real ~ops:4_000 ~seed () in
    if not (Stress.ok r) then
      Alcotest.failf "seed %d flagged: %a" seed (fun ppf -> Stress.pp_report ppf) r
  done

let test_real_hammer_steal_half () =
  let r = Stress.hammer real ~thieves:3 ~items:20_000 ~steal:`Half () in
  if not (Stress.ok r) then Alcotest.failf "chase-lev flagged: %a" (fun ppf -> Stress.pp_report ppf) r;
  Alcotest.(check int) "all consumed" 20_000 (r.Stress.popped + r.Stress.stolen)

let test_real_hammer_steal_half_paused () =
  (* The owner pause opens consecutive-steal windows on a single core, so
     thieves land real multi-element batches against an active owner. *)
  let r = Stress.hammer real ~thieves:4 ~items:10_000 ~pop_every:3 ~owner_pause_every:50 ~steal:`Half () in
  if not (Stress.ok r) then Alcotest.failf "chase-lev flagged: %a" (fun ppf -> Stress.pp_report ppf) r

let test_real_split_model () =
  let r = Stress.split_model real ~max_size:64 () in
  if not (Stress.ok r) then Alcotest.failf "chase-lev flagged: %a" (fun ppf -> Stress.pp_report ppf) r;
  (* Sum of ceil(n/2) over n = 0..64. *)
  let expect = List.init 65 (fun n -> (n + 1) / 2) |> List.fold_left ( + ) 0 in
  Alcotest.(check int) "exact split sizes" expect r.Stress.stolen

(* --- mutation 1: no synchronization at all --- *)

module Racy : Stress.DEQUE = struct
  type 'a t = { mutable buf : 'a array; mutable top : int; mutable bottom : int }

  let create ?(capacity = 16) () =
    { buf = Array.make (max 16 capacity) (Obj.magic 0); top = 0; bottom = 0 }

  let grow d =
    let n = Array.length d.buf in
    let buf = Array.make (2 * n) (Obj.magic 0) in
    Array.blit d.buf 0 buf 0 n;
    d.buf <- buf

  let push_bottom d x =
    if d.bottom >= Array.length d.buf then grow d;
    d.buf.(d.bottom) <- x;
    d.bottom <- d.bottom + 1

  let pop_bottom d =
    if d.bottom > d.top then begin
      d.bottom <- d.bottom - 1;
      Some d.buf.(d.bottom)
    end
    else None

  let steal d =
    if d.top < d.bottom then begin
      let x = d.buf.(d.top) in
      (* Widen the race window: every interleaving of two thieves between
         the read and the increment duplicates an element.  The window is
         a long relax loop, not a single relax, so that on a single-core
         machine — where the race needs an OS preemption to land exactly
         between the read and the increment — the window covers a large
         enough fraction of the steal loop to be hit reliably. *)
      for _ = 1 to 256 do
        Domain.cpu_relax ()
      done;
      d.top <- d.top + 1;
      Some x
    end
    else None

  let steal_half d f =
    let n = d.bottom - d.top in
    if n <= 0 then 0
    else begin
      let want = (n + 1) / 2 in
      let k = ref 0 in
      for _ = 1 to want do
        match steal d with
        | Some x ->
            f x;
            incr k
        | None -> ()
      done;
      !k
    end
end

let test_racy_deque_caught () =
  (* Racy by nature, so give it a few attempts; on any multi-core machine
     a 20k-element hammer against unsynchronized indices is effectively
     guaranteed to lose or duplicate something. *)
  let violations = ref 0 in
  let attempts = 10 in
  (try
     for _ = 1 to attempts do
       let r = Stress.hammer (module Racy) ~thieves:4 ~items:20_000 () in
       violations := !violations + r.Stress.lost + r.Stress.duplicated + r.Stress.reordered;
       if !violations > 0 then raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "harness caught the race" true (!violations > 0)

(* --- mutation 2: steal takes the newest element (LIFO) instead of the
   oldest.  Properly locked, so only the order oracle can see it. --- *)

module Wrong_end : Stress.DEQUE = struct
  type 'a t = { mu : Mutex.t; mutable items : 'a list (* newest first *) }

  let create ?capacity:_ () = { mu = Mutex.create (); items = [] }

  let with_mu d f =
    Mutex.lock d.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock d.mu) f

  let push_bottom d x = with_mu d (fun () -> d.items <- x :: d.items)

  let pop_bottom d =
    with_mu d (fun () ->
        match d.items with
        | [] -> None
        | x :: rest ->
            d.items <- rest;
            Some x)

  let steal = pop_bottom (* BUG: should take the oldest *)

  let steal_half d f =
    (* Same wrong end, batched: takes the newest half. *)
    with_mu d (fun () ->
        let n = List.length d.items in
        let want = (n + 1) / 2 in
        let rec take i =
          if i >= want then i
          else
            match d.items with
            | [] -> i
            | x :: rest ->
                d.items <- rest;
                f x;
                take (i + 1)
        in
        take 0)
end

let test_wrong_end_caught () =
  let r = Stress.sequential_model (module Wrong_end) ~ops:2_000 ~seed:11 () in
  Alcotest.(check bool) "reorder caught" true (r.Stress.reordered > 0)

let test_wrong_end_caught_concurrent () =
  (* An inversion needs one thief to land two back-to-back steals (LIFO
     steals interleaved with owner pushes can look increasing).  On a
     single-core machine a thief's timeslice may land zero or one steal
     before the owner drains the deque, so retry until a run produces the
     burst — any multi-core or lucky single-core schedule catches it on
     the first attempt. *)
  let reordered = ref 0 in
  let attempts = 10 in
  (try
     for _ = 1 to attempts do
       let r =
         Stress.hammer (module Wrong_end) ~thieves:2 ~items:5_000 ~owner_pause_every:50 ()
       in
       reordered := !reordered + r.Stress.reordered;
       if !reordered > 0 then raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "thief saw non-increasing steals" true (!reordered > 0)

(* --- mutation 3: drops every 37th popped element --- *)

module Lossy : Stress.DEQUE = struct
  type 'a t = { d : 'a CL.t; mutable pops : int }

  let create ?capacity () = { d = CL.create ?capacity (); pops = 0 }
  let push_bottom t x = CL.push_bottom t.d x

  let pop_bottom t =
    t.pops <- t.pops + 1;
    let got = CL.pop_bottom t.d in
    if t.pops mod 37 = 0 && got <> None then CL.pop_bottom t.d (* BUG: drops [got] *)
    else got

  let steal t = CL.steal t.d
  let steal_half t f = CL.steal_half t.d f
end

let test_lossy_caught () =
  let r = Stress.sequential_model (module Lossy) ~ops:4_000 ~seed:3 () in
  Alcotest.(check bool) "loss caught" true (r.Stress.lost > 0 || r.Stress.reordered > 0)

(* --- mutation 4: off-by-one split (floor instead of ceil) --- *)

module Floor_split : Stress.DEQUE = struct
  include CL

  let steal_half d f =
    (* BUG: floor split — a 1-element victim yields nothing, a 3-element
       one only a third.  Loses and duplicates nothing, so only the split
       contract check can see it. *)
    let want = CL.size d / 2 in
    let rec go i =
      if i >= want then i
      else
        match CL.steal d with
        | Some x ->
            f x;
            go (i + 1)
        | None -> i
    in
    go 0
end

let test_floor_split_caught () =
  let r = Stress.split_model (module Floor_split) ~max_size:64 () in
  Alcotest.(check bool) "wrong split size caught" true (r.Stress.reordered > 0)

(* --- substrate for the two concurrent steal-half mutations ---
   A minimal, correct Chase-Lev core (option slots, atomic buffer
   publication), so each broken variant below differs from a sound
   algorithm only in its steal_half.  We cannot build these over the real
   [Chase_lev] because its indices are private — and that is the point:
   the bugs live in the reservation protocol itself. *)

module Mini = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : 'a option array Atomic.t;
  }

  let create ?(capacity = 16) () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (Array.make (max 2 capacity) None);
    }

  let slot buf i = i mod Array.length buf

  let grow d t b =
    let old = Atomic.get d.buf in
    let bigger = Array.make (2 * Array.length old) None in
    for i = t to b - 1 do
      bigger.(slot bigger i) <- old.(slot old i)
    done;
    Atomic.set d.buf bigger

  let push_bottom d x =
    let b = Atomic.get d.bottom in
    let t = Atomic.get d.top in
    if b - t >= Array.length (Atomic.get d.buf) then grow d t b;
    let buf = Atomic.get d.buf in
    buf.(slot buf b) <- Some x;
    Atomic.set d.bottom (b + 1)

  let pop_bottom d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      Atomic.set d.bottom t;
      None
    end
    else begin
      let buf = Atomic.get d.buf in
      let x = buf.(slot buf b) in
      if b > t then x
      else begin
        let won = Atomic.compare_and_set d.top t (t + 1) in
        Atomic.set d.bottom (t + 1);
        if won then x else None
      end
    end

  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else begin
      let buf = Atomic.get d.buf in
      let x = buf.(slot buf t) in
      if Atomic.compare_and_set d.top t (t + 1) then x else None
    end

  (* No steal_half here: each variant below supplies its own broken one
     (the sound batch would CAS each element individually, as the real
     deque does). *)
end

(* --- mutation 5: one CAS reserves the whole range --- *)

module Range_cas : Stress.DEQUE = struct
  include Mini

  let steal_half d f =
    (* BUG: reserving [t, t + want) with a single CAS on top.  The owner's
       pop_bottom plain-takes any slot strictly above the top it read, so
       a thief that stalls between its (t, b) read and the CAS can claim
       slots the owner has meanwhile popped or reused — duplicating and
       losing elements.  The relax loop widens the stale window so a
       single-core schedule hits it too (cf. the Racy mutation). *)
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    let n = b - t in
    if n <= 0 then 0
    else begin
      let want = (n + 1) / 2 in
      (* A real sleep, not a relax loop: the owner must have time to pop
         its way down INTO the claimed [t, t + want) range — thousands of
         pops when the deque is long — before the CAS lands.  The CAS
         still succeeds as long as the owner has not consumed index t
         itself (plain pops never touch top), which is exactly the
         unsoundness. *)
      Unix.sleepf 50e-6;
      if Atomic.compare_and_set d.top t (t + want) then begin
        let buf = Atomic.get d.buf in
        for i = t to t + want - 1 do
          Option.iter f buf.(Mini.slot buf i)
        done;
        want
      end
      else 0
    end
end

let test_range_cas_caught () =
  (* The window needs the owner popping while a thief holds a stale (t, b)
     snapshot, so pop aggressively and give thieves the CPU; retry a few
     times, as with the Racy mutation. *)
  let violations = ref 0 in
  let attempts = 10 in
  (try
     for _ = 1 to attempts do
       let r =
         Stress.hammer (module Range_cas) ~thieves:4 ~items:20_000 ~pop_every:2
           ~owner_pause_every:20 ~steal:`Half ()
       in
       violations := !violations + r.Stress.lost + r.Stress.duplicated + r.Stress.reordered;
       if !violations > 0 then raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "range-CAS reservation caught" true (!violations > 0)

(* --- mutation 6: stale-top read published with a blind store --- *)

module Stale_top : Stress.DEQUE = struct
  include Mini

  let steal_half d f =
    (* BUG: the batch is read from a stale top and published with a plain
       store instead of a CAS.  Two overlapping thieves hand out the same
       elements, and a store of an older t + want can move top backwards
       past a concurrent thief's reservation. *)
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    let n = b - t in
    if n <= 0 then 0
    else begin
      let want = (n + 1) / 2 in
      let buf = Atomic.get d.buf in
      let taken = ref [] in
      for i = t to t + want - 1 do
        match buf.(Mini.slot buf i) with
        | Some x -> taken := x :: !taken
        | None -> ()
      done;
      for _ = 1 to 256 do
        Domain.cpu_relax ()
      done;
      Atomic.set d.top (t + want);
      List.iter f (List.rev !taken);
      want
    end
end

let test_stale_top_caught () =
  let violations = ref 0 in
  let attempts = 10 in
  (try
     for _ = 1 to attempts do
       let r =
         Stress.hammer (module Stale_top) ~thieves:4 ~items:20_000 ~owner_pause_every:20
           ~steal:`Half ()
       in
       violations := !violations + r.Stress.lost + r.Stress.duplicated + r.Stress.reordered;
       if !violations > 0 then raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "stale-top blind store caught" true (!violations > 0)

let () =
  Alcotest.run "stress"
    [
      ( "chase-lev",
        [
          Alcotest.test_case "owner vs thieves" `Slow test_real_hammer;
          Alcotest.test_case "six thieves" `Slow test_real_hammer_many_thieves;
          Alcotest.test_case "sequential model" `Quick test_real_sequential_model;
          Alcotest.test_case "steal-half hammer" `Slow test_real_hammer_steal_half;
          Alcotest.test_case "steal-half hammer (paused owner)" `Slow
            test_real_hammer_steal_half_paused;
          Alcotest.test_case "split model" `Quick test_real_split_model;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "racy deque caught" `Slow test_racy_deque_caught;
          Alcotest.test_case "wrong-end steal caught" `Quick test_wrong_end_caught;
          Alcotest.test_case "wrong-end steal caught (hammer)" `Slow test_wrong_end_caught_concurrent;
          Alcotest.test_case "lossy pop caught" `Quick test_lossy_caught;
          Alcotest.test_case "floor split caught" `Quick test_floor_split_caught;
          Alcotest.test_case "range-CAS steal-half caught" `Slow test_range_cas_caught;
          Alcotest.test_case "stale-top steal-half caught" `Slow test_stale_top_caught;
        ] );
    ]
