(* The Chase-Lev stress layer, and the mutation checks that prove it can
   actually catch deque bugs: three deliberately broken deques — a racy
   unsynchronized one, one that steals from the wrong end, and one that
   silently drops elements — must each be flagged. *)

module Stress = Lhws_proptest.Stress
module CL = Lhws_deque.Chase_lev

let real = (module Stress.Chase_lev_deque : Stress.DEQUE)

let test_real_hammer () =
  let r = Stress.hammer real ~thieves:3 ~items:20_000 () in
  if not (Stress.ok r) then Alcotest.failf "chase-lev flagged: %a" (fun ppf -> Stress.pp_report ppf) r;
  Alcotest.(check int) "all consumed" 20_000 (r.Stress.popped + r.Stress.stolen)

let test_real_hammer_many_thieves () =
  let r = Stress.hammer real ~thieves:6 ~items:8_000 ~pop_every:3 () in
  if not (Stress.ok r) then Alcotest.failf "chase-lev flagged: %a" (fun ppf -> Stress.pp_report ppf) r

let test_real_sequential_model () =
  for seed = 1 to 10 do
    let r = Stress.sequential_model real ~ops:4_000 ~seed () in
    if not (Stress.ok r) then
      Alcotest.failf "seed %d flagged: %a" seed (fun ppf -> Stress.pp_report ppf) r
  done

(* --- mutation 1: no synchronization at all --- *)

module Racy : Stress.DEQUE = struct
  type 'a t = { mutable buf : 'a array; mutable top : int; mutable bottom : int }

  let create ?(capacity = 16) () =
    { buf = Array.make (max 16 capacity) (Obj.magic 0); top = 0; bottom = 0 }

  let grow d =
    let n = Array.length d.buf in
    let buf = Array.make (2 * n) (Obj.magic 0) in
    Array.blit d.buf 0 buf 0 n;
    d.buf <- buf

  let push_bottom d x =
    if d.bottom >= Array.length d.buf then grow d;
    d.buf.(d.bottom) <- x;
    d.bottom <- d.bottom + 1

  let pop_bottom d =
    if d.bottom > d.top then begin
      d.bottom <- d.bottom - 1;
      Some d.buf.(d.bottom)
    end
    else None

  let steal d =
    if d.top < d.bottom then begin
      let x = d.buf.(d.top) in
      (* Widen the race window: every interleaving of two thieves between
         the read and the increment duplicates an element.  The window is
         a long relax loop, not a single relax, so that on a single-core
         machine — where the race needs an OS preemption to land exactly
         between the read and the increment — the window covers a large
         enough fraction of the steal loop to be hit reliably. *)
      for _ = 1 to 256 do
        Domain.cpu_relax ()
      done;
      d.top <- d.top + 1;
      Some x
    end
    else None
end

let test_racy_deque_caught () =
  (* Racy by nature, so give it a few attempts; on any multi-core machine
     a 20k-element hammer against unsynchronized indices is effectively
     guaranteed to lose or duplicate something. *)
  let violations = ref 0 in
  let attempts = 10 in
  (try
     for _ = 1 to attempts do
       let r = Stress.hammer (module Racy) ~thieves:4 ~items:20_000 () in
       violations := !violations + r.Stress.lost + r.Stress.duplicated + r.Stress.reordered;
       if !violations > 0 then raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "harness caught the race" true (!violations > 0)

(* --- mutation 2: steal takes the newest element (LIFO) instead of the
   oldest.  Properly locked, so only the order oracle can see it. --- *)

module Wrong_end : Stress.DEQUE = struct
  type 'a t = { mu : Mutex.t; mutable items : 'a list (* newest first *) }

  let create ?capacity:_ () = { mu = Mutex.create (); items = [] }

  let with_mu d f =
    Mutex.lock d.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock d.mu) f

  let push_bottom d x = with_mu d (fun () -> d.items <- x :: d.items)

  let pop_bottom d =
    with_mu d (fun () ->
        match d.items with
        | [] -> None
        | x :: rest ->
            d.items <- rest;
            Some x)

  let steal = pop_bottom (* BUG: should take the oldest *)
end

let test_wrong_end_caught () =
  let r = Stress.sequential_model (module Wrong_end) ~ops:2_000 ~seed:11 () in
  Alcotest.(check bool) "reorder caught" true (r.Stress.reordered > 0)

let test_wrong_end_caught_concurrent () =
  (* An inversion needs one thief to land two back-to-back steals (LIFO
     steals interleaved with owner pushes can look increasing).  On a
     single-core machine a thief's timeslice may land zero or one steal
     before the owner drains the deque, so retry until a run produces the
     burst — any multi-core or lucky single-core schedule catches it on
     the first attempt. *)
  let reordered = ref 0 in
  let attempts = 10 in
  (try
     for _ = 1 to attempts do
       let r =
         Stress.hammer (module Wrong_end) ~thieves:2 ~items:5_000 ~owner_pause_every:50 ()
       in
       reordered := !reordered + r.Stress.reordered;
       if !reordered > 0 then raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) "thief saw non-increasing steals" true (!reordered > 0)

(* --- mutation 3: drops every 37th popped element --- *)

module Lossy : Stress.DEQUE = struct
  type 'a t = { d : 'a CL.t; mutable pops : int }

  let create ?capacity () = { d = CL.create ?capacity (); pops = 0 }
  let push_bottom t x = CL.push_bottom t.d x

  let pop_bottom t =
    t.pops <- t.pops + 1;
    let got = CL.pop_bottom t.d in
    if t.pops mod 37 = 0 && got <> None then CL.pop_bottom t.d (* BUG: drops [got] *)
    else got

  let steal t = CL.steal t.d
end

let test_lossy_caught () =
  let r = Stress.sequential_model (module Lossy) ~ops:4_000 ~seed:3 () in
  Alcotest.(check bool) "loss caught" true (r.Stress.lost > 0 || r.Stress.reordered > 0)

let () =
  Alcotest.run "stress"
    [
      ( "chase-lev",
        [
          Alcotest.test_case "owner vs thieves" `Slow test_real_hammer;
          Alcotest.test_case "six thieves" `Slow test_real_hammer_many_thieves;
          Alcotest.test_case "sequential model" `Quick test_real_sequential_model;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "racy deque caught" `Slow test_racy_deque_caught;
          Alcotest.test_case "wrong-end steal caught" `Quick test_wrong_end_caught;
          Alcotest.test_case "wrong-end steal caught (hammer)" `Slow test_wrong_end_caught_concurrent;
          Alcotest.test_case "lossy pop caught" `Quick test_lossy_caught;
        ] );
    ]
