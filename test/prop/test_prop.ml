(* The fuzzing harness's own guarantees: the generators are deterministic
   in the seed (the replay contract), shrinking terminates and descends,
   and a run of the full oracle stack over a few hundred cases is clean. *)

module Recipe = Lhws_proptest.Recipe
module Oracle = Lhws_proptest.Oracle
module Runner = Lhws_proptest.Runner
module Rng = Lhws_core.Rng

let quick_options =
  (* Small budget: the long-haul budget lives in `lhws_fuzz --count 1000`
     (CI) — this keeps `dune runtest` snappy while still crossing every
     oracle, including one real-pool case. *)
  { Runner.default_options with count = 60; pool_every = 20 }

let test_runner_clean () =
  let outcome = Runner.run quick_options in
  (match outcome.Runner.failed with
  | [] -> ()
  | f :: _ -> Alcotest.failf "unexpected failure: %a" (fun ppf -> Runner.pp_case_failure ppf) f);
  Alcotest.(check int) "all cases ran" quick_options.Runner.count outcome.Runner.cases;
  Alcotest.(check bool) "program cases present" true (outcome.Runner.program_cases > 0);
  Alcotest.(check bool) "dag cases present" true (outcome.Runner.dag_cases > 0);
  Alcotest.(check bool) "a pool case ran" true (outcome.Runner.pool_checked > 0)

let test_generate_case_deterministic () =
  for seed = 0 to 40 do
    let a = Runner.generate_case seed and b = Runner.generate_case seed in
    Alcotest.(check bool) (Printf.sprintf "seed %d stable" seed) true (a = b)
  done

let test_runner_deterministic () =
  let opts = { quick_options with count = 30; pool_every = 0 } in
  let a = Runner.run opts and b = Runner.run opts in
  Alcotest.(check bool) "same outcome" true (a = b)

let test_case_seed_replay () =
  (* The replay contract: case i of a run seeded s is case 0 of a run
     seeded s + i. *)
  let base = 42 in
  for i = 0 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "case %d" i)
      true
      (Runner.generate_case (base + i) = Runner.generate_case (base + i + 0))
  done

(* Shrinking termination: every candidate strictly decreases this measure,
   so greedy descent cannot cycle. *)
let rec prog_measure = function
  | Recipe.Ret k -> 1 + abs k
  | Recipe.Map_add (k, p) | Recipe.Work (k, p) | Recipe.Latency (k, p) ->
      1 + abs k + prog_measure p
  | Recipe.Fork (l, r) -> 1 + prog_measure l + prog_measure r
  | Recipe.Seq_fork (p, k, r) -> 2 + abs k + prog_measure p + prog_measure r

let test_shrink_prog_decreases () =
  for seed = 0 to 30 do
    let p = Recipe.gen_prog (Rng.make seed) in
    let m = prog_measure p in
    List.iter
      (fun p' ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d candidate smaller" seed)
          true
          (prog_measure p' < m))
      (Recipe.shrink_prog p)
  done

let test_shrink_prog_reaches_minimum () =
  (* With an always-failing predicate, greedy descent must bottom out at
     the minimal recipe. *)
  let rec descend p steps =
    if steps > 10_000 then Alcotest.fail "shrink descent did not terminate"
    else
      match Recipe.shrink_prog p with
      | [] -> (p, steps)
      | p' :: _ -> descend p' (steps + 1)
  in
  let p = Recipe.gen_prog (Rng.make 7) in
  let minimal, _ = descend p 0 in
  Alcotest.(check bool) "minimal is Ret 0" true (minimal = Recipe.Ret 0)

let test_recipes_well_formed () =
  for seed = 0 to 60 do
    let rng = Rng.make seed in
    let d = Recipe.gen_dag rng in
    let g = Recipe.to_dag d in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d wf" seed)
      true
      (Lhws_dag.Check.well_formed g);
    let u = Recipe.width_upper_bound d g in
    Alcotest.(check bool) (Printf.sprintf "seed %d width bound sane" seed) true (u >= 0)
  done

let test_width_upper_bound_sound () =
  (* Against the exhaustive Definition 1 search on small dags. *)
  let checked = ref 0 in
  for seed = 0 to 200 do
    let d = Recipe.gen_dag (Rng.make seed) in
    let g = Recipe.to_dag d in
    if Lhws_dag.Dag.num_vertices g <= 14 then begin
      incr checked;
      let exact = Lhws_dag.Suspension.exact g in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: ub >= exact" seed)
        true
        (Recipe.width_upper_bound d g >= exact)
    end
  done;
  Alcotest.(check bool) "covered some small dags" true (!checked > 5)

let test_oracle_program_clean_known () =
  (* A hand-picked program touching every constructor. *)
  let open Recipe in
  let p =
    Seq_fork
      ( Latency (3, Ret 5),
        2,
        Fork (Map_add (10, Ret 1), Work (2, Latency (2, Ret 4))) )
  in
  Alcotest.(check (list string)) "sim oracle clean" []
    (List.map (fun f -> f.Oracle.check) (Oracle.check_program_sim ~seed:1 p));
  Alcotest.(check (list string)) "pool oracle clean" []
    (List.map (fun f -> f.Oracle.check) (Oracle.check_program_pools ~workers:2 p))

let () =
  Alcotest.run "prop"
    [
      ( "runner",
        [
          Alcotest.test_case "generators deterministic" `Quick test_generate_case_deterministic;
          Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "case-seed replay" `Quick test_case_seed_replay;
          Alcotest.test_case "oracles clean on 60 cases" `Slow test_runner_clean;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "candidates decrease" `Quick test_shrink_prog_decreases;
          Alcotest.test_case "descent reaches minimum" `Quick test_shrink_prog_reaches_minimum;
        ] );
      ( "recipes",
        [
          Alcotest.test_case "dags well-formed" `Quick test_recipes_well_formed;
          Alcotest.test_case "width upper bound sound" `Quick test_width_upper_bound_sound;
          Alcotest.test_case "known program clean" `Quick test_oracle_program_clean_known;
        ] );
    ]
