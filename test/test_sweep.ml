module Generate = Lhws_dag.Generate
open Lhws_core

let dag = Generate.map_reduce ~n:24 ~leaf_work:4 ~latency:60

let test_baseline_normalization () =
  match Sweep.speedups ~dag ~ps:[ 1; 2 ] () with
  | [ lhws; ws ] ->
      Alcotest.(check string) "first is LHWS" "LHWS" (Sweep.algo_name lhws.Sweep.algo);
      Alcotest.(check string) "second is WS" "WS" (Sweep.algo_name ws.Sweep.algo);
      let ws1 = List.hd ws.Sweep.points in
      Alcotest.(check int) "p recorded" 1 ws1.Sweep.p;
      Alcotest.(check (float 1e-9)) "WS P=1 speedup is 1" 1.0 ws1.Sweep.speedup
  | _ -> Alcotest.fail "expected two series"

let test_lhws_beats_ws_with_latency () =
  match Sweep.speedups ~dag ~ps:[ 1; 2; 4 ] () with
  | [ lhws; ws ] ->
      List.iter2
        (fun (a : Sweep.point) (b : Sweep.point) ->
          Alcotest.(check bool)
            (Printf.sprintf "LHWS ahead at P=%d" a.Sweep.p)
            true
            (a.Sweep.speedup > b.Sweep.speedup))
        lhws.Sweep.points ws.Sweep.points
  | _ -> Alcotest.fail "expected two series"

let test_custom_algos_and_baseline () =
  match
    Sweep.speedups ~algos:[ Sweep.Greedy ] ~baseline:Sweep.Greedy ~dag ~ps:[ 1 ] ()
  with
  | [ greedy ] ->
      let p1 = List.hd greedy.Sweep.points in
      Alcotest.(check (float 1e-9)) "self-relative" 1.0 p1.Sweep.speedup
  | _ -> Alcotest.fail "expected one series"

let test_run_algo_dispatch () =
  List.iter
    (fun algo ->
      let r = Sweep.run_algo algo dag ~p:2 in
      Alcotest.(check bool) (Sweep.algo_name algo) true (r.Run.rounds > 0))
    [ Sweep.Lhws; Sweep.Ws; Sweep.Greedy ]

let test_algo_names () =
  Alcotest.(check string) "lhws" "LHWS" (Sweep.algo_name Sweep.Lhws);
  Alcotest.(check string) "ws" "WS" (Sweep.algo_name Sweep.Ws);
  Alcotest.(check string) "greedy" "GREEDY" (Sweep.algo_name Sweep.Greedy)

let test_pp_series () =
  let series = Sweep.speedups ~dag ~ps:[ 1; 2 ] () in
  let out = Format.asprintf "%a" Sweep.pp_series series in
  Alcotest.(check bool) "has header" true (Astring.String.is_infix ~affix:"LHWS rounds" out);
  Alcotest.(check bool) "has rows" true (Astring.String.is_infix ~affix:"\n" out)

let test_speedup_monotone_mapreduce () =
  (* On the regular map-reduce workload, more workers never hurt much. *)
  match Sweep.speedups ~dag ~ps:[ 1; 2; 4; 8 ] () with
  | [ lhws; _ ] ->
      let speeds = List.map (fun (p : Sweep.point) -> p.Sweep.speedup) lhws.Sweep.points in
      let rec weakly_up = function
        | a :: (b :: _ as rest) -> b >= a *. 0.9 && weakly_up rest
        | _ -> true
      in
      Alcotest.(check bool) "weakly increasing" true (weakly_up speeds)
  | _ -> Alcotest.fail "expected two series"

(* --- determinism: same seed + config must reproduce runs exactly --- *)

let test_speedups_deterministic () =
  let go () =
    Sweep.speedups ~config:{ Config.default with seed = 1234 } ~dag ~ps:[ 1; 2; 4 ] ()
  in
  let s1 = go () and s2 = go () in
  Alcotest.(check bool) "identical series" true (s1 = s2)

let test_run_algo_stats_identical () =
  let config = { Config.default with seed = 77 } in
  List.iter
    (fun algo ->
      let r1 = Sweep.run_algo algo ~config dag ~p:3 in
      let r2 = Sweep.run_algo algo ~config dag ~p:3 in
      let name = Sweep.algo_name algo in
      Alcotest.(check int) (name ^ " rounds") r1.Run.rounds r2.Run.rounds;
      Alcotest.(check bool)
        (name ^ " stats byte-identical")
        true
        (Marshal.to_string r1.Run.stats [] = Marshal.to_string r2.Run.stats []);
      Alcotest.(check (list (pair string int)))
        (name ^ " stats assoc")
        (Stats.to_assoc r1.Run.stats)
        (Stats.to_assoc r2.Run.stats))
    [ Sweep.Lhws; Sweep.Ws; Sweep.Greedy ]

let test_snapshot_stream_deterministic () =
  (* The observer sees the full per-round scheduler state; two runs with
     the same seed must produce byte-identical snapshot streams. *)
  let collect () =
    let snaps = ref [] in
    let r =
      Lhws_sim.run
        ~config:{ Config.analysis with seed = 9 }
        ~observer:(fun s -> snaps := s :: !snaps)
        dag ~p:4
    in
    (r.Run.rounds, List.rev !snaps)
  in
  let rounds1, snaps1 = collect () in
  let rounds2, snaps2 = collect () in
  Alcotest.(check int) "rounds" rounds1 rounds2;
  Alcotest.(check int) "one snapshot per round" rounds1 (List.length snaps1);
  Alcotest.(check bool) "snapshot streams identical" true (snaps1 = snaps2)

let test_seed_changes_schedule () =
  (* Sanity check on the other direction: the seed is actually feeding the
     scheduler's steal choices, so across many seeds the steal statistics
     can't all coincide. *)
  let steal_attempts seed =
    let r = Sweep.run_algo Sweep.Lhws ~config:{ Config.default with seed } dag ~p:4 in
    List.assoc "steal_attempts" (Stats.to_assoc r.Run.stats)
  in
  let xs = List.map steal_attempts [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check bool) "seeds vary steals" true (List.length (List.sort_uniq compare xs) > 1)

let () =
  Alcotest.run "sweep"
    [
      ( "speedups",
        [
          Alcotest.test_case "baseline normalization" `Quick test_baseline_normalization;
          Alcotest.test_case "LHWS beats WS with latency" `Quick test_lhws_beats_ws_with_latency;
          Alcotest.test_case "custom algos/baseline" `Quick test_custom_algos_and_baseline;
          Alcotest.test_case "run_algo dispatch" `Quick test_run_algo_dispatch;
          Alcotest.test_case "algo names" `Quick test_algo_names;
          Alcotest.test_case "pp" `Quick test_pp_series;
          Alcotest.test_case "monotone speedup" `Quick test_speedup_monotone_mapreduce;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "speedups reproducible" `Quick test_speedups_deterministic;
          Alcotest.test_case "run_algo stats identical" `Quick test_run_algo_stats_identical;
          Alcotest.test_case "snapshot stream identical" `Quick test_snapshot_stream_deterministic;
          Alcotest.test_case "seed feeds the scheduler" `Quick test_seed_changes_schedule;
        ] );
    ]
