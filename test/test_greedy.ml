module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core

let check = Alcotest.(check int)
let traced = { Config.default with trace = true }

let test_chain () =
  let g = Generate.chain ~n:12 () in
  let r = Greedy.run ~config:traced g ~p:4 in
  check "rounds = span + 1" 12 r.Run.rounds;
  Schedule.check_exn g (Run.trace_exn r)

let test_wide () =
  (* 8 independent chains of length 5 on 4 workers: enough parallelism to
     keep everyone busy most rounds. *)
  let g = Generate.parallel_chains ~k:8 ~len:5 in
  let r = Greedy.run g ~p:4 in
  Alcotest.(check bool) "within bound" true (r.Run.rounds <= Greedy.bound g ~p:4)

let test_latency_critical_path () =
  let g = Generate.single_latency ~delta:25 in
  let r = Greedy.run g ~p:2 in
  check "rounds = delta + 1" 26 r.Run.rounds

let test_bound_formula () =
  let g = Generate.map_reduce ~n:10 ~leaf_work:2 ~latency:5 in
  check "bound" (((Metrics.work g + 3) / 4) + Metrics.span g) (Greedy.bound g ~p:4)

let test_theorem1_on_generators () =
  let cases =
    [
      Generate.map_reduce ~n:40 ~leaf_work:5 ~latency:33;
      Generate.server ~n:15 ~f_work:7 ~latency:11;
      Generate.fib ~n:13 ();
      Generate.pipeline ~stages:5 ~items:9 ~latency:8;
      Generate.parallel_chains ~k:9 ~len:14;
      Generate.chain ~latency_every:4 ~latency:17 ~n:50 ();
    ]
  in
  List.iter
    (fun g ->
      List.iter
        (fun p ->
          let r = Greedy.run g ~p in
          Alcotest.(check bool)
            (Printf.sprintf "W=%d P=%d" (Metrics.work g) p)
            true
            (r.Run.rounds <= Greedy.bound g ~p))
        [ 1; 2; 3; 5; 16 ])
    cases

let test_validity () =
  let g = Generate.map_reduce ~n:12 ~leaf_work:3 ~latency:14 in
  List.iter
    (fun p ->
      let r = Greedy.run ~config:traced g ~p in
      Schedule.check_exn g (Run.trace_exn r);
      check "all executed" (Metrics.work g) r.Run.stats.Stats.vertices_executed)
    [ 1; 2; 4 ]

let test_invalid_p () =
  match Greedy.run (Generate.diamond ()) ~p:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Theorem 1 as a property over random weighted dags. *)
let prop_theorem1 =
  QCheck.Test.make ~name:"Theorem 1: greedy <= W/P + S" ~count:120
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 8);
      let g =
        Generate.random_fork_join ~seed ~size_hint:150 ~latency_prob:0.3 ~max_latency:25
      in
      let r = Greedy.run g ~p in
      r.Run.rounds <= Greedy.bound g ~p)

let prop_greedy_within_2x_of_any =
  (* Theorem-backed: greedy <= W/P + S (Thm 1), and every schedule takes at
     least max(ceil(W/P), S) rounds, so greedy <= 2x any scheduler.  (The
     converse is false: FIFO greedy can delay a critical-path latency op
     that LHWS's depth-first order issues early.) *)
  QCheck.Test.make ~name:"greedy <= 2x LHWS rounds" ~count:30
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 4);
      let g =
        Generate.random_fork_join ~seed ~size_hint:100 ~latency_prob:0.2 ~max_latency:15
      in
      let gr = (Greedy.run g ~p).Run.rounds in
      let lh = (Lhws_sim.run g ~p).Run.rounds in
      gr <= (2 * lh) + 2)

let () =
  Alcotest.run "greedy"
    [
      ( "unit",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "wide" `Quick test_wide;
          Alcotest.test_case "latency critical path" `Quick test_latency_critical_path;
          Alcotest.test_case "bound formula" `Quick test_bound_formula;
          Alcotest.test_case "Theorem 1 on generators" `Quick test_theorem1_on_generators;
          Alcotest.test_case "validity" `Quick test_validity;
          Alcotest.test_case "invalid p" `Quick test_invalid_p;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_theorem1;
          QCheck_alcotest.to_alcotest prop_greedy_within_2x_of_any;
        ] );
    ]
