open Lhws_runtime
module Pool = Lhws_pool

let test_record_and_events () =
  let t = Tracing.create ~workers:2 () in
  Tracing.record t ~worker:0 Tracing.Task_run ~start_us:10. ~dur_us:5.;
  Tracing.record t ~worker:1 Tracing.Steal ~start_us:12. ~dur_us:0.;
  Tracing.record t ~worker:0 Tracing.Suspend ~start_us:20. ~dur_us:0.;
  let events = Tracing.events t in
  Alcotest.(check int) "three events" 3 (List.length events);
  (match events with
  | { Tracing.worker = 0; kind = Tracing.Task_run; start_us = 10.; dur_us = 5. } :: _ -> ()
  | _ -> Alcotest.fail "unexpected first event");
  Alcotest.(check int) "none dropped" 0 (Tracing.dropped t)

let test_capacity_drops () =
  let t = Tracing.create ~capacity_per_worker:4 ~workers:1 () in
  for i = 1 to 10 do
    Tracing.record t ~worker:0 Tracing.Task_run ~start_us:(float_of_int i) ~dur_us:1.
  done;
  Alcotest.(check int) "kept capacity" 4 (List.length (Tracing.events t));
  Alcotest.(check int) "dropped rest" 6 (Tracing.dropped t)

let test_invalid_args () =
  (match Tracing.create ~capacity_per_worker:0 ~workers:1 () with
  | _ -> Alcotest.fail "capacity 0"
  | exception Invalid_argument _ -> ());
  match Tracing.create ~workers:0 () with
  | _ -> Alcotest.fail "workers 0"
  | exception Invalid_argument _ -> ()

let test_chrome_json_shape () =
  let t = Tracing.create ~workers:1 () in
  Tracing.record t ~worker:0 Tracing.Resume_batch ~start_us:1.5 ~dur_us:0.;
  let json = Tracing.to_chrome_json t in
  List.iter
    (fun affix ->
      Alcotest.(check bool) affix true (Astring.String.is_infix ~affix json))
    [ {|"name":"resume-batch"|}; {|"ph":"X"|}; {|"tid":0|}; {|"ts":1.5|} ]

let test_kind_names_distinct () =
  let names =
    List.map Tracing.kind_name
      [ Tracing.Task_run; Tracing.Suspend; Tracing.Resume_batch; Tracing.Steal; Tracing.Blocked ]
  in
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare names))

let test_pool_integration () =
  Pool.with_pool ~workers:2 (fun p ->
      let tr = Tracing.create ~workers:2 () in
      Pool.set_tracer p tr;
      let v =
        Pool.run p (fun () ->
            Pool.parallel_map_reduce p ~lo:0 ~hi:12
              ~map:(fun i ->
                if i mod 3 = 0 then Pool.sleep p 0.002;
                i)
              ~combine:( + ) ~id:0)
      in
      Alcotest.(check int) "result" 66 v;
      let events = Tracing.events tr in
      let count kind =
        List.length (List.filter (fun (e : Tracing.event) -> e.Tracing.kind = kind) events)
      in
      Alcotest.(check bool) "tasks recorded" true (count Tracing.Task_run >= 12);
      Alcotest.(check bool) "suspensions recorded" true (count Tracing.Suspend >= 4);
      Alcotest.(check bool) "resumes recorded" true (count Tracing.Resume_batch >= 1);
      (* durations sane *)
      List.iter
        (fun (e : Tracing.event) ->
          Alcotest.(check bool) "non-negative duration" true (e.Tracing.dur_us >= 0.))
        events)

let test_write_file () =
  let t = Tracing.create ~workers:1 () in
  Tracing.record t ~worker:0 Tracing.Task_run ~start_us:0. ~dur_us:1.;
  let path = Filename.temp_file "lhws_trace" ".json" in
  Tracing.write_chrome_json path t;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "json array" true (String.length first > 0 && first.[0] = '[')

let () =
  Alcotest.run "tracing"
    [
      ( "buffer",
        [
          Alcotest.test_case "record/events" `Quick test_record_and_events;
          Alcotest.test_case "capacity drops" `Quick test_capacity_drops;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "chrome json" `Quick test_chrome_json_shape;
          Alcotest.test_case "kind names" `Quick test_kind_names_distinct;
          Alcotest.test_case "write file" `Quick test_write_file;
        ] );
      ("pool", [ Alcotest.test_case "integration" `Quick test_pool_integration ]);
    ]
