open Lhws_core

let test_create_zeroed () =
  let s = Stats.create ~workers:4 in
  Alcotest.(check int) "workers" 4 s.Stats.workers;
  Alcotest.(check int) "tokens" 0 (Stats.tokens s);
  Alcotest.(check bool) "balanced trivially" true (Stats.balanced s)

let test_tokens_sum () =
  let s = Stats.create ~workers:2 in
  s.Stats.vertices_executed <- 10;
  s.Stats.pfor_executed <- 3;
  s.Stats.switches <- 2;
  s.Stats.steal_attempts <- 4;
  s.Stats.blocked_rounds <- 1;
  s.Stats.idle_rounds <- 0;
  Alcotest.(check int) "tokens" 20 (Stats.tokens s);
  Alcotest.(check int) "work tokens" 13 (Stats.work_tokens s);
  s.Stats.rounds <- 10;
  Alcotest.(check bool) "balanced" true (Stats.balanced s);
  s.Stats.rounds <- 11;
  Alcotest.(check bool) "unbalanced" false (Stats.balanced s)

let test_to_assoc_complete () =
  let s = Stats.create ~workers:1 in
  let assoc = Stats.to_assoc s in
  Alcotest.(check int) "20 fields" 20 (List.length assoc);
  List.iter
    (fun key -> Alcotest.(check bool) key true (List.mem_assoc key assoc))
    [
      "rounds";
      "steal_attempts";
      "steals_batched";
      "tasks_stolen";
      "steal_latency_rounds";
      "max_deques_per_worker";
      "max_live_suspended";
    ]

let test_pp_smoke () =
  let s = Stats.create ~workers:1 in
  s.Stats.rounds <- 42;
  let out = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "mentions rounds" true (Astring.String.is_infix ~affix:"rounds" out);
  Alcotest.(check bool) "mentions 42" true (Astring.String.is_infix ~affix:"42" out)

let () =
  Alcotest.run "stats"
    [
      ( "accounting",
        [
          Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
          Alcotest.test_case "tokens sum" `Quick test_tokens_sum;
          Alcotest.test_case "to_assoc complete" `Quick test_to_assoc_complete;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
