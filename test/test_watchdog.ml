(* The stall watchdog's contract:

   - pool heartbeat counters advance while workers schedule, and the
     watchdog only flags a worker after [stuck_after] with no progress
     (warn-only — a long legitimate task is indistinguishable from a
     wedged worker);
   - a parked intent younger than [grace], or one still backed by a live
     registration, is never flagged: no false positives on legitimate
     long parks;
   - the mutation check: a completion dropped on the floor (the
     chaos_drop hook) leaves a fiber parked with nobody to wake it, and
     the watchdog fails it loudly with [Stalled] BEFORE a generous
     per-operation deadline would have fired — the detection is the
     watchdog's, not the deadline's;
   - warn mode counts the same stall but leaves the fiber parked for the
     deadline to reclaim;
   - detections feed the pool's [stalls_detected] stats field and emit
     [Stalled] tracing events;
   - a descriptor closed behind the reactor's back fails the parked
     fiber loudly on BOTH backends (select's wholesale-EBADF sweep and
     poll's POLLNVAL path, backstopped by the watchdog's probe);
   - Aged_fifo: resumed continuations are serviced in arrival order
     through the per-worker FIFO lane. *)

open Lhws_runtime
module P = Lhws_workloads.Pool_intf
module Net = Lhws_net.Net
module Reactor = Lhws_net.Reactor

let with_wd_rt ?(workers = 2) ?grace ?action ?interval ?stuck_after f =
  Lhws_pool.with_pool ~workers (fun p ->
      let wd = Watchdog.create ?grace ?action ?interval ?stuck_after () in
      Lhws_pool.register_watchdog p wd;
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller p ?pending ?syscalls poll)
          ~watchdog:wd ()
      in
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () -> f p wd rt))

let socketpair () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Unix.set_nonblock b;
  (a, b)

let close_both (a, b) =
  (try Unix.close a with Unix.Unix_error _ -> ());
  try Unix.close b with Unix.Unix_error _ -> ()

(* --- heartbeats --- *)

let test_heartbeats_advance () =
  Lhws_pool.with_pool ~workers:2 (fun p ->
      Lhws_pool.run p (fun () ->
          (* Give every worker scheduling iterations to count. *)
          Lhws_pool.parallel_for p ~lo:0 ~hi:32 (fun _ -> Lhws_pool.sleep p 0.002));
      let hb = Lhws_pool.heartbeats p in
      Alcotest.(check int) "one counter per worker" 2 (Array.length hb);
      Array.iteri
        (fun i h ->
          Alcotest.(check bool) (Printf.sprintf "worker %d ticked" i) true (h > 0))
        hb)

let test_stuck_heartbeat_flagged_once () =
  let wd = Watchdog.create ~grace:0.01 ~stuck_after:0.05 () in
  let reports = ref [] in
  Watchdog.add_on_stall wd (fun m -> reports := m :: !reports);
  (* Counters that never advance: both workers look wedged. *)
  Watchdog.attach_heartbeats wd ~name:"fake" (fun () -> [| 3; 7 |]);
  Alcotest.(check int) "first sweep only snapshots" 0 (Watchdog.sweep_now wd);
  Unix.sleepf 0.08;
  Alcotest.(check int) "both stuck workers flagged" 2 (Watchdog.sweep_now wd);
  Alcotest.(check int) "counted as worker stalls" 2 (Watchdog.worker_stalls wd);
  Alcotest.(check int) "reported" 2 (List.length !reports);
  (* Still stuck, already flagged: one report per episode, not per sweep. *)
  Alcotest.(check int) "no re-flag while still stuck" 0 (Watchdog.sweep_now wd)

let test_advancing_heartbeat_not_flagged () =
  let wd = Watchdog.create ~grace:0.01 ~stuck_after:0.04 () in
  let c = ref 0 in
  Watchdog.attach_heartbeats wd ~name:"live" (fun () ->
      incr c;
      [| !c |]);
  ignore (Watchdog.sweep_now wd : int);
  Unix.sleepf 0.06;
  Alcotest.(check int) "progress is never a stall" 0 (Watchdog.sweep_now wd);
  Alcotest.(check int) "no worker stalls" 0 (Watchdog.worker_stalls wd)

(* --- grace and false positives --- *)

let test_legit_park_not_flagged () =
  (* A fiber legitimately parked far beyond grace, with its registration
     live and its fd healthy: the watchdog must leave it alone, and the
     oldest-parked gauge must see it. *)
  with_wd_rt ~grace:0.02 (fun p wd rt ->
      let module Pl = P.Lhws_instance in
      let ((a, b) as pair) = socketpair () in
      Fun.protect ~finally:(fun () -> close_both pair) @@ fun () ->
      let buf = Bytes.create 1 in
      let reader =
        Pl.async p (fun () ->
            Reactor.run_io rt `Readable a ~exec:(fun () -> Unix.read a buf 0 1))
      in
      Pl.sleep p 0.1;  (* several sweep intervals beyond grace *)
      Alcotest.(check int) "no stall detected" 0 (Watchdog.stalls_detected wd);
      Alcotest.(check bool) "gauge sees the parked fiber" true
        (Watchdog.oldest_parked_ms wd >= 50.);
      ignore (Unix.write b (Bytes.of_string "k") 0 1 : int);
      Alcotest.(check int) "completes normally" 1 (Pl.await p reader);
      Alcotest.(check char) "the byte" 'k' (Bytes.get buf 0))

(* --- the mutation check: watchdog beats the deadline --- *)

let test_lost_wakeup_fails_loudly () =
  with_wd_rt ~grace:0.05 (fun p wd rt ->
      let module Pl = P.Lhws_instance in
      let tr = Tracing.create ~workers:2 () in
      Lhws_pool.set_tracer p tr;
      let ((a, b) as pair) = socketpair () in
      Fun.protect ~finally:(fun () -> close_both pair) @@ fun () ->
      Reactor.chaos_drop_completions rt ~every:1;
      Fun.protect ~finally:(fun () -> Reactor.chaos_drop_completions rt ~every:0)
      @@ fun () ->
      (* Data is ready, but the first exec lies EAGAIN to defeat eager
         completion, and the chaos hook then drops the pump's completion:
         the fiber is parked with no registration behind it.  The
         deadline is deliberately generous — if this test sees Timeout,
         the deadline caught the stall, not the watchdog. *)
      ignore (Unix.write b (Bytes.of_string "!") 0 1 : int);
      let tried = ref 0 in
      let buf = Bytes.create 1 in
      let t0 = Unix.gettimeofday () in
      let deadline = t0 +. 10. in
      (match
         Reactor.run_io rt ~deadline `Readable a ~exec:(fun () ->
             incr tried;
             if !tried = 1 then
               raise (Unix.Unix_error (Unix.EAGAIN, "read", "injected"))
             else Unix.read a buf 0 1)
       with
      | (_ : int) -> Alcotest.fail "the dropped completion completed"
      | exception Net.Timeout -> Alcotest.fail "deadline won: watchdog never fired"
      | exception Net.Stalled msg ->
          Alcotest.(check bool) "stall is attributed" true
            (Astring.String.is_infix ~affix:"lost wakeup" msg));
      Alcotest.(check bool) "well before the deadline" true
        (Unix.gettimeofday () -. t0 < 5.);
      Alcotest.(check bool) "watchdog counted it" true
        (Watchdog.stalls_detected wd >= 1);
      let s = Lhws_pool.stats p in
      Alcotest.(check bool) "stats field fed" true (s.stalls_detected >= 1);
      Alcotest.(check bool) "Stalled trace event emitted" true
        (List.exists
           (fun (e : Tracing.event) -> e.Tracing.kind = Tracing.Stalled)
           (Tracing.events tr)))

let test_warn_mode_counts_but_leaves_parked () =
  with_wd_rt ~grace:0.03 ~action:Watchdog.Warn (fun _p wd rt ->
      let ((a, b) as pair) = socketpair () in
      Fun.protect ~finally:(fun () -> close_both pair) @@ fun () ->
      Reactor.chaos_drop_completions rt ~every:1;
      Fun.protect ~finally:(fun () -> Reactor.chaos_drop_completions rt ~every:0)
      @@ fun () ->
      ignore (Unix.write b (Bytes.of_string "!") 0 1 : int);
      let tried = ref 0 in
      let buf = Bytes.create 1 in
      let deadline = Unix.gettimeofday () +. 0.25 in
      (match
         Reactor.run_io rt ~deadline `Readable a ~exec:(fun () ->
             incr tried;
             if !tried = 1 then
               raise (Unix.Unix_error (Unix.EAGAIN, "read", "injected"))
             else Unix.read a buf 0 1)
       with
      | (_ : int) -> Alcotest.fail "the dropped completion completed"
      | exception Net.Stalled _ -> Alcotest.fail "warn mode must not fail the fiber"
      | exception Net.Timeout -> ());
      Alcotest.(check bool) "stall was still counted" true
        (Watchdog.stalls_detected wd >= 1))

(* --- stale fd: loud failure on both backends --- *)

let stale_fd_on backend () =
  Unix.putenv "LHWS_BACKEND" backend;
  Fun.protect ~finally:(fun () -> Unix.putenv "LHWS_BACKEND" "") @@ fun () ->
  with_wd_rt ~grace:0.02 (fun p _wd rt ->
      let module Pl = P.Lhws_instance in
      let a, b = socketpair () in
      Fun.protect ~finally:(fun () -> try Unix.close b with Unix.Unix_error _ -> ())
      @@ fun () ->
      let buf = Bytes.create 1 in
      let t0 = Unix.gettimeofday () in
      let reader =
        Pl.async p (fun () ->
            let deadline = t0 +. 10. in
            match
              Reactor.run_io rt ~deadline `Readable a ~exec:(fun () ->
                  Unix.read a buf 0 1)
            with
            | (_ : int) -> `Completed
            | exception Net.Timeout -> `Timed_out
            | exception (Net.Stalled _ | Unix.Unix_error _) -> `Failed_loudly)
      in
      Pl.sleep p 0.05;  (* let the intent register *)
      (* Close the descriptor behind the reactor's back: no cancel, no
         Conn.close — the registration goes stale in place. *)
      Unix.close a;
      (match Pl.await p reader with
      | `Failed_loudly -> ()
      | `Completed -> Alcotest.fail "read completed on a closed fd"
      | `Timed_out -> Alcotest.failf "%s backend: hung until the deadline" backend);
      Alcotest.(check bool) "failed promptly" true
        (Unix.gettimeofday () -. t0 < 5.))

let test_stale_fd_select () = stale_fd_on "select" ()
let test_stale_fd_poll () = stale_fd_on "poll" ()

(* --- Aged_fifo: resumes are serviced in arrival order --- *)

let test_aged_fifo_resume_order () =
  Lhws_pool.with_pool ~workers:1
    ~resume_order:Scheduler_core.Aged_fifo (fun p ->
      Lhws_pool.run p (fun () ->
          let n = 8 in
          let gates = Array.init n (fun _ -> Promise.create ()) in
          let order = ref [] in
          let fibers =
            Array.init n (fun i ->
                Lhws_pool.async p (fun () ->
                    Lhws_pool.await gates.(i);
                    order := i :: !order))
          in
          (* Let every fiber park on its gate. *)
          Lhws_pool.sleep p 0.02;
          (* Release them oldest-first; under Aged_fifo the FIFO lane
             must preserve exactly this arrival order. *)
          Array.iter (fun g -> Promise.fulfill g (Ok ())) gates;
          Array.iter (fun f -> Lhws_pool.await f) fibers;
          Alcotest.(check (list int))
            "resumed continuations ran oldest-first"
            (List.init n Fun.id) (List.rev !order)))

let test_aged_fifo_work_completes () =
  (* Same fork/join workload on both orders: fairness must not change
     results, only scheduling order. *)
  List.iter
    (fun ro ->
      Lhws_pool.with_pool ~workers:3 ~resume_order:ro (fun p ->
          let v =
            Lhws_pool.run p (fun () ->
                Lhws_pool.parallel_map_reduce p ~lo:1 ~hi:101 ~map:Fun.id
                  ~combine:( + ) ~id:0)
          in
          Alcotest.(check int) "gauss" 5050 v))
    [ Scheduler_core.Newest_first; Scheduler_core.Aged_fifo ]

let () =
  Alcotest.run "watchdog"
    [
      ( "heartbeats",
        [
          Alcotest.test_case "pool counters advance" `Quick test_heartbeats_advance;
          Alcotest.test_case "stuck worker flagged once" `Quick
            test_stuck_heartbeat_flagged_once;
          Alcotest.test_case "progress is never flagged" `Quick
            test_advancing_heartbeat_not_flagged;
        ] );
      ( "grace",
        [
          Alcotest.test_case "legit long park not flagged" `Quick
            test_legit_park_not_flagged;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "lost wakeup fails loudly before the deadline" `Quick
            test_lost_wakeup_fails_loudly;
          Alcotest.test_case "warn mode counts, deadline reclaims" `Quick
            test_warn_mode_counts_but_leaves_parked;
        ] );
      ( "stale-fd",
        [
          Alcotest.test_case "select backend fails loudly" `Quick test_stale_fd_select;
          Alcotest.test_case "poll backend fails loudly" `Quick test_stale_fd_poll;
        ] );
      ( "aged-fifo",
        [
          Alcotest.test_case "resume order is arrival order" `Quick
            test_aged_fifo_resume_order;
          Alcotest.test_case "results identical across orders" `Quick
            test_aged_fifo_work_completes;
        ] );
    ]
