module W = Lhws_workloads
module P = W.Pool_intf

type runner = { run : 'p. (module P.POOL with type t = 'p) -> 'p -> unit }

let with_each_pool { run } =
  List.iter
    (fun (pool : P.pool) ->
      let module Pool = (val pool : P.POOL) in
      let p = Pool.create ~workers:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown p)
        (fun () -> run (module Pool : P.POOL with type t = Pool.t) p))
    [ P.lhws; P.ws ]

let test_fib_seq () =
  Alcotest.(check int) "fib 0" 0 (W.Fib.seq 0);
  Alcotest.(check int) "fib 1" 1 (W.Fib.seq 1);
  Alcotest.(check int) "fib 10" 55 (W.Fib.seq 10);
  Alcotest.(check int) "fib 20" 6765 (W.Fib.seq 20)

let test_fib_par_matches_seq () =
  with_each_pool
    {
      run =
        (fun (type t) (module Pool : P.POOL with type t = t) (p : t) ->
          let v = Pool.run p (fun () -> W.Fib.par_on (module Pool) p ~cutoff:8 18) in
          Alcotest.(check int) (Pool.name ^ " fib par") (W.Fib.seq 18) v);
    }

let test_fib_dag () =
  Alcotest.(check bool) "well-formed" true (Lhws_dag.Check.well_formed (W.Fib.dag 9))

let test_map_reduce_reference () =
  Alcotest.(check int) "reference" (20 * W.Fib.seq 15 mod W.Map_reduce.modulus)
    (W.Map_reduce.reference ~n:20 ~fib_n:15)

let test_map_reduce_pools () =
  with_each_pool
    {
      run =
        (fun (type t) (module Pool : P.POOL with type t = t) (p : t) ->
          let r = W.Map_reduce.run_on (module Pool) p ~n:24 ~latency:0.002 ~fib_n:12 in
          Alcotest.(check int) (Pool.name ^ " value")
            (W.Map_reduce.reference ~n:24 ~fib_n:12)
            r.W.Map_reduce.value;
          Alcotest.(check bool) "elapsed positive" true (r.W.Map_reduce.elapsed >= 0.));
    }

let test_map_reduce_dag_alias () =
  let g = W.Map_reduce.dag ~n:6 ~leaf_work:2 ~latency:5 in
  Alcotest.(check bool) "well-formed" true (Lhws_dag.Check.well_formed g)

let test_server_pools () =
  with_each_pool
    {
      run =
        (fun (type t) (module Pool : P.POOL with type t = t) (p : t) ->
          let r = W.Server.run_on (module Pool) p ~n:10 ~latency:0.001 ~fib_n:10 in
          Alcotest.(check int) (Pool.name ^ " value")
            (10 * W.Fib.seq 10 mod W.Map_reduce.modulus)
            r.W.Server.value);
    }

let test_server_dag_alias () =
  let g = W.Server.dag ~n:4 ~f_work:2 ~latency:5 in
  Alcotest.(check bool) "well-formed" true (Lhws_dag.Check.well_formed g)

let test_web_determinism () =
  let w1 = W.Crawler.make_web ~seed:3 ~pages:50 ~max_links:3 in
  let w2 = W.Crawler.make_web ~seed:3 ~pages:50 ~max_links:3 in
  Alcotest.(check int) "same reachable" (W.Crawler.reachable w1) (W.Crawler.reachable w2);
  for i = 0 to 49 do
    Alcotest.(check (list int)) "same links" (W.Crawler.links w1 i) (W.Crawler.links w2 i)
  done

let test_web_reachability () =
  let w = W.Crawler.make_web ~seed:5 ~pages:80 ~max_links:3 in
  let r = W.Crawler.reachable w in
  Alcotest.(check bool) "substantial web" true (r > 10);
  Alcotest.(check bool) "at most all pages" true (r <= 80)

let test_crawler_pools_agree () =
  let web = W.Crawler.make_web ~seed:11 ~pages:40 ~max_links:3 in
  let results =
    List.map
      (fun (pool : P.pool) ->
        let module Pool = (val pool : P.POOL) in
        let p = Pool.create ~workers:2 () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown p)
          (fun () -> W.Crawler.crawl_on (module Pool) p web ~latency:0.001 ~parse_work:8))
      [ P.lhws; P.ws ]
  in
  match results with
  | [ a; b ] ->
      Alcotest.(check int) "visited = reachable" (W.Crawler.reachable web) a.W.Crawler.visited;
      Alcotest.(check int) "pools agree on visited" a.W.Crawler.visited b.W.Crawler.visited;
      Alcotest.(check int) "pools agree on checksum" a.W.Crawler.checksum b.W.Crawler.checksum
  | _ -> Alcotest.fail "expected two results"

let test_crawler_repeat_stable () =
  (* Same pool kind twice: checksum is order-independent. *)
  let web = W.Crawler.make_web ~seed:13 ~pages:30 ~max_links:2 in
  let crawl () =
    let module Pool = (val P.lhws : P.POOL) in
    let p = Pool.create ~workers:2 () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> (W.Crawler.crawl_on (module Pool) p web ~latency:0.0005 ~parse_work:5).W.Crawler.checksum)
  in
  Alcotest.(check int) "stable checksum" (crawl ()) (crawl ())

let test_sort_dag () =
  let g = W.Sort.dag ~n_chunks:8 ~chunk_work:4 ~latency:10 in
  Alcotest.(check bool) "well-formed" true (Lhws_dag.Check.well_formed g);
  Alcotest.(check int) "one fetch per chunk" 8 (Lhws_dag.Metrics.num_heavy_edges g)

let test_sort_reference () =
  let a = W.Sort.reference ~n:500 ~seed:3 in
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "reference is sorted" true (a = sorted);
  Alcotest.(check int) "length" 500 (Array.length a)

let test_sort_pools () =
  with_each_pool
    {
      run =
        (fun (type t) (module Pool : P.POOL with type t = t) (p : t) ->
          let r = W.Sort.run_on (module Pool) p ~n:300 ~chunk:32 ~latency:0.001 ~seed:7 in
          Alcotest.(check bool)
            (Pool.name ^ " sorted correctly")
            true
            (r.W.Sort.sorted = W.Sort.reference ~n:300 ~seed:7));
    }

let test_sort_edge_cases () =
  with_each_pool
    {
      run =
        (fun (type t) (module Pool : P.POOL with type t = t) (p : t) ->
          let r0 = W.Sort.run_on (module Pool) p ~n:0 ~chunk:4 ~latency:0. ~seed:1 in
          Alcotest.(check int) "empty" 0 (Array.length r0.W.Sort.sorted);
          let r1 = W.Sort.run_on (module Pool) p ~n:1 ~chunk:4 ~latency:0. ~seed:1 in
          Alcotest.(check int) "singleton" 1 (Array.length r1.W.Sort.sorted));
    }

let test_pool_by_name () =
  let module L = (val P.by_name "lhws" : P.POOL) in
  Alcotest.(check string) "lhws" "lhws" L.name;
  let module B = (val P.by_name "ws" : P.POOL) in
  Alcotest.(check string) "ws" "ws" B.name;
  match P.by_name "bogus" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "workloads"
    [
      ( "fib",
        [
          Alcotest.test_case "seq" `Quick test_fib_seq;
          Alcotest.test_case "par matches seq" `Quick test_fib_par_matches_seq;
          Alcotest.test_case "dag" `Quick test_fib_dag;
        ] );
      ( "map_reduce",
        [
          Alcotest.test_case "reference" `Quick test_map_reduce_reference;
          Alcotest.test_case "pools" `Quick test_map_reduce_pools;
          Alcotest.test_case "dag alias" `Quick test_map_reduce_dag_alias;
        ] );
      ( "server",
        [
          Alcotest.test_case "pools" `Quick test_server_pools;
          Alcotest.test_case "dag alias" `Quick test_server_dag_alias;
        ] );
      ( "crawler",
        [
          Alcotest.test_case "web determinism" `Quick test_web_determinism;
          Alcotest.test_case "web reachability" `Quick test_web_reachability;
          Alcotest.test_case "pools agree" `Quick test_crawler_pools_agree;
          Alcotest.test_case "repeat stable" `Quick test_crawler_repeat_stable;
        ] );
      ( "sort",
        [
          Alcotest.test_case "dag" `Quick test_sort_dag;
          Alcotest.test_case "reference" `Quick test_sort_reference;
          Alcotest.test_case "pools" `Quick test_sort_pools;
          Alcotest.test_case "edge cases" `Quick test_sort_edge_cases;
        ] );
      ("pool_intf", [ Alcotest.test_case "by_name" `Quick test_pool_by_name ]);
    ]
