open Lhws_runtime

let test_pending () =
  let p : int Promise.t = Promise.create () in
  Alcotest.(check bool) "not resolved" false (Promise.is_resolved p);
  Alcotest.(check bool) "poll none" true (Promise.poll p = None)

let test_fulfill_ok () =
  let p = Promise.create () in
  Promise.fulfill p (Ok 42);
  Alcotest.(check bool) "resolved" true (Promise.is_resolved p);
  Alcotest.(check int) "value" 42 (Promise.get_exn p)

let test_fulfill_error () =
  let p : int Promise.t = Promise.create () in
  Promise.fulfill p (Error (Failure "nope"));
  Alcotest.check_raises "re-raises" (Failure "nope") (fun () -> ignore (Promise.get_exn p))

let test_double_fulfill () =
  let p = Promise.create () in
  Promise.fulfill p (Ok 1);
  Alcotest.check_raises "double" (Invalid_argument "Promise.fulfill: already resolved")
    (fun () -> Promise.fulfill p (Ok 2))

let test_get_pending () =
  let p : int Promise.t = Promise.create () in
  Alcotest.check_raises "pending" (Invalid_argument "Promise.get_exn: still pending") (fun () ->
      ignore (Promise.get_exn p))

let test_waiters_run_on_fulfill () =
  let p = Promise.create () in
  let hits = ref 0 in
  Alcotest.(check bool) "registered 1" true (Promise.add_waiter p (fun () -> incr hits));
  Alcotest.(check bool) "registered 2" true (Promise.add_waiter p (fun () -> incr hits));
  Alcotest.(check int) "not yet" 0 !hits;
  Promise.fulfill p (Ok ());
  Alcotest.(check int) "both ran" 2 !hits

let test_add_waiter_after_resolve () =
  let p = Promise.create () in
  Promise.fulfill p (Ok ());
  Alcotest.(check bool) "returns false" false (Promise.add_waiter p (fun () -> ()))

let test_concurrent_waiters () =
  (* Many domains race add_waiter against fulfill; every waiter must run
     exactly once, either via the waiter list or via the false return. *)
  let p = Promise.create () in
  let count = Atomic.make 0 in
  let adders =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              if not (Promise.add_waiter p (fun () -> Atomic.incr count)) then
                Atomic.incr count
            done))
  in
  Unix.sleepf 0.002;
  Promise.fulfill p (Ok ());
  Array.iter Domain.join adders;
  Alcotest.(check int) "all 4000 accounted" 4000 (Atomic.get count)

let () =
  Alcotest.run "promise"
    [
      ( "basics",
        [
          Alcotest.test_case "pending" `Quick test_pending;
          Alcotest.test_case "fulfill ok" `Quick test_fulfill_ok;
          Alcotest.test_case "fulfill error" `Quick test_fulfill_error;
          Alcotest.test_case "double fulfill" `Quick test_double_fulfill;
          Alcotest.test_case "get pending" `Quick test_get_pending;
          Alcotest.test_case "waiters" `Quick test_waiters_run_on_fulfill;
          Alcotest.test_case "late waiter" `Quick test_add_waiter_after_resolve;
        ] );
      ("concurrency", [ Alcotest.test_case "racing waiters" `Slow test_concurrent_waiters ]);
    ]
