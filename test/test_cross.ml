(* Cross-scheduler properties: the three simulated schedulers agree on
   what gets executed, only differing in when, and the paper's headline
   comparison (LHWS beats blocking WS on latency-rich workloads) holds on
   whole workload families. *)

module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core

let traced = { Config.default with trace = true }

let test_all_agree_on_work () =
  let g = Generate.map_reduce ~n:20 ~leaf_work:4 ~latency:17 in
  let runs =
    [
      Lhws_sim.run ~config:traced g ~p:3;
      Ws_sim.run ~config:traced g ~p:3;
      Greedy.run ~config:traced g ~p:3;
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check int) "all vertices" (Metrics.work g) r.Run.stats.Stats.vertices_executed;
      Schedule.check_exn g (Run.trace_exn r))
    runs

let test_lhws_dominates_on_mapreduce () =
  (* Figure 11's direction: with latency much larger than leaf work, the
     latency-hiding scheduler beats the blocking one at every P. *)
  List.iter
    (fun (n, w, d) ->
      let g = Generate.map_reduce ~n ~leaf_work:w ~latency:d in
      List.iter
        (fun p ->
          let lh = (Lhws_sim.run g ~p).Run.rounds in
          let ws = (Ws_sim.run g ~p).Run.rounds in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d w=%d d=%d P=%d: %d < %d" n w d p lh ws)
            true (lh < ws))
        [ 1; 2; 4; 8 ])
    [ (16, 2, 100); (32, 5, 200); (64, 1, 50) ]

let test_lhws_harmless_without_latency () =
  (* On pure computation the two schedulers are equivalent up to steal
     randomness; no systematic penalty for latency hiding (Section 8). *)
  List.iter
    (fun p ->
      let g = Generate.fib ~n:14 () in
      let lh = (Lhws_sim.run g ~p).Run.rounds in
      let ws = (Ws_sim.run g ~p).Run.rounds in
      Alcotest.(check bool)
        (Printf.sprintf "P=%d: %d within 10%% of %d" p lh ws)
        true
        (float_of_int lh <= (1.1 *. float_of_int ws) +. 5.))
    [ 1; 2; 4; 8 ]

let test_greedy_lower_envelope_mapreduce () =
  let g = Generate.map_reduce ~n:24 ~leaf_work:3 ~latency:60 in
  List.iter
    (fun p ->
      let gr = (Greedy.run g ~p).Run.rounds in
      let lh = (Lhws_sim.run g ~p).Run.rounds in
      (* Greedy is centrally coordinated; LHWS should be within a small
         factor of it (the U lg U overhead of Theorem 2). *)
      Alcotest.(check bool)
        (Printf.sprintf "P=%d: lhws %d vs greedy %d" p lh gr)
        true
        (lh <= (3 * gr) + 50))
    [ 1; 2; 4 ]

let prop_three_schedulers_valid =
  QCheck.Test.make ~name:"random dags: all three schedulers valid" ~count:25
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 5);
      let g =
        Generate.random_fork_join ~seed ~size_hint:80 ~latency_prob:0.3 ~max_latency:12
      in
      List.for_all
        (fun algo ->
          let r = Sweep.run_algo algo ~config:traced g ~p in
          Schedule.valid g (Run.trace_exn r))
        [ Sweep.Lhws; Sweep.Ws; Sweep.Greedy ])

(* Every configuration knob combination still yields valid schedules. *)
let prop_config_matrix_valid =
  QCheck.Test.make ~name:"all config combinations valid" ~count:30
    QCheck.(pair small_int (int_bound 31))
    (fun (seed, bits) ->
      let g =
        Generate.random_fork_join ~seed ~size_hint:60 ~latency_prob:0.3 ~max_latency:10
      in
      let config =
        {
          Config.default with
          trace = true;
          steal_policy =
            (if bits land 1 = 0 then Config.Steal_global_deque
             else Config.Steal_worker_then_deque);
          resume_policy =
            (if bits land 2 = 0 then Config.Resume_pfor_tree else Config.Resume_linear);
          resume_target =
            (if bits land 4 = 0 then Config.Original_deque else Config.Fresh_deque);
          wrap_single_resume = bits land 8 <> 0;
          fast_forward = bits land 16 <> 0;
        }
      in
      let r = Lhws_sim.run ~config g ~p:3 in
      Schedule.valid g (Run.trace_exn r)
      && r.Run.stats.Stats.vertices_executed = Metrics.work g
      && Stats.balanced r.Run.stats)

(* Heterogeneous latencies: jittered map-reduce preserves the headline
   comparison and the width bound. *)
let prop_jitter_headline =
  QCheck.Test.make ~name:"jittered latencies: LHWS <= WS, width <= n" ~count:20
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, p) ->
      QCheck.assume (p >= 1 && p <= 4);
      let n = 24 in
      let g =
        Generate.map_reduce_jitter ~seed ~n ~leaf_work:2 ~min_latency:60 ~max_latency:240
      in
      let lh = Lhws_sim.run g ~p in
      let ws = Ws_sim.run g ~p in
      lh.Run.rounds <= ws.Run.rounds
      && lh.Run.stats.Stats.max_live_suspended <= n)

let prop_lhws_beats_ws_high_latency =
  (* The paper's regime has many more items than workers (n = 5000 vs
     P <= 30).  With spare workers (P ~ n) blocking is nearly free, so the
     comparison is only claimed for n >= 3P.  The explicit guard also
     protects against QCheck shrinking outside the generator's range. *)
  QCheck.Test.make ~name:"LHWS <= WS rounds on high-latency map-reduce" ~count:25
    QCheck.(pair (int_range 4 40) (int_range 1 6))
    (fun (n, p) ->
      QCheck.assume (n >= 4 && n <= 40 && p >= 1 && p <= 6 && n >= 3 * p);
      let g = Generate.map_reduce ~n ~leaf_work:2 ~latency:150 in
      (Lhws_sim.run g ~p).Run.rounds <= (Ws_sim.run g ~p).Run.rounds)

let () =
  Alcotest.run "cross"
    [
      ( "agreement",
        [
          Alcotest.test_case "same work executed" `Quick test_all_agree_on_work;
          Alcotest.test_case "LHWS dominates with latency" `Quick test_lhws_dominates_on_mapreduce;
          Alcotest.test_case "harmless without latency" `Quick test_lhws_harmless_without_latency;
          Alcotest.test_case "greedy lower envelope" `Quick test_greedy_lower_envelope_mapreduce;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_three_schedulers_valid;
          QCheck_alcotest.to_alcotest prop_config_matrix_valid;
          QCheck_alcotest.to_alcotest prop_jitter_headline;
          QCheck_alcotest.to_alcotest prop_lhws_beats_ws_high_latency;
        ] );
    ]
