(* Edge cases of the simulated schedulers that the main suites don't reach:
   vertices with two heavy children, deque recycling over long runs,
   snapshot self-consistency, and switch accounting. *)

module Dag = Lhws_dag.Dag
module Block = Lhws_dag.Block
module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
open Lhws_core

let check = Alcotest.(check int)
let traced = { Config.default with trace = true }

(* u forks two children, each behind its own heavy edge. *)
let two_heavy_children ~d1 ~d2 =
  let b = Dag.Builder.create () in
  let u = Dag.Builder.add_vertex ~label:"issue both" b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  let j = Dag.Builder.add_vertex ~label:"join" b in
  Dag.Builder.add_edge ~weight:d1 b u v1;
  Dag.Builder.add_edge ~weight:d2 b u v2;
  Dag.Builder.add_edge b v1 j;
  Dag.Builder.add_edge b v2 j;
  let g = Dag.Builder.build b in
  Lhws_dag.Check.check_exn g;
  g

let test_two_heavy_lhws () =
  let g = two_heavy_children ~d1:8 ~d2:20 in
  let r = Lhws_sim.run ~config:traced g ~p:1 in
  Schedule.check_exn g (Run.trace_exn r);
  check "both suspended" 2 r.Run.stats.Stats.suspensions;
  check "max live" 2 r.Run.stats.Stats.max_live_suspended;
  (* v1 resumes at 8 and executes well before v2 is ready at 20 *)
  let tr = Run.trace_exn r in
  Alcotest.(check bool) "v1 before v2" true (Trace.round_of tr 1 < Trace.round_of tr 2);
  Alcotest.(check bool) "finishes soon after 20" true (r.Run.rounds <= 26)

let test_two_heavy_ws () =
  (* The blocking baseline waits out the max of the two latencies. *)
  let g = two_heavy_children ~d1:8 ~d2:20 in
  let r = Ws_sim.run ~config:traced g ~p:1 in
  Schedule.check_exn g (Run.trace_exn r);
  (* u at round 0, blocked until 20, then v1 v2 j: rounds = 23 *)
  check "rounds" 23 r.Run.rounds;
  check "blocked" 19 r.Run.stats.Stats.blocked_rounds

let test_two_heavy_greedy () =
  let g = two_heavy_children ~d1:8 ~d2:20 in
  let r = Greedy.run ~config:traced g ~p:2 in
  Schedule.check_exn g (Run.trace_exn r);
  Alcotest.(check bool) "within bound" true (r.Run.rounds <= Greedy.bound g ~p:2)

let test_switch_accounting_single_latency () =
  (* P=1, one suspension: the worker parks the deque, fails steals during
     the latency, switches back exactly once when the vertex resumes. *)
  let g = Generate.single_latency ~delta:30 in
  let r = Lhws_sim.run ~config:{ traced with fast_forward = false } g ~p:1 in
  check "one switch" 1 r.Run.stats.Stats.switches;
  check "deques allocated" 1 r.Run.stats.Stats.deques_allocated

let test_deque_recycling_bounded () =
  (* A long server run constantly parks and revives deques; recycling must
     keep total allocations near P, not grow with n. *)
  let g = Generate.server ~n:150 ~f_work:5 ~latency:20 in
  List.iter
    (fun p ->
      let r = Lhws_sim.run g ~p in
      Alcotest.(check bool)
        (Printf.sprintf "allocations bounded at P=%d (got %d)" p
           r.Run.stats.Stats.deques_allocated)
        true
        (r.Run.stats.Stats.deques_allocated <= (2 * p) + 2))
    [ 1; 2; 4; 8 ]

let test_snapshot_consistency () =
  (* Per round: at most one Active deque per worker; live_suspended equals
     the sum of suspend counters; Freed deques are empty. *)
  let g = Generate.map_reduce ~n:10 ~leaf_work:3 ~latency:15 in
  let rounds = ref 0 in
  let check_snap (s : Snapshot.t) =
    incr rounds;
    let active_by_owner = Hashtbl.create 8 in
    List.iter
      (fun (d : Snapshot.deque_view) ->
        (match d.state with
        | Snapshot.Active ->
            Alcotest.(check bool) "one active per worker" false
              (Hashtbl.mem active_by_owner d.owner);
            Hashtbl.add active_by_owner d.owner ()
        | Snapshot.Freed ->
            Alcotest.(check (list int)) "freed deques are empty" [] d.task_depths;
            Alcotest.(check int) "freed deques have no suspensions" 0 d.suspend_ctr
        | Snapshot.Ready | Snapshot.Suspended -> ());
        Alcotest.(check bool) "suspend_ctr nonneg" true (d.suspend_ctr >= 0))
      s.deques;
    let total_susp =
      List.fold_left (fun acc (d : Snapshot.deque_view) -> acc + d.suspend_ctr) 0 s.deques
    in
    Alcotest.(check int) "live_suspended consistent" s.live_suspended total_susp
  in
  let r =
    Lhws_sim.run ~config:{ traced with fast_forward = false } ~observer:check_snap g ~p:3
  in
  check "observed every round" r.Run.rounds !rounds

let test_heavy_right_child_of_fork () =
  (* A fork whose spawned (right) child sits behind a heavy edge. *)
  let b = Dag.Builder.create () in
  let left = Block.chain b 12 in
  let right = Block.seq b (Block.latency b 6) (Block.chain b 2) in
  let g = Block.finish b (Block.fork2 b left right) in
  List.iter
    (fun p ->
      let r = Lhws_sim.run ~config:traced g ~p in
      Schedule.check_exn g (Run.trace_exn r);
      check "all executed" (Metrics.work g) r.Run.stats.Stats.vertices_executed)
    [ 1; 2 ];
  let r = Ws_sim.run ~config:traced g ~p:1 in
  Schedule.check_exn g (Run.trace_exn r)

let test_interleaved_bursts () =
  (* Two bursts chained: the second wave of suspensions reuses deques that
     already digested the first wave. *)
  let b = Dag.Builder.create () in
  let burst () =
    let leaves = Array.init 6 (fun _ -> Block.with_latency b 9 (Block.chain b 2)) in
    Block.fork_tree b leaves
  in
  let g = Block.finish b (Block.seq b (burst ()) (burst ())) in
  let r = Lhws_sim.run ~config:traced g ~p:2 in
  Schedule.check_exn g (Run.trace_exn r);
  check "twelve suspensions" 12 r.Run.stats.Stats.suspensions;
  check "twelve resumes" 12 r.Run.stats.Stats.resumes

let test_large_dag_all_schedulers () =
  (* A ~20k-vertex irregular dag through all three schedulers with the
     bound predicates — catches scaling bugs the small suites miss. *)
  let g =
    Generate.random_fork_join ~seed:2024 ~size_hint:20_000 ~latency_prob:0.15 ~max_latency:120
  in
  let u = Lhws_dag.Suspension.lower_bound_greedy g in
  List.iter
    (fun p ->
      let lh = Lhws_sim.run g ~p in
      let ws = Ws_sim.run g ~p in
      let gr = Greedy.run g ~p in
      check "lhws all" (Metrics.work g) lh.Run.stats.Stats.vertices_executed;
      check "ws all" (Metrics.work g) ws.Run.stats.Stats.vertices_executed;
      Alcotest.(check bool) "thm1" true (gr.Run.rounds <= Greedy.bound g ~p);
      Alcotest.(check bool) "lemma7" true (lh.Run.stats.Stats.max_deques_per_worker <= u + 1);
      Alcotest.(check bool) "balance" true
        (Stats.balanced lh.Run.stats && Stats.balanced ws.Run.stats))
    [ 1; 8; 32 ]

let test_stress_deterministic_large () =
  (* A larger mixed dag run twice must agree exactly. *)
  let g =
    Generate.random_fork_join ~seed:99 ~size_hint:3000 ~latency_prob:0.2 ~max_latency:60
  in
  let r1 = Lhws_sim.run g ~p:6 in
  let r2 = Lhws_sim.run g ~p:6 in
  check "rounds agree" r1.Run.rounds r2.Run.rounds;
  check "steals agree" r1.Run.stats.Stats.steals_ok r2.Run.stats.Stats.steals_ok;
  check "switches agree" r1.Run.stats.Stats.switches r2.Run.stats.Stats.switches

let () =
  Alcotest.run "sim_edge"
    [
      ( "two heavy children",
        [
          Alcotest.test_case "lhws" `Quick test_two_heavy_lhws;
          Alcotest.test_case "ws blocks for max" `Quick test_two_heavy_ws;
          Alcotest.test_case "greedy" `Quick test_two_heavy_greedy;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "switch accounting" `Quick test_switch_accounting_single_latency;
          Alcotest.test_case "deque recycling bounded" `Quick test_deque_recycling_bounded;
          Alcotest.test_case "snapshot consistency" `Quick test_snapshot_consistency;
          Alcotest.test_case "heavy right child" `Quick test_heavy_right_child_of_fork;
          Alcotest.test_case "interleaved bursts" `Quick test_interleaved_bursts;
          Alcotest.test_case "deterministic large" `Slow test_stress_deterministic_large;
          Alcotest.test_case "large dag, all schedulers" `Slow test_large_dag_all_schedulers;
        ] );
    ]
