module Dag = Lhws_dag.Dag
module Block = Lhws_dag.Block
module Check = Lhws_dag.Check
module Metrics = Lhws_dag.Metrics

let check = Alcotest.(check int)

let test_vertex () =
  let b = Dag.Builder.create () in
  let blk = Block.vertex b in
  check "entry = exit" blk.Block.entry blk.Block.exit;
  let g = Block.finish b blk in
  check "one vertex" 1 (Metrics.work g)

let test_chain () =
  let b = Dag.Builder.create () in
  let g = Block.finish b (Block.chain b 7) in
  check "work" 7 (Metrics.work g);
  check "span" 6 (Metrics.span g)

let test_chain_invalid () =
  let b = Dag.Builder.create () in
  Alcotest.check_raises "chain 0" (Invalid_argument "Block.chain: need at least one vertex")
    (fun () -> ignore (Block.chain b 0))

let test_seq () =
  let b = Dag.Builder.create () in
  let g = Block.finish b (Block.seq b (Block.chain b 3) (Block.chain b 4)) in
  check "work" 7 (Metrics.work g);
  check "span" 6 (Metrics.span g)

let test_seq_list () =
  let b = Dag.Builder.create () in
  let g = Block.finish b (Block.seq_list b [ Block.vertex b; Block.vertex b; Block.vertex b ]) in
  check "work" 3 (Metrics.work g);
  check "span" 2 (Metrics.span g)

let test_seq_list_empty () =
  let b = Dag.Builder.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Block.seq_list: empty list") (fun () ->
      ignore (Block.seq_list b []))

let test_fork2 () =
  let b = Dag.Builder.create () in
  let blk = Block.fork2 b (Block.chain b 5) (Block.chain b 2) in
  let g = Block.finish b blk in
  check "work" (5 + 2 + 2) (Metrics.work g);
  check "span through longer branch" (1 + 4 + 1) (Metrics.span g);
  (* left child is the first out-edge of the fork *)
  let fork = blk.Block.entry in
  check "fork out-degree" 2 (Dag.out_degree g fork);
  Alcotest.(check bool) "well-formed" true (Check.well_formed g)

let test_fork_tree_shapes () =
  List.iter
    (fun n ->
      let b = Dag.Builder.create () in
      let blocks = Array.init n (fun _ -> Block.vertex b) in
      let g = Block.finish b (Block.fork_tree b blocks) in
      check (Printf.sprintf "work n=%d" n) (n + (2 * (n - 1))) (Metrics.work g);
      Alcotest.(check bool) (Printf.sprintf "wf n=%d" n) true (Check.well_formed g))
    [ 1; 2; 3; 4; 5; 8; 13; 16; 31 ]

let test_latency () =
  let b = Dag.Builder.create () in
  let g = Block.finish b (Block.latency b 11) in
  check "work" 2 (Metrics.work g);
  check "span" 11 (Metrics.span g);
  check "heavy edges" 1 (Metrics.num_heavy_edges g)

let test_latency_invalid () =
  let b = Dag.Builder.create () in
  Alcotest.check_raises "delta 1" (Invalid_argument "Block.latency: delta must be >= 2")
    (fun () -> ignore (Block.latency b 1))

let test_with_latency () =
  let b = Dag.Builder.create () in
  let g = Block.finish b (Block.with_latency b 5 (Block.chain b 3)) in
  check "work" 5 (Metrics.work g);
  check "span" (5 + 1 + 2) (Metrics.span g)

let test_nested_composition () =
  (* (latency ; (a || (b ; latency))) repeated — stress combinator nesting *)
  let b = Dag.Builder.create () in
  let rec build depth =
    if depth = 0 then Block.vertex b
    else
      Block.seq b
        (Block.latency b 3)
        (Block.fork2 b (build (depth - 1)) (Block.with_latency b 4 (build (depth - 1))))
  in
  let g = Block.finish b (build 4) in
  Alcotest.(check bool) "well-formed" true (Check.well_formed g);
  Alcotest.(check bool) "has heavy edges" true (Metrics.num_heavy_edges g > 0)

let () =
  Alcotest.run "block"
    [
      ( "combinators",
        [
          Alcotest.test_case "vertex" `Quick test_vertex;
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "chain invalid" `Quick test_chain_invalid;
          Alcotest.test_case "seq" `Quick test_seq;
          Alcotest.test_case "seq_list" `Quick test_seq_list;
          Alcotest.test_case "seq_list empty" `Quick test_seq_list_empty;
          Alcotest.test_case "fork2" `Quick test_fork2;
          Alcotest.test_case "fork_tree shapes" `Quick test_fork_tree_shapes;
          Alcotest.test_case "latency" `Quick test_latency;
          Alcotest.test_case "latency invalid" `Quick test_latency_invalid;
          Alcotest.test_case "with_latency" `Quick test_with_latency;
          Alcotest.test_case "nested composition" `Quick test_nested_composition;
        ] );
    ]
