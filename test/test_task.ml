open Lhws_core

let test_pfor_empty_rejected () =
  Alcotest.check_raises "empty batch" (Invalid_argument "Task.pfor: empty batch") (fun () ->
      ignore (Task.pfor [||]))

let test_width () =
  Alcotest.(check int) "vertex width" 1 (Task.width (Task.Vertex 3));
  Alcotest.(check int) "pfor width" 5 (Task.width (Task.pfor [| 1; 2; 3; 4; 5 |]))

let test_split_vertex_rejected () =
  Alcotest.check_raises "split vertex" (Invalid_argument "Task.split: not a pfor task")
    (fun () -> ignore (Task.split (Task.Vertex 0)))

let test_split_pair () =
  match Task.split (Task.pfor [| 10; 20 |]) with
  | Task.Vertex 10, Some (Task.Vertex 20) -> ()
  | _ -> Alcotest.fail "expected two vertex children"

let test_split_singleton () =
  match Task.split (Task.Pfor { batch = [| 7 |]; lo = 0; hi = 1 }) with
  | Task.Vertex 7, None -> ()
  | _ -> Alcotest.fail "expected single vertex child"

(* Fully unfolding a pfor tree over n vertices must execute each vertex
   exactly once and create at most n - 1 internal pfor vertices (the
   accounting behind W + Wpfor <= 2W in Lemma 1). *)
let unfold task =
  let executed = ref [] and internal = ref 0 in
  let rec go = function
    | Task.Vertex v -> executed := v :: !executed
    | Task.Pfor _ as t ->
        incr internal;
        let l, r = Task.split t in
        go l;
        Option.iter go r
  in
  go task;
  (List.rev !executed, !internal)

let test_unfold_exact () =
  let batch = Array.init 11 (fun i -> i * 100) in
  let executed, internal = unfold (Task.pfor batch) in
  Alcotest.(check (list int)) "order preserved" (Array.to_list batch) executed;
  Alcotest.(check bool) "internal <= n-1" true (internal <= 10)

let prop_unfold =
  QCheck.Test.make ~name:"pfor unfolds to its batch with < n internal nodes" ~count:200
    QCheck.(int_range 1 200)
    (fun n ->
      QCheck.assume (n >= 1);
      let batch = Array.init n Fun.id in
      let executed, internal = unfold (Task.pfor batch) in
      (* A singleton batch still carries its one wrapper vertex. *)
      executed = List.init n Fun.id && internal <= max 1 (n - 1))

(* Span of the pfor tree is logarithmic: depth of recursion <= ceil(lg n)+1. *)
let prop_log_depth =
  QCheck.Test.make ~name:"pfor depth logarithmic" ~count:100
    QCheck.(int_range 1 1024)
    (fun n ->
      QCheck.assume (n >= 1);
      let rec depth = function
        | Task.Vertex _ -> 0
        | Task.Pfor _ as t ->
            let l, r = Task.split t in
            1 + max (depth l) (match r with Some r -> depth r | None -> 0)
      in
      let d = depth (Task.pfor (Array.init n Fun.id)) in
      let lg = int_of_float (ceil (log (float_of_int n) /. log 2.)) in
      d <= lg + 1)

let () =
  Alcotest.run "task"
    [
      ( "pfor",
        [
          Alcotest.test_case "empty rejected" `Quick test_pfor_empty_rejected;
          Alcotest.test_case "width" `Quick test_width;
          Alcotest.test_case "split vertex rejected" `Quick test_split_vertex_rejected;
          Alcotest.test_case "split pair" `Quick test_split_pair;
          Alcotest.test_case "split singleton" `Quick test_split_singleton;
          Alcotest.test_case "unfold exact" `Quick test_unfold_exact;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_unfold; QCheck_alcotest.to_alcotest prop_log_depth ]
      );
    ]
