open Lhws_runtime
module Pool = Lhws_pool

let with_io_pool f =
  Pool.with_pool ~workers:2 (fun p ->
      let io = Io.create () in
      Pool.register_poller p (fun () -> Io.poll io);
      f p io)

let test_pipe_roundtrip () =
  with_io_pool (fun p io ->
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () ->
          Unix.close r;
          Unix.close w)
        (fun () ->
          let msg =
            Pool.run p (fun () ->
                let reader =
                  Pool.async p (fun () ->
                      let buf = Bytes.create 5 in
                      Io.read_exactly io r buf 5;
                      Bytes.to_string buf)
                in
                (* writer delays so the reader genuinely parks on the fd *)
                Pool.sleep p 0.01;
                Io.write_all io w (Bytes.of_string "hello");
                Pool.await reader)
          in
          Alcotest.(check string) "round trip" "hello" msg))

let test_read_does_not_block_worker () =
  (* One worker, a fiber parked on an fd, another fiber computing: the
     computation must proceed — the whole point of latency hiding. *)
  Pool.with_pool ~workers:1 (fun p ->
      let io = Io.create () in
      Pool.register_poller p (fun () -> Io.poll io);
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () ->
          Unix.close r;
          Unix.close w)
        (fun () ->
          let result =
            Pool.run p (fun () ->
                let reader =
                  Pool.async p (fun () ->
                      let buf = Bytes.create 1 in
                      ignore (Io.read io r buf 0 1);
                      Bytes.get buf 0)
                in
                (* compute while the read is pending *)
                let x = Lhws_workloads.Fib.seq 20 in
                Io.write_all io w (Bytes.of_string "z");
                let c = Pool.await reader in
                (x, c))
          in
          Alcotest.(check (pair int char)) "compute + io" (6765, 'z') result))

let test_eof () =
  with_io_pool (fun p io ->
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.close w;
      Fun.protect
        ~finally:(fun () -> Unix.close r)
        (fun () ->
          let n =
            Pool.run p (fun () ->
                let buf = Bytes.create 4 in
                Io.read io r buf 0 4)
          in
          Alcotest.(check int) "eof reads 0" 0 n))

let test_read_exactly_eof_raises () =
  with_io_pool (fun p io ->
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () -> Unix.close r)
        (fun () ->
          let result =
            Pool.run p (fun () ->
                let writer =
                  Pool.async p (fun () ->
                      ignore (Unix.write w (Bytes.of_string "ab") 0 2);
                      Unix.close w)
                in
                let buf = Bytes.create 4 in
                let r =
                  match Io.read_exactly io r buf 4 with
                  | () -> "full"
                  | exception End_of_file -> "eof"
                in
                Pool.await writer;
                r)
          in
          Alcotest.(check string) "truncated" "eof" result))

let test_many_pipes () =
  with_io_pool (fun p io ->
      let n = 16 in
      let pipes = Array.init n (fun _ -> Unix.pipe ~cloexec:true ()) in
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun (r, w) ->
              Unix.close r;
              try Unix.close w with Unix.Unix_error _ -> ())
            pipes)
        (fun () ->
          let total =
            Pool.run p (fun () ->
                let readers =
                  Array.to_list
                    (Array.mapi
                       (fun i (r, _) ->
                         Pool.async p (fun () ->
                             let buf = Bytes.create 1 in
                             Io.read_exactly io r buf 1;
                             Char.code (Bytes.get buf 0) + i))
                       pipes)
                in
                (* Write in reverse order with pauses: readers resume out of
                   order, exercising the reactor's bookkeeping. *)
                for i = n - 1 downto 0 do
                  let _, w = pipes.(i) in
                  Io.write_all io w (Bytes.make 1 (Char.chr (65 + i)))
                done;
                List.fold_left (fun acc pr -> acc + Pool.await pr) 0 readers)
          in
          let expect = List.fold_left ( + ) 0 (List.init n (fun i -> 65 + i + i)) in
          Alcotest.(check int) "all pipes served" expect total))

let test_pending_count () =
  with_io_pool (fun p io ->
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () ->
          Unix.close r;
          Unix.close w)
        (fun () ->
          Pool.run p (fun () ->
              let reader =
                Pool.async p (fun () ->
                    let buf = Bytes.create 1 in
                    ignore (Io.read io r buf 0 1))
              in
              Pool.sleep p 0.01;
              Alcotest.(check int) "one parked fiber" 1 (Io.pending io);
              Io.write_all io w (Bytes.of_string "x");
              Pool.await reader;
              Alcotest.(check int) "drained" 0 (Io.pending io))))

let test_fd_error_surfaces () =
  (* Closing a descriptor under a parked fiber must resume it with the
     Unix error, not leave it parked forever (the reactor probes each fd
     when select rejects the whole set). *)
  with_io_pool (fun p io ->
      let r, w = Unix.pipe ~cloexec:true () in
      let outcome =
        Pool.run p (fun () ->
            let reader =
              Pool.async p (fun () ->
                  let buf = Bytes.create 1 in
                  match Io.read io r buf 0 1 with
                  | _ -> "read"
                  | exception Unix.Unix_error (Unix.EBADF, _, _) -> "ebadf")
            in
            Pool.sleep p 0.02;
            (* the reader is parked on [r]; now close it underneath *)
            Unix.close r;
            Pool.await reader)
      in
      Unix.close w;
      Alcotest.(check string) "parked waiter resumed with EBADF" "ebadf" outcome)

let test_io_pending_stat () =
  Pool.with_pool ~workers:2 (fun p ->
      let io = Io.create () in
      Pool.register_poller p ~pending:(fun () -> Io.pending io) (fun () -> Io.poll io);
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () ->
          Unix.close r;
          Unix.close w)
        (fun () ->
          Pool.run p (fun () ->
              let reader =
                Pool.async p (fun () ->
                    let buf = Bytes.create 1 in
                    ignore (Io.read io r buf 0 1))
              in
              Pool.sleep p 0.01;
              Alcotest.(check int) "gauge counts parked fiber" 1 (Pool.stats p).Pool.io_pending;
              Io.write_all io w (Bytes.of_string "x");
              Pool.await reader;
              Alcotest.(check int) "gauge drains" 0 (Pool.stats p).Pool.io_pending)))

let () =
  Alcotest.run "io"
    [
      ( "reactor",
        [
          Alcotest.test_case "pipe round trip" `Quick test_pipe_roundtrip;
          Alcotest.test_case "read does not block worker" `Quick test_read_does_not_block_worker;
          Alcotest.test_case "eof" `Quick test_eof;
          Alcotest.test_case "read_exactly eof" `Quick test_read_exactly_eof_raises;
          Alcotest.test_case "many pipes" `Quick test_many_pipes;
          Alcotest.test_case "pending count" `Quick test_pending_count;
          Alcotest.test_case "fd error surfaces to parked fiber" `Quick test_fd_error_surfaces;
          Alcotest.test_case "io_pending stats gauge" `Quick test_io_pending_stat;
        ] );
    ]
