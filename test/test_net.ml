open Lhws_runtime
module P = Lhws_workloads.Pool_intf
module Net = Lhws_net.Net
module Reactor = Lhws_net.Reactor
module Conn = Lhws_net.Conn
module Listener = Lhws_net.Listener
module Rpc = Lhws_net.Rpc
module Load = Lhws_net.Load
module Nmr = Lhws_net.Net_map_reduce

let loopback0 = Unix.ADDR_INET (Unix.inet_addr_loopback, 0)

let with_lhws_net ?(workers = 2) f =
  Lhws_pool.with_pool ~workers (fun p ->
      let rt =
        Reactor.fibers
          ~register:(fun ~pending ~syscalls poll ->
            Lhws_pool.register_poller p ?pending ?syscalls poll)
          ()
      in
      f p rt)

let raw_connect addr =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     Unix.close fd;
     raise e);
  fd

(* --- RPC echo under the load generator (fibers) --- *)

let test_rpc_echo_load () =
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      let report =
        Pl.run p (fun () ->
            let l = Rpc.serve (module Pl) p rt loopback0 ~handler:Fun.id in
            let r =
              Load.run (module Pl) p rt ~conns:2 ~inflight:4 ~iters:10 (Listener.addr l)
            in
            Listener.shutdown ~grace:2. l;
            r)
      in
      Alcotest.(check int) "no failed calls" 0 report.Load.errors;
      Alcotest.(check int) "all calls issued" 80 report.Load.total;
      Alcotest.(check bool) "p99 >= p50" true (report.Load.p99_us >= report.Load.p50_us))

(* --- concurrent large frames: writers must survive parking mid-write.
       512 KiB frames overflow loopback socket buffers, so the fiber
       holding the frame-write lock parks on EAGAIN and resumes on
       whichever worker steals it — an OS mutex held across that park
       would be unlocked from the wrong thread and wedge the
       connection. --- *)

let test_rpc_large_concurrent_writes () =
  with_lhws_net ~workers:4 (fun p rt ->
      let module Pl = P.Lhws_instance in
      let size = 512 * 1024 in
      let k = 8 in
      let ok =
        Pl.run p (fun () ->
            let l = Rpc.serve (module Pl) p rt loopback0 ~handler:Fun.id in
            let client = Rpc.Client.connect (module Pl) p rt (Listener.addr l) in
            let payload i = Bytes.make size (Char.chr (Char.code 'a' + i)) in
            let tasks =
              List.init k (fun i ->
                  Pl.async p (fun () ->
                      let resp = Pl.await p (Rpc.Client.call client (payload i)) in
                      Bytes.equal resp (payload i)))
            in
            let ok = List.for_all (fun t -> Pl.await p t) tasks in
            Rpc.Client.close client;
            Listener.shutdown ~grace:5. l;
            ok)
      in
      Alcotest.(check bool) "large pipelined frames all echo intact" true ok)

(* --- handler exceptions travel back as Remote_error --- *)

let test_rpc_remote_error () =
  with_lhws_net (fun p rt ->
      let module Pl = P.Lhws_instance in
      let got =
        Pl.run p (fun () ->
            let l = Rpc.serve (module Pl) p rt loopback0 ~handler:(fun _ -> failwith "boom") in
            let client = Rpc.Client.connect (module Pl) p rt (Listener.addr l) in
            let got =
              match Pl.await p (Rpc.Client.call client (Bytes.of_string "x")) with
              | (_ : bytes) -> "ok"
              | exception Net.Remote_error msg ->
                  if Astring.String.is_infix ~affix:"boom" msg then "remote" else msg
            in
            Rpc.Client.close client;
            Listener.shutdown ~grace:2. l;
            got)
      in
      Alcotest.(check string) "handler failure surfaced" "remote" got)

(* --- per-operation deadlines --- *)

let test_conn_deadline_fibers () =
  with_lhws_net (fun p rt ->
      let module Pl = P.Lhws_instance in
      let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let outcome, conn =
        Pl.run p (fun () ->
            let c = Conn.create rt ~read_timeout:0.05 a in
            let buf = Bytes.create 1 in
            let o =
              match Conn.read c buf 0 1 with
              | _ -> "read"
              | exception Net.Timeout -> "timeout"
            in
            (o, c))
      in
      Conn.close conn;
      Unix.close b;
      Alcotest.(check string) "fiber read deadline" "timeout" outcome)

let test_conn_deadline_blocking () =
  (* Blocking mode needs no pool at all: the deadline is select's timeout. *)
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rt = Reactor.blocking () in
  let c = Conn.create rt ~read_timeout:0.05 a in
  let buf = Bytes.create 1 in
  let outcome =
    match Conn.read c buf 0 1 with _ -> "read" | exception Net.Timeout -> "timeout"
  in
  Conn.close c;
  Unix.close b;
  Alcotest.(check string) "blocking read deadline" "timeout" outcome

(* --- close while a reader is parked: shutdown must wake it, and the
       deferred [Unix.close] (refcounted against in-flight ops) must
       still release the descriptor once the reader unwinds --- *)

let test_close_while_parked_no_leak () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let before = count_fds () in
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      let outcome =
        Pl.run p (fun () ->
            let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            let c = Conn.create rt a in
            let reader =
              Pl.async p (fun () ->
                  let buf = Bytes.create 1 in
                  match Conn.read c buf 0 1 with
                  | 0 -> "eof"
                  | _ -> "data"
                  | exception Net.Closed -> "closed")
            in
            Pl.sleep p 0.02;  (* let the reader park in the reactor *)
            Conn.close c;
            let o = Pl.await p reader in
            Unix.close b;
            o)
      in
      Alcotest.(check bool) "parked reader woken by close" true
        (outcome = "eof" || outcome = "closed"));
  Alcotest.(check int) "descriptor released after drain" before (count_fds ())

(* --- graceful shutdown waits for the in-flight response --- *)

let test_graceful_drain () =
  with_lhws_net ~workers:4 (fun p rt ->
      let module Pl = P.Lhws_instance in
      let started = Atomic.make false in
      let resp, live_after =
        Pl.run p (fun () ->
            let l =
              Rpc.serve (module Pl) p rt loopback0
                ~handler:(fun b ->
                  Atomic.set started true;
                  Pl.sleep p 0.15;
                  b)
            in
            let client = Rpc.Client.connect (module Pl) p rt (Listener.addr l) in
            let call = Rpc.Client.call client (Bytes.of_string "ping") in
            while not (Atomic.get started) do
              Pl.sleep p 0.005
            done;
            (* shut down while the handler is mid-request: the drain must
               let its response out before the listener dies *)
            let sd = Pl.async p (fun () -> Listener.shutdown ~grace:5. l) in
            let resp = Bytes.to_string (Pl.await p call) in
            Rpc.Client.close client;
            Pl.await p sd;
            (resp, Listener.live l))
      in
      Alcotest.(check string) "in-flight response delivered" "ping" resp;
      Alcotest.(check int) "all handlers drained" 0 live_after)

(* --- idle connections are reaped --- *)

let test_idle_reap () =
  with_lhws_net ~workers:2 (fun p rt ->
      let module Pl = P.Lhws_instance in
      let reaped =
        Pl.run p (fun () ->
            let config =
              { Listener.default_config with idle_timeout = Some 0.05; reap_interval = 0.01 }
            in
            let l =
              Listener.serve (module Pl) p rt ~config loopback0
                ~handler:(fun c ->
                  let b = Bytes.create 1 in
                  ignore (Conn.read c b 0 1 : int))
            in
            (* connect, then go silent: the reaper must close us *)
            let fd = raw_connect (Listener.addr l) in
            while Listener.live l < 1 do
              Pl.sleep p 0.005
            done;
            let rec wait_reap n =
              if Listener.live l = 0 then true
              else if n > 400 then false
              else begin
                Pl.sleep p 0.01;
                wait_reap (n + 1)
              end
            in
            let reaped = wait_reap 0 in
            Unix.close fd;
            Listener.shutdown ~grace:2. l;
            reaped)
      in
      Alcotest.(check bool) "idle connection reaped" true reaped)

(* --- the acceptance bar: 500 concurrent connections, graceful
       shutdown, zero leaked descriptors --- *)

let test_many_connections_no_leak () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let before = count_fds () in
  let n = 500 in
  let max_gauge = ref 0 in
  with_lhws_net ~workers:4 (fun p rt ->
      let module Pl = P.Lhws_instance in
      Pl.run p (fun () ->
          let config = { Listener.default_config with max_conns = 600 } in
          let l =
            Rpc.serve (module Pl) p rt ~config loopback0
              ~handler:(fun b ->
                Pl.sleep p 0.08;
                b)
          in
          let addr = Listener.addr l in
          let conns = Array.init n (fun _ -> Conn.create rt (raw_connect addr)) in
          let calls =
            Array.map
              (fun c -> Pl.async p (fun () -> Bytes.to_string (Rpc.call_sync c (Bytes.of_string "m"))))
              conns
          in
          (* sample the io_pending gauge while the fleet is parked *)
          for _ = 1 to 120 do
            max_gauge := max !max_gauge (Pl.stats p).Scheduler_core.io_pending;
            Pl.sleep p 0.001
          done;
          Array.iter (fun t -> Alcotest.(check string) "echoed" "m" (Pl.await p t)) calls;
          Alcotest.(check int) "every connection accepted" n (Listener.accepted l);
          Array.iter Conn.close conns;
          Listener.shutdown ~grace:5. l;
          Alcotest.(check int) "all handlers drained" 0 (Listener.live l)));
  let after = count_fds () in
  Alcotest.(check int) "zero leaked fds" before after;
  Alcotest.(check bool)
    (Printf.sprintf "io_pending gauge saw the parked fleet (max %d)" !max_gauge)
    true
    (!max_gauge >= n)

(* --- net_map_reduce checksum agreement across pool modes --- *)

let test_net_map_reduce_modes () =
  Nmr.with_data_server ~delta:0. (fun addr ->
      let n = 24 and fib_n = 5 in
      let expect = Nmr.expected ~n ~fib_n in
      with_lhws_net ~workers:2 (fun p rt ->
          let module Pl = P.Lhws_instance in
          let sum =
            Pl.run p (fun () -> Nmr.run (module Pl) p rt ~addr ~n ~conns:2 ~fib_n ())
          in
          Alcotest.(check int) "lhws pipelined checksum" expect sum);
      (let module Pw = P.Ws_instance in
       Ws_pool.with_pool ~workers:2 (fun p ->
           let rt = Reactor.blocking () in
           let sum = Pw.run p (fun () -> Nmr.run (module Pw) p rt ~addr ~n ~conns:2 ~fib_n ()) in
           Alcotest.(check int) "ws blocking checksum" expect sum));
      let module Pt = P.Threaded_instance in
      let p = Pt.create () in
      Fun.protect
        ~finally:(fun () -> Pt.shutdown p)
        (fun () ->
          let rt = Reactor.blocking () in
          let sum = Pt.run p (fun () -> Nmr.run (module Pt) p rt ~addr ~n ~conns:2 ~fib_n ()) in
          Alcotest.(check int) "threads blocking checksum" expect sum))

let () =
  Alcotest.run "net"
    [
      ( "rpc",
        [
          Alcotest.test_case "echo under load" `Quick test_rpc_echo_load;
          Alcotest.test_case "large concurrent frames" `Quick test_rpc_large_concurrent_writes;
          Alcotest.test_case "remote error" `Quick test_rpc_remote_error;
        ] );
      ( "conn",
        [
          Alcotest.test_case "deadline (fibers)" `Quick test_conn_deadline_fibers;
          Alcotest.test_case "deadline (blocking)" `Quick test_conn_deadline_blocking;
          Alcotest.test_case "close while parked" `Quick test_close_while_parked_no_leak;
        ] );
      ( "listener",
        [
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
          Alcotest.test_case "idle reap" `Quick test_idle_reap;
          Alcotest.test_case "500 conns, no fd leak" `Quick test_many_connections_no_leak;
        ] );
      ( "workload",
        [ Alcotest.test_case "net_map_reduce checksums" `Quick test_net_map_reduce_modes ] );
    ]
