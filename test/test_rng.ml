open Lhws_core

let test_determinism () =
  let a = Rng.make 123 and b = Rng.make 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.make 1 and b = Rng.make 2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_split_independent () =
  let parent = Rng.make 7 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  Alcotest.(check bool) "children differ" true (Rng.bits64 c1 <> Rng.bits64 c2)

let test_split_deterministic () =
  let mk () =
    let p = Rng.make 7 in
    let c = Rng.split p in
    Rng.bits64 c
  in
  Alcotest.(check int64) "split reproducible" (mk ()) (mk ())

let test_int_bounds () =
  let r = Rng.make 99 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done

let test_int_invalid () =
  let r = Rng.make 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_int_covers_range () =
  let r = Rng.make 5 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 4) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let r = Rng.make 13 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_uniformity_rough () =
  let r = Rng.make 21 in
  let n = 100_000 in
  let buckets = Array.make 10 0 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d roughly uniform" i)
        true
        (abs (c - (n / 10)) < n / 50))
    buckets

let () =
  Alcotest.run "rng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_split_independent;
          Alcotest.test_case "split determinism" `Quick test_split_deterministic;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
        ] );
    ]
