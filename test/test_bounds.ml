module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
module Suspension = Lhws_dag.Suspension
open Lhws_core
open Lhws_analysis

let analysis = Config.analysis

let grid =
  (* (name, dag, known U) *)
  [
    ("map_reduce", Generate.map_reduce ~n:32 ~leaf_work:4 ~latency:40, 32);
    ("server", Generate.server ~n:12 ~f_work:6 ~latency:15, 1);
    ("fib", Generate.fib ~n:12 (), 0);
    ("pipeline", Generate.pipeline ~stages:4 ~items:8 ~latency:12, 8);
    ("chains", Generate.parallel_chains ~k:8 ~len:10, 0);
  ]

let instances () =
  List.concat_map
    (fun (name, dag, u) ->
      List.map
        (fun p ->
          let run = Lhws_sim.run ~config:analysis dag ~p in
          (Printf.sprintf "%s P=%d" name p, Bounds.instance ~suspension_width:u dag ~p run))
        [ 1; 2; 4; 8 ])
    grid

let for_all_instances name pred () =
  List.iter (fun (label, i) -> Alcotest.(check bool) (name ^ " " ^ label) true (pred i))
    (instances ())

let test_lg () =
  Alcotest.(check (float 1e-9)) "lg 0" 0. (Bounds.lg 0);
  Alcotest.(check (float 1e-9)) "lg 1" 0. (Bounds.lg 1);
  Alcotest.(check (float 1e-9)) "lg 2" 1. (Bounds.lg 2);
  Alcotest.(check (float 1e-9)) "lg 8" 3. (Bounds.lg 8)

let test_greedy_bound_checks () =
  List.iter
    (fun (name, dag, u) ->
      List.iter
        (fun p ->
          let run = Greedy.run dag ~p in
          let i = Bounds.instance ~suspension_width:u dag ~p run in
          Alcotest.(check bool) (Printf.sprintf "%s P=%d" name p) true (Bounds.greedy_ok i))
        [ 1; 3; 6 ])
    grid

let test_instance_defaults () =
  let dag = Generate.map_reduce ~n:4 ~leaf_work:1 ~latency:5 in
  let run = Lhws_sim.run dag ~p:2 in
  let i = Bounds.instance dag ~p:2 run in
  Alcotest.(check int) "U defaults to greedy lower bound"
    (Suspension.lower_bound_greedy dag) i.Bounds.suspension_width;
  Alcotest.(check int) "work" (Metrics.work dag) i.Bounds.work;
  Alcotest.(check int) "span" (Metrics.span dag) i.Bounds.span

let test_ratio_reasonable () =
  (* Theorem 2 is O(.): measured/bound should stay below a small constant. *)
  List.iter
    (fun (label, i) ->
      let r = Bounds.lhws_ratio i in
      Alcotest.(check bool) (Printf.sprintf "%s ratio=%.2f < 3" label r) true (r < 3.))
    (instances ())

let test_corollary1_requires_trace () =
  let dag = Generate.diamond () in
  let run = Lhws_sim.run dag ~p:1 in
  let i = Bounds.instance dag ~p:1 run in
  match Bounds.corollary1_ok i with
  | _ -> Alcotest.fail "expected Invalid_argument without trace"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "bounds"
    [
      ( "predicates",
        [
          Alcotest.test_case "lg" `Quick test_lg;
          Alcotest.test_case "instance defaults" `Quick test_instance_defaults;
          Alcotest.test_case "Theorem 1" `Quick test_greedy_bound_checks;
          Alcotest.test_case "Lemma 1" `Slow (for_all_instances "lemma1" Bounds.lemma1_ok);
          Alcotest.test_case "Lemma 7" `Slow (for_all_instances "lemma7" Bounds.lemma7_ok);
          Alcotest.test_case "width <= U" `Slow (for_all_instances "width" Bounds.width_ok);
          Alcotest.test_case "Corollary 1" `Slow (for_all_instances "cor1" Bounds.corollary1_ok);
          Alcotest.test_case "pfor work" `Slow (for_all_instances "pfor" Bounds.pfor_work_ok);
          Alcotest.test_case "Theorem 2 ratio" `Slow test_ratio_reasonable;
          Alcotest.test_case "corollary1 needs trace" `Quick test_corollary1_requires_trace;
        ] );
    ]
