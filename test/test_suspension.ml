module Dag = Lhws_dag.Dag
module Block = Lhws_dag.Block
module Suspension = Lhws_dag.Suspension
module Generate = Lhws_dag.Generate

let check = Alcotest.(check int)

let test_no_heavy () =
  check "diamond U=0" 0 (Suspension.exact (Generate.diamond ()));
  check "chain U=0" 0 (Suspension.exact (Generate.chain ~n:8 ()))

let test_single_latency () =
  check "U=1" 1 (Suspension.exact (Generate.single_latency ~delta:9))

let test_map_reduce_u_equals_n () =
  (* Section 5: all n remote reads can be in flight at once. *)
  List.iter
    (fun n ->
      check
        (Printf.sprintf "map_reduce n=%d" n)
        n
        (Suspension.exact (Generate.map_reduce ~n ~leaf_work:1 ~latency:4)))
    [ 1; 2; 3; 4 ]

let test_server_u_equals_1 () =
  (* Section 5: at most one getInput is outstanding. *)
  List.iter
    (fun n ->
      check
        (Printf.sprintf "server n=%d" n)
        1
        (Suspension.exact (Generate.server ~n ~f_work:1 ~latency:4)))
    [ 1; 2; 3 ]

let test_sequential_latencies () =
  (* Two latency ops in sequence: connectivity forces U = 1. *)
  let b = Dag.Builder.create () in
  let g = Block.finish b (Block.seq b (Block.latency b 4) (Block.latency b 4)) in
  check "U=1" 1 (Suspension.exact g)

let test_parallel_latencies () =
  (* Two latency ops in parallel branches: both can be outstanding. *)
  let b = Dag.Builder.create () in
  let g = Block.finish b (Block.fork2 b (Block.latency b 4) (Block.latency b 4)) in
  check "U=2" 2 (Suspension.exact g)

let test_crossing_heavy () =
  let g = Generate.single_latency ~delta:5 in
  let root = Dag.root g in
  check "root-only cut crosses" 1 (Suspension.crossing_heavy g ~in_s:(fun v -> v = root));
  check "full set crosses nothing" 0 (Suspension.crossing_heavy g ~in_s:(fun _ -> true))

let test_guard () =
  let g = Generate.map_reduce ~n:12 ~leaf_work:2 ~latency:3 in
  match Suspension.exact g with
  | _ -> Alcotest.fail "expected guard to trip"
  | exception Invalid_argument _ -> ()

let random_dag seed =
  Generate.random_fork_join ~seed ~size_hint:10 ~latency_prob:0.4 ~max_latency:6

(* On small random dags the three estimators are consistently ordered. *)
let prop_ordering =
  QCheck.Test.make ~name:"lower_bound <= exact_prefix <= exact" ~count:60 QCheck.small_int
    (fun seed ->
      let g = random_dag seed in
      QCheck.assume (Dag.num_vertices g <= 18);
      let lb = Suspension.lower_bound_greedy g in
      let pre = Suspension.exact_prefix g in
      let ex = Suspension.exact g in
      lb <= pre && pre <= ex)

let prop_at_most_heavy_count =
  QCheck.Test.make ~name:"U <= number of heavy edges" ~count:60 QCheck.small_int (fun seed ->
      let g = random_dag seed in
      QCheck.assume (Dag.num_vertices g <= 18);
      Suspension.exact g <= List.length (Dag.heavy_edges g))

let () =
  Alcotest.run "suspension"
    [
      ( "exact",
        [
          Alcotest.test_case "no heavy edges" `Quick test_no_heavy;
          Alcotest.test_case "single latency" `Quick test_single_latency;
          Alcotest.test_case "map_reduce U=n" `Quick test_map_reduce_u_equals_n;
          Alcotest.test_case "server U=1" `Quick test_server_u_equals_1;
          Alcotest.test_case "sequential latencies" `Quick test_sequential_latencies;
          Alcotest.test_case "parallel latencies" `Quick test_parallel_latencies;
          Alcotest.test_case "crossing_heavy" `Quick test_crossing_heavy;
          Alcotest.test_case "size guard" `Quick test_guard;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_ordering;
          QCheck_alcotest.to_alcotest prop_at_most_heavy_count;
        ] );
    ]
