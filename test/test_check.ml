module Dag = Lhws_dag.Dag
module Check = Lhws_dag.Check
module Generate = Lhws_dag.Generate

let violation_kinds g =
  List.map
    (function
      | Check.Multiple_roots _ -> "roots"
      | Check.Multiple_finals _ -> "finals"
      | Check.Out_degree_exceeded _ -> "outdeg"
      | Check.Heavy_target_in_degree _ -> "heavy-in"
      | Check.Unreachable_from_root _ -> "unreachable"
      | Check.Cannot_reach_final _ -> "dead-end")
    (Check.violations g)

let test_well_formed_generators () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) name true (Check.well_formed g))
    [
      ("diamond", Generate.diamond ());
      ("single latency", Generate.single_latency ~delta:5);
      ("map_reduce", Generate.map_reduce ~n:13 ~leaf_work:3 ~latency:9);
      ("server", Generate.server ~n:7 ~f_work:4 ~latency:6);
      ("fib", Generate.fib ~n:10 ());
      ("chain", Generate.chain ~n:20 ());
      ("pipeline", Generate.pipeline ~stages:4 ~items:6 ~latency:5);
    ]

let test_multiple_roots () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v2;
  Dag.Builder.add_edge b v1 v2;
  let g = Dag.Builder.build b in
  Alcotest.(check bool) "lists roots" true (List.mem "roots" (violation_kinds g))

let test_multiple_finals () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v1;
  Dag.Builder.add_edge b v0 v2;
  let g = Dag.Builder.build b in
  Alcotest.(check bool) "lists finals" true (List.mem "finals" (violation_kinds g))

let test_out_degree () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let sink = Dag.Builder.add_vertex b in
  for _ = 1 to 3 do
    let v = Dag.Builder.add_vertex b in
    Dag.Builder.add_edge b v0 v;
    Dag.Builder.add_edge b v sink
  done;
  let g = Dag.Builder.build b in
  Alcotest.(check bool) "lists outdeg" true (List.mem "outdeg" (violation_kinds g))

let test_heavy_target_in_degree () =
  (* Heavy edge into a join (in-degree 2) violates assumption 3. *)
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  let v3 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v1;
  Dag.Builder.add_edge b v0 v2;
  Dag.Builder.add_edge ~weight:4 b v1 v3;
  Dag.Builder.add_edge b v2 v3;
  let g = Dag.Builder.build b in
  Alcotest.(check bool) "lists heavy-in" true (List.mem "heavy-in" (violation_kinds g))

let test_disconnected () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  let _island = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v1;
  let g = Dag.Builder.build b in
  let kinds = violation_kinds g in
  Alcotest.(check bool) "island unreachable or dead-end" true
    (List.mem "unreachable" kinds || List.mem "dead-end" kinds)

let test_check_exn () =
  Alcotest.(check unit) "ok dag passes" () (Check.check_exn (Generate.diamond ()));
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex b in
  let v1 = Dag.Builder.add_vertex b in
  let v2 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v2;
  Dag.Builder.add_edge b v1 v2;
  let g = Dag.Builder.build b in
  match Check.check_exn g with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_pp_violation () =
  let s = Format.asprintf "%a" Check.pp_violation (Check.Out_degree_exceeded (7, 3)) in
  Alcotest.(check bool) "mentions vertex" true (Astring.String.is_infix ~affix:"7" s)

(* Property: random series-parallel dags are always well-formed. *)
let prop_random_well_formed =
  QCheck.Test.make ~name:"random_fork_join well-formed" ~count:100 QCheck.small_int (fun seed ->
      Check.well_formed
        (Generate.random_fork_join ~seed ~size_hint:60 ~latency_prob:0.3 ~max_latency:10))

let () =
  Alcotest.run "check"
    [
      ( "violations",
        [
          Alcotest.test_case "generators well-formed" `Quick test_well_formed_generators;
          Alcotest.test_case "multiple roots" `Quick test_multiple_roots;
          Alcotest.test_case "multiple finals" `Quick test_multiple_finals;
          Alcotest.test_case "out-degree > 2" `Quick test_out_degree;
          Alcotest.test_case "heavy target in-degree" `Quick test_heavy_target_in_degree;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "check_exn" `Quick test_check_exn;
          Alcotest.test_case "pp" `Quick test_pp_violation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_well_formed ]);
    ]
