module Dag = Lhws_dag.Dag
module Check = Lhws_dag.Check
module Metrics = Lhws_dag.Metrics
module Generate = Lhws_dag.Generate

let check = Alcotest.(check int)

let test_map_reduce_work () =
  List.iter
    (fun (n, w, d) ->
      let g = Generate.map_reduce ~n ~leaf_work:w ~latency:d in
      check (Printf.sprintf "W n=%d" n) ((n * (2 + w)) + (2 * (n - 1))) (Metrics.work g);
      check (Printf.sprintf "heavy n=%d" n) n (Metrics.num_heavy_edges g);
      Alcotest.(check bool) "wf" true (Check.well_formed g))
    [ (1, 1, 2); (2, 3, 5); (7, 4, 10); (64, 1, 100) ]

let test_map_reduce_invalid () =
  List.iter
    (fun f -> match f () with
      | (_ : Dag.t) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Generate.map_reduce ~n:0 ~leaf_work:1 ~latency:2);
      (fun () -> Generate.map_reduce ~n:1 ~leaf_work:0 ~latency:2);
      (fun () -> Generate.map_reduce ~n:1 ~leaf_work:1 ~latency:1);
      (fun () ->
        Generate.map_reduce_jitter ~seed:1 ~n:1 ~leaf_work:1 ~min_latency:1 ~max_latency:4);
      (fun () ->
        Generate.map_reduce_jitter ~seed:1 ~n:1 ~leaf_work:1 ~min_latency:5 ~max_latency:4);
      (fun () -> Generate.server ~n:0 ~f_work:1 ~latency:2);
      (fun () -> Generate.server ~n:1 ~f_work:1 ~latency:1);
      (fun () -> Generate.fib ~n:(-1) ());
      (fun () -> Generate.fib ~leaf_work:0 ~n:3 ());
      (fun () -> Generate.chain ~n:1 ());
      (fun () -> Generate.chain ~latency_every:(-1) ~n:4 ());
      (fun () -> Generate.chain ~latency_every:2 ~latency:1 ~n:4 ());
      (fun () -> Generate.parallel_chains ~k:0 ~len:1);
      (fun () -> Generate.parallel_chains ~k:1 ~len:0);
      (fun () -> Generate.pipeline ~stages:0 ~items:1 ~latency:2);
      (fun () -> Generate.pipeline ~stages:1 ~items:0 ~latency:2);
      (fun () -> Generate.pipeline ~stages:2 ~items:1 ~latency:1);
      (fun () -> Generate.resume_burst ~n:0 ~leaf_work:1 ~latency:2);
      (fun () -> Generate.resume_burst ~n:1 ~leaf_work:1 ~latency:1);
      (fun () -> Generate.single_latency ~delta:1);
      (fun () ->
        Generate.random_fork_join ~seed:1 ~size_hint:0 ~latency_prob:0.5 ~max_latency:4);
      (fun () ->
        Generate.random_fork_join ~seed:1 ~size_hint:10 ~latency_prob:1.5 ~max_latency:4);
      (fun () ->
        Generate.random_fork_join ~seed:1 ~size_hint:10 ~latency_prob:0.5 ~max_latency:1);
    ]

let test_invalid_message_names_value () =
  (* The fuzzer relies on precondition failures being self-describing. *)
  List.iter
    (fun (f, expected) ->
      match f () with
      | (_ : Dag.t) -> Alcotest.fail ("expected Invalid_argument for " ^ expected)
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%S in %S" expected msg)
            true
            (Astring.String.is_infix ~affix:expected msg))
    [
      ((fun () -> Generate.map_reduce ~n:0 ~leaf_work:1 ~latency:2), "n must be >= 1 (got 0)");
      ( (fun () -> Generate.server ~n:3 ~f_work:1 ~latency:1),
        "latency must be >= 2 (got 1)" );
      ((fun () -> Generate.fib ~n:(-2) ()), "n must be >= 0 (got -2)");
      ( (fun () -> Generate.single_latency ~delta:0),
        "delta must be >= 2 (got 0)" );
    ]

let test_server_heavy_count () =
  let g = Generate.server ~n:9 ~f_work:2 ~latency:4 in
  check "one heavy per input" 9 (Metrics.num_heavy_edges g)

let test_fib_structure () =
  (* fib dag leaves = fib(n+1) in the classical count; just check a known
     small case: fib 3 = fork(fib2, fib1); fib2 = fork(fib1, fib0). *)
  let g = Generate.fib ~n:3 () in
  (* leaves: fib1, fib0, fib1, fib1 -> wait: fib3 -> fib2 + fib1; fib2 -> fib1 + fib0.
     Leaves = 3 base cases? fib1, fib0 under fib2, plus fib1 = 3 leaves; forks = 2. *)
  check "work" (3 + (2 * 2)) (Metrics.work g);
  Alcotest.(check bool) "no heavy" true (Metrics.num_heavy_edges g = 0)

let test_fib_leaf_work () =
  let g1 = Generate.fib ~n:6 () in
  let g3 = Generate.fib ~leaf_work:3 ~n:6 () in
  Alcotest.(check bool) "leaf_work increases work" true (Metrics.work g3 > Metrics.work g1)

let test_parallel_chains () =
  (* k = 4 gives a balanced fork tree: 2 fork edges down, 3 chain edges,
     2 join edges up. *)
  let g = Generate.parallel_chains ~k:4 ~len:4 in
  check "work" ((4 * 4) + (2 * 3)) (Metrics.work g);
  check "span" (2 + 3 + 2) (Metrics.span g)

let test_pipeline () =
  let g = Generate.pipeline ~stages:3 ~items:4 ~latency:6 in
  (* per item: 3 stage vertices + 2 latency ops (2 vertices each) *)
  check "work" ((4 * (3 + 4)) + (2 * 3)) (Metrics.work g);
  check "heavy" 8 (Metrics.num_heavy_edges g);
  Alcotest.(check bool) "wf" true (Check.well_formed g)

let test_map_reduce_jitter () =
  let g = Generate.map_reduce_jitter ~seed:5 ~n:20 ~leaf_work:3 ~min_latency:4 ~max_latency:30 in
  Alcotest.(check bool) "wf" true (Check.well_formed g);
  check "heavy count" 20 (Metrics.num_heavy_edges g);
  let weights = List.map (fun (e : Dag.edge) -> e.Dag.weight) (Dag.heavy_edges g) in
  Alcotest.(check bool) "in range" true (List.for_all (fun w -> w >= 4 && w <= 30) weights);
  Alcotest.(check bool) "actually varied" true
    (List.length (List.sort_uniq compare weights) > 3);
  (* deterministic in seed *)
  let g2 = Generate.map_reduce_jitter ~seed:5 ~n:20 ~leaf_work:3 ~min_latency:4 ~max_latency:30 in
  Alcotest.(check bool) "deterministic" true (Dag.edges g = Dag.edges g2)

let test_resume_burst () =
  let n = 12 and leaf_work = 3 and latency = 20 in
  let g = Generate.resume_burst ~n ~leaf_work ~latency in
  Alcotest.(check bool) "wf" true (Check.well_formed g);
  check "heavy edges" n (Metrics.num_heavy_edges g);
  (* spine n + chains n*leaf_work + join tree (n-1) + final *)
  check "work" (n + (n * leaf_work) + (n - 1) + 1) (Metrics.work g);
  (* The i-th heavy edge has weight latency + n - i: issue at round i means
     all resume at round latency + n. *)
  let weights = List.map (fun (e : Dag.edge) -> e.Dag.weight) (Dag.heavy_edges g) in
  Alcotest.(check int) "max weight" (latency + n) (List.fold_left max 0 weights);
  Alcotest.(check int) "min weight" (latency + 1) (List.fold_left min max_int weights)

let test_resume_burst_small () =
  let g = Generate.resume_burst ~n:1 ~leaf_work:1 ~latency:5 in
  Alcotest.(check bool) "wf n=1" true (Check.well_formed g)

let test_determinism () =
  let g1 = Generate.random_fork_join ~seed:11 ~size_hint:50 ~latency_prob:0.3 ~max_latency:9 in
  let g2 = Generate.random_fork_join ~seed:11 ~size_hint:50 ~latency_prob:0.3 ~max_latency:9 in
  check "same size" (Dag.num_vertices g1) (Dag.num_vertices g2);
  Alcotest.(check bool) "same edges" true (Dag.edges g1 = Dag.edges g2)

let test_seed_variation () =
  let sizes =
    List.map
      (fun seed ->
        Dag.num_vertices
          (Generate.random_fork_join ~seed ~size_hint:50 ~latency_prob:0.3 ~max_latency:9))
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "seeds differ" true (List.sort_uniq compare sizes <> [ List.hd sizes ])

let prop_random_sized =
  QCheck.Test.make ~name:"random dag size within reason" ~count:80 QCheck.small_int (fun seed ->
      let g = Generate.random_fork_join ~seed ~size_hint:100 ~latency_prob:0.2 ~max_latency:8 in
      let n = Dag.num_vertices g in
      n >= 1 && n <= 2000)

let prop_latency_prob_zero_means_light =
  QCheck.Test.make ~name:"latency_prob 0 -> no heavy edges" ~count:50 QCheck.small_int
    (fun seed ->
      Metrics.num_heavy_edges
        (Generate.random_fork_join ~seed ~size_hint:60 ~latency_prob:0. ~max_latency:5)
      = 0)

let () =
  Alcotest.run "generate"
    [
      ( "generators",
        [
          Alcotest.test_case "map_reduce work/heavy" `Quick test_map_reduce_work;
          Alcotest.test_case "invalid args" `Quick test_map_reduce_invalid;
          Alcotest.test_case "invalid args name the value" `Quick test_invalid_message_names_value;
          Alcotest.test_case "server heavy count" `Quick test_server_heavy_count;
          Alcotest.test_case "fib structure" `Quick test_fib_structure;
          Alcotest.test_case "fib leaf work" `Quick test_fib_leaf_work;
          Alcotest.test_case "parallel chains" `Quick test_parallel_chains;
          Alcotest.test_case "pipeline" `Quick test_pipeline;
          Alcotest.test_case "map_reduce jitter" `Quick test_map_reduce_jitter;
          Alcotest.test_case "resume_burst" `Quick test_resume_burst;
          Alcotest.test_case "resume_burst n=1" `Quick test_resume_burst_small;
          Alcotest.test_case "random determinism" `Quick test_determinism;
          Alcotest.test_case "random seed variation" `Quick test_seed_variation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_sized;
          QCheck_alcotest.to_alcotest prop_latency_prob_zero_means_light;
        ] );
    ]
