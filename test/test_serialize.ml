module Dag = Lhws_dag.Dag
module Generate = Lhws_dag.Generate
module Serialize = Lhws_dag.Serialize

let same_dag g1 g2 =
  Dag.num_vertices g1 = Dag.num_vertices g2
  && Dag.edges g1 = Dag.edges g2
  && List.init (Dag.num_vertices g1) (Dag.label g1)
     = List.init (Dag.num_vertices g2) (Dag.label g2)

let test_round_trip_generators () =
  List.iter
    (fun (name, g) ->
      let g' = Serialize.of_string (Serialize.to_string g) in
      Alcotest.(check bool) (name ^ " round trip") true (same_dag g g'))
    [
      ("diamond", Generate.diamond ());
      ("map_reduce", Generate.map_reduce ~n:9 ~leaf_work:3 ~latency:7);
      ("server", Generate.server ~n:5 ~f_work:2 ~latency:4);
      ("burst", Generate.resume_burst ~n:6 ~leaf_work:2 ~latency:5);
      ("single latency", Generate.single_latency ~delta:9);
    ]

let test_format_shape () =
  let s = Serialize.to_string (Generate.single_latency ~delta:9) in
  Alcotest.(check bool) "header" true (Astring.String.is_prefix ~affix:"dag 2" s);
  Alcotest.(check bool) "edge line" true (Astring.String.is_infix ~affix:"e 0 1 9" s)

let test_labels_with_spaces () =
  let b = Dag.Builder.create () in
  let v0 = Dag.Builder.add_vertex ~label:"get input now" b in
  let v1 = Dag.Builder.add_vertex b in
  Dag.Builder.add_edge b v0 v1;
  let g = Dag.Builder.build b in
  let g' = Serialize.of_string (Serialize.to_string g) in
  Alcotest.(check string) "label preserved" "get input now" (Dag.label g' 0)

let test_comments_and_blanks () =
  let g =
    Serialize.of_string "# a comment\n\ndag 3\n# another\ne 0 1 1\ne 1 2 5\n"
  in
  Alcotest.(check int) "vertices" 3 (Dag.num_vertices g);
  Alcotest.(check int) "heavy edges" 1 (List.length (Dag.heavy_edges g))

let malformed =
  [
    ("no header", "e 0 1 1\n");
    ("bad count", "dag x\n");
    ("zero count", "dag 0\n");
    ("bad edge", "dag 2\ne 0 one 1\n");
    ("out of range", "dag 2\ne 0 5 1\n");
    ("bad weight", "dag 2\ne 0 1 0\n");
    ("junk line", "dag 2\nnonsense here extra\n");
    ("cycle", "dag 2\ne 0 1 1\ne 1 0 1\n");
  ]

let test_malformed_rejected () =
  List.iter
    (fun (name, text) ->
      match Serialize.of_string text with
      | _ -> Alcotest.fail ("expected failure: " ^ name)
      | exception Invalid_argument _ -> ())
    malformed

let test_save_load () =
  let g = Generate.map_reduce ~n:4 ~leaf_work:2 ~latency:6 in
  let path = Filename.temp_file "lhws_dag" ".txt" in
  Serialize.save path g;
  let g' = Serialize.load path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (same_dag g g')

let prop_round_trip =
  QCheck.Test.make ~name:"random dags round trip" ~count:60 QCheck.small_int (fun seed ->
      let g =
        Generate.random_fork_join ~seed ~size_hint:60 ~latency_prob:0.3 ~max_latency:9
      in
      same_dag g (Serialize.of_string (Serialize.to_string g)))

let () =
  Alcotest.run "serialize"
    [
      ( "format",
        [
          Alcotest.test_case "round trip generators" `Quick test_round_trip_generators;
          Alcotest.test_case "format shape" `Quick test_format_shape;
          Alcotest.test_case "labels with spaces" `Quick test_labels_with_spaces;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_round_trip ]);
    ]
