open Lhws_runtime
module Pool = Threaded_pool

let test_run_returns () =
  Pool.with_pool (fun p -> Alcotest.(check int) "value" 7 (Pool.run p (fun () -> 7)))

let test_fork2 () =
  Pool.with_pool (fun p ->
      let a, b = Pool.run p (fun () -> Pool.fork2 p (fun () -> 10) (fun () -> 20)) in
      Alcotest.(check (pair int int)) "results" (10, 20) (a, b))

let test_async_await () =
  Pool.with_pool (fun p ->
      let pr = Pool.async p (fun () -> 6 * 7) in
      Alcotest.(check int) "await" 42 (Pool.await p pr))

let test_exceptions () =
  Pool.with_pool (fun p ->
      let pr = Pool.async p (fun () -> failwith "thread boom") in
      Alcotest.check_raises "propagates" (Failure "thread boom") (fun () ->
          ignore (Pool.await p pr)))

let test_map_reduce () =
  Pool.with_pool (fun p ->
      let sum =
        Pool.parallel_map_reduce p ~grain:8 ~lo:1 ~hi:101 ~map:Fun.id ~combine:( + ) ~id:0
      in
      Alcotest.(check int) "gauss" 5050 sum)

let test_parallel_for () =
  Pool.with_pool (fun p ->
      let n = 200 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.parallel_for p ~grain:16 ~lo:0 ~hi:n (fun i -> Atomic.incr hits.(i));
      Array.iter (fun h -> Alcotest.(check int) "once" 1 (Atomic.get h)) hits)

let test_latency_hidden_by_threads () =
  (* Thread-per-task also hides latency — just with OS threads. *)
  Pool.with_pool (fun p ->
      let t0 = Unix.gettimeofday () in
      let sum =
        Pool.parallel_map_reduce p ~grain:1 ~lo:0 ~hi:8
          ~map:(fun i ->
            Pool.sleep p 0.05;
            i)
          ~combine:( + ) ~id:0
      in
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check int) "sum" 28 sum;
      Alcotest.(check bool) "overlapped" true (dt < 0.2))

let test_thread_accounting () =
  Pool.with_pool (fun p ->
      ignore (Pool.parallel_map_reduce p ~grain:1 ~lo:0 ~hi:16 ~map:Fun.id ~combine:( + ) ~id:0);
      Alcotest.(check bool) "spawned >= 15" true (Pool.threads_spawned p >= 15);
      Alcotest.(check bool) "peak recorded" true (Pool.peak_threads p >= 1))

let test_max_threads_enforced () =
  Pool.with_pool ~max_threads:4 (fun p ->
      (* 32 sleeping tasks through a 4-thread pool: must still complete,
         and the peak must respect the cap. *)
      let promises = List.init 32 (fun i -> Pool.async p (fun () -> Pool.sleep p 0.002; i)) in
      let total = List.fold_left (fun acc pr -> acc + Pool.await p pr) 0 promises in
      Alcotest.(check int) "sum" (32 * 31 / 2) total;
      Alcotest.(check bool) "peak <= cap" true (Pool.peak_threads p <= 4))

let test_invalid () =
  match Pool.create ~max_threads:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "threaded_pool"
    [
      ( "basics",
        [
          Alcotest.test_case "run returns" `Quick test_run_returns;
          Alcotest.test_case "fork2" `Quick test_fork2;
          Alcotest.test_case "async/await" `Quick test_async_await;
          Alcotest.test_case "exceptions" `Quick test_exceptions;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "invalid" `Quick test_invalid;
        ] );
      ( "threads",
        [
          Alcotest.test_case "latency hidden" `Quick test_latency_hidden_by_threads;
          Alcotest.test_case "accounting" `Quick test_thread_accounting;
          Alcotest.test_case "max threads" `Quick test_max_threads_enforced;
        ] );
    ]
