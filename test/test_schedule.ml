module Dag = Lhws_dag.Dag
module Generate = Lhws_dag.Generate
open Lhws_core

(* Build traces by hand to exercise the checker. *)

let test_valid_sequential () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  List.iteri (fun i v -> Trace.record_exec tr ~round:i ~worker:0 v) [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "valid" true (Schedule.valid g tr);
  Alcotest.(check int) "length" 4 (Schedule.length tr)

let test_valid_parallel () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  Trace.record_exec tr ~round:0 ~worker:0 0;
  Trace.record_exec tr ~round:1 ~worker:0 1;
  Trace.record_exec tr ~round:1 ~worker:1 2;
  Trace.record_exec tr ~round:2 ~worker:0 3;
  Alcotest.(check bool) "valid" true (Schedule.valid g tr);
  Alcotest.(check int) "length" 3 (Schedule.length tr)

let problem_names g tr =
  List.map
    (function
      | Schedule.Not_executed _ -> "missing"
      | Schedule.Executed_too_early _ -> "early"
      | Schedule.Worker_conflict _ -> "conflict")
    (Schedule.problems g tr)

let test_missing_vertex () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  Trace.record_exec tr ~round:0 ~worker:0 0;
  Alcotest.(check bool) "missing flagged" true (List.mem "missing" (problem_names g tr))

let test_dependency_violation () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  Trace.record_exec tr ~round:0 ~worker:0 0;
  Trace.record_exec tr ~round:0 ~worker:1 1 (* same round as its parent *);
  Trace.record_exec tr ~round:1 ~worker:1 2;
  Trace.record_exec tr ~round:2 ~worker:0 3;
  Alcotest.(check bool) "early flagged" true (List.mem "early" (problem_names g tr))

let test_latency_violation () =
  let g = Generate.single_latency ~delta:10 in
  let tr = Trace.create g in
  Trace.record_exec tr ~round:0 ~worker:0 (Dag.root g);
  Trace.record_exec tr ~round:5 ~worker:0 (Dag.final g) (* before latency expires *);
  Alcotest.(check bool) "early flagged" true (List.mem "early" (problem_names g tr));
  (* at exactly round 10 it is legal *)
  let tr2 = Trace.create g in
  Trace.record_exec tr2 ~round:0 ~worker:0 (Dag.root g);
  Trace.record_exec tr2 ~round:10 ~worker:0 (Dag.final g);
  Alcotest.(check bool) "valid at delta" true (Schedule.valid g tr2)

let test_worker_conflict () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  Trace.record_exec tr ~round:0 ~worker:0 0;
  Trace.record_exec tr ~round:1 ~worker:0 1;
  Trace.record_exec tr ~round:1 ~worker:0 2 (* same worker, same round *);
  Trace.record_exec tr ~round:2 ~worker:0 3;
  Alcotest.(check bool) "conflict flagged" true (List.mem "conflict" (problem_names g tr))

let test_pfor_conflicts_counted () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  Trace.record_exec tr ~round:0 ~worker:0 0;
  Trace.record_pfor_exec tr ~round:0 ~worker:0;
  Alcotest.(check bool) "pfor conflict flagged" true (List.mem "conflict" (problem_names g tr))

let test_check_exn () =
  let g = Generate.diamond () in
  let tr = Trace.create g in
  match Schedule.check_exn g tr with
  | () -> Alcotest.fail "expected failure on empty trace"
  | exception Invalid_argument _ -> ()

let test_pp_problem () =
  let s = Format.asprintf "%a" Schedule.pp_problem (Schedule.Not_executed 5) in
  Alcotest.(check bool) "mentions vertex" true (Astring.String.is_infix ~affix:"5" s)

let () =
  Alcotest.run "schedule"
    [
      ( "checker",
        [
          Alcotest.test_case "valid sequential" `Quick test_valid_sequential;
          Alcotest.test_case "valid parallel" `Quick test_valid_parallel;
          Alcotest.test_case "missing vertex" `Quick test_missing_vertex;
          Alcotest.test_case "dependency violation" `Quick test_dependency_violation;
          Alcotest.test_case "latency violation" `Quick test_latency_violation;
          Alcotest.test_case "worker conflict" `Quick test_worker_conflict;
          Alcotest.test_case "pfor conflict" `Quick test_pfor_conflicts_counted;
          Alcotest.test_case "check_exn" `Quick test_check_exn;
          Alcotest.test_case "pp" `Quick test_pp_problem;
        ] );
    ]
