module Deque = Lhws_deque.Deque

let check = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))

let test_empty () =
  let d : int Deque.t = Deque.create () in
  Alcotest.(check bool) "is_empty" true (Deque.is_empty d);
  check "length" 0 (Deque.length d);
  check_opt "pop_bottom" None (Deque.pop_bottom d);
  check_opt "pop_top" None (Deque.pop_top d);
  check_opt "peek_top" None (Deque.peek_top d);
  check_opt "peek_bottom" None (Deque.peek_bottom d)

let test_lifo_bottom () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3 ];
  check_opt "pop 3" (Some 3) (Deque.pop_bottom d);
  check_opt "pop 2" (Some 2) (Deque.pop_bottom d);
  check_opt "pop 1" (Some 1) (Deque.pop_bottom d);
  check_opt "empty" None (Deque.pop_bottom d)

let test_fifo_top () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3 ];
  check_opt "steal 1" (Some 1) (Deque.pop_top d);
  check_opt "steal 2" (Some 2) (Deque.pop_top d);
  check_opt "steal 3" (Some 3) (Deque.pop_top d)

let test_mixed_ends () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3; 4 ];
  check_opt "top" (Some 1) (Deque.pop_top d);
  check_opt "bottom" (Some 4) (Deque.pop_bottom d);
  check_opt "top" (Some 2) (Deque.pop_top d);
  check_opt "bottom" (Some 3) (Deque.pop_bottom d);
  Alcotest.(check bool) "empty" true (Deque.is_empty d)

let test_peek () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 7; 8 ];
  check_opt "peek_top" (Some 7) (Deque.peek_top d);
  check_opt "peek_bottom" (Some 8) (Deque.peek_bottom d);
  check "length unchanged" 2 (Deque.length d)

let test_growth () =
  let d = Deque.create ~capacity:2 () in
  for i = 1 to 1000 do
    Deque.push_bottom d i
  done;
  check "length" 1000 (Deque.length d);
  check_opt "top is oldest" (Some 1) (Deque.pop_top d);
  check_opt "bottom is newest" (Some 1000) (Deque.pop_bottom d)

let test_growth_after_wraparound () =
  let d = Deque.create ~capacity:4 () in
  (* Advance top and bottom so the live range wraps the buffer. *)
  for i = 1 to 3 do
    Deque.push_bottom d i
  done;
  ignore (Deque.pop_top d);
  ignore (Deque.pop_top d);
  for i = 4 to 20 do
    Deque.push_bottom d i
  done;
  (* 3 pushed - 2 stolen + 17 pushed *)
  check "length" 18 (Deque.length d);
  check_opt "top" (Some 3) (Deque.pop_top d)

let test_clear () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3 ];
  Deque.clear d;
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  Deque.push_bottom d 9;
  check_opt "usable after clear" (Some 9) (Deque.pop_bottom d)

let test_to_list_of_list () =
  let xs = [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "round trip" xs (Deque.to_list (Deque.of_list xs))

(* Model-based property: a random sequence of operations matches a list
   model (front of list = top of deque). *)
let ops_gen = QCheck.(list (int_bound 3))

let prop_model =
  QCheck.Test.make ~name:"matches list model" ~count:500 ops_gen (fun ops ->
      let d = Deque.create ~capacity:1 () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Deque.push_bottom d !counter;
              model := !model @ [ !counter ];
              true
          | 1 -> (
              let got = Deque.pop_bottom d in
              match List.rev !model with
              | [] -> got = None
              | last :: rest ->
                  model := List.rev rest;
                  got = Some last)
          | 2 -> (
              let got = Deque.pop_top d in
              match !model with
              | [] -> got = None
              | first :: rest ->
                  model := rest;
                  got = Some first)
          | _ ->
              Deque.length d = List.length !model
              && Deque.peek_top d = (match !model with [] -> None | x :: _ -> Some x))
        ops)

let () =
  Alcotest.run "deque"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "LIFO bottom" `Quick test_lifo_bottom;
          Alcotest.test_case "FIFO top" `Quick test_fifo_top;
          Alcotest.test_case "mixed ends" `Quick test_mixed_ends;
          Alcotest.test_case "peek" `Quick test_peek;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "growth after wraparound" `Quick test_growth_after_wraparound;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "to_list/of_list" `Quick test_to_list_of_list;
        ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_model ]);
    ]
