(* Baseline-specific behaviour only: blocking sleeps and the shared-core
   shutdown discipline.  Everything a pool must satisfy regardless of
   policy lives in test_pool_conformance.ml. *)

open Lhws_runtime
module Pool = Ws_pool

let test_sleep_blocks () =
  (* The baseline semantics: k sleeps of d seconds on one worker take
     ~k * d, because the worker blocks for each. *)
  Pool.with_pool ~workers:1 (fun p ->
      let k = 5 and d = 0.02 in
      let t0 = Unix.gettimeofday () in
      Pool.run p (fun () -> Pool.parallel_for p ~lo:0 ~hi:k (fun _ -> Pool.sleep p d));
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "%.3fs ~ k*d" dt)
        true
        (dt >= float_of_int k *. d *. 0.9))

let test_steals_counted () =
  Pool.with_pool ~workers:2 (fun p ->
      let v =
        Pool.run p (fun () ->
            let pr = Pool.async p (fun () -> 42) in
            (* Block this worker well past the idle backoff: the only way
               the async task can run is a steal by the other worker. *)
            Pool.sleep p 0.2;
            Pool.await p pr)
      in
      Alcotest.(check int) "stolen task ran" 42 v;
      let st = Pool.stats p in
      Alcotest.(check bool) "at least one steal" true (st.Pool.steals >= 1))

let test_degenerate_stats () =
  (* The unified stats record: the single-deque baseline pins the
     multi-deque counters at their degenerate values. *)
  Pool.with_pool ~workers:3 (fun p ->
      ignore (Pool.run p (fun () -> Pool.parallel_for p ~lo:0 ~hi:50 ignore));
      let st = Pool.stats p in
      Alcotest.(check int) "deques = workers" 3 st.Pool.deques_allocated;
      Alcotest.(check int) "one deque per worker" 1 st.Pool.max_deques_per_worker;
      Alcotest.(check int) "no suspensions" 0 st.Pool.suspensions;
      Alcotest.(check int) "no resumes" 0 st.Pool.resumes)

let test_blocked_event_traced () =
  Pool.with_pool ~workers:1 (fun p ->
      let tr = Tracing.create ~workers:1 () in
      Pool.set_tracer p tr;
      Pool.run p (fun () -> Pool.sleep p 0.01);
      let blocked =
        List.filter (fun (e : Tracing.event) -> e.Tracing.kind = Tracing.Blocked)
          (Tracing.events tr)
      in
      match blocked with
      | [] -> Alcotest.fail "no Blocked event recorded"
      | e :: _ ->
          Alcotest.(check bool)
            (Printf.sprintf "duration %.0fus ~ sleep" e.Tracing.dur_us)
            true
            (e.Tracing.dur_us >= 9_000.))

let test_run_after_shutdown_raises () =
  let p = Pool.create ~workers:2 () in
  Pool.shutdown p;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Ws_pool.run: pool is shut down") (fun () ->
      ignore (Pool.run p (fun () -> 0)))

let () =
  Alcotest.run "ws_pool"
    [
      ( "blocking",
        [
          Alcotest.test_case "sleep blocks" `Quick test_sleep_blocks;
          Alcotest.test_case "steals counted" `Quick test_steals_counted;
          Alcotest.test_case "degenerate stats" `Quick test_degenerate_stats;
          Alcotest.test_case "blocked event traced" `Quick test_blocked_event_traced;
          Alcotest.test_case "run after shutdown raises" `Quick test_run_after_shutdown_raises;
        ] );
    ]
