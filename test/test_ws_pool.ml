open Lhws_runtime
module Pool = Ws_pool

let test_run_returns () =
  Pool.with_pool ~workers:1 (fun p ->
      Alcotest.(check int) "value" 7 (Pool.run p (fun () -> 7)))

let test_run_reusable () =
  Pool.with_pool ~workers:2 (fun p ->
      Alcotest.(check int) "first" 1 (Pool.run p (fun () -> 1));
      Alcotest.(check int) "second" 2 (Pool.run p (fun () -> 2)))

let test_run_exception () =
  Pool.with_pool ~workers:1 (fun p ->
      Alcotest.check_raises "raises" (Failure "root") (fun () ->
          Pool.run p (fun () -> failwith "root")))

let test_fork2 () =
  Pool.with_pool ~workers:2 (fun p ->
      let a, b = Pool.run p (fun () -> Pool.fork2 p (fun () -> 10) (fun () -> 20)) in
      Alcotest.(check (pair int int)) "results" (10, 20) (a, b))

let test_await_exception () =
  Pool.with_pool ~workers:2 (fun p ->
      Alcotest.check_raises "child exn" (Failure "child") (fun () ->
          Pool.run p (fun () -> Pool.await p (Pool.async p (fun () -> failwith "child")))))

let test_nested_fib () =
  Pool.with_pool ~workers:2 (fun p ->
      let rec fib n =
        if n < 2 then n
        else
          let a, b = Pool.fork2 p (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
          a + b
      in
      Alcotest.(check int) "fib 16" 987 (Pool.run p (fun () -> fib 16)))

let test_parallel_for_covers_range () =
  Pool.with_pool ~workers:3 (fun p ->
      let n = 300 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Pool.run p (fun () -> Pool.parallel_for p ~lo:0 ~hi:n (fun i -> Atomic.incr hits.(i)));
      Array.iteri
        (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d once" i) 1 (Atomic.get h))
        hits)

let test_parallel_map_reduce () =
  Pool.with_pool ~workers:2 (fun p ->
      let sum =
        Pool.run p (fun () ->
            Pool.parallel_map_reduce p ~lo:1 ~hi:101 ~map:Fun.id ~combine:( + ) ~id:0)
      in
      Alcotest.(check int) "gauss" 5050 sum)

let test_sleep_blocks () =
  (* The baseline semantics: k sleeps of d seconds on one worker take
     ~k * d, because the worker blocks for each. *)
  Pool.with_pool ~workers:1 (fun p ->
      let k = 5 and d = 0.02 in
      let t0 = Unix.gettimeofday () in
      Pool.run p (fun () -> Pool.parallel_for p ~lo:0 ~hi:k (fun _ -> Pool.sleep p d));
      let dt = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "%.3fs ~ k*d" dt)
        true
        (dt >= float_of_int k *. d *. 0.9))

let test_steals_counted () =
  Pool.with_pool ~workers:2 (fun p ->
      let _ =
        Pool.run p (fun () ->
            Pool.parallel_map_reduce p ~lo:0 ~hi:200
              ~map:(fun i ->
                (* enough per-task work that the second worker joins in *)
                let rec burn k acc = if k = 0 then acc else burn (k - 1) (acc + i) in
                burn 2000 0)
              ~combine:( + ) ~id:0)
      in
      let st = Pool.stats p in
      Alcotest.(check bool) "stats accessible" true (st.Pool.steals >= 0))

let test_invalid_workers () =
  match Pool.create ~workers:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "ws_pool"
    [
      ( "basics",
        [
          Alcotest.test_case "run returns" `Quick test_run_returns;
          Alcotest.test_case "run reusable" `Quick test_run_reusable;
          Alcotest.test_case "run exception" `Quick test_run_exception;
          Alcotest.test_case "fork2" `Quick test_fork2;
          Alcotest.test_case "await exception" `Quick test_await_exception;
          Alcotest.test_case "nested fib" `Quick test_nested_fib;
          Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_covers_range;
          Alcotest.test_case "map_reduce" `Quick test_parallel_map_reduce;
          Alcotest.test_case "invalid workers" `Quick test_invalid_workers;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "sleep blocks" `Quick test_sleep_blocks;
          Alcotest.test_case "steals counted" `Quick test_steals_counted;
        ] );
    ]
