(* Smoke-level benchmark regression guard.

   Compares a fresh BENCH_results.json against a committed baseline taken
   with the same profile and fails (exit 1) when a guarded sample degrades
   more than the threshold:

   - every baseline sample with a [speedup] field but no [wall_s] (the
     figure11* sweeps are deterministic simulator runs, so these are
     noise-free): fail when the current speedup drops below
     baseline / 1.25;
   - baseline samples with both [speedup] and [wall_s] (wall-clock
     self-speedups, e.g. the net_map_reduce loopback runs): the same rule
     with a 4x threshold, since both sides of the ratio are real
     milliseconds-scale timings on a shared runner;
   - resume-storm samples ([contention_resume_storm]): fail when the
     current wall exceeds baseline * 1.25 plus a 25 ms absolute grace, so
     tiny walls on a shared CI runner don't flake the guard;
   - net_echo* and http_* samples carrying a [p99_us] counter: fail when
     the current p99 exceeds baseline * 2 plus a 2 ms absolute grace —
     the "batched reactor must not trade tail latency for syscall count"
     check, with margins sized for loopback timings on a shared runner;
   - http_* samples carrying a [throughput_rps] counter: fail when the
     current req/s drops below baseline * 0.8 — the serving-layer
     regression pin for the keep-alive and mixed-topology legs;
   - http_* samples from an age-fair pool (pool name contains "aged")
     carrying both [p99_us] and [mean_us]: fail when the CURRENT run's
     p99 exceeds 3x its own mean plus a 30 ms absolute grace — the
     starvation pin: under Aged_fifo resume fairness the tail must stay
     a bounded multiple of the mean, regardless of what the baseline
     recorded.

   Other wall-clock samples are reported but not guarded: at smoke sizes
   they are milliseconds and dominated by machine noise.

   Usage: bench_guard CURRENT.json BASELINE.json

   The parser below handles exactly the flat schema Bench_json emits (an
   array of objects with string/number fields and one nested counters
   object) — the repo takes no JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code = int_of_string ("0x" ^ hex) in
               (* the schema only escapes control chars, all < 0x80 *)
               Buffer.add_char buf (Char.chr (code land 0x7f));
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- samples --- *)

type sample = {
  scenario : string;
  pool : string;
  workers : int;
  wall_s : float option;
  speedup : float option;
  p99_us : float option;  (* from the nested counters object, when present *)
  throughput_rps : float option;  (* likewise *)
  mean_us : float option;  (* likewise *)
}

let field k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let as_num = function Some (Num f) -> Some f | _ -> None
let as_str = function Some (Str s) -> Some s | _ -> None

let samples_of_file path =
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      (* [msg] already names the path, e.g. "foo.json: No such file ..." *)
      Printf.eprintf "bench_guard: cannot read input: %s\n" msg;
      exit 2
  in
  match parse text with
  | Arr items ->
      List.filter_map
        (fun item ->
          match (as_str (field "scenario" item), as_str (field "pool" item)) with
          | Some scenario, Some pool ->
              Some
                {
                  scenario;
                  pool;
                  workers =
                    (match as_num (field "workers" item) with
                    | Some w -> int_of_float w
                    | None -> 0);
                  wall_s = as_num (field "wall_s" item);
                  speedup = as_num (field "speedup" item);
                  p99_us =
                    (match field "counters" item with
                    | Some counters -> as_num (field "p99_us" counters)
                    | None -> None);
                  throughput_rps =
                    (match field "counters" item with
                    | Some counters -> as_num (field "throughput_rps" counters)
                    | None -> None);
                  mean_us =
                    (match field "counters" item with
                    | Some counters -> as_num (field "mean_us" counters)
                    | None -> None);
                }
          | _ -> None)
        items
  | _ -> failwith (path ^ ": expected a JSON array of samples")

let find samples s =
  List.find_opt
    (fun c -> c.scenario = s.scenario && c.pool = s.pool && c.workers = s.workers)
    samples

(* --- the guard --- *)

let threshold = 1.25
let wall_speedup_threshold = 4. (* both ratio legs are noisy wall-clock timings *)
let wall_grace_s = 0.025 (* absolute grace for tiny walls on noisy runners *)
let p99_threshold = 2.
let p99_grace_us = 2000. (* loopback p99s are hundreds of us; don't flake *)
let rps_floor = 0.8 (* http_* req/s must stay within 20% of baseline *)
let fairness_ratio = 3. (* age-fair legs: p99 must stay <= 3x own mean... *)
let fairness_grace_us = 30_000. (* ...plus the smoke-size connect transient *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let () =
  let current_path, baseline_path =
    match Sys.argv with
    | [| _; c; b |] -> (c, b)
    | _ ->
        prerr_endline "usage: bench_guard CURRENT.json BASELINE.json";
        exit 2
  in
  let current = samples_of_file current_path in
  let baseline = samples_of_file baseline_path in
  let failures = ref 0 in
  let checked = ref 0 in
  let report verdict b detail =
    Printf.printf "%-6s %-32s %-8s w=%-2d  %s\n" verdict b.scenario b.pool b.workers detail
  in
  List.iter
    (fun b ->
      match find current b with
      | None -> report "SKIP" b "no matching sample in current run"
      | Some c ->
          (match (b.throughput_rps, c.throughput_rps) with
          | Some br, Some cr when has_prefix "http_" b.scenario ->
              incr checked;
              let floor = br *. rps_floor in
              if cr < floor then begin
                incr failures;
                report "FAIL" b
                  (Printf.sprintf "throughput %.0f req/s < %.0f (baseline %.0f * %.2f)"
                     cr floor br rps_floor)
              end
              else
                report "ok" b
                  (Printf.sprintf "throughput %.0f req/s (baseline %.0f)" cr br)
          | _ -> ());
          (match (b.p99_us, c.p99_us) with
          | Some bp, Some cp
            when has_prefix "net_echo" b.scenario || has_prefix "http_" b.scenario ->
              incr checked;
              let limit = (bp *. p99_threshold) +. p99_grace_us in
              if cp > limit then begin
                incr failures;
                report "FAIL" b
                  (Printf.sprintf "p99 %.0fus > %.0fus (baseline %.0fus * %.1f + %.0f)" cp
                     limit bp p99_threshold p99_grace_us)
              end
              else report "ok" b (Printf.sprintf "p99 %.0fus (baseline %.0fus)" cp bp)
          | _ -> ());
          (* Starvation pin: an age-fair leg's tail is judged against its
             own mean in the CURRENT run — the baseline only tells us the
             sample is expected to exist. *)
          (match (c.p99_us, c.mean_us) with
          | Some cp, Some cm
            when has_prefix "http_" b.scenario && contains_sub "aged" b.pool ->
              incr checked;
              let limit = (cm *. fairness_ratio) +. fairness_grace_us in
              if cp > limit then begin
                incr failures;
                report "FAIL" b
                  (Printf.sprintf
                     "fairness: p99 %.0fus > %.0fus (own mean %.0fus * %.1f + %.0f)" cp
                     limit cm fairness_ratio fairness_grace_us)
              end
              else
                report "ok" b
                  (Printf.sprintf "fairness: p99 %.0fus <= %.1fx mean %.0fus + grace" cp
                     fairness_ratio cm)
          | _ -> ());
          (match (b.speedup, c.speedup) with
          | Some bs, Some cs ->
              incr checked;
              let th = if b.wall_s = None then threshold else wall_speedup_threshold in
              let floor = bs /. th in
              if cs < floor then begin
                incr failures;
                report "FAIL" b
                  (Printf.sprintf "speedup %.3f < baseline %.3f / %.2f" cs bs th)
              end
              else report "ok" b (Printf.sprintf "speedup %.3f (baseline %.3f)" cs bs)
          | _ -> (
              if has_prefix "contention_resume_storm" b.scenario then
                match (b.wall_s, c.wall_s) with
                | Some bw, Some cw ->
                    incr checked;
                    let limit = (bw *. threshold) +. wall_grace_s in
                    if cw > limit then begin
                      incr failures;
                      report "FAIL" b
                        (Printf.sprintf "wall %.4fs > %.4fs (baseline %.4fs * %.2f + %.3f)"
                           cw limit bw threshold wall_grace_s)
                    end
                    else report "ok" b (Printf.sprintf "wall %.4fs (baseline %.4fs)" cw bw)
                | _ -> report "SKIP" b "no wall_s field")))
    baseline;
  Printf.printf "\nbench guard: %d samples checked against %s, %d failure(s)\n" !checked
    baseline_path !failures;
  if !failures > 0 then exit 1
