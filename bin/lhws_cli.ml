(* Command-line driver: simulate, sweep, bound-check, export and run the
   latency-hiding work-stealing schedulers on the built-in workloads. *)

open Cmdliner
module Dag = Lhws_dag.Dag
module Generate = Lhws_dag.Generate
module Metrics = Lhws_dag.Metrics
module Suspension = Lhws_dag.Suspension
module Dot = Lhws_dag.Dot
open Lhws_core

(* --- workload construction --- *)

let build_workload ?from_file ~workload ~n ~leaf_work ~latency ~seed () =
  match from_file with
  | Some path ->
      let g = Lhws_dag.Serialize.load path in
      Lhws_dag.Check.check_exn g;
      g
  | None ->
  match workload with
  | "mapreduce" -> Generate.map_reduce ~n ~leaf_work ~latency
  | "server" -> Generate.server ~n ~f_work:leaf_work ~latency
  | "fib" -> Generate.fib ~leaf_work ~n ()
  | "chains" -> Generate.parallel_chains ~k:n ~len:leaf_work
  | "pipeline" -> Generate.pipeline ~stages:leaf_work ~items:n ~latency
  | "chain" -> Generate.chain ~latency_every:leaf_work ~latency ~n ()
  | "random" ->
      Generate.random_fork_join ~seed ~size_hint:n ~latency_prob:0.15 ~max_latency:latency
  | "burst" -> Generate.resume_burst ~n ~leaf_work ~latency
  | "sort" -> Lhws_workloads.Sort.dag ~n_chunks:n ~chunk_work:leaf_work ~latency
  | w -> invalid_arg (Printf.sprintf "unknown workload %S" w)

let workload_arg =
  let doc =
    "Workload: mapreduce (Fig. 8), server (Fig. 10), fib, chains, pipeline, chain, random, \
     burst, sort."
  in
  Arg.(value & opt string "mapreduce" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let n_arg = Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Problem size (items/leaves).")

let leaf_work_arg =
  Arg.(
    value & opt int 50
    & info [ "leaf-work" ] ~docv:"K" ~doc:"Per-item computation, in simulator rounds.")

let latency_arg =
  Arg.(
    value & opt int 500
    & info [ "d"; "latency" ] ~docv:"DELTA" ~doc:"Latency per operation, in simulator rounds.")

let p_arg = Arg.(value & opt int 4 & info [ "p" ] ~docv:"P" ~doc:"Number of workers.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let algo_arg =
  let doc = "Scheduler: lhws (latency-hiding), ws (blocking baseline), greedy (offline)." in
  Arg.(value & opt string "lhws" & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let steal_policy_arg =
  let doc = "Steal policy: deque (analyzed: random global deque) or worker (Section 6)." in
  Arg.(value & opt string "deque" & info [ "steal" ] ~docv:"POLICY" ~doc)

let steal_mode_arg =
  let doc = "Steal mode: one (one task per steal) or half (batch the oldest half)." in
  Arg.(value & opt string "one" & info [ "steal-mode" ] ~docv:"MODE" ~doc)

let steal_latency_arg =
  let doc = "Rounds a successful steal stalls the thief before it can run the loot." in
  Arg.(value & opt int 0 & info [ "steal-latency" ] ~docv:"ROUNDS" ~doc)

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Record and validate the schedule.")

let no_ff_arg =
  Arg.(value & flag & info [ "no-fast-forward" ] ~doc:"Simulate idle stretches round by round.")

let from_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "from" ] ~docv:"FILE"
        ~doc:"Load the dag from a file (Serialize format) instead of generating a workload.")

let resume_policy_arg =
  let doc = "Resumed-batch injection: pfor (balanced tree, the paper) or linear (chain)." in
  Arg.(value & opt string "pfor" & info [ "resume" ] ~docv:"POLICY" ~doc)

let resume_target_arg =
  let doc = "Where resumed batches go: orig (the paper) or fresh (new deque per resume)." in
  Arg.(value & opt string "orig" & info [ "resume-target" ] ~docv:"TARGET" ~doc)

let config_of ?(resume = "pfor") ?(target = "orig") ?(steal_mode = "one") ?(steal_latency = 0)
    ~seed ~steal ~trace ~no_ff () =
  if steal_latency < 0 then invalid_arg "steal-latency must be >= 0";
  {
    Config.default with
    seed;
    trace;
    fast_forward = not no_ff;
    steal_latency;
    steal_mode =
      (match steal_mode with
      | "one" -> Config.Steal_one
      | "half" -> Config.Steal_half
      | s -> invalid_arg (Printf.sprintf "unknown steal mode %S" s));
    steal_policy =
      (match steal with
      | "deque" -> Config.Steal_global_deque
      | "worker" -> Config.Steal_worker_then_deque
      | s -> invalid_arg (Printf.sprintf "unknown steal policy %S" s));
    resume_policy =
      (match resume with
      | "pfor" -> Config.Resume_pfor_tree
      | "linear" -> Config.Resume_linear
      | s -> invalid_arg (Printf.sprintf "unknown resume policy %S" s));
    resume_target =
      (match target with
      | "orig" -> Config.Original_deque
      | "fresh" -> Config.Fresh_deque
      | s -> invalid_arg (Printf.sprintf "unknown resume target %S" s));
  }

let algo_of = function
  | "lhws" -> Sweep.Lhws
  | "ws" -> Sweep.Ws
  | "greedy" -> Sweep.Greedy
  | a -> invalid_arg (Printf.sprintf "unknown algorithm %S" a)

(* --- sim command --- *)

let sim workload n leaf_work latency p seed algo steal steal_mode steal_latency trace no_ff
    resume target from_file =
  let dag = build_workload ?from_file ~workload ~n ~leaf_work ~latency ~seed () in
  let config = config_of ~resume ~target ~steal_mode ~steal_latency ~seed ~steal ~trace ~no_ff () in
  let run = Sweep.run_algo (algo_of algo) ~config dag ~p in
  Format.printf "workload: %s  W=%d  S=%d  heavy=%d  P=%d  algo=%s@." workload (Metrics.work dag)
    (Metrics.span dag) (Metrics.num_heavy_edges dag) p algo;
  Format.printf "%a@." Stats.pp run.Run.stats;
  if trace then begin
    Schedule.check_exn dag (Run.trace_exn run);
    Format.printf "schedule: valid (%d vertices)@." (Metrics.work dag)
  end

let sim_cmd =
  let info = Cmd.info "sim" ~doc:"Simulate one scheduler on one workload and print statistics." in
  Cmd.v info
    Term.(
      const sim $ workload_arg $ n_arg $ leaf_work_arg $ latency_arg $ p_arg $ seed_arg
      $ algo_arg $ steal_policy_arg $ steal_mode_arg $ steal_latency_arg $ trace_arg $ no_ff_arg
      $ resume_policy_arg $ resume_target_arg $ from_file_arg)

(* --- sweep command --- *)

let ps_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8; 16; 24; 30 ]
    & info [ "ps" ] ~docv:"P,P,..." ~doc:"Worker counts for the sweep.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the sweep as CSV to this file.")

let sweep workload n leaf_work latency seed steal steal_mode steal_latency ps csv =
  let dag = build_workload ~workload ~n ~leaf_work ~latency ~seed () in
  let config = config_of ~steal_mode ~steal_latency ~seed ~steal ~trace:false ~no_ff:false () in
  Format.printf "workload: %s  W=%d  S=%d (speedups relative to WS at P=1)@." workload
    (Metrics.work dag) (Metrics.span dag);
  let series = Sweep.speedups ~config ~dag ~ps () in
  Format.printf "%a@." Sweep.pp_series series;
  match csv with
  | None -> ()
  | Some path ->
      Lhws_analysis.Report.write_file path (Lhws_analysis.Report.csv_of_series series);
      Format.printf "wrote %s@." path

let sweep_cmd =
  let info =
    Cmd.info "sweep" ~doc:"Speedup curves, LHWS vs WS across worker counts (Figure 11 style)."
  in
  Cmd.v info
    Term.(
      const sweep $ workload_arg $ n_arg $ leaf_work_arg $ latency_arg $ seed_arg
      $ steal_policy_arg $ steal_mode_arg $ steal_latency_arg $ ps_arg $ csv_arg)

(* --- bounds command --- *)

let bounds workload n leaf_work latency p seed =
  let dag = build_workload ~workload ~n ~leaf_work ~latency ~seed () in
  let u = Suspension.lower_bound_greedy dag in
  let config = { Config.analysis with seed } in
  let run = Lhws_sim.run ~config dag ~p in
  let open Lhws_analysis in
  let i = Bounds.instance ~suspension_width:u dag ~p run in
  let tr = Run.trace_exn run in
  Schedule.check_exn dag tr;
  let dr = Invariants.depth_report ~suspension_width:u dag tr in
  Format.printf "workload: %s  W=%d S=%d U>=%d P=%d@." workload i.Bounds.work i.Bounds.span u p;
  Format.printf "rounds: %d   Theorem 2 bound: %.0f   ratio: %.3f@." run.Run.rounds
    (Bounds.lhws_bound i) (Bounds.lhws_ratio i);
  Format.printf "Lemma 1 (accounting): %b@." (Bounds.lemma1_ok i);
  Format.printf "Lemma 7 (deques <= U+1): %b (max %d)@." (Bounds.lemma7_ok i)
    run.Run.stats.Stats.max_deques_per_worker;
  Format.printf "width (suspended <= U): %b (max %d)@." (Bounds.width_ok i)
    run.Run.stats.Stats.max_live_suspended;
  Format.printf "Corollary 1 (S* <= 2S(1+lgU)): %b@." (Bounds.corollary1_ok i);
  Format.printf "pfor work (W+Wpfor <= 2W): %b@." (Bounds.pfor_work_ok i);
  Format.printf "%a@." Invariants.pp_depth_report dr

let bounds_cmd =
  let info = Cmd.info "bounds" ~doc:"Check the paper's bounds on a traced LHWS run." in
  Cmd.v info
    Term.(const bounds $ workload_arg $ n_arg $ leaf_work_arg $ latency_arg $ p_arg $ seed_arg)

(* --- dot command --- *)

let out_arg =
  Arg.(value & opt string "dag.dot" & info [ "o" ] ~docv:"FILE" ~doc:"Output DOT file.")

let dot workload n leaf_work latency seed out =
  let dag = build_workload ~workload ~n ~leaf_work ~latency ~seed () in
  Dot.write_file out dag;
  Format.printf "wrote %s (%d vertices, %d heavy edges)@." out (Metrics.work dag)
    (Metrics.num_heavy_edges dag)

let dot_cmd =
  let info = Cmd.info "dot" ~doc:"Export a workload dag to Graphviz." in
  Cmd.v info Term.(const dot $ workload_arg $ n_arg $ leaf_work_arg $ latency_arg $ seed_arg $ out_arg)

(* --- rt command: real pools --- *)

let rt_latency_arg =
  Arg.(
    value & opt float 0.02
    & info [ "latency-s" ] ~docv:"SECONDS" ~doc:"Latency per operation, in seconds.")

let fib_arg =
  Arg.(value & opt int 20 & info [ "fib" ] ~docv:"N" ~doc:"Per-item fib computation.")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"W" ~doc:"Pool worker domains.")

let rt workload n rt_latency fib_n workers trace_out =
  let module W = Lhws_workloads.Pool_intf in
  let run_one (pool : W.pool) =
    let module P = (val pool : W.POOL) in
    let p = P.create ~workers () in
    Fun.protect
      ~finally:(fun () -> P.shutdown p)
      (fun () ->
        match workload with
        | "mapreduce" ->
            let r =
              Lhws_workloads.Map_reduce.run_on (module P) p ~n ~latency:rt_latency ~fib_n
            in
            (P.name, r.Lhws_workloads.Map_reduce.value, r.Lhws_workloads.Map_reduce.elapsed)
        | "server" ->
            let r = Lhws_workloads.Server.run_on (module P) p ~n ~latency:rt_latency ~fib_n in
            (P.name, r.Lhws_workloads.Server.value, r.Lhws_workloads.Server.elapsed)
        | "crawler" ->
            let web = Lhws_workloads.Crawler.make_web ~seed:42 ~pages:n ~max_links:4 in
            let r =
              Lhws_workloads.Crawler.crawl_on (module P) p web ~latency:rt_latency
                ~parse_work:fib_n
            in
            (P.name, r.Lhws_workloads.Crawler.checksum, r.Lhws_workloads.Crawler.elapsed)
        | w -> invalid_arg (Printf.sprintf "unknown runtime workload %S (want mapreduce|server|crawler)" w))
  in
  (* Optional Chrome trace of the latency-hiding run. *)
  (match trace_out with
  | None -> ()
  | Some path ->
      let open Lhws_runtime in
      Lhws_pool.with_pool ~workers (fun p ->
          let tr = Tracing.create ~workers () in
          Lhws_pool.set_tracer p tr;
          let v =
            Lhws_pool.run p (fun () ->
                Lhws_pool.parallel_map_reduce p ~lo:0 ~hi:n
                  ~map:(fun _ ->
                    Lhws_pool.sleep p rt_latency;
                    Lhws_workloads.Fib.seq fib_n)
                  ~combine:( + ) ~id:0)
          in
          ignore v;
          Tracing.write_chrome_json path tr;
          Format.printf "wrote %s (%d events, %d dropped)@." path
            (List.length (Tracing.events tr))
            (Tracing.dropped tr)));
  let results = List.map run_one [ W.lhws; W.ws ] in
  Format.printf "workload=%s n=%d latency=%.3fs fib=%d workers=%d@." workload n rt_latency fib_n
    workers;
  List.iter
    (fun (name, value, elapsed) -> Format.printf "%-5s value=%d time=%.3fs@." name value elapsed)
    results;
  match results with
  | [ (_, v1, t1); (_, v2, t2) ] ->
      if v1 <> v2 then Format.printf "WARNING: results differ!@.";
      Format.printf "latency hidden: %.2fx faster@." (t2 /. t1)
  | _ -> ()

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Also record a Chrome trace (chrome://tracing) of a latency-hiding map-reduce run.")

let rt_cmd =
  let info =
    Cmd.info "rt" ~doc:"Run a workload on the real effects-based pools (LHWS vs blocking WS)."
  in
  Cmd.v info
    Term.(const rt $ workload_arg $ n_arg $ rt_latency_arg $ fib_arg $ workers_arg
    $ trace_out_arg)

(* --- topology command: micropools --- *)

let spin_for seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    Domain.cpu_relax ()
  done

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let topology lat_workers batch_workers scavenge n_rpc n_batch handler_s batch_s =
  let module T = Lhws_workloads.Topology in
  (* One leg: submit [n_batch] long jobs, then trickle [n_rpc] short
     handlers behind them, all through [submit ~class_]; returns the
     sorted handler latencies (submit to completion) and final stats. *)
  let leg specs ~rpc_class ~batch_class =
    T.with_topology specs (fun t ->
        let lat = Array.make n_rpc 0. in
        let done_ = Atomic.make 0 in
        for _ = 1 to n_batch do
          T.submit t ~class_:batch_class (fun () -> spin_for batch_s)
        done;
        for i = 0 to n_rpc - 1 do
          let t0 = Unix.gettimeofday () in
          T.submit t ~class_:rpc_class (fun () ->
              spin_for handler_s;
              lat.(i) <- Unix.gettimeofday () -. t0;
              Atomic.incr done_);
          Unix.sleepf (handler_s *. 2.)
        done;
        let deadline =
          Unix.gettimeofday ()
          +. (4. *. ((float_of_int n_batch *. batch_s) +. (float_of_int n_rpc *. handler_s)))
          +. 5.
        in
        while Atomic.get done_ < n_rpc && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.002
        done;
        if Atomic.get done_ < n_rpc then failwith "topology leg timed out";
        Array.sort compare lat;
        (lat, T.stats t))
  in
  let print_leg label (lat, stats) =
    Format.printf "%-12s rpc p50=%6.2fms p99=%6.2fms@." label
      (1e3 *. percentile lat 0.50)
      (1e3 *. percentile lat 0.99);
    List.iter
      (fun (c, s) ->
        let open Lhws_runtime.Scheduler_core in
        Format.printf
          "  pool %-8s tasks_run=%-5d steals=%-4d scavenged=%-3d donated=%d@."
          (T.class_name c) s.tasks_run s.steals s.tasks_scavenged s.tasks_donated)
      stats
  in
  Format.printf
    "bimodal mix: %d handlers of %.1fms behind %d batch jobs of %.0fms@." n_rpc
    (1e3 *. handler_s) n_batch (1e3 *. batch_s);
  let shared =
    leg
      [ T.spec ~workers:(lat_workers + batch_workers) T.Latency ]
      ~rpc_class:T.Latency ~batch_class:T.Latency
  in
  print_leg "shared" shared;
  let split =
    leg
      [
        (if scavenge then T.spec ~workers:lat_workers ~scavenges:T.Batch T.Latency
         else T.spec ~workers:lat_workers T.Latency);
        T.spec ~workers:batch_workers T.Batch;
      ]
      ~rpc_class:T.Latency ~batch_class:T.Batch
  in
  print_leg (if scavenge then "split+scav" else "split") split;
  let p99 (lat, _) = percentile lat 0.99 in
  Format.printf "isolation: shared p99 / split p99 = %.2fx@." (p99 shared /. p99 split)

let lat_workers_arg =
  Arg.(
    value & opt int 1
    & info [ "latency-workers" ] ~docv:"W" ~doc:"Latency pool worker domains.")

let batch_workers_arg =
  Arg.(
    value & opt int 1
    & info [ "batch-workers" ] ~docv:"W" ~doc:"Batch pool worker domains.")

let scavenge_arg =
  Arg.(
    value & flag
    & info [ "scavenge" ]
        ~doc:"Let the latency pool raid the batch pool's fresh tasks when idle.")

let n_rpc_arg =
  Arg.(value & opt int 40 & info [ "rpc" ] ~docv:"N" ~doc:"Short handler tasks.")

let n_batch_arg =
  Arg.(value & opt int 12 & info [ "batch" ] ~docv:"N" ~doc:"Long batch jobs.")

let handler_s_arg =
  Arg.(
    value & opt float 0.001
    & info [ "handler-s" ] ~docv:"SECONDS" ~doc:"Work per handler task.")

let batch_s_arg =
  Arg.(
    value & opt float 0.05
    & info [ "batch-s" ] ~docv:"SECONDS" ~doc:"Work per batch job.")

let topology_cmd =
  let info =
    Cmd.info "topology"
      ~doc:
        "Micropools demo: a bimodal task mix on one shared pool vs a \
         latency/batch topology (optionally with scavenging), comparing \
         handler tail latency."
  in
  Cmd.v info
    Term.(
      const topology $ lat_workers_arg $ batch_workers_arg $ scavenge_arg
      $ n_rpc_arg $ n_batch_arg $ handler_s_arg $ batch_s_arg)

(* --- gantt command --- *)

let gantt workload n leaf_work latency p seed algo =
  let dag = build_workload ~workload ~n ~leaf_work ~latency ~seed () in
  let config = { (config_of ~seed ~steal:"deque" ~trace:true ~no_ff:true ()) with seed } in
  let run = Sweep.run_algo (algo_of algo) ~config dag ~p in
  print_string (Lhws_analysis.Gantt.render ~workers:p (Run.trace_exn run));
  Format.printf "rounds: %d@." run.Run.rounds

let gantt_cmd =
  let info =
    Cmd.info "gantt" ~doc:"Render a small traced schedule as an ASCII Gantt chart."
  in
  Cmd.v info
    Term.(
      const gantt $ workload_arg $ n_arg $ leaf_work_arg $ latency_arg $ p_arg $ seed_arg
      $ algo_arg)

(* --- main --- *)

let () =
  let info = Cmd.info "lhws" ~version:"1.0.0" ~doc:"Latency-hiding work stealing (SPAA 2016)." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ sim_cmd; sweep_cmd; bounds_cmd; dot_cmd; gantt_cmd; rt_cmd; topology_cmd ]))
