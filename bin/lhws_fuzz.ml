(* Differential fuzzing driver: random programs and dags, checked across
   the three Program semantics, both real pools, and the paper's bounds
   (Theorem 1, Lemmas 1/2/7, Corollary 1, deque order).  Failures print a
   seed that replays the exact case. *)

open Cmdliner
module Runner = Lhws_proptest.Runner
module Stress = Lhws_proptest.Stress

let count_arg =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Number of generated cases to check.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Base seed.  Case $(i,i) uses seed SEED + $(i,i); a failure report names its case \
           seed, and $(b,--count 1 --seed) $(i,that) replays it.")

let max_size_arg =
  Arg.(
    value & opt int 40
    & info [ "max-size" ] ~docv:"SIZE" ~doc:"Size budget for generated recipes.")

let ps_arg =
  Arg.(
    value & opt (list int) [ 1; 2; 4 ]
    & info [ "ps" ] ~docv:"P1,P2,..." ~doc:"Worker counts for the simulator sweeps.")

let pool_every_arg =
  Arg.(
    value & opt int 25
    & info [ "pool-every" ] ~docv:"N"
        ~doc:"Run the real-pool oracle on every N-th program case (0 disables pool checks).")

let pool_workers_arg =
  Arg.(
    value & opt int 3
    & info [ "pool-workers" ] ~docv:"P" ~doc:"Workers per real pool in pool-oracle runs.")

let stress_items_arg =
  Arg.(
    value & opt int 20_000
    & info [ "stress-items" ] ~docv:"N"
        ~doc:"Elements for the Chase-Lev owner-vs-thieves stress pass (0 disables it).")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress heartbeat, only the verdict.")

(* Validate up front so a bad flag is a usage error, not a crash deep in
   the simulator or a bogus "oracle failure". *)
let validate count max_size ps pool_every pool_workers =
  let err fmt = Printf.ksprintf (fun m -> Some (`Msg m)) fmt in
  if count < 0 then err "--count must be >= 0 (got %d)" count
  else if max_size < 1 then err "--max-size must be >= 1 (got %d)" max_size
  else if ps = [] then err "--ps must list at least one worker count"
  else
    match List.find_opt (fun p -> p < 1) ps with
    | Some p -> err "--ps: worker counts must be >= 1 (got %d)" p
    | None ->
        if pool_every < 0 then err "--pool-every must be >= 0 (got %d)" pool_every
        else if pool_workers < 1 then err "--pool-workers must be >= 1 (got %d)" pool_workers
        else None

let fuzz count seed max_size ps pool_every pool_workers stress_items quiet =
  match validate count max_size ps pool_every pool_workers with
  | Some (`Msg m) ->
      Format.eprintf "lhws_fuzz: %s@." m;
      Cmd.Exit.cli_error
  | None ->
  let options =
    {
      Runner.default_options with
      count;
      seed;
      max_size;
      ps;
      pool_every;
      pool_workers;
    }
  in
  let progress =
    if quiet then None
    else
      Some
        (fun i ->
          if i > 0 && i mod 100 = 0 then (
            Printf.printf "  ... %d/%d cases\n" i count;
            flush stdout))
  in
  let outcome = Runner.run ?progress options in
  Format.printf "%a@." Runner.pp_outcome outcome;
  let stress_failures =
    if stress_items <= 0 then 0
    else begin
      let deque = (module Stress.Chase_lev_deque : Stress.DEQUE) in
      let hammer = Stress.hammer deque ~items:stress_items () in
      let model = Stress.sequential_model deque ~ops:(min stress_items 10_000) ~seed () in
      Format.printf "chase-lev hammer: %a@." Stress.pp_report hammer;
      Format.printf "chase-lev sequential model: %a@." Stress.pp_report model;
      (if Stress.ok hammer then 0 else 1) + if Stress.ok model then 0 else 1
    end
  in
  if outcome.Runner.failed = [] && stress_failures = 0 then 0 else 1

let cmd =
  let doc = "differential fuzzing of the LHWS simulator, runtimes, and theorem bounds" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random fork-join programs and weighted dags, then cross-checks: reference \
         evaluation vs. the round-exact simulator vs. real execution on both runtime pools \
         (both steal policies), and every run against the paper's bounds (Theorem 1, Lemmas \
         1, 2 and 7, Corollary 1, and the per-snapshot deque-order invariant).  A Chase-Lev \
         stress pass hammers the lock-free deque from concurrent thief domains.";
      `P
        "Failures are shrunk to a local minimum and printed with their case seed; replay one \
         with $(b,lhws_fuzz --count 1 --seed) $(i,CASESEED).";
    ]
  in
  Cmd.v
    (Cmd.info "lhws_fuzz" ~doc ~man)
    Term.(
      const fuzz $ count_arg $ seed_arg $ max_size_arg $ ps_arg $ pool_every_arg
      $ pool_workers_arg $ stress_items_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
