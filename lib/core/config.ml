type steal_policy = Steal_global_deque | Steal_worker_then_deque
type steal_mode = Steal_one | Steal_half
type resume_policy = Resume_pfor_tree | Resume_linear
type resume_target = Original_deque | Fresh_deque

type t = {
  steal_policy : steal_policy;
  steal_mode : steal_mode;
  steal_latency : int;
  resume_policy : resume_policy;
  resume_target : resume_target;
  availability : (int -> int -> bool) option;
  wrap_single_resume : bool;
  fast_forward : bool;
  trace : bool;
  max_rounds : int;
  seed : int;
}

exception Stuck of string

let default =
  {
    steal_policy = Steal_global_deque;
    steal_mode = Steal_one;
    steal_latency = 0;
    resume_policy = Resume_pfor_tree;
    resume_target = Original_deque;
    availability = None;
    wrap_single_resume = false;
    fast_forward = true;
    trace = false;
    max_rounds = 1_000_000_000;
    seed = 42;
  }

let analysis = { default with wrap_single_resume = true; fast_forward = false; trace = true }
