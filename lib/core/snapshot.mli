(** Per-round views of the latency-hiding scheduler's state, for analysis
    instrumentation (the potential-function argument of Section 4 is
    phrased over exactly this state: deque contents, assigned vertices, and
    the extra potential of suspended deques).

    Snapshots record only enabling-tree depths, not task identities; that
    is all the potential function needs. *)

type deque_state = Active | Ready | Suspended | Freed

type deque_view = {
  owner : int;
  state : deque_state;
  task_depths : int list;  (** depths of queued tasks, bottom to top *)
  suspend_ctr : int;
  anchor_depth : int;  (** depth of the bottom task, or of the last task executed from this deque if it is empty *)
  anchor_round : int;  (** round that task was added / executed *)
}

type t = {
  round : int;  (** index of the round that is about to run *)
  assigned_depths : (int * int) list;  (** (worker, depth) of assigned tasks *)
  deques : deque_view list;
  live_suspended : int;
  steal_attempts : int;  (** cumulative steal attempts so far — used to
                             delimit the phases of Lemma 8 *)
}
