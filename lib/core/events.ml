(* Binary min-heap ordered by (time, sequence number); the sequence number
   makes ties FIFO, keeping the simulator deterministic. *)

type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0 }

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get h i = match h.heap.(i) with Some e -> e | None -> assert false

let swap h i j =
  let t = h.heap.(i) in
  h.heap.(i) <- h.heap.(j);
  h.heap.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && entry_lt (get h l) (get h !smallest) then smallest := l;
  if r < h.size && entry_lt (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h time payload =
  if h.size = Array.length h.heap then begin
    let bigger = Array.make (2 * h.size) None in
    Array.blit h.heap 0 bigger 0 h.size;
    h.heap <- bigger
  end;
  h.heap.(h.size) <- Some { time; seq = h.next_seq; payload };
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let next_time h = if h.size = 0 then None else Some (get h 0).time

let pop_due h now =
  if h.size = 0 then None
  else
    let top = get h 0 in
    if top.time > now then None
    else begin
      h.size <- h.size - 1;
      h.heap.(0) <- h.heap.(h.size);
      h.heap.(h.size) <- None;
      if h.size > 0 then sift_down h 0;
      Some top.payload
    end

let is_empty h = h.size = 0
let length h = h.size
