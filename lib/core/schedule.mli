(** Validity checking for schedules (Section 2's offline scheduling
    definition): every vertex executes exactly once, no worker executes two
    vertices in one round, and every vertex is {e ready} when executed —
    after all its parents, with every in-edge's latency elapsed. *)

type problem =
  | Not_executed of Lhws_dag.Dag.vertex
  | Executed_too_early of {
      vertex : Lhws_dag.Dag.vertex;
      parent : Lhws_dag.Dag.vertex;
      weight : int;
      parent_round : int;
      round : int;
    }
  | Worker_conflict of { worker : int; round : int }

val pp_problem : Format.formatter -> problem -> unit

val problems : Lhws_dag.Dag.t -> Trace.t -> problem list
(** All validity violations of a traced run; [[]] iff the schedule is
    valid.  Worker conflicts consider dag-vertex and pfor executions
    together. *)

val valid : Lhws_dag.Dag.t -> Trace.t -> bool

val check_exn : Lhws_dag.Dag.t -> Trace.t -> unit
(** @raise Invalid_argument describing the first violation, if any. *)

val length : Trace.t -> int
(** Schedule length: the last round in which anything executed, plus one. *)
