type t = { rounds : int; stats : Stats.t; trace : Trace.t option }

let trace_exn t =
  match t.trace with
  | Some tr -> tr
  | None -> invalid_arg "Run.trace_exn: run was not traced (set Config.trace)"
