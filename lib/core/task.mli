(** Schedulable units: dag vertices, plus the pfor-tree vertices that the
    latency-hiding scheduler injects to execute batches of resumed vertices
    in parallel (Section 3).

    A [Pfor] task covers the slice [\[lo, hi)] of a batch of resumed
    vertices; executing it splits the slice in half, yielding either
    smaller [Pfor] tasks or, for singleton halves, the resumed vertices
    themselves.  A pfor tree over [n] vertices thus has at most [n - 1]
    internal vertices, giving the [W + Wpfor <= 2W] bound of Lemma 1. *)

type t =
  | Vertex of Lhws_dag.Dag.vertex
  | Pfor of { batch : Lhws_dag.Dag.vertex array; lo : int; hi : int }

val pfor : Lhws_dag.Dag.vertex array -> t
(** A pfor task covering the whole batch (which must be non-empty). *)

val split : t -> t * t option
(** [split (Pfor _)] yields the left and right children of the pfor vertex.
    A slice of width 1 has a single child, the vertex itself.
    @raise Invalid_argument on [Vertex _]. *)

val split_linear : t -> t * t option
(** Like {!split} but unfolds the batch as a chain: the left child is the
    first vertex, the right child the rest of the batch.  Linear span —
    used only by the [Resume_linear] ablation.
    @raise Invalid_argument on [Vertex _]. *)

val width : t -> int
(** Number of dag vertices a task will eventually execute ([1] for
    [Vertex]). *)

val pp : Format.formatter -> t -> unit
