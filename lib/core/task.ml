type t =
  | Vertex of Lhws_dag.Dag.vertex
  | Pfor of { batch : Lhws_dag.Dag.vertex array; lo : int; hi : int }

let pfor batch =
  if Array.length batch = 0 then invalid_arg "Task.pfor: empty batch";
  Pfor { batch; lo = 0; hi = Array.length batch }

let slice batch lo hi = if hi - lo = 1 then Vertex batch.(lo) else Pfor { batch; lo; hi }

let split = function
  | Vertex _ -> invalid_arg "Task.split: not a pfor task"
  | Pfor { batch; lo; hi } ->
      let n = hi - lo in
      if n = 1 then (Vertex batch.(lo), None)
      else
        let mid = lo + (n / 2) in
        (slice batch lo mid, Some (slice batch mid hi))

let split_linear = function
  | Vertex _ -> invalid_arg "Task.split_linear: not a pfor task"
  | Pfor { batch; lo; hi } ->
      if hi - lo = 1 then (Vertex batch.(lo), None)
      else (Vertex batch.(lo), Some (slice batch (lo + 1) hi))

let width = function Vertex _ -> 1 | Pfor { lo; hi; _ } -> hi - lo

let pp ppf = function
  | Vertex v -> Format.fprintf ppf "v%d" v
  | Pfor { lo; hi; _ } -> Format.fprintf ppf "pfor[%d,%d)" lo hi
