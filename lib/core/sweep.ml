type algo = Lhws | Ws | Greedy

let algo_name = function Lhws -> "LHWS" | Ws -> "WS" | Greedy -> "GREEDY"

let run_algo algo ?config dag ~p =
  match algo with
  | Lhws -> Lhws_sim.run ?config dag ~p
  | Ws -> Ws_sim.run ?config dag ~p
  | Greedy -> Greedy.run ?config dag ~p

type point = { p : int; rounds : int; speedup : float }
type series = { algo : algo; points : point list }

let speedups ?config ?(algos = [ Lhws; Ws ]) ?(baseline = Ws) ~dag ~ps () =
  let base = (run_algo baseline ?config dag ~p:1).Run.rounds in
  let series_of algo =
    let points =
      List.map
        (fun p ->
          let r = run_algo algo ?config dag ~p in
          { p; rounds = r.Run.rounds; speedup = float_of_int base /. float_of_int r.Run.rounds })
        ps
    in
    { algo; points }
  in
  List.map series_of algos

let pp_series ppf series =
  match series with
  | [] -> ()
  | first :: _ ->
      let ps = List.map (fun pt -> pt.p) first.points in
      Format.fprintf ppf "@[<v>%6s" "P";
      List.iter
        (fun s ->
          Format.fprintf ppf " | %12s %8s" (algo_name s.algo ^ " rounds") "speedup")
        series;
      Format.fprintf ppf "@,";
      List.iteri
        (fun i p ->
          Format.fprintf ppf "%6d" p;
          List.iter
            (fun s ->
              let pt = List.nth s.points i in
              Format.fprintf ppf " | %12d %8.2f" pt.rounds pt.speedup)
            series;
          Format.fprintf ppf "@,")
        ps;
      Format.fprintf ppf "@]"
