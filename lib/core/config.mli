(** Simulator configuration and policy knobs. *)

type steal_policy =
  | Steal_global_deque
      (** The analyzed policy (Section 3): the victim deque is chosen
          uniformly at random among {e all} allocated deque slots, including
          freed ones (the steal then fails). *)
  | Steal_worker_then_deque
      (** The implemented policy (Section 6): pick a random worker, then a
          random one of its deques that currently has work. *)

type steal_mode =
  | Steal_one  (** classical work stealing: one vertex per successful steal *)
  | Steal_half
      (** batched steal: the thief takes the older ceil(n/2) of the
          victim deque's n vertices; the first becomes its assigned
          vertex, the surplus lands in the thief's fresh deque.  Models
          the steal-half strategy of the work-stealing-with-latency
          analyses (arXiv 1805.01768, 1805.00857). *)

type resume_policy =
  | Resume_pfor_tree
      (** The paper's policy: a batch of resumed vertices unfolds as a
          balanced binary pfor tree — logarithmic span, stealable halves. *)
  | Resume_linear
      (** Ablation: the batch unfolds as a chain, one vertex per round —
          linear span, modelling an owner that re-enqueues resumed vertices
          one at a time ("a worker cannot handle them by itself without
          harming performance", Section 3). *)

type resume_target =
  | Original_deque
      (** The paper's policy: a resumed batch returns to the deque its
          vertices suspended from; new deques are created only by steals.
          Keeps Lemma 7's [U + 1] deque bound. *)
  | Fresh_deque
      (** The variant Section 7 attributes to Spoonhower: "when a
          suspended thread resumes, a new deque is created to execute it".
          The original deque is freed once quiet; deque allocation now
          tracks resumes rather than steals. *)

type t = {
  steal_policy : steal_policy;
  steal_mode : steal_mode;
  steal_latency : int;
      (** Rounds a {e successful} steal costs beyond its own round: the
          thief is occupied (cannot act) for this many further rounds
          before its stolen vertex runs, modelling steals whose transfer
          itself has latency.  Failed attempts stay one round — the
          victim scan is the cheap part; it is moving the work that is
          expensive — which keeps fast-forward's skipped-round
          accounting exact.  Occupied rounds are counted in
          {!Stats.t.steal_latency_rounds}.  Default 0 (the paper's
          unit-cost steal). *)
  resume_policy : resume_policy;
  resume_target : resume_target;
  availability : (int -> int -> bool) option;
      (** Multiprogrammed-environment extension (the setting of Arora,
          Blumofe and Plaxton, which the paper's analysis builds on):
          [avail round worker] says whether the worker is scheduled by
          the environment in that round.  Unavailable workers take no
          action; their rounds are counted in
          {!Stats.t.unavailable_rounds}.  [None] (default) means a
          dedicated machine.  Setting this disables fast-forward. *)
  wrap_single_resume : bool;
      (** If [true], a batch of exactly one resumed vertex is still wrapped
          in a pfor vertex, as in the pseudocode; if [false] (default), it
          is pushed directly, a constant-work optimization. *)
  fast_forward : bool;
      (** Skip stretches of rounds in which every worker can only make a
          failed steal attempt (all waiting on latency).  Skipped rounds
          are still accounted: each skipped round adds one failed steal
          attempt per worker, exactly what the algorithm would have done.
          Results are identical except for the random-number stream. *)
  trace : bool;  (** Record the execution trace and enabling depths. *)
  max_rounds : int;  (** Safety cap; exceeding it raises [Stuck]. *)
  seed : int;
}

exception Stuck of string
(** Raised when no progress is possible (deadlock — indicates a malformed
    dag) or when [max_rounds] is exceeded. *)

val default : t
(** [Steal_global_deque], [Steal_one], zero steal latency,
    [Resume_pfor_tree], no single-resume wrapping, fast-forward on, no
    trace, [max_rounds = 1_000_000_000], seed 42. *)

val analysis : t
(** Faithful-to-the-analysis settings: wraps single resumes, no
    fast-forward, tracing on.  Use for bound-checking runs. *)
