(** Future-event queue for latency expiry: a binary min-heap keyed by round
    number.  The simulator schedules one event per suspension, fired when
    the heavy edge's latency elapses. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> int -> 'a -> unit
(** [add q time x] schedules [x] at [time]. *)

val pop_due : 'a t -> int -> 'a option
(** [pop_due q now] removes and returns an event with time [<= now], or
    [None].  Events with equal time are returned in insertion order. *)

val next_time : 'a t -> int option
(** Earliest scheduled time, if any. *)

val is_empty : 'a t -> bool
val length : 'a t -> int
