(** The standard (non-latency-hiding) work-stealing baseline, simulated.

    One deque per worker; a latency-incurring operation {e blocks} its
    worker: executing a vertex whose enabled child arrives over a heavy
    edge of weight [delta] occupies the worker for [delta] rounds in total
    (one round of work plus [delta - 1] rounds of waiting), after which the
    worker continues with that child.  The worker's deque remains stealable
    while it is blocked.  This is the semantics against which the paper's
    Figure 11 compares ("the standard work stealer does not hide latency").

    Blocked rounds are accounted in {!Stats.t.blocked_rounds}.  In the
    rare case of a vertex enabling two heavy children, the worker blocks
    for the maximum of the two latencies and then handles both, left
    first.

    Determinism and termination behave as in {!Lhws_sim}. *)

val run : ?config:Config.t -> Lhws_dag.Dag.t -> p:int -> Run.t
(** Simulate the dag on [p >= 1] workers with blocking work stealing.
    @raise Invalid_argument if [p < 1] or the dag is malformed. *)
