(** Experiment drivers: run schedulers across worker counts and collect
    speedup series, as in the paper's Figure 11. *)

type algo = Lhws | Ws | Greedy

val algo_name : algo -> string
val run_algo : algo -> ?config:Config.t -> Lhws_dag.Dag.t -> p:int -> Run.t

type point = { p : int; rounds : int; speedup : float }
(** [speedup] is relative to the baseline's 1-worker round count (the
    paper plots all curves relative to the one-processor run of WS). *)

type series = { algo : algo; points : point list }

val speedups :
  ?config:Config.t ->
  ?algos:algo list ->
  ?baseline:algo ->
  dag:Lhws_dag.Dag.t ->
  ps:int list ->
  unit ->
  series list
(** Runs every algorithm (default [[Lhws; Ws]]) at every worker count.
    Speedups are relative to [baseline] (default [Ws]) at [p = 1], which is
    run in addition if 1 is not in [ps]. *)

val pp_series : Format.formatter -> series list -> unit
(** Renders series as an aligned text table: one row per worker count, one
    rounds/speedup column pair per algorithm. *)
