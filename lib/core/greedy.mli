(** Offline greedy scheduler for weighted dags (Theorem 1).

    A greedy schedule keeps all [P] workers busy whenever at least [P]
    vertices are ready.  This implementation maintains a central FIFO pool
    of ready vertices: each round it executes [min P (ready vertices)] of
    them; children enabled over light edges become ready the next round,
    children enabled over heavy edges of weight [delta] become ready
    [delta] rounds later.

    Theorem 1 guarantees the resulting schedule has length at most
    [W/P + S]; tests and benches verify this on every workload. *)

val run : ?config:Config.t -> Lhws_dag.Dag.t -> p:int -> Run.t
(** Greedy schedule of the dag on [p >= 1] workers.  Only
    {!Config.t.trace}, [max_rounds] and [fast_forward] are consulted.
    Rounds with fewer ready vertices than workers account the shortfall in
    {!Stats.t.idle_rounds}.
    @raise Invalid_argument if [p < 1] or the dag is malformed. *)

val bound : Lhws_dag.Dag.t -> p:int -> int
(** The Theorem 1 bound [ceil(W/P) + S] for this dag. *)
