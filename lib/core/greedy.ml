module Dag = Lhws_dag.Dag
module Check = Lhws_dag.Check
module Metrics = Lhws_dag.Metrics

let bound dag ~p =
  let w = Metrics.work dag and s = Metrics.span dag in
  ((w + p - 1) / p) + s

let run ?(config = Config.default) dag ~p =
  if p < 1 then invalid_arg "Greedy.run: p must be >= 1";
  Check.check_exn dag;
  let es = Exec_state.create dag in
  let stats = Stats.create ~workers:p in
  let trace = if config.trace then Some (Trace.create dag) else None in
  let ready : Dag.vertex Queue.t = Queue.create () in
  let events : Dag.vertex Events.t = Events.create () in
  let now = ref 0 in
  let finished = ref false in
  (match trace with Some tr -> Trace.set_depth tr (Dag.root dag) 0 | None -> ());
  Queue.add (Dag.root dag) ready;
  while not !finished do
    if !now > config.max_rounds then
      raise (Config.Stuck (Printf.sprintf "exceeded max_rounds = %d" config.max_rounds));
    let rec drain () =
      match Events.pop_due events !now with
      | Some v ->
          stats.resumes <- stats.resumes + 1;
          Queue.add v ready;
          drain ()
      | None -> ()
    in
    drain ();
    if Queue.is_empty ready then begin
      match Events.next_time events with
      | None -> raise (Config.Stuck (Printf.sprintf "deadlock at round %d" !now))
      | Some t ->
          let target = if config.fast_forward then t else !now + 1 in
          let skipped = target - !now in
          stats.idle_rounds <- stats.idle_rounds + (skipped * p);
          if config.fast_forward then
            stats.fast_forwarded_rounds <- stats.fast_forwarded_rounds + skipped;
          now := target
    end
    else begin
      let k = min p (Queue.length ready) in
      (* Children enabled this round are collected and only become ready
         next round. *)
      let enabled_light = ref [] in
      for worker = 0 to k - 1 do
        let v = Queue.pop ready in
        stats.vertices_executed <- stats.vertices_executed + 1;
        (match trace with
        | Some tr -> Trace.record_exec tr ~round:!now ~worker v
        | None -> ());
        if v = Dag.final dag then finished := true;
        List.iter
          (fun (c, weight) ->
            if weight = 1 then enabled_light := c :: !enabled_light
            else begin
              stats.suspensions <- stats.suspensions + 1;
              Events.add events (!now + weight) c
            end)
          (Exec_state.execute es v)
      done;
      List.iter (fun c -> Queue.add c ready) (List.rev !enabled_light);
      stats.idle_rounds <- stats.idle_rounds + (p - k);
      incr now
    end
  done;
  stats.rounds <- !now;
  { Run.rounds = !now; stats; trace }
