module Dag = Lhws_dag.Dag
module Check = Lhws_dag.Check
module Deque = Lhws_deque.Deque

(* A deque element: a task plus the bookkeeping needed for the
   enabling-tree depths of Section 4.1 (depth at which the task sits in
   the enabling tree, and the round in which it was pushed). *)
type elt = { task : Task.t; depth : int; added : int }

type deque = {
  did : int;
  owner : int;
  q : elt Deque.t;
  mutable suspend_ctr : int;  (* suspended vertices belonging to this deque *)
  mutable resumed_rev : Dag.vertex list;  (* q.resumedVertices, newest first *)
  mutable in_resumed_set : bool;
  mutable in_ready : bool;
  mutable freed : bool;
  (* Anchor for pfor placement when the deque is empty: the depth and
     round of the last vertex executed from this deque. *)
  mutable last_depth : int;
  mutable last_round : int;
}

type worker = {
  wid : int;
  rng : Rng.t;
  mutable assigned : elt option;
  mutable active : deque option;
  mutable ready : deque list;  (* readyDeques (non-active deques with work) *)
  mutable resumed_deques_rev : deque list;  (* resumedDeques, newest first *)
  mutable empty_deques : deque list;  (* freed deques available for reuse *)
  mutable owned_live : int;  (* non-freed deques owned; Lemma 7: <= U + 1 *)
  mutable steal_busy_until : int;  (* occupied by steal transfer latency *)
}

type state = {
  es : Exec_state.t;
  cfg : Config.t;
  stats : Stats.t;
  trace : Trace.t option;
  workers : worker array;
  mutable gdeques : deque array;  (* global deque array, gDeques *)
  mutable gtotal : int;  (* gTotalDeques *)
  events : (Dag.vertex * deque) Events.t;  (* latency expiries *)
  mutable now : int;
  mutable live_suspended : int;
  mutable finished : bool;
}

(* A child produced by executing a task: ready with a task to run, or
   suspended on a heavy edge of the given weight. *)
type child = Ready of Task.t | Suspends of Dag.vertex * int

let mk_elt st task depth =
  (match (st.trace, task) with
  | Some tr, Task.Vertex v -> Trace.set_depth tr v depth
  | _ -> ());
  { task; depth; added = st.now }

(* --- deque management (Figure 5) --- *)

let push_gdeque st d =
  if st.gtotal = Array.length st.gdeques then begin
    let bigger = Array.make (max 16 (2 * st.gtotal)) d in
    Array.blit st.gdeques 0 bigger 0 st.gtotal;
    st.gdeques <- bigger
  end;
  st.gdeques.(st.gtotal) <- d;
  st.gtotal <- st.gtotal + 1

let alloc_deque st w =
  let d =
    match w.empty_deques with
    | d :: rest ->
        w.empty_deques <- rest;
        d.freed <- false;
        d.last_depth <- 0;
        d.last_round <- st.now;
        d
    | [] ->
        let d =
          {
            did = st.gtotal;
            owner = w.wid;
            q = Deque.create ();
            suspend_ctr = 0;
            resumed_rev = [];
            in_resumed_set = false;
            in_ready = false;
            freed = false;
            last_depth = 0;
            last_round = st.now;
          }
        in
        push_gdeque st d;
        st.stats.deques_allocated <- st.stats.deques_allocated + 1;
        d
  in
  w.owned_live <- w.owned_live + 1;
  if w.owned_live > st.stats.max_deques_per_worker then
    st.stats.max_deques_per_worker <- w.owned_live;
  d

let free_deque w d =
  assert (Deque.is_empty d.q && d.suspend_ctr = 0);
  d.freed <- true;
  w.owned_live <- w.owned_live - 1;
  w.empty_deques <- d :: w.empty_deques

(* --- suspension callbacks (function callback of Figure 3) --- *)

let callback st v d =
  d.resumed_rev <- v :: d.resumed_rev;
  d.suspend_ctr <- d.suspend_ctr - 1;
  st.live_suspended <- st.live_suspended - 1;
  st.stats.resumes <- st.stats.resumes + 1;
  if not d.in_resumed_set then begin
    d.in_resumed_set <- true;
    let w = st.workers.(d.owner) in
    w.resumed_deques_rev <- d :: w.resumed_deques_rev
  end

(* Depth/round anchor used to place a pfor tree on a deque (Section 4.1:
   the bottom vertex if the deque is non-empty, otherwise the last vertex
   executed from it). *)
let anchor d =
  match Deque.peek_bottom d.q with
  | Some e -> (e.depth, e.added)
  | None -> (d.last_depth, d.last_round)

(* What the worker just did, for pfor depth bookkeeping on the active
   deque: either it executed a task at a given depth (and whether that
   task produced a left child), or it is in the idle path. *)
type active_context = Exec of int * bool | Idle_ctx

(* addResumedVertices() *)
let add_resumed st w ctx =
  match w.resumed_deques_rev with
  | [] -> ()
  | rev ->
      let ds = List.rev rev in
      w.resumed_deques_rev <- [];
      List.iter
        (fun d ->
          d.in_resumed_set <- false;
          let batch = Array.of_list (List.rev d.resumed_rev) in
          d.resumed_rev <- [];
          let is_active = match w.active with Some a -> a == d | None -> false in
          let depth =
            if is_active then
              match ctx with
              | Exec (dep, true) -> dep + 2 (* auxiliary vertex splits the out-edges *)
              | Exec (dep, false) -> dep + 1
              | Idle_ctx ->
                  let ad, aj = anchor d in
                  ad + max 1 (st.now - aj)
            else
              let ad, aj = anchor d in
              ad + max 1 (st.now - aj)
          in
          let task =
            if Array.length batch = 1 && not st.cfg.wrap_single_resume then
              Task.Vertex batch.(0)
            else Task.pfor batch
          in
          st.stats.pfor_batches <- st.stats.pfor_batches + 1;
          match st.cfg.resume_target with
          | Config.Original_deque ->
              Deque.push_bottom d.q (mk_elt st task depth);
              if (not is_active) && not d.in_ready then begin
                d.in_ready <- true;
                w.ready <- d :: w.ready
              end
          | Config.Fresh_deque ->
              (* Spoonhower-style variant: the batch starts a brand-new
                 deque; the original is retired once nothing else will
                 come back to it. *)
              let fresh = alloc_deque st w in
              Deque.push_bottom fresh.q (mk_elt st task depth);
              fresh.in_ready <- true;
              w.ready <- fresh :: w.ready;
              if
                (not is_active) && (not d.in_ready) && d.suspend_ctr = 0
                && Deque.is_empty d.q && not d.freed
              then free_deque w d)
        ds

(* handleChild(v) *)
let handle_child st d child ~depth =
  match child with
  | Ready task -> Deque.push_bottom d.q (mk_elt st task depth)
  | Suspends (c, weight) ->
      d.suspend_ctr <- d.suspend_ctr + 1;
      st.live_suspended <- st.live_suspended + 1;
      if st.live_suspended > st.stats.max_live_suspended then
        st.stats.max_live_suspended <- st.live_suspended;
      st.stats.suspensions <- st.stats.suspensions + 1;
      Events.add st.events (st.now + weight) (c, d)

(* Execute a task, returning its (left, right) enabled children. *)
let exec_task st w (e : elt) =
  match e.task with
  | Task.Vertex v ->
      st.stats.vertices_executed <- st.stats.vertices_executed + 1;
      (match st.trace with
      | Some tr -> Trace.record_exec tr ~round:st.now ~worker:w.wid v
      | None -> ());
      if v = Dag.final (Exec_state.dag st.es) then st.finished <- true;
      let wrap (c, weight) = if weight = 1 then Ready (Task.Vertex c) else Suspends (c, weight) in
      (match Exec_state.execute st.es v with
      | [] -> (None, None)
      | [ c ] -> (Some (wrap c), None)
      | [ l; r ] -> (Some (wrap l), Some (wrap r))
      | _ -> assert false (* out-degree <= 2 *))
  | Task.Pfor _ ->
      st.stats.pfor_executed <- st.stats.pfor_executed + 1;
      (match st.trace with
      | Some tr -> Trace.record_pfor_exec tr ~round:st.now ~worker:w.wid
      | None -> ());
      let l, r =
        match st.cfg.resume_policy with
        | Config.Resume_pfor_tree -> Task.split e.task
        | Config.Resume_linear -> Task.split_linear e.task
      in
      (Some (Ready l), Option.map (fun t -> Ready t) r)

(* One worker round with an assigned task: lines 33-40 of Figure 3. *)
let exec_step st w e =
  w.assigned <- None;
  let d = match w.active with Some d -> d | None -> assert false in
  let left, right = exec_task st w e in
  (match right with Some c -> handle_child st d c ~depth:(e.depth + 1) | None -> ());
  let left_exists = left <> None in
  (* If a pfor tree is about to be planted on the active deque while a left
     child exists, the construction inserts an auxiliary vertex, pushing
     the left child one level deeper (Section 4.1). *)
  let active_gets_pfor = d.in_resumed_set in
  add_resumed st w (Exec (e.depth, left_exists));
  let left_depth = if left_exists && active_gets_pfor then e.depth + 2 else e.depth + 1 in
  (match left with Some c -> handle_child st d c ~depth:left_depth | None -> ());
  d.last_depth <- e.depth;
  d.last_round <- st.now;
  w.assigned <- Deque.pop_bottom d.q

(* Take from victim deque [d] per the configured steal mode: the oldest
   vertex, plus any surplus (the rest of the older half) in steal order.
   Rounds serialize deque access, so the observed length is exact. *)
let steal_from st d =
  match st.cfg.Config.steal_mode with
  | Config.Steal_one -> (
      match Deque.pop_top d.q with Some e -> Some (e, []) | None -> None)
  | Config.Steal_half -> (
      let n = Deque.length d.q in
      match Deque.pop_top d.q with
      | None -> None
      | Some first ->
          let want = (n + 1) / 2 in
          let surplus = ref [] in
          for _ = 2 to want do
            match Deque.pop_top d.q with
            | Some e -> surplus := e :: !surplus
            | None -> assert false
          done;
          Some (first, List.rev !surplus))

(* Steal target selection. *)
let try_steal st w =
  match st.cfg.steal_policy with
  | Config.Steal_global_deque ->
      if st.gtotal = 0 then None
      else
        let d = st.gdeques.(Rng.int w.rng st.gtotal) in
        if d.freed then None else steal_from st d
  | Config.Steal_worker_then_deque ->
      let victim = st.workers.(Rng.int w.rng (Array.length st.workers)) in
      let candidates =
        let actives =
          match victim.active with
          | Some a when not (Deque.is_empty a.q) -> [ a ]
          | _ -> []
        in
        actives @ List.filter (fun d -> not (Deque.is_empty d.q)) victim.ready
      in
      (match candidates with
      | [] -> None
      | _ ->
          let n = List.length candidates in
          steal_from st (List.nth candidates (Rng.int w.rng n)))

(* One worker round without an assigned task: lines 41-56 of Figure 3. *)
let idle_step st w =
  (match w.active with
  | Some d ->
      (* The active deque is necessarily empty here.  It may be freed only
         if no suspended vertex will come back to it: suspend_ctr = 0 and
         no vertex has resumed without being re-injected yet (the callback
         for the last suspended vertex may fire before this worker's idle
         step in the same round). *)
      if d.suspend_ctr = 0 && not d.in_resumed_set then free_deque w d;
      (* otherwise it parks as a suspended deque *)
      w.active <- None
  | None -> ());
  match w.ready with
  | d :: rest ->
      (* Deque switch. *)
      assert (not d.freed);
      st.stats.switches <- st.stats.switches + 1;
      w.ready <- rest;
      d.in_ready <- false;
      w.active <- Some d;
      add_resumed st w Idle_ctx;
      w.assigned <- Deque.pop_bottom d.q
  | [] -> (
      (* Steal attempt. *)
      st.stats.steal_attempts <- st.stats.steal_attempts + 1;
      (match try_steal st w with
      | Some (e, surplus) ->
          st.stats.steals_ok <- st.stats.steals_ok + 1;
          let k = 1 + List.length surplus in
          st.stats.tasks_stolen <- st.stats.tasks_stolen + k;
          if k > 1 then st.stats.steals_batched <- st.stats.steals_batched + 1;
          (* The transfer's latency occupies the thief starting next round;
             failed attempts stay unit cost so fast-forward's accounting
             holds. *)
          if st.cfg.Config.steal_latency > 0 then
            w.steal_busy_until <- st.now + 1 + st.cfg.Config.steal_latency;
          let nd = alloc_deque st w in
          List.iter (fun e -> Deque.push_bottom nd.q e) surplus;
          w.active <- Some nd;
          w.assigned <- Some e
      | None -> ());
      add_resumed st w Idle_ctx;
      match w.assigned with
      | None -> (
          match w.active with
          | Some d -> w.assigned <- Deque.pop_bottom d.q
          | None -> ())
      | Some _ -> ())

let step st w =
  if st.now < w.steal_busy_until then
    (* Occupied transferring stolen work; the assigned vertex it just stole
       runs once the transfer completes. *)
    st.stats.steal_latency_rounds <- st.stats.steal_latency_rounds + 1
  else match w.assigned with Some e -> exec_step st w e | None -> idle_step st w

(* One round's worth of worker actions, honouring the availability mask. *)
let step_all st =
  match st.cfg.availability with
  | None -> Array.iter (step st) st.workers
  | Some avail ->
      Array.iter
        (fun w ->
          if avail st.now w.wid then step st w
          else st.stats.unavailable_rounds <- st.stats.unavailable_rounds + 1)
        st.workers

(* Build a Snapshot view of the scheduler state (start-of-round). *)
let snapshot st =
  let deque_view d =
    let state =
      if d.freed then Snapshot.Freed
      else if
        match st.workers.(d.owner).active with Some a -> a == d | None -> false
      then Snapshot.Active
      else if d.in_ready then Snapshot.Ready
      else Snapshot.Suspended
    in
    {
      Snapshot.owner = d.owner;
      state;
      task_depths = List.rev_map (fun e -> e.depth) (Deque.to_list d.q);
      suspend_ctr = d.suspend_ctr;
      anchor_depth = fst (anchor d);
      anchor_round = snd (anchor d);
    }
  in
  let deques = List.init st.gtotal (fun i -> deque_view st.gdeques.(i)) in
  let assigned_depths =
    Array.to_list st.workers
    |> List.filter_map (fun w ->
           match w.assigned with Some e -> Some (w.wid, e.depth) | None -> None)
  in
  {
    Snapshot.round = st.now;
    assigned_depths;
    deques;
    live_suspended = st.live_suspended;
    steal_attempts = st.stats.Stats.steal_attempts;
  }

(* Can any worker do something other than a failed steal attempt this
   round?  Used for fast-forward and deadlock detection. *)
let all_stalled st =
  Array.for_all
    (fun w -> w.assigned = None && w.ready = [] && w.resumed_deques_rev = [])
    st.workers

let run ?(config = Config.default) ?observer dag ~p =
  if p < 1 then invalid_arg "Lhws_sim.run: p must be >= 1";
  Check.check_exn dag;
  let st =
    {
      es = Exec_state.create dag;
      cfg = config;
      stats = Stats.create ~workers:p;
      trace = (if config.trace then Some (Trace.create dag) else None);
      workers =
        (let master = Rng.make config.seed in
         Array.init p (fun wid ->
             {
               wid;
               rng = Rng.split master;
               assigned = None;
               active = None;
               ready = [];
               resumed_deques_rev = [];
               empty_deques = [];
               owned_live = 0;
               steal_busy_until = 0;
             }));
      gdeques = [||];
      gtotal = 0;
      events = Events.create ();
      now = 0;
      live_suspended = 0;
      finished = false;
    }
  in
  (* Line 25-28: every worker starts with an empty active deque; worker
     zero is assigned the root. *)
  Array.iter (fun w -> w.active <- Some (alloc_deque st w)) st.workers;
  st.workers.(0).assigned <- Some (mk_elt st (Task.Vertex (Dag.root dag)) 0);
  while not st.finished do
    if st.now > st.cfg.max_rounds then
      raise (Config.Stuck (Printf.sprintf "exceeded max_rounds = %d" st.cfg.max_rounds));
    (* Fire due resume callbacks. *)
    let rec drain () =
      match Events.pop_due st.events st.now with
      | Some (v, d) ->
          callback st v d;
          drain ()
      | None -> ()
    in
    drain ();
    (match observer with Some f -> f (snapshot st) | None -> ());
    if all_stalled st then begin
      match Events.next_time st.events with
      | None ->
          raise
            (Config.Stuck
               (Printf.sprintf "deadlock at round %d: no work, no pending latency" st.now))
      | Some t when st.cfg.fast_forward && st.cfg.availability = None && t > st.now ->
          (* Every worker would make one failed steal attempt per skipped
             round; account for them and jump. *)
          let skipped = t - st.now in
          st.stats.steal_attempts <- st.stats.steal_attempts + (skipped * p);
          st.stats.fast_forwarded_rounds <- st.stats.fast_forwarded_rounds + skipped;
          st.now <- t
      | Some _ ->
          step_all st;
          st.now <- st.now + 1
    end
    else begin
      step_all st;
      st.now <- st.now + 1
    end
  done;
  st.stats.rounds <- st.now;
  { Run.rounds = st.now; stats = st.stats; trace = st.trace }
