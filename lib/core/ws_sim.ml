module Dag = Lhws_dag.Dag
module Check = Lhws_dag.Check
module Deque = Lhws_deque.Deque

type worker = {
  wid : int;
  rng : Rng.t;
  q : Dag.vertex Deque.t;
  mutable assigned : Dag.vertex option;
  mutable blocked_until : int;
  mutable after_block : Dag.vertex list;  (* children to run once unblocked *)
  mutable steal_busy_until : int;  (* occupied by steal transfer latency *)
}

type state = {
  es : Exec_state.t;
  cfg : Config.t;
  stats : Stats.t;
  trace : Trace.t option;
  workers : worker array;
  mutable now : int;
  mutable finished : bool;
}

let exec_vertex st w v =
  st.stats.vertices_executed <- st.stats.vertices_executed + 1;
  (match st.trace with
  | Some tr -> Trace.record_exec tr ~round:st.now ~worker:w.wid v
  | None -> ());
  if v = Dag.final (Exec_state.dag st.es) then st.finished <- true;
  Exec_state.execute st.es v

(* Install the enabled children of an executed vertex.  With no heavy
   child: continue with the left child (work-first), push the right.
   With heavy children: block for the maximum latency, then continue with
   all children in order. *)
let handle_children st w children =
  let heavy = List.filter (fun (_, weight) -> weight > 1) children in
  match heavy with
  | [] -> (
      match children with
      | [] -> w.assigned <- Deque.pop_bottom w.q
      | [ (c, _) ] -> w.assigned <- Some c
      | [ (l, _); (r, _) ] ->
          Deque.push_bottom w.q r;
          w.assigned <- Some l
      | _ -> assert false)
  | _ ->
      let delta = List.fold_left (fun acc (_, weight) -> max acc weight) 0 heavy in
      st.stats.suspensions <- st.stats.suspensions + List.length heavy;
      w.blocked_until <- st.now + delta;
      w.after_block <- List.map fst children;
      w.assigned <- None

(* Returns the vertex to run now and how many vertices were taken.  Under
   [Steal_half] the thief takes the older ceil(n/2) of the victim's n
   vertices: the oldest becomes its assigned vertex, the surplus goes to
   the bottom of its own (empty) deque.  Workers within a round step
   sequentially, so the observed size is exact and every pop succeeds. *)
let try_steal st w =
  let p = Array.length st.workers in
  if p = 1 then None
  else begin
    (* Uniform among the other workers. *)
    let k = Rng.int w.rng (p - 1) in
    let vid = if k >= w.wid then k + 1 else k in
    let vq = st.workers.(vid).q in
    match st.cfg.Config.steal_mode with
    | Config.Steal_one -> (
        match Deque.pop_top vq with Some v -> Some (v, 1) | None -> None)
    | Config.Steal_half -> (
        let n = Deque.length vq in
        match Deque.pop_top vq with
        | None -> None
        | Some first ->
            let want = (n + 1) / 2 in
            for _ = 2 to want do
              match Deque.pop_top vq with
              | Some v -> Deque.push_bottom w.q v
              | None -> assert false
            done;
            Some (first, want))
  end

(* One round, honouring the availability mask (multiprogrammed setting). *)
let step_all step st =
  match st.cfg.Config.availability with
  | None -> Array.iter (step st) st.workers
  | Some avail ->
      Array.iter
        (fun w ->
          if avail st.now w.wid then step st w
          else st.stats.Stats.unavailable_rounds <- st.stats.Stats.unavailable_rounds + 1)
        st.workers

let step st w =
  if st.now < w.blocked_until then
    st.stats.blocked_rounds <- st.stats.blocked_rounds + 1
  else if st.now < w.steal_busy_until then
    (* Occupied transferring a stolen vertex; the assigned vertex it just
       stole runs once the transfer completes. *)
    st.stats.steal_latency_rounds <- st.stats.steal_latency_rounds + 1
  else begin
    (match w.after_block with
    | [] -> ()
    | c :: rest ->
        st.stats.resumes <- st.stats.resumes + (1 + List.length rest);
        List.iter (Deque.push_bottom w.q) (List.rev rest);
        w.assigned <- Some c;
        w.after_block <- []);
    match w.assigned with
    | Some v ->
        w.assigned <- None;
        let children = exec_vertex st w v in
        handle_children st w children
    | None -> (
        (* Own deque first (it may hold a pushed sibling), then steal. *)
        match Deque.pop_bottom w.q with
        | Some v ->
            (* Popping one's own deque is part of the work loop, but to keep
               one action per round it costs this round, like a steal. *)
            st.stats.steal_attempts <- st.stats.steal_attempts + 1;
            st.stats.steals_ok <- st.stats.steals_ok + 1;
            st.stats.tasks_stolen <- st.stats.tasks_stolen + 1;
            w.assigned <- Some v
        | None -> (
            st.stats.steal_attempts <- st.stats.steal_attempts + 1;
            match try_steal st w with
            | Some (v, k) ->
                st.stats.steals_ok <- st.stats.steals_ok + 1;
                st.stats.tasks_stolen <- st.stats.tasks_stolen + k;
                if k > 1 then st.stats.steals_batched <- st.stats.steals_batched + 1;
                (* The transfer's latency occupies the thief starting next
                   round; the failed-attempt round itself stays unit cost,
                   so fast-forward's skipped-round accounting is exact. *)
                if st.cfg.Config.steal_latency > 0 then
                  w.steal_busy_until <- st.now + 1 + st.cfg.Config.steal_latency;
                w.assigned <- Some v
            | None -> ()))
  end

(* No worker can act: every deque is empty, nobody has an assigned vertex,
   and every worker is either blocked or has no woken children pending. *)
let all_stalled st =
  Array.for_all
    (fun w ->
      Deque.is_empty w.q && w.assigned = None
      && (st.now < w.blocked_until || w.after_block = []))
    st.workers

let next_wake st =
  Array.fold_left
    (fun acc w -> if w.blocked_until > st.now then min acc w.blocked_until else acc)
    max_int st.workers

let run ?(config = Config.default) dag ~p =
  if p < 1 then invalid_arg "Ws_sim.run: p must be >= 1";
  Check.check_exn dag;
  let st =
    {
      es = Exec_state.create dag;
      cfg = config;
      stats = Stats.create ~workers:p;
      trace = (if config.trace then Some (Trace.create dag) else None);
      workers =
        (let master = Rng.make config.seed in
         Array.init p (fun wid ->
             {
               wid;
               rng = Rng.split master;
               q = Deque.create ();
               assigned = None;
               blocked_until = 0;
               after_block = [];
               steal_busy_until = 0;
             }));
      now = 0;
      finished = false;
    }
  in
  (match st.trace with Some tr -> Trace.set_depth tr (Dag.root dag) 0 | None -> ());
  st.workers.(0).assigned <- Some (Dag.root dag);
  while not st.finished do
    if st.now > st.cfg.max_rounds then
      raise (Config.Stuck (Printf.sprintf "exceeded max_rounds = %d" st.cfg.max_rounds));
    if all_stalled st then begin
      let wake = next_wake st in
      if wake = max_int then
        raise
          (Config.Stuck (Printf.sprintf "deadlock at round %d: all idle, nobody blocked" st.now))
      else if st.cfg.fast_forward && st.cfg.availability = None && wake > st.now then begin
        (* [wake] is the minimum over blocked workers, so every blocked
           worker stays blocked for all skipped rounds; every idle worker
           would make one failed steal attempt per skipped round. *)
        let skipped = wake - st.now in
        Array.iter
          (fun w ->
            if w.blocked_until > st.now then
              st.stats.blocked_rounds <- st.stats.blocked_rounds + skipped
            else st.stats.steal_attempts <- st.stats.steal_attempts + skipped)
          st.workers;
        st.stats.fast_forwarded_rounds <- st.stats.fast_forwarded_rounds + skipped;
        st.now <- wake
      end
      else begin
        step_all step st;
        st.now <- st.now + 1
      end
    end
    else begin
      step_all step st;
      st.now <- st.now + 1
    end
  done;
  st.stats.rounds <- st.now;
  { Run.rounds = st.now; stats = st.stats; trace = st.trace }
