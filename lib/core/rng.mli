(** Deterministic splittable pseudo-random number generator (splitmix64).

    The simulator gives each worker its own stream split from a single
    seed, so runs are reproducible regardless of the number of workers or
    the order in which streams are consumed. *)

type t

val make : int -> t
(** A generator seeded from an integer. *)

val split : t -> t
(** A statistically independent generator derived from (and advancing)
    the parent. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)
