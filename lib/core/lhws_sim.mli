(** The latency-hiding work-stealing scheduler (Section 3), as a
    deterministic discrete-time simulator.

    Each worker executes at most one unit-work task per round, exactly as
    in the analysis: the round body follows the pseudocode of Figure 3.
    Workers own collections of deques, only one of which is active; a
    vertex that suspends on a heavy edge is paired with the active deque;
    when suspended vertices resume, they are injected back into their
    deque as a pfor tree; a worker whose deques are all out of work steals
    from a random deque and starts a new active deque for the loot.

    Determinism: given the same dag, worker count, and
    {!Config.t.seed}, two runs produce identical schedules and statistics.

    @raise Config.Stuck if the computation deadlocks (malformed dag) or
    exceeds {!Config.t.max_rounds}. *)

val run :
  ?config:Config.t -> ?observer:(Snapshot.t -> unit) -> Lhws_dag.Dag.t -> p:int -> Run.t
(** Simulate the dag on [p >= 1] workers.  The dag must be well-formed
    ({!Lhws_dag.Check.well_formed}); this is checked up front.

    [observer], if given, receives a {!Snapshot.t} of the scheduler state
    at the start of every round (after latency callbacks fire, before
    workers act); intended for potential-function analysis — it disables
    nothing but is called even for fast-forwarded stretches' first round.
    @raise Invalid_argument if [p < 1] or the dag is malformed. *)
