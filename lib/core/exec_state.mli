(** Shared execution bookkeeping for the online schedulers: which vertices
    have executed and which children become {e enabled} (all parents
    executed) as a result of an execution.  Whether an enabled child is
    {e ready} (light in-edge) or {e suspended} (heavy in-edge) is the
    scheduler's concern. *)

type t

val create : Lhws_dag.Dag.t -> t

val dag : t -> Lhws_dag.Dag.t

val execute : t -> Lhws_dag.Dag.vertex -> (Lhws_dag.Dag.vertex * int) list
(** Marks the vertex executed and returns its {e enabled} children, in
    out-edge (left-to-right) order, paired with the enabling edge's weight.
    @raise Invalid_argument if the vertex was already executed or has an
    unexecuted parent. *)

val executed : t -> Lhws_dag.Dag.vertex -> bool
val num_executed : t -> int

val complete : t -> bool
(** All vertices executed. *)

val final_executed : t -> bool
(** The final vertex has executed — the schedulers' termination test. *)
