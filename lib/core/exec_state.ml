module Dag = Lhws_dag.Dag

type t = {
  dag : Dag.t;
  pending : int array; (* unexecuted parents per vertex *)
  executed : bool array;
  mutable n_executed : int;
}

let create dag =
  let n = Dag.num_vertices dag in
  let pending = Array.init n (Dag.in_degree dag) in
  { dag; pending; executed = Array.make n false; n_executed = 0 }

let dag t = t.dag

let execute t v =
  if t.executed.(v) then invalid_arg (Printf.sprintf "Exec_state.execute: vertex %d twice" v);
  if t.pending.(v) <> 0 then
    invalid_arg (Printf.sprintf "Exec_state.execute: vertex %d has unexecuted parents" v);
  t.executed.(v) <- true;
  t.n_executed <- t.n_executed + 1;
  let enabled = ref [] in
  let out = Dag.out_edges t.dag v in
  for i = Array.length out - 1 downto 0 do
    let c, w = out.(i) in
    t.pending.(c) <- t.pending.(c) - 1;
    if t.pending.(c) = 0 then enabled := (c, w) :: !enabled
  done;
  !enabled

let executed t v = t.executed.(v)
let num_executed t = t.n_executed
let complete t = t.n_executed = Dag.num_vertices t.dag
let final_executed t = t.executed.(Dag.final t.dag)
