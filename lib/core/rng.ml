(* splitmix64 (Steele, Lea & Flood 2014): tiny, fast, and splittable, which
   is exactly what per-worker deterministic streams need. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let make seed = { state = mix (Int64.of_int seed) }

let split t = { state = mix (next t) }

let bits64 t = next t

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let x = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  x mod bound

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)
