module Dag = Lhws_dag.Dag

type problem =
  | Not_executed of Dag.vertex
  | Executed_too_early of {
      vertex : Dag.vertex;
      parent : Dag.vertex;
      weight : int;
      parent_round : int;
      round : int;
    }
  | Worker_conflict of { worker : int; round : int }

let pp_problem ppf = function
  | Not_executed v -> Format.fprintf ppf "vertex %d was never executed" v
  | Executed_too_early { vertex; parent; weight; parent_round; round } ->
      Format.fprintf ppf
        "vertex %d executed at round %d, but parent %d (edge weight %d) executed at round %d: \
         earliest legal round is %d"
        vertex round parent weight parent_round (parent_round + weight)
  | Worker_conflict { worker; round } ->
      Format.fprintf ppf "worker %d executed more than one task in round %d" worker round

let problems g trace =
  let acc = ref [] in
  let add p = acc := p :: !acc in
  Dag.iter_vertices g (fun v ->
      let rv = Trace.round_of trace v in
      if rv < 0 then add (Not_executed v)
      else
        Array.iter
          (fun (u, w) ->
            let ru = Trace.round_of trace u in
            if ru < 0 || rv < ru + w then
              add (Executed_too_early { vertex = v; parent = u; weight = w; parent_round = ru; round = rv }))
          (Dag.in_edges g v));
  (* Worker/round uniqueness across dag-vertex and pfor executions. *)
  let seen = Hashtbl.create 1024 in
  let claim round worker =
    let key = (round, worker) in
    if Hashtbl.mem seen key then add (Worker_conflict { worker; round })
    else Hashtbl.add seen key ()
  in
  List.iter (fun (r, w, _) -> claim r w) (Trace.executions trace);
  List.iter (fun (r, w) -> claim r w) (Trace.pfor_executions trace);
  List.rev !acc

let valid g trace = problems g trace = []

let check_exn g trace =
  match problems g trace with
  | [] -> ()
  | p :: _ -> invalid_arg (Format.asprintf "Schedule.check: %a" pp_problem p)

let length trace =
  let last = ref (-1) in
  List.iter (fun (r, _, _) -> if r > !last then last := r) (Trace.executions trace);
  List.iter (fun (r, _) -> if r > !last then last := r) (Trace.pfor_executions trace);
  !last + 1
