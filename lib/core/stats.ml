type t = {
  mutable rounds : int;
  mutable workers : int;
  mutable vertices_executed : int;
  mutable pfor_executed : int;
  mutable steal_attempts : int;
  mutable steals_ok : int;
  mutable steals_batched : int;
  mutable tasks_stolen : int;
  mutable steal_latency_rounds : int;
  mutable switches : int;
  mutable blocked_rounds : int;
  mutable idle_rounds : int;
  mutable unavailable_rounds : int;
  mutable suspensions : int;
  mutable resumes : int;
  mutable pfor_batches : int;
  mutable deques_allocated : int;
  mutable max_deques_per_worker : int;
  mutable max_live_suspended : int;
  mutable fast_forwarded_rounds : int;
}

let create ~workers =
  {
    rounds = 0;
    workers;
    vertices_executed = 0;
    pfor_executed = 0;
    steal_attempts = 0;
    steals_ok = 0;
    steals_batched = 0;
    tasks_stolen = 0;
    steal_latency_rounds = 0;
    switches = 0;
    blocked_rounds = 0;
    idle_rounds = 0;
    unavailable_rounds = 0;
    suspensions = 0;
    resumes = 0;
    pfor_batches = 0;
    deques_allocated = 0;
    max_deques_per_worker = 0;
    max_live_suspended = 0;
    fast_forwarded_rounds = 0;
  }

let work_tokens t = t.vertices_executed + t.pfor_executed

let tokens t =
  work_tokens t + t.switches + t.steal_attempts + t.steal_latency_rounds + t.blocked_rounds
  + t.idle_rounds + t.unavailable_rounds

let balanced t = tokens t = t.workers * t.rounds

let to_assoc t =
  [
    ("rounds", t.rounds);
    ("workers", t.workers);
    ("vertices_executed", t.vertices_executed);
    ("pfor_executed", t.pfor_executed);
    ("steal_attempts", t.steal_attempts);
    ("steals_ok", t.steals_ok);
    ("steals_batched", t.steals_batched);
    ("tasks_stolen", t.tasks_stolen);
    ("steal_latency_rounds", t.steal_latency_rounds);
    ("switches", t.switches);
    ("blocked_rounds", t.blocked_rounds);
    ("idle_rounds", t.idle_rounds);
    ("unavailable_rounds", t.unavailable_rounds);
    ("suspensions", t.suspensions);
    ("resumes", t.resumes);
    ("pfor_batches", t.pfor_batches);
    ("deques_allocated", t.deques_allocated);
    ("max_deques_per_worker", t.max_deques_per_worker);
    ("max_live_suspended", t.max_live_suspended);
    ("fast_forwarded_rounds", t.fast_forwarded_rounds);
  ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-24s %d@," k v) (to_assoc t);
  Format.fprintf ppf "@]"
