type deque_state = Active | Ready | Suspended | Freed

type deque_view = {
  owner : int;
  state : deque_state;
  task_depths : int list;
  suspend_ctr : int;
  anchor_depth : int;
  anchor_round : int;
}

type t = {
  round : int;
  assigned_depths : (int * int) list;
  deques : deque_view list;
  live_suspended : int;
  steal_attempts : int;
}
