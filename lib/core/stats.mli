(** Execution counters for simulated schedules.

    The token fields mirror the accounting of Lemma 1: each worker places
    one token per round in the work, switch or steal bucket (plus blocked /
    idle buckets that only the blocking baseline uses).  After a run,
    [tokens t = workers * rounds] (see {!tokens} and {!balanced}). *)

type t = {
  mutable rounds : int;  (** rounds taken to completion *)
  mutable workers : int;  (** number of workers [P] *)
  mutable vertices_executed : int;  (** dag vertices executed (work [W]) *)
  mutable pfor_executed : int;  (** pfor-tree internal vertices executed *)
  mutable steal_attempts : int;  (** steal-bucket tokens (successful or not) *)
  mutable steals_ok : int;
  mutable steals_batched : int;
      (** successful steals that took more than one vertex
          ([Config.Steal_half] only) *)
  mutable tasks_stolen : int;
      (** total vertices moved by stealing; equals [steals_ok] under
          [Config.Steal_one] *)
  mutable steal_latency_rounds : int;
      (** rounds thieves spent occupied by steal transfer latency
          ([Config.t.steal_latency]; 0 at the default unit-cost steal) *)
  mutable switches : int;  (** deque-switch tokens *)
  mutable blocked_rounds : int;  (** rounds a worker spent blocked on latency (baseline WS only) *)
  mutable idle_rounds : int;  (** rounds with no action at all (should stay 0) *)
  mutable unavailable_rounds : int;
      (** rounds a worker was descheduled by the environment
          (multiprogrammed extension; 0 on a dedicated machine) *)
  mutable suspensions : int;  (** vertices that suspended on a heavy edge *)
  mutable resumes : int;  (** suspended vertices that resumed *)
  mutable pfor_batches : int;  (** resume batches injected as pfor trees *)
  mutable deques_allocated : int;  (** total distinct deque slots allocated *)
  mutable max_deques_per_worker : int;  (** max live (non-freed) deques owned by one worker at any time — Lemma 7 bounds this by [U + 1] *)
  mutable max_live_suspended : int;  (** max simultaneously suspended vertices — Section 2 bounds this by [U] *)
  mutable fast_forwarded_rounds : int;  (** rounds skipped by fast-forward (already included in [rounds]) *)
}

val create : workers:int -> t

val tokens : t -> int
(** Sum over all buckets (work + pfor + switch + steal + steal latency +
    blocked + idle). *)

val balanced : t -> bool
(** [tokens t = workers * rounds] — the invariant of Lemma 1's accounting. *)

val work_tokens : t -> int
(** [vertices_executed + pfor_executed], the quantity [W + Wpfor <= 2W]. *)

val pp : Format.formatter -> t -> unit

val to_assoc : t -> (string * int) list
(** Field names and values, for CSV-ish output. *)
