(** Result of a simulated execution. *)

type t = {
  rounds : int;  (** total scheduler rounds to completion *)
  stats : Stats.t;
  trace : Trace.t option;  (** present iff {!Config.t.trace} was set *)
}

val trace_exn : t -> Trace.t
(** @raise Invalid_argument if the run was not traced. *)
