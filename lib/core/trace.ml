module Dag = Lhws_dag.Dag

type t = {
  dag : Dag.t;
  round_of : int array;
  worker_of : int array;
  depth : int array;
  mutable execs_rev : (int * int * Dag.vertex) list;
  mutable pfor_rev : (int * int) list;
  mutable n_executed : int;
}

let create dag =
  let n = Dag.num_vertices dag in
  {
    dag;
    round_of = Array.make n (-1);
    worker_of = Array.make n (-1);
    depth = Array.make n (-1);
    execs_rev = [];
    pfor_rev = [];
    n_executed = 0;
  }

let record_exec t ~round ~worker v =
  t.round_of.(v) <- round;
  t.worker_of.(v) <- worker;
  t.execs_rev <- (round, worker, v) :: t.execs_rev;
  t.n_executed <- t.n_executed + 1

let record_pfor_exec t ~round ~worker = t.pfor_rev <- (round, worker) :: t.pfor_rev

let set_depth t v d = t.depth.(v) <- d

let round_of t v = t.round_of.(v)
let worker_of t v = t.worker_of.(v)
let depth_of t v = t.depth.(v)

let enabling_span t =
  let best = ref 0 in
  Array.iteri (fun v d -> if t.round_of.(v) >= 0 && d > !best then best := d) t.depth;
  !best

let executions t = List.rev t.execs_rev
let pfor_executions t = List.rev t.pfor_rev
let num_executed t = t.n_executed
