(** Execution traces: when and where each dag vertex executed, plus the
    enabling depths maintained per Section 4.1's enabling-tree
    construction.  Produced when {!Config.t.trace} is set; consumed by
    [lhws_analysis] and by {!Schedule.check}. *)

type t

val create : Lhws_dag.Dag.t -> t

val record_exec : t -> round:int -> worker:int -> Lhws_dag.Dag.vertex -> unit
val record_pfor_exec : t -> round:int -> worker:int -> unit

val set_depth : t -> Lhws_dag.Dag.vertex -> int -> unit
(** Enabling-tree depth of a vertex, set when it becomes ready. *)

val round_of : t -> Lhws_dag.Dag.vertex -> int
(** Round in which the vertex executed; [-1] if it never did. *)

val worker_of : t -> Lhws_dag.Dag.vertex -> int

val depth_of : t -> Lhws_dag.Dag.vertex -> int
(** Enabling-tree depth; [-1] if never set. *)

val enabling_span : t -> int
(** Maximum enabling depth over executed dag vertices — the quantity [S*]
    of Section 4.1 (the deepest enabling-tree vertex is always a dag
    vertex, per the proof of Corollary 1). *)

val executions : t -> (int * int * Lhws_dag.Dag.vertex) list
(** All [(round, worker, vertex)] executions in execution order. *)

val pfor_executions : t -> (int * int) list
(** All [(round, worker)] pfor-vertex executions in execution order. *)

val num_executed : t -> int
