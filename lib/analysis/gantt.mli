(** ASCII Gantt charts of traced schedules: one row per worker, one column
    per round.  Useful for eyeballing how the latency-hiding scheduler
    fills the gaps a blocking scheduler leaves.

    Cell legend: a letter or digit identifies the dag vertex executed
    (small dags only), ['#'] an unidentifiable vertex, ['*'] a pfor
    vertex, ['.'] nothing. *)

val render : workers:int -> ?max_columns:int -> Lhws_core.Trace.t -> string
(** Renders the first [max_columns] (default 120) rounds. *)

val render_run : workers:int -> ?max_columns:int -> Lhws_core.Run.t -> string
(** Convenience wrapper; requires a traced run.
    @raise Invalid_argument if the run was not traced. *)
