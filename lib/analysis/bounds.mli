(** Empirical verification of the paper's quantitative claims.

    Each predicate compares a measured run against the corresponding bound;
    [report] functions return the measured/bound ratio for tabulation. *)

(** Inputs shared by the checks: the dag's static measures and a run. *)
type instance = {
  work : int;  (** W *)
  span : int;  (** S, weighted *)
  suspension_width : int;  (** U (exact or closed-form) *)
  p : int;
  run : Lhws_core.Run.t;
}

val instance :
  ?suspension_width:int -> Lhws_dag.Dag.t -> p:int -> Lhws_core.Run.t -> instance
(** Packs an instance.  If [suspension_width] is omitted it is taken from
    {!Lhws_dag.Suspension.lower_bound_greedy} — fine for the generators
    with known closed forms; pass the exact value when it matters. *)

val lg : int -> float
(** [log2 (max 1 u)] — the [lg U] of the bounds, 0 when [U <= 1]. *)

(** {2 Theorem 1 — greedy schedules} *)

val greedy_bound : instance -> int
(** [W/P + S] (work term rounded up). *)

val greedy_ok : instance -> bool
(** Rounds of the run are within the Theorem 1 bound. *)

(** {2 Theorem 2 — LHWS round bound} *)

val lhws_bound : instance -> float
(** The Theorem 2 expression [W/P + S*U*(1 + lg U)] with no hidden
    constant.  The theorem asserts O(.) in expectation, so measured/bound
    ratios should be bounded by a modest constant across instances. *)

val lhws_ratio : instance -> float
(** [rounds /. lhws_bound] — tabulated in the benches; the paper's theorem
    holds if this stays below a fixed constant as instances scale. *)

(** {2 Lemma 1 — round accounting} *)

val lemma1_ok : instance -> bool
(** [rounds <= (4 W + R) / P] with [R] the measured steal attempts, and
    the token buckets balance. *)

(** {2 Lemma 7 — deques per worker} *)

val lemma7_ok : instance -> bool
(** Max live deques owned by one worker never exceeded [U + 1]. *)

(** {2 Section 2 — suspension width} *)

val width_ok : instance -> bool
(** Max simultaneously suspended vertices never exceeded [U]. *)

(** {2 Corollary 1 — enabling span} *)

val enabling_span_bound : instance -> float
(** [2 S (1 + lg U)]. *)

val corollary1_ok : instance -> bool
(** Measured enabling span of a traced run is within
    {!enabling_span_bound}.  Requires a traced run. *)

val pfor_work_ok : instance -> bool
(** [W + Wpfor <= 2 W] (the pfor-tree accounting inside Lemma 1). *)
