(** The potential function of Section 4.1/4.2, computed over scheduler
    snapshots.

    A vertex at enabling-tree depth [d] has weight [w = s_star - d] and
    potential [3^(2w)] (or [3^(2w - 1)] while assigned).  A non-active
    deque with suspended vertices carries extra potential
    [2 * 3^(2 w(v) - 2j)], where [v] is its bottom vertex (or the last
    vertex executed from it if empty) and [j] the rounds since [v] was
    added (executed).

    Potentials are computed in floating point; they are exact for
    [s_star <= 26] and monotonicity checks remain meaningful beyond that.
    Use small dags for exact lemma verification. *)

val phi : s_star:int -> assigned:bool -> int -> float
(** [phi ~s_star ~assigned d] is the potential of one task at depth [d]. *)

val deque_potential : s_star:int -> round:int -> Lhws_core.Snapshot.deque_view -> float
(** Task potentials plus the extra potential, per the definition. *)

val total : s_star:int -> Lhws_core.Snapshot.t -> float
(** [Phi_i]: assigned tasks + all deques. *)

val top_heavy_violations : s_star:int -> Lhws_core.Snapshot.t -> int
(** Number of ready (non-active, non-empty) deques whose top task carries
    less than [2/3] of the deque's task potential — Lemma 3 says this is
    always [0]. *)

type monotonicity = {
  rounds_checked : int;
  violations : int;  (** rounds where [Phi] increased (Lemma 5 says 0) *)
  max_increase_ratio : float;  (** worst [Phi_{i+1} / Phi_i]; [<= 1.0] iff no violations *)
  initial : float;
  final : float;
}

val check_monotone : float list -> monotonicity
(** Folds a per-round potential series (as collected by an observer). *)

type exec_decrease = {
  pairs_checked : int;  (** consecutive snapshot pairs with assigned tasks *)
  violations : int;
      (** pairs where [Phi_i - Phi_{i+1} < 5/9 * sum of assigned potentials]
          — Lemma 4 (aggregated over the round's assigned tasks) says 0,
          up to the reconstruction's approximations *)
}

val check_lemma4 : s_star:int -> Lhws_core.Snapshot.t list -> exec_decrease
(** Folds consecutive snapshots: whenever round [i] has assigned tasks,
    the total potential must drop by at least [5/9] of their combined
    potential by round [i+1]. *)

type phase_report = {
  phases : int;  (** complete phases of [>= p * (u + 1)] steal attempts *)
  successful : int;  (** phases whose total potential dropped by [>= 2/9]
                         of the ready-deque potential at the phase start *)
  fraction : float;
}

val ready_deque_potential : s_star:int -> Lhws_core.Snapshot.t -> float
(** [Phi_i(D_i)]: potential carried by non-active, non-empty deques — the
    part steals attack. *)

val phase_report :
  s_star:int -> p:int -> u:int -> Lhws_core.Snapshot.t list -> phase_report
(** Segments a run into Lemma 8 phases (at least [p * (u + 1)] steal
    attempts each) and counts how many were {e successful} in the lemma's
    sense.  The lemma proves success probability [> 1/4] per phase; the
    measured fraction should comfortably exceed a small constant. *)

(** {2 Lemma 6 — balls and weighted bins} *)

val balls_in_bins_trial : Lhws_core.Rng.t -> weights:float array -> float
(** One trial: throw [P] balls into [P] weighted bins uniformly; return the
    total weight of hit bins. *)

val balls_in_bins_success_rate :
  Lhws_core.Rng.t -> weights:float array -> beta:float -> trials:int -> float
(** Fraction of trials with hit weight [>= beta * total].  Lemma 6:
    for [0 < beta < 1] this exceeds [1 - 1/((1-beta) e)]. *)
