open Lhws_core

let pow3 e = 3. ** float_of_int e

let phi ~s_star ~assigned d =
  let w = s_star - d in
  pow3 ((2 * w) - if assigned then 1 else 0)

let task_potentials ~s_star (d : Snapshot.deque_view) =
  List.fold_left (fun acc depth -> acc +. phi ~s_star ~assigned:false depth) 0. d.task_depths

let extra_potential ~s_star ~round (d : Snapshot.deque_view) =
  match d.state with
  | Snapshot.Active | Snapshot.Freed -> 0.
  | Snapshot.Ready | Snapshot.Suspended ->
      if d.suspend_ctr = 0 then 0.
      else
        let w = s_star - d.anchor_depth in
        let j = max 0 (round - d.anchor_round) in
        2. *. pow3 ((2 * w) - (2 * j))

let deque_potential ~s_star ~round d = task_potentials ~s_star d +. extra_potential ~s_star ~round d

let total ~s_star (s : Snapshot.t) =
  let assigned =
    List.fold_left (fun acc (_, d) -> acc +. phi ~s_star ~assigned:true d) 0. s.assigned_depths
  in
  List.fold_left (fun acc d -> acc +. deque_potential ~s_star ~round:s.round d) assigned s.deques

let top_heavy_violations ~s_star (s : Snapshot.t) =
  List.fold_left
    (fun acc (d : Snapshot.deque_view) ->
      match (d.state, d.task_depths) with
      | (Snapshot.Ready | Snapshot.Suspended), (_ :: _ as depths) ->
          let top = List.nth depths (List.length depths - 1) in
          let top_phi = phi ~s_star ~assigned:false top in
          let all = task_potentials ~s_star d in
          if top_phi < (2. /. 3.) *. all -. 1e-9 then acc + 1 else acc
      | _ -> acc)
    0 s.deques

type monotonicity = {
  rounds_checked : int;
  violations : int;
  max_increase_ratio : float;
  initial : float;
  final : float;
}

let check_monotone = function
  | [] -> { rounds_checked = 0; violations = 0; max_increase_ratio = 0.; initial = 0.; final = 0. }
  | first :: _ as series ->
      let rec go prev rest acc =
        match rest with
        | [] -> acc
        | x :: rest ->
            let acc =
              let ratio = if prev > 0. then x /. prev else if x > 0. then infinity else 1. in
              {
                acc with
                rounds_checked = acc.rounds_checked + 1;
                violations = (acc.violations + if x > prev +. 1e-9 then 1 else 0);
                max_increase_ratio = max acc.max_increase_ratio ratio;
                final = x;
              }
            in
            go x rest acc
      in
      go first (List.tl series)
        {
          rounds_checked = 0;
          violations = 0;
          max_increase_ratio = 0.;
          initial = first;
          final = first;
        }

let ready_deque_potential ~s_star (s : Snapshot.t) =
  List.fold_left
    (fun acc (d : Snapshot.deque_view) ->
      match d.state with
      | Snapshot.Ready | Snapshot.Suspended ->
          if d.task_depths = [] then acc else acc +. task_potentials ~s_star d
      | Snapshot.Active | Snapshot.Freed -> acc)
    0. s.deques

type phase_report = { phases : int; successful : int; fraction : float }

let phase_report ~s_star ~p ~u snapshots =
  let quota = p * (u + 1) in
  let rec go start rest acc =
    match rest with
    | [] -> acc
    | (s : Snapshot.t) :: tail ->
        if s.Snapshot.steal_attempts - start.Snapshot.steal_attempts >= quota then begin
          let target = 2. /. 9. *. ready_deque_potential ~s_star start in
          let drop = total ~s_star start -. total ~s_star s in
          let acc =
            {
              acc with
              phases = acc.phases + 1;
              successful = (acc.successful + if drop +. 1e-9 >= target then 1 else 0);
            }
          in
          go s tail acc
        end
        else go start tail acc
  in
  match snapshots with
  | [] -> { phases = 0; successful = 0; fraction = 0. }
  | first :: rest ->
      let acc = go first rest { phases = 0; successful = 0; fraction = 0. } in
      { acc with fraction = (if acc.phases = 0 then 0. else float_of_int acc.successful /. float_of_int acc.phases) }

type exec_decrease = { pairs_checked : int; violations : int }

let check_lemma4 ~s_star snapshots =
  let rec go acc = function
    | (a : Snapshot.t) :: (b :: _ as rest) ->
        let acc =
          if a.assigned_depths = [] then acc
          else begin
            let assigned_phi =
              List.fold_left
                (fun sum (_, d) -> sum +. phi ~s_star ~assigned:true d)
                0. a.assigned_depths
            in
            let drop = total ~s_star a -. total ~s_star b in
            {
              pairs_checked = acc.pairs_checked + 1;
              violations =
                (acc.violations
                + if drop +. 1e-9 < 5. /. 9. *. assigned_phi then 1 else 0);
            }
          end
        in
        go acc rest
    | _ -> acc
  in
  go { pairs_checked = 0; violations = 0 } snapshots

let balls_in_bins_trial rng ~weights =
  let p = Array.length weights in
  let hit = Array.make p false in
  for _ = 1 to p do
    hit.(Rng.int rng p) <- true
  done;
  let acc = ref 0. in
  Array.iteri (fun i w -> if hit.(i) then acc := !acc +. w) weights;
  !acc

let balls_in_bins_success_rate rng ~weights ~beta ~trials =
  let total = Array.fold_left ( +. ) 0. weights in
  let succ = ref 0 in
  for _ = 1 to trials do
    if balls_in_bins_trial rng ~weights >= beta *. total then incr succ
  done;
  float_of_int !succ /. float_of_int trials
