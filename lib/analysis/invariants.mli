(** Per-vertex checks of the enabling-tree invariants (Lemma 2, condition 1
    and Corollary 1) on traced runs: every executed vertex's enabling-tree
    depth [d(v)] should satisfy [d(v) <= (2 + lg U) * d_G(v)]. *)

type depth_report = {
  vertices : int;  (** executed vertices with both depths known *)
  max_ratio : float;  (** max over vertices of [d(v) / d_G(v)] ([d_G > 0]) *)
  bound : float;  (** [2 + lg U] *)
  violations : int;  (** vertices with [d(v)] above the bound *)
  enabling_span : int;  (** measured [S*] *)
  span : int;  (** weighted dag span [S] *)
}

val depth_report :
  ?suspension_width:int -> Lhws_dag.Dag.t -> Lhws_core.Trace.t -> depth_report
(** Computes the report; [suspension_width] defaults to
    {!Lhws_dag.Suspension.lower_bound_greedy}. *)

val lemma2_ok : depth_report -> bool
(** No per-vertex violations. *)

val pp_depth_report : Format.formatter -> depth_report -> unit

val deque_order_violations : Lhws_core.Snapshot.t -> int
(** Lemma 2, condition 5 (as reflected in enabling depths): within any
    deque, enabling-tree depths must weakly decrease from bottom to top
    (the topmost task is the shallowest / heaviest).  Returns the number
    of deques violating this in the snapshot; Lemma 2 says 0. *)
