open Lhws_core

let ps_of = function
  | [] -> []
  | first :: _ -> List.map (fun (pt : Sweep.point) -> pt.Sweep.p) first.Sweep.points

let check_aligned series =
  let ps = ps_of series in
  List.iter
    (fun (s : Sweep.series) ->
      if List.map (fun (pt : Sweep.point) -> pt.Sweep.p) s.Sweep.points <> ps then
        invalid_arg "Report: series cover different worker counts")
    series

let row_cells series i =
  List.concat_map
    (fun (s : Sweep.series) ->
      let pt = List.nth s.Sweep.points i in
      [ string_of_int pt.Sweep.rounds; Printf.sprintf "%.3f" pt.Sweep.speedup ])
    series

let header_cells series =
  List.concat_map
    (fun (s : Sweep.series) ->
      let n = Sweep.algo_name s.Sweep.algo in
      [ n ^ "_rounds"; n ^ "_speedup" ])
    series

let csv_of_series series =
  check_aligned series;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," ("p" :: header_cells series));
  Buffer.add_char buf '\n';
  List.iteri
    (fun i p ->
      Buffer.add_string buf (String.concat "," (string_of_int p :: row_cells series i));
      Buffer.add_char buf '\n')
    (ps_of series);
  Buffer.contents buf

let markdown_of_series series =
  check_aligned series;
  let buf = Buffer.create 256 in
  let cells = "p" :: header_cells series in
  Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n");
  Buffer.add_string buf ("|" ^ String.concat "|" (List.map (fun _ -> "---") cells) ^ "|\n");
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        ("| " ^ String.concat " | " (string_of_int p :: row_cells series i) ^ " |\n"))
    (ps_of series);
  Buffer.contents buf

let stats_columns stats = List.map fst (Stats.to_assoc stats)

let csv_of_stats rows =
  let buf = Buffer.create 256 in
  (match rows with
  | [] -> ()
  | (_, first) :: _ ->
      Buffer.add_string buf (String.concat "," ("run" :: stats_columns first));
      Buffer.add_char buf '\n';
      List.iter
        (fun (label, stats) ->
          let values = List.map (fun (_, v) -> string_of_int v) (Stats.to_assoc stats) in
          Buffer.add_string buf (String.concat "," (label :: values));
          Buffer.add_char buf '\n')
        rows);
  Buffer.contents buf

let markdown_of_stats rows =
  let buf = Buffer.create 256 in
  (match rows with
  | [] -> ()
  | (_, first) :: _ ->
      let cells = "run" :: stats_columns first in
      Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n");
      Buffer.add_string buf ("|" ^ String.concat "|" (List.map (fun _ -> "---") cells) ^ "|\n");
      List.iter
        (fun (label, stats) ->
          let values = List.map (fun (_, v) -> string_of_int v) (Stats.to_assoc stats) in
          Buffer.add_string buf ("| " ^ String.concat " | " (label :: values) ^ " |\n"))
        rows);
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
