module Dag = Lhws_dag.Dag
module Metrics = Lhws_dag.Metrics
module Suspension = Lhws_dag.Suspension
open Lhws_core

type depth_report = {
  vertices : int;
  max_ratio : float;
  bound : float;
  violations : int;
  enabling_span : int;
  span : int;
}

let depth_report ?suspension_width dag trace =
  let u =
    match suspension_width with Some u -> u | None -> Suspension.lower_bound_greedy dag
  in
  let bound = 2. +. Bounds.lg u in
  let dg = Metrics.weighted_depth dag in
  let vertices = ref 0 and max_ratio = ref 0. and violations = ref 0 in
  Dag.iter_vertices dag (fun v ->
      let d = Trace.depth_of trace v in
      if Trace.round_of trace v >= 0 && d >= 0 && dg.(v) > 0 then begin
        incr vertices;
        let ratio = float_of_int d /. float_of_int dg.(v) in
        if ratio > !max_ratio then max_ratio := ratio;
        if ratio > bound +. 1e-9 then incr violations
      end);
  {
    vertices = !vertices;
    max_ratio = !max_ratio;
    bound;
    violations = !violations;
    enabling_span = Trace.enabling_span trace;
    span = Metrics.span dag;
  }

let lemma2_ok r = r.violations = 0

let deque_order_violations (s : Snapshot.t) =
  List.fold_left
    (fun acc (d : Snapshot.deque_view) ->
      (* task_depths is bottom-to-top; require weakly decreasing. *)
      let rec ordered = function
        | a :: (b :: _ as rest) -> a >= b && ordered rest
        | _ -> true
      in
      if ordered d.task_depths then acc else acc + 1)
    0 s.deques

let pp_depth_report ppf r =
  Format.fprintf ppf
    "@[<v>vertices checked: %d@,max d(v)/d_G(v): %.3f (bound %.3f)@,violations: %d@,S* = %d, S = \
     %d, S*/S = %.3f@]"
    r.vertices r.max_ratio r.bound r.violations r.enabling_span r.span
    (if r.span > 0 then float_of_int r.enabling_span /. float_of_int r.span else 0.)
