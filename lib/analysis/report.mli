(** Export of experiment results: CSV for plotting, markdown for docs.

    Used by the CLI's [--csv] outputs and by the bench harness; kept here
    so downstream users can post-process sweeps without scraping stdout. *)

val csv_of_series : Lhws_core.Sweep.series list -> string
(** One row per worker count: [p,<algo> rounds,<algo> speedup,...].
    All series must share the same worker counts. *)

val markdown_of_series : Lhws_core.Sweep.series list -> string
(** The same table as GitHub-flavoured markdown. *)

val csv_of_stats : (string * Lhws_core.Stats.t) list -> string
(** One row per labelled run, one column per counter. *)

val markdown_of_stats : (string * Lhws_core.Stats.t) list -> string

val write_file : string -> string -> unit
(** [write_file path contents]. *)
