module Metrics = Lhws_dag.Metrics
module Suspension = Lhws_dag.Suspension
open Lhws_core

type instance = {
  work : int;
  span : int;
  suspension_width : int;
  p : int;
  run : Run.t;
}

let instance ?suspension_width dag ~p run =
  let suspension_width =
    match suspension_width with Some u -> u | None -> Suspension.lower_bound_greedy dag
  in
  { work = Metrics.work dag; span = Metrics.span dag; suspension_width; p; run }

let lg u = if u <= 1 then 0. else log (float_of_int u) /. log 2.

let greedy_bound i = ((i.work + i.p - 1) / i.p) + i.span

let greedy_ok i = i.run.Run.rounds <= greedy_bound i

let lhws_bound i =
  let u = max 1 i.suspension_width in
  (float_of_int i.work /. float_of_int i.p)
  +. (float_of_int i.span *. float_of_int u *. (1. +. lg u))

let lhws_ratio i = float_of_int i.run.Run.rounds /. lhws_bound i

let lemma1_ok i =
  let s = i.run.Run.stats in
  Stats.balanced s
  && i.run.Run.rounds * i.p <= (4 * i.work) + s.Stats.steal_attempts + s.Stats.blocked_rounds
     + s.Stats.idle_rounds

let lemma7_ok i = i.run.Run.stats.Stats.max_deques_per_worker <= i.suspension_width + 1

let width_ok i = i.run.Run.stats.Stats.max_live_suspended <= i.suspension_width

let enabling_span_bound i =
  2. *. float_of_int i.span *. (1. +. lg (max 1 i.suspension_width))

let corollary1_ok i =
  let tr = Run.trace_exn i.run in
  float_of_int (Trace.enabling_span tr) <= enabling_span_bound i

let pfor_work_ok i =
  let s = i.run.Run.stats in
  s.Stats.vertices_executed + s.Stats.pfor_executed <= 2 * i.work
