open Lhws_core

let glyph v =
  if v < 10 then Char.chr (Char.code '0' + v)
  else if v < 36 then Char.chr (Char.code 'a' + v - 10)
  else if v < 62 then Char.chr (Char.code 'A' + v - 36)
  else '#'

let render ~workers ?(max_columns = 120) trace =
  let last =
    List.fold_left (fun acc (r, _, _) -> max acc r) (-1) (Trace.executions trace)
  in
  let last =
    List.fold_left (fun acc (r, _) -> max acc r) last (Trace.pfor_executions trace)
  in
  let columns = min (last + 1) max_columns in
  if columns <= 0 then "(empty trace)\n"
  else begin
    let grid = Array.make_matrix workers columns '.' in
    List.iter
      (fun (round, worker, vertex) ->
        if round < columns && worker < workers then grid.(worker).(round) <- glyph vertex)
      (Trace.executions trace);
    List.iter
      (fun (round, worker) ->
        if round < columns && worker < workers then grid.(worker).(round) <- '*')
      (Trace.pfor_executions trace);
    let buf = Buffer.create ((workers + 1) * (columns + 8)) in
    (* round ruler, every 10 columns *)
    Buffer.add_string buf "      ";
    for c = 0 to columns - 1 do
      Buffer.add_char buf (if c mod 10 = 0 then '|' else ' ')
    done;
    Buffer.add_char buf '\n';
    Array.iteri
      (fun w row ->
        Buffer.add_string buf (Printf.sprintf "w%-4d " w);
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    if last + 1 > columns then
      Buffer.add_string buf (Printf.sprintf "(… %d more rounds)\n" (last + 1 - columns));
    Buffer.contents buf
  end

let render_run ~workers ?max_columns run = render ~workers ?max_columns (Run.trace_exn run)
