(** Cache-line padding for hot heap blocks, pre-[Atomic.make_contended]
    (OCaml < 5.2).  Used to keep a deque's [top], [bottom] and buffer
    pointer — written by different domains — off each other's cache
    lines. *)

val copy_as_padded : 'a -> 'a
(** A shallow copy of the block with enough trailing padding words that
    its payload cannot share a cache line with the payload of another
    padded block.  Immediates and unscannable blocks are returned as-is.
    Call at construction time only (the copy is not atomic). *)

val make_atomic : 'a -> 'a Atomic.t
(** [Atomic.make] onto its own cache line. *)
