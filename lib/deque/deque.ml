(* Circular buffer: elements occupy indices [top, bottom) modulo capacity.
   [top] and [bottom] grow monotonically (absolute positions), which keeps
   the index arithmetic free of wrap-around special cases. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;
  mutable bottom : int;
}

let create ?(capacity = 8) () =
  let capacity = max capacity 1 in
  { buf = Array.make capacity None; top = 0; bottom = 0 }

let length d = d.bottom - d.top
let is_empty d = d.bottom = d.top

let grow d =
  let old = d.buf in
  let old_cap = Array.length old in
  let buf = Array.make (2 * old_cap) None in
  for i = d.top to d.bottom - 1 do
    buf.(i mod (2 * old_cap)) <- old.(i mod old_cap)
  done;
  d.buf <- buf

let push_bottom d x =
  if length d = Array.length d.buf then grow d;
  d.buf.(d.bottom mod Array.length d.buf) <- Some x;
  d.bottom <- d.bottom + 1

let pop_bottom d =
  if is_empty d then None
  else begin
    d.bottom <- d.bottom - 1;
    let i = d.bottom mod Array.length d.buf in
    let x = d.buf.(i) in
    d.buf.(i) <- None;
    x
  end

let pop_top d =
  if is_empty d then None
  else begin
    let i = d.top mod Array.length d.buf in
    let x = d.buf.(i) in
    d.buf.(i) <- None;
    d.top <- d.top + 1;
    x
  end

let peek_top d = if is_empty d then None else d.buf.(d.top mod Array.length d.buf)

let peek_bottom d =
  if is_empty d then None else d.buf.((d.bottom - 1) mod Array.length d.buf)

let clear d =
  Array.fill d.buf 0 (Array.length d.buf) None;
  d.top <- 0;
  d.bottom <- 0

let to_list d =
  let rec go i acc =
    if i < d.top then acc
    else
      match d.buf.(i mod Array.length d.buf) with
      | Some x -> go (i - 1) (x :: acc)
      | None -> assert false
  in
  go (d.bottom - 1) []

let of_list xs =
  let d = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push_bottom d) xs;
  d
