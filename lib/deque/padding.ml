(* OCaml 5.1 has no [Atomic.make_contended], so false sharing between hot
   atomics is avoided the way Saturn/multicore-magic did before 5.2: copy
   the freshly allocated block into one with trailing padding words, so
   the payload of two padded blocks can never share a 64-byte cache line.
   The extra fields are ordinary immediates ([Obj.new_block] initialises
   scannable blocks with unit), so the GC is unaffected.

   Only safe on blocks whose primitives address fields by index from the
   front (records, atomics): the copy preserves every real field and the
   padding is never read. *)

(* 15 words = 120 bytes of padding on 64-bit, so payloads of consecutively
   allocated padded blocks sit at least a full line apart. *)
let padding_words = 15

let copy_as_padded (o : 'a) : 'a =
  let r = Obj.repr o in
  if (not (Obj.is_block r)) || Obj.tag r >= Obj.no_scan_tag then o
  else begin
    let n = Obj.size r in
    let padded = Obj.new_block (Obj.tag r) (n + padding_words) in
    for i = 0 to n - 1 do
      Obj.set_field padded i (Obj.field r i)
    done;
    Obj.magic padded
  end

let make_atomic v = copy_as_padded (Atomic.make v)
