(** Sequential double-ended queue with the work-stealing interface of
    Table 1: the owner pushes and pops at the bottom, thieves pop at the
    top.  Backed by a growable circular buffer; all operations are O(1)
    amortized.  Used by the discrete-time simulator, where rounds serialize
    all access. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val push_bottom : 'a t -> 'a -> unit

val pop_bottom : 'a t -> 'a option
(** Removes and returns the bottom (most recently pushed) element. *)

val pop_top : 'a t -> 'a option
(** Removes and returns the top (oldest) element — the steal operation. *)

val peek_top : 'a t -> 'a option
val peek_bottom : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements from top to bottom (steal order).  For tests and debugging. *)

val of_list : 'a list -> 'a t
(** Builds a deque whose top-to-bottom order is the list order. *)
