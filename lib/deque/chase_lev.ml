(* The classical Chase-Lev deque with a growable circular buffer.  [top] is
   the steal end, [bottom] the owner's end; both are monotonically
   increasing absolute indices.  OCaml's [Atomic] gives sequentially
   consistent reads/writes, which subsumes the fences of the C11 version
   (Le et al., PPoPP 2013).

   Three deviations from the textbook layout, all for the hot paths:

   - Slots hold the elements directly, with a private sentinel standing in
     for "empty", instead of ['a option] — a push is then a plain array
     store, not a [Some] allocation per element.  The sentinel is a block
     allocated once below, so no legitimate element can alias it, and slots
     are reset to it after a pop so the deque never retains dead values.

   - The owner keeps a non-atomic [top_cache], a lower bound on [top]
     ([top] is monotone, so any stale read underestimates the free space
     and never overestimates it).  [push_bottom] consults the atomic [top]
     only when the cached bound says the buffer might be full, removing an
     atomic load (a guaranteed cache miss under active stealing) from the
     common push.

   - [top], [bottom] and the buffer pointer live on separate cache lines
     (see {!Padding}): thieves hammer [top] with CASes while the owner
     writes [bottom] on every push/pop, and sharing a line would make each
     side's writes invalidate the other's reads.

   Grow publishes a new buffer via an atomic reference.  A thief may read
   an element from a stale buffer; this is safe because grow copies the
   live range [top, bottom) and the owner never overwrites live slots of
   the old buffer afterwards (it writes only to the new buffer), so the
   stale slot still holds the element the thief's successful CAS on [top]
   entitles it to. *)

type 'a buffer = { mask : int; slots : 'a array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
  mutable top_cache : int;  (* owner only: lower bound on [top] *)
}

(* A unique block no caller can ever push (the ref is never exported).
   [Obj.magic] at the element type is safe because every slot holding the
   sentinel is, by the index arithmetic, never returned as an element.

   Because the sentinel is a non-float block, [Array.make] below builds a
   boxed array even at element type [float] — never a flat float array.
   That is sound only while every slot access in this file stays
   polymorphic (generic array primitives dispatch on the array tag at
   runtime); do not monomorphise this module at [float] or add
   float-array-specialised unsafe accesses (see the .mli). *)
let sentinel : Obj.t = Obj.repr (ref ())

let dummy () : 'a = Obj.magic sentinel

let make_buffer capacity = { mask = capacity - 1; slots = Array.make capacity (dummy ()) }

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 16) () =
  let capacity = round_pow2 (max capacity 2) in
  Padding.copy_as_padded
    {
      top = Padding.make_atomic 0;
      bottom = Padding.make_atomic 0;
      buf = Padding.make_atomic (make_buffer capacity);
      top_cache = 0;
    }

let buffer_get buf i = buf.slots.(i land buf.mask)
let buffer_set buf i x = buf.slots.(i land buf.mask) <- x

let grow d top bottom =
  let old = Atomic.get d.buf in
  let nbuf = make_buffer (2 * (old.mask + 1)) in
  for i = top to bottom - 1 do
    buffer_set nbuf i (buffer_get old i)
  done;
  Atomic.set d.buf nbuf;
  nbuf

let push_bottom d x =
  let b = Atomic.get d.bottom in
  let buf = Atomic.get d.buf in
  let buf =
    (* Fast path: the cached lower bound on [top] already proves there is
       room, so the atomic [top] is not read at all. *)
    if b - d.top_cache <= buf.mask then buf
    else begin
      let t = Atomic.get d.top in
      d.top_cache <- t;
      if b - t > buf.mask then grow d t b else buf
    end
  in
  buffer_set buf b x;
  Atomic.set d.bottom (b + 1)

let pop_bottom d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  d.top_cache <- t;
  if b < t then begin
    (* Empty: restore bottom. *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let buf = Atomic.get d.buf in
    let x = buffer_get buf b in
    if b > t then begin
      buffer_set buf b (dummy ());
      Some x
    end
    else begin
      (* Last element: race thieves for it by advancing top. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      d.top_cache <- t + 1;
      if won then begin
        buffer_set buf b (dummy ());
        Some x
      end
      else None
    end
  end

let steal d =
  (* [top] before [bottom]: the SC argument for pop/steal non-duplication
     depends on this read order. *)
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get d.buf in
    let x = buffer_get buf t in
    if Atomic.compare_and_set d.top t (t + 1) then Some x else None
  end

(* Batched steal: take up to half of the visible [top, bottom) range in
   one call, oldest first, one CAS per element.

   Why not one CAS reserving the whole range (top: t -> t + k)?  Because
   the owner's [pop_bottom] plain-takes any slot strictly above the [top]
   it read, with no synchronization.  A thief that read (t, b), stalled,
   and then range-CASed t -> t+k can succeed even though the owner has
   meanwhile popped (and reset to the sentinel, or reused for later
   pushes) slots inside [t, t+k): elements get lost and duplicated.  The
   classical Chase-Lev steal is safe precisely because its CAS protects
   only index [t] — the one slot the owner can never plain-take.  So a
   correct batch over this deque reserves each element with its own CAS
   (as crossbeam's steal_batch does for LIFO workers); the win over k
   calls to [steal] is one victim scan, one [bottom] read, and no
   re-entry into victim selection between elements, not fewer CASes.
   The broken single-CAS variant is kept in the mutation suite
   (test/prop/test_stress.ml) as proof the stress battery catches it.

   The split is ceil(n/2) of the observed size: a victim observed with
   1 task still yields that task (degenerating to [steal]), and the
   owner is always left the newer half, preserving its LIFO locality.
   The batch aborts at the first lost CAS race; elements already handed
   to [f] are validly owned.  Each element is read from the current
   buffer before its CAS, under the same stale-buffer argument as
   [steal] (grow copies the live range; a successful CAS on [top]
   entitles the thief to the value it read). *)
let steal_half d f =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  let n = b - t in
  if n <= 0 then 0
  else begin
    let want = (n + 1) / 2 in
    let rec go i =
      if i >= want then i
      else begin
        let buf = Atomic.get d.buf in
        let x = buffer_get buf (t + i) in
        if Atomic.compare_and_set d.top (t + i) (t + i + 1) then begin
          f x;
          go (i + 1)
        end
        else i
      end
    in
    go 0
  end

let size d =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  max 0 (b - t)

let is_empty d = size d = 0
