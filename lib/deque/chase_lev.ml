(* The classical Chase-Lev deque with a growable circular buffer.  [top] is
   the steal end, [bottom] the owner's end; both are monotonically
   increasing absolute indices.  OCaml's [Atomic] gives sequentially
   consistent reads/writes, which subsumes the fences of the C11 version
   (Le et al., PPoPP 2013).

   Grow publishes a new buffer via an atomic reference.  A thief may read
   an element from a stale buffer; this is safe because grow copies the
   live range [top, bottom) and the owner never overwrites live slots of
   the old buffer afterwards (it writes only to the new buffer), so the
   stale slot still holds the element the thief's successful CAS on [top]
   entitles it to. *)

type 'a buffer = { mask : int; slots : 'a option array }

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let make_buffer capacity = { mask = capacity - 1; slots = Array.make capacity None }

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 16) () =
  let capacity = round_pow2 (max capacity 2) in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer capacity) }

let buffer_get buf i = buf.slots.(i land buf.mask)
let buffer_set buf i x = buf.slots.(i land buf.mask) <- x

let grow d top bottom =
  let old = Atomic.get d.buf in
  let nbuf = make_buffer (2 * (old.mask + 1)) in
  for i = top to bottom - 1 do
    buffer_set nbuf i (buffer_get old i)
  done;
  Atomic.set d.buf nbuf;
  nbuf

let push_bottom d x =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let buf = Atomic.get d.buf in
  let buf = if b - t > buf.mask then grow d t b else buf in
  buffer_set buf b (Some x);
  Atomic.set d.bottom (b + 1)

let pop_bottom d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Empty: restore bottom. *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let buf = Atomic.get d.buf in
    let x = buffer_get buf b in
    if b > t then begin
      buffer_set buf b None;
      x
    end
    else begin
      (* Last element: race thieves for it by advancing top. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        buffer_set buf b None;
        x
      end
      else None
    end
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get d.buf in
    let x = buffer_get buf t in
    if Atomic.compare_and_set d.top t (t + 1) then x else None
  end

let size d =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  max 0 (b - t)

let is_empty d = size d = 0
