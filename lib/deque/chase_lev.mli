(** Lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005),
    adapted to OCaml 5 [Atomic] (sequentially consistent operations).

    Ownership discipline: exactly one domain (the owner) may call
    {!push_bottom} and {!pop_bottom}; any number of domains may call
    {!steal} concurrently.  This matches the algorithm's setting, where
    "each deque is always owned by the same single worker" (Section 3).

    The buffer grows automatically; elements are never overwritten while a
    concurrent thief may still read them, relying on garbage collection for
    reclamation (the classical GC-based variant of the algorithm).

    Layout: slots are unboxed (a private sentinel marks empty slots, so
    pushes allocate nothing), the owner caches a lower bound on [top] to
    skip the atomic read on non-full pushes, and [top]/[bottom]/the buffer
    pointer are padded onto separate cache lines.

    Constraint: because the sentinel is a non-float block, a [float t]'s
    slot array is boxed, {e never} a flat float array.  Every slot access
    must stay polymorphic (generic [Array.get]/[Array.set], which test the
    array tag at runtime); monomorphising the implementation at [float],
    or reaching into the buffer with float-array-specialised unsafe
    accessors, would read the sentinel as a [float] and is memory-unsafe. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 16) is rounded up to a power of two. *)

val push_bottom : 'a t -> 'a -> unit
(** Owner only. *)

val pop_bottom : 'a t -> 'a option
(** Owner only.  Takes the most recently pushed element; loses the race to
    a concurrent thief on the last element at most once. *)

val steal : 'a t -> 'a option
(** Any domain.  Takes the oldest element, or [None] if the deque is empty
    or the CAS race was lost (callers should retry elsewhere, as a failed
    steal attempt). *)

val steal_half : 'a t -> ('a -> unit) -> int
(** Any domain.  Batched steal: takes up to ceil(n/2) of the observed
    [n]-element range, oldest first, calling [f] on each element in steal
    order, and returns how many were taken (0 when empty or the first
    race was lost).  Each element is reserved with its own CAS on the
    steal index — a single CAS reserving the whole range is unsound
    against the owner's unsynchronized [pop_bottom] (see the
    implementation comment) — so the batch may stop short at the first
    lost race; elements already passed to [f] are owned exactly once.
    The saving over repeated {!steal} is one victim scan and one
    [bottom] read per batch, which is what matters when the steal itself
    is the expensive operation. *)

val size : 'a t -> int
(** Snapshot size; may be stale under concurrency.  Never negative. *)

val is_empty : 'a t -> bool
(** Snapshot emptiness; may be stale under concurrency. *)
