(** Standard (non-latency-hiding) work-stealing pool: the baseline.

    A single-deque policy over the shared {!Scheduler_core} engine: one
    Chase–Lev deque per worker; tasks run to completion.  A
    latency-incurring operation ({!sleep}) blocks the whole worker domain
    — the semantics the paper's evaluation compares against.  Joining an
    unresolved promise does not suspend (there are no suspendable fibers
    here); the worker instead helps by running other tasks, the classic
    work-first join.

    The API mirrors {!Lhws_pool} so workloads can be written once against
    either pool. *)

type t

val create :
  ?name:string -> ?workers:int -> ?steal_mode:Scheduler_core.steal_mode -> unit -> t
(** [steal_mode] (default {!Scheduler_core.Steal_one}) selects classical
    one-task stealing or batched steal-half; under steal-half, surplus
    stolen tasks land in the thief's own deque.  Victim selection is
    EWMA-biased in both modes (see {!Scheduler_core.Victim_stats}).
    The instance registers in {!Scheduler_core.Registry} under [name]
    until {!shutdown}. *)

val run : t -> (unit -> 'a) -> 'a
val shutdown : t -> unit

val with_pool :
  ?name:string ->
  ?workers:int ->
  ?steal_mode:Scheduler_core.steal_mode ->
  (t -> 'a) ->
  'a

val name : t -> string
(** The {!Scheduler_core.Registry} name this pool was created under. *)

val submit : t -> (unit -> unit) -> unit
(** Pool-pinned external submission; see {!Lhws_pool.submit}. *)

val scavenge_source : t -> Scheduler_core.scavenge_source
(** This pool's stealable surface.  Caveat: a task that uses this pool's
    fiber operations ([await]/[fork2] capture the pool handle) is only
    safe to scavenge into another [Ws_pool]; leaf thunks are safe in any
    sibling. *)

val set_scavenge :
  t -> ?mode:Scheduler_core.steal_mode -> Scheduler_core.scavenge_source -> unit
(** Designate a sibling to raid when this pool's workers idle.
    @raise Invalid_argument when handed this pool's own source. *)

val clear_scavenge : t -> unit

val set_tracer : t -> Tracing.t -> unit
(** Records worker events (task runs, steals, blocking sleeps) into the
    tracer from now on; see {!Tracing.to_chrome_json}.  Set before
    {!run}; adds two clock reads per task. *)

val register_poller :
  t -> ?pending:(unit -> int) -> ?syscalls:(unit -> int) -> (unit -> int) -> unit
(** Adds an event source that workers poll once per scheduling iteration.
    The callback returns how many events it fired.  Register before
    {!run}; not thread-safe against concurrent registration. *)

val register_shed_counter : t -> (unit -> int) -> unit
(** Adds a monotone overload-shed counter summed into the [conns_shed]
    stats field; thread-safe, may be called from running tasks. *)

val async : t -> (unit -> 'a) -> 'a Promise.t
(** Spawns a task onto the current worker's deque. *)

val await : t -> 'a Promise.t -> 'a
(** Helps with other work until the promise resolves (needs the pool to
    know where to find work, unlike {!Lhws_pool.await}). *)

val fork2 : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

val sleep : t -> float -> unit
(** Blocks the calling worker domain with [Unix.sleepf]: latency is {e not}
    hidden.  Emits a {!Tracing.Blocked} event when a tracer is attached. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit

val parallel_map_reduce :
  t -> lo:int -> hi:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> id:'a -> 'a

(** {2 Introspection}

    The unified stats record shared by every pool; the single-deque
    baseline reports degenerate values for the multi-deque counters
    ([deques_allocated] = worker count, [max_deques_per_worker] = 1,
    [suspensions] = [resumes] = 0). *)

type stats = Scheduler_core.stats = {
  tasks_run : int;
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  io_syscalls : int;
  conns_shed : int;
  scavenge_steals : int;
  tasks_scavenged : int;
  tasks_donated : int;
  stalls_detected : int;
  oldest_parked_ms : float;
}

val stats : t -> stats
