exception Closed

(* A single mutex guards the buffer and both waiter queues.  Waiter
   callbacks re-enqueue fibers into scheduler deques, so they must run
   outside the lock: every critical section returns a (value, after)
   pair and [after] runs post-unlock.

   Invariants: receive waiters exist only while the buffer is empty; send
   waiters exist only while the buffer is full.  A send that finds a
   receive waiter hands its element over directly. *)

type 'a t = {
  mu : Mutex.t;
  buf : 'a Queue.t;
  capacity : int;  (* max_int = unbounded *)
  recv_waiters : ('a option -> unit) Queue.t;  (* None = channel closed *)
  send_waiters : (bool -> unit) Queue.t;  (* false = channel closed *)
  mutable closed : bool;
}

let create ?(capacity = max_int) () =
  if capacity < 1 then invalid_arg "Channel.create: capacity must be >= 1";
  {
    mu = Mutex.create ();
    buf = Queue.create ();
    capacity;
    recv_waiters = Queue.create ();
    send_waiters = Queue.create ();
    closed = false;
  }

let nothing () = ()

let with_lock ch f =
  Mutex.lock ch.mu;
  match f () with
  | value, after ->
      Mutex.unlock ch.mu;
      after ();
      value
  | exception e ->
      Mutex.unlock ch.mu;
      raise e

let rec send ch x =
  let state =
    with_lock ch (fun () ->
        if ch.closed then (`Closed, nothing)
        else
          match Queue.take_opt ch.recv_waiters with
          | Some waiter -> (`Sent, fun () -> waiter (Some x))
          | None ->
              if Queue.length ch.buf < ch.capacity then begin
                Queue.add x ch.buf;
                (`Sent, nothing)
              end
              else (`Wait, nothing))
  in
  match state with
  | `Closed -> raise Closed
  | `Sent -> ()
  | `Wait ->
      let ok = ref false in
      Fiber.suspend (fun resume ->
          with_lock ch (fun () ->
              if ch.closed then ((), resume)
              else if
                Queue.length ch.buf < ch.capacity || not (Queue.is_empty ch.recv_waiters)
              then
                ( (),
                  fun () ->
                    ok := true;
                    resume () )
              else begin
                Queue.add
                  (fun accepted ->
                    ok := accepted;
                    resume ())
                  ch.send_waiters;
                ((), nothing)
              end));
      if !ok then send ch x else raise Closed

(* Taking a buffered element frees one slot: wake one waiting sender. *)
let wake_one_sender ch =
  match Queue.take_opt ch.send_waiters with
  | Some sender -> fun () -> sender true
  | None -> nothing

let recv ch =
  let state =
    with_lock ch (fun () ->
        match Queue.take_opt ch.buf with
        | Some x -> (`Got x, wake_one_sender ch)
        | None -> if ch.closed then (`Closed, nothing) else (`Wait, nothing))
  in
  match state with
  | `Got x -> x
  | `Closed -> raise Closed
  | `Wait -> (
      let slot = ref None in
      Fiber.suspend (fun resume ->
          with_lock ch (fun () ->
              match Queue.take_opt ch.buf with
              | Some x ->
                  let wake = wake_one_sender ch in
                  slot := Some x;
                  ( (),
                    fun () ->
                      wake ();
                      resume () )
              | None ->
                  if ch.closed then ((), resume)
                  else begin
                    Queue.add
                      (fun v ->
                        slot := v;
                        resume ())
                      ch.recv_waiters;
                    ((), nothing)
                  end));
      match !slot with Some x -> x | None -> raise Closed)

let try_recv ch =
  with_lock ch (fun () ->
      match Queue.take_opt ch.buf with
      | Some x -> (Some x, wake_one_sender ch)
      | None -> (None, nothing))

let try_send ch x =
  with_lock ch (fun () ->
      if ch.closed then raise Closed
      else
        match Queue.take_opt ch.recv_waiters with
        | Some waiter -> (true, fun () -> waiter (Some x))
        | None ->
            if Queue.length ch.buf < ch.capacity then begin
              Queue.add x ch.buf;
              (true, nothing)
            end
            else (false, nothing))

let length ch = with_lock ch (fun () -> (Queue.length ch.buf, nothing))

let close ch =
  with_lock ch (fun () ->
      if ch.closed then ((), nothing)
      else begin
        ch.closed <- true;
        let wakes = ref [] in
        Queue.iter (fun waiter -> wakes := (fun () -> waiter None) :: !wakes) ch.recv_waiters;
        Queue.clear ch.recv_waiters;
        Queue.iter (fun sender -> wakes := (fun () -> sender false) :: !wakes) ch.send_waiters;
        Queue.clear ch.send_waiters;
        let wakes = List.rev !wakes in
        ((), fun () -> List.iter (fun f -> f ()) wakes)
      end)

let is_closed ch = with_lock ch (fun () -> (ch.closed, nothing))
