(** Write-once promises with waiter callbacks, lock-free.

    The schedulers use promises for fork/join: [await] on the
    latency-hiding pool suspends the fiber (registering its resume thunk as
    a waiter); the blocking pool instead helps with other work.  Promises
    are domain-safe. *)

type 'a t

val create : unit -> 'a t

val fulfill : 'a t -> ('a, exn) result -> unit
(** Resolves the promise and runs all registered waiters (in no particular
    order).
    @raise Invalid_argument if already resolved. *)

val poll : 'a t -> ('a, exn) result option
(** [None] while pending. *)

val is_resolved : 'a t -> bool

val add_waiter : 'a t -> (unit -> unit) -> bool
(** Registers a callback to run on fulfilment.  Returns [false] (without
    registering) if the promise is already resolved — the caller should
    then proceed directly. *)

val get_exn : 'a t -> 'a
(** The resolved value.
    @raise Invalid_argument if pending; re-raises the stored exception. *)
