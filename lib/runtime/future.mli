(** Future combinators over the latency-hiding pool: compose asynchronous
    computations without manual promise plumbing.  The parallel Standard ML
    substrate of the paper's prototype exposes futures the same way.

    All combinators must be called from within {!Lhws_pool.run}. *)

type 'a t = 'a Promise.t

val spawn : Lhws_pool.t -> (unit -> 'a) -> 'a t
(** Alias of {!Lhws_pool.async}. *)

val await : 'a t -> 'a
(** Alias of {!Lhws_pool.await}. *)

val map : Lhws_pool.t -> ('a -> 'b) -> 'a t -> 'b t
(** A future of [f] applied to the result (spawned, not inline). *)

val both : Lhws_pool.t -> 'a t -> 'b t -> ('a * 'b) t

val all : Lhws_pool.t -> 'a t list -> 'a list t
(** Resolves when every input has, preserving order.  If several fail,
    the first (leftmost) exception wins. *)

val first_resolved : Lhws_pool.t -> 'a t list -> 'a t
(** Resolves with the first input to resolve (value or exception).
    @raise Invalid_argument on an empty list. *)

val traverse : Lhws_pool.t -> ('a -> 'b) -> 'a list -> 'b list t
(** Spawns one fiber per element; resolves with the results in order. *)
