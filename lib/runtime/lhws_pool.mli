(** The latency-hiding work-stealing scheduler, running for real on OCaml 5
    domains.

    A multi-deque suspend/resume policy over the shared {!Scheduler_core}
    engine.  This is the algorithm of Section 3 at thread granularity (the
    paper's own prototype works the same way): the scheduler runs when a
    fiber ends, forks, joins or suspends.  Each worker owns a growing
    collection of Chase–Lev deques, one active at a time.  A fiber that suspends
    (e.g. {!sleep}, or {!await} on an unresolved promise) has its
    continuation paired with the worker's active deque; when it resumes,
    the continuation is batched back into that deque and the deque
    re-enters the owner's ready set.  Thieves target a uniformly random
    deque in the global deque table.

    Latency-incurring operations never block the underlying domain: a
    worker whose fibers are all waiting switches deques or steals. *)

type t

type steal_policy =
  | Global_deque
      (** The analyzed policy (Section 3): thieves target a uniformly
          random slot of the global deque table. *)
  | Worker_then_deque
      (** The implemented policy (Section 6): thieves target a random
          worker, then a random one of its non-empty deques — fewer
          failed steals, at the cost of synchronizing briefly with the
          victim. *)

type resume_placement =
  | Home_worker
      (** The paper-faithful default: a resumed fiber's continuation is
          re-injected into the deque it suspended with, on the worker it
          last ran on — the locality-preserving choice. *)
  | Spread
      (** Any-worker strawman: each resumed continuation is round-robined
          across the pool's workers, so the locality claim can be
          measured rather than assumed.  A quiet worker can be up to the
          idle-backoff cap (1 ms) late for its first spread-in resume. *)

val create :
  ?name:string ->
  ?workers:int ->
  ?steal_policy:steal_policy ->
  ?steal_mode:Scheduler_core.steal_mode ->
  ?resume_placement:resume_placement ->
  ?resume_order:Scheduler_core.resume_order ->
  ?initial_deques:int ->
  unit ->
  t
(** Spawns [workers - 1] extra domains (default: 2 workers,
    [Global_deque], {!Scheduler_core.Steal_one}, [Home_worker],
    {!Scheduler_core.Newest_first}).  The
    calling domain becomes worker 0 while inside {!run}.  The instance
    registers in {!Scheduler_core.Registry} under [name] until
    {!shutdown}.

    [resume_order] is the fairness knob: [Newest_first] keeps the
    historical LIFO discipline (resume batches re-enter their home
    deque as a stealable pfor tree, notified deques stack up
    newest-first — best locality, but a saturating closed loop starves
    its oldest connections); [Aged_fifo] routes every resumed
    continuation through a per-worker FIFO lane in arrival order,
    serviced after the active deque and before switches or steals,
    bounding staleness (c10k p99 within a small factor of the mean) at
    the cost of batch-unfolding parallelism — lane tasks are not
    stealable.

    [steal_mode] selects classical one-task stealing or batched
    steal-half: the thief takes up to half the victim deque's visible
    range, runs the oldest stolen task and parks the surplus in its own
    fresh deque, where further thieves can find it.  Under
    [Worker_then_deque] the victim worker draw is additionally biased by
    a per-thief EWMA of past steal hits (see
    {!Scheduler_core.Victim_stats}); [Global_deque] keeps the paper's
    uniform draw.

    [initial_deques] sizes the global deque table (default 1024 slots);
    the table grows by doubling when lifetime allocations exceed it —
    there is no hard bound. *)

val run : t -> (unit -> 'a) -> 'a
(** Executes the thunk as the root fiber and participates as worker 0
    until it completes.  Re-raises the fiber's exception, if any.
    Not reentrant; call from the domain that created the pool.
    @raise Invalid_argument if called while another [run] is in progress
    or after {!shutdown}. *)

val shutdown : t -> unit
(** Stops and joins the worker domains.  The pool cannot be reused:
    subsequent {!run} calls raise [Invalid_argument].  Idempotent —
    a second [shutdown] is a no-op.  Safe to call after a root fiber
    raised: the workers are still joined cleanly. *)

val with_pool :
  ?name:string ->
  ?workers:int ->
  ?steal_policy:steal_policy ->
  ?steal_mode:Scheduler_core.steal_mode ->
  ?resume_placement:resume_placement ->
  ?resume_order:Scheduler_core.resume_order ->
  ?initial_deques:int ->
  (t -> 'a) ->
  'a
(** [create] / [shutdown] bracket. *)

val name : t -> string
(** The {!Scheduler_core.Registry} name this pool was created under. *)

val submit : t -> (unit -> unit) -> unit
(** Pool-pinned external submission: the thunk lands in one worker's
    inbox (round robin) and is guaranteed to start on a worker of this
    pool.  Safe from any thread — non-workers and other pools' workers
    included.  See {!Scheduler_core.Make.submit} for the cold-start
    latency caveat. *)

(** {2 Cross-pool scavenging}

    See the overview in {!Scheduler_core}.  Only fresh, not-yet-started
    fibers are exported to a scavenging sibling; captured continuations
    and internal re-injections stay home.  Off unless {!set_scavenge} is
    called. *)

val scavenge_source : t -> Scheduler_core.scavenge_source
(** This pool's stealable surface, to hand to a sibling pool (of any
    policy) via its [set_scavenge]. *)

val set_scavenge :
  t -> ?mode:Scheduler_core.steal_mode -> Scheduler_core.scavenge_source -> unit
(** Designate a sibling to raid when this pool's workers idle (after
    local steals fail, before deep backoff).  [mode] defaults to
    [Steal_one].
    @raise Invalid_argument when handed this pool's own source. *)

val clear_scavenge : t -> unit

val set_tracer : t -> Tracing.t -> unit
(** Records worker events (task runs, suspensions, resume batches, steals)
    into the tracer from now on; see {!Tracing.to_chrome_json}.  Set before
    {!run}; adds two clock reads per task. *)

val register_poller :
  t -> ?pending:(unit -> int) -> ?syscalls:(unit -> int) -> (unit -> int) -> unit
(** Adds an event source that workers poll once per scheduling iteration,
    like the built-in timer — e.g. {!Io.poll} for file-descriptor
    readiness.  The callback returns how many events it fired.  Register
    before {!run}; not thread-safe against concurrent registration. *)

val register_shed_counter : t -> (unit -> int) -> unit
(** Adds a monotone overload-shed counter summed into the [conns_shed]
    stats field; thread-safe, may be called from running tasks. *)

val register_watchdog : t -> Watchdog.t -> unit
(** Complete pool-side watchdog wiring in one call: the sweep rides this
    pool's pump, detections feed [stalls_detected] / [oldest_parked_ms]
    and emit {!Tracing.Stalled}, and this pool's workers come under
    heartbeat surveillance.  Pair with [Reactor.fibers ~watchdog] to put
    the reactor's parked intents under the same watchdog.  See
    {!Scheduler_core.Make.register_watchdog}. *)

val heartbeats : t -> int array
(** Per-worker scheduling-loop iteration counts, for
    {!Watchdog.attach_heartbeats}. *)

(** {2 Operations usable inside fibers of this pool} *)

val async : t -> (unit -> 'a) -> 'a Promise.t
(** Spawns a fiber onto the current worker's active deque (right-child
    spawn).  Must be called from within {!run}. *)

val await : 'a Promise.t -> 'a
(** Returns the promise's value, suspending the calling fiber if pending.
    Re-raises the spawned fiber's exception. *)

val fork2 : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [fork2 t f g] runs both in parallel: [g] is spawned, [f] runs in the
    current fiber, then the results join. *)

val sleep : t -> float -> unit
(** Simulated latency of the given number of seconds: suspends the fiber
    on the shared timer; the worker keeps executing other work.  This is
    the runtime analogue of a heavy edge. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** Fork–join over [\[lo, hi)], splitting in halves. *)

val parallel_map_reduce :
  t -> lo:int -> hi:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) -> id:'a -> 'a
(** The distMapReduce of Figure 8 over index range [\[lo, hi)]. *)

(** {2 Introspection}

    The unified stats record shared by every pool. *)

type stats = Scheduler_core.stats = {
  tasks_run : int;
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  io_syscalls : int;
  conns_shed : int;
  scavenge_steals : int;
  tasks_scavenged : int;
  tasks_donated : int;
  stalls_detected : int;
  oldest_parked_ms : float;
}

val stats : t -> stats
