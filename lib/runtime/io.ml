(* Submission/completion reactor.

   Fibers no longer talk to the readiness backend directly: they enqueue
   *intents* (fd, direction, an optional kernel operation to run once
   the fd is ready, and a completion callback) into per-worker lock-free
   submission rings.  The CAS-elected pump worker drains every ring,
   registers the drained intents in its waiter table, issues one batched
   readiness pass over the incrementally-maintained fd sets, executes
   the ready operations directly, and delivers completions through the
   callbacks — which ride the pools' existing Treiber-stack MPSC resume
   channels back to each fiber's home deque.

   Exactly-once resumption survives the restructure.  An intent moves
   through three states under [t.mu]: [Armed] (submitted or re-armed,
   claimable), [Claimed] (the pump owns it and is running its op) and
   [Done] (its outcome is decided).  The three competitors — readiness,
   an fd error discovered during the readiness pass, and external
   cancellation (deadline timers, through {!cancel}) — each claim by
   flipping [Armed -> Done/Claimed] under the mutex.  The one subtle
   window: a cancel that arrives while the pump holds the intent
   [Claimed] cannot revoke the claim, so it records [cancel_requested]
   and returns [false]; if the pump's op then comes back would-block
   (which would normally re-arm the intent), the pump sees the flag and
   delivers a [Cancelled] completion instead of parking the fiber past
   its deadline.

   Submission takes no lock (one CAS on a ring plus two atomic bumps);
   the mutex now serializes only the pump, cancellation and the error
   sweep. *)

(* What finally happened to an intent.  [Cancelled] is only delivered
   for intents whose {!cancel} lost the claim race as described above;
   a cancel that wins the race means no completion is ever delivered. *)
type outcome = Complete | Error of exn | Cancelled

type state = Armed | Claimed | Done

type intent = {
  ifd : Unix.file_descr;
  ikind : [ `R | `W ];
  (* The operation to run in the pump once the fd is ready.  [`Done]
     means the result was produced (stashed by the closure itself);
     [`Again] means the kernel said would-block after all — re-arm
     without waking the fiber.  Raising delivers [Error].  Plain
     readiness waits use a closure that just returns [`Done]. *)
  run : unit -> [ `Done | `Again ];
  notify : outcome -> unit;
  mutable istate : state;  (* guarded by [t.mu] *)
  mutable cancel_requested : bool;  (* guarded by [t.mu] *)
  isubmitted : float;  (* when the fiber parked; feeds the staleness gauge *)
  mutable iregistered : bool;
      (* guarded by [t.mu]: in the waiter tables right now.  An [Armed]
         intent that is neither registered nor sitting in a submission
         ring has lost its wakeup — the signature the stall sweep hunts. *)
  mutable iflagged : bool;  (* stall already counted (warn mode); sweep-only *)
  mutable iprobed : float;
      (* when the stall sweep last probed this fd (0. = never); sweep-only.
         Rate-limits per-intent probe syscalls so long-parked idle
         connections are not probed on every sweep. *)
}

type waiter = intent

(* The readiness backend seam.  [select] today; an epoll or io_uring
   backend slots in by implementing the same contract: [add]/[remove]
   maintain interest incrementally (satisfying the no-rebuild-per-poll
   requirement by construction), [wait] performs one batched readiness
   pass with zero timeout and may raise [Unix.Unix_error] ([EBADF] /
   [EINVAL]) when the registered set is rejected wholesale — the pump
   answers with a per-fd probe sweep. *)
module type BACKEND = sig
  type t

  val name : string

  val create : unit -> t
  val add : t -> [ `R | `W ] -> Unix.file_descr -> unit
  (** Called once when the first waiter for (fd, direction) registers. *)

  val remove : t -> [ `R | `W ] -> Unix.file_descr -> unit
  (** Called once when the last waiter for (fd, direction) leaves. *)

  val armed : t -> bool
  (** Whether any interest is registered at all. *)

  val size : t -> int
  (** Number of distinct descriptors registered — the cost driver of one
      batched pass, which the pump's pacing scales with. *)

  val wait : t -> Unix.file_descr list * Unix.file_descr list
  (** One batched readiness pass (ready-to-read, ready-to-write). *)

  val probe : [ `R | `W ] -> Unix.file_descr -> exn option
  (** One fd tested in isolation, with this backend's own mechanism
      (the sweep must agree with [wait] about which descriptors the
      backend can express at all): [Some exn] when the descriptor would
      poison a batched pass, [None] when it is merely not ready. *)
end

(* --- poll(2) stubs (see poll_stubs.c) ---

   [poll_raw] drives parallel int arrays: interest bit 1 = readable,
   2 = writable; result adds bit 4 for POLLNVAL.  Returns the number of
   ready entries, or -1 for EINTR. *)
external poll_raw :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "lhws_poll_stub"

external raise_nofile_raw : int -> int = "lhws_raise_nofile_stub"

let raise_nofile want = raise_nofile_raw want

(* One descriptor, one direction, a millisecond timeout (-1 = forever):
   the single-fd wait used by blocking-mode reactors, with none of
   select's FD_SETSIZE ceiling.  [`Ready] covers error/hang-up too —
   the caller's own syscall surfaces whatever is wrong with the fd. *)
let poll_single kind fd ~timeout_ms =
  let fds = [| fd |] in
  let events = [| (match kind with `R -> 1 | `W -> 2) |] in
  let revents = [| 0 |] in
  match poll_raw fds events revents 1 timeout_ms with
  | 0 -> `Timeout
  | -1 -> `Interrupted
  | _ ->
      if revents.(0) land 4 <> 0 then
        raise (Unix.Unix_error (Unix.EBADF, "poll", ""))
      else `Ready

module Select_backend : BACKEND = struct
  (* Interest lists maintained incrementally on register/unregister —
     the old reactor rebuilt both lists from the waiter tables on every
     poll.  Removal is O(interest-set size), but removals happen once
     per fd transition while polls happen once per pump iteration, so
     the trade is the right way around. *)
  type t = {
    mutable rfds : Unix.file_descr list;
    mutable wfds : Unix.file_descr list;
  }

  let create () = { rfds = []; wfds = [] }

  let add t kind fd =
    match kind with
    | `R -> t.rfds <- fd :: t.rfds
    | `W -> t.wfds <- fd :: t.wfds

  let remove t kind fd =
    match kind with
    | `R -> t.rfds <- List.filter (fun fd' -> fd' <> fd) t.rfds
    | `W -> t.wfds <- List.filter (fun fd' -> fd' <> fd) t.wfds

  let armed t = t.rfds <> [] || t.wfds <> []
  let size t = List.length t.rfds + List.length t.wfds

  let wait t =
    match Unix.select t.rfds t.wfds [] 0. with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])

  let name = "select"

  (* A select probe, so an fd select cannot express (>= FD_SETSIZE)
     stays an error under this backend instead of livelocking the
     sweep: a poll-based probe would pass it, it would stay registered,
     and every subsequent batched pass would reject the set again. *)
  let probe kind fd =
    let r, w = match kind with `W -> ([], [ fd ]) | `R -> ([ fd ], []) in
    match Unix.select r w [] 0. with
    | _ -> None
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
    | exception (Unix.Unix_error _ as e) -> Some e
end

module Poll_backend : BACKEND = struct
  (* Incrementally maintained pollfd mirror: parallel growable arrays
     plus an fd -> slot index, so [add]/[remove] are O(1) (remove swaps
     the last entry down) and [wait] hands the arrays to poll(2) as-is.
     Both directions of one fd share a slot; interest is the bit mask
     the stub expects (1 = R, 2 = W). *)
  type t = {
    mutable fds : Unix.file_descr array;
    mutable events : int array;
    mutable revents : int array;
    mutable n : int;
    index : (Unix.file_descr, int) Hashtbl.t;
  }

  let name = "poll"

  let create () =
    {
      fds = Array.make 64 Unix.stdin;
      events = Array.make 64 0;
      revents = Array.make 64 0;
      n = 0;
      index = Hashtbl.create 64;
    }

  let grow t =
    let cap = Array.length t.fds in
    if t.n = cap then begin
      let fds = Array.make (2 * cap) Unix.stdin in
      let events = Array.make (2 * cap) 0 in
      Array.blit t.fds 0 fds 0 cap;
      Array.blit t.events 0 events 0 cap;
      t.fds <- fds;
      t.events <- events;
      t.revents <- Array.make (2 * cap) 0
    end

  let bit = function `R -> 1 | `W -> 2

  let add t kind fd =
    match Hashtbl.find_opt t.index fd with
    | Some i -> t.events.(i) <- t.events.(i) lor bit kind
    | None ->
        grow t;
        t.fds.(t.n) <- fd;
        t.events.(t.n) <- bit kind;
        Hashtbl.replace t.index fd t.n;
        t.n <- t.n + 1

  let remove t kind fd =
    match Hashtbl.find_opt t.index fd with
    | None -> ()
    | Some i ->
        let ev = t.events.(i) land lnot (bit kind) in
        if ev <> 0 then t.events.(i) <- ev
        else begin
          let last = t.n - 1 in
          Hashtbl.remove t.index fd;
          if i < last then begin
            t.fds.(i) <- t.fds.(last);
            t.events.(i) <- t.events.(last);
            Hashtbl.replace t.index t.fds.(i) i
          end;
          t.n <- last
        end

  let armed t = t.n > 0
  let size t = t.n

  (* POLLNVAL entries are reported ready for whatever direction they
     registered: the pump then runs (or wakes) their operations, whose
     own syscall raises EBADF — the same loud-failure contract as the
     probe sweep, without a second syscall to find the culprit. *)
  let wait t =
    match poll_raw t.fds t.events t.revents t.n 0 with
    | 0 | -1 -> ([], [])
    | _ ->
        let r = ref [] and w = ref [] in
        for i = 0 to t.n - 1 do
          let re = t.revents.(i) in
          if re <> 0 then begin
            let interest = t.events.(i) in
            let nval = re land 4 <> 0 in
            if interest land 1 <> 0 && (re land 1 <> 0 || nval) then
              r := t.fds.(i) :: !r;
            if interest land 2 <> 0 && (re land 2 <> 0 || nval) then
              w := t.fds.(i) :: !w
          end
        done;
        (!r, !w)

  let probe kind fd =
    match poll_single kind fd ~timeout_ms:0 with
    | `Ready | `Timeout | `Interrupted -> None
    | exception (Unix.Unix_error _ as e) -> Some e
end

(* The active backend, chosen once per reactor: poll by default (no
   descriptor ceiling — the c10k serving legs depend on it), select
   when LHWS_BACKEND=select asks for the comparison baseline. *)
type backend = B : (module BACKEND with type t = 'b) * 'b -> backend

let make_backend () =
  match Sys.getenv_opt "LHWS_BACKEND" with
  | Some "select" -> B ((module Select_backend), Select_backend.create ())
  | _ -> B ((module Poll_backend), Poll_backend.create ())

type waiters = (Unix.file_descr, waiter list ref) Hashtbl.t

(* Keep readiness-pass frequency amortized in batched mode: the pass is
   paced by wall clock, and the interval grows with the registered-set
   size.  Time-based pacing is sound because eager completion already
   ran every operation once before it parked — a parked fd only becomes
   ready when the peer acts, so there is never a correctness reason to
   re-poll immediately on submission; worst case a readiness edge is
   detected one interval late.  The size scaling is what makes c10k
   serving work: poll(2) walks every registered fd, so with 10k parked
   connections one pass costs hundreds of microseconds, and re-passing
   every 50 us (the old fixed interval, fired on every submission under
   load) burns the whole core in the kernel.  At 0.2 us per registered
   fd the steady-state polling duty cycle stays bounded regardless of
   scale, while small interest sets keep the 50 us floor. *)
let select_pacing_s = 0.00005
let per_fd_pacing_s = 2e-7

let ring_count = 8 (* power of two; rings are indexed by domain id *)

type t = {
  mu : Mutex.t;
  readers : waiters;
  writers : waiters;
  backend : backend;
  rings : intent list Atomic.t array;  (* per-worker submission rings *)
  npending : int Atomic.t;  (* intents submitted, not yet decided *)
  syscalls : int Atomic.t;  (* kernel I/O calls made through this reactor *)
  mutable last_pass : float;  (* pump-only: when the last readiness pass ran *)
  legacy : bool;
  (* Test-only mutation hook: drop every [drop_every]-th completion on
     the floor (the fiber stays parked forever).  Exists so the chaos
     suite can prove it *detects* a lost completion — see
     [test/test_reactor.ml] — and is never set in production paths. *)
  drop_every : int Atomic.t;
  drop_tick : int Atomic.t;
  (* Census of every live intent, consed lock-free at submission and
     pruned of decided intents by the stall sweep.  Lets a watchdog ask
     two questions the waiter tables cannot answer: how old is the
     oldest parked fiber, and is any [Armed] intent tracked nowhere? *)
  tracked : intent list Atomic.t;
}

let create ?(legacy = false) () =
  {
    mu = Mutex.create ();
    readers = Hashtbl.create 16;
    writers = Hashtbl.create 16;
    backend = make_backend ();
    rings = Array.init ring_count (fun _ -> Atomic.make []);
    npending = Atomic.make 0;
    syscalls = Atomic.make 0;
    last_pass = 0.;
    legacy;
    drop_every = Atomic.make 0;
    drop_tick = Atomic.make 0;
    tracked = Atomic.make [];
  }

let is_legacy t = t.legacy
let backend_name t = match t.backend with B ((module B), _) -> B.name
let bk_add t kind fd = match t.backend with B ((module B), b) -> B.add b kind fd
let bk_remove t kind fd = match t.backend with B ((module B), b) -> B.remove b kind fd
let bk_armed t = match t.backend with B ((module B), b) -> B.armed b
let bk_size t = match t.backend with B ((module B), b) -> B.size b
let bk_wait t = match t.backend with B ((module B), b) -> B.wait b
let bk_probe t kind fd = match t.backend with B ((module B), _) -> B.probe kind fd
let syscalls t = Atomic.get t.syscalls
let count_syscall t = Atomic.incr t.syscalls
let pending t = Atomic.get t.npending
let chaos_drop_completions t ~every = Atomic.set t.drop_every every

let tbl_of t = function `R -> t.readers | `W -> t.writers

(* --- registration table (pump + cancel only; guarded by [t.mu]) --- *)

let register_locked t w =
  w.iregistered <- true;
  let tbl = tbl_of t w.ikind in
  match Hashtbl.find_opt tbl w.ifd with
  | Some l -> l := w :: !l
  | None ->
      Hashtbl.add tbl w.ifd (ref [ w ]);
      bk_add t w.ikind w.ifd

(* Detach every armed waiter on [fd], marking them [Claimed]: the caller
   (the pump) owns them and must decide each one.  Owner of [t.mu]. *)
let take_all_locked t kind fd =
  let tbl = tbl_of t kind in
  match Hashtbl.find_opt tbl fd with
  | None -> []
  | Some l ->
      let ws = List.filter (fun w -> w.istate = Armed) !l in
      List.iter
        (fun w ->
          w.istate <- Claimed;
          w.iregistered <- false)
        ws;
      Hashtbl.remove tbl fd;
      bk_remove t kind fd;
      ws

(* --- submission: the lock-free fiber-side entry point --- *)

let rec ring_push r w =
  let old = Atomic.get r in
  if not (Atomic.compare_and_set r old (w :: old)) then ring_push r w

let submit t ~kind ~fd ~run notify =
  let w =
    {
      ifd = fd;
      ikind = kind;
      run;
      notify;
      istate = Armed;
      cancel_requested = false;
      isubmitted = Unix.gettimeofday ();
      iregistered = false;
      iflagged = false;
      iprobed = 0.;
    }
  in
  Atomic.incr t.npending;
  ring_push t.tracked w;
  let slot = (Domain.self () :> int) land (ring_count - 1) in
  ring_push t.rings.(slot) w;
  w

let submit_wait t ~kind ~fd notify = submit t ~kind ~fd ~run:(fun () -> `Done) notify

(* Compatibility shims for the (exn option -> unit) callback layer. *)
let wrap_notify f = function
  | Complete -> f None
  | Error e -> f (Some e)
  | Cancelled -> f None (* unreachable: nothing cancels these externally *)

let add_readable t fd notify = submit_wait t ~kind:`R ~fd (wrap_notify notify)
let add_writable t fd notify = submit_wait t ~kind:`W ~fd (wrap_notify notify)

(* Remove one intent from the waiter table (it may not be there — e.g.
   still in a submission ring).  Owner of [t.mu]. *)
let detach_locked t w =
  w.iregistered <- false;
  let tbl = tbl_of t w.ikind in
  match Hashtbl.find_opt tbl w.ifd with
  | None -> ()
  | Some l -> (
      match List.filter (fun w' -> w' != w) !l with
      | [] ->
          Hashtbl.remove tbl w.ifd;
          bk_remove t w.ikind w.ifd
      | rest -> l := rest)

let cancel t w =
  Mutex.lock t.mu;
  let claimed =
    match w.istate with
    | Armed ->
        w.istate <- Done;
        (* The intent may still sit in a submission ring (the pump
           discards [Done] intents when it drains) or in the table. *)
        detach_locked t w;
        true
    | Claimed ->
        (* The pump is mid-operation; it checks this flag before
           re-arming and completes with [Cancelled] instead. *)
        w.cancel_requested <- true;
        false
    | Done -> false
  in
  Mutex.unlock t.mu;
  if claimed then Atomic.decr t.npending;
  claimed

(* --- completion delivery (pump side) --- *)

(* The real completion path, immune to the chaos hook: the stall sweep
   uses it directly so a watchdog's loud failure cannot itself be
   "lost in transit" by the very fault it is reporting. *)
let deliver_direct t w outcome =
  Mutex.lock t.mu;
  w.istate <- Done;
  Mutex.unlock t.mu;
  Atomic.decr t.npending;
  w.notify outcome

let deliver t w outcome =
  let every = Atomic.get t.drop_every in
  if every > 0 && Atomic.fetch_and_add t.drop_tick 1 mod every = every - 1 then begin
    (* Chaos hook: the completion is lost in transit — exactly the bug
       being simulated.  The intent goes back to [Armed] but is NOT
       re-registered, so nothing will ever complete it: [npending] (the
       io_pending gauge) sticks, and a deadline's {!cancel} can still
       claim the intent and fail the fiber with a timeout.  That is the
       observable signature the mutation test asserts on, instead of a
       silent hang. *)
    Mutex.lock t.mu;
    w.istate <- Armed;
    Mutex.unlock t.mu
  end
  else deliver_direct t w outcome

(* Run a claimed intent's operation in the pump.  A would-block answer
   re-arms the intent (no completion, the fiber stays parked) unless a
   cancel arrived while we held the claim. *)
let execute t w =
  if t.legacy then begin
    (* Legacy mode reproduces the wait-then-retry reactor: readiness
       just wakes the fiber, which reissues the kernel op itself. *)
    deliver t w Complete;
    1
  end
  else
    match w.run () with
    | `Done ->
        deliver t w Complete;
        1
    | `Again ->
        Mutex.lock t.mu;
        if w.cancel_requested then begin
          Mutex.unlock t.mu;
          deliver t w Cancelled;
          1
        end
        else begin
          w.istate <- Armed;
          register_locked t w;
          Mutex.unlock t.mu;
          0
        end
    | exception e ->
        deliver t w (Error e);
        1

(* --- the pump --- *)

let drain_rings_locked t =
  Array.iter
    (fun r ->
      if Atomic.get r != [] then
        List.iter
          (fun w -> if w.istate = Armed then register_locked t w)
          (Atomic.exchange r []))
    t.rings

(* A descriptor the backend rejects wholesale (closed under a parked
   fiber -> EBADF, or beyond FD_SETSIZE -> EINVAL) poisons the whole
   readiness pass without naming itself.  Probe each registered fd
   alone: the ones that still fail get their waiters completed with the
   exception — a parked fiber must fail loudly, never park forever. *)
let sweep_bad t =
  Mutex.lock t.mu;
  let rfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.readers [] in
  let wfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.writers [] in
  Mutex.unlock t.mu;
  let probe kind fds =
    List.filter_map
      (fun fd ->
        count_syscall t;
        match bk_probe t kind fd with None -> None | Some e -> Some (fd, e))
      fds
  in
  let bad_r = probe `R rfds in
  let bad_w = probe `W wfds in
  Mutex.lock t.mu;
  let victims =
    List.concat_map
      (fun (fd, e) -> List.map (fun w -> (w, e)) (take_all_locked t `R fd))
      bad_r
    @ List.concat_map
        (fun (fd, e) -> List.map (fun w -> (w, e)) (take_all_locked t `W fd))
        bad_w
  in
  Mutex.unlock t.mu;
  List.iter (fun (w, e) -> deliver t w (Error e)) victims;
  List.length victims

let poll t =
  (* 1. Drain the submission rings into the registration table. *)
  let fresh = Array.exists (fun r -> Atomic.get r != []) t.rings in
  if fresh then begin
    Mutex.lock t.mu;
    drain_rings_locked t;
    Mutex.unlock t.mu
  end;
  if Atomic.get t.npending = 0 || not (bk_armed t) then 0
  else begin
    (* 2. One batched readiness pass — paced by wall clock and scaled by
       the registered-set size, so neither an idle-spinning pump nor a
       saturated one burns a full-set walk per loop iteration. *)
    let now = Unix.gettimeofday () in
    let interval =
      select_pacing_s +. (float_of_int (bk_size t) *. per_fd_pacing_s)
    in
    if (not t.legacy) && now -. t.last_pass < interval then 0
    else begin
      t.last_pass <- now;
      count_syscall t;
      match bk_wait t with
      | [], [] -> 0
      | ready_r, ready_w -> (
          Mutex.lock t.mu;
          let ws =
            List.concat_map (take_all_locked t `R) ready_r
            @ List.concat_map (take_all_locked t `W) ready_w
          in
          Mutex.unlock t.mu;
          (* 3. Execute the ready operations right here and deliver the
             completions; re-armed intents go back without a wake-up. *)
          List.fold_left (fun acc w -> acc + execute t w) 0 ws)
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> sweep_bad t
    end
  end

(* --- stall surveillance (the watchdog's view of the reactor) --- *)

let oldest_parked_ms t =
  let now = Unix.gettimeofday () in
  List.fold_left
    (fun acc w ->
      if w.istate = Armed then Float.max acc ((now -. w.isubmitted) *. 1e3)
      else acc)
    0. (Atomic.get t.tracked)

(* One stall sweep over the intent census.  Two signatures, both only
   checked for intents parked longer than [grace]:

   - {e lost wakeup}: [Armed] but in neither the waiter tables nor a
     submission ring (the rings are drained first, so "unregistered"
     is conclusive).  Nothing will ever complete such an intent — the
     exact state the [chaos_drop_completions] hook manufactures, and
     what a completion-dropping backend bug would leave behind.  With
     [fail = Some mk] the fiber is completed loudly with [Error (mk
     msg)] through the chaos-immune direct path; with [fail = None] it
     is counted once and left parked (warn mode).

   - {e stale registration}: [Armed], registered, but the backend's
     probe rejects the fd.  The batched pass protects against this for
     select (wholesale EBADF -> [sweep_bad]) and poll (POLLNVAL reported
     ready), but an epoll-style backend silently forgets closed fds —
     this age-gated probe keeps the parked-fiber-fails-loudly invariant
     backend-independent.  Always delivered (the real [Unix_error]),
     whatever [fail] says: a bad descriptor is an error, not a warning.
     Probes cost one syscall per intent, so each intent is probed at
     most once per [probe_every] — without that gate, every idle
     keep-alive connection parked past [grace] would be re-probed on
     every sweep, O(idle connections) syscalls at watchdog pace.

   Returns how many stalls were newly detected.  Intended to run from a
   registered poller at watchdog pace — every sweep walks the census,
   but probe syscalls touch only over-age registered intents whose last
   probe is older than [probe_every]. *)
let sweep_stalled t ~grace ?probe_every ~fail () =
  let probe_every =
    match probe_every with Some p -> p | None -> Float.max (10. *. grace) 1.
  in
  let now = Unix.gettimeofday () in
  Mutex.lock t.mu;
  drain_rings_locked t;
  let census = Atomic.exchange t.tracked [] in
  let keep = ref [] in
  let orphans = ref [] in
  let warned = ref 0 in
  let stale = ref [] in
  List.iter
    (fun w ->
      match w.istate with
      | Done -> ()  (* decided; falls out of the census *)
      | Claimed -> keep := w :: !keep
      | Armed ->
          if now -. w.isubmitted <= grace then keep := w :: !keep
          else if not w.iregistered then begin
            match fail with
            | Some _ ->
                w.istate <- Done;  (* claim: a racing deadline now loses *)
                orphans := w :: !orphans
            | None ->
                if not w.iflagged then begin
                  w.iflagged <- true;
                  incr warned
                end;
                keep := w :: !keep
          end
          else if now -. w.iprobed >= probe_every then begin
            w.iprobed <- now;
            stale := w :: !stale
          end
          else keep := w :: !keep)
    census;
  Mutex.unlock t.mu;
  let failed_orphans =
    match fail with
    | None -> 0
    | Some mk ->
        List.iter
          (fun w ->
            let age_ms = (now -. w.isubmitted) *. 1e3 in
            let dir = match w.ikind with `R -> "readable" | `W -> "writable" in
            Atomic.decr t.npending;
            w.notify
              (Error
                 (mk
                    (Printf.sprintf
                       "lost wakeup: fiber parked on %s fd for %.1f ms with no \
                        registration"
                       dir age_ms))))
          !orphans;
        List.length !orphans
  in
  (* Probe over-age registered intents outside the lock; deliver the
     descriptor error to any whose fd the backend can no longer serve. *)
  let stale_failures = ref 0 in
  List.iter
    (fun w ->
      count_syscall t;
      match bk_probe t w.ikind w.ifd with
      | None -> keep := w :: !keep
      | Some e ->
          Mutex.lock t.mu;
          let ours = w.istate = Armed in
          if ours then begin
            w.istate <- Claimed;
            detach_locked t w
          end;
          Mutex.unlock t.mu;
          if ours then begin
            incr stale_failures;
            deliver_direct t w (Error e)
          end
          else
            (* The pump claimed it first; if it re-arms on would-block the
               intent is still live, so it must stay in the census (a Done
               intent is pruned on the next sweep anyway). *)
            keep := w :: !keep)
    !stale;
  List.iter (fun w -> ring_push t.tracked w) !keep;
  failed_orphans + !warned + !stale_failures

let wait_on t kind fd =
  let err = ref None in
  Fiber.suspend (fun resume ->
      ignore
        (submit_wait t ~kind ~fd (function
          | Complete | Cancelled -> resume ()
          | Error e ->
              err := Some e;
              resume ())
          : waiter));
  match !err with Some e -> raise e | None -> ()

let wait_readable t fd = wait_on t `R fd
let wait_writable t fd = wait_on t `W fd

(* --- vectored I/O shim ---

   ExtUnix-free: a single buffer goes straight through; several buffers
   are coalesced into one scratch write/read, so the whole vector still
   costs one kernel round trip (one copy stands in for the missing
   writev(2)/readv(2) binding — this, not the call sites, is where a C
   stub would slot in). *)

module Iov = struct
  let length iovs = List.fold_left (fun acc b -> acc + Bytes.length b) 0 iovs

  (* Drop the first [n] bytes: the remaining vector after a short write. *)
  let rec drop iovs n =
    if n <= 0 then iovs
    else
      match iovs with
      | [] -> []
      | b :: rest ->
          let len = Bytes.length b in
          if n >= len then drop rest (n - len)
          else [ Bytes.sub b n (len - n) ] @ rest

  (* Clamp the vector to its first [cap] bytes (injected short writes). *)
  let take iovs cap =
    let rec go acc left = function
      | [] -> List.rev acc
      | b :: rest ->
          let len = Bytes.length b in
          if len >= left then List.rev (Bytes.sub b 0 left :: acc)
          else go (b :: acc) (left - len) rest
    in
    if cap <= 0 then [] else go [] cap iovs

  let write fd iovs =
    match iovs with
    | [] -> 0
    | [ b ] -> Unix.write fd b 0 (Bytes.length b)
    | bs ->
        let total = length bs in
        let scratch = Bytes.create total in
        let _ =
          List.fold_left
            (fun pos b ->
              let len = Bytes.length b in
              Bytes.blit b 0 scratch pos len;
              pos + len)
            0 bs
        in
        Unix.write fd scratch 0 total

  let read fd iovs =
    match iovs with
    | [] -> 0
    | [ b ] -> Unix.read fd b 0 (Bytes.length b)
    | bs ->
        let total = length bs in
        let scratch = Bytes.create total in
        let n = Unix.read fd scratch 0 total in
        let rec scatter pos = function
          | [] -> ()
          | b :: rest ->
              if pos < n then begin
                let k = min (Bytes.length b) (n - pos) in
                Bytes.blit scratch pos b 0 k;
                scatter (pos + k) rest
              end
        in
        scatter 0 bs;
        n
end

(* --- blocking helpers over the wait surface ---

   Wait-first on purpose: these serve descriptors that may still be in
   blocking mode (tests, pipes), where an eager kernel call could hold
   the worker.  The eager-completion fast path lives in
   [Reactor.run_io], which only sees non-blocking descriptors. *)

let read t fd buf pos len =
  wait_readable t fd;
  count_syscall t;
  Unix.read fd buf pos len

let write t fd buf pos len =
  wait_writable t fd;
  count_syscall t;
  Unix.write fd buf pos len

let read_exactly t fd buf len =
  let rec go pos =
    if pos < len then begin
      let n = read t fd buf pos (len - pos) in
      if n = 0 then raise End_of_file;
      go (pos + n)
    end
  in
  go 0

let write_all t fd buf =
  let len = Bytes.length buf in
  let rec go pos = if pos < len then go (pos + write t fd buf pos (len - pos)) in
  go 0
