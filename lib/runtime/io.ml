(* select-based reactor.  Waiter lists are keyed by descriptor; a mutex
   guards them (contention is low: one lock per suspension/resume).

   Each parked fiber is represented by a [waiter] record with a [live]
   flag, giving exactly-once resumption between three competitors: fd
   readiness, an fd error discovered during [select], and external
   cancellation (deadline timers race waiters through {!cancel}).  The
   mutex is the arbiter: whoever flips [live] under the lock owns the
   callback. *)

type kind = Read | Write

type waiter = {
  wfd : Unix.file_descr;
  wkind : kind;
  notify : exn option -> unit;  (* [None] = ready; [Some e] = fd error *)
  mutable live : bool;  (* guarded by [t.mu] *)
}

type waiters = (Unix.file_descr, waiter list ref) Hashtbl.t

type t = { mu : Mutex.t; readers : waiters; writers : waiters }

let create () = { mu = Mutex.create (); readers = Hashtbl.create 16; writers = Hashtbl.create 16 }

let tbl_of t = function Read -> t.readers | Write -> t.writers

let add_waiter t kind fd notify =
  let w = { wfd = fd; wkind = kind; notify; live = true } in
  Mutex.lock t.mu;
  let tbl = tbl_of t kind in
  (match Hashtbl.find_opt tbl fd with
  | Some l -> l := w :: !l
  | None -> Hashtbl.add tbl fd (ref [ w ]));
  Mutex.unlock t.mu;
  w

let add_readable t fd notify = add_waiter t Read fd notify
let add_writable t fd notify = add_waiter t Write fd notify

(* Detach every waiter currently parked on [fd] in [tbl].  Owner of
   [t.mu] only; the returned waiters are already marked dead, so the
   caller runs their callbacks outside the lock. *)
let take_all tbl fd =
  match Hashtbl.find_opt tbl fd with
  | None -> []
  | Some l ->
      let ws = List.filter (fun w -> w.live) !l in
      List.iter (fun w -> w.live <- false) ws;
      Hashtbl.remove tbl fd;
      ws

let cancel t w =
  Mutex.lock t.mu;
  let claimed = w.live in
  if claimed then begin
    w.live <- false;
    let tbl = tbl_of t w.wkind in
    match Hashtbl.find_opt tbl w.wfd with
    | None -> ()
    | Some l -> (
        match List.filter (fun w' -> w' != w) !l with
        | [] -> Hashtbl.remove tbl w.wfd
        | rest -> l := rest)
  end;
  Mutex.unlock t.mu;
  claimed

let wait_on t kind fd =
  let err = ref None in
  Fiber.suspend (fun resume ->
      ignore
        (add_waiter t kind fd (fun e ->
             err := e;
             resume ())
          : waiter));
  match !err with Some e -> raise e | None -> ()

let wait_readable t fd = wait_on t Read fd
let wait_writable t fd = wait_on t Write fd

(* A descriptor that [select] rejects wholesale (closed under a parked
   fiber -> EBADF, or beyond FD_SETSIZE -> EINVAL) poisons the whole
   readiness call without naming itself.  Probe each registered fd alone:
   the ones that still fail get their waiters resumed with the exception —
   a parked fiber must fail loudly, never park forever. *)
let sweep_bad t =
  Mutex.lock t.mu;
  let rfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.readers [] in
  let wfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.writers [] in
  Mutex.unlock t.mu;
  let probe fds ~write =
    List.filter_map
      (fun fd ->
        let r, w = if write then ([], [ fd ]) else ([ fd ], []) in
        match Unix.select r w [] 0. with
        | _ -> None
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
        | exception (Unix.Unix_error _ as e) -> Some (fd, e))
      fds
  in
  let bad_r = probe rfds ~write:false in
  let bad_w = probe wfds ~write:true in
  Mutex.lock t.mu;
  let victims =
    List.concat_map (fun (fd, e) -> List.map (fun w -> (w, e)) (take_all t.readers fd)) bad_r
    @ List.concat_map (fun (fd, e) -> List.map (fun w -> (w, e)) (take_all t.writers fd)) bad_w
  in
  Mutex.unlock t.mu;
  List.iter (fun (w, e) -> w.notify (Some e)) victims;
  List.length victims

let poll t =
  Mutex.lock t.mu;
  let rfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.readers [] in
  let wfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.writers [] in
  Mutex.unlock t.mu;
  if rfds = [] && wfds = [] then 0
  else
    match Unix.select rfds wfds [] 0. with
    | [], [], _ -> 0
    | ready_r, ready_w, _ ->
        Mutex.lock t.mu;
        let ws =
          List.concat_map (take_all t.readers) ready_r
          @ List.concat_map (take_all t.writers) ready_w
        in
        Mutex.unlock t.mu;
        List.iter (fun w -> w.notify None) ws;
        List.length ws
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> sweep_bad t

let pending t =
  Mutex.lock t.mu;
  let count tbl =
    Hashtbl.fold
      (fun _ l acc -> acc + List.length (List.filter (fun w -> w.live) !l))
      tbl 0
  in
  let n = count t.readers + count t.writers in
  Mutex.unlock t.mu;
  n

let read t fd buf pos len =
  wait_readable t fd;
  Unix.read fd buf pos len

let write t fd buf pos len =
  wait_writable t fd;
  Unix.write fd buf pos len

let read_exactly t fd buf len =
  let rec go pos =
    if pos < len then begin
      let n = read t fd buf pos (len - pos) in
      if n = 0 then raise End_of_file;
      go (pos + n)
    end
  in
  go 0

let write_all t fd buf =
  let len = Bytes.length buf in
  let rec go pos = if pos < len then go (pos + write t fd buf pos (len - pos)) in
  go 0
