(* select-based reactor.  Waiter lists are keyed by descriptor; a mutex
   guards them (contention is low: one lock per suspension/resume). *)

type waiters = (Unix.file_descr, (unit -> unit) list ref) Hashtbl.t

type t = { mu : Mutex.t; readers : waiters; writers : waiters }

let create () = { mu = Mutex.create (); readers = Hashtbl.create 16; writers = Hashtbl.create 16 }

let add_waiter tbl fd resume =
  match Hashtbl.find_opt tbl fd with
  | Some l -> l := resume :: !l
  | None -> Hashtbl.add tbl fd (ref [ resume ])

let wait_on t tbl fd =
  Fiber.suspend (fun resume ->
      Mutex.lock t.mu;
      add_waiter tbl fd resume;
      Mutex.unlock t.mu)

let wait_readable t fd = wait_on t t.readers fd
let wait_writable t fd = wait_on t t.writers fd

let poll t =
  Mutex.lock t.mu;
  let rfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.readers [] in
  let wfds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.writers [] in
  Mutex.unlock t.mu;
  if rfds = [] && wfds = [] then 0
  else
    match Unix.select rfds wfds [] 0. with
    | [], [], _ -> 0
    | ready_r, ready_w, _ ->
        let resumes = ref [] in
        Mutex.lock t.mu;
        let take tbl fd =
          match Hashtbl.find_opt tbl fd with
          | Some l ->
              resumes := !l @ !resumes;
              Hashtbl.remove tbl fd
          | None -> ()
        in
        List.iter (take t.readers) ready_r;
        List.iter (take t.writers) ready_w;
        Mutex.unlock t.mu;
        List.iter (fun resume -> resume ()) !resumes;
        List.length !resumes
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0

let pending t =
  Mutex.lock t.mu;
  let count tbl = Hashtbl.fold (fun _ l acc -> acc + List.length !l) tbl 0 in
  let n = count t.readers + count t.writers in
  Mutex.unlock t.mu;
  n

let read t fd buf pos len =
  wait_readable t fd;
  Unix.read fd buf pos len

let write t fd buf pos len =
  wait_writable t fd;
  Unix.write fd buf pos len

let read_exactly t fd buf len =
  let rec go pos =
    if pos < len then begin
      let n = read t fd buf pos (len - pos) in
      if n = 0 then raise End_of_file;
      go (pos + n)
    end
  in
  go 0

let write_all t fd buf =
  let len = Bytes.length buf in
  let rec go pos = if pos < len then go (pos + write t fd buf pos (len - pos)) in
  go 0
