(** The "lightweight threads" alternative that Section 7 contrasts with
    latency-hiding work stealing: every spawned task gets an OS thread, so
    blocking operations hide latency by oversubscription — at the cost of
    thread creation, stacks, and kernel scheduling, the overhead the paper's
    approach avoids ("our approach ... avoids the additional state and
    thread-scheduling overhead associated with (even lightweight)
    threads").

    Task granularity must therefore be kept coarse (use [grain] /
    [cutoff]); exceeding [max_threads] concurrent tasks makes [async]
    block until threads retire. *)

type t

val create : ?name:string -> ?max_threads:int -> unit -> t
(** Default [max_threads] = 512.  The instance registers in
    {!Scheduler_core.Registry} under [name] (with [max_threads] as its
    worker capacity) until {!shutdown}. *)

val run : t -> (unit -> 'a) -> 'a
(** Runs on the calling thread ([async] from within is fine). *)

val shutdown : t -> unit
(** Waits for all spawned threads to retire. *)

val with_pool : ?name:string -> ?max_threads:int -> (t -> 'a) -> 'a

val name : t -> string
(** The {!Scheduler_core.Registry} name this pool was created under. *)

val submit : t -> (unit -> unit) -> unit
(** Pool-pinned external submission: spawns a thread for the thunk,
    like {!async}, discarding the promise.  Safe from any thread (blocks
    while at [max_threads], as [async] does). *)

val set_tracer : t -> Tracing.t -> unit
(** Records task runs and blocking sleeps into the tracer from now on.
    All events land in worker slot 0 (threads have no stable worker
    identity), serialized by a mutex. *)

val register_shed_counter : t -> (unit -> int) -> unit
(** Adds a monotone overload-shed counter summed into the [conns_shed]
    stats field; thread-safe, may be called from running tasks. *)

val async : t -> (unit -> 'a) -> 'a Promise.t
(** Spawns a thread for the task (blocking while at [max_threads]). *)

val await : t -> 'a Promise.t -> 'a
(** Blocks the calling thread on a condition variable. *)

val fork2 : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

val sleep : t -> float -> unit
(** [Unix.sleepf]: blocks this thread; other threads keep running. *)

val parallel_for : t -> ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** Splits into at most [ceil((hi-lo)/grain)] threads (default grain:
    range/64, at least 1). *)

val parallel_map_reduce :
  t ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  id:'a ->
  'a

val threads_spawned : t -> int
(** Total threads created so far — the overhead the paper's fibers avoid. *)

val peak_threads : t -> int
(** Maximum simultaneously live threads. *)

(** The unified stats record shared by every pool; a thread-per-task pool
    has no deques, steals or suspensions, so the scheduler counters are
    zero ([tasks_run] reports {!threads_spawned}).  Use
    {!threads_spawned} / {!peak_threads} for this pool's real costs. *)

type stats = Scheduler_core.stats = {
  tasks_run : int;
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  io_syscalls : int;
  conns_shed : int;
  scavenge_steals : int;
  tasks_scavenged : int;
  tasks_donated : int;
  stalls_detected : int;
  oldest_parked_ms : float;
}

val stats : t -> stats
