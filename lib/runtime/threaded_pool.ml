type t = {
  mu : Mutex.t;
  retired : Condition.t;  (* signalled when a thread finishes *)
  max_threads : int;
  mutable live : int;
  mutable spawned : int;
  mutable peak : int;
  trace_mu : Mutex.t;  (* Tracing buffers are single-writer; serialize *)
  mutable tracer : Tracing.t option;
  shed_fns : (unit -> int) list Atomic.t;  (* overload-shed counters, see stats *)
  mutable entry : Scheduler_core.registry_entry option;
}

type stats = Scheduler_core.stats = {
  tasks_run : int;
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  io_syscalls : int;
  conns_shed : int;
  scavenge_steals : int;
  tasks_scavenged : int;
  tasks_donated : int;
  stalls_detected : int;
  oldest_parked_ms : float;
}

(* No deques, no steals, no suspensions: every scheduler counter is
   degenerate; [tasks_run] is the threads spawned and the serving-layer
   shed counter is real. *)
let stats t =
  {
    tasks_run =
      (Mutex.lock t.mu;
       let n = t.spawned in
       Mutex.unlock t.mu;
       n);
    steals = 0;
    failed_steals = 0;
    steals_batched = 0;
    tasks_stolen = 0;
    tasks_per_steal_hist = Array.make Scheduler_core.steal_hist_buckets 0;
    deques_allocated = 0;
    suspensions = 0;
    resumes = 0;
    max_deques_per_worker = 0;
    io_pending = 0;
    io_syscalls = 0;
    conns_shed = List.fold_left (fun acc f -> acc + f ()) 0 (Atomic.get t.shed_fns);
    scavenge_steals = 0;
    tasks_scavenged = 0;
    tasks_donated = 0;
    stalls_detected = 0;
    oldest_parked_ms = 0.;
  }

let create ?name ?(max_threads = 512) () =
  if max_threads < 1 then invalid_arg "Threaded_pool.create: max_threads must be >= 1";
  let t =
    {
      mu = Mutex.create ();
      retired = Condition.create ();
      max_threads;
      live = 0;
      spawned = 0;
      peak = 0;
      trace_mu = Mutex.create ();
      tracer = None;
      shed_fns = Atomic.make [];
      entry = None;
    }
  in
  (* [workers] is a capacity here, not a domain count. *)
  t.entry <-
    Some
      (Scheduler_core.Registry.register ?name ~label:"Threaded_pool"
         ~workers:max_threads
         ~stats:(fun () -> stats t)
         ());
  t

let set_tracer t tracer = t.tracer <- Some tracer

let register_shed_counter t f =
  let rec push () =
    let old = Atomic.get t.shed_fns in
    if not (Atomic.compare_and_set t.shed_fns old (f :: old)) then push ()
  in
  push ()

(* All events land in worker slot 0: there is no stable worker identity in
   a thread-per-task pool. *)
let emit t kind ~start_us ~dur_us =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Mutex.lock t.trace_mu;
      Tracing.record tr ~worker:0 kind ~start_us ~dur_us;
      Mutex.unlock t.trace_mu

let run _t f = f ()

let async t f =
  let p = Promise.create () in
  Mutex.lock t.mu;
  while t.live >= t.max_threads do
    Condition.wait t.retired t.mu
  done;
  t.live <- t.live + 1;
  t.spawned <- t.spawned + 1;
  if t.live > t.peak then t.peak <- t.live;
  Mutex.unlock t.mu;
  let body () =
    (match t.tracer with
    | None -> Promise.fulfill p (try Ok (f ()) with e -> Error e)
    | Some _ ->
        let start_us = Tracing.now_us () in
        Promise.fulfill p (try Ok (f ()) with e -> Error e);
        emit t Tracing.Task_run ~start_us ~dur_us:(Tracing.now_us () -. start_us));
    Mutex.lock t.mu;
    t.live <- t.live - 1;
    Condition.broadcast t.retired;
    Mutex.unlock t.mu
  in
  ignore (Thread.create body () : Thread.t);
  p

let await _t p =
  match Promise.poll p with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      let mu = Mutex.create () in
      let cond = Condition.create () in
      let ready = ref false in
      let wake () =
        Mutex.lock mu;
        ready := true;
        Condition.signal cond;
        Mutex.unlock mu
      in
      if Promise.add_waiter p wake then begin
        Mutex.lock mu;
        while not !ready do
          Condition.wait cond mu
        done;
        Mutex.unlock mu
      end;
      Promise.get_exn p

let shutdown t =
  Mutex.lock t.mu;
  while t.live > 0 do
    Condition.wait t.retired t.mu
  done;
  Mutex.unlock t.mu;
  match t.entry with
  | Some e ->
      Scheduler_core.Registry.unregister e;
      t.entry <- None
  | None -> ()

let with_pool ?name ?max_threads f =
  let t = create ?name ?max_threads () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let name t =
  match t.entry with
  | Some e -> e.Scheduler_core.reg_name
  | None -> "Threaded_pool (shut down)"

(* Pool-pinned trivially: every task is its own thread of this pool. *)
let submit t f = ignore (async t f : unit Promise.t)

let fork2 t f g =
  let pg = async t g in
  let fv = f () in
  (fv, await t pg)

let sleep t seconds =
  if seconds > 0. then begin
    match t.tracer with
    | None -> Unix.sleepf seconds
    | Some _ ->
        let start_us = Tracing.now_us () in
        Unix.sleepf seconds;
        emit t Tracing.Blocked ~start_us ~dur_us:(Tracing.now_us () -. start_us)
  end

let default_grain lo hi = max 1 ((hi - lo + 63) / 64)

let parallel_for t ?grain ~lo ~hi body =
  let grain = match grain with Some g -> max 1 g | None -> default_grain lo hi in
  let rec go lo hi =
    if hi - lo <= 0 then ()
    else if hi - lo <= grain then
      for i = lo to hi - 1 do
        body i
      done
    else
      let mid = lo + ((hi - lo) / 2) in
      let (), () = fork2 t (fun () -> go lo mid) (fun () -> go mid hi) in
      ()
  in
  go lo hi

let parallel_map_reduce t ?grain ~lo ~hi ~map ~combine ~id =
  let grain = match grain with Some g -> max 1 g | None -> default_grain lo hi in
  let rec go lo hi =
    if hi - lo <= 0 then id
    else if hi - lo <= grain then begin
      let acc = ref (map lo) in
      for i = lo + 1 to hi - 1 do
        acc := combine !acc (map i)
      done;
      !acc
    end
    else
      let mid = lo + ((hi - lo) / 2) in
      let a, b = fork2 t (fun () -> go lo mid) (fun () -> go mid hi) in
      combine a b
  in
  go lo hi

let threads_spawned t =
  Mutex.lock t.mu;
  let n = t.spawned in
  Mutex.unlock t.mu;
  n

let peak_threads t =
  Mutex.lock t.mu;
  let n = t.peak in
  Mutex.unlock t.mu;
  n

