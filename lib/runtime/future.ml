type 'a t = 'a Promise.t

let spawn = Lhws_pool.async
let await = Lhws_pool.await

let map pool f fut = Lhws_pool.async pool (fun () -> f (await fut))

let both pool a b = Lhws_pool.async pool (fun () -> (await a, await b))

let all pool futures = Lhws_pool.async pool (fun () -> List.map await futures)

let first_resolved _pool futures =
  if futures = [] then invalid_arg "Future.first_resolved: empty list";
  let out = Promise.create () in
  let won = Atomic.make false in
  let claim result =
    if not (Atomic.exchange won true) then Promise.fulfill out result
  in
  List.iter
    (fun fut ->
      let deliver () =
        match Promise.poll fut with Some r -> claim r | None -> assert false
      in
      if not (Promise.add_waiter fut deliver) then deliver ())
    futures;
  out

let traverse pool f xs = all pool (List.map (fun x -> spawn pool (fun () -> f x)) xs)
