module Chase_lev = Lhws_deque.Chase_lev
module Padding = Lhws_deque.Padding
module Core = Scheduler_core

(* Tasks are fresh fibers, captured continuations of suspended ones, or
   pool-pinned internal thunks.  [Fresh] is a user thunk that has not
   started running: it is {e pool-portable} — a sibling pool's scavenger
   may take it and run it as its own (the fiber then lives entirely in
   the thief pool).  [Pinned] is the same representation but for
   policy-internal re-injections (pfor batch unfolding, resume-batch
   wrappers) whose closures capture this pool's [pstate]; like [Resume]
   continuations — whose effect handlers close over it — they must never
   leave the pool. *)
type task =
  | Fresh of (unit -> unit)
  | Pinned of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation

(* The resume and notification paths are multi-producer (any domain may
   complete an I/O or timer and resume a fiber) single-consumer (only the
   owning worker re-injects).  Both are Treiber-stack MPSC channels: a
   producer conses with a CAS loop, the consumer drains everything with a
   single atomic exchange — no mutex anywhere on the resume path.
   [push] returns whether the channel was empty, so the first producer
   after a drain knows to raise the one notification the owner needs. *)
let rec mpsc_push chan x =
  let old = Atomic.get chan in
  if Atomic.compare_and_set chan old (x :: old) then old == [] else mpsc_push chan x

(* Newest-first; callers [List.rev] to recover arrival order. *)
let mpsc_drain chan = Atomic.exchange chan []

type deque = {
  id : int;
  owner : int;
  q : task Chase_lev.t;
  suspend_ctr : int Atomic.t;
  resumed : task list Atomic.t;  (* MPSC: any domain conses, owner drains *)
  freed : bool Atomic.t;
  mutable in_ready : bool;  (* owner only *)
}

type wrec = {
  ctx : Core.ctx;
  mutable active : deque option;
  mutable ready : deque list;
  resume_fifo : task Queue.t;
      (* the [Aged_fifo] lane: resumed continuations in arrival order,
         oldest first.  Owner-only (fed and drained by this worker's own
         drain/next steps); permanently empty under [Newest_first] *)
  notified : deque list Atomic.t;  (* MPSC: deques with fresh resumes *)
  inbox : task list Atomic.t;
      (* MPSC: resumed tasks delivered directly to this worker under the
         [Spread] placement (unused — always empty — under [Home_worker]) *)
  mutable empty : deque list;  (* freed deques for reuse; owner only *)
  mutable owned_live : int;
  owned_snap : deque array Atomic.t;
      (* immutable snapshot of the live owned deques, republished by the
         owner on alloc/free so thieves scan candidates without a lock *)
  victims : Core.Victim_stats.t;
      (* EWMA steal hit rate per victim worker; thief-local, used only by
         the Worker_then_deque policy (Global_deque targets deques, not
         workers, and stays uniform — it is the analyzed policy) *)
}

type steal_policy = Global_deque | Worker_then_deque

(* Where a resumed fiber's continuation is re-injected.  [Home_worker] is
   the paper-faithful default and what every earlier version hardwired:
   the batch goes back into the deque the fiber suspended with, on the
   worker it last ran on — the locality-preserving choice ("Analysis of
   Work-Stealing and Parallel Cache Complexity", arXiv 2111.04994: steals
   dominate cache cost, so resumes should not migrate).  [Spread] instead
   round-robins each resumed continuation across the pool's workers (it
   lands in the target's inbox and re-enters through its active deque) —
   the any-worker strawman, exposed so the locality claim is measurable
   rather than assumed. *)
type resume_placement = Home_worker | Spread

let default_initial_deques = 1024

type pstate = {
  slots : wrec array;
  (* The deque table grows (doubling under [grow_lock]) instead of
     failing at a fixed bound; thieves read the current snapshot with one
     atomic load.  All writes — slot publication and growth — happen
     under the lock, which is only ever taken on the fresh-allocation
     path ([w.empty] recycling never touches the table), so the steal
     and pop hot paths stay lock-free. *)
  gdeques : deque option array Atomic.t;
  grow_lock : Mutex.t;
  gtotal : int Atomic.t;
  steal_policy : steal_policy;
  steal_mode : Core.steal_mode;
  resume_placement : resume_placement;
  resume_order : Core.resume_order;
  spread_rr : int Atomic.t;  (* round-robin cursor for [Spread] delivery *)
  self_wid : unit -> int;
}

(* The worker this domain is currently executing as; continuations migrate
   between workers, so effect handlers must resolve it dynamically. *)
let self p = p.slots.(p.self_wid ())

(* --- deque table --- *)

(* Owner only: single-writer, so a plain [Atomic.set] publish suffices. *)
let snap_add w d =
  let old = Atomic.get w.owned_snap in
  let n = Array.length old in
  let next = Array.make (n + 1) d in
  Array.blit old 0 next 0 n;
  Atomic.set w.owned_snap next

let snap_remove w d =
  let old = Atomic.get w.owned_snap in
  Atomic.set w.owned_snap
    (Array.of_list (List.filter (fun d' -> d' != d) (Array.to_list old)))

let alloc_deque p w =
  let d =
    match w.empty with
    | d :: rest ->
        w.empty <- rest;
        Atomic.set d.freed false;
        d
    | [] ->
        (* Fresh allocation: serialize table writes so a concurrent
           doubling can never lose a just-published slot.  [gtotal] is
           bumped last, so a reader that sees the new count either reads
           the slot or (through a stale table snapshot / plain read)
           sees [None] and treats it as a failed steal. *)
        Mutex.lock p.grow_lock;
        let id = Atomic.get p.gtotal in
        let d =
          {
            id;
            owner = w.ctx.wid;
            q = Chase_lev.create ();
            suspend_ctr = Atomic.make 0;
            resumed = Padding.make_atomic [];
            freed = Atomic.make false;
            in_ready = false;
          }
        in
        let arr = Atomic.get p.gdeques in
        let arr =
          if id < Array.length arr then arr
          else begin
            let len = ref (max 1 (Array.length arr)) in
            while id >= !len do
              len := !len * 2
            done;
            let grown = Array.make !len None in
            Array.blit arr 0 grown 0 (Array.length arr);
            Atomic.set p.gdeques grown;
            grown
          end
        in
        arr.(id) <- Some d;
        Atomic.incr p.gtotal;
        Mutex.unlock p.grow_lock;
        d
  in
  w.owned_live <- w.owned_live + 1;
  if w.owned_live > w.ctx.counters.max_owned then w.ctx.counters.max_owned <- w.owned_live;
  snap_add w d;
  d

let free_deque w d =
  Atomic.set d.freed true;
  w.owned_live <- w.owned_live - 1;
  w.empty <- d :: w.empty;
  snap_remove w d

(* Remove a deque from the owner's recycle pool (revival after a resume
   raced with freeing).  Owner-only. *)
let unfree w d =
  Atomic.set d.freed false;
  w.empty <- List.filter (fun d' -> d' != d) w.empty;
  w.owned_live <- w.owned_live + 1;
  if w.owned_live > w.ctx.counters.max_owned then w.ctx.counters.max_owned <- w.owned_live;
  snap_add w d

(* --- resume path: runs on any domain, lock- and allocation-light ---
   One CAS-cons onto the deque's resume channel; the producer that found
   it empty also conses one notification onto the owner's channel. *)

(* Hand a task to a deque's resume channel and raise the owner's
   notification.  Does NOT touch [suspend_ctr] — that belongs to the
   suspend/resume pairing; cross-pool scavengers also use this to return
   non-portable loot they cannot run, and those tasks were never
   suspended. *)
let requeue_home p d task =
  let was_empty = mpsc_push d.resumed task in
  if was_empty then ignore (mpsc_push p.slots.(d.owner).notified d : bool)

let on_resume p d task =
  match p.resume_placement with
  | Home_worker ->
      let was_empty = mpsc_push d.resumed task in
      Atomic.decr d.suspend_ctr;
      if was_empty then ignore (mpsc_push p.slots.(d.owner).notified d : bool)
  | Spread ->
      (* Any-worker delivery: the continuation goes straight to a
         round-robin worker's inbox; its home deque only loses the
         suspension (and may retire normally).  When the fiber suspends
         again it pairs with wherever it is running then. *)
      Atomic.decr d.suspend_ctr;
      let n = Array.length p.slots in
      let target = Atomic.fetch_and_add p.spread_rr 1 mod n in
      ignore (mpsc_push p.slots.(target).inbox task : bool)

(* --- fiber execution --- *)

let rec exec_fresh p f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Fiber.Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let w = self p in
                  let d =
                    match w.active with
                    | Some d -> d
                    | None -> failwith "Lhws_pool: suspend with no active deque"
                  in
                  Atomic.incr d.suspend_ctr;
                  w.ctx.counters.suspensions <- w.ctx.counters.suspensions + 1;
                  Core.mark w.ctx Tracing.Suspend;
                  register (fun () -> on_resume p d (Resume k)))
          | _ -> None);
    }

and run_task p task =
  match task with
  | Fresh f | Pinned f -> exec_fresh p f
  | Resume k -> Effect.Deep.continue k ()

(* Execute a batch of resumed continuations as a pfor tree: halves are
   pushed as spawnable tasks, so the batch unfolds in parallel with
   logarithmic span, exactly as addResumedVertices prescribes. *)
let rec pfor_exec p batch lo hi =
  let n = hi - lo in
  if n = 1 then run_task p batch.(lo)
  else begin
    let mid = lo + (n / 2) in
    let w = self p in
    (match w.active with
    | Some d -> Chase_lev.push_bottom d.q (Pinned (fun () -> pfor_exec p batch mid hi))
    | None -> assert false);
    pfor_exec p batch lo mid
  end

(* addResumedVertices: drain notifications, re-inject each deque's resumed
   batch, move the deque to the ready set.  Owner only.  The empty check
   first keeps the idle fast path to one atomic load (no exchange, which
   is a store even when the channel is empty).

   Resume-order policy decides where the batch lands.  [Newest_first]
   (the historical discipline): the batch re-enters its home deque as
   one task — a pfor tree when there are several, so it unfolds in
   parallel and is stealable — and the deque joins the owner's ready
   {e stack}; LIFO at both levels, maximal locality, but under a
   saturating closed loop the newest arrivals monopolize the worker.
   [Aged_fifo]: each continuation is appended individually, in arrival
   order, to the worker's FIFO resume lane — oldest batch first, no
   batch-unfolding parallelism, lane tasks not stealable — trading peak
   locality for a bounded-staleness guarantee (c10k p99 within a small
   factor of the mean instead of the wall clock). *)
let drain_resumed p w =
  if Atomic.get w.notified != [] then begin
    let notified = mpsc_drain w.notified in
    List.iter
      (fun d ->
        let batch = mpsc_drain d.resumed in
        match batch with
        | [] -> ()
        | _ -> (
            Core.mark w.ctx Tracing.Resume_batch;
            w.ctx.counters.resumes <- w.ctx.counters.resumes + List.length batch;
            match p.resume_order with
            | Core.Aged_fifo ->
                (* The continuations bypass the deque entirely, so its
                   revival bookkeeping is not needed: a freed deque with
                   no suspensions left simply stays recycled. *)
                List.iter (fun task -> Queue.add task w.resume_fifo) (List.rev batch)
            | Core.Newest_first ->
                if Atomic.get d.freed then unfree w d;
                let task =
                  match batch with
                  | [ single ] -> single
                  | _ ->
                      let arr = Array.of_list (List.rev batch) in
                      Pinned (fun () -> pfor_exec p arr 0 (Array.length arr))
                in
                Chase_lev.push_bottom d.q task;
                let is_active =
                  match w.active with Some a -> a == d | None -> false
                in
                if (not is_active) && not d.in_ready then begin
                  d.in_ready <- true;
                  w.ready <- d :: w.ready
                end))
      (List.rev notified)
  end;
  (* [Spread] delivery: continuations routed to this worker's inbox
     re-enter through its active deque (allocated on demand), exactly
     like a resume batch would through a home deque — or through the
     FIFO lane under [Aged_fifo]. *)
  if Atomic.get w.inbox != [] then begin
    let batch = mpsc_drain w.inbox in
    Core.mark w.ctx Tracing.Resume_batch;
    w.ctx.counters.resumes <- w.ctx.counters.resumes + List.length batch;
    match p.resume_order with
    | Core.Aged_fifo ->
        List.iter (fun task -> Queue.add task w.resume_fifo) (List.rev batch)
    | Core.Newest_first ->
        let d =
          match w.active with
          | Some d -> d
          | None ->
              let d = alloc_deque p w in
              w.active <- Some d;
              d
        in
        let task =
          match batch with
          | [ single ] -> single
          | _ ->
              let arr = Array.of_list (List.rev batch) in
              Pinned (fun () -> pfor_exec p arr 0 (Array.length arr))
        in
        Chase_lev.push_bottom d.q task
  end

(* Retire an exhausted active deque: free it if nothing will come back. *)
let retire_active w =
  match w.active with
  | None -> ()
  | Some d ->
      w.active <- None;
      if Atomic.get d.suspend_ctr = 0 then begin
        (* A racing resume may still slip in; drain_resumed revives. *)
        let quiet = Atomic.get d.resumed == [] in
        if quiet && Chase_lev.is_empty d.q then free_deque w d
      end

(* Steal from victim deque [d] according to the pool's steal mode.  On
   success the thief allocates a fresh deque of its own, makes it active,
   and returns the first (oldest) stolen task to run now.  Under
   [Steal_half] any surplus goes into that new deque — the thief becomes
   its owner, so the surplus is reachable by further thieves and pops in
   LIFO order, exactly like work the thief spawned itself.  The deque is
   allocated lazily on the first surplus task (or at the end when the
   batch degenerated to one), so a lost first CAS allocates nothing. *)
let steal_from p w d =
  let activate nd task k =
    Core.count_steal w.ctx.counters ~tasks:k;
    Core.mark w.ctx Tracing.Steal;
    w.active <- Some nd;
    Some task
  in
  match p.steal_mode with
  | Core.Steal_one -> (
      match Chase_lev.steal d.q with
      | Some task -> activate (alloc_deque p w) task 1
      | None -> None)
  | Core.Steal_half -> (
      let first = ref None in
      let nd = ref None in
      let k =
        Chase_lev.steal_half d.q (fun task ->
            match !first with
            | None -> first := Some task
            | Some _ ->
                let target =
                  match !nd with
                  | Some target -> target
                  | None ->
                      let target = alloc_deque p w in
                      nd := Some target;
                      target
                in
                Chase_lev.push_bottom target.q task)
      in
      match !first with
      | None -> None
      | Some task ->
          let target = match !nd with Some t -> t | None -> alloc_deque p w in
          activate target task k)

(* Uniformly random one of the currently non-empty deques in a published
   snapshot; [None] when all are empty (or emptied between the count and
   the draw).  Consumes at most one RNG draw, and only when a candidate
   exists. *)
let random_nonempty_deque rng owned =
  let nonempty = ref 0 in
  Array.iter (fun d -> if not (Chase_lev.is_empty d.q) then incr nonempty) owned;
  if !nonempty = 0 then None
  else begin
    let target = Random.State.int rng !nonempty in
    let pick = ref None in
    let seen = ref 0 in
    (try
       Array.iter
         (fun d ->
           if not (Chase_lev.is_empty d.q) then begin
             if !seen = target then begin
               pick := Some d;
               raise Exit
             end;
             incr seen
           end)
         owned
     with Exit -> ());
    !pick
  end

let try_steal p w =
  let fail () =
    w.ctx.counters.failed_steals <- w.ctx.counters.failed_steals + 1;
    None
  in
  match p.steal_policy with
  | Global_deque -> (
      (* The analyzed policy: uniform over the global deque table.  The
         table snapshot and the count are read independently; clamping to
         the shorter of the two keeps a stale snapshot safe. *)
      let arr = Atomic.get p.gdeques in
      let n = min (Atomic.get p.gtotal) (Array.length arr) in
      if n = 0 then None
      else
        match arr.(Random.State.int w.ctx.rng n) with
        | None -> fail ()
        | Some d ->
            if Atomic.get d.freed then fail ()
            else (match steal_from p w d with Some _ as got -> got | None -> fail ()))
  | Worker_then_deque ->
      (* Section 6's implementation: pick a victim worker — never self; a
         "steal" from one's own deque is just a deque switch and would
         corrupt the steal count — then a uniformly random one of its
         currently non-empty deques, read from the victim's published
         snapshot: no lock taken and no O(n) list walk under one.  The
         victim worker draw is EWMA-biased (power-of-two-choices over
         observed hit rates) so thieves drift away from chronically empty
         workers; the hit/miss below feeds the estimate. *)
      let n = Array.length p.slots in
      if n <= 1 then None
      else begin
        let vid = Core.Victim_stats.pick w.victims w.ctx.rng ~self:w.ctx.wid in
        let miss () =
          Core.Victim_stats.record w.victims vid ~hit:false;
          fail ()
        in
        let owned = Atomic.get p.slots.(vid).owned_snap in
        match random_nonempty_deque w.ctx.rng owned with
        | None -> miss ()
        | Some d -> (
            match steal_from p w d with
            | Some _ as got ->
                Core.Victim_stats.record w.victims vid ~hit:true;
                got
            | None -> miss ())
      end

(* One cross-pool steal attempt, run by a sibling pool's idle worker — a
   foreign thread with no [wrec] here, so nothing below may touch this
   pool's per-worker state or counters.  The victim worker is drawn from
   the {e thief's} EWMA [tracker] (grown to our worker count by the
   caller), the deque by the same published-snapshot scan the internal
   [Worker_then_deque] thief uses; this works whatever our own
   [steal_policy] is, because every pool maintains the snapshots.  Only
   [Fresh] thunks are exported: [Resume] continuations re-enter effect
   handlers closed over this pool, and [Pinned] thunks capture its
   [pstate]; both go back to their home deque via [requeue_home], never
   dropped.  Returns how many tasks were delivered to [sink]. *)
let export_steal p ~rng ~tracker ~mode ~sink =
  let n = Array.length p.slots in
  let vid = Core.Victim_stats.pick_foreign tracker rng ~n in
  let miss () =
    Core.Victim_stats.record tracker vid ~hit:false;
    0
  in
  let owned = Atomic.get p.slots.(vid).owned_snap in
  match random_nonempty_deque rng owned with
  | None -> miss ()
  | Some d ->
      let sunk = ref 0 in
      let deliver task =
        match task with
        | Fresh f ->
            incr sunk;
            sink f
        | (Pinned _ | Resume _) as task -> requeue_home p d task
      in
      let got =
        match mode with
        | Core.Steal_one -> (
            match Chase_lev.steal d.q with
            | Some task ->
                deliver task;
                1
            | None -> 0)
        | Core.Steal_half -> Chase_lev.steal_half d.q deliver
      in
      Core.Victim_stats.record tracker vid ~hit:(got > 0);
      !sunk

(* One scheduling decision: the next task to run, switching or stealing as
   needed.  Mirrors lines 40-56 of Figure 3, with one insertion: under
   [Aged_fifo] the worker's FIFO resume lane is serviced once the active
   deque is exhausted — before ready-deque switches and steals, so the
   oldest resumed continuation in the lane strictly precedes newer work.
   A lane task needs an active deque to land its spawns and suspensions
   in (the [Suspend] handler requires one), so the current deque is kept
   active — or one is allocated — before the task is returned. *)
let next_task p w =
  let take_lane () =
    if Queue.is_empty w.resume_fifo then None
    else begin
      (match w.active with
      | Some _ -> ()
      | None -> w.active <- Some (alloc_deque p w));
      Some (Queue.pop w.resume_fifo)
    end
  in
  let from_active () =
    match w.active with
    | Some d -> (
        match Chase_lev.pop_bottom d.q with
        | Some task -> Some task
        | None -> (
            match take_lane () with
            | Some _ as got -> got  (* keep [d] active as the landing pad *)
            | None ->
                retire_active w;
                None))
    | None -> None
  in
  match from_active () with
  | Some task -> Some task
  | None -> (
      match take_lane () with
      | Some _ as got -> got
      | None -> (
          match w.ready with
          | d :: rest -> (
              w.ready <- rest;
              d.in_ready <- false;
              w.active <- Some d;
              match Chase_lev.pop_bottom d.q with
              | Some task -> Some task
              | None ->
                  (* emptied by thieves since it was enqueued *)
                  retire_active w;
                  None)
          | [] ->
              (* On success [steal_from] has already allocated the thief's
                 new deque, made it active and counted the steal. *)
              try_steal p w))

(* --- the policy: multi-deque suspend/resume over the shared engine --- *)

module Policy = struct
  let label = "Lhws_pool"
  let rng_salt = 0xACE5

  type config = {
    steal_policy : steal_policy;
    steal_mode : Core.steal_mode;
    resume_placement : resume_placement;
    resume_order : Core.resume_order;
    initial_deques : int;
  }

  let default_config =
    {
      steal_policy = Global_deque;
      steal_mode = Core.Steal_one;
      resume_placement = Home_worker;
      resume_order = Core.Newest_first;
      initial_deques = default_initial_deques;
    }

  type nonrec task = task
  type pool = pstate
  type wstate = wrec

  let make_pool
      { steal_policy; steal_mode; resume_placement; resume_order; initial_deques }
      ~ctxs ~self_wid =
    let victims = Array.length ctxs in
    {
      slots =
        Array.map
          (fun ctx ->
            {
              ctx;
              active = None;
              ready = [];
              resume_fifo = Queue.create ();
              notified = Padding.make_atomic [];
              inbox = Padding.make_atomic [];
              empty = [];
              owned_live = 0;
              owned_snap = Padding.make_atomic [||];
              victims = Core.Victim_stats.create ~victims;
            })
          ctxs;
      gdeques = Atomic.make (Array.make (max 1 initial_deques) None);
      grow_lock = Mutex.create ();
      gtotal = Atomic.make 0;
      steal_policy;
      steal_mode;
      resume_placement;
      resume_order;
      spread_rr = Atomic.make 0;
      self_wid;
    }

  let worker p i = p.slots.(i)

  (* Any owned deque with suspended fibers (or an undrained resume batch)
     means a resume can land at any moment: stay on the fast idle poll.
     Under [Spread] a resume may land in this worker's inbox even when
     its own deques are quiet (the suspension lives elsewhere); an
     undrained inbox always keeps the fast poll, but a quiet worker can
     still be up to the backoff cap late for the first spread-in resume —
     acceptable for an explicitly locality-breaking placement. *)
  let expects_resumes _p w =
    Atomic.get w.inbox != []
    ||
    let owned = Atomic.get w.owned_snap in
    let n = Array.length owned in
    let rec scan i =
      i < n
      && (Atomic.get owned.(i).suspend_ctr > 0
         || Atomic.get owned.(i).resumed != []
         || scan (i + 1))
    in
    scan 0

  let drain = drain_resumed
  let next = next_task
  let exec p _w task = run_task p task

  let inject p w ~pinned thunk =
    (* Bootstrap: give the worker an active deque holding the root fiber. *)
    let d = match w.active with Some d -> d | None -> alloc_deque p w in
    w.active <- Some d;
    Chase_lev.push_bottom d.q (if pinned then Pinned thunk else Fresh thunk)

  let deques_allocated p = Atomic.get p.gtotal
  let export_steal = export_steal
end

module C = Core.Make (Policy)

type t = C.t

let config ?(steal_policy = Global_deque) ?(steal_mode = Core.Steal_one)
    ?(resume_placement = Home_worker) ?(resume_order = Core.Newest_first)
    ?(initial_deques = default_initial_deques) () =
  { Policy.steal_policy; steal_mode; resume_placement; resume_order; initial_deques }

let create ?name ?workers ?steal_policy ?steal_mode ?resume_placement
    ?resume_order ?initial_deques () =
  C.create ?name ?workers
    ~config:
      (config ?steal_policy ?steal_mode ?resume_placement ?resume_order
         ?initial_deques ())
    ()

let run = C.run
let shutdown = C.shutdown

let with_pool ?name ?workers ?steal_policy ?steal_mode ?resume_placement
    ?resume_order ?initial_deques f =
  C.with_pool ?name ?workers
    ~config:
      (config ?steal_policy ?steal_mode ?resume_placement ?resume_order
         ?initial_deques ())
    f

let register_poller = C.register_poller
let register_shed_counter = C.register_shed_counter
let register_watchdog = C.register_watchdog
let heartbeats = C.heartbeats
let set_tracer = C.set_tracer
let name = C.name
let submit = C.submit
let scavenge_source = C.scavenge_source
let set_scavenge = C.set_scavenge
let clear_scavenge = C.clear_scavenge

(* --- fiber-facing operations --- *)

let async t f =
  let p = Promise.create () in
  let _, w = C.self () in
  let d =
    match w.active with
    | Some d -> d
    | None -> failwith "Lhws_pool.async: no active deque (call from within run)"
  in
  Chase_lev.push_bottom d.q
    (Fresh (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e)));
  ignore t;
  p

let await p =
  (match Promise.poll p with
  | Some _ -> ()
  | None ->
      Fiber.suspend (fun resume -> if not (Promise.add_waiter p resume) then resume ()));
  match Promise.poll p with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let fork2 t f g =
  let pg = async t g in
  let fv = f () in
  let gv = await pg in
  (fv, gv)

let sleep t seconds =
  if seconds <= 0. then ()
  else Fiber.suspend (fun resume -> Timer.add_in (C.timer t) ~seconds resume)

let rec parallel_for t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if n = 1 then body lo
  else
    let mid = lo + (n / 2) in
    let (), () =
      fork2 t (fun () -> parallel_for t ~lo ~hi:mid body) (fun () -> parallel_for t ~lo:mid ~hi body)
    in
    ()

let rec parallel_map_reduce t ~lo ~hi ~map ~combine ~id =
  let n = hi - lo in
  if n <= 0 then id
  else if n = 1 then map lo
  else
    let mid = lo + (n / 2) in
    let a, b =
      fork2 t
        (fun () -> parallel_map_reduce t ~lo ~hi:mid ~map ~combine ~id)
        (fun () -> parallel_map_reduce t ~lo:mid ~hi ~map ~combine ~id)
    in
    combine a b

(* --- stats --- *)

type stats = Scheduler_core.stats = {
  tasks_run : int;
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  io_syscalls : int;
  conns_shed : int;
  scavenge_steals : int;
  tasks_scavenged : int;
  tasks_donated : int;
  stalls_detected : int;
  oldest_parked_ms : float;
}

let stats = C.stats
