module Chase_lev = Lhws_deque.Chase_lev
module Core = Scheduler_core

(* Tasks are fresh fibers or captured continuations of suspended ones. *)
type task = Fresh of (unit -> unit) | Resume of (unit, unit) Effect.Deep.continuation

type deque = {
  id : int;
  owner : int;
  q : task Chase_lev.t;
  suspend_ctr : int Atomic.t;
  resumed_mu : Mutex.t;
  mutable resumed : task list;  (* protected by resumed_mu; any domain appends *)
  freed : bool Atomic.t;
  mutable in_ready : bool;  (* owner only *)
}

type wrec = {
  ctx : Core.ctx;
  mutable active : deque option;
  mutable ready : deque list;
  notify_mu : Mutex.t;
  mutable notified : deque list;  (* deques with fresh resumes; any domain appends *)
  mutable empty : deque list;  (* freed deques for reuse; owner only *)
  mutable owned_live : int;
  owned_mu : Mutex.t;
  mutable owned : deque list;  (* live owned deques, for worker-targeted steals *)
}

type steal_policy = Global_deque | Worker_then_deque

let max_gdeques = 1 lsl 16

type pstate = {
  slots : wrec array;
  gdeques : deque option array;
  gtotal : int Atomic.t;
  steal_policy : steal_policy;
  self_wid : unit -> int;
}

(* The worker this domain is currently executing as; continuations migrate
   between workers, so effect handlers must resolve it dynamically. *)
let self p = p.slots.(p.self_wid ())

(* --- deque table --- *)

let alloc_deque p w =
  let d =
    match w.empty with
    | d :: rest ->
        w.empty <- rest;
        Atomic.set d.freed false;
        d
    | [] ->
        let id = Atomic.fetch_and_add p.gtotal 1 in
        if id >= max_gdeques then failwith "Lhws_pool: deque table overflow";
        let d =
          {
            id;
            owner = w.ctx.wid;
            q = Chase_lev.create ();
            suspend_ctr = Atomic.make 0;
            resumed_mu = Mutex.create ();
            resumed = [];
            freed = Atomic.make false;
            in_ready = false;
          }
        in
        p.gdeques.(id) <- Some d;
        d
  in
  w.owned_live <- w.owned_live + 1;
  if w.owned_live > w.ctx.counters.max_owned then w.ctx.counters.max_owned <- w.owned_live;
  Mutex.lock w.owned_mu;
  w.owned <- d :: w.owned;
  Mutex.unlock w.owned_mu;
  d

let free_deque w d =
  Atomic.set d.freed true;
  w.owned_live <- w.owned_live - 1;
  w.empty <- d :: w.empty;
  Mutex.lock w.owned_mu;
  w.owned <- List.filter (fun d' -> d' != d) w.owned;
  Mutex.unlock w.owned_mu

(* Remove a deque from the owner's recycle pool (revival after a resume
   raced with freeing).  Owner-only. *)
let unfree w d =
  Atomic.set d.freed false;
  w.empty <- List.filter (fun d' -> d' != d) w.empty;
  w.owned_live <- w.owned_live + 1;
  if w.owned_live > w.ctx.counters.max_owned then w.ctx.counters.max_owned <- w.owned_live;
  Mutex.lock w.owned_mu;
  w.owned <- d :: w.owned;
  Mutex.unlock w.owned_mu

(* --- resume path: runs on any domain --- *)

let on_resume p d task =
  let was_empty =
    Mutex.lock d.resumed_mu;
    let was = d.resumed = [] in
    d.resumed <- task :: d.resumed;
    Mutex.unlock d.resumed_mu;
    was
  in
  Atomic.decr d.suspend_ctr;
  if was_empty then begin
    let o = p.slots.(d.owner) in
    Mutex.lock o.notify_mu;
    o.notified <- d :: o.notified;
    Mutex.unlock o.notify_mu
  end

(* --- fiber execution --- *)

let rec exec_fresh p f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Fiber.Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let w = self p in
                  let d =
                    match w.active with
                    | Some d -> d
                    | None -> failwith "Lhws_pool: suspend with no active deque"
                  in
                  Atomic.incr d.suspend_ctr;
                  w.ctx.counters.suspensions <- w.ctx.counters.suspensions + 1;
                  Core.mark w.ctx Tracing.Suspend;
                  register (fun () -> on_resume p d (Resume k)))
          | _ -> None);
    }

and run_task p task =
  match task with Fresh f -> exec_fresh p f | Resume k -> Effect.Deep.continue k ()

(* Execute a batch of resumed continuations as a pfor tree: halves are
   pushed as spawnable tasks, so the batch unfolds in parallel with
   logarithmic span, exactly as addResumedVertices prescribes. *)
let rec pfor_exec p batch lo hi =
  let n = hi - lo in
  if n = 1 then run_task p batch.(lo)
  else begin
    let mid = lo + (n / 2) in
    let w = self p in
    (match w.active with
    | Some d -> Chase_lev.push_bottom d.q (Fresh (fun () -> pfor_exec p batch mid hi))
    | None -> assert false);
    pfor_exec p batch lo mid
  end

(* addResumedVertices: drain notifications, re-inject each deque's resumed
   batch, move the deque to the ready set.  Owner only. *)
let drain_resumed p w =
  let notified =
    Mutex.lock w.notify_mu;
    let ds = w.notified in
    w.notified <- [];
    Mutex.unlock w.notify_mu;
    ds
  in
  List.iter
    (fun d ->
      let batch =
        Mutex.lock d.resumed_mu;
        let b = d.resumed in
        d.resumed <- [];
        Mutex.unlock d.resumed_mu;
        b
      in
      match batch with
      | [] -> ()
      | _ ->
          Core.mark w.ctx Tracing.Resume_batch;
          w.ctx.counters.resumes <- w.ctx.counters.resumes + List.length batch;
          if Atomic.get d.freed then unfree w d;
          let task =
            match batch with
            | [ single ] -> single
            | _ ->
                let arr = Array.of_list (List.rev batch) in
                Fresh (fun () -> pfor_exec p arr 0 (Array.length arr))
          in
          Chase_lev.push_bottom d.q task;
          let is_active = match w.active with Some a -> a == d | None -> false in
          if (not is_active) && not d.in_ready then begin
            d.in_ready <- true;
            w.ready <- d :: w.ready
          end)
    (List.rev notified)

(* Retire an exhausted active deque: free it if nothing will come back. *)
let retire_active w =
  match w.active with
  | None -> ()
  | Some d ->
      w.active <- None;
      if Atomic.get d.suspend_ctr = 0 then begin
        (* A racing resume may still slip in; drain_resumed revives. *)
        Mutex.lock d.resumed_mu;
        let quiet = d.resumed = [] in
        Mutex.unlock d.resumed_mu;
        if quiet && Chase_lev.is_empty d.q then free_deque w d
      end

let try_steal p w =
  match p.steal_policy with
  | Global_deque -> (
      (* The analyzed policy: uniform over the global deque table. *)
      let n = Atomic.get p.gtotal in
      if n = 0 then None
      else
        match p.gdeques.(Random.State.int w.ctx.rng n) with
        | None -> None
        | Some d -> if Atomic.get d.freed then None else Chase_lev.steal d.q)
  | Worker_then_deque -> (
      (* Section 6's implementation: pick a worker, then one of its deques
         that currently has work — fewer failed steals, at the cost of a
         brief lock on the victim's deque list. *)
      let victim = p.slots.(Random.State.int w.ctx.rng (Array.length p.slots)) in
      Mutex.lock victim.owned_mu;
      let candidates = List.filter (fun d -> not (Chase_lev.is_empty d.q)) victim.owned in
      let pick =
        match candidates with
        | [] -> None
        | _ -> Some (List.nth candidates (Random.State.int w.ctx.rng (List.length candidates)))
      in
      Mutex.unlock victim.owned_mu;
      match pick with None -> None | Some d -> Chase_lev.steal d.q)

(* One scheduling decision: the next task to run, switching or stealing as
   needed.  Mirrors lines 40-56 of Figure 3. *)
let next_task p w =
  let from_active () =
    match w.active with
    | Some d -> (
        match Chase_lev.pop_bottom d.q with
        | Some task -> Some task
        | None ->
            retire_active w;
            None)
    | None -> None
  in
  match from_active () with
  | Some task -> Some task
  | None -> (
      match w.ready with
      | d :: rest -> (
          w.ready <- rest;
          d.in_ready <- false;
          w.active <- Some d;
          match Chase_lev.pop_bottom d.q with
          | Some task -> Some task
          | None ->
              (* emptied by thieves since it was enqueued *)
              retire_active w;
              None)
      | [] -> (
          match try_steal p w with
          | Some task ->
              w.ctx.counters.steals <- w.ctx.counters.steals + 1;
              Core.mark w.ctx Tracing.Steal;
              let nd = alloc_deque p w in
              w.active <- Some nd;
              Some task
          | None -> None))

(* --- the policy: multi-deque suspend/resume over the shared engine --- *)

module Policy = struct
  let label = "Lhws_pool"
  let rng_salt = 0xACE5

  type config = steal_policy

  let default_config = Global_deque

  type nonrec task = task
  type pool = pstate
  type wstate = wrec

  let make_pool steal_policy ~ctxs ~self_wid =
    {
      slots =
        Array.map
          (fun ctx ->
            {
              ctx;
              active = None;
              ready = [];
              notify_mu = Mutex.create ();
              notified = [];
              empty = [];
              owned_live = 0;
              owned_mu = Mutex.create ();
              owned = [];
            })
          ctxs;
      gdeques = Array.make max_gdeques None;
      gtotal = Atomic.make 0;
      steal_policy;
      self_wid;
    }

  let worker p i = p.slots.(i)
  let drain = drain_resumed
  let next = next_task
  let exec p _w task = run_task p task

  let inject p w thunk =
    (* Bootstrap: give the worker an active deque holding the root fiber. *)
    let d = match w.active with Some d -> d | None -> alloc_deque p w in
    w.active <- Some d;
    Chase_lev.push_bottom d.q (Fresh thunk)

  let deques_allocated p = Atomic.get p.gtotal
end

module C = Core.Make (Policy)

type t = C.t

let create ?workers ?steal_policy () = C.create ?workers ?config:steal_policy ()
let run = C.run
let shutdown = C.shutdown

let with_pool ?workers ?steal_policy f = C.with_pool ?workers ?config:steal_policy f

let register_poller = C.register_poller
let set_tracer = C.set_tracer

(* --- fiber-facing operations --- *)

let async t f =
  let p = Promise.create () in
  let _, w = C.self () in
  let d =
    match w.active with
    | Some d -> d
    | None -> failwith "Lhws_pool.async: no active deque (call from within run)"
  in
  Chase_lev.push_bottom d.q
    (Fresh (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e)));
  ignore t;
  p

let await p =
  (match Promise.poll p with
  | Some _ -> ()
  | None ->
      Fiber.suspend (fun resume -> if not (Promise.add_waiter p resume) then resume ()));
  match Promise.poll p with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let fork2 t f g =
  let pg = async t g in
  let fv = f () in
  let gv = await pg in
  (fv, gv)

let sleep t seconds =
  if seconds <= 0. then ()
  else Fiber.suspend (fun resume -> Timer.add_in (C.timer t) ~seconds resume)

let rec parallel_for t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if n = 1 then body lo
  else
    let mid = lo + (n / 2) in
    let (), () =
      fork2 t (fun () -> parallel_for t ~lo ~hi:mid body) (fun () -> parallel_for t ~lo:mid ~hi body)
    in
    ()

let rec parallel_map_reduce t ~lo ~hi ~map ~combine ~id =
  let n = hi - lo in
  if n <= 0 then id
  else if n = 1 then map lo
  else
    let mid = lo + (n / 2) in
    let a, b =
      fork2 t
        (fun () -> parallel_map_reduce t ~lo ~hi:mid ~map ~combine ~id)
        (fun () -> parallel_map_reduce t ~lo:mid ~hi ~map ~combine ~id)
    in
    combine a b

(* --- stats --- *)

type stats = Scheduler_core.stats = {
  steals : int;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
}

let stats = C.stats
