module Chase_lev = Lhws_deque.Chase_lev

(* Tasks are fresh fibers or captured continuations of suspended ones. *)
type task = Fresh of (unit -> unit) | Resume of (unit, unit) Effect.Deep.continuation

type deque = {
  id : int;
  owner : int;
  q : task Chase_lev.t;
  suspend_ctr : int Atomic.t;
  resumed_mu : Mutex.t;
  mutable resumed : task list;  (* protected by resumed_mu; any domain appends *)
  freed : bool Atomic.t;
  mutable in_ready : bool;  (* owner only *)
}

type worker = {
  wid : int;
  mutable active : deque option;
  mutable ready : deque list;
  notify_mu : Mutex.t;
  mutable notified : deque list;  (* deques with fresh resumes; any domain appends *)
  mutable empty : deque list;  (* freed deques for reuse; owner only *)
  mutable owned_live : int;
  owned_mu : Mutex.t;
  mutable owned : deque list;  (* live owned deques, for worker-targeted steals *)
  rng : Random.State.t;
  mutable steals : int;
  mutable suspensions : int;
  mutable resumes : int;
  mutable max_owned : int;
}

type steal_policy = Global_deque | Worker_then_deque

let max_gdeques = 1 lsl 16

type t = {
  workers : worker array;
  gdeques : deque option array;
  gtotal : int Atomic.t;
  steal_policy : steal_policy;
  mutable tracer : Tracing.t option;
  timer : Timer.t;
  mutable pollers : (unit -> int) list;  (* extra event sources, e.g. I/O *)
  stop : bool Atomic.t;
  mutable domains : unit Domain.t array;
  mutable running : bool;
}

(* The worker currently executing on this domain; read by effect handlers,
   which may run on a different domain than the one that installed them. *)
let current_worker : worker option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let self () =
  match !(Domain.DLS.get current_worker) with
  | Some w -> w
  | None -> failwith "Lhws_pool: not running on a pool worker"

(* --- deque table --- *)

let alloc_deque t w =
  let d =
    match w.empty with
    | d :: rest ->
        w.empty <- rest;
        Atomic.set d.freed false;
        d
    | [] ->
        let id = Atomic.fetch_and_add t.gtotal 1 in
        if id >= max_gdeques then failwith "Lhws_pool: deque table overflow";
        let d =
          {
            id;
            owner = w.wid;
            q = Chase_lev.create ();
            suspend_ctr = Atomic.make 0;
            resumed_mu = Mutex.create ();
            resumed = [];
            freed = Atomic.make false;
            in_ready = false;
          }
        in
        t.gdeques.(id) <- Some d;
        d
  in
  w.owned_live <- w.owned_live + 1;
  if w.owned_live > w.max_owned then w.max_owned <- w.owned_live;
  Mutex.lock w.owned_mu;
  w.owned <- d :: w.owned;
  Mutex.unlock w.owned_mu;
  d

let free_deque w d =
  Atomic.set d.freed true;
  w.owned_live <- w.owned_live - 1;
  w.empty <- d :: w.empty;
  Mutex.lock w.owned_mu;
  w.owned <- List.filter (fun d' -> d' != d) w.owned;
  Mutex.unlock w.owned_mu

(* Remove a deque from the owner's recycle pool (revival after a resume
   raced with freeing).  Owner-only. *)
let unfree w d =
  Atomic.set d.freed false;
  w.empty <- List.filter (fun d' -> d' != d) w.empty;
  w.owned_live <- w.owned_live + 1;
  if w.owned_live > w.max_owned then w.max_owned <- w.owned_live;
  Mutex.lock w.owned_mu;
  w.owned <- d :: w.owned;
  Mutex.unlock w.owned_mu

(* --- resume path: runs on any domain --- *)

let on_resume t d task =
  let was_empty =
    Mutex.lock d.resumed_mu;
    let was = d.resumed = [] in
    d.resumed <- task :: d.resumed;
    Mutex.unlock d.resumed_mu;
    was
  in
  Atomic.decr d.suspend_ctr;
  if was_empty then begin
    let o = t.workers.(d.owner) in
    Mutex.lock o.notify_mu;
    o.notified <- d :: o.notified;
    Mutex.unlock o.notify_mu
  end

(* --- fiber execution --- *)

let rec exec_fresh t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Fiber.Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let w = self () in
                  let d =
                    match w.active with
                    | Some d -> d
                    | None -> failwith "Lhws_pool: suspend with no active deque"
                  in
                  Atomic.incr d.suspend_ctr;
                  w.suspensions <- w.suspensions + 1;
                  (match t.tracer with
                  | Some tr ->
                      Tracing.record tr ~worker:w.wid Tracing.Suspend
                        ~start_us:(Tracing.now_us ()) ~dur_us:0.
                  | None -> ());
                  register (fun () -> on_resume t d (Resume k)))
          | _ -> None);
    }

and run_task t task =
  match task with Fresh f -> exec_fresh t f | Resume k -> Effect.Deep.continue k ()

(* Execute a batch of resumed continuations as a pfor tree: halves are
   pushed as spawnable tasks, so the batch unfolds in parallel with
   logarithmic span, exactly as addResumedVertices prescribes. *)
let rec pfor_exec t batch lo hi =
  let n = hi - lo in
  if n = 1 then run_task t batch.(lo)
  else begin
    let mid = lo + (n / 2) in
    let w = self () in
    (match w.active with
    | Some d -> Chase_lev.push_bottom d.q (Fresh (fun () -> pfor_exec t batch mid hi))
    | None -> assert false);
    pfor_exec t batch lo mid
  end

(* addResumedVertices: drain notifications, re-inject each deque's resumed
   batch, move the deque to the ready set.  Owner only. *)
let drain_resumed t w =
  let notified =
    Mutex.lock w.notify_mu;
    let ds = w.notified in
    w.notified <- [];
    Mutex.unlock w.notify_mu;
    ds
  in
  List.iter
    (fun d ->
      let batch =
        Mutex.lock d.resumed_mu;
        let b = d.resumed in
        d.resumed <- [];
        Mutex.unlock d.resumed_mu;
        b
      in
      match batch with
      | [] -> ()
      | _ ->
          (match t.tracer with
          | Some tr ->
              Tracing.record tr ~worker:w.wid Tracing.Resume_batch
                ~start_us:(Tracing.now_us ()) ~dur_us:0.
          | None -> ());
          w.resumes <- w.resumes + List.length batch;
          if Atomic.get d.freed then unfree w d;
          let task =
            match batch with
            | [ single ] -> single
            | _ ->
                let arr = Array.of_list (List.rev batch) in
                Fresh (fun () -> pfor_exec t arr 0 (Array.length arr))
          in
          Chase_lev.push_bottom d.q task;
          let is_active = match w.active with Some a -> a == d | None -> false in
          if (not is_active) && not d.in_ready then begin
            d.in_ready <- true;
            w.ready <- d :: w.ready
          end)
    (List.rev notified)

(* Retire an exhausted active deque: free it if nothing will come back. *)
let retire_active w =
  match w.active with
  | None -> ()
  | Some d ->
      w.active <- None;
      if Atomic.get d.suspend_ctr = 0 then begin
        (* A racing resume may still slip in; drain_resumed revives. *)
        Mutex.lock d.resumed_mu;
        let quiet = d.resumed = [] in
        Mutex.unlock d.resumed_mu;
        if quiet && Chase_lev.is_empty d.q then free_deque w d
      end

let try_steal t w =
  match t.steal_policy with
  | Global_deque -> (
      (* The analyzed policy: uniform over the global deque table. *)
      let n = Atomic.get t.gtotal in
      if n = 0 then None
      else
        match t.gdeques.(Random.State.int w.rng n) with
        | None -> None
        | Some d -> if Atomic.get d.freed then None else Chase_lev.steal d.q)
  | Worker_then_deque -> (
      (* Section 6's implementation: pick a worker, then one of its deques
         that currently has work — fewer failed steals, at the cost of a
         brief lock on the victim's deque list. *)
      let victim = t.workers.(Random.State.int w.rng (Array.length t.workers)) in
      Mutex.lock victim.owned_mu;
      let candidates = List.filter (fun d -> not (Chase_lev.is_empty d.q)) victim.owned in
      let pick =
        match candidates with
        | [] -> None
        | _ -> Some (List.nth candidates (Random.State.int w.rng (List.length candidates)))
      in
      Mutex.unlock victim.owned_mu;
      match pick with None -> None | Some d -> Chase_lev.steal d.q)

(* One scheduling decision: the next task to run, switching or stealing as
   needed.  Mirrors lines 40-56 of Figure 3. *)
let next_task t w =
  let from_active () =
    match w.active with
    | Some d -> (
        match Chase_lev.pop_bottom d.q with
        | Some task -> Some task
        | None ->
            retire_active w;
            None)
    | None -> None
  in
  match from_active () with
  | Some task -> Some task
  | None -> (
      match w.ready with
      | d :: rest -> (
          w.ready <- rest;
          d.in_ready <- false;
          w.active <- Some d;
          match Chase_lev.pop_bottom d.q with
          | Some task -> Some task
          | None ->
              (* emptied by thieves since it was enqueued *)
              retire_active w;
              None)
      | [] -> (
          match try_steal t w with
          | Some task ->
              w.steals <- w.steals + 1;
              (match t.tracer with
              | Some tr ->
                  Tracing.record tr ~worker:w.wid Tracing.Steal
                    ~start_us:(Tracing.now_us ()) ~dur_us:0.
              | None -> ());
              let nd = alloc_deque t w in
              w.active <- Some nd;
              Some task
          | None -> None))

let backoff_us = 50

let worker_loop t w ~until =
  let dls = Domain.DLS.get current_worker in
  let saved = !dls in
  dls := Some w;
  let rec loop idle_spins =
    if Atomic.get t.stop || until () then ()
    else begin
      ignore (Timer.poll t.timer : int);
      List.iter (fun poll -> ignore (poll () : int)) t.pollers;
      drain_resumed t w;
      match next_task t w with
      | Some task ->
          (match t.tracer with
          | None -> run_task t task
          | Some tr ->
              let start_us = Tracing.now_us () in
              run_task t task;
              Tracing.record tr ~worker:w.wid Tracing.Task_run ~start_us
                ~dur_us:(Tracing.now_us () -. start_us));
          loop 0
      | None ->
          (* Nothing runnable: back off to avoid burning the core (we may
             be oversubscribed), but stay responsive to timer expiry. *)
          if idle_spins > 16 then Unix.sleepf (float_of_int backoff_us /. 1e6)
          else Domain.cpu_relax ();
          loop (idle_spins + 1)
    end
  in
  Fun.protect ~finally:(fun () -> dls := saved) (fun () -> loop 0)

let create ?(workers = 2) ?(steal_policy = Global_deque) () =
  if workers < 1 then invalid_arg "Lhws_pool.create: workers must be >= 1";
  let t =
    {
      workers =
        Array.init workers (fun wid ->
            {
              wid;
              active = None;
              ready = [];
              notify_mu = Mutex.create ();
              notified = [];
              empty = [];
              owned_live = 0;
              owned_mu = Mutex.create ();
              owned = [];
              rng = Random.State.make [| 0xACE5; wid |];
              steals = 0;
              suspensions = 0;
              resumes = 0;
              max_owned = 0;
            });
      gdeques = Array.make max_gdeques None;
      gtotal = Atomic.make 0;
      steal_policy;
      tracer = None;
      timer = Timer.create ();
      pollers = [];
      stop = Atomic.make false;
      domains = [||];
      running = false;
    }
  in
  t.domains <-
    Array.init (workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t t.workers.(i + 1) ~until:(fun () -> false)));
  t

let shutdown t =
  Atomic.set t.stop true;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let with_pool ?workers ?steal_policy f =
  let t = create ?workers ?steal_policy () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let register_poller t poll = t.pollers <- poll :: t.pollers

let set_tracer t tracer = t.tracer <- Some tracer

(* --- fiber-facing operations --- *)

let async t f =
  let p = Promise.create () in
  let w = self () in
  let d =
    match w.active with
    | Some d -> d
    | None -> failwith "Lhws_pool.async: no active deque (call from within run)"
  in
  Chase_lev.push_bottom d.q
    (Fresh (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e)));
  ignore t;
  p

let await p =
  (match Promise.poll p with
  | Some _ -> ()
  | None ->
      Fiber.suspend (fun resume -> if not (Promise.add_waiter p resume) then resume ()));
  match Promise.poll p with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

let fork2 t f g =
  let pg = async t g in
  let fv = f () in
  let gv = await pg in
  (fv, gv)

let sleep t seconds =
  if seconds <= 0. then ()
  else Fiber.suspend (fun resume -> Timer.add_in t.timer ~seconds resume)

let rec parallel_for t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if n = 1 then body lo
  else
    let mid = lo + (n / 2) in
    let (), () =
      fork2 t (fun () -> parallel_for t ~lo ~hi:mid body) (fun () -> parallel_for t ~lo:mid ~hi body)
    in
    ()

let rec parallel_map_reduce t ~lo ~hi ~map ~combine ~id =
  let n = hi - lo in
  if n <= 0 then id
  else if n = 1 then map lo
  else
    let mid = lo + (n / 2) in
    let a, b =
      fork2 t
        (fun () -> parallel_map_reduce t ~lo ~hi:mid ~map ~combine ~id)
        (fun () -> parallel_map_reduce t ~lo:mid ~hi ~map ~combine ~id)
    in
    combine a b

(* --- driving the pool from the outside --- *)

let run t f =
  if Atomic.get t.stop then invalid_arg "Lhws_pool.run: pool is shut down";
  if t.running then invalid_arg "Lhws_pool.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let w0 = t.workers.(0) in
      let p = Promise.create () in
      (* Bootstrap: give worker 0 an active deque holding the root fiber. *)
      let d = match w0.active with Some d -> d | None -> alloc_deque t w0 in
      w0.active <- Some d;
      Chase_lev.push_bottom d.q
        (Fresh (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e)));
      worker_loop t w0 ~until:(fun () -> Promise.is_resolved p);
      Promise.get_exn p)

(* --- stats --- *)

type stats = {
  steals : int;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
}

let stats t =
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 t.workers in
  {
    steals = sum (fun w -> w.steals);
    deques_allocated = Atomic.get t.gtotal;
    suspensions = sum (fun w -> w.suspensions);
    resumes = sum (fun w -> w.resumes);
    max_deques_per_worker = Array.fold_left (fun acc w -> max acc w.max_owned) 0 t.workers;
  }
