/* poll(2) bindings for the reactor's readiness backend.

   Unix.select cannot express a descriptor number at or above
   FD_SETSIZE (1024): the OCaml binding rejects it with EINVAL, which
   caps a select-backed reactor at ~1k concurrent connections per
   process — three decimal orders below the serving layer's target.
   poll(2) has no such ceiling (POSIX, present on every platform this
   repo builds on), so it is the default backend; the select backend
   remains selectable for comparison (LHWS_BACKEND=select).

   The interface is deliberately dumb: parallel int arrays in, revents
   bits out, so the OCaml side owns all bookkeeping and the stub stays
   a straight syscall wrapper.  Interest/result bits:

     1 = readable (POLLIN;  results also set it on POLLERR/POLLHUP so a
         broken fd wakes its waiter, whose own syscall then surfaces
         the error)
     2 = writable (POLLOUT; same error/hup widening)
     4 = invalid  (POLLNVAL: the fd is not open — the probe sweep turns
         this into EBADF for the parked fiber)

   Return value: poll's own (number of fds with non-zero revents), or
   -1 for EINTR — the caller retries with a recomputed timeout.  Other
   errors (EFAULT/EINVAL/ENOMEM) are programming or resource errors and
   raise Failure.

   The fd/events arrays are copied out before releasing the runtime
   lock and the revents written back only after re-acquiring it: the GC
   may move the OCaml arrays while the lock is down. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>

CAMLprim value lhws_poll_stub(value vfds, value vevents, value vrevents,
                              value vn, value vtimeout_ms)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout_ms);
  int n = Int_val(vn);
  int timeout = Int_val(vtimeout_ms);
  struct pollfd small[64];
  struct pollfd *pfds = small;
  int ret;

  if (n < 0 || n > Wosize_val(vfds) || n > Wosize_val(vevents)
      || n > Wosize_val(vrevents))
    caml_failwith("lhws_poll: bad length");

  if (n > 64) {
    pfds = malloc((size_t)n * sizeof(struct pollfd));
    if (pfds == NULL) caml_failwith("lhws_poll: out of memory");
  }

  for (int i = 0; i < n; i++) {
    int ev = Int_val(Field(vevents, i));
    pfds[i].fd = Int_val(Field(vfds, i));
    pfds[i].events = (short)(((ev & 1) ? POLLIN : 0) | ((ev & 2) ? POLLOUT : 0));
    pfds[i].revents = 0;
  }

  caml_enter_blocking_section();
  ret = poll(pfds, (nfds_t)n, timeout);
  caml_leave_blocking_section();

  if (ret < 0) {
    int e = errno;
    if (pfds != small) free(pfds);
    if (e == EINTR) CAMLreturn(Val_int(-1));
    caml_failwith("lhws_poll: poll(2) failed");
  }

  for (int i = 0; i < n; i++) {
    short re = pfds[i].revents;
    int out = 0;
    if (re & (POLLIN | POLLERR | POLLHUP)) out |= 1;
    if (re & (POLLOUT | POLLERR | POLLHUP)) out |= 2;
    if (re & POLLNVAL) out |= 4;
    Store_field(vrevents, i, Val_int(out));
  }

  if (pfds != small) free(pfds);
  CAMLreturn(Val_int(ret));
}

/* Best-effort RLIMIT_NOFILE raise: lift the soft limit toward the hard
   limit, up to [want] descriptors, and return the resulting soft
   limit.  The c10k bench legs call this so a default 1024-fd shell
   does not masquerade as a scheduler ceiling; failure is not an error
   (the caller scales the leg to what it got). */
CAMLprim value lhws_raise_nofile_stub(value vwant)
{
  CAMLparam1(vwant);
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(vwant);

  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) CAMLreturn(Val_long(-1));
  if (rl.rlim_cur < want) {
    rlim_t target = want;
    if (rl.rlim_max != RLIM_INFINITY && target > rl.rlim_max)
      target = rl.rlim_max;
    if (target > rl.rlim_cur) {
      struct rlimit nrl = rl;
      nrl.rlim_cur = target;
      if (setrlimit(RLIMIT_NOFILE, &nrl) == 0) rl.rlim_cur = target;
    }
  }
  if (rl.rlim_cur == RLIM_INFINITY) CAMLreturn(Val_long(1 << 30));
  CAMLreturn(Val_long((long)rl.rlim_cur));
}
