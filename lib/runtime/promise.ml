type 'a state = Pending of (unit -> unit) list | Resolved of ('a, exn) result

type 'a t = 'a state Atomic.t

let create () = Atomic.make (Pending [])

let rec fulfill p result =
  match Atomic.get p with
  | Resolved _ -> invalid_arg "Promise.fulfill: already resolved"
  | Pending waiters as old ->
      if Atomic.compare_and_set p old (Resolved result) then
        List.iter (fun waiter -> waiter ()) waiters
      else fulfill p result

let poll p = match Atomic.get p with Pending _ -> None | Resolved r -> Some r

let is_resolved p = poll p <> None

let rec add_waiter p waiter =
  match Atomic.get p with
  | Resolved _ -> false
  | Pending waiters as old ->
      if Atomic.compare_and_set p old (Pending (waiter :: waiters)) then true
      else add_waiter p waiter

let get_exn p =
  match Atomic.get p with
  | Pending _ -> invalid_arg "Promise.get_exn: still pending"
  | Resolved (Ok v) -> v
  | Resolved (Error e) -> raise e
