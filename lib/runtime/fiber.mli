(** Fibers: user-level threads that can suspend without blocking their
    worker, via OCaml 5 effects.

    A latency-incurring operation calls {!suspend}[ register]: the
    scheduler captures the fiber's continuation, builds a [resume] thunk
    that will re-enqueue it, and hands [resume] to [register].  [register]
    arranges for [resume] to be called exactly once when the operation
    completes (timer expiry, promise fulfilment, I/O readiness, ...).
    [resume] is safe to call from any domain. *)

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
        (** Performed by {!suspend}; handled by the schedulers. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] suspends the current fiber.  Must run on a
    scheduler worker; otherwise the effect is unhandled and raises
    [Effect.Unhandled]. *)

val yield : unit -> unit
(** Suspend and immediately re-enqueue: lets other work run first. *)
