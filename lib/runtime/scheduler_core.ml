type steal_mode = Steal_one | Steal_half

let steal_hist_buckets = 8

type counters = {
  mutable steals : int;
  mutable failed_steals : int;
  mutable steals_batched : int;
  mutable tasks_stolen : int;
  steal_hist : int array;  (* bucket i: steals that took i+1 tasks; last = larger *)
  mutable suspensions : int;
  mutable resumes : int;
  mutable max_owned : int;
}

(* Record one successful steal that took [tasks] tasks (>= 1). *)
let count_steal c ~tasks =
  c.steals <- c.steals + 1;
  c.tasks_stolen <- c.tasks_stolen + tasks;
  if tasks > 1 then c.steals_batched <- c.steals_batched + 1;
  let bucket = min (tasks - 1) (steal_hist_buckets - 1) in
  c.steal_hist.(bucket) <- c.steal_hist.(bucket) + 1

(* Per-worker EWMA of steal success per victim slot.  Biases victim
   selection away from chronically empty deques via power-of-two-choices:
   draw two candidate victims uniformly (excluding self) and attack the one
   with the better observed hit rate.  Two-choice keeps the pick O(1) and
   retains enough exploration that a victim whose rate decayed to ~0 is
   still probed occasionally, so the estimate can recover when the load
   shifts.  The array is owner-written (the thief records its own
   hit/miss), so it is padded to keep it off other workers' lines. *)
module Victim_stats = struct
  type t = float array

  let alpha = 0.125

  let create ~victims : t =
    Lhws_deque.Padding.copy_as_padded (Array.make (max victims 1) 0.5)

  let record (t : t) v ~hit =
    let x = if hit then 1.0 else 0.0 in
    t.(v) <- t.(v) +. (alpha *. (x -. t.(v)))

  (* Requires at least two workers (callers only steal when victims exist). *)
  let pick (t : t) rng ~self =
    let n = Array.length t in
    let draw () =
      let v = Random.State.int rng (n - 1) in
      if v >= self then v + 1 else v
    in
    let a = draw () in
    let b = draw () in
    if t.(b) > t.(a) then b else a
end

type ctx = {
  wid : int;
  rng : Random.State.t;
  counters : counters;
  emit : Tracing.kind -> start_us:float -> dur_us:float -> unit;
  tracing : unit -> bool;
}

let mark ctx kind =
  if ctx.tracing () then ctx.emit kind ~start_us:(Tracing.now_us ()) ~dur_us:0.

type stats = {
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  conns_shed : int;
}

module type POLICY = sig
  val label : string
  val rng_salt : int

  type config

  val default_config : config

  type task
  type pool
  type wstate

  val make_pool : config -> ctxs:ctx array -> self_wid:(unit -> int) -> pool
  val worker : pool -> int -> wstate
  val expects_resumes : pool -> wstate -> bool
  val drain : pool -> wstate -> unit
  val next : pool -> wstate -> task option
  val exec : pool -> wstate -> task -> unit
  val inject : pool -> wstate -> (unit -> unit) -> unit
  val deques_allocated : pool -> int
end

type poller = {
  poll_fn : unit -> int;
  pending_fn : (unit -> int) option;  (* gauge: fibers parked in this source *)
}

module Make (P : POLICY) = struct
  type t = {
    ctxs : ctx array;
    pool : P.pool;
    timer : Timer.t;
    tracer : Tracing.t option ref;
    mutable pollers : poller list;  (* extra event sources, e.g. I/O *)
    (* overload-shed counters published by serving layers (listeners);
       CAS-pushed because registration happens from worker tasks *)
    shed_fns : (unit -> int) list Atomic.t;
    pump_lock : bool Atomic.t;  (* elects the one worker pumping timer/pollers *)
    stop : bool Atomic.t;
    mutable domains : unit Domain.t array;
    mutable running : bool;
  }

  (* The worker currently executing on this domain; read by effect handlers,
     which may run on a different domain than the one that installed them. *)
  let current : (ctx * P.wstate) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let self_opt () = !(Domain.DLS.get current)

  let self () =
    match self_opt () with
    | Some cw -> cw
    | None -> failwith (P.label ^ ": not running on a pool worker")

  let self_wid () = (fst (self ())).wid

  let backoff_base_us = 50
  let backoff_max_us = 1_000

  (* Pump event sources, decontended two ways.  First, the timer's earliest
     deadline is read from a lock-free mirror, so when nothing is registered
     the common case costs one atomic load — no heap mutex, no clock read.
     Second, at most one worker at a time pumps (CAS-elected): a losing
     worker skips rather than queueing on the timer's mutex, and the winner
     pays the single [Unix.gettimeofday] on everyone's behalf. *)
  let pump t =
    let hint = Timer.next_deadline_hint t.timer in
    if hint < infinity || t.pollers <> [] then
      if Atomic.compare_and_set t.pump_lock false true then
        Fun.protect
          ~finally:(fun () -> Atomic.set t.pump_lock false)
          (fun () ->
            if hint < infinity && hint <= Unix.gettimeofday () then
              ignore (Timer.poll t.timer : int);
            List.iter (fun p -> ignore (p.poll_fn () : int)) t.pollers)

  (* The engine's inner loop: pump event sources, re-inject resumed work,
     pick a task, run it (traced), back off when idle.  Reentrant — a
     blocking join may call [help] from inside a running task. *)
  let help t ~until =
    let ctx, w = self () in
    let rec loop idle_spins =
      if Atomic.get t.stop || until () then ()
      else begin
        pump t;
        P.drain t.pool w;
        match P.next t.pool w with
        | Some task ->
            (match !(t.tracer) with
            | None -> P.exec t.pool w task
            | Some tr ->
                let start_us = Tracing.now_us () in
                P.exec t.pool w task;
                Tracing.record tr ~worker:ctx.wid Tracing.Task_run ~start_us
                  ~dur_us:(Tracing.now_us () -. start_us));
            loop 0
        | None ->
            (* Nothing runnable: spin briefly, then back off exponentially
               (capped) to avoid burning the core — we may be
               oversubscribed — clamping the sleep to the next timer
               deadline so expiry is never overslept. *)
            if idle_spins < 16 then Domain.cpu_relax ()
            else begin
              (* A worker that owns suspended fibers may be handed a resume
                 from another domain at any moment, and nothing interrupts a
                 sleeping worker — so such workers stay at the base poll
                 interval and only truly-idle ones climb to the cap.

                 Deliberate tradeoff: nothing wakes a truly-idle worker when
                 fresh tasks are pushed elsewhere either, so pickup of newly
                 injected work via stealing can lag by up to [backoff_max_us]
                 (vs. [backoff_base_us] before backoff existed).  We accept
                 that: a worker only reaches the cap after the pool has been
                 drained for ~30 poll intervals, and the alternative — the
                 push path signalling sleepers — would put a syscall or a
                 contended atomic on the spawn hot path this engine exists to
                 keep lean.  If sub-millisecond cold-start injection latency
                 ever matters, lower [backoff_max_us] rather than touching
                 the push path. *)
              let cap =
                if P.expects_resumes t.pool w then backoff_base_us else backoff_max_us
              in
              let shift = min (idle_spins - 16) 5 in
              let us = min cap (backoff_base_us lsl shift) in
              let s = float_of_int us /. 1e6 in
              let s =
                let hint = Timer.next_deadline_hint t.timer in
                if hint < infinity then min s (hint -. Unix.gettimeofday ()) else s
              in
              if s > 0. then Unix.sleepf s else Domain.cpu_relax ()
            end;
            loop (idle_spins + 1)
      end
    in
    loop 0

  let worker_loop t wid ~until =
    let dls = Domain.DLS.get current in
    let saved = !dls in
    dls := Some (t.ctxs.(wid), P.worker t.pool wid);
    Fun.protect ~finally:(fun () -> dls := saved) (fun () -> help t ~until)

  let create ?(workers = 2) ?(config = P.default_config) () =
    if workers < 1 then invalid_arg (P.label ^ ".create: workers must be >= 1");
    let tracer = ref None in
    let ctxs =
      Array.init workers (fun wid ->
          {
            wid;
            rng = Random.State.make [| P.rng_salt; wid |];
            counters =
              {
                steals = 0;
                failed_steals = 0;
                steals_batched = 0;
                tasks_stolen = 0;
                steal_hist = Array.make steal_hist_buckets 0;
                suspensions = 0;
                resumes = 0;
                max_owned = 0;
              };
            emit =
              (fun kind ~start_us ~dur_us ->
                match !tracer with
                | Some tr -> Tracing.record tr ~worker:wid kind ~start_us ~dur_us
                | None -> ());
            tracing = (fun () -> !tracer <> None);
          })
    in
    let t =
      {
        ctxs;
        pool = P.make_pool config ~ctxs ~self_wid;
        timer = Timer.create ();
        tracer;
        pollers = [];
        shed_fns = Atomic.make [];
        pump_lock = Lhws_deque.Padding.make_atomic false;
        stop = Atomic.make false;
        domains = [||];
        running = false;
      }
    in
    t.domains <-
      Array.init (workers - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t (i + 1) ~until:(fun () -> false)));
    t

  let shutdown t =
    Atomic.set t.stop true;
    Array.iter Domain.join t.domains;
    t.domains <- [||]

  let with_pool ?workers ?config f =
    let t = create ?workers ?config () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let run t f =
    if Atomic.get t.stop then invalid_arg (P.label ^ ".run: pool is shut down");
    if t.running then invalid_arg (P.label ^ ".run: already running");
    t.running <- true;
    Fun.protect
      ~finally:(fun () -> t.running <- false)
      (fun () ->
        let p = Promise.create () in
        P.inject t.pool (P.worker t.pool 0)
          (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e));
        worker_loop t 0 ~until:(fun () -> Promise.is_resolved p);
        Promise.get_exn p)

  let pool t = t.pool
  let timer t = t.timer
  let workers t = Array.length t.ctxs
  let set_tracer t tracer = t.tracer := Some tracer
  let register_poller t ?pending poll =
    t.pollers <- { poll_fn = poll; pending_fn = pending } :: t.pollers

  let register_shed_counter t f =
    let rec push () =
      let old = Atomic.get t.shed_fns in
      if not (Atomic.compare_and_set t.shed_fns old (f :: old)) then push ()
    in
    push ()

  let stats t =
    let sum f = Array.fold_left (fun acc c -> acc + f c.counters) 0 t.ctxs in
    let hist = Array.make steal_hist_buckets 0 in
    Array.iter
      (fun c ->
        Array.iteri (fun i v -> hist.(i) <- hist.(i) + v) c.counters.steal_hist)
      t.ctxs;
    {
      steals = sum (fun c -> c.steals);
      failed_steals = sum (fun c -> c.failed_steals);
      steals_batched = sum (fun c -> c.steals_batched);
      tasks_stolen = sum (fun c -> c.tasks_stolen);
      tasks_per_steal_hist = hist;
      deques_allocated = P.deques_allocated t.pool;
      suspensions = sum (fun c -> c.suspensions);
      resumes = sum (fun c -> c.resumes);
      max_deques_per_worker =
        Array.fold_left (fun acc c -> max acc c.counters.max_owned) 0 t.ctxs;
      io_pending =
        List.fold_left
          (fun acc p -> match p.pending_fn with Some f -> acc + f () | None -> acc)
          0 t.pollers;
      conns_shed = List.fold_left (fun acc f -> acc + f ()) 0 (Atomic.get t.shed_fns);
    }
end
