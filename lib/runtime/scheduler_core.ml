type steal_mode = Steal_one | Steal_half

(* Where resumed continuations re-enter the scheduling order.
   [Newest_first] is the historical behaviour: resume batches are pushed
   onto their home deque (popped LIFO) and freshly notified deques are
   pushed onto the owner's ready stack — great locality, but under
   saturation the newest connections monopolize the workers and the
   oldest starve (ROADMAP item 2: c10k p99 ~ wall clock).  [Aged_fifo]
   routes resumed continuations through a per-worker FIFO lane in
   arrival order — oldest batch first — bounding staleness at the cost
   of the batch-unfolding parallelism. *)
type resume_order = Newest_first | Aged_fifo

let steal_hist_buckets = 8

type counters = {
  mutable tasks_run : int;
  mutable steals : int;
  mutable failed_steals : int;
  mutable steals_batched : int;
  mutable tasks_stolen : int;
  steal_hist : int array;  (* bucket i: steals that took i+1 tasks; last = larger *)
  mutable suspensions : int;
  mutable resumes : int;
  mutable max_owned : int;
  mutable scavenge_steals : int;
  mutable tasks_scavenged : int;
  mutable heartbeats : int;
      (* bumped once per scheduling-loop iteration; a stall watchdog reads
         it to tell a progressing worker from a stuck one *)
}

(* Record one successful steal that took [tasks] tasks (>= 1). *)
let count_steal c ~tasks =
  c.steals <- c.steals + 1;
  c.tasks_stolen <- c.tasks_stolen + tasks;
  if tasks > 1 then c.steals_batched <- c.steals_batched + 1;
  let bucket = min (tasks - 1) (steal_hist_buckets - 1) in
  c.steal_hist.(bucket) <- c.steal_hist.(bucket) + 1

(* Per-worker EWMA of steal success per victim slot.  Biases victim
   selection away from chronically empty deques via power-of-two-choices:
   draw two candidate victims uniformly (excluding self) and attack the one
   with the better observed hit rate.  Two-choice keeps the pick O(1) and
   retains enough exploration that a victim whose rate decayed to ~0 is
   still probed occasionally, so the estimate can recover when the load
   shifts.  The array is owner-written (the thief records its own
   hit/miss), so it is padded to keep it off other workers' lines. *)
module Victim_stats = struct
  (* The rate array is behind a mutable field so it can grow: a scavenger
     tracking a sibling pool may discover more victim slots than it was
     created with (sibling pools have independent worker counts).  Growth
     is owner-only (the thief resizes its own tracker), so no
     synchronization is needed. *)
  type t = { mutable rates : float array }

  let alpha = 0.125

  let create ~victims : t =
    { rates = Lhws_deque.Padding.copy_as_padded (Array.make (max victims 1) 0.5) }

  let capacity t = Array.length t.rates

  let ensure_capacity t n =
    if n > Array.length t.rates then begin
      let grown = Lhws_deque.Padding.copy_as_padded (Array.make n 0.5) in
      Array.blit t.rates 0 grown 0 (Array.length t.rates);
      t.rates <- grown
    end

  let record t v ~hit =
    let x = if hit then 1.0 else 0.0 in
    t.rates.(v) <- t.rates.(v) +. (alpha *. (x -. t.rates.(v)))

  let rate t v = t.rates.(v)

  (* Requires at least two workers (callers only steal when victims exist). *)
  let pick t rng ~self =
    let n = Array.length t.rates in
    let draw () =
      let v = Random.State.int rng (n - 1) in
      if v >= self then v + 1 else v
    in
    let a = draw () in
    let b = draw () in
    if t.rates.(b) > t.rates.(a) then b else a

  (* Two-choice over [0, n) with no self slot — cross-pool scavengers are
     never candidate victims of the pool they raid.  [n] may be smaller
     than capacity (the tracker is grown to the largest sibling seen). *)
  let pick_foreign t rng ~n =
    if n <= 1 then 0
    else begin
      let a = Random.State.int rng n in
      let b = Random.State.int rng n in
      if t.rates.(b) > t.rates.(a) then b else a
    end
end

type ctx = {
  wid : int;
  rng : Random.State.t;
  counters : counters;
  emit : Tracing.kind -> start_us:float -> dur_us:float -> unit;
  tracing : unit -> bool;
}

let mark ctx kind =
  if ctx.tracing () then ctx.emit kind ~start_us:(Tracing.now_us ()) ~dur_us:0.

type stats = {
  tasks_run : int;
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  io_syscalls : int;
  conns_shed : int;
  scavenge_steals : int;
  tasks_scavenged : int;
  tasks_donated : int;
  stalls_detected : int;
  oldest_parked_ms : float;
}

(* A pool's stealable surface, as seen by a sibling pool's idle workers.
   Deliberately first-class (a plain record, not a functor output) so a
   pool built from one policy can scavenge a pool built from another —
   the thief only ever sees portable thunks through [sink].  [src_steal]
   returns how many tasks it delivered; tasks that cannot run outside
   their home pool (captured continuations, internal batch re-injections)
   are never exported. *)
type scavenge_source = {
  src_name : string;  (* registry name of the donor pool *)
  src_workers : unit -> int;  (* victim slots to track *)
  src_steal :
    rng:Random.State.t ->
    tracker:Victim_stats.t ->
    mode:steal_mode ->
    sink:((unit -> unit) -> unit) ->
    int;
  src_donated : int Atomic.t;  (* total tasks this pool gave away *)
}

(* Process-level registry of live engine instances, so topologies,
   diagnostics and CLIs can enumerate every pool in the process.  CAS on
   an immutable list: registration is rare (pool create/shutdown). *)
type registry_entry = {
  reg_id : int;
  reg_name : string;
  reg_label : string;  (* policy label, e.g. "Lhws_pool" *)
  reg_workers : int;
  reg_stats : unit -> stats;
}

module Registry = struct
  let next_id = Atomic.make 0
  let table : registry_entry list Atomic.t = Atomic.make []

  let register ?name ~label ~workers ~stats () =
    let id = Atomic.fetch_and_add next_id 1 in
    let name =
      match name with Some n -> n | None -> label ^ "-" ^ string_of_int id
    in
    let e =
      { reg_id = id; reg_name = name; reg_label = label; reg_workers = workers;
        reg_stats = stats }
    in
    let rec push () =
      let old = Atomic.get table in
      if not (Atomic.compare_and_set table old (e :: old)) then push ()
    in
    push ();
    e

  let unregister e =
    let rec remove () =
      let old = Atomic.get table in
      let trimmed = List.filter (fun x -> x.reg_id <> e.reg_id) old in
      if not (Atomic.compare_and_set table old trimmed) then remove ()
    in
    remove ()

  let entries () = List.rev (Atomic.get table)
  let find name = List.find_opt (fun e -> e.reg_name = name) (entries ())
end

module type POLICY = sig
  val label : string
  val rng_salt : int

  type config

  val default_config : config

  type task
  type pool
  type wstate

  val make_pool : config -> ctxs:ctx array -> self_wid:(unit -> int) -> pool
  val worker : pool -> int -> wstate
  val expects_resumes : pool -> wstate -> bool
  val drain : pool -> wstate -> unit
  val next : pool -> wstate -> task option
  val exec : pool -> wstate -> task -> unit
  val inject : pool -> wstate -> pinned:bool -> (unit -> unit) -> unit
  val deques_allocated : pool -> int

  val export_steal :
    pool ->
    rng:Random.State.t ->
    tracker:Victim_stats.t ->
    mode:steal_mode ->
    sink:((unit -> unit) -> unit) ->
    int
  (* One cross-pool steal attempt against this pool: pick a victim via
     [tracker], steal per [mode], deliver only pool-portable thunks to
     [sink] and return how many were delivered.  Non-portable loot must
     be requeued locally, not dropped. *)
end

type poller = {
  poll_fn : unit -> int;
  pending_fn : (unit -> int) option;  (* gauge: fibers parked in this source *)
  syscalls_fn : (unit -> int) option;  (* counter: kernel I/O calls issued *)
}

module Make (P : POLICY) = struct
  type t = {
    ctxs : ctx array;
    pool : P.pool;
    timer : Timer.t;
    tracer : Tracing.t option ref;
    mutable pollers : poller list;  (* extra event sources, e.g. I/O *)
    (* overload-shed counters published by serving layers (listeners);
       CAS-pushed because registration happens from worker tasks *)
    shed_fns : (unit -> int) list Atomic.t;
    (* stall-watchdog snapshots: each closure yields (stalls so far,
       oldest parked age in ms); same CAS-push discipline as [shed_fns] *)
    watchdog_fns : (unit -> int * float) list Atomic.t;
    pump_lock : bool Atomic.t;  (* elects the one worker pumping timer/pollers *)
    stop : bool Atomic.t;
    mutable domains : unit Domain.t array;
    mutable running : bool;
    (* External submission: per-worker Treiber-stack inboxes drained by the
       owning worker at the top of its scheduling loop, so [submit] is safe
       from any thread (including non-workers) and the thunk is pinned to
       this pool — it can only ever start on one of this pool's workers. *)
    submits : (unit -> unit) list Atomic.t array;
    submit_rr : int Atomic.t;
    (* Cross-pool scavenging: when set, idle workers raid the sibling after
       local steals fail and before climbing the deep-backoff ladder. *)
    scavenge : (scavenge_source * steal_mode) option Atomic.t;
    scav_trackers : Victim_stats.t array;  (* per-worker EWMA over sibling slots *)
    donated : int Atomic.t;  (* tasks exported from this pool via scavenging *)
    entry : registry_entry;
  }

  (* The worker currently executing on this domain; read by effect handlers,
     which may run on a different domain than the one that installed them. *)
  let current : (ctx * P.wstate) option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let self_opt () = !(Domain.DLS.get current)

  let self () =
    match self_opt () with
    | Some cw -> cw
    | None -> failwith (P.label ^ ": not running on a pool worker")

  let self_wid () = (fst (self ())).wid

  let backoff_base_us = 50
  let backoff_max_us = 1_000

  (* Pump event sources, decontended two ways.  First, the timer's earliest
     deadline is read from a lock-free mirror, so when nothing is registered
     the common case costs one atomic load — no heap mutex, no clock read.
     Second, at most one worker at a time pumps (CAS-elected): a losing
     worker skips rather than queueing on the timer's mutex, and the winner
     pays the single [Unix.gettimeofday] on everyone's behalf. *)
  let pump t =
    let hint = Timer.next_deadline_hint t.timer in
    if hint < infinity || t.pollers <> [] then
      if Atomic.compare_and_set t.pump_lock false true then
        Fun.protect
          ~finally:(fun () -> Atomic.set t.pump_lock false)
          (fun () ->
            if hint < infinity && hint <= Unix.gettimeofday () then
              ignore (Timer.poll t.timer : int);
            List.iter (fun p -> ignore (p.poll_fn () : int)) t.pollers)

  (* Move externally submitted thunks into the worker's local queue.
     Exchange empties the Treiber stack in one atomic op; the reverse
     restores submission order. *)
  let drain_submits t ctx w =
    let inbox = t.submits.(ctx.wid) in
    if Atomic.get inbox != [] then
      List.iter
        (fun f -> P.inject t.pool w ~pinned:false f)
        (List.rev (Atomic.exchange inbox []))

  (* One cross-pool steal attempt.  The loot arrives through [P.inject] on
     this worker, becoming native local tasks of the thief's pool — so a
     scavenged thunk's children, suspensions and resumes all live here. *)
  let try_scavenge t ctx w =
    match Atomic.get t.scavenge with
    | None -> false
    | Some (src, mode) ->
        let tracker = t.scav_trackers.(ctx.wid) in
        Victim_stats.ensure_capacity tracker (src.src_workers ());
        let got =
          src.src_steal ~rng:ctx.rng ~tracker ~mode
            ~sink:(fun f -> P.inject t.pool w ~pinned:false f)
        in
        if got > 0 then begin
          ctx.counters.scavenge_steals <- ctx.counters.scavenge_steals + 1;
          ctx.counters.tasks_scavenged <- ctx.counters.tasks_scavenged + got;
          ignore (Atomic.fetch_and_add src.src_donated got : int);
          mark ctx Tracing.Scavenge;
          true
        end
        else false

  (* Idle iterations of pure local spinning before an idle worker starts
     raiding its scavenge sibling: local steals get first refusal, and the
     first raid lands before the backoff ladder (spins >= 16) starts. *)
  let scavenge_after_spins = 8

  (* The engine's inner loop: pump event sources, re-inject resumed work,
     pick a task, run it (traced), back off when idle.  Reentrant — a
     blocking join may call [help] from inside a running task. *)
  let help t ~until =
    let ctx, w = self () in
    let rec loop idle_spins =
      if Atomic.get t.stop || until () then ()
      else begin
        ctx.counters.heartbeats <- ctx.counters.heartbeats + 1;
        pump t;
        drain_submits t ctx w;
        P.drain t.pool w;
        match P.next t.pool w with
        | Some task ->
            ctx.counters.tasks_run <- ctx.counters.tasks_run + 1;
            (match !(t.tracer) with
            | None -> P.exec t.pool w task
            | Some tr ->
                let start_us = Tracing.now_us () in
                P.exec t.pool w task;
                Tracing.record tr ~worker:ctx.wid Tracing.Task_run ~start_us
                  ~dur_us:(Tracing.now_us () -. start_us));
            loop 0
        | None when idle_spins >= scavenge_after_spins && try_scavenge t ctx w ->
            loop 0
        | None ->
            (* Nothing runnable: spin briefly, then back off exponentially
               (capped) to avoid burning the core — we may be
               oversubscribed — clamping the sleep to the next timer
               deadline so expiry is never overslept. *)
            if idle_spins < 16 then Domain.cpu_relax ()
            else begin
              (* A worker that owns suspended fibers may be handed a resume
                 from another domain at any moment, and nothing interrupts a
                 sleeping worker — so such workers stay at the base poll
                 interval and only truly-idle ones climb to the cap.

                 Deliberate tradeoff: nothing wakes a truly-idle worker when
                 fresh tasks are pushed elsewhere either, so pickup of newly
                 injected work via stealing can lag by up to [backoff_max_us]
                 (vs. [backoff_base_us] before backoff existed).  We accept
                 that: a worker only reaches the cap after the pool has been
                 drained for ~30 poll intervals, and the alternative — the
                 push path signalling sleepers — would put a syscall or a
                 contended atomic on the spawn hot path this engine exists to
                 keep lean.  If sub-millisecond cold-start injection latency
                 ever matters, lower [backoff_max_us] rather than touching
                 the push path. *)
              let cap =
                if P.expects_resumes t.pool w then backoff_base_us else backoff_max_us
              in
              let shift = min (idle_spins - 16) 5 in
              let us = min cap (backoff_base_us lsl shift) in
              let s = float_of_int us /. 1e6 in
              let s =
                let hint = Timer.next_deadline_hint t.timer in
                if hint < infinity then min s (hint -. Unix.gettimeofday ()) else s
              in
              if s > 0. then Unix.sleepf s else Domain.cpu_relax ()
            end;
            loop (idle_spins + 1)
      end
    in
    loop 0

  let worker_loop t wid ~until =
    let dls = Domain.DLS.get current in
    let saved = !dls in
    dls := Some (t.ctxs.(wid), P.worker t.pool wid);
    Fun.protect ~finally:(fun () -> dls := saved) (fun () -> help t ~until)

  let stats t =
    let sum f = Array.fold_left (fun acc c -> acc + f c.counters) 0 t.ctxs in
    let hist = Array.make steal_hist_buckets 0 in
    Array.iter
      (fun c ->
        Array.iteri (fun i v -> hist.(i) <- hist.(i) + v) c.counters.steal_hist)
      t.ctxs;
    let wd_stalls, wd_oldest =
      List.fold_left
        (fun (s, o) f ->
          let s', o' = f () in
          (s + s', Float.max o o'))
        (0, 0.) (Atomic.get t.watchdog_fns)
    in
    {
      tasks_run = sum (fun c -> c.tasks_run);
      steals = sum (fun c -> c.steals);
      failed_steals = sum (fun c -> c.failed_steals);
      steals_batched = sum (fun c -> c.steals_batched);
      tasks_stolen = sum (fun c -> c.tasks_stolen);
      tasks_per_steal_hist = hist;
      deques_allocated = P.deques_allocated t.pool;
      suspensions = sum (fun c -> c.suspensions);
      resumes = sum (fun c -> c.resumes);
      max_deques_per_worker =
        Array.fold_left (fun acc c -> max acc c.counters.max_owned) 0 t.ctxs;
      io_pending =
        List.fold_left
          (fun acc p -> match p.pending_fn with Some f -> acc + f () | None -> acc)
          0 t.pollers;
      io_syscalls =
        List.fold_left
          (fun acc p -> match p.syscalls_fn with Some f -> acc + f () | None -> acc)
          0 t.pollers;
      conns_shed = List.fold_left (fun acc f -> acc + f ()) 0 (Atomic.get t.shed_fns);
      scavenge_steals = sum (fun c -> c.scavenge_steals);
      tasks_scavenged = sum (fun c -> c.tasks_scavenged);
      tasks_donated = Atomic.get t.donated;
      stalls_detected = wd_stalls;
      oldest_parked_ms = wd_oldest;
    }

  let create ?name ?(workers = 2) ?(config = P.default_config) () =
    if workers < 1 then invalid_arg (P.label ^ ".create: workers must be >= 1");
    let tracer = ref None in
    let ctxs =
      Array.init workers (fun wid ->
          {
            wid;
            rng = Random.State.make [| P.rng_salt; wid |];
            counters =
              {
                tasks_run = 0;
                steals = 0;
                failed_steals = 0;
                steals_batched = 0;
                tasks_stolen = 0;
                steal_hist = Array.make steal_hist_buckets 0;
                suspensions = 0;
                resumes = 0;
                max_owned = 0;
                scavenge_steals = 0;
                tasks_scavenged = 0;
                heartbeats = 0;
              };
            emit =
              (fun kind ~start_us ~dur_us ->
                match !tracer with
                | Some tr -> Tracing.record tr ~worker:wid kind ~start_us ~dur_us
                | None -> ());
            tracing = (fun () -> !tracer <> None);
          })
    in
    (* The registry entry needs the stats closure, which needs [t]; tie the
       knot through a forward ref. *)
    let stats_fwd = ref (fun () -> failwith "stats before init") in
    let entry =
      Registry.register ?name ~label:P.label ~workers
        ~stats:(fun () -> !stats_fwd ()) ()
    in
    let t =
      {
        ctxs;
        pool = P.make_pool config ~ctxs ~self_wid;
        timer = Timer.create ();
        tracer;
        pollers = [];
        shed_fns = Atomic.make [];
        watchdog_fns = Atomic.make [];
        pump_lock = Lhws_deque.Padding.make_atomic false;
        stop = Atomic.make false;
        domains = [||];
        running = false;
        submits = Array.init workers (fun _ -> Atomic.make []);
        submit_rr = Atomic.make 0;
        scavenge = Atomic.make None;
        scav_trackers = Array.init workers (fun _ -> Victim_stats.create ~victims:1);
        donated = Atomic.make 0;
        entry;
      }
    in
    stats_fwd := (fun () -> stats t);
    t.domains <-
      Array.init (workers - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t (i + 1) ~until:(fun () -> false)));
    t

  let shutdown t =
    Atomic.set t.stop true;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    Registry.unregister t.entry

  let with_pool ?name ?workers ?config f =
    let t = create ?name ?workers ?config () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  let run t f =
    if Atomic.get t.stop then invalid_arg (P.label ^ ".run: pool is shut down");
    if t.running then invalid_arg (P.label ^ ".run: already running");
    t.running <- true;
    Fun.protect
      ~finally:(fun () -> t.running <- false)
      (fun () ->
        let p = Promise.create () in
        (* Pinned: a scavenging sibling must never steal the root task —
           the caller joins on its completion, and a root carried into a
           pool that shuts down first can never fulfill [p]. *)
        P.inject t.pool (P.worker t.pool 0) ~pinned:true
          (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e));
        worker_loop t 0 ~until:(fun () -> Promise.is_resolved p);
        Promise.get_exn p)

  let pool t = t.pool
  let timer t = t.timer
  let workers t = Array.length t.ctxs
  let set_tracer t tracer = t.tracer := Some tracer
  let register_poller t ?pending ?syscalls poll =
    t.pollers <- { poll_fn = poll; pending_fn = pending; syscalls_fn = syscalls } :: t.pollers

  let register_shed_counter t f =
    let rec push () =
      let old = Atomic.get t.shed_fns in
      if not (Atomic.compare_and_set t.shed_fns old (f :: old)) then push ()
    in
    push ()

  let register_watchdog_stats t f =
    let rec push () =
      let old = Atomic.get t.watchdog_fns in
      if not (Atomic.compare_and_set t.watchdog_fns old (f :: old)) then push ()
    in
    push ()

  let heartbeats t = Array.map (fun c -> c.counters.heartbeats) t.ctxs

  (* Emit a [Stalled] tracing event from a registered poller: the pump
     runs on a worker domain, whose per-worker trace buffer is safe to
     write from here (single writer).  Dropped when the caller is not a
     worker of this pool (e.g. stats readers probing from outside). *)
  let mark_stall t =
    ignore t;
    match self_opt () with Some (ctx, _) -> mark ctx Tracing.Stalled | None -> ()

  (* Full pool-side watchdog wiring in one call: the sweep rides this
     pool's pump, detections land in this pool's stats and trace, and
     this pool's workers come under heartbeat surveillance.  The
     reactor side ([Watchdog.attach_io]) is wired by whoever owns the
     reactor (e.g. [Reactor.fibers ~watchdog]). *)
  let register_watchdog t wd =
    Watchdog.add_on_stall wd (fun _msg -> mark_stall t);
    Watchdog.attach_heartbeats wd ~name:t.entry.reg_name (fun () -> heartbeats t);
    register_poller t (fun () -> Watchdog.poll wd);
    register_watchdog_stats t (fun () -> Watchdog.snapshot wd)

  let name t = t.entry.reg_name
  let registry_entry t = t.entry

  (* Pool-pinned submission: the thunk lands in one worker's inbox (round
     robin) and can only ever start on this pool.  Safe from any thread.
     A sleeping worker picks its inbox up at its next poll — worst case
     the idle-backoff cap (see [help]); submitters needing lower cold-start
     latency should keep the pool warm. *)
  let submit t f =
    if Atomic.get t.stop then invalid_arg (P.label ^ ".submit: pool is shut down");
    let wid = Atomic.fetch_and_add t.submit_rr 1 mod Array.length t.submits in
    let inbox = t.submits.(wid) in
    let rec push () =
      let old = Atomic.get inbox in
      if not (Atomic.compare_and_set inbox old (f :: old)) then push ()
    in
    push ()

  let scavenge_source t =
    {
      src_name = t.entry.reg_name;
      src_workers = (fun () -> Array.length t.ctxs);
      src_steal =
        (fun ~rng ~tracker ~mode ~sink ->
          P.export_steal t.pool ~rng ~tracker ~mode ~sink);
      src_donated = t.donated;
    }

  let set_scavenge t ?(mode = Steal_one) src =
    if src.src_donated == t.donated then
      invalid_arg (P.label ^ ".set_scavenge: a pool cannot scavenge itself");
    Atomic.set t.scavenge (Some (src, mode))

  let clear_scavenge t = Atomic.set t.scavenge None
end
