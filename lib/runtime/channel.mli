(** Channels between fibers: the communication primitive for {e interacting}
    parallel computations (requests from clients, streams between pipeline
    stages).

    Receiving from an empty channel — and, on a bounded channel, sending
    into a full one — suspends the calling fiber via {!Fiber.suspend}, so
    it must run on a scheduler that handles suspension (the latency-hiding
    pool).  The blocking baseline pool has no way to park a fiber; that
    contrast is precisely the paper's point.

    Channels are multi-producer multi-consumer and domain-safe.  Fairness:
    waiters are served FIFO. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty channel.  [capacity] bounds the number of buffered elements
    (senders beyond it suspend); default unbounded.
    @raise Invalid_argument if [capacity < 1]. *)

val send : 'a t -> 'a -> unit
(** Delivers an element, waking a waiting receiver if any.  Suspends while
    the channel is at capacity. *)

val recv : 'a t -> 'a
(** Takes the oldest element, suspending until one is available. *)

val try_recv : 'a t -> 'a option
(** Non-suspending receive. *)

val try_send : 'a t -> 'a -> bool
(** Non-suspending send; [false] if the channel is at capacity. *)

val length : 'a t -> int
(** Buffered elements (snapshot). *)

val close : 'a t -> unit
(** Closing makes every current and future [recv] on an empty channel
    raise {!Closed}, and every [send] raise {!Closed}.  Buffered elements
    can still be received.  Idempotent. *)

exception Closed

val is_closed : 'a t -> bool
