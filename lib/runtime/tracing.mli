(** Lightweight event tracing for the runtime pools: what each worker did
    and when, exportable to Chrome's trace-event format for visual
    inspection in [chrome://tracing] / Perfetto.

    Recording is lock-free on the hot path (one pre-sized buffer per
    worker, sequential writes by that worker); events past the buffer
    capacity are dropped and counted.  Timestamps are
    [Unix.gettimeofday]-based microseconds. *)

type kind =
  | Task_run  (** a task (fresh fiber or resumed continuation) executed *)
  | Suspend  (** a fiber suspended on this worker *)
  | Resume_batch  (** a batch of resumed fibers was re-injected *)
  | Steal  (** a successful steal landed on this worker *)
  | Scavenge  (** a successful cross-pool steal landed on this worker *)
  | Blocked  (** the worker blocked for the event's duration (e.g. a blocking sleep) *)
  | Stalled
      (** the watchdog detected a stall: a parked intent whose wakeup was
          lost, or a worker whose heartbeat stopped advancing *)

val kind_name : kind -> string

type event = { worker : int; kind : kind; start_us : float; dur_us : float }

type t

val create : ?capacity_per_worker:int -> workers:int -> unit -> t
(** [capacity_per_worker] defaults to 65536 events. *)

val record : t -> worker:int -> kind -> start_us:float -> dur_us:float -> unit
(** Called by worker [worker] only (single-writer per buffer). *)

val now_us : unit -> float

val events : t -> event list
(** All recorded events, in worker order then chronological order.  Call
    after the traced run completes. *)

val dropped : t -> int
(** Events lost to full buffers. *)

val to_chrome_json : t -> string
(** The trace as Chrome trace-event JSON (an array of complete "X"
    events, one per recorded event, with the worker as tid). *)

val write_chrome_json : string -> t -> unit
