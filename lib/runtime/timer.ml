(* Mutex-protected binary min-heap on (deadline, seq).

   The heap itself stays under the mutex, but the earliest deadline is
   mirrored into a lock-free atomic so every worker's per-iteration "could
   anything be due?" probe costs one atomic read — no mutex, and no
   [Unix.gettimeofday] when the mirror says the heap is empty.

   Entries track their heap slot ([index]) so a cancellation can remove
   them in O(log n) instead of leaving a dead closure queued until the
   deadline passes — per-operation I/O deadline waits cancel on the
   ready path, and a busy server must not accumulate one dead entry per
   completed read within the timeout horizon. *)

type entry = {
  deadline : float;
  seq : int;
  mutable callback : (unit -> unit) option;  (* [None] once fired or cancelled *)
  mutable index : int;  (* slot in [heap]; -1 once out.  Guarded by [mu]. *)
}

type handle = entry

type t = {
  mu : Mutex.t;
  mutable heap : entry option array;
  mutable size : int;
  mutable next_seq : int;
  earliest : float Atomic.t;  (* mirror of heap.(0).deadline; [infinity] when empty *)
}

let create () =
  {
    mu = Mutex.create ();
    heap = Array.make 64 None;
    size = 0;
    next_seq = 0;
    earliest = Lhws_deque.Padding.make_atomic infinity;
  }

let lt a b = a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

let get t i = match t.heap.(i) with Some e -> e | None -> assert false

let swap t i j =
  let x = t.heap.(i) and y = t.heap.(j) in
  t.heap.(i) <- y;
  t.heap.(j) <- x;
  (match x with Some e -> e.index <- j | None -> ());
  match y with Some e -> e.index <- i | None -> ()

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt (get t l) (get t !smallest) then smallest := l;
  if r < t.size && lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* Owner of [t.mu] only. *)
let refresh_earliest t =
  Atomic.set t.earliest (if t.size = 0 then infinity else (get t 0).deadline)

(* Owner of [t.mu] only: detach the entry at slot [i], refill the hole
   with the last element and restore heap order in both directions (the
   moved element may be smaller than the hole's parent). *)
let remove_at t i =
  let e = get t i in
  e.index <- -1;
  t.size <- t.size - 1;
  let last = t.heap.(t.size) in
  t.heap.(t.size) <- None;
  if i < t.size then begin
    t.heap.(i) <- last;
    (match last with Some e' -> e'.index <- i | None -> ());
    sift_down t i;
    sift_up t i
  end

let add_cancellable t ~deadline callback =
  Mutex.lock t.mu;
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) None in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let e = { deadline; seq = t.next_seq; callback = Some callback; index = t.size } in
  t.heap.(t.size) <- Some e;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  refresh_earliest t;
  Mutex.unlock t.mu;
  e

let add t ~deadline callback = ignore (add_cancellable t ~deadline callback : handle)

let add_in t ~seconds callback = add t ~deadline:(Unix.gettimeofday () +. seconds) callback

let cancel t e =
  Mutex.lock t.mu;
  if e.index >= 0 then begin
    remove_at t e.index;
    refresh_earliest t
  end;
  (* Too late to stop a callback already popped by [pop_due]; dropping
     the closure here is still a no-op in that case. *)
  e.callback <- None;
  Mutex.unlock t.mu

let pop_due t now =
  Mutex.lock t.mu;
  let rec take () =
    if t.size = 0 then None
    else
      let top = get t 0 in
      if top.deadline > now then None
      else begin
        remove_at t 0;
        match top.callback with
        | None -> take ()  (* lost the race with [cancel]; skip it *)
        | Some cb ->
            top.callback <- None;
            Some cb
      end
  in
  let result = take () in
  refresh_earliest t;
  Mutex.unlock t.mu;
  result

let next_deadline_hint t = Atomic.get t.earliest

let poll t =
  let now = Unix.gettimeofday () in
  let rec go n = match pop_due t now with Some cb -> cb (); go (n + 1) | None -> n in
  go 0

let pending t =
  Mutex.lock t.mu;
  let n = t.size in
  Mutex.unlock t.mu;
  n

let next_deadline t =
  Mutex.lock t.mu;
  let d = if t.size = 0 then None else Some (get t 0).deadline in
  Mutex.unlock t.mu;
  d
