(* Stall watchdog: the part of the runtime that notices when nothing
   else will.

   Every other liveness mechanism in the stack is attached to a
   specific wait — a deadline races one intent, a probe sweep fires
   when a batched pass rejects the set.  The watchdog is the backstop
   for the failures those cannot see: a completion dropped in transit
   (the fiber stays parked with nobody left to wake it), a backend that
   silently forgot a descriptor, a worker wedged inside a task.  It
   periodically sweeps the reactors' intent census ({!Io.sweep_stalled})
   and compares per-worker heartbeat counters, counts what it finds,
   and — in [Fail] mode — completes lost-wakeup fibers loudly with
   {!Stalled} so an orphaned parked fiber becomes an error the
   application sees instead of a hang the operator discovers. *)

type action = Warn | Fail

exception Stalled of string

let () =
  Printexc.register_printer (function
    | Stalled msg -> Some (Printf.sprintf "Watchdog.Stalled(%s)" msg)
    | _ -> None)

(* One pool's heartbeat surface: per-worker loop-iteration counters plus
   the sweep's memory of when each last advanced.  Sweep-only state —
   the single elected sweeper is the one writer. *)
type hb = {
  hb_name : string;
  hb_read : unit -> int array;
  mutable hb_last : int array;  (* counter values at the previous sweep *)
  mutable hb_since : float array;  (* when each counter last advanced *)
  mutable hb_flagged : bool array;  (* already reported this stuck episode *)
}

type t = {
  grace : float;
  stuck_after : float;
  interval : float;
  action : action;
  ios : Io.t list Atomic.t;
  hbs : hb list Atomic.t;
  on_stall : (string -> unit) list Atomic.t;
  stalls : int Atomic.t;
  worker_stalls : int Atomic.t;
  last_sweep : float Atomic.t;
  sweeping : bool Atomic.t;  (* one sweeper at a time; losers skip *)
}

let rec push_atomic l x =
  let old = Atomic.get l in
  if not (Atomic.compare_and_set l old (x :: old)) then push_atomic l x

let create ?(grace = 0.25) ?(action = Fail) ?interval ?stuck_after () =
  if grace <= 0. then invalid_arg "Watchdog.create: grace must be positive";
  let interval = match interval with Some i -> i | None -> grace /. 4. in
  let stuck_after =
    match stuck_after with Some s -> s | None -> Float.max (10. *. grace) 1.
  in
  {
    grace;
    stuck_after;
    interval;
    action;
    ios = Atomic.make [];
    hbs = Atomic.make [];
    on_stall = Atomic.make [];
    stalls = Atomic.make 0;
    worker_stalls = Atomic.make 0;
    last_sweep = Atomic.make 0.;
    sweeping = Atomic.make false;
  }

let grace t = t.grace
let attach_io t io = push_atomic t.ios io

let attach_heartbeats t ~name read =
  push_atomic t.hbs
    {
      hb_name = name;
      hb_read = read;
      hb_last = [||];
      hb_since = [||];
      hb_flagged = [||];
    }

let add_on_stall t f = push_atomic t.on_stall f

let report t msg = List.iter (fun f -> f msg) (Atomic.get t.on_stall)

(* Compare one pool's heartbeats against the last sweep's snapshot.  A
   worker whose counter has not moved for [stuck_after] is reported once
   per stuck episode (warn-only: there is no safe way to fail a wedged
   domain, and a long-running legitimate task is indistinguishable from
   a deadlock — which is why the threshold is far above [grace]). *)
let check_heartbeats t hb ~now =
  let cur = hb.hb_read () in
  let n = Array.length cur in
  if Array.length hb.hb_last <> n then begin
    hb.hb_last <- Array.copy cur;
    hb.hb_since <- Array.make n now;
    hb.hb_flagged <- Array.make n false;
    0
  end
  else begin
    let found = ref 0 in
    for i = 0 to n - 1 do
      if cur.(i) <> hb.hb_last.(i) then begin
        hb.hb_last.(i) <- cur.(i);
        hb.hb_since.(i) <- now;
        hb.hb_flagged.(i) <- false
      end
      else if (not hb.hb_flagged.(i)) && now -. hb.hb_since.(i) > t.stuck_after
      then begin
        hb.hb_flagged.(i) <- true;
        incr found;
        Atomic.incr t.worker_stalls;
        report t
          (Printf.sprintf "worker %d of %s: no heartbeat for %.0f ms" i
             hb.hb_name
             ((now -. hb.hb_since.(i)) *. 1e3))
      end
    done;
    !found
  end

(* One full sweep, unpaced: reactors first (lost wakeups, stale
   registrations), then heartbeats.  Exposed for tests; production
   callers go through {!poll}. *)
let sweep_now t =
  let now = Unix.gettimeofday () in
  let fail =
    match t.action with Fail -> Some (fun msg -> Stalled msg) | Warn -> None
  in
  let io_stalls =
    List.fold_left
      (fun acc io ->
        acc
        + Io.sweep_stalled io ~grace:t.grace ~probe_every:t.stuck_after ~fail ())
      0 (Atomic.get t.ios)
  in
  if io_stalls > 0 then begin
    ignore (Atomic.fetch_and_add t.stalls io_stalls : int);
    report t
      (Printf.sprintf "%d stalled intent%s swept" io_stalls
         (if io_stalls = 1 then "" else "s"))
  end;
  let hb_stalls =
    List.fold_left (fun acc hb -> acc + check_heartbeats t hb ~now) 0
      (Atomic.get t.hbs)
  in
  if hb_stalls > 0 then ignore (Atomic.fetch_and_add t.stalls hb_stalls : int);
  io_stalls + hb_stalls

let poll t =
  let now = Unix.gettimeofday () in
  if now -. Atomic.get t.last_sweep < t.interval then 0
  else if not (Atomic.compare_and_set t.sweeping false true) then 0
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.sweeping false)
      (fun () ->
        Atomic.set t.last_sweep now;
        sweep_now t)

let stalls_detected t = Atomic.get t.stalls
let worker_stalls t = Atomic.get t.worker_stalls

let oldest_parked_ms t =
  List.fold_left
    (fun acc io -> Float.max acc (Io.oldest_parked_ms io))
    0. (Atomic.get t.ios)

let snapshot t = (stalls_detected t, oldest_parked_ms t)
