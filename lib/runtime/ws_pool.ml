module Chase_lev = Lhws_deque.Chase_lev

type worker = {
  wid : int;
  q : (unit -> unit) Chase_lev.t;
  rng : Random.State.t;
  mutable steals : int;
}

type t = {
  workers : worker array;
  stop : bool Atomic.t;
  mutable domains : unit Domain.t array;
  mutable running : bool;
}

let current_worker : worker option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let self () =
  match !(Domain.DLS.get current_worker) with
  | Some w -> w
  | None -> failwith "Ws_pool: not running on a pool worker"

let try_steal t w =
  let p = Array.length t.workers in
  if p = 1 then None
  else begin
    let k = Random.State.int w.rng (p - 1) in
    let vid = if k >= w.wid then k + 1 else k in
    match Chase_lev.steal t.workers.(vid).q with
    | Some task ->
        w.steals <- w.steals + 1;
        Some task
    | None -> None
  end

let next_task t w =
  match Chase_lev.pop_bottom w.q with Some task -> Some task | None -> try_steal t w

let backoff_us = 50

(* Run tasks until [until ()] holds; used both as the top-level worker loop
   and as the helping loop inside [await]. *)
let help_until t w ~until =
  let rec loop idle_spins =
    if Atomic.get t.stop || until () then ()
    else
      match next_task t w with
      | Some task ->
          task ();
          loop 0
      | None ->
          if idle_spins > 16 then Unix.sleepf (float_of_int backoff_us /. 1e6)
          else Domain.cpu_relax ();
          loop (idle_spins + 1)
  in
  loop 0

let worker_loop t w ~until =
  let dls = Domain.DLS.get current_worker in
  let saved = !dls in
  dls := Some w;
  Fun.protect ~finally:(fun () -> dls := saved) (fun () -> help_until t w ~until)

let create ?(workers = 2) () =
  if workers < 1 then invalid_arg "Ws_pool.create: workers must be >= 1";
  let t =
    {
      workers =
        Array.init workers (fun wid ->
            {
              wid;
              q = Chase_lev.create ();
              rng = Random.State.make [| 0xB10C; wid |];
              steals = 0;
            });
      stop = Atomic.make false;
      domains = [||];
      running = false;
    }
  in
  t.domains <-
    Array.init (workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t t.workers.(i + 1) ~until:(fun () -> false)));
  t

let shutdown t =
  Atomic.set t.stop true;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let with_pool ?workers f =
  let t = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let async _t f =
  let p = Promise.create () in
  let w = self () in
  Chase_lev.push_bottom w.q (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e));
  p

let await t p =
  (match Promise.poll p with
  | Some _ -> ()
  | None ->
      let w = self () in
      help_until t w ~until:(fun () -> Promise.is_resolved p));
  match Promise.poll p with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      (* stop was raised while helping *)
      failwith "Ws_pool.await: pool stopped before promise resolved"

let fork2 t f g =
  let pg = async t g in
  let fv = f () in
  let gv = await t pg in
  (fv, gv)

let sleep _t seconds = if seconds > 0. then Unix.sleepf seconds

let rec parallel_for t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if n = 1 then body lo
  else
    let mid = lo + (n / 2) in
    let (), () =
      fork2 t (fun () -> parallel_for t ~lo ~hi:mid body) (fun () -> parallel_for t ~lo:mid ~hi body)
    in
    ()

let rec parallel_map_reduce t ~lo ~hi ~map ~combine ~id =
  let n = hi - lo in
  if n <= 0 then id
  else if n = 1 then map lo
  else
    let mid = lo + (n / 2) in
    let a, b =
      fork2 t
        (fun () -> parallel_map_reduce t ~lo ~hi:mid ~map ~combine ~id)
        (fun () -> parallel_map_reduce t ~lo:mid ~hi ~map ~combine ~id)
    in
    combine a b

let run t f =
  if t.running then invalid_arg "Ws_pool.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let w0 = t.workers.(0) in
      let p = Promise.create () in
      Chase_lev.push_bottom w0.q (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e));
      worker_loop t w0 ~until:(fun () -> Promise.is_resolved p);
      Promise.get_exn p)

type stats = { steals : int }

let stats t =
  { steals = Array.fold_left (fun acc (w : worker) -> acc + w.steals) 0 t.workers }
