module Chase_lev = Lhws_deque.Chase_lev
module Core = Scheduler_core

type wrec = {
  ctx : Core.ctx;
  q : (unit -> unit) Chase_lev.t;
  victims : Core.Victim_stats.t;  (* EWMA steal hit rate per victim, thief-local *)
  (* Owner-only stash for pinned injections (the [run] root task): kept
     out of [q] so neither local thieves nor cross-pool scavengers can
     export it.  Only touched from the owner's thread. *)
  mutable pinned : (unit -> unit) list;
}

type pstate = { slots : wrec array; steal_mode : Core.steal_mode }

(* Victim choice is EWMA-biased (power-of-two-choices over observed hit
   rates), so repeated attempts against a chronically empty worker decay
   fast.  Under [Steal_half] the first stolen task is returned to run now
   and the surplus is pushed onto the thief's own (empty — we only steal
   when out of local work) deque, where other thieves can in turn find
   it: batching both amortises the victim scan and spreads work in
   O(log n) rounds instead of one task per round trip. *)
let try_steal p w =
  let n = Array.length p.slots in
  if n = 1 then None
  else begin
    let vid = Core.Victim_stats.pick w.victims w.ctx.rng ~self:w.ctx.wid in
    if vid >= n then begin
      (* [w] can belong to a different (larger) pool than [p]: a blocking
         [await] inside a scavenged task helps against its home pool with
         the thief pool's worker state, whose tracker covers more victim
         slots than [p] has.  Treat an out-of-range draw as a miss. *)
      w.ctx.counters.failed_steals <- w.ctx.counters.failed_steals + 1;
      Core.Victim_stats.record w.victims vid ~hit:false;
      None
    end
    else begin
    let stolen =
      match p.steal_mode with
      | Core.Steal_one -> (
          match Chase_lev.steal p.slots.(vid).q with
          | Some task -> Some (task, 1)
          | None -> None)
      | Core.Steal_half ->
          let first = ref None in
          let k =
            Chase_lev.steal_half p.slots.(vid).q (fun task ->
                match !first with
                | None -> first := Some task
                | Some _ -> Chase_lev.push_bottom w.q task)
          in
          (match !first with Some task -> Some (task, k) | None -> None)
    in
    match stolen with
    | Some (task, k) ->
        Core.count_steal w.ctx.counters ~tasks:k;
        Core.Victim_stats.record w.victims vid ~hit:true;
        Core.mark w.ctx Tracing.Steal;
        Some task
    | None ->
        w.ctx.counters.failed_steals <- w.ctx.counters.failed_steals + 1;
        Core.Victim_stats.record w.victims vid ~hit:false;
        None
    end
  end

(* One cross-pool steal attempt against this pool, run by a sibling
   pool's idle worker.  Every task here is a plain thunk, so under
   [Steal_half] the whole batch is exported to [sink] (there is no
   thief-local deque to park surplus in — the sink injects each task into
   the thief pool's own queues).  Caveat: a thunk that uses this pool's
   fiber operations ([await]/[fork2] capture the pool handle) is only
   safe to scavenge into another [Ws_pool]; leaf thunks are safe
   anywhere. *)
let export_steal p ~rng ~tracker ~mode ~sink =
  let n = Array.length p.slots in
  let vid = Core.Victim_stats.pick_foreign tracker rng ~n in
  let got =
    match mode with
    | Core.Steal_one -> (
        match Chase_lev.steal p.slots.(vid).q with
        | Some task ->
            sink task;
            1
        | None -> 0)
    | Core.Steal_half -> Chase_lev.steal_half p.slots.(vid).q sink
  in
  Core.Victim_stats.record tracker vid ~hit:(got > 0);
  got

(* --- the policy: one deque per worker, tasks run to completion --- *)

module Policy = struct
  let label = "Ws_pool"
  let rng_salt = 0xB10C

  type config = Core.steal_mode

  let default_config = Core.Steal_one

  type task = unit -> unit
  type pool = pstate
  type wstate = wrec

  let make_pool steal_mode ~ctxs ~self_wid:_ =
    let victims = Array.length ctxs in
    {
      slots =
        Array.map
          (fun (ctx : Core.ctx) ->
            ctx.counters.max_owned <- 1;
            {
              ctx;
              q = Chase_lev.create ();
              victims = Core.Victim_stats.create ~victims;
              pinned = [];
            })
          ctxs;
      steal_mode;
    }

  let worker p i = p.slots.(i)
  let expects_resumes _ _ = false
  let drain _ _ = ()

  let next p w =
    match w.pinned with
    | task :: rest ->
        w.pinned <- rest;
        Some task
    | [] -> (
        match Chase_lev.pop_bottom w.q with
        | Some task -> Some task
        | None -> try_steal p w)

  let exec _ _ task = task ()

  let inject _ w ~pinned thunk =
    if pinned then w.pinned <- w.pinned @ [ thunk ]
    else Chase_lev.push_bottom w.q thunk
  let deques_allocated p = Array.length p.slots
  let export_steal = export_steal
end

module C = Core.Make (Policy)

type t = C.t

let create ?name ?workers ?steal_mode () =
  C.create ?name ?workers ?config:steal_mode ()

let run = C.run
let shutdown = C.shutdown

let with_pool ?name ?workers ?steal_mode f =
  C.with_pool ?name ?workers ?config:steal_mode f

let set_tracer = C.set_tracer
let register_poller = C.register_poller
let register_shed_counter = C.register_shed_counter
let name = C.name
let submit = C.submit
let scavenge_source = C.scavenge_source
let set_scavenge = C.set_scavenge
let clear_scavenge = C.clear_scavenge

let async _t f =
  let p = Promise.create () in
  let _, w = C.self () in
  Chase_lev.push_bottom w.q (fun () -> Promise.fulfill p (try Ok (f ()) with e -> Error e));
  p

let await t p =
  (match Promise.poll p with
  | Some _ -> ()
  | None -> C.help t ~until:(fun () -> Promise.is_resolved p));
  match Promise.poll p with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None ->
      (* stop was raised while helping *)
      failwith "Ws_pool.await: pool stopped before promise resolved"

let fork2 t f g =
  let pg = async t g in
  let fv = f () in
  let gv = await t pg in
  (fv, gv)

let sleep _t seconds =
  if seconds > 0. then begin
    match C.self_opt () with
    | Some (ctx, _) when ctx.tracing () ->
        let start_us = Tracing.now_us () in
        Unix.sleepf seconds;
        ctx.emit Tracing.Blocked ~start_us ~dur_us:(Tracing.now_us () -. start_us)
    | _ -> Unix.sleepf seconds
  end

let rec parallel_for t ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if n = 1 then body lo
  else
    let mid = lo + (n / 2) in
    let (), () =
      fork2 t (fun () -> parallel_for t ~lo ~hi:mid body) (fun () -> parallel_for t ~lo:mid ~hi body)
    in
    ()

let rec parallel_map_reduce t ~lo ~hi ~map ~combine ~id =
  let n = hi - lo in
  if n <= 0 then id
  else if n = 1 then map lo
  else
    let mid = lo + (n / 2) in
    let a, b =
      fork2 t
        (fun () -> parallel_map_reduce t ~lo ~hi:mid ~map ~combine ~id)
        (fun () -> parallel_map_reduce t ~lo:mid ~hi ~map ~combine ~id)
    in
    combine a b

type stats = Scheduler_core.stats = {
  tasks_run : int;
  steals : int;
  failed_steals : int;
  steals_batched : int;
  tasks_stolen : int;
  tasks_per_steal_hist : int array;
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
  io_syscalls : int;
  conns_shed : int;
  scavenge_steals : int;
  tasks_scavenged : int;
  tasks_donated : int;
  stalls_detected : int;
  oldest_parked_ms : float;
}

let stats = C.stats
