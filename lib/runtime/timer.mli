(** Shared timer wheel for simulated-latency operations.

    Callbacks are registered with an absolute deadline and fired by
    whichever worker polls first after the deadline passes — the "polling
    when the scheduler is invoked" implementation of resume callbacks that
    Section 6 describes.  Thread-safe; callbacks run outside the lock. *)

type t

val create : unit -> t

val add : t -> deadline:float -> (unit -> unit) -> unit
(** [deadline] is absolute, in [Unix.gettimeofday] seconds. *)

val add_in : t -> seconds:float -> (unit -> unit) -> unit
(** Relative convenience wrapper. *)

val poll : t -> int
(** Fires every callback whose deadline has passed; returns how many. *)

val pending : t -> int
val next_deadline : t -> float option

val next_deadline_hint : t -> float
(** The earliest registered deadline, or [infinity] when none is pending —
    one lock-free atomic read, for the scheduler's per-iteration "could
    anything be due?" probe.  May be momentarily stale (a concurrent [add]
    or [poll] refreshes it under the heap lock); callers treating it as a
    hint and re-polling next iteration see every deadline eventually. *)
