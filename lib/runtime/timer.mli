(** Shared timer wheel for simulated-latency operations.

    Callbacks are registered with an absolute deadline and fired by
    whichever worker polls first after the deadline passes — the "polling
    when the scheduler is invoked" implementation of resume callbacks that
    Section 6 describes.  Thread-safe; callbacks run outside the lock. *)

type t

val create : unit -> t

val add : t -> deadline:float -> (unit -> unit) -> unit
(** [deadline] is absolute, in [Unix.gettimeofday] seconds. *)

type handle
(** A registered callback that can still be withdrawn. *)

val add_cancellable : t -> deadline:float -> (unit -> unit) -> handle
(** Like {!add}, returning a handle for {!cancel}.  Use when the wait is
    usually won by another event (e.g. fd readiness racing a deadline) so
    the dead entry does not sit in the heap until its deadline passes. *)

val cancel : t -> handle -> unit
(** Removes the entry from the heap (O(log n)) and drops its callback.
    Idempotent; a no-op if the callback already fired or is concurrently
    being fired by {!poll} — cancellation does not wait for it. *)

val add_in : t -> seconds:float -> (unit -> unit) -> unit
(** Relative convenience wrapper. *)

val poll : t -> int
(** Fires every callback whose deadline has passed; returns how many. *)

val pending : t -> int
val next_deadline : t -> float option

val next_deadline_hint : t -> float
(** The earliest registered deadline, or [infinity] when none is pending —
    one lock-free atomic read, for the scheduler's per-iteration "could
    anything be due?" probe.  May be momentarily stale (a concurrent [add]
    or [poll] refreshes it under the heap lock); callers treating it as a
    hint and re-polling next iteration see every deadline eventually. *)
