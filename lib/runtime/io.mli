(** File-descriptor readiness for fibers: real I/O latency, hidden.

    A reactor holds fibers suspended on descriptor readability or
    writability.  Workers drive it by polling — register {!poll} with
    {!Lhws_pool.register_poller} — exactly the polling implementation of
    resume callbacks sketched in Section 6.  [select]-based, so it works
    on pipes and sockets portably.

    All waits must happen on fibers of a suspension-capable pool.  The
    blocking baseline simply issues blocking reads/writes instead — that
    is the comparison the paper draws. *)

type t

val create : unit -> t

val wait_readable : t -> Unix.file_descr -> unit
(** Suspends the calling fiber until the descriptor is readable. *)

val wait_writable : t -> Unix.file_descr -> unit
(** Suspends the calling fiber until the descriptor is writable. *)

val read : t -> Unix.file_descr -> bytes -> int -> int -> int
(** [read t fd buf pos len] waits for readability, then [Unix.read].
    Returns the number of bytes read (0 at end of file). *)

val write : t -> Unix.file_descr -> bytes -> int -> int -> int
(** Waits for writability, then [Unix.write]. *)

val read_exactly : t -> Unix.file_descr -> bytes -> int -> unit
(** Reads exactly [len] bytes into the buffer's prefix.
    @raise End_of_file if the descriptor closes first. *)

val write_all : t -> Unix.file_descr -> bytes -> unit
(** Writes the whole buffer. *)

val poll : t -> int
(** Checks readiness with a zero timeout and resumes every ready waiter;
    returns how many were resumed.  Thread-safe; call from worker loops. *)

val pending : t -> int
(** Fibers currently parked in the reactor. *)
