(** File-descriptor readiness for fibers: real I/O latency, hidden.

    A reactor holds fibers suspended on descriptor readability or
    writability.  Workers drive it by polling — register {!poll} with
    {!Lhws_pool.register_poller} — exactly the polling implementation of
    resume callbacks sketched in Section 6.  [select]-based, so it works
    on pipes and sockets portably.

    All waits must happen on fibers of a suspension-capable pool.  The
    blocking baseline simply issues blocking reads/writes instead — that
    is the comparison the paper draws.

    Descriptor errors are surfaced, never swallowed: when [select]
    rejects the registered set (a waiter's fd was closed — [EBADF] — or
    exceeds [FD_SETSIZE] — [EINVAL]), {!poll} probes each fd in
    isolation and resumes the offending fds' waiters with the
    [Unix.Unix_error]; the blocking-wait entry points re-raise it in the
    parked fiber. *)

type t

val create : unit -> t

(** {1 Blocking fiber waits} *)

val wait_readable : t -> Unix.file_descr -> unit
(** Suspends the calling fiber until the descriptor is readable.
    @raise Unix.Unix_error if the descriptor turns bad while parked. *)

val wait_writable : t -> Unix.file_descr -> unit
(** Suspends the calling fiber until the descriptor is writable.
    @raise Unix.Unix_error if the descriptor turns bad while parked. *)

val read : t -> Unix.file_descr -> bytes -> int -> int -> int
(** [read t fd buf pos len] waits for readability, then [Unix.read].
    Returns the number of bytes read (0 at end of file). *)

val write : t -> Unix.file_descr -> bytes -> int -> int -> int
(** Waits for writability, then [Unix.write]. *)

val read_exactly : t -> Unix.file_descr -> bytes -> int -> unit
(** Reads exactly [len] bytes into the buffer's prefix.
    @raise End_of_file if the descriptor closes first. *)

val write_all : t -> Unix.file_descr -> bytes -> unit
(** Writes the whole buffer. *)

(** {1 Cancellable waiter handles}

    The callback layer under the blocking waits, for callers that race a
    readiness wait against something else (deadline timers in
    [lib/net]).  Exactly one of these happens to a registered waiter:
    its callback fires with [None] (ready), fires with [Some exn] (fd
    error), or {!cancel} returns [true] (the caller claimed it first). *)

type waiter

val add_readable : t -> Unix.file_descr -> (exn option -> unit) -> waiter
(** Registers a callback to run once when the fd is readable ([None]) or
    found bad ([Some (Unix.Unix_error _)]).  The callback runs on the
    polling worker, outside the reactor lock. *)

val add_writable : t -> Unix.file_descr -> (exn option -> unit) -> waiter

val cancel : t -> waiter -> bool
(** Atomically claims the waiter: returns [true] and guarantees the
    callback will never fire iff it had not already fired (or been
    claimed).  The arbiter for wait-vs-deadline races. *)

(** {1 Polling} *)

val poll : t -> int
(** Checks readiness with a zero timeout and resumes every ready waiter;
    returns how many were resumed (including waiters failed with a
    descriptor error).  Thread-safe; call from worker loops. *)

val pending : t -> int
(** Fibers currently parked in the reactor. *)
