(** Submission/completion I/O for fibers: real I/O latency, hidden —
    and batched.

    Fibers submit {e intents} — (fd, direction, an optional kernel
    operation, a completion callback) — into per-worker lock-free
    submission rings.  The worker that wins the pool's pump election
    drains the rings, registers the intents against an incrementally
    maintained interest set, issues {e one} batched readiness pass per
    pump (see {!BACKEND}; [select] today), executes the ready
    operations directly, and delivers completions through the
    callbacks, which resume fibers over the pools' existing MPSC
    resume channels.  Register {!poll} with
    {!Lhws_pool.register_poller} — exactly the polling implementation
    of resume callbacks sketched in Section 6 of the paper.

    All waits must happen on fibers of a suspension-capable pool.  The
    blocking baseline simply issues blocking reads/writes instead —
    that is the comparison the paper draws.

    Descriptor errors are surfaced, never swallowed: when the backend
    rejects the registered set (a waiter's fd was closed — [EBADF] — or
    exceeds [FD_SETSIZE] — [EINVAL]), {!poll} probes each fd in
    isolation and completes the offending fds' intents with the
    [Unix.Unix_error]; the blocking-wait entry points re-raise it in
    the parked fiber. *)

type t

val create : ?legacy:bool -> unit -> t
(** [legacy:true] reproduces the pre-batching reactor for comparison
    benchmarks: readiness wakes the fiber instead of executing its
    operation in the pump, and the readiness pass is never paced.
    Default is the batched behaviour. *)

val is_legacy : t -> bool

(** {1 The backend seam}

    The readiness mechanism behind {!poll}, kept behind a signature so
    an [epoll] or [io_uring] backend can slot in without touching the
    intent machinery: implement interest registration ([add]/[remove],
    called once per (fd, direction) transition — never per poll) and one
    batched zero-timeout readiness pass ([wait]).

    Two implementations exist.  The default is a [poll(2)] C stub with
    an incrementally maintained pollfd mirror — no descriptor ceiling,
    which the 10k-connection HTTP serving legs require.  [select]
    remains available as a comparison baseline via [LHWS_BACKEND=select]
    in the environment; it caps descriptor {e numbers} at [FD_SETSIZE]
    (1024). *)

module type BACKEND = sig
  type t

  val name : string

  val create : unit -> t

  val add : t -> [ `R | `W ] -> Unix.file_descr -> unit
  val remove : t -> [ `R | `W ] -> Unix.file_descr -> unit
  val armed : t -> bool

  val size : t -> int
  (** Distinct descriptors registered: one batched pass walks this many
      entries, so the pump paces its passes proportionally. *)

  val wait : t -> Unix.file_descr list * Unix.file_descr list
  (** May raise [Unix.Unix_error (EBADF | EINVAL, _, _)] to reject the
      whole set; {!poll} recovers with a per-fd probe sweep. *)

  val probe : [ `R | `W ] -> Unix.file_descr -> exn option
  (** Tests one fd with this backend's own mechanism — the recovery
      sweep must agree with [wait] about which descriptors the backend
      can express at all.  [Some exn] marks an fd that would poison a
      batched pass; [None] means merely not ready. *)
end

val backend_name : t -> string
(** ["poll"] or ["select"], for logging and bench records. *)

(** {1 Descriptor-scale helpers}

    The pieces of the c10k story that are not about intents at all. *)

val poll_single :
  [ `R | `W ] ->
  Unix.file_descr ->
  timeout_ms:int ->
  [ `Ready | `Timeout | `Interrupted ]
(** One descriptor, one direction, a millisecond timeout ([-1] waits
    forever) — the blocking-mode wait primitive, free of [select]'s
    [FD_SETSIZE] ceiling so the threaded baselines can hold thousands
    of connections too.  [`Ready] includes error/hang-up conditions
    (the caller's next syscall surfaces the actual error);
    [`Interrupted] is [EINTR] (recompute the timeout and retry).
    @raise Unix.Unix_error [EBADF] when the descriptor is not open. *)

val raise_nofile : int -> int
(** Best-effort bump of the process's soft [RLIMIT_NOFILE] toward
    [min want hard]; returns the soft limit now in force.  The
    10k-connection bench legs call it so a conservative shell default
    does not read as a scheduler ceiling. *)

(** {1 Intent submission}

    The core entry points.  Submission is lock-free: one CAS onto the
    calling worker's ring. *)

type intent

type outcome =
  | Complete  (** the operation ran (or the fd is ready, for waits) *)
  | Error of exn  (** the operation raised, or the fd turned bad *)
  | Cancelled
      (** a {!cancel} lost its claim race while the pump held the
          intent; delivered so the canceller's deadline still wins *)

val submit :
  t ->
  kind:[ `R | `W ] ->
  fd:Unix.file_descr ->
  run:(unit -> [ `Done | `Again ]) ->
  (outcome -> unit) ->
  intent
(** Enqueues an intent.  Once the fd is ready the pump calls [run]:
    [`Done] means the operation completed (stash results in the
    closure); [`Again] means it would still block — the intent is
    re-armed without a completion; raising delivers [Error].  Exactly
    one completion is delivered unless {!cancel} claims the intent
    first. *)

val cancel : t -> intent -> bool
(** Atomically claims the intent: [true] guarantees its callback will
    never fire iff it had not already fired (or been claimed).  The
    arbiter for wait-vs-deadline races.  When the pump is mid-operation
    on the intent, [cancel] returns [false] and the pump delivers
    either the operation's outcome or [Cancelled] — exactly one of the
    two — so the caller can still lose the race it asked to win. *)

(** {1 Blocking fiber waits} *)

val wait_readable : t -> Unix.file_descr -> unit
(** Suspends the calling fiber until the descriptor is readable.
    @raise Unix.Unix_error if the descriptor turns bad while parked. *)

val wait_writable : t -> Unix.file_descr -> unit
(** Suspends the calling fiber until the descriptor is writable.
    @raise Unix.Unix_error if the descriptor turns bad while parked. *)

val read : t -> Unix.file_descr -> bytes -> int -> int -> int
(** [read t fd buf pos len] waits for readability, then [Unix.read].
    Returns the number of bytes read (0 at end of file).  Wait-first
    (no eager attempt): safe on descriptors still in blocking mode. *)

val write : t -> Unix.file_descr -> bytes -> int -> int -> int
(** Waits for writability, then [Unix.write]. *)

val read_exactly : t -> Unix.file_descr -> bytes -> int -> unit
(** Reads exactly [len] bytes into the buffer's prefix.
    @raise End_of_file if the descriptor closes first. *)

val write_all : t -> Unix.file_descr -> bytes -> unit
(** Writes the whole buffer. *)

(** {1 Cancellable waiter handles}

    The [(exn option -> unit)] compatibility layer over {!submit}, for
    callers that race a readiness wait against something else (deadline
    timers in [lib/net]).  Exactly one of these happens to a registered
    waiter: its callback fires with [None] (ready), fires with
    [Some exn] (fd error), or {!cancel} returns [true]. *)

type waiter = intent

val add_readable : t -> Unix.file_descr -> (exn option -> unit) -> waiter
(** Registers a callback to run once when the fd is readable ([None])
    or found bad ([Some (Unix.Unix_error _)]).  The callback runs on
    the pumping worker, outside the reactor lock. *)

val add_writable : t -> Unix.file_descr -> (exn option -> unit) -> waiter

(** {1 Vectored I/O}

    ExtUnix-free [writev]/[readv]: one kernel round trip for a whole
    buffer vector.  A single buffer goes straight through; several are
    coalesced through one scratch copy — the seam where a C
    [writev(2)]/[readv(2)] stub would slot in without touching call
    sites. *)

module Iov : sig
  val length : Bytes.t list -> int

  val drop : Bytes.t list -> int -> Bytes.t list
  (** The vector minus its first [n] bytes (resume after a short write). *)

  val take : Bytes.t list -> int -> Bytes.t list
  (** The vector clamped to its first [cap] bytes (injected shorts). *)

  val write : Unix.file_descr -> Bytes.t list -> int
  (** One gathering write; returns bytes written (may be short). *)

  val read : Unix.file_descr -> Bytes.t list -> int
  (** One scattering read; returns bytes read (0 at end of file). *)
end

(** {1 Polling and introspection} *)

val poll : t -> int
(** The pump: drains the submission rings, issues at most one batched
    readiness pass, executes ready operations and delivers their
    completions; returns how many completions were delivered (including
    intents failed with a descriptor error).  Thread-safe; call from
    worker loops. *)

val pending : t -> int
(** Intents currently submitted and undecided (parked fibers). *)

val syscalls : t -> int
(** Kernel I/O calls issued through this reactor so far: readiness
    passes, probe sweeps, and every operation counted via
    {!count_syscall}.  Feeds the pools' [io_syscalls] stats counter. *)

val count_syscall : t -> unit
(** Adds one kernel I/O call to {!syscalls}.  Called by the layers that
    issue operations outside {!poll} (eager attempts, blocking-mode
    syscalls) so the counter stays a complete census. *)

val oldest_parked_ms : t -> float
(** Age in milliseconds of the oldest intent still armed in this
    reactor (0 when nothing is parked) — the staleness gauge behind the
    pools' [oldest_parked_ms] stats field. *)

val sweep_stalled :
  t ->
  grace:float ->
  ?probe_every:float ->
  fail:(string -> exn) option ->
  unit ->
  int
(** One stall sweep over every live intent older than [grace] seconds
    (younger intents are never touched).  Detects {e lost wakeups} —
    armed intents registered nowhere, which nothing will ever complete
    (exactly what {!chaos_drop_completions} manufactures) — and {e stale
    registrations} — armed intents whose fd the backend's probe rejects,
    the hazard an epoll-style backend's silent auto-deregistration would
    introduce.  With [fail = Some mk], a lost wakeup completes the fiber
    loudly with [Error (mk description)], claiming the intent so a
    racing deadline loses; with [None] it is counted once and left
    parked.  Stale descriptors always complete with the underlying
    [Unix.Unix_error].  Stale-registration probes cost one syscall per
    intent, so each intent is probed at most once per [probe_every]
    seconds (default [max (10 * grace) 1s], mirroring the watchdog's
    stuck-worker threshold) — long-parked idle connections are not
    re-probed on every sweep.  Returns how many stalls were newly
    detected.  Normally driven by {!Watchdog.poll}, not called
    directly. *)

val chaos_drop_completions : t -> every:int -> unit
(** Test-only mutation hook: silently drop every [every]-th completion
    (the submitting fiber stays parked).  Exists so the chaos suite can
    prove a lost completion is {e detected} — deadline waits fire, the
    [io_pending] gauge sticks — rather than hanging the run.  [0]
    disables. *)
