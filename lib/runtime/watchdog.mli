(** Stall watchdog: detects what no deadline is watching.

    Deadlines protect individual waits; the probe sweep fires only when
    a readiness pass rejects its set.  The watchdog is the backstop for
    silent failures — a completion lost in transit leaving a fiber
    parked with nobody to wake it (the hazard
    {!Io.chaos_drop_completions} simulates), a backend that forgot a
    closed descriptor, a worker wedged inside a task.  Attach the
    reactors to watch ({!attach_io}) and the pools' heartbeat counters
    ({!attach_heartbeats}), then register {!poll} as a pool poller —
    each pump election gives the sweep a ride, and the watchdog paces
    itself.

    Detections are counted (feeding the pools' [stalls_detected] /
    [oldest_parked_ms] stats fields through
    [register_watchdog_stats]) and reported to {!add_on_stall} hooks;
    in [Fail] mode a lost-wakeup fiber is additionally completed loudly
    with {!Stalled}, turning a forever-hang into an error the
    application handles like any other I/O failure. *)

type t

(** What to do about a lost wakeup found past the grace period. *)
type action =
  | Warn  (** count and report, leave the fiber parked *)
  | Fail
      (** complete the fiber with [Error (Stalled _)], claiming the
          intent so a racing deadline loses — the production setting:
          a hung fiber becomes a loud, attributable error *)

exception Stalled of string
(** Raised in (or delivered to) a parked fiber whose wakeup was lost.
    Re-exported as [Net.Stalled] for serving-layer callers. *)

val create :
  ?grace:float -> ?action:action -> ?interval:float -> ?stuck_after:float ->
  unit -> t
(** [grace] (default 0.25 s) is the minimum age before a parked intent
    is examined at all — every legitimate park shorter than this is
    invisible to the watchdog.  [action] defaults to [Fail].
    [interval] (default [grace /. 4]) paces the sweep.  [stuck_after]
    (default [max (10 * grace) 1s]) is the no-heartbeat threshold for
    declaring a worker stuck; it is deliberately far above [grace]
    because a long-running legitimate task is indistinguishable from a
    wedged worker (stuck workers are warn-only, never failed).  It also
    paces per-intent stale-fd probes in the reactor sweep: a parked
    intent's descriptor is probed at most once per [stuck_after], so
    idle long-parked connections cost one syscall per threshold, not
    one per sweep. *)

val grace : t -> float

val attach_io : t -> Io.t -> unit
(** Put a reactor's parked intents under surveillance.  Thread-safe. *)

val attach_heartbeats : t -> name:string -> (unit -> int array) -> unit
(** Watch a pool's per-worker heartbeat counters (e.g.
    [fun () -> Lhws_pool.heartbeats p]); [name] labels reports.
    Thread-safe. *)

val add_on_stall : t -> (string -> unit) -> unit
(** Hook every detection report (human-readable, one line).  Used by
    pools to emit [Stalled] tracing events, by tests to capture
    reports.  Thread-safe. *)

val poll : t -> int
(** One paced watchdog tick: no-op within [interval] of the last sweep,
    otherwise runs {!sweep_now}.  Returns stalls newly detected.
    Register with [register_poller]; safe under concurrent election
    (one sweeper runs, losers skip). *)

val sweep_now : t -> int
(** Force a full sweep immediately, ignoring pacing: reactors first
    (lost wakeups, stale registrations), then heartbeats.  Returns
    stalls newly detected. *)

val stalls_detected : t -> int
(** Total stalls found so far (lost wakeups, stale fds, stuck workers). *)

val worker_stalls : t -> int
(** The subset of {!stalls_detected} that were stuck-worker reports. *)

val oldest_parked_ms : t -> float
(** Age of the oldest intent currently parked across the attached
    reactors (0 when idle) — the staleness gauge. *)

val snapshot : t -> int * float
(** [(stalls_detected, oldest_parked_ms)] — the shape
    [register_watchdog_stats] wants. *)
