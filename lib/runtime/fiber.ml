type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let suspend register = Effect.perform (Suspend register)

let yield () = suspend (fun resume -> resume ())
