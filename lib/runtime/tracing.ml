type kind = Task_run | Suspend | Resume_batch | Steal | Scavenge | Blocked | Stalled

let kind_name = function
  | Task_run -> "task"
  | Suspend -> "suspend"
  | Resume_batch -> "resume-batch"
  | Steal -> "steal"
  | Scavenge -> "scavenge"
  | Blocked -> "blocked"
  | Stalled -> "stalled"

type event = { worker : int; kind : kind; start_us : float; dur_us : float }

(* Struct-of-arrays per worker: fixed-size, single-writer. *)
type buffer = {
  kinds : kind array;
  starts : float array;
  durs : float array;
  mutable len : int;
  mutable lost : int;
}

type t = { buffers : buffer array; capacity : int }

let create ?(capacity_per_worker = 65536) ~workers () =
  if capacity_per_worker < 1 then invalid_arg "Tracing.create: capacity must be >= 1";
  if workers < 1 then invalid_arg "Tracing.create: workers must be >= 1";
  {
    buffers =
      Array.init workers (fun _ ->
          {
            kinds = Array.make capacity_per_worker Task_run;
            starts = Array.make capacity_per_worker 0.;
            durs = Array.make capacity_per_worker 0.;
            len = 0;
            lost = 0;
          });
    capacity = capacity_per_worker;
  }

let now_us () = Unix.gettimeofday () *. 1e6

let record t ~worker kind ~start_us ~dur_us =
  let b = t.buffers.(worker) in
  if b.len >= t.capacity then b.lost <- b.lost + 1
  else begin
    b.kinds.(b.len) <- kind;
    b.starts.(b.len) <- start_us;
    b.durs.(b.len) <- dur_us;
    b.len <- b.len + 1
  end

let events t =
  let acc = ref [] in
  for w = Array.length t.buffers - 1 downto 0 do
    let b = t.buffers.(w) in
    for i = b.len - 1 downto 0 do
      acc := { worker = w; kind = b.kinds.(i); start_us = b.starts.(i); dur_us = b.durs.(i) } :: !acc
    done
  done;
  !acc

let dropped t = Array.fold_left (fun acc b -> acc + b.lost) 0 t.buffers

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf
           {|{"name":"%s","ph":"X","pid":1,"tid":%d,"ts":%.1f,"dur":%.1f}|}
           (kind_name e.kind) e.worker e.start_us e.dur_us))
    (events t);
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let write_chrome_json path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_chrome_json t))
