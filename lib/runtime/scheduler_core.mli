(** The shared scheduler engine behind every runtime pool.

    Both real pools ({!Lhws_pool}, {!Ws_pool}) are the same machine — a
    set of worker domains, each looping over {e pump event sources →
    re-inject resumed work → pick a task → run it}, with idle backoff,
    a shared timer, pluggable pollers, per-worker counters and a tracing
    bus — and differ only in their {e policy}: what a task is, where
    tasks live, and how the next one is chosen.  This module owns the
    machine; a {!POLICY} supplies the task representation, the deque
    discipline and the steal target selection, and {!Make} assembles a
    complete pool from it.

    The split mirrors how the literature evaluates scheduler variants as
    policies over one engine: the standard work-stealing baseline is the
    single-deque policy, the paper's latency-hiding scheduler is the
    multi-deque suspend/resume policy, and future variants (alternative
    steal distributions, backends) slot in without touching the engine. *)

(** {1 Per-worker instrumentation}

    One {!counters} record per worker, written only by that worker (or
    by policy code running on it) and summed into the pool-wide
    {!stats}.  Counters that a policy has no use for stay at their
    degenerate values, so every pool reports the same record. *)

type steal_mode =
  | Steal_one  (** classical Chase–Lev: one task per successful steal *)
  | Steal_half
      (** batched {!Lhws_deque.Chase_lev.steal_half}: take up to half the
          victim's visible range per steal; surplus lands in the thief's
          own deque *)

(** Where resumed continuations re-enter the scheduling order — the
    fairness knob for interacting computations under saturation. *)
type resume_order =
  | Newest_first
      (** the historical (and locality-best) discipline: resume batches
          are pushed onto their home deque and popped LIFO, freshly
          notified deques onto the owner's ready stack — under
          saturation the newest connections monopolize the workers and
          the oldest starve *)
  | Aged_fifo
      (** resumed continuations flow through a per-worker FIFO lane in
          arrival order (oldest batch first), bounding staleness: with a
          closed-loop saturating load, round-time p99 stays within a
          small factor of the mean instead of approaching the wall
          clock.  Lane tasks are serviced after the active deque and
          before ready-deque switches or steals, and are not stealable *)

val steal_hist_buckets : int
(** Number of buckets in the tasks-per-steal histogram (8): bucket [i]
    counts successful steals that took [i + 1] tasks, the last bucket
    absorbing everything larger. *)

type counters = {
  mutable tasks_run : int;  (** tasks executed by this worker's loop *)
  mutable steals : int;  (** successful steals landed by this worker *)
  mutable failed_steals : int;  (** steal attempts that found no task *)
  mutable steals_batched : int;
      (** successful steals that took more than one task *)
  mutable tasks_stolen : int;  (** total tasks acquired across all steals *)
  steal_hist : int array;  (** tasks-per-steal histogram, {!steal_hist_buckets} wide *)
  mutable suspensions : int;  (** fibers suspended on this worker *)
  mutable resumes : int;  (** resumed continuations re-injected by this worker *)
  mutable max_owned : int;  (** high-water mark of live deques owned at once *)
  mutable scavenge_steals : int;
      (** successful cross-pool steals landed by this worker *)
  mutable tasks_scavenged : int;
      (** tasks acquired from sibling pools across all scavenge steals *)
  mutable heartbeats : int;
      (** scheduling-loop iterations completed by this worker; advances
          while idling (backoff sleeps return to the loop) and stops only
          when the worker is wedged inside a task — what {!Watchdog}
          compares across sweeps to tell progress from a stuck worker *)
}

val count_steal : counters -> tasks:int -> unit
(** Record one successful steal that acquired [tasks] (>= 1) tasks:
    bumps [steals], [tasks_stolen], [steals_batched] (when [tasks > 1])
    and the histogram bucket. *)

(** Per-worker EWMA of steal success per victim slot, for biasing victim
    selection away from chronically empty deques.  Owner-written (each
    thief tracks its own observations) and padded off shared cache
    lines. *)
module Victim_stats : sig
  type t

  val create : victims:int -> t
  (** All rates start at 0.5 (uninformative prior). *)

  val capacity : t -> int
  (** Victim slots currently tracked. *)

  val ensure_capacity : t -> int -> unit
  (** Grow the tracker to at least [n] slots (no-op when already large
      enough); new slots start at the 0.5 prior, existing rates are kept.
      Owner-only, like {!record} — a thief resizes its own tracker, e.g.
      when pointed at a sibling pool with more workers than it was
      created for. *)

  val record : t -> int -> hit:bool -> unit
  (** Fold one steal outcome against victim [v] into its EWMA
      (smoothing factor 1/8). *)

  val rate : t -> int -> float
  (** Current EWMA estimate for victim [v]. *)

  val pick : t -> Random.State.t -> self:int -> int
  (** Power-of-two-choices: draw two uniform candidates excluding
      [self], return the one with the better observed hit rate.
      Requires at least two workers. *)

  val pick_foreign : t -> Random.State.t -> n:int -> int
  (** Power-of-two-choices over victims [0 .. n-1] with no self
      exclusion — for cross-pool scavenging, where the thief is not a
      candidate.  [n] may be smaller than {!capacity}; requires
      [n >= 1] (returns 0 when [n = 1]). *)
end

type ctx = {
  wid : int;  (** worker index, [0 .. workers-1] *)
  rng : Random.State.t;  (** per-worker PRNG for victim selection *)
  counters : counters;
  emit : Tracing.kind -> start_us:float -> dur_us:float -> unit;
      (** records into the pool's tracer; no-op when none is set *)
  tracing : unit -> bool;  (** whether a tracer is attached (skip clock reads) *)
}
(** Per-worker context handed to the policy: identity, randomness,
    counters and the tracing bus. *)

val mark : ctx -> Tracing.kind -> unit
(** Emit an instantaneous event (zero duration, timestamped now). *)

(** {1 Unified stats}

    The one stats record every pool exposes.  For the single-deque
    baseline, [deques_allocated] is the (fixed) worker count,
    [max_deques_per_worker] is 1 and [suspensions]/[resumes] are 0. *)

type stats = {
  tasks_run : int;
      (** tasks executed by this pool's scheduling loops (fresh fibers,
          resumed continuations and scavenged loot alike) *)
  steals : int;
  failed_steals : int;
  steals_batched : int;
      (** successful steals that took more than one task (0 under
          [Steal_one]) *)
  tasks_stolen : int;
      (** total tasks moved by stealing; equals [steals] under
          [Steal_one], >= [steals] under [Steal_half] *)
  tasks_per_steal_hist : int array;
      (** bucket [i] counts steals that took [i + 1] tasks (last bucket
          absorbs larger batches); sums to [steals] *)
  deques_allocated : int;
  suspensions : int;
  resumes : int;
  max_deques_per_worker : int;
  io_pending : int;
      (** gauge, not a counter: fibers currently parked in registered
          pollers (see [register_poller]'s [?pending]); 0 for pools with
          no pollers attached *)
  io_syscalls : int;
      (** kernel I/O calls issued through registered pollers' reactors —
          readiness passes, probe sweeps and the operations themselves
          (see [register_poller]'s [?syscalls]); 0 for pools with no
          pollers attached.  Divide by operations served to measure the
          batched reactor's syscalls/op *)
  conns_shed : int;
      (** connections rejected fast by overload shedding in serving
          layers running on this pool (see [register_shed_counter]);
          0 when nothing registered one *)
  scavenge_steals : int;
      (** successful cross-pool steals this pool's workers landed against
          their scavenge sibling (0 unless [set_scavenge] was called) *)
  tasks_scavenged : int;
      (** total tasks this pool acquired from its scavenge sibling; each
          scavenged task is counted exactly once, by the thief pool *)
  tasks_donated : int;
      (** total tasks sibling pools took {e from} this pool via
          scavenging; across a topology,
          sum of [tasks_scavenged] = sum of [tasks_donated] *)
  stalls_detected : int;
      (** stalls flagged by watchdogs registered on this pool (lost
          wakeups swept out of the reactor, workers whose heartbeat
          stopped); 0 when no watchdog registered (see
          [register_watchdog_stats]) *)
  oldest_parked_ms : float;
      (** gauge: age in milliseconds of the oldest intent currently
          parked in a watchdog-tracked reactor — the staleness bound the
          fairness work exists to keep small; 0 when nothing is parked
          or no watchdog registered *)
}

(** {1 Cross-pool scavenging}

    A pool may designate one sibling to raid when idle: after local
    steals fail and before a worker climbs the deep-backoff ladder, it
    attempts one steal against the sibling through the sibling's
    {!scavenge_source}.  Only {e pool-portable} thunks cross — fresh,
    not-yet-started tasks; captured continuations and policy-internal
    re-injections stay home (their effect handlers and worker state are
    bound to the donor pool).  Loot is injected into the thief's own
    queues and becomes native work there: its children, suspensions and
    resumes all live in the thief pool.  Off by default; enabling it is
    a topology decision, not a policy one. *)

type scavenge_source = {
  src_name : string;  (** registry name of the donor pool *)
  src_workers : unit -> int;
      (** victim slots a thief should track (the donor's worker count) *)
  src_steal :
    rng:Random.State.t ->
    tracker:Victim_stats.t ->
    mode:steal_mode ->
    sink:((unit -> unit) -> unit) ->
    int;
      (** one steal attempt: pick a victim via [tracker], deliver portable
          thunks to [sink], return how many were delivered *)
  src_donated : int Atomic.t;
      (** total tasks this donor has given away (feeds [tasks_donated]) *)
}

(** {1 Process-level registry}

    Every live engine instance registers here at [create] and leaves at
    [shutdown], so topologies, CLIs and diagnostics can enumerate all
    pools in the process.  Names are caller-chosen (default
    ["<label>-<id>"]) and looked up first-registered-first. *)

type registry_entry = {
  reg_id : int;  (** unique per process, monotonically assigned *)
  reg_name : string;
  reg_label : string;  (** policy label, e.g. ["Lhws_pool"] *)
  reg_workers : int;
  reg_stats : unit -> stats;
}

module Registry : sig
  val register :
    ?name:string ->
    label:string ->
    workers:int ->
    stats:(unit -> stats) ->
    unit ->
    registry_entry
  (** Used by {!Make.create}; exposed so pool implementations that do not
      go through {!Make} (e.g. a thread-per-task pool) can still appear
      in the registry.  Thread-safe. *)

  val unregister : registry_entry -> unit

  val entries : unit -> registry_entry list
  (** Live pools, in registration order. *)

  val find : string -> registry_entry option
  (** First live pool registered under this name. *)
end

(** {1 Scheduling policies} *)

module type POLICY = sig
  val label : string
  (** Error-message prefix, e.g. ["Lhws_pool"]. *)

  val rng_salt : int
  (** Mixed into each worker's PRNG seed. *)

  type config

  val default_config : config

  type task
  (** Whatever the policy schedules: a thunk, or a fresh-fiber /
      captured-continuation sum. *)

  type pool
  (** Policy state shared by all workers (deque tables, steal policy). *)

  type wstate
  (** Per-worker policy state (owned deques, ready set). *)

  val make_pool : config -> ctxs:ctx array -> self_wid:(unit -> int) -> pool
  (** Builds the policy state for [Array.length ctxs] workers.
      [self_wid] resolves the worker currently running on this domain
      (valid only on a worker domain) — policies whose tasks migrate
      between workers (captured continuations) need it to find the
      {e current} worker from inside an effect handler. *)

  val worker : pool -> int -> wstate

  val expects_resumes : pool -> wstate -> bool
  (** Whether this worker may be handed resumed continuations from other
      domains at any moment (it owns deques with suspended fibers).  The
      engine keeps such workers at the base idle-poll interval instead of
      letting them climb the backoff ladder — a sleeping worker cannot be
      interrupted, so backing off would add up to the backoff cap to every
      cross-domain resume.  Policies without suspension return [false].

      Workers for which this returns [false] {e do} climb to the cap
      (currently 1 ms), and nothing wakes them when fresh tasks are pushed
      on other workers: after the pool has idled long enough for sleepers
      to reach the cap, pickup of newly injected work via stealing can lag
      by up to that cap.  This is a deliberate tradeoff — waking sleepers
      from the push path would tax the spawn hot path — and it only
      affects cold-start latency, not steady-state throughput. *)

  val drain : pool -> wstate -> unit
  (** Re-inject work that arrived from other domains (resumed
      continuations).  Called once per scheduling iteration, before
      {!next}.  No-op for policies without suspension. *)

  val next : pool -> wstate -> task option
  (** One scheduling decision: pop local work, switch deques, or steal.
      The policy updates [ctx.counters] and emits [Steal] events itself;
      the engine wraps the returned task's execution in [Task_run]. *)

  val exec : pool -> wstate -> task -> unit
  (** Run one task to completion or suspension (installing effect
      handlers as needed). *)

  val inject : pool -> wstate -> pinned:bool -> (unit -> unit) -> unit
  (** Push a thunk onto the given worker's local queue.  Always called
      from the worker's own thread (bootstrap in {!Make.run}, submit
      drain, scavenged-loot delivery).  [pinned] marks a thunk that must
      never be exported by {!export_steal}: the engine pins its [run]
      root task so a scavenging sibling cannot carry a pool's main fiber
      away — the root's completion is what [run]'s caller joins on, so
      exporting it deadlocks teardown if the thief dies first. *)

  val deques_allocated : pool -> int
  (** Lifetime deque allocations, for {!stats}. *)

  val export_steal :
    pool ->
    rng:Random.State.t ->
    tracker:Victim_stats.t ->
    mode:steal_mode ->
    sink:((unit -> unit) -> unit) ->
    int
  (** One cross-pool steal attempt {e against} this pool, run on a
      foreign thread (a sibling pool's worker): pick a victim with
      {!Victim_stats.pick_foreign} on [tracker] (already grown to this
      pool's worker count), steal per [mode] using the policy's normal
      thief-side machinery, deliver only pool-portable thunks to [sink]
      and return how many were delivered.  Loot that cannot run outside
      this pool (captured continuations, policy-internal re-injections)
      must be requeued locally, never dropped or exported.  The caller
      records hit/miss bookkeeping against its own counters; this
      function must not touch the victim pool's [ctx.counters] (it is
      not running on one of its workers). *)
end

(** {1 The engine} *)

module Make (P : POLICY) : sig
  type t

  val create : ?name:string -> ?workers:int -> ?config:P.config -> unit -> t
  (** Spawns [workers - 1] extra domains (default 2 workers); the
      calling domain becomes worker 0 while inside {!run}.  This is the
      only place in the runtime that spawns domains.  The instance is
      registered in {!Registry} under [name] (default
      ["<label>-<id>"]) until {!shutdown}. *)

  val run : t -> (unit -> 'a) -> 'a
  (** Injects the thunk as the root task on worker 0 and participates
      in the worker loop until it completes; re-raises its exception.
      @raise Invalid_argument after {!shutdown} or if already running. *)

  val shutdown : t -> unit
  (** Stops and joins the worker domains.  Idempotent; the pool cannot
      be reused afterwards. *)

  val with_pool :
    ?name:string -> ?workers:int -> ?config:P.config -> (t -> 'a) -> 'a

  val help : t -> until:(unit -> bool) -> unit
  (** Runs the scheduling loop on the calling worker until the predicate
      holds or the pool stops — the work-first helping loop used by
      blocking joins.  Must be called on a worker of this pool. *)

  val self : unit -> ctx * P.wstate
  (** The worker currently running on this domain.
      @raise Failure when not on a pool worker. *)

  val self_opt : unit -> (ctx * P.wstate) option

  val pool : t -> P.pool
  val timer : t -> Timer.t
  val workers : t -> int
  val set_tracer : t -> Tracing.t -> unit
  val register_poller :
    t -> ?pending:(unit -> int) -> ?syscalls:(unit -> int) -> (unit -> int) -> unit
  (** [register_poller t ?pending ?syscalls poll] adds an event source
      pumped by the worker loop.  [pending] (e.g. {!Io.pending}) feeds
      the [io_pending] stats gauge; [syscalls] (e.g. {!Io.syscalls})
      feeds the [io_syscalls] counter; sources without parked fibers or
      kernel traffic omit them. *)

  val register_shed_counter : t -> (unit -> int) -> unit
  (** Adds a monotone counter summed into the [conns_shed] stats field —
      serving layers (e.g. a listener with overload shedding) publish how
      many connections they rejected fast.  Thread-safe (CAS push):
      listeners register from within running tasks. *)

  val register_watchdog_stats : t -> (unit -> int * float) -> unit
  (** Adds a watchdog snapshot source: the closure yields
      [(stalls_detected, oldest_parked_ms)].  Stall counts are summed
      and parked ages maxed into the corresponding stats fields.
      Thread-safe (CAS push). *)

  val heartbeats : t -> int array
  (** Per-worker scheduling-loop iteration counts (see
      {!counters.heartbeats}) — hand
      [(fun () -> heartbeats t)] to {!Watchdog.attach_heartbeats} to put
      this pool's workers under stuck-worker surveillance. *)

  val mark_stall : t -> unit
  (** Emit a {!Tracing.Stalled} event on the calling worker's trace
      buffer; no-op when no tracer is set or the caller is not a worker
      of this pool.  Watchdog sweeps run inside the pump (on a worker),
      so wiring this as the watchdog's [on_stall] puts detections on the
      timeline next to the work they interrupted. *)

  val register_watchdog : t -> Watchdog.t -> unit
  (** Complete pool-side wiring for a watchdog in one call: registers
      {!Watchdog.poll} as a poller (the sweep rides this pool's pump),
      feeds detections into [stalls_detected] / [oldest_parked_ms] via
      [register_watchdog_stats], emits {!Tracing.Stalled} on detection,
      and puts this pool's workers under heartbeat surveillance.  Pair
      with [Reactor.fibers ~watchdog] (or {!Watchdog.attach_io}) to put
      a reactor's parked intents under the same watchdog. *)

  val stats : t -> stats

  val name : t -> string
  (** The registry name this instance was created under. *)

  val registry_entry : t -> registry_entry

  val submit : t -> (unit -> unit) -> unit
  (** Pool-pinned external submission: the thunk lands in one worker's
      inbox (round robin over workers) and is guaranteed to start on a
      worker of {e this} pool.  Safe from any thread, including
      non-workers and other pools' workers.  Latency note: a worker deep
      in idle backoff picks its inbox up at its next poll — up to the
      backoff cap (1 ms) after a cold start.
      @raise Invalid_argument after {!shutdown}. *)

  val scavenge_source : t -> scavenge_source
  (** This pool's stealable surface, to hand to a sibling's
      {!set_scavenge}.  Stays valid for the pool's lifetime. *)

  val set_scavenge : t -> ?mode:steal_mode -> scavenge_source -> unit
  (** Designate a sibling to raid when idle (see the module-level
      scavenging overview).  [mode] defaults to {!Steal_one}.  May be
      called while running; takes effect at workers' next idle episode.
      @raise Invalid_argument when [src] is this pool's own source. *)

  val clear_scavenge : t -> unit
end
