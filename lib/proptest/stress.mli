(** Stress and model checks for work-stealing deques.

    The checks are written against the {!DEQUE} signature rather than
    {!Lhws_deque.Chase_lev} directly so the same harness validates the
    real deque {e and} demonstrably catches deliberately broken ones
    (mutation tests): a harness that has never failed anything proves
    nothing. *)

module type DEQUE = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom : 'a t -> 'a option
  val steal : 'a t -> 'a option

  val steal_half : 'a t -> ('a -> unit) -> int
  (** Batched steal with {!Lhws_deque.Chase_lev.steal_half}'s contract:
      up to ceil(n/2) of the observed n elements, oldest first, each
      passed to the callback; returns the count taken. *)
end

module Chase_lev_deque : DEQUE with type 'a t = 'a Lhws_deque.Chase_lev.t

type report = {
  pushed : int;  (** elements the owner pushed *)
  popped : int;  (** elements consumed by the owner *)
  stolen : int;  (** elements consumed by thieves *)
  lost : int;  (** pushed but never consumed by anyone *)
  duplicated : int;  (** consumed more than once *)
  reordered : int;  (** order violations (see the individual checks) *)
}

val ok : report -> bool
(** No element lost, duplicated, or reordered. *)

val pp_report : Format.formatter -> report -> unit

val hammer :
  (module DEQUE) ->
  ?thieves:int ->
  ?items:int ->
  ?pop_every:int ->
  ?owner_pause_every:int ->
  ?steal:[ `One | `Half ] ->
  unit ->
  report
(** Multi-domain hammer: one owner domain pushes [items] distinct values
    (popping a few of its own every [pop_every] pushes, then draining),
    while [thieves] (default 3) concurrent domains steal until the deque
    is exhausted.  Checks that every value is consumed exactly once and
    that each individual thief observes strictly increasing values — the
    Chase–Lev top index only moves forward, so any single thief's
    successful steals must come out in push (FIFO) order.

    [owner_pause_every] (default 0 = never) makes the owner sleep ~1 µs
    every that many pushes.  Mutation checks that need a thief to land
    several {e consecutive} steals use it: on a single-core machine the
    thieves only run while the owner is off the CPU, and without a real
    sleep the owner monopolises it.

    [steal] (default [`One]) selects what the thieves call: classical
    one-element [steal], or batched [steal_half].  The per-thief order
    check is valid in both modes — batches hand over consecutive top
    indexes, and top only moves forward. *)

val split_model : (module DEQUE) -> ?max_size:int -> unit -> report
(** Sequential split-contract check: for every deque size n in
    [\[0, max_size\]] (default 64), one [steal_half] must take exactly
    ceil(n/2) elements — the oldest, in push order — leaving the newest
    half to the owner's drain.  Any contract deviation (batch size,
    element choice or order) counts as [reordered]; the multiset check
    feeds [lost] / [duplicated].  Catches off-by-one split mutations that
    the concurrent hammer cannot see (a floor split loses no elements,
    it just takes the wrong number). *)

val sequential_model :
  (module DEQUE) -> ?ops:int -> seed:int -> unit -> report
(** Single-domain random push/pop/steal/steal-half sequence compared
    against a reference double-ended list model: with no concurrency,
    [pop_bottom] must return exactly the newest element, [steal] exactly
    the oldest, and [steal_half] exactly the oldest ceil(n/2) in order.
    Any disagreement counts as [reordered] (and as [lost] /
    [duplicated] when the multiset diverges). *)
