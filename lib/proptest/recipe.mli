(** Random test-case generation with shrinking.

    Cases are first-order {e recipes} — plain data describing either a
    fork–join program or a weighted dag — rather than the values
    themselves.  Recipes print, compare, and shrink structurally; the
    oracle rebuilds the real {!Lhws_workloads.Program.t} or
    {!Lhws_dag.Dag.t} from the recipe on every evaluation, so a shrunk
    counterexample is always replayable from its printed form.

    All generation is driven by {!Lhws_core.Rng} (splitmix64): the same
    seed and size parameters produce the same recipe on every platform. *)

(** {2 Program recipes} *)

(** Mirrors the constructors of {!Lhws_workloads.Program}, specialised to
    [int] values with fixed non-commutative combine functions, so that a
    branch swap or a dropped unit of value flow changes the result. *)
type prog =
  | Ret of int
  | Map_add of int * prog  (** [map (( + ) k)] *)
  | Work of int * prog  (** [work k], [k >= 1] *)
  | Latency of int * prog  (** [latency delta], [delta >= 2] *)
  | Fork of prog * prog  (** [fork2 l r (fun a b -> (2 * a) - b)] *)
  | Seq_fork of prog * int * prog
      (** [seq_fork2 p ~work:k ~f:(fun x -> (2 * x) + 1) r (fun b c -> (3 * b) - c)] *)

val to_program : prog -> int Lhws_workloads.Program.t

val prog_nodes : prog -> int
(** Number of recipe constructors — the size that generation and
    shrinking control. *)

val prog_latency_units : prog -> int
(** Sum of all [Latency] weights, an upper bound on the sleeping a real
    execution performs. *)

val pp_prog : Format.formatter -> prog -> unit
(** Valid OCaml-ish rendering, stable across runs. *)

(** Knobs for {!gen_prog}: bigger [size] means more constructors;
    [latency_prob] and [max_latency] control how latency-heavy the
    program is; [fork_prob] its fan-out. *)
type prog_params = {
  size : int;
  max_latency : int;
  latency_prob : float;
  fork_prob : float;
}

val default_prog_params : prog_params
(** size 40, max_latency 12, latency_prob 0.3, fork_prob 0.45. *)

val gen_prog : ?params:prog_params -> Lhws_core.Rng.t -> prog

val shrink_prog : prog -> prog list
(** Strictly smaller candidate recipes (subterms, halved constants),
    nearest-first.  [[]] when minimal. *)

(** {2 Dag recipes} *)

(** Either the dag of a program recipe (series–parallel with latency) or
    a parameterised instance of one of the {!Lhws_dag.Generate} families,
    covering the paper's named workloads (and their known suspension
    widths). *)
type dag =
  | Sp of prog
  | Map_reduce of { n : int; leaf_work : int; latency : int }
  | Jitter of { seed : int; n : int; leaf_work : int; min_latency : int; max_latency : int }
  | Server of { n : int; f_work : int; latency : int }
  | Pipeline of { stages : int; items : int; latency : int }
  | Resume_burst of { n : int; leaf_work : int; latency : int }

val to_dag : dag -> Lhws_dag.Dag.t
(** Always well-formed. *)

val width_upper_bound : dag -> Lhws_dag.Dag.t -> int
(** A sound upper bound on the suspension width [U]: the closed form for
    the named families, {!Lhws_dag.Suspension.exact} for small
    series–parallel dags, and the heavy-edge count otherwise (every cut
    crosses at most all heavy edges).  Safe to use in the [<= f U]
    direction of every bound check. *)

val pp_dag : Format.formatter -> dag -> unit

val gen_dag : ?params:prog_params -> Lhws_core.Rng.t -> dag
(** Picks a family at random; sizes are scaled from [params.size]. *)

val shrink_dag : dag -> dag list
