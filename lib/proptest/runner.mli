(** Seed-driven fuzzing loop with deterministic replay and shrinking.

    Case [i] of a run with base seed [s] uses case seed [s + i]; a
    failure is reported with its case seed, so
    [lhws_fuzz --count 1 --seed <case seed>] regenerates and re-checks
    exactly the failing case (case 0 of a run seeded with the case
    seed is the same case). *)

type case = Program_case of Recipe.prog | Dag_case of Recipe.dag

val generate_case : ?params:Recipe.prog_params -> int -> case
(** The case a given case seed denotes.  Deterministic. *)

type case_failure = {
  case_seed : int;
  case : case;  (** shrunk to a local minimum that still fails *)
  shrink_steps : int;
  failures : Oracle.failure list;  (** of the shrunk case *)
}

type options = {
  count : int;
  seed : int;
  max_size : int;  (** recipe size budget, {!Recipe.prog_params.size} *)
  ps : int list;  (** worker counts for the simulator sweeps *)
  pool_every : int;  (** real-pool oracle every n-th program case; 0 disables *)
  pool_workers : int;
  max_shrink_steps : int;
}

val default_options : options
(** count 100, seed 42, max_size 40, ps [1; 2; 4], pool_every 25,
    pool_workers 3, max_shrink_steps 400. *)

type outcome = {
  cases : int;
  program_cases : int;
  dag_cases : int;
  pool_checked : int;
  failed : case_failure list;  (** empty iff the run passed *)
}

val pp_case : Format.formatter -> case -> unit
val pp_case_failure : Format.formatter -> case_failure -> unit
val pp_outcome : Format.formatter -> outcome -> unit

val run : ?progress:(int -> unit) -> options -> outcome
(** Runs [count] cases.  [progress], if given, is called with each case
    index before the case is checked (for CLI heartbeat output). *)
