(** Cross-semantics and theorem-bound oracles for generated cases.

    A {e program} case is checked across all three semantics of
    {!Lhws_workloads.Program}: the reference {!Lhws_workloads.Program.value},
    the compiled dag under {!Lhws_core.Lhws_sim} (which must execute
    exactly the program's work, as a valid schedule), and — when pool
    checks are enabled — real execution on the latency-hiding pool under
    both steal policies and on the blocking baseline pool.

    A {e dag} case is checked against the paper's bounds on traced runs:
    Theorem 1 for the greedy scheduler, Lemma 1 token accounting, Lemma 7
    deque counts, the Section 2 suspension-width bound, Lemma 2 /
    Corollary 1 enabling-depth bounds, and the per-snapshot deque order
    invariant.  All [U]-dependent bounds use {!Recipe.width_upper_bound},
    which only ever weakens them, so a reported violation is a real one. *)

type failure = { check : string; detail : string }

val pp_failure : Format.formatter -> failure -> unit

val check_program_sim : ?ps:int list -> seed:int -> Recipe.prog -> failure list
(** Value vs. simulator: for each worker count in [ps] (default
    [[1; 2; 4]]) and both simulator steal policies, the compiled dag must
    simulate to completion with a valid schedule executing exactly
    [Program.work_units] vertices with balanced Lemma 1 tokens. *)

val check_program_pools :
  ?workers:int -> ?tick:float -> Recipe.prog -> failure list
(** Value vs. real runtimes: runs the program on the latency-hiding pool
    under [Global_deque] and [Worker_then_deque] steals and on the
    blocking baseline pool ([workers] each, default 3), comparing every
    result against {!Lhws_workloads.Program.value}.  [tick] (default
    0.5 ms) is capped adaptively so latency-heavy programs cannot stall
    the fuzzing loop. *)

val check_dag_bounds : ?ps:int list -> seed:int -> Recipe.dag -> failure list
(** Theorem-bound checks on traced runs of the recipe's dag, for each
    worker count in [ps] (default [[1; 2; 4]]) and two simulator seeds
    derived from [seed]:

    - greedy schedule length within Theorem 1's [W/P + S];
    - LHWS schedule valid, complete, Lemma 1 tokens balanced;
    - live deques per worker within Lemma 7's [U + 1];
    - simultaneous suspensions within [U] (Section 2);
    - enabling depths within Lemma 2 / Corollary 1;
    - deque depth order weakly decreasing bottom-to-top in every
      per-round snapshot ({!Lhws_analysis.Invariants.deque_order_violations}). *)
