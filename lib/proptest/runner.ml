module Rng = Lhws_core.Rng

type case = Program_case of Recipe.prog | Dag_case of Recipe.dag

let generate_case ?(params = Recipe.default_prog_params) case_seed =
  let rng = Rng.make case_seed in
  (* Even seeds draw a program, odd seeds a dag, so the two populations
     stay balanced regardless of the base seed. *)
  if case_seed land 1 = 0 then Program_case (Recipe.gen_prog ~params rng)
  else Dag_case (Recipe.gen_dag ~params rng)

type case_failure = {
  case_seed : int;
  case : case;
  shrink_steps : int;
  failures : Oracle.failure list;
}

type options = {
  count : int;
  seed : int;
  max_size : int;
  ps : int list;
  pool_every : int;
  pool_workers : int;
  max_shrink_steps : int;
}

let default_options =
  {
    count = 100;
    seed = 42;
    max_size = 40;
    ps = [ 1; 2; 4 ];
    pool_every = 25;
    pool_workers = 3;
    max_shrink_steps = 400;
  }

type outcome = {
  cases : int;
  program_cases : int;
  dag_cases : int;
  pool_checked : int;
  failed : case_failure list;
}

let pp_case ppf = function
  | Program_case p -> Format.fprintf ppf "program %a" Recipe.pp_prog p
  | Dag_case d -> Format.fprintf ppf "dag %a" Recipe.pp_dag d

let pp_case_failure ppf f =
  Format.fprintf ppf "@[<v 2>case seed %d (shrunk %d steps): %a@,%a@,replay: lhws_fuzz --count 1 --seed %d@]"
    f.case_seed f.shrink_steps pp_case f.case
    (Format.pp_print_list Oracle.pp_failure)
    f.failures f.case_seed

let pp_outcome ppf o =
  Format.fprintf ppf "%d cases (%d program, %d dag, %d pool-checked): " o.cases
    o.program_cases o.dag_cases o.pool_checked;
  match o.failed with
  | [] -> Format.fprintf ppf "all passed"
  | fs ->
      Format.fprintf ppf "%d FAILED@,%a" (List.length fs)
        (Format.pp_print_list pp_case_failure)
        fs

(* Greedy shrink descent: repeatedly move to the first shrink candidate
   that still fails (re-running only the oracles that failed, which keeps
   descent cheap when only the pool oracle tripped). *)
let shrink ~check ~shrink_candidates ~max_steps case0 failures0 =
  let rec go case failures steps =
    if steps >= max_steps then (case, failures, steps)
    else
      let rec first = function
        | [] -> None
        | candidate :: rest -> (
            match check candidate with
            | [] -> first rest
            | fs -> Some (candidate, fs))
      in
      match first (shrink_candidates case) with
      | None -> (case, failures, steps)
      | Some (smaller, fs) -> go smaller fs (steps + 1)
  in
  go case0 failures0 0

let check_program ~options ~with_pools ~case_seed prog =
  Oracle.check_program_sim ~ps:options.ps ~seed:case_seed prog
  @ (if with_pools then Oracle.check_program_pools ~workers:options.pool_workers prog else [])

let run ?progress options =
  let params = { Recipe.default_prog_params with size = max 1 options.max_size } in
  let program_cases = ref 0 and dag_cases = ref 0 and pool_checked = ref 0 in
  let failed = ref [] in
  for i = 0 to options.count - 1 do
    (match progress with Some f -> f i | None -> ());
    let case_seed = options.seed + i in
    match generate_case ~params case_seed with
    | Program_case prog ->
        incr program_cases;
        let with_pools = options.pool_every > 0 && !program_cases mod options.pool_every = 0 in
        if with_pools then incr pool_checked;
        let check = check_program ~options ~with_pools ~case_seed in
        (match check prog with
        | [] -> ()
        | failures ->
            let prog, failures, shrink_steps =
              shrink ~check ~shrink_candidates:Recipe.shrink_prog
                ~max_steps:options.max_shrink_steps prog failures
            in
            failed := { case_seed; case = Program_case prog; shrink_steps; failures } :: !failed)
    | Dag_case dag ->
        incr dag_cases;
        let check = Oracle.check_dag_bounds ~ps:options.ps ~seed:case_seed in
        (match check dag with
        | [] -> ()
        | failures ->
            let dag, failures, shrink_steps =
              shrink ~check ~shrink_candidates:Recipe.shrink_dag
                ~max_steps:options.max_shrink_steps dag failures
            in
            failed := { case_seed; case = Dag_case dag; shrink_steps; failures } :: !failed)
  done;
  {
    cases = options.count;
    program_cases = !program_cases;
    dag_cases = !dag_cases;
    pool_checked = !pool_checked;
    failed = List.rev !failed;
  }
