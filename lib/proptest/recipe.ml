module Program = Lhws_workloads.Program
module Generate = Lhws_dag.Generate
module Suspension = Lhws_dag.Suspension
module Metrics = Lhws_dag.Metrics
module Dag = Lhws_dag.Dag
module Rng = Lhws_core.Rng

(* --- program recipes --- *)

type prog =
  | Ret of int
  | Map_add of int * prog
  | Work of int * prog
  | Latency of int * prog
  | Fork of prog * prog
  | Seq_fork of prog * int * prog

(* The combine functions are fixed, injective in each argument and
   non-commutative: swapping fork branches, losing a value, or applying a
   combine twice all change the final integer. *)
let rec to_program = function
  | Ret k -> Program.return k
  | Map_add (k, p) -> Program.map (( + ) k) (to_program p)
  | Work (k, p) -> Program.work k (to_program p)
  | Latency (d, p) -> Program.latency d (to_program p)
  | Fork (l, r) -> Program.fork2 (to_program l) (to_program r) (fun a b -> (2 * a) - b)
  | Seq_fork (p, k, r) ->
      Program.seq_fork2 (to_program p) ~work:k
        ~f:(fun x -> (2 * x) + 1)
        (to_program r)
        (fun b c -> (3 * b) - c)

let rec prog_nodes = function
  | Ret _ -> 1
  | Map_add (_, p) | Work (_, p) | Latency (_, p) -> 1 + prog_nodes p
  | Fork (l, r) -> 1 + prog_nodes l + prog_nodes r
  | Seq_fork (p, _, r) -> 1 + prog_nodes p + prog_nodes r

let rec prog_latency_units = function
  | Ret _ -> 0
  | Map_add (_, p) | Work (_, p) -> prog_latency_units p
  | Latency (d, p) -> d + prog_latency_units p
  | Fork (l, r) -> prog_latency_units l + prog_latency_units r
  | Seq_fork (p, _, r) -> prog_latency_units p + prog_latency_units r

let rec pp_prog ppf = function
  | Ret k -> Format.fprintf ppf "Ret %d" k
  | Map_add (k, p) -> Format.fprintf ppf "Map_add (%d, %a)" k pp_prog p
  | Work (k, p) -> Format.fprintf ppf "Work (%d, %a)" k pp_prog p
  | Latency (d, p) -> Format.fprintf ppf "Latency (%d, %a)" d pp_prog p
  | Fork (l, r) -> Format.fprintf ppf "Fork (%a,@ %a)" pp_prog l pp_prog r
  | Seq_fork (p, k, r) -> Format.fprintf ppf "Seq_fork (%a,@ %d,@ %a)" pp_prog p k pp_prog r

type prog_params = {
  size : int;
  max_latency : int;
  latency_prob : float;
  fork_prob : float;
}

let default_prog_params = { size = 40; max_latency = 12; latency_prob = 0.3; fork_prob = 0.45 }

let gen_latency params rng = 2 + Rng.int rng (max 1 (params.max_latency - 1))

(* Fuel-bounded recursive generation, like Generate.random_fork_join but
   over recipes.  Fuel splits unevenly at forks for irregular shapes. *)
let gen_prog ?(params = default_prog_params) rng =
  let rec go fuel =
    if fuel <= 1 then Ret (Rng.int rng 100)
    else
      let wrap_latency p =
        if Rng.float rng < params.latency_prob then Latency (gen_latency params rng, p) else p
      in
      let split () =
        let f1 = 1 + Rng.int rng (max 1 (fuel - 1)) in
        (f1, max 1 (fuel - 1 - f1))
      in
      if Rng.float rng < params.fork_prob then
        let f1, f2 = split () in
        if Rng.int rng 3 = 0 then Seq_fork (go f1, 1 + Rng.int rng 3, go f2)
        else wrap_latency (Fork (go f1, go f2))
      else
        match Rng.int rng 4 with
        | 0 -> Map_add (Rng.int rng 50, go (fuel - 1))
        | 1 -> Work (1 + Rng.int rng 4, go (fuel - 1))
        | 2 -> Latency (gen_latency params rng, go (fuel - 1))
        | _ ->
            let f1, f2 = split () in
            wrap_latency (Fork (go f1, go f2))
  in
  go (max 1 params.size)

(* Shrinking: for every node, propose (a) replacing the whole recipe by a
   direct subterm, (b) halving an integer parameter toward its minimum.
   Candidates come out roughly smallest-step-first, which keeps greedy
   descent fast and the final counterexample near-minimal. *)
let shrink_int ~toward k = if k > toward then [ toward + ((k - toward) / 2) ] else []

let rec shrink_prog = function
  | Ret k -> if k <> 0 then [ Ret 0 ] else []
  | Map_add (k, p) ->
      (p :: List.map (fun k' -> Map_add (k', p)) (shrink_int ~toward:0 k))
      @ List.map (fun p' -> Map_add (k, p')) (shrink_prog p)
  | Work (k, p) ->
      (p :: List.map (fun k' -> Work (k', p)) (shrink_int ~toward:1 k))
      @ List.map (fun p' -> Work (k, p')) (shrink_prog p)
  | Latency (d, p) ->
      (p :: List.map (fun d' -> Latency (d', p)) (shrink_int ~toward:2 d))
      @ List.map (fun p' -> Latency (d, p')) (shrink_prog p)
  | Fork (l, r) ->
      [ l; r ]
      @ List.map (fun l' -> Fork (l', r)) (shrink_prog l)
      @ List.map (fun r' -> Fork (l, r')) (shrink_prog r)
  | Seq_fork (p, k, r) ->
      [ p; r; Fork (p, r) ]
      @ List.map (fun k' -> Seq_fork (p, k', r)) (shrink_int ~toward:1 k)
      @ List.map (fun p' -> Seq_fork (p', k, r)) (shrink_prog p)
      @ List.map (fun r' -> Seq_fork (p, k, r')) (shrink_prog r)

(* --- dag recipes --- *)

type dag =
  | Sp of prog
  | Map_reduce of { n : int; leaf_work : int; latency : int }
  | Jitter of { seed : int; n : int; leaf_work : int; min_latency : int; max_latency : int }
  | Server of { n : int; f_work : int; latency : int }
  | Pipeline of { stages : int; items : int; latency : int }
  | Resume_burst of { n : int; leaf_work : int; latency : int }

let to_dag = function
  | Sp p -> Program.to_dag (to_program p)
  | Map_reduce { n; leaf_work; latency } -> Generate.map_reduce ~n ~leaf_work ~latency
  | Jitter { seed; n; leaf_work; min_latency; max_latency } ->
      Generate.map_reduce_jitter ~seed ~n ~leaf_work ~min_latency ~max_latency
  | Server { n; f_work; latency } -> Generate.server ~n ~f_work ~latency
  | Pipeline { stages; items; latency } -> Generate.pipeline ~stages ~items ~latency
  | Resume_burst { n; leaf_work; latency } -> Generate.resume_burst ~n ~leaf_work ~latency

(* Exhaustive width search is exponential; past this size the heavy-edge
   count stands in as the upper bound. *)
let exact_width_limit = 14

let width_upper_bound recipe g =
  match recipe with
  | Map_reduce { n; _ } | Jitter { n; _ } | Resume_burst { n; _ } -> n
  | Server _ -> 1
  | Pipeline { items; _ } -> items
  | Sp _ ->
      if Dag.num_vertices g <= exact_width_limit then Suspension.exact g
      else Metrics.num_heavy_edges g

let pp_dag ppf = function
  | Sp p -> Format.fprintf ppf "Sp (%a)" pp_prog p
  | Map_reduce { n; leaf_work; latency } ->
      Format.fprintf ppf "Map_reduce {n=%d; leaf_work=%d; latency=%d}" n leaf_work latency
  | Jitter { seed; n; leaf_work; min_latency; max_latency } ->
      Format.fprintf ppf "Jitter {seed=%d; n=%d; leaf_work=%d; min_latency=%d; max_latency=%d}"
        seed n leaf_work min_latency max_latency
  | Server { n; f_work; latency } ->
      Format.fprintf ppf "Server {n=%d; f_work=%d; latency=%d}" n f_work latency
  | Pipeline { stages; items; latency } ->
      Format.fprintf ppf "Pipeline {stages=%d; items=%d; latency=%d}" stages items latency
  | Resume_burst { n; leaf_work; latency } ->
      Format.fprintf ppf "Resume_burst {n=%d; leaf_work=%d; latency=%d}" n leaf_work latency

let gen_dag ?(params = default_prog_params) rng =
  let scaled lo hi = lo + Rng.int rng (max 1 (min hi (max lo (params.size / 2)) - lo + 1)) in
  let latency () = gen_latency params rng in
  match Rng.int rng 6 with
  | 0 -> Sp (gen_prog ~params rng)
  | 1 -> Map_reduce { n = scaled 1 32; leaf_work = 1 + Rng.int rng 5; latency = latency () }
  | 2 ->
      let min_latency = latency () in
      Jitter
        {
          seed = Rng.int rng 1_000_000;
          n = scaled 1 32;
          leaf_work = 1 + Rng.int rng 5;
          min_latency;
          max_latency = min_latency + Rng.int rng 10;
        }
  | 3 -> Server { n = scaled 1 24; f_work = 1 + Rng.int rng 6; latency = latency () }
  | 4 ->
      Pipeline
        { stages = 1 + Rng.int rng 5; items = scaled 1 16; latency = latency () }
  | _ -> Resume_burst { n = scaled 1 16; leaf_work = 1 + Rng.int rng 4; latency = latency () }

let shrink_dag = function
  | Sp p -> List.map (fun p' -> Sp p') (shrink_prog p)
  | Map_reduce { n; leaf_work; latency } ->
      List.map (fun n -> Map_reduce { n; leaf_work; latency }) (shrink_int ~toward:1 n)
      @ List.map (fun leaf_work -> Map_reduce { n; leaf_work; latency }) (shrink_int ~toward:1 leaf_work)
      @ List.map (fun latency -> Map_reduce { n; leaf_work; latency }) (shrink_int ~toward:2 latency)
  | Jitter { seed; n; leaf_work; min_latency; max_latency } ->
      [ Map_reduce { n; leaf_work; latency = min_latency } ]
      @ List.map
          (fun n -> Jitter { seed; n; leaf_work; min_latency; max_latency })
          (shrink_int ~toward:1 n)
      @ List.map
          (fun max_latency -> Jitter { seed; n; leaf_work; min_latency; max_latency })
          (shrink_int ~toward:min_latency max_latency)
  | Server { n; f_work; latency } ->
      List.map (fun n -> Server { n; f_work; latency }) (shrink_int ~toward:1 n)
      @ List.map (fun f_work -> Server { n; f_work; latency }) (shrink_int ~toward:1 f_work)
      @ List.map (fun latency -> Server { n; f_work; latency }) (shrink_int ~toward:2 latency)
  | Pipeline { stages; items; latency } ->
      List.map (fun stages -> Pipeline { stages; items; latency }) (shrink_int ~toward:1 stages)
      @ List.map (fun items -> Pipeline { stages; items; latency }) (shrink_int ~toward:1 items)
      @ List.map (fun latency -> Pipeline { stages; items; latency }) (shrink_int ~toward:2 latency)
  | Resume_burst { n; leaf_work; latency } ->
      List.map (fun n -> Resume_burst { n; leaf_work; latency }) (shrink_int ~toward:1 n)
      @ List.map
          (fun leaf_work -> Resume_burst { n; leaf_work; latency })
          (shrink_int ~toward:1 leaf_work)
      @ List.map
          (fun latency -> Resume_burst { n; leaf_work; latency })
          (shrink_int ~toward:2 latency)
