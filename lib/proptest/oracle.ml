module Program = Lhws_workloads.Program
module Metrics = Lhws_dag.Metrics
module Check = Lhws_dag.Check
open Lhws_core
module Bounds = Lhws_analysis.Bounds
module Invariants = Lhws_analysis.Invariants

type failure = { check : string; detail : string }

let pp_failure ppf f = Format.fprintf ppf "%s: %s" f.check f.detail

let failf check fmt = Format.kasprintf (fun detail -> { check; detail }) fmt

let default_ps = [ 1; 2; 4 ]

(* --- program cases: value vs. simulator --- *)

let sim_policies =
  [ ("global", Config.Steal_global_deque); ("worker", Config.Steal_worker_then_deque) ]

let check_program_sim ?(ps = default_ps) ~seed recipe =
  let program = Recipe.to_program recipe in
  let expected_work = Program.work_units program in
  let g = Program.to_dag program in
  let failures = ref [] in
  let add f = failures := f :: !failures in
  if not (Check.well_formed g) then
    add (failf "to_dag" "compiled dag is not well-formed");
  if Metrics.work g <> expected_work then
    add
      (failf "work_units" "Metrics.work %d <> Program.work_units %d" (Metrics.work g)
         expected_work);
  List.iter
    (fun p ->
      List.iter
        (fun (pname, steal_policy) ->
          let config = { Config.analysis with steal_policy; seed } in
          match Lhws_sim.run ~config g ~p with
          | run ->
              let ctx = Printf.sprintf "p=%d policy=%s seed=%d" p pname seed in
              if run.Run.stats.Stats.vertices_executed <> expected_work then
                add
                  (failf "sim/work" "%s: executed %d of %d vertices" ctx
                     run.Run.stats.Stats.vertices_executed expected_work);
              if not (Stats.balanced run.Run.stats) then
                add (failf "sim/tokens" "%s: Lemma 1 token accounting unbalanced" ctx);
              (match Schedule.problems g (Run.trace_exn run) with
              | [] -> ()
              | pb :: _ -> add (failf "sim/schedule" "%s: %a" ctx Schedule.pp_problem pb))
          | exception Config.Stuck msg ->
              add (failf "sim/stuck" "p=%d policy=%s seed=%d: %s" p pname seed msg))
        sim_policies)
    ps;
  List.rev !failures

(* --- program cases: value vs. real pools --- *)

module Lhws_pool = Lhws_runtime.Lhws_pool
module Ws_pool = Lhws_runtime.Ws_pool
module Lhws_instance = Lhws_workloads.Pool_intf.Lhws_instance
module Ws_instance = Lhws_workloads.Pool_intf.Ws_instance

let check_program_pools ?(workers = 3) ?(tick = 0.0005) recipe =
  let program = Recipe.to_program recipe in
  let expected = Program.value program in
  (* Cap total simulated latency so a latency-heavy case cannot stall the
     whole fuzzing loop (the blocking pool really waits it out). *)
  let latency_units = max 1 (Recipe.prog_latency_units recipe) in
  let tick = min tick (0.25 /. float_of_int latency_units) in
  let on_lhws policy =
    let pool = Lhws_pool.create ~workers ~steal_policy:policy () in
    Fun.protect
      ~finally:(fun () -> Lhws_pool.shutdown pool)
      (fun () -> Program.run_on (module Lhws_instance) pool ~tick program)
  in
  let on_ws () =
    let pool = Ws_pool.create ~workers () in
    Fun.protect
      ~finally:(fun () -> Ws_pool.shutdown pool)
      (fun () -> Program.run_on (module Ws_instance) pool ~tick program)
  in
  let runs =
    [
      ("lhws/global", fun () -> on_lhws Lhws_pool.Global_deque);
      ("lhws/worker", fun () -> on_lhws Lhws_pool.Worker_then_deque);
      ("ws", on_ws);
    ]
  in
  List.filter_map
    (fun (name, run) ->
      match run () with
      | v when v = expected -> None
      | v -> Some (failf "pool/value" "%s: got %d, reference value %d" name v expected)
      | exception e ->
          Some (failf "pool/exn" "%s: raised %s" name (Printexc.to_string e)))
    runs

(* --- dag cases: theorem bounds on traced runs --- *)

let check_dag_bounds ?(ps = default_ps) ~seed recipe =
  let g = Recipe.to_dag recipe in
  let u = Recipe.width_upper_bound recipe g in
  let failures = ref [] in
  let add f = failures := f :: !failures in
  if not (Check.well_formed g) then add (failf "dag" "generated dag is not well-formed");
  let work = Metrics.work g in
  List.iter
    (fun p ->
      (* Theorem 1: the greedy scheduler is deterministic, one run per p. *)
      let greedy = Greedy.run g ~p in
      let ginst = Bounds.instance ~suspension_width:u g ~p greedy in
      if not (Bounds.greedy_ok ginst) then
        add
          (failf "thm1" "p=%d: greedy took %d rounds > bound %d (W=%d S=%d)" p
             greedy.Run.rounds (Bounds.greedy_bound ginst) work (Metrics.span g));
      List.iter
        (fun sim_seed ->
          let ctx = Printf.sprintf "p=%d seed=%d" p sim_seed in
          let order_violations = ref 0 in
          let config = { Config.analysis with seed = sim_seed } in
          let observer snap =
            order_violations := !order_violations + Invariants.deque_order_violations snap
          in
          match Lhws_sim.run ~config ~observer g ~p with
          | run ->
              let inst = Bounds.instance ~suspension_width:u g ~p run in
              if run.Run.stats.Stats.vertices_executed <> work then
                add
                  (failf "lhws/work" "%s: executed %d of %d vertices" ctx
                     run.Run.stats.Stats.vertices_executed work);
              if not (Schedule.valid g (Run.trace_exn run)) then
                add (failf "lhws/schedule" "%s: invalid schedule" ctx);
              if not (Bounds.lemma1_ok inst) then
                add (failf "lemma1" "%s: token accounting outside (4W + R)/P" ctx);
              if not (Bounds.lemma7_ok inst) then
                add
                  (failf "lemma7" "%s: max %d live deques on one worker > U + 1 = %d" ctx
                     run.Run.stats.Stats.max_deques_per_worker (u + 1));
              if not (Bounds.width_ok inst) then
                add
                  (failf "width" "%s: %d simultaneous suspensions > U = %d" ctx
                     run.Run.stats.Stats.max_live_suspended u);
              let report = Invariants.depth_report ~suspension_width:u g (Run.trace_exn run) in
              if not (Invariants.lemma2_ok report) then
                add
                  (failf "lemma2" "%s: %d enabling depths above (2 + lg U) * d_G, max ratio %.3f > %.3f"
                     ctx report.Invariants.violations report.Invariants.max_ratio
                     report.Invariants.bound);
              if not (Bounds.corollary1_ok inst) then
                add
                  (failf "corollary1" "%s: enabling span above 2 S (1 + lg U) = %.1f" ctx
                     (Bounds.enabling_span_bound inst));
              if !order_violations > 0 then
                add
                  (failf "deque-order" "%s: %d snapshots with non-monotone deque depths" ctx
                     !order_violations)
          | exception Config.Stuck msg -> add (failf "lhws/stuck" "%s: %s" ctx msg))
        [ seed; seed + 0x9e37 ])
    ps;
  List.rev !failures
