module Rng = Lhws_core.Rng

module type DEQUE = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom : 'a t -> 'a option
  val steal : 'a t -> 'a option
  val steal_half : 'a t -> ('a -> unit) -> int
end

module Chase_lev_deque = Lhws_deque.Chase_lev

type report = {
  pushed : int;
  popped : int;
  stolen : int;
  lost : int;
  duplicated : int;
  reordered : int;
}

let ok r = r.lost = 0 && r.duplicated = 0 && r.reordered = 0

let pp_report ppf r =
  Format.fprintf ppf
    "pushed %d, popped %d, stolen %d; lost %d, duplicated %d, reordered %d" r.pushed r.popped
    r.stolen r.lost r.duplicated r.reordered

let count_inversions xs =
  (* Strictly increasing is the expectation; count adjacent violations. *)
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (if b <= a then acc + 1 else acc) rest
    | _ -> acc
  in
  go 0 xs

let hammer (module D : DEQUE) ?(thieves = 3) ?(items = 20_000) ?(pop_every = 7)
    ?(owner_pause_every = 0) ?(steal = `One) () =
  let d = D.create () in
  let done_pushing = Atomic.make false in
  let thief () =
    (* Collected newest-first; reversed before the order check.  The
       per-thief increasing-order check holds for batched steals too: a
       batch hands over consecutive top indexes, and top only moves
       forward, so one thief's elements across batches still come out in
       push order. *)
    let mine = ref [] in
    let steal_once () =
      match steal with
      | `One -> (
          match D.steal d with
          | Some x ->
              mine := x :: !mine;
              1
          | None -> 0)
      | `Half -> D.steal_half d (fun x -> mine := x :: !mine)
    in
    let rec go misses =
      if steal_once () > 0 then go 0
      else if Atomic.get done_pushing && misses > 200 then ()
      else begin
        Domain.cpu_relax ();
        go (misses + 1)
      end
    in
    go 0;
    List.rev !mine
  in
  let thief_domains = Array.init thieves (fun _ -> Domain.spawn thief) in
  let owner = ref [] in
  for i = 1 to items do
    D.push_bottom d i;
    (if pop_every > 0 && i mod pop_every = 0 then
       match D.pop_bottom d with Some x -> owner := x :: !owner | None -> ());
    (* A real sleep, not [cpu_relax]: on a single core the thieves only
       run when the owner gives up the CPU, and some checks (bursts of
       consecutive steals) need the owner quiescent while they do. *)
    if owner_pause_every > 0 && i mod owner_pause_every = 0 then Unix.sleepf 1e-6
  done;
  Atomic.set done_pushing true;
  (* The drain honours [owner_pause_every] too: checks that need a thief
     to act while the owner is mid-drain (e.g. a stale range reservation
     colliding with owner pops) get their windows on a single core. *)
  let drained = ref 0 in
  let rec drain () =
    match D.pop_bottom d with
    | Some x ->
        owner := x :: !owner;
        incr drained;
        if owner_pause_every > 0 && !drained mod owner_pause_every = 0 then Unix.sleepf 1e-6;
        drain ()
    | None -> ()
  in
  drain ();
  let stolen_lists = Array.to_list (Array.map Domain.join thief_domains) in
  let consumed = Array.make (items + 1) 0 in
  let record xs = List.iter (fun x -> if x >= 1 && x <= items then consumed.(x) <- consumed.(x) + 1) xs in
  record !owner;
  List.iter record stolen_lists;
  let lost = ref 0 and duplicated = ref 0 in
  for i = 1 to items do
    if consumed.(i) = 0 then incr lost;
    if consumed.(i) > 1 then duplicated := !duplicated + (consumed.(i) - 1)
  done;
  {
    pushed = items;
    popped = List.length !owner;
    stolen = List.fold_left (fun acc l -> acc + List.length l) 0 stolen_lists;
    lost = !lost;
    duplicated = !duplicated;
    reordered = List.fold_left (fun acc l -> acc + count_inversions l) 0 stolen_lists;
  }

(* Sequential split-contract check: for every size n in [0, max_size], a
   single steal_half on an n-element deque must take exactly ceil(n/2)
   elements, the oldest ones, in push order, leaving the newest half for
   the owner.  Contract deviations (wrong batch size, wrong elements or
   wrong order) count as [reordered]; the multiset check across the steal
   and the owner's drain feeds [lost]/[duplicated] as usual. *)
let split_model (module D : DEQUE) ?(max_size = 64) () =
  let pushed = ref 0 and popped = ref 0 and stolen = ref 0 in
  let lost = ref 0 and duplicated = ref 0 and reordered = ref 0 in
  for n = 0 to max_size do
    let d = D.create ~capacity:2 () in
    for i = 1 to n do
      D.push_bottom d i
    done;
    pushed := !pushed + n;
    let got = ref [] in
    let k = D.steal_half d (fun x -> got := x :: !got) in
    let got = List.rev !got in
    stolen := !stolen + k;
    let expect_k = (n + 1) / 2 in
    if k <> expect_k || List.length got <> k then incr reordered;
    if got <> List.init (List.length got) (fun i -> i + 1) then incr reordered;
    let consumed = Array.make (n + 1) 0 in
    List.iter (fun x -> if x >= 1 && x <= n then consumed.(x) <- consumed.(x) + 1) got;
    (* The owner drains the remainder, newest first. *)
    let prev = ref max_int in
    let rec drain () =
      match D.pop_bottom d with
      | Some x ->
          incr popped;
          if x >= !prev then incr reordered;
          prev := x;
          if x >= 1 && x <= n then consumed.(x) <- consumed.(x) + 1;
          drain ()
      | None -> ()
    in
    drain ();
    for i = 1 to n do
      if consumed.(i) = 0 then incr lost;
      if consumed.(i) > 1 then duplicated := !duplicated + (consumed.(i) - 1)
    done
  done;
  {
    pushed = !pushed;
    popped = !popped;
    stolen = !stolen;
    lost = !lost;
    duplicated = !duplicated;
    reordered = !reordered;
  }

let sequential_model (module D : DEQUE) ?(ops = 5_000) ~seed () =
  let d = D.create ~capacity:2 () in
  let rng = Rng.make seed in
  (* Reference model: a plain list, oldest first. *)
  let model = ref [] in
  let model_push x = model := !model @ [ x ] in
  let model_pop () =
    match List.rev !model with
    | [] -> None
    | newest :: rest_rev ->
        model := List.rev rest_rev;
        Some newest
  in
  let model_steal () =
    match !model with
    | [] -> None
    | oldest :: rest ->
        model := rest;
        Some oldest
  in
  let next = ref 0 in
  let pushed = ref 0 and popped = ref 0 and stolen = ref 0 and reordered = ref 0 in
  let consumed = Hashtbl.create ops in
  let consume = function
    | None -> ()
    | Some x -> Hashtbl.replace consumed x (1 + Option.value ~default:0 (Hashtbl.find_opt consumed x))
  in
  for _ = 1 to ops do
    match Rng.int rng 6 with
    | 0 | 1 | 2 ->
        incr next;
        incr pushed;
        D.push_bottom d !next;
        model_push !next
    | 3 ->
        let got = D.pop_bottom d in
        if got <> None then incr popped;
        consume got;
        if got <> model_pop () then incr reordered
    | 4 ->
        let got = D.steal d in
        if got <> None then incr stolen;
        consume got;
        if got <> model_steal () then incr reordered
    | _ ->
        (* Batched steal: must take exactly ceil(n/2) oldest, in order. *)
        let got = ref [] in
        let k = D.steal_half d (fun x -> got := x :: !got) in
        let got = List.rev !got in
        stolen := !stolen + k;
        let expect_k = (List.length !model + 1) / 2 in
        if k <> expect_k then incr reordered;
        List.iter
          (fun x ->
            consume (Some x);
            if model_steal () <> Some x then incr reordered)
          got
  done;
  (* Drain what remains so loss/duplication are judged on the full run. *)
  let rec drain () =
    match D.pop_bottom d with
    | Some _ as got ->
        incr popped;
        consume got;
        if got <> model_pop () then incr reordered;
        drain ()
    | None -> if model_pop () <> None then incr reordered
  in
  drain ();
  let lost = ref 0 and duplicated = ref 0 in
  for x = 1 to !next do
    match Hashtbl.find_opt consumed x with
    | None -> incr lost
    | Some 1 -> ()
    | Some k -> duplicated := !duplicated + (k - 1)
  done;
  {
    pushed = !pushed;
    popped = !popped;
    stolen = !stolen;
    lost = !lost;
    duplicated = !duplicated;
    reordered = !reordered;
  }
