module Rng = Lhws_core.Rng

module type DEQUE = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push_bottom : 'a t -> 'a -> unit
  val pop_bottom : 'a t -> 'a option
  val steal : 'a t -> 'a option
end

module Chase_lev_deque = Lhws_deque.Chase_lev

type report = {
  pushed : int;
  popped : int;
  stolen : int;
  lost : int;
  duplicated : int;
  reordered : int;
}

let ok r = r.lost = 0 && r.duplicated = 0 && r.reordered = 0

let pp_report ppf r =
  Format.fprintf ppf
    "pushed %d, popped %d, stolen %d; lost %d, duplicated %d, reordered %d" r.pushed r.popped
    r.stolen r.lost r.duplicated r.reordered

let count_inversions xs =
  (* Strictly increasing is the expectation; count adjacent violations. *)
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (if b <= a then acc + 1 else acc) rest
    | _ -> acc
  in
  go 0 xs

let hammer (module D : DEQUE) ?(thieves = 3) ?(items = 20_000) ?(pop_every = 7)
    ?(owner_pause_every = 0) () =
  let d = D.create () in
  let done_pushing = Atomic.make false in
  let thief () =
    (* Collected newest-first; reversed before the order check. *)
    let mine = ref [] in
    let rec go misses =
      match D.steal d with
      | Some x ->
          mine := x :: !mine;
          go 0
      | None ->
          if Atomic.get done_pushing && misses > 200 then ()
          else begin
            Domain.cpu_relax ();
            go (misses + 1)
          end
    in
    go 0;
    List.rev !mine
  in
  let thief_domains = Array.init thieves (fun _ -> Domain.spawn thief) in
  let owner = ref [] in
  for i = 1 to items do
    D.push_bottom d i;
    (if pop_every > 0 && i mod pop_every = 0 then
       match D.pop_bottom d with Some x -> owner := x :: !owner | None -> ());
    (* A real sleep, not [cpu_relax]: on a single core the thieves only
       run when the owner gives up the CPU, and some checks (bursts of
       consecutive steals) need the owner quiescent while they do. *)
    if owner_pause_every > 0 && i mod owner_pause_every = 0 then Unix.sleepf 1e-6
  done;
  Atomic.set done_pushing true;
  let rec drain () =
    match D.pop_bottom d with
    | Some x ->
        owner := x :: !owner;
        drain ()
    | None -> ()
  in
  drain ();
  let stolen_lists = Array.to_list (Array.map Domain.join thief_domains) in
  let consumed = Array.make (items + 1) 0 in
  let record xs = List.iter (fun x -> if x >= 1 && x <= items then consumed.(x) <- consumed.(x) + 1) xs in
  record !owner;
  List.iter record stolen_lists;
  let lost = ref 0 and duplicated = ref 0 in
  for i = 1 to items do
    if consumed.(i) = 0 then incr lost;
    if consumed.(i) > 1 then duplicated := !duplicated + (consumed.(i) - 1)
  done;
  {
    pushed = items;
    popped = List.length !owner;
    stolen = List.fold_left (fun acc l -> acc + List.length l) 0 stolen_lists;
    lost = !lost;
    duplicated = !duplicated;
    reordered = List.fold_left (fun acc l -> acc + count_inversions l) 0 stolen_lists;
  }

let sequential_model (module D : DEQUE) ?(ops = 5_000) ~seed () =
  let d = D.create ~capacity:2 () in
  let rng = Rng.make seed in
  (* Reference model: a plain list, oldest first. *)
  let model = ref [] in
  let model_push x = model := !model @ [ x ] in
  let model_pop () =
    match List.rev !model with
    | [] -> None
    | newest :: rest_rev ->
        model := List.rev rest_rev;
        Some newest
  in
  let model_steal () =
    match !model with
    | [] -> None
    | oldest :: rest ->
        model := rest;
        Some oldest
  in
  let next = ref 0 in
  let pushed = ref 0 and popped = ref 0 and stolen = ref 0 and reordered = ref 0 in
  let consumed = Hashtbl.create ops in
  let consume = function
    | None -> ()
    | Some x -> Hashtbl.replace consumed x (1 + Option.value ~default:0 (Hashtbl.find_opt consumed x))
  in
  for _ = 1 to ops do
    match Rng.int rng 4 with
    | 0 | 1 ->
        incr next;
        incr pushed;
        D.push_bottom d !next;
        model_push !next
    | 2 ->
        let got = D.pop_bottom d in
        if got <> None then incr popped;
        consume got;
        if got <> model_pop () then incr reordered
    | _ ->
        let got = D.steal d in
        if got <> None then incr stolen;
        consume got;
        if got <> model_steal () then incr reordered
  done;
  (* Drain what remains so loss/duplication are judged on the full run. *)
  let rec drain () =
    match D.pop_bottom d with
    | Some _ as got ->
        incr popped;
        consume got;
        if got <> model_pop () then incr reordered;
        drain ()
    | None -> if model_pop () <> None then incr reordered
  in
  drain ();
  let lost = ref 0 and duplicated = ref 0 in
  for x = 1 to !next do
    match Hashtbl.find_opt consumed x with
    | None -> incr lost
    | Some 1 -> ()
    | Some k -> duplicated := !duplicated + (k - 1)
  done;
  {
    pushed = !pushed;
    popped = !popped;
    stolen = !stolen;
    lost = !lost;
    duplicated = !duplicated;
    reordered = !reordered;
  }
