(** HTTP/1.1 serving layer over {!Conn}/{!Listener}/{!Reactor}.

    The paper's thesis is about {e interacting} parallel computations:
    many small latency-bound requests interleaved with parallel
    compute.  The RPC stack proves the scheduler story over a custom
    length-prefixed framing; this module speaks the protocol real
    traffic arrives in, so the c10k-class load legs measure the same
    scheduler under HTTP/1.1 keep-alive connections.

    Three layers:

    - {!Parser}: an incremental, allocation-conscious request parser —
      feed it arbitrary byte slices (any split boundary, byte-at-a-time
      if need be), pull complete requests out.  Bodies are framed by
      [Content-Length] or chunked transfer-encoding; malformed input
      yields a typed error carrying the status to answer with (400 /
      413 / 431 / 501 / 505) instead of an exception or a hang.
    - {!serve} / {!Router}: each parsed request is dispatched as a pool
      task; responses are serialized {e in request order} through a
      per-connection outbox that coalesces whatever is ready into one
      vectored write (the {!Rpc} combining-outbox idiom, plus
      ordering), so pipelined clients get correct ordering and the
      server pays ~one gathering syscall for a burst of responses.
      Routes can carry their own dispatcher, which is how a
      {!Lhws_workloads.Topology} pins a compute route to the batch
      micropool while I/O routes stay on the latency pool.
    - {!Client}: a pipelined keep-alive client for the load generator
      and tests, plus {!Client.call_sync} for blocking pools.

    Overload and shutdown map onto status codes: a read deadline that
    expires {e mid-request} is answered with 408 before closing; a
    server past its [shed_above] high-water mark or draining after
    {!shutdown} answers 503 (draining adds [Connection: close]).  A
    request that cannot be parsed is answered with its error's status
    and the connection closed — never silently dropped, never a parked
    fiber leaked. *)

type version = [ `Http_1_0 | `Http_1_1 ]

type request = {
  meth : string;  (** verb as sent, e.g. ["GET"] — case-sensitive *)
  target : string;  (** raw request-target *)
  path : string;  (** [target] up to [?] *)
  query : string;  (** after [?], [""] when absent *)
  version : version;
  headers : (string * string) list;
      (** in arrival order, names lowercased, values trimmed *)
  body : Bytes.t;
  keep_alive : bool;
      (** the connection semantics the peer asked for: 1.1 default
          persistent unless [Connection: close]; 1.0 default close
          unless [Connection: keep-alive] *)
}

val header : request -> string -> string option
(** First header with this (lowercased) name. *)

type response = {
  status : int;
  reason : string;  (** [""] picks the standard reason phrase *)
  resp_headers : (string * string) list;
      (** extra headers; [Date], [Content-Length] and [Connection] are
          emitted by the serializer — occurrences here are dropped *)
  resp_body : Bytes.t;
}

val response :
  ?status:int -> ?reason:string -> ?headers:(string * string) list -> Bytes.t -> response
(** Defaults: status 200, derived reason, no extra headers. *)

val text : ?status:int -> string -> response
(** Plain-text response ([Content-Type: text/plain]). *)

val reason_phrase : int -> string

(** {1 Incremental request parsing} *)

module Parser : sig
  type t

  type error = { status : int; reason : string }
  (** What to answer before closing: 400 (malformed, including
      smuggling-shaped input: conflicting [Content-Length] pairs,
      [Content-Length] alongside [Transfer-Encoding]), 413 (body over
      [max_body_bytes]), 431 (head over [max_header_bytes]), 501
      (transfer-coding other than chunked), 505 (version). *)

  type event =
    | Need_more  (** no complete request buffered; feed more bytes *)
    | Request of request
    | Failed of error
        (** the stream is poisoned: answer, close, stop feeding *)

  val create : ?max_header_bytes:int -> ?max_body_bytes:int -> unit -> t
  (** Defaults: 16 KiB head, 8 MiB body. *)

  val feed : t -> ?off:int -> ?len:int -> Bytes.t -> unit
  (** Appends a slice ([off]/[len] default to the whole buffer).  Any
      fragmentation is fine — the parser's results are identical
      whether the stream arrives in one slab or byte-at-a-time (the
      property the robustness battery pins). *)

  val next : t -> event
  (** Pulls the next complete request.  Call repeatedly: several
      pipelined requests fed in one slice come back one per call.
      After [Failed] every subsequent call returns the same error. *)

  val at_boundary : t -> bool
  (** No partial request buffered — distinguishes an idle keep-alive
      connection timing out (just close) from a peer dying mid-request
      (answer 408).  True initially and after each complete request. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed into a request. *)
end

(** {1 Routing} *)

module Router : sig
  type params = (string * string) list
  (** Captured path segments, e.g. [[("n", "32")]] for [/fib/:n]. *)

  type route

  val route :
    ?dispatch:((unit -> unit) -> unit) ->
    meth:string ->
    string ->
    (params -> request -> response) ->
    route
  (** [route ~meth pattern handler].  Pattern segments: literals,
      [:name] captures one segment, a trailing [*] captures the rest
      (param ["*"]).  [dispatch] overrides the server's dispatcher for
      this route — pass {!Lhws_workloads.Topology.dispatcher} to pin a
      route class to its micropool.
      @raise Invalid_argument on an empty pattern. *)

  type t

  val create : ?fallback:(request -> response) -> route list -> t
  (** First match in list order wins.  Without [fallback], unmatched
      paths get 404 and matched paths with the wrong method 405 (with
      an [Allow] header). *)

  val dispatch_of : t -> request -> ((unit -> unit) -> unit) option * (unit -> response)
  (** The route's dispatcher override (if any) and a thunk producing
      the response — what {!serve_router} runs as a pool task. *)
end

(** {1 Serving} *)

type config = {
  listener : Listener.config;
  max_header_bytes : int;
  max_body_bytes : int;
  max_pipeline : int;
      (** per-connection cap on decoded-but-unanswered requests; past
          it the connection stops being read, so backpressure reaches
          the peer through TCP (same idiom as {!Rpc}) *)
  shed_above : int option;
      (** server-wide in-flight request high-water mark: at/above it
          new requests are answered 503 without dispatching *)
  max_queue_age : float option;
      (** deadline-aware brownout budget, seconds: while the oldest
          admitted-but-unanswered request is older than this, new
          requests on live connections are answered 503 +
          [Retry-After] and new connections are shed at accept (the
          gauge is wired into the listener's [shed_pred]) — admission
          stops the moment queued work is already too old to serve in
          time, instead of deepening the queue everyone waits behind
          (default [None]) *)
}

val default_config : config
(** {!Listener.default_config} with [max_conns] raised to 16384 (the
    c10k legs need headroom; the reactor's poll backend has no
    descriptor ceiling), 16 KiB heads, 8 MiB bodies, 64 pipelined
    requests, no shedding. *)

type server

val serve :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?config:config ->
  ?dispatch:((unit -> unit) -> unit) ->
  Unix.sockaddr ->
  handler:(request -> response) ->
  server
(** Binds, listens, serves.  Every parsed request runs as a pool task
    through [dispatch] (default: [P.async] on the serving pool); the
    decode loop stays on the serving pool.  A handler that raises is
    answered 500 with the exception text. *)

val serve_router :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?config:config ->
  ?dispatch:((unit -> unit) -> unit) ->
  Unix.sockaddr ->
  router:Router.t ->
  server
(** {!serve} with per-route dispatcher overrides honoured. *)

val listener : server -> Listener.t
val addr : server -> Unix.sockaddr

val inflight : server -> int
(** Requests dispatched and not yet answered, server-wide. *)

val served : server -> int
(** Responses written (all statuses). *)

val shed_503 : server -> int
(** Requests answered 503 by the shed / drain / brownout fast paths. *)

val draining : server -> bool

val oldest_pending_age : server -> float
(** Age in seconds of the oldest admitted-but-unanswered request (0
    when none are pending) — the gauge the [max_queue_age] brownout
    reads. *)

val shutdown : ?grace:float -> server -> unit
(** Drain: mark the server draining (new requests on live connections
    answer 503 + [Connection: close]), stop accepting, give in-flight
    handlers [grace] seconds (default 5), then force-close stragglers.
    Idempotent. *)

(** {1 Client} *)

module Client : sig
  type t

  type resp = {
    status : int;
    reason : string;
    headers : (string * string) list;  (** names lowercased *)
    body : Bytes.t;
  }

  val connect :
    (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
    'p ->
    Reactor.t ->
    ?read_timeout:float ->
    ?write_timeout:float ->
    Unix.sockaddr ->
    t
  (** One keep-alive connection plus a demux task reading responses in
      order.  Same pool restrictions as {!Rpc.Client.connect} (not the
      helping-await WS pool; blocking pools should use {!call_sync}
      over a connection per thread). *)

  val call :
    t ->
    ?headers:(string * string) list ->
    ?body:Bytes.t ->
    meth:string ->
    target:string ->
    unit ->
    resp Lhws_runtime.Promise.t
  (** Pipelined: requests from concurrent fibers are serialized onto
      the wire and responses matched back in wire order.
      @raise Net.Closed once the connection is gone. *)

  val close : t -> unit

  (** {2 Blocking round trip} *)

  val call_sync :
    Conn.t ->
    ?headers:(string * string) list ->
    ?body:Bytes.t ->
    meth:string ->
    target:string ->
    unit ->
    resp
  (** One request, one response, on a caller-owned connection: the
      blocking-baseline shape (the wait occupies the worker).
      @raise Net.Closed / Net.Peer_closed / Net.Protocol_error. *)
end
