(** Accepting sockets onto a pool: one handler task per connection.

    The accept loop runs as an ordinary pool task — a fiber on the
    latency-hiding pools (parking on listen-fd readiness), a blocking
    task on the baselines.  Each accepted connection becomes a
    {!Conn.t} handed to [handler] in its own pool task, so request
    handling interleaves with whatever else the pool is computing: the
    paper's "parallel server obtaining and fulfilling requests". *)

type config = {
  backlog : int;  (** [Unix.listen] queue depth (default 128) *)
  max_conns : int;
      (** backpressure gate: while this many handlers are live the loop
          stops accepting and lets the kernel queue hold arrivals
          (default 1024) *)
  shed_above : int option;
      (** overload high-water mark: at/above this many live handlers,
          arrivals are rejected fast — accepted and closed immediately,
          counted in {!shed} and the pool's [conns_shed] stats field —
          instead of queueing unanswered (default [None]: no shedding) *)
  shed_pred : (unit -> bool) option;
      (** deadline-aware shed signal ORed with [shed_above]: while it
          returns [true] arrivals are rejected fast.  The serving layer
          supplies an age check — e.g. {!Http}'s oldest-pending-request
          gauge against its [max_queue_age] — so admission stops the
          moment queued work is already too old to serve in time
          (default [None]) *)
  idle_timeout : float option;
      (** reap connections with no completed I/O for this long *)
  read_timeout : float option;  (** per-operation deadline handed to each {!Conn.t} *)
  write_timeout : float option;
  reap_interval : float;  (** idle-reaper period, seconds (default 0.05) *)
}

val default_config : config

type t

val serve :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?config:config ->
  ?dispatch:((unit -> unit) -> unit) ->
  Unix.sockaddr ->
  handler:(Conn.t -> unit) ->
  t
(** Binds, listens and starts the accept loop (plus the idle reaper when
    [idle_timeout] is set) as tasks on the pool.  Must be called from
    within [P.run] (or any pool task); the handler's [Net.Closed],
    [Net.Timeout] and [End_of_file] escapes are normal connection
    endings, any other exception also just ends that connection.  The
    connection is closed when the handler returns.

    [dispatch] routes each connection's handler task (default: [P.async]
    on the serving pool).  Pass a topology class's
    {!Lhws_workloads.Topology.dispatcher} to pin connection handling to
    that class's pool — the acceptor and idle reaper always stay on the
    serving pool. *)

val addr : t -> Unix.sockaddr
(** The actual bound address — useful after binding port 0. *)

val live : t -> int
(** Connections currently being handled. *)

val accepted : t -> int
(** Total connections handed to handlers so far (shed arrivals are not
    counted here; see {!shed}). *)

val shed : t -> int
(** Arrivals rejected fast by the [shed_above] overload gate.  Also
    summed into the pool's [conns_shed] stats field. *)

val shutdown : ?grace:float -> t -> unit
(** Graceful stop: stop accepting, wait up to [grace] seconds (default
    5) for live handlers to drain, then force-close the stragglers and
    wait for their handlers to unwind.  Idempotent.  Must be called from
    within a task of the same pool ([P.sleep] paces the waits). *)
