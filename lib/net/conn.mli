(** A buffered connection with per-operation deadlines.

    Reads are buffered (framing layers issue many small reads); writes
    go straight through.  Kernel operations are driven through
    {!Reactor.run_io}, so in fiber mode each one is attempted eagerly
    inline and otherwise completes in the reactor pump.  [read_timeout]
    / [write_timeout] are relative seconds applied per operation: a wait
    that outlives its deadline raises {!Net.Timeout} instead of parking
    the fiber (or blocking the worker) forever. *)

type t

val create :
  Reactor.t -> ?read_timeout:float -> ?write_timeout:float -> Unix.file_descr -> t
(** Wraps the descriptor (setting it non-blocking in fiber mode).  The
    connection takes ownership: close it only through {!close}. *)

val fd : t -> Unix.file_descr

val batched : t -> bool
(** Whether the underlying reactor runs the batched
    submission/completion path (see {!Reactor.is_batched}); {!Rpc} keys
    its frame-coalescing writes off this. *)

val read : t -> bytes -> int -> int -> int
(** Returns 0 at end of file (a reset peer reads as EOF).
    @raise Net.Timeout when [read_timeout] expires first.
    @raise Net.Closed on a connection closed by {!close}. *)

val read_exactly : t -> bytes -> int -> unit
(** Fills the buffer's first [len] bytes. @raise End_of_file at EOF. *)

val write_all : t -> bytes -> unit
(** Writes the whole buffer.
    @raise Net.Closed if the peer is gone or {!close} was called.
    @raise Net.Timeout when [write_timeout] expires first. *)

val writev_all : t -> Bytes.t list -> unit
(** Writes the whole vector, coalescing the buffers into as few kernel
    writes as the socket accepts (one, absent backpressure) via
    {!Lhws_runtime.Io.Iov}.  Same errors as {!write_all}.  This is how
    framing layers send header+payload pairs without a copy per frame.
    An injected short-write storm against one [writev_all] call is
    counted once in {!Fault} stats, however many retry chunks it
    fragments the vector into. *)

val close : t -> unit
(** Idempotent and thread-safe.  Shuts the socket down immediately,
    waking any reader currently blocked or parked on the descriptor; the
    descriptor itself is closed only once in-flight operations drain
    (each read/write pins it), so a racing operation can never land on a
    recycled fd number. *)

val is_closed : t -> bool

val last_active : t -> float
(** [Unix.gettimeofday] timestamp of the last completed read or write;
    the listener's idle reaper compares it against [idle_timeout]. *)
