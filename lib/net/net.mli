(** Exceptions shared across the networking stack. *)

exception Timeout
(** A per-operation deadline expired while the fiber was parked on
    descriptor readiness (or, on a blocking pool, while waiting in
    [select]).  The fiber fails instead of parking forever. *)

exception Closed
(** The connection (or client) was closed underneath the operation. *)

exception Peer_closed
(** The peer hung up in the middle of an exchange (EOF mid-frame, or a
    reset while a response was still owed).  Distinct from
    {!Protocol_error}: the bytes received so far were well-formed, the
    peer just went away — which makes this failure {e retryable}, where
    a malformed stream is not. *)

exception Protocol_error of string
(** The peer sent bytes that do not parse as an RPC frame, or a frame
    exceeding the size limit.  Not retryable: the stream itself is
    broken, a replay would resend the same garbage. *)

exception Remote_error of string
(** The server's handler raised; the exception text travelled back in
    the response frame's error status.  Not retryable by default: the
    request reached the server and failed deterministically. *)

exception Circuit_open
(** A {!Resilience.Breaker} rejected the call without issuing it: the
    endpoint has failed repeatedly and its cooldown has not yet passed.
    Fail-fast signal — callers should shed or redirect, not spin. *)

exception Stalled of string
(** Rebinding of {!Lhws_runtime.Watchdog.Stalled}: the stall watchdog
    declared this fiber's parked I/O intent lost (no registration backing
    it past the grace period, or a registration the kernel no longer
    honours) and failed it loudly instead of letting it hang.  The
    payload describes the stall.  Distinct from {!Timeout}: a timeout is
    the {e expected} expiry of a configured deadline; a stall is the
    runtime detecting its own lost wakeup — a bug signal, not a slow
    peer. *)
