(** Exceptions shared across the networking stack. *)

exception Timeout
(** A per-operation deadline expired while the fiber was parked on
    descriptor readiness (or, on a blocking pool, while waiting in
    [select]).  The fiber fails instead of parking forever. *)

exception Closed
(** The connection (or client) was closed underneath the operation. *)

exception Protocol_error of string
(** The peer sent bytes that do not parse as an RPC frame, or a frame
    exceeding the size limit. *)

exception Remote_error of string
(** The server's handler raised; the exception text travelled back in
    the response frame's error status. *)
