module Pool_intf = Lhws_workloads.Pool_intf

type report = {
  total : int;
  errors : int;
  connect_failures : int;
  wall_s : float;
  throughput_rps : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let default_payload i =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int i);
  b

(* Closed-loop: [conns] pipelined connections, [inflight] generator tasks
   per connection, each issuing [iters] calls back to back — so exactly
   conns * inflight requests are outstanding at any moment.  Call from
   within [P.run]. *)
let run (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
    ?(conns = 4) ?(inflight = 8) ?(iters = 50) ?(payload = default_payload) addr =
  if conns < 1 || inflight < 1 || iters < 1 then
    invalid_arg "Load.run: conns, inflight and iters must be >= 1";
  let lats = Array.init (conns * inflight) (fun _ -> Array.make iters nan) in
  let errors = Atomic.make 0 in
  let connect_failures = Atomic.make 0 in
  (* A refused or reset dial fails that connection's share of the load,
     not the whole run: an overloaded or fault-injected server refusing
     some arrivals is a result worth reporting, not a generator crash. *)
  let clients =
    Array.init conns (fun _ ->
        match Rpc.Client.connect (module P) pool rt addr with
        | cl -> Some cl
        | exception (Unix.Unix_error _ | Net.Closed) ->
            Atomic.incr connect_failures;
            None)
  in
  let t0 = Unix.gettimeofday () in
  let tasks =
    List.concat_map
      (fun ci ->
        List.init inflight (fun j ->
            let slot = lats.((ci * inflight) + j) in
            P.async pool (fun () ->
                match clients.(ci) with
                | None ->
                    (* Never connected: its whole share of the offered
                       load fails. *)
                    ignore (Atomic.fetch_and_add errors iters : int)
                | Some cl ->
                    for k = 0 to iters - 1 do
                      let t = Unix.gettimeofday () in
                      match P.await pool (Rpc.Client.call cl (payload k)) with
                      | (_ : bytes) -> slot.(k) <- (Unix.gettimeofday () -. t) *. 1e6
                      | exception _ -> Atomic.incr errors
                    done)))
      (List.init conns Fun.id)
  in
  List.iter (fun t -> P.await pool t) tasks;
  let wall_s = Unix.gettimeofday () -. t0 in
  Array.iter (Option.iter Rpc.Client.close) clients;
  let ok =
    Array.to_list lats
    |> List.concat_map (fun slot ->
           Array.to_list slot |> List.filter (fun x -> not (Float.is_nan x)))
    |> Array.of_list
  in
  Array.sort compare ok;
  let total = conns * inflight * iters in
  {
    total;
    errors = Atomic.get errors;
    connect_failures = Atomic.get connect_failures;
    wall_s;
    throughput_rps = (if wall_s > 0. then float_of_int (Array.length ok) /. wall_s else 0.);
    p50_us = percentile ok 0.50;
    p99_us = percentile ok 0.99;
    max_us = (if Array.length ok = 0 then 0. else ok.(Array.length ok - 1));
  }
