module Pool_intf = Lhws_workloads.Pool_intf

type report = {
  total : int;
  errors : int;
  connect_failures : int;
  non_2xx : int;
  wall_s : float;
  throughput_rps : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
  mean_us : float;
  max_rounds_behind : int;
  slowest_conn_mean_us : float;
}

type http_req = { meth : string; target : string; req_body : bytes option }

let get target = { meth = "GET"; target; req_body = None }

(* One generator machinery, two protocols: the driver decides what a
   "call" is and whether its answer counts as success (latency sample),
   an application-level failure (non-2xx) or a transport error. *)
type driver = Rpc_driver of (int -> bytes) | Http_driver of (int -> http_req)

type class_spec = {
  cls : string;
  conns : int;
  inflight : int;
  iters : int;
  driver : driver;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let default_payload i =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int i);
  b

let check_arity ~what conns inflight iters =
  if conns < 1 || inflight < 1 || iters < 1 then
    invalid_arg (what ^ ": conns, inflight and iters must be >= 1")

let class_spec ?(conns = 4) ?(inflight = 8) ?(iters = 50)
    ?(payload = default_payload) cls =
  check_arity ~what:"Load.class_spec" conns inflight iters;
  { cls; conns; inflight; iters; driver = Rpc_driver payload }

let http_spec ?(conns = 4) ?(inflight = 8) ?(iters = 50)
    ?(req = fun _ -> get "/") cls =
  check_arity ~what:"Load.http_spec" conns inflight iters;
  { cls; conns; inflight; iters; driver = Http_driver req }

type client = Crpc of Rpc.Client.t | Chttp of Http.Client.t

(* Per-class in-flight accounting, shared with the generator tasks. *)
type class_state = {
  spec : class_spec;
  lats : float array array;
  errors : int Atomic.t;
  connect_failures : int Atomic.t;
  non_2xx : int Atomic.t;
  clients : client option array;
  (* Fairness tallies: per-connection completed-call counters, and a
     one-shot snapshot of their spread taken the moment the first
     generator task finishes its share.  A scheduler that always favours
     the freshest work lets some connections race ahead while others
     crawl — the spread at first-finish, in units of full pipeline
     rounds, is exactly the starvation the Aged_fifo knob bounds. *)
  rounds : int Atomic.t array;
  behind : int Atomic.t;
  snapped : bool Atomic.t;
}

let snapshot_behind st =
  if Atomic.compare_and_set st.snapped false true then begin
    let hi = ref 0 and lo = ref max_int in
    Array.iteri
      (fun i cl ->
        if Option.is_some cl then begin
          let c = Atomic.get st.rounds.(i) in
          if c > !hi then hi := c;
          if c < !lo then lo := c
        end)
      st.clients;
    if !lo <= !hi then Atomic.set st.behind ((!hi - !lo) / st.spec.inflight)
  end

(* Closed-loop: per class, [conns] pipelined connections with [inflight]
   generator tasks each, every task issuing [iters] calls back to back —
   so the offered load is Σ conns·inflight outstanding requests, all
   classes concurrently.  Call from within [P.run]. *)
let run_classes (type p) (module P : Pool_intf.POOL with type t = p) (pool : p)
    rt ~classes addr =
  if classes = [] then invalid_arg "Load.run_classes: no classes";
  let states =
    List.map
      (fun spec ->
        (* A refused or reset dial fails that connection's share of the
           load, not the whole run: an overloaded or fault-injected
           server refusing some arrivals is a result worth reporting,
           not a generator crash. *)
        let connect_failures = Atomic.make 0 in
        let dial () =
          match spec.driver with
          | Rpc_driver _ -> Crpc (Rpc.Client.connect (module P) pool rt addr)
          | Http_driver _ -> Chttp (Http.Client.connect (module P) pool rt addr)
        in
        {
          spec;
          lats =
            Array.init (spec.conns * spec.inflight) (fun _ ->
                Array.make spec.iters nan);
          errors = Atomic.make 0;
          connect_failures;
          non_2xx = Atomic.make 0;
          clients =
            Array.init spec.conns (fun _ ->
                match dial () with
                | cl -> Some cl
                | exception (Unix.Unix_error _ | Net.Closed) ->
                    Atomic.incr connect_failures;
                    None);
          rounds = Array.init spec.conns (fun _ -> Atomic.make 0);
          behind = Atomic.make 0;
          snapped = Atomic.make false;
        })
      classes
  in
  let t0 = Unix.gettimeofday () in
  let tasks =
    List.concat_map
      (fun st ->
        List.concat_map
          (fun ci ->
            List.init st.spec.inflight (fun j ->
                let slot = st.lats.((ci * st.spec.inflight) + j) in
                P.async pool (fun () ->
                    match st.clients.(ci) with
                    | None ->
                        (* Never connected: its whole share of the
                           offered load fails. *)
                        ignore
                          (Atomic.fetch_and_add st.errors st.spec.iters : int)
                    | Some (Crpc cl) ->
                        let payload =
                          match st.spec.driver with
                          | Rpc_driver f -> f
                          | Http_driver _ -> assert false
                        in
                        for k = 0 to st.spec.iters - 1 do
                          let t = Unix.gettimeofday () in
                          (match P.await pool (Rpc.Client.call cl (payload k)) with
                          | (_ : bytes) ->
                              slot.(k) <- (Unix.gettimeofday () -. t) *. 1e6
                          | exception Net.Remote_error _ ->
                              Atomic.incr st.non_2xx
                          | exception _ -> Atomic.incr st.errors);
                          Atomic.incr st.rounds.(ci)
                        done;
                        snapshot_behind st
                    | Some (Chttp cl) ->
                        let req =
                          match st.spec.driver with
                          | Http_driver f -> f
                          | Rpc_driver _ -> assert false
                        in
                        for k = 0 to st.spec.iters - 1 do
                          let r = req k in
                          let t = Unix.gettimeofday () in
                          (match
                             P.await pool
                               (Http.Client.call cl ?body:r.req_body ~meth:r.meth
                                  ~target:r.target ())
                           with
                          | resp ->
                              if resp.Http.Client.status / 100 = 2 then
                                slot.(k) <- (Unix.gettimeofday () -. t) *. 1e6
                              else Atomic.incr st.non_2xx
                          | exception _ -> Atomic.incr st.errors);
                          Atomic.incr st.rounds.(ci)
                        done;
                        snapshot_behind st)))
          (List.init st.spec.conns Fun.id))
      states
  in
  List.iter (fun t -> P.await pool t) tasks;
  let wall_s = Unix.gettimeofday () -. t0 in
  List.map
    (fun st ->
      Array.iter
        (Option.iter (function
          | Crpc cl -> Rpc.Client.close cl
          | Chttp cl -> Http.Client.close cl))
        st.clients;
      let ok =
        Array.to_list st.lats
        |> List.concat_map (fun slot ->
               Array.to_list slot |> List.filter (fun x -> not (Float.is_nan x)))
        |> Array.of_list
      in
      Array.sort compare ok;
      let mean arr =
        if Array.length arr = 0 then 0.
        else Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr)
      in
      (* Per-connection mean: samples of connection [ci] live in lats
         slots [ci*inflight .. (ci+1)*inflight).  The slowest
         connection's mean is the fairness headline's denominator-side
         witness — a starved connection shows up here long before it
         moves the pooled p99. *)
      let slowest_conn_mean =
        let worst = ref 0. in
        for ci = 0 to st.spec.conns - 1 do
          let samples =
            List.init st.spec.inflight (fun j ->
                st.lats.((ci * st.spec.inflight) + j))
            |> List.concat_map (fun slot ->
                   Array.to_list slot |> List.filter (fun x -> not (Float.is_nan x)))
            |> Array.of_list
          in
          let m = mean samples in
          if m > !worst then worst := m
        done;
        !worst
      in
      ( st.spec.cls,
        {
          total = st.spec.conns * st.spec.inflight * st.spec.iters;
          errors = Atomic.get st.errors;
          connect_failures = Atomic.get st.connect_failures;
          non_2xx = Atomic.get st.non_2xx;
          wall_s;
          throughput_rps =
            (if wall_s > 0. then float_of_int (Array.length ok) /. wall_s else 0.);
          p50_us = percentile ok 0.50;
          p99_us = percentile ok 0.99;
          max_us = (if Array.length ok = 0 then 0. else ok.(Array.length ok - 1));
          mean_us = mean ok;
          max_rounds_behind = Atomic.get st.behind;
          slowest_conn_mean_us = slowest_conn_mean;
        } ))
    states

let run (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
    ?(conns = 4) ?(inflight = 8) ?(iters = 50) ?(payload = default_payload) addr =
  check_arity ~what:"Load.run" conns inflight iters;
  match
    run_classes (module P) pool rt
      ~classes:[ class_spec ~conns ~inflight ~iters ~payload "all" ]
      addr
  with
  | [ (_, r) ] -> r
  | _ -> assert false

let run_http (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
    ?(conns = 4) ?(inflight = 8) ?(iters = 50) ?req addr =
  check_arity ~what:"Load.run_http" conns inflight iters;
  match
    run_classes (module P) pool rt
      ~classes:[ http_spec ~conns ~inflight ~iters ?req "all" ]
      addr
  with
  | [ (_, r) ] -> r
  | _ -> assert false
