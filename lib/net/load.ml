module Pool_intf = Lhws_workloads.Pool_intf

type report = {
  total : int;
  errors : int;
  connect_failures : int;
  wall_s : float;
  throughput_rps : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
}

type class_spec = {
  cls : string;
  conns : int;
  inflight : int;
  iters : int;
  payload : int -> bytes;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let default_payload i =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int i);
  b

let class_spec ?(conns = 4) ?(inflight = 8) ?(iters = 50)
    ?(payload = default_payload) cls =
  if conns < 1 || inflight < 1 || iters < 1 then
    invalid_arg "Load.class_spec: conns, inflight and iters must be >= 1";
  { cls; conns; inflight; iters; payload }

(* Per-class in-flight accounting, shared with the generator tasks. *)
type class_state = {
  spec : class_spec;
  lats : float array array;
  errors : int Atomic.t;
  connect_failures : int Atomic.t;
  clients : Rpc.Client.t option array;
}

(* Closed-loop: per class, [conns] pipelined connections with [inflight]
   generator tasks each, every task issuing [iters] calls back to back —
   so the offered load is Σ conns·inflight outstanding requests, all
   classes concurrently.  Call from within [P.run]. *)
let run_classes (type p) (module P : Pool_intf.POOL with type t = p) (pool : p)
    rt ~classes addr =
  if classes = [] then invalid_arg "Load.run_classes: no classes";
  let states =
    List.map
      (fun spec ->
        (* A refused or reset dial fails that connection's share of the
           load, not the whole run: an overloaded or fault-injected
           server refusing some arrivals is a result worth reporting,
           not a generator crash. *)
        let connect_failures = Atomic.make 0 in
        {
          spec;
          lats =
            Array.init (spec.conns * spec.inflight) (fun _ ->
                Array.make spec.iters nan);
          errors = Atomic.make 0;
          connect_failures;
          clients =
            Array.init spec.conns (fun _ ->
                match Rpc.Client.connect (module P) pool rt addr with
                | cl -> Some cl
                | exception (Unix.Unix_error _ | Net.Closed) ->
                    Atomic.incr connect_failures;
                    None);
        })
      classes
  in
  let t0 = Unix.gettimeofday () in
  let tasks =
    List.concat_map
      (fun st ->
        List.concat_map
          (fun ci ->
            List.init st.spec.inflight (fun j ->
                let slot = st.lats.((ci * st.spec.inflight) + j) in
                P.async pool (fun () ->
                    match st.clients.(ci) with
                    | None ->
                        (* Never connected: its whole share of the
                           offered load fails. *)
                        ignore
                          (Atomic.fetch_and_add st.errors st.spec.iters : int)
                    | Some cl ->
                        for k = 0 to st.spec.iters - 1 do
                          let t = Unix.gettimeofday () in
                          match
                            P.await pool (Rpc.Client.call cl (st.spec.payload k))
                          with
                          | (_ : bytes) ->
                              slot.(k) <- (Unix.gettimeofday () -. t) *. 1e6
                          | exception _ -> Atomic.incr st.errors
                        done)))
          (List.init st.spec.conns Fun.id))
      states
  in
  List.iter (fun t -> P.await pool t) tasks;
  let wall_s = Unix.gettimeofday () -. t0 in
  List.map
    (fun st ->
      Array.iter (Option.iter Rpc.Client.close) st.clients;
      let ok =
        Array.to_list st.lats
        |> List.concat_map (fun slot ->
               Array.to_list slot |> List.filter (fun x -> not (Float.is_nan x)))
        |> Array.of_list
      in
      Array.sort compare ok;
      ( st.spec.cls,
        {
          total = st.spec.conns * st.spec.inflight * st.spec.iters;
          errors = Atomic.get st.errors;
          connect_failures = Atomic.get st.connect_failures;
          wall_s;
          throughput_rps =
            (if wall_s > 0. then float_of_int (Array.length ok) /. wall_s else 0.);
          p50_us = percentile ok 0.50;
          p99_us = percentile ok 0.99;
          max_us = (if Array.length ok = 0 then 0. else ok.(Array.length ok - 1));
        } ))
    states

let run (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
    ?(conns = 4) ?(inflight = 8) ?(iters = 50) ?(payload = default_payload) addr =
  if conns < 1 || inflight < 1 || iters < 1 then
    invalid_arg "Load.run: conns, inflight and iters must be >= 1";
  match
    run_classes (module P) pool rt
      ~classes:[ class_spec ~conns ~inflight ~iters ~payload "all" ]
      addr
  with
  | [ (_, r) ] -> r
  | _ -> assert false
