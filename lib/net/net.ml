exception Timeout
exception Closed
exception Protocol_error of string
exception Remote_error of string

let () =
  Printexc.register_printer (function
    | Timeout -> Some "Net.Timeout"
    | Closed -> Some "Net.Closed"
    | Protocol_error msg -> Some (Printf.sprintf "Net.Protocol_error(%s)" msg)
    | Remote_error msg -> Some (Printf.sprintf "Net.Remote_error(%s)" msg)
    | _ -> None)
