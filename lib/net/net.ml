exception Timeout
exception Closed
exception Peer_closed
exception Protocol_error of string
exception Remote_error of string
exception Circuit_open

exception Stalled = Lhws_runtime.Watchdog.Stalled

let () =
  Printexc.register_printer (function
    | Timeout -> Some "Net.Timeout"
    | Closed -> Some "Net.Closed"
    | Peer_closed -> Some "Net.Peer_closed"
    | Protocol_error msg -> Some (Printf.sprintf "Net.Protocol_error(%s)" msg)
    | Remote_error msg -> Some (Printf.sprintf "Net.Remote_error(%s)" msg)
    | Circuit_open -> Some "Net.Circuit_open"
    | _ -> None)
