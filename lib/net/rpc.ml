module Pool_intf = Lhws_workloads.Pool_intf
module Promise = Lhws_runtime.Promise

(* Wire format (all integers big-endian):
     request   4B payload length | 8B request id | payload
     response  4B payload length | 8B request id | 1B status | payload
   status 0 = Ok (payload is the result), 1 = handler raised (payload is
   the exception text, surfaced to the caller as Net.Remote_error). *)

let max_frame = 8 * 1024 * 1024

(* Frame writes must be atomic even though responses (and pipelined
   requests) come from many concurrent tasks.  An OS mutex cannot protect
   the write: the holder can park mid-write (EAGAIN -> reactor wait) and
   its continuation is re-injected as a stealable task, so the fiber may
   resume — and unlock — on a different worker thread, which the
   error-checking [Mutex.unlock] rejects.  Instead the lock is a
   thread-agnostic atomic flag: claimed by compare-and-set, released by a
   plain set (valid from any thread), with the pool's sleep as the yield
   so a spinning worker keeps scheduling other tasks. *)
type wlock = { locked : bool Atomic.t; sleep : unit -> unit }

let make_wlock sleep = { locked = Atomic.make false; sleep }

let with_wlock l f =
  let rec acquire () =
    if not (Atomic.compare_and_set l.locked false true) then begin
      l.sleep ();
      acquire ()
    end
  in
  acquire ();
  Fun.protect ~finally:(fun () -> Atomic.set l.locked false) f

(* --- the combining outbox ---

   On a batched reactor, frame atomicity comes from a combining queue
   instead of serialized whole-frame writes: a writer pushes its frame
   (an iov, no copy) onto a Treiber stack and whichever writer claims
   the lock flushes {e everything} queued as a single [Conn.writev_all]
   — so [k] concurrent responses (or pipelined requests) cost one
   gathering syscall, not [k].  Each frame carries its own outcome cell;
   a writer loops — claim the lock and flush, or sleep — until its cell
   resolves, so no frame is ever abandoned and a flush failure reaches
   exactly the writers whose frames were in that batch. *)

type fstate = Fpending | Fdone | Ffailed of exn

type outbox = {
  q : (Bytes.t list * fstate Atomic.t) list Atomic.t;  (* push order reversed *)
  wl : wlock;
}

let make_outbox sleep = { q = Atomic.make []; wl = make_wlock sleep }

let flush_outbox ob conn =
  match List.rev (Atomic.exchange ob.q []) with
  | [] -> ()
  | frames -> (
      let iov = List.concat_map fst frames in
      match Conn.writev_all conn iov with
      | () -> List.iter (fun (_, st) -> Atomic.set st Fdone) frames
      | exception e -> List.iter (fun (_, st) -> Atomic.set st (Ffailed e)) frames)

let send_combined ob conn iov =
  let st = Atomic.make Fpending in
  let rec push () =
    let cur = Atomic.get ob.q in
    if not (Atomic.compare_and_set ob.q cur ((iov, st) :: cur)) then push ()
  in
  push ();
  let rec resolve () =
    match Atomic.get st with
    | Fdone -> ()
    | Ffailed e -> raise e
    | Fpending ->
        if Atomic.compare_and_set ob.wl.locked false true then
          Fun.protect
            ~finally:(fun () -> Atomic.set ob.wl.locked false)
            (fun () -> flush_outbox ob conn)
        else ob.wl.sleep ();
        resolve ()
  in
  resolve ()

(* One frame write, atomic on the wire.  Batched reactor: through the
   combining outbox.  Legacy/blocking reactor: the pre-batching shape —
   hold the lock for the whole (still vectored, still copy-free) frame
   write — so the NET3 comparison leg measures the old syscall
   behaviour. *)
let write_frame ob conn iov =
  if Conn.batched conn then send_combined ob conn iov
  else with_wlock ob.wl (fun () -> Conn.writev_all conn iov)

let check_len len =
  if len < 0 || len > max_frame then
    raise (Net.Protocol_error (Printf.sprintf "frame length %d out of range" len))

(* Reads [n] header/payload bytes; [None] on EOF at a frame boundary
   (clean hang-up), Peer_closed on EOF mid-frame.  The distinction
   matters to retry policies: a peer that died mid-frame is a transient
   endpoint failure (retryable on a fresh connection), while
   Protocol_error — reserved for bytes that do not parse — means a
   replay would resend the same garbage. *)
let read_chunk conn n ~at_boundary =
  let b = Bytes.create n in
  let rec go pos =
    if pos < n then
      match Conn.read conn b pos (n - pos) with
      | 0 -> if pos = 0 && at_boundary then None else raise Net.Peer_closed
      | k -> go (pos + k)
    else Some b
  in
  go 0

let read_request conn =
  match read_chunk conn 12 ~at_boundary:true with
  | None -> None
  | Some hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      check_len len;
      let id = Int64.to_int (Bytes.get_int64_be hdr 4) in
      let payload =
        match read_chunk conn len ~at_boundary:false with
        | Some p -> p
        | None -> assert false
      in
      Some (id, payload)

let read_response conn =
  match read_chunk conn 13 ~at_boundary:true with
  | None -> None
  | Some hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      check_len len;
      let id = Int64.to_int (Bytes.get_int64_be hdr 4) in
      let status = Bytes.get_uint8 hdr 12 in
      let payload =
        match read_chunk conn len ~at_boundary:false with
        | Some p -> p
        | None -> assert false
      in
      Some (id, status, payload)

(* Frames are header+payload iovs, not copies: the vectored write path
   sends both in one syscall, so there is no reason to blit the payload
   into a fresh buffer first. *)
let request_frame ~id payload =
  let len = Bytes.length payload in
  if len > max_frame then invalid_arg "Rpc: request payload exceeds max_frame";
  let hdr = Bytes.create 12 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Bytes.set_int64_be hdr 4 (Int64.of_int id);
  if len = 0 then [ hdr ] else [ hdr; payload ]

let response_frame ~id ~status payload =
  let len = Bytes.length payload in
  if len > max_frame then invalid_arg "Rpc: response payload exceeds max_frame";
  let hdr = Bytes.create 13 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Bytes.set_int64_be hdr 4 (Int64.of_int id);
  Bytes.set_uint8 hdr 12 status;
  if len = 0 then [ hdr ] else [ hdr; payload ]

(* --- server --- *)

(* Per-connection cap on dispatched-but-unanswered requests.  [max_frame]
   bounds each frame, but a client that pipelines without reading
   responses could otherwise queue unbounded tasks and response buffers;
   past the cap we stop decoding (and thus reading) further frames, so
   backpressure reaches the peer through TCP. *)
let max_pipeline = 256

let serve_handler (type p) (module P : Pool_intf.POOL with type t = p) (pool : p)
    ?dispatch ~handler conn =
  (* [dispatch] routes each decoded request's task; the default keeps it
     on the serving pool.  A topology passes its latency class's
     dispatcher so handlers are pool-pinned there while the decode loop
     (this function) stays wherever the listener put the connection.
     Everything the dispatched task touches is cross-pool safe: the
     counters are atomics, and the write lock's sleep suspends whatever
     fiber calls it (the handle only names the timer wheel). *)
  let dispatch =
    match dispatch with
    | Some d -> d
    | None -> fun f -> ignore (P.async pool f : unit Lhws_runtime.Promise.t)
  in
  let ob = make_outbox (fun () -> P.sleep pool 0.0002) in
  let outstanding = Atomic.make 0 in
  let rec loop () =
    while Atomic.get outstanding >= max_pipeline do
      P.sleep pool 0.0002
    done;
    match read_request conn with
    | None -> ()
    | Some (id, payload) ->
        Atomic.incr outstanding;
        (* Each decoded request becomes a pool task: responses go out in
           completion order, ids let the client demultiplex — this is
           where packet arrival order feeds the scheduler. *)
        dispatch (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.decr outstanding)
              (fun () ->
                let status, resp =
                  match handler payload with
                  | v -> (0, v)
                  | exception e -> (1, Bytes.of_string (Printexc.to_string e))
                in
                (* A response that cannot be written is not just this
                   request's problem: the client is now owed a frame
                   it will never get, so the stream contract is
                   broken.  Close the connection — the client sees
                   EOF and can retry on a fresh one — rather than
                   silently dropping the frame on a live socket. *)
                try write_frame ob conn (response_frame ~id ~status resp)
                with Net.Closed | Net.Timeout -> Conn.close conn));
        loop ()
  in
  (try loop ()
   with
   | Net.Closed | Net.Timeout | Net.Peer_closed | Net.Protocol_error _ | End_of_file
   -> ());
  (* The connection may be closed the moment we return (the listener owns
     it): let in-flight responses finish first. *)
  while Atomic.get outstanding > 0 do
    P.sleep pool 0.0002
  done

let serve (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt ?config
    ?dispatch addr ~handler =
  Listener.serve (module P) pool rt ?config addr
    ~handler:(fun conn -> serve_handler (module P) pool ?dispatch ~handler conn)

(* --- pipelined client --- *)

module Client = struct
  type t = {
    conn : Conn.t;
    ob : outbox;
    pending_mu : Mutex.t;
    pending : (int, Bytes.t Promise.t) Hashtbl.t;
    next_id : int Atomic.t;
    closed : bool Atomic.t;
    demux_done : bool Atomic.t;
  }

  let take_pending c id =
    Mutex.lock c.pending_mu;
    let p = Hashtbl.find_opt c.pending id in
    Hashtbl.remove c.pending id;
    Mutex.unlock c.pending_mu;
    p

  let fail_all c e =
    Mutex.lock c.pending_mu;
    let ps = Hashtbl.fold (fun _ p acc -> p :: acc) c.pending [] in
    Hashtbl.reset c.pending;
    Mutex.unlock c.pending_mu;
    List.iter (fun p -> try Promise.fulfill p (Error e) with Invalid_argument _ -> ()) ps

  (* The client is dead: mark it closed {e before} draining, so a racing
     [call] that inserts its promise after the drain observes [closed] on
     its re-check and fails itself — otherwise nothing would ever resolve
     that promise and the caller's await parks forever.  The connection
     itself must be closed here too: a later [close] call is a no-op
     (its closed-CAS loses to ours), so skipping it would leak the fd —
     and the peer's handler, which never sees EOF, stays live until it
     saturates the listener's [max_conns] gate. *)
  let fail_conn c e =
    Atomic.set c.closed true;
    Conn.close c.conn;
    fail_all c e

  (* Reads responses until the connection dies, resolving each pending
     call.  Runs as its own pool task: a fiber on the latency-hiding
     pool, a dedicated thread on the thread pool.  NOT safe on the
     helping-await WS pool — helping would run this non-terminating loop
     inside a caller's await and bury its continuation; blocking pools
     should use [call_sync] over dedicated connections instead. *)
  let demux c =
    let rec loop () =
      match read_response c.conn with
      | None -> fail_conn c Net.Closed
      | Some (id, status, payload) ->
          (match take_pending c id with
          | None -> ()  (* response to a call we already failed *)
          | Some p ->
              let r =
                if status = 0 then Ok payload
                else Error (Net.Remote_error (Bytes.to_string payload))
              in
              (try Promise.fulfill p r with Invalid_argument _ -> ()));
          loop ()
    in
    try loop () with
    | Net.Closed | Net.Timeout | End_of_file -> fail_conn c Net.Closed
    (* EOF mid-frame: the server died with responses owed.  Pending
       calls fail with Peer_closed so retry policies know the failure
       is endpoint-transient, not protocol-fatal. *)
    | e -> fail_conn c e

  let connect (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
      ?read_timeout ?write_timeout addr =
    let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let conn = Conn.create rt ?read_timeout ?write_timeout fd in
    let c =
      {
        conn;
        ob = make_outbox (fun () -> P.sleep pool 0.0002);
        pending_mu = Mutex.create ();
        pending = Hashtbl.create 32;
        next_id = Atomic.make 1;
        closed = Atomic.make false;
        demux_done = Atomic.make false;
      }
    in
    ignore
      (P.async pool (fun () ->
           Fun.protect
             ~finally:(fun () -> Atomic.set c.demux_done true)
             (fun () -> demux c)));
    c

  let call c payload =
    if Atomic.get c.closed then raise Net.Closed;
    let id = Atomic.fetch_and_add c.next_id 1 in
    let p = Promise.create () in
    Mutex.lock c.pending_mu;
    Hashtbl.replace c.pending id p;
    Mutex.unlock c.pending_mu;
    (* Re-check after publishing: if demux failed between the first check
       and our insert, its drain may already have swept [pending] and
       would never see [p].  Any close after this point finds [p] there. *)
    if Atomic.get c.closed then begin
      ignore (take_pending c id : _ option);
      raise Net.Closed
    end;
    (try write_frame c.ob c.conn (request_frame ~id payload)
     with e ->
       ignore (take_pending c id : _ option);
       raise e);
    p

  (* [close] waits for the demux task to unwind, because that task holds
     an in-flight-operation reference on the connection while parked in a
     read: its woken continuation is just a queued pool task, and one
     still queued when the pool shuts down is dropped — the reference
     would never release and the descriptor would outlive the client.
     Closing the conn first guarantees the demux's next read fails, so
     the wait is bounded.  Never call [close] from the demux path itself
     ([fail_conn] is the internal teardown); it would self-deadlock. *)
  let close c =
    if Atomic.compare_and_set c.closed false true then begin
      Conn.close c.conn;  (* wakes the demux task, which fails pending *)
      fail_all c Net.Closed
    end;
    while not (Atomic.get c.demux_done) do
      c.ob.wl.sleep ()
    done
end

(* --- synchronous round-trip, for blocking pools --- *)

let call_sync conn payload =
  Conn.writev_all conn (request_frame ~id:0 payload);
  match read_response conn with
  | None -> raise Net.Closed
  | Some (_, 0, resp) -> resp
  | Some (_, _, err) -> raise (Net.Remote_error (Bytes.to_string err))
