(** Closed-loop multi-connection load generator.

    [conns] pipelined connections × [inflight] generator tasks per
    connection, each issuing [iters] requests back to back: the offered
    load is fixed at [conns * inflight] outstanding requests, and the
    report carries wall-clock throughput plus a latency histogram
    summary.  Used by both the tests and [bench/scenarios_net.ml]. *)

type report = {
  total : int;  (** requests offered ([conns * inflight * iters]) *)
  errors : int;
      (** calls that failed (timeout, closed, remote error, mid-run
          reset) — includes the full share of connections that never
          connected *)
  connect_failures : int;
      (** connections whose dial was refused or reset; their calls are
          counted in [errors], and the run carries on with the rest *)
  wall_s : float;
  throughput_rps : float;  (** successful requests per second *)
  p50_us : float;  (** median request latency, microseconds *)
  p99_us : float;
  max_us : float;
}

val run :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?conns:int ->
  ?inflight:int ->
  ?iters:int ->
  ?payload:(int -> bytes) ->
  Unix.sockaddr ->
  report
(** Runs the load against an {!Rpc.serve} endpoint.  Must be called from
    within [P.run], on a pool where {!Rpc.Client} is safe (latency-hiding
    or thread pool; defaults: 4 conns, 8 in-flight, 50 iters, 8-byte
    payloads). *)
