(** Closed-loop multi-connection load generator.

    [conns] pipelined connections × [inflight] generator tasks per
    connection, each issuing [iters] requests back to back: the offered
    load is fixed at [conns * inflight] outstanding requests, and the
    report carries wall-clock throughput plus a latency histogram
    summary.  Used by both the tests and [bench/scenarios_net.ml]. *)

type report = {
  total : int;  (** requests offered ([conns * inflight * iters]) *)
  errors : int;
      (** calls that failed (timeout, closed, remote error, mid-run
          reset) — includes the full share of connections that never
          connected *)
  connect_failures : int;
      (** connections whose dial was refused or reset; their calls are
          counted in [errors], and the run carries on with the rest *)
  wall_s : float;
  throughput_rps : float;  (** successful requests per second *)
  p50_us : float;  (** median request latency, microseconds *)
  p99_us : float;
  max_us : float;
}

val run :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?conns:int ->
  ?inflight:int ->
  ?iters:int ->
  ?payload:(int -> bytes) ->
  Unix.sockaddr ->
  report
(** Runs the load against an {!Rpc.serve} endpoint.  Must be called from
    within [P.run], on a pool where {!Rpc.Client} is safe (latency-hiding
    or thread pool; defaults: 4 conns, 8 in-flight, 50 iters, 8-byte
    payloads). *)

(** {1 Per-class load}

    A bimodal (or n-modal) workload offers several request classes at
    once — say 1 ms RPCs next to long compute calls — and what matters
    is each class's own latency tail, which a single merged histogram
    hides.  [run_classes] drives every class concurrently against one
    endpoint and reports p50/p99 {e per class}. *)

type class_spec

val class_spec :
  ?conns:int ->
  ?inflight:int ->
  ?iters:int ->
  ?payload:(int -> bytes) ->
  string ->
  class_spec
(** One request class: its name plus its own offered load (same
    defaults as {!run}).  [payload] is how the server tells classes
    apart — encode the class tag in it and route in the handler. *)

val run_classes :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  classes:class_spec list ->
  Unix.sockaddr ->
  (string * report) list
(** Runs every class's closed-loop load concurrently (each class gets
    its own connections), returning a report per class in input order.
    [wall_s] is the whole run's wall clock — classes finish at
    different times but are measured against the shared window.  Same
    calling restrictions as {!run}.
    @raise Invalid_argument on an empty class list. *)
