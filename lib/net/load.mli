(** Closed-loop multi-connection load generator.

    [conns] pipelined connections × [inflight] generator tasks per
    connection, each issuing [iters] requests back to back: the offered
    load is fixed at [conns * inflight] outstanding requests, and the
    report carries wall-clock throughput plus a latency histogram
    summary.  Used by both the tests and [bench/scenarios_net.ml].

    Two drivers share the machinery: {!Rpc.Client} calls against an
    {!Rpc.serve} endpoint, and {!Http.Client} requests against an
    {!Http.serve} endpoint (keep-alive connections, pipelined) — the
    c10k serving legs in [bench/scenarios_http.ml] run the latter. *)

type report = {
  total : int;  (** requests offered ([conns * inflight * iters]) *)
  errors : int;
      (** calls whose transport failed (timeout, closed, mid-run
          reset) — includes the full share of connections that never
          connected *)
  connect_failures : int;
      (** connections whose dial was refused or reset; their calls are
          counted in [errors], and the run carries on with the rest *)
  non_2xx : int;
      (** requests the server answered, but not with success: HTTP
          statuses outside 2xx (503 shed, 500 handler failure, …), or
          [Net.Remote_error] on the RPC driver.  Disjoint from
          [errors]; excluded from [throughput_rps] and the latency
          summary. *)
  wall_s : float;
  throughput_rps : float;  (** successful requests per second *)
  p50_us : float;  (** median request latency, microseconds *)
  p99_us : float;
  max_us : float;
  mean_us : float;  (** mean successful-request latency, microseconds *)
  max_rounds_behind : int;
      (** fairness tally: when the first generator task finished its
          share, how many full pipeline rounds ([inflight] calls) the
          most-starved connection lagged behind the farthest-ahead one.
          Near 0 under an age-fair scheduler; grows with [conns] when
          the freshest work always wins ([Newest_first] under
          saturation). *)
  slowest_conn_mean_us : float;
      (** the worst single connection's mean latency — a starved
          connection surfaces here long before it moves the pooled
          p99 *)
}

val run :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?conns:int ->
  ?inflight:int ->
  ?iters:int ->
  ?payload:(int -> bytes) ->
  Unix.sockaddr ->
  report
(** Runs the load against an {!Rpc.serve} endpoint.  Must be called from
    within [P.run], on a pool where {!Rpc.Client} is safe (latency-hiding
    or thread pool; defaults: 4 conns, 8 in-flight, 50 iters, 8-byte
    payloads). *)

(** {1 Per-class load}

    A bimodal (or n-modal) workload offers several request classes at
    once — say 1 ms RPCs next to long compute calls — and what matters
    is each class's own latency tail, which a single merged histogram
    hides.  [run_classes] drives every class concurrently against one
    endpoint and reports p50/p99 {e per class}. *)

type class_spec

val class_spec :
  ?conns:int ->
  ?inflight:int ->
  ?iters:int ->
  ?payload:(int -> bytes) ->
  string ->
  class_spec
(** One RPC request class: its name plus its own offered load (same
    defaults as {!run}).  [payload] is how the server tells classes
    apart — encode the class tag in it and route in the handler. *)

type http_req = { meth : string; target : string; req_body : bytes option }

val get : string -> http_req
(** [get target] — the GET request most serving legs issue. *)

val http_spec :
  ?conns:int ->
  ?inflight:int ->
  ?iters:int ->
  ?req:(int -> http_req) ->
  string ->
  class_spec
(** One HTTP request class (default request: [GET /]).  Classes tell
    themselves apart by [target], which is also how a routed server
    pins them to different micropools. *)

val run_classes :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  classes:class_spec list ->
  Unix.sockaddr ->
  (string * report) list
(** Runs every class's closed-loop load concurrently (each class gets
    its own connections), returning a report per class in input order.
    [wall_s] is the whole run's wall clock — classes finish at
    different times but are measured against the shared window.  Same
    calling restrictions as {!run}; HTTP and RPC classes must not be
    mixed against one endpoint (the server speaks one protocol).
    @raise Invalid_argument on an empty class list. *)

val run_http :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?conns:int ->
  ?inflight:int ->
  ?iters:int ->
  ?req:(int -> http_req) ->
  Unix.sockaddr ->
  report
(** {!run}'s shape for an {!Http.serve} endpoint. *)
