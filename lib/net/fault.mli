(** Deterministic fault injection for the socket stack.

    A fault plane is attached to a {!Reactor.t}; {!Conn} consults it
    before every kernel read/write and {!Listener} before every accept.
    Each consultation draws one decision from a seeded counter-based
    RNG stream: decision [i] at a given site is a pure function of
    [(seed, site, i)], so a chaos run's fault schedule is replayable
    from its seed alone — rerunning with the same seed produces the
    identical sequence of verdicts at every site, regardless of how the
    OS schedules threads in between.  (Which {e operation} receives
    decision [i] still depends on thread interleaving; the schedule of
    injected faults itself does not.  This is the same replay contract
    as the fuzzer's seed.)

    Injected faults are indistinguishable from real ones downstream:
    an injected [ECONNRESET] raises the genuine [Unix.Unix_error] and
    flows through the exact error paths a kernel-reported reset would,
    so surviving the storm means surviving the real thing. *)

(** {1 Configuration}

    All probabilities are per-decision in [0, 1]. *)

type config = {
  seed : int;  (** replay key; logged by the chaos tests on failure *)
  p_error : float;
      (** hard failure: reads raise [ECONNRESET], writes raise [EPIPE] *)
  p_eagain : float;
      (** spurious [EAGAIN] — the operation retries through the
          reactor's readiness wait (fiber mode parks, blocking mode
          selects), modelling wake-ups with nothing to do *)
  p_short : float;
      (** short read/write: the kernel op is clamped to 1 byte, so
          framing code must tolerate arbitrary fragmentation *)
  p_delay : float;  (** added latency before the operation *)
  delay_s : float;  (** injected delays are uniform in [0, delay_s] *)
  p_accept_fail : float;
      (** the accept attempt fails with [ECONNABORTED] (the pending
          connection stays queued; the listener must retry) *)
  p_blackout : float;
      (** the descriptor enters a blackout window: every operation on
          it is delayed until the window passes *)
  blackout_s : float;  (** blackout window length, seconds *)
}

val disabled : config
(** All probabilities zero — the clean path, for overhead measurement. *)

val storm : ?seed:int -> rate:float -> unit -> config
(** Every fault kind at probability [rate] (delays up to 2 ms,
    blackouts of 10 ms).  [~rate:0.01] is the canonical "1% chaos". *)

(** {1 The plane} *)

type t

val create : config -> t
val seed : t -> int
val config : t -> config

(** {1 Decisions}

    All entry points accept [t option] and return {!Pass} on [None],
    so fault-free call sites cost one branch. *)

type verdict =
  | Pass
  | Delay of float  (** sleep this long (without blocking a worker in
                        fiber mode), then perform the operation *)
  | Short of int  (** clamp the kernel op to this many bytes *)
  | Fail of Unix.error  (** raise [Unix.Unix_error] instead of the op *)

val on_read : t option -> Unix.file_descr -> verdict

val on_write : ?count_short:bool -> t option -> Unix.file_descr -> verdict
(** [count_short:false] draws the decision as usual but does not count a
    [Short] verdict in {!injected}[.shorts].  {!Conn} passes it on every
    retry chunk after the first short of a logical write, so a storm
    that fragments one buffer into hundreds of 1-byte writes reads as
    one injected short, keeping chaos accounting interpretable.  The
    decision stream is unaffected — replays stay seed-deterministic. *)

val on_accept : t option -> verdict

val forget_fd : t option -> Unix.file_descr -> unit
(** Drop any blackout state for a descriptor about to be closed, so a
    reused fd number does not inherit its window. *)

(** {1 Introspection} *)

type injected = {
  errors : int;
  eagains : int;
  shorts : int;
  delays : int;
  accept_fails : int;
  blackouts : int;  (** windows opened (not operations delayed by one) *)
}

val injected : t -> injected
(** Totals of what was actually injected so far (thread-safe reads of
    monotone counters). *)

val total : injected -> int

val decisions : t -> int
(** Decisions drawn so far across all sites. *)
