(** Figure 11 over real sockets: map-reduce whose map inputs are fetched
    from a loopback data server with a server-side delay knob δ.

    The client pool gets a small fixed set of connections.  On a
    latency-hiding pool every fetch suspends its fiber and the requests
    pipeline — all n δ-waits overlap.  On a blocking pool a fetch
    occupies one connection (and one worker) for its whole round trip,
    so the δs serialise over [conns] connections.  The wall-clock ratio
    between the two is the paper's headline comparison, now induced by
    genuine descriptor latency instead of timer sleeps. *)

val value_of : int -> int
(** The deterministic key→value map the data server implements. *)

val expected : n:int -> fib_n:int -> int
(** The checksum {!run} must return: Σᵢ (value_of i + fib fib_n). *)

(** {1 Data server} *)

type server

val start_data_server : ?delta:float -> unit -> server
(** Spawns a threaded-blocking RPC data server in its own domain (so its
    handler threads don't contend on the caller's runtime lock), bound
    to an ephemeral loopback port.  Each request sleeps [delta] seconds
    (default 0) before answering — the δ knob. *)

val stop_data_server : server -> unit

val with_data_server : ?delta:float -> (Unix.sockaddr -> 'a) -> 'a

val addr : server -> Unix.sockaddr

(** {1 Client workload} *)

val run :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  addr:Unix.sockaddr ->
  n:int ->
  ?conns:int ->
  ?fib_n:int ->
  ?retry:Resilience.Retry.policy ->
  ?breaker:Resilience.Breaker.t ->
  unit ->
  int
(** Fetches n values over [conns] connections (default 2), adds
    [fib fib_n] of local work per element (default 10), reduces with
    [+].  Call from within [P.run]; fiber pools use pipelined clients,
    blocking pools synchronous round-trips behind per-connection
    mutexes.  Returns the checksum (= {!expected}).

    With [retry], every fetch goes through {!Resilience}: fiber pools
    swap the raw pipelined clients for reconnecting
    {!Resilience.Client}s, blocking pools their raw connections for
    {!Resilience.Sync_client}s — so the reduction survives injected
    resets and mid-frame hangups.  [breaker] (shared across the
    connections — it judges the endpoint, not a socket) is only
    consulted when [retry] is given. *)

val run_class :
  Lhws_workloads.Topology.t ->
  class_:Lhws_workloads.Topology.class_ ->
  Reactor.t ->
  addr:Unix.sockaddr ->
  n:int ->
  ?conns:int ->
  ?fib_n:int ->
  ?retry:Resilience.Retry.policy ->
  ?breaker:Resilience.Breaker.t ->
  unit ->
  int
(** {!run} as a task of the topology class's own pool — the shape a
    batch reduction takes when it shares a process with a latency class:
    pinned to [Batch], it starts on that pool, never on the latency
    pool's workers.  Call from outside the topology's pools; the caller
    blocks until the reduction finishes (it rides
    {!Lhws_workloads.Topology.run}). *)
