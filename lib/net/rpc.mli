(** Length-prefixed request/response RPC with pipelining.

    Wire format (big-endian): a request frame is
    [4B payload length | 8B request id | payload]; a response frame adds
    a status byte after the id (0 = ok, 1 = the handler raised, payload
    carries the exception text).  Many requests may be in flight per
    connection; ids pair responses with calls, so responses travel in
    {e completion} order — on the server, every decoded request is
    dispatched as its own pool task, which is exactly how real packet
    arrival order feeds the scheduler's resume path. *)

val max_frame : int
(** Largest accepted payload (8 MiB); bigger frames fail with
    [Net.Protocol_error]. *)

(** {1 Server} *)

val serve_handler :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  ?dispatch:((unit -> unit) -> unit) ->
  handler:(bytes -> bytes) ->
  Conn.t ->
  unit
(** Connection loop for a {!Listener} handler: decode frames, dispatch
    each as a pool task, serialise response writes.  At most 256 requests
    may be dispatched-but-unanswered per connection — past that the loop
    stops reading frames until responses drain, so a client pipelining
    without reading responses is throttled through TCP instead of queueing
    unbounded tasks.  Returns when the peer hangs up (after in-flight
    responses drain).

    [dispatch] routes each decoded request's task (default: [P.async] on
    the serving pool).  Pass a topology class's
    {!Lhws_workloads.Topology.dispatcher} to pin RPC handlers to that
    class's pool while the decode loop stays put. *)

val serve :
  (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
  'p ->
  Reactor.t ->
  ?config:Listener.config ->
  ?dispatch:((unit -> unit) -> unit) ->
  Unix.sockaddr ->
  handler:(bytes -> bytes) ->
  Listener.t
(** [Listener.serve] with {!serve_handler} as the connection handler;
    [dispatch] reaches the per-request tasks (the connection loops stay
    on the serving pool). *)

(** {1 Pipelined client}

    Safe on pools whose [async] gives the demultiplexer its own
    execution context: fibers (latency-hiding pool) or dedicated threads
    (thread pool).  {b Not} for the helping-await WS pool — helping
    would run the non-terminating demux loop inside a caller's [await]
    and bury its continuation; use {!call_sync} there. *)

module Client : sig
  type t

  val connect :
    (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
    'p ->
    Reactor.t ->
    ?read_timeout:float ->
    ?write_timeout:float ->
    Unix.sockaddr ->
    t
  (** Connects and spawns the response demultiplexer as a pool task. *)

  val call : t -> bytes -> bytes Lhws_runtime.Promise.t
  (** Sends one request; the promise resolves when its response arrives
      (out of order with other calls).  Await it with the pool's
      [await].  Fails with [Net.Remote_error] if the server handler
      raised, [Net.Closed] if the connection dies cleanly first, and
      [Net.Peer_closed] if the server hung up mid-frame with responses
      still owed (transient endpoint failure — retryable on a fresh
      connection, which {!Resilience.Client} automates). *)

  val close : t -> unit
  (** Closes the connection; pending calls fail with [Net.Closed]. *)
end

val call_sync : Conn.t -> bytes -> bytes
(** One synchronous round-trip on a raw connection — the blocking
    baseline's client path (the caller owns any connection sharing).
    @raise Net.Remote_error if the server handler raised.
    @raise Net.Closed if the peer hangs up at a frame boundary.
    @raise Net.Peer_closed if it hangs up mid-frame. *)
