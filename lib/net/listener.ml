module Pool_intf = Lhws_workloads.Pool_intf

type config = {
  backlog : int;
  max_conns : int;  (* backpressure: stop accepting while [live] is at the gate *)
  shed_above : int option;
      (* overload high-water mark: at/above this many live handlers,
         reject-fast (accept then close immediately) instead of letting
         arrivals queue — see [shed] and the [conns_shed] stats field *)
  shed_pred : (unit -> bool) option;
      (* extra deadline-aware shed signal, ORed with [shed_above]: the
         serving layer reports "my oldest pending request is too old" and
         the acceptor sheds arrivals while the condition holds *)
  idle_timeout : float option;
  read_timeout : float option;
  write_timeout : float option;
  reap_interval : float;
}

let default_config =
  {
    backlog = 128;
    max_conns = 1024;
    shed_above = None;
    shed_pred = None;
    idle_timeout = None;
    read_timeout = None;
    write_timeout = None;
    reap_interval = 0.05;
  }

type state = {
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  cfg : config;
  rt : Reactor.t;
  stop : bool Atomic.t;
  live : int Atomic.t;
  accepted : int Atomic.t;
  shed : int Atomic.t;
  conns_mu : Mutex.t;
  conns : (int, Conn.t) Hashtbl.t;
  next_id : int Atomic.t;
  acceptor_done : bool Atomic.t;
  reaper_done : bool Atomic.t;
}

type t = L : (module Pool_intf.POOL with type t = 'p) * 'p * state -> t

let conns_snapshot s =
  Mutex.lock s.conns_mu;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) s.conns [] in
  Mutex.unlock s.conns_mu;
  cs

let add_conn s id c =
  Mutex.lock s.conns_mu;
  Hashtbl.replace s.conns id c;
  Mutex.unlock s.conns_mu

let remove_conn s id =
  Mutex.lock s.conns_mu;
  Hashtbl.remove s.conns id;
  Mutex.unlock s.conns_mu

(* Accept one connection, or return None once [stop] is observed.  The
   accept is driven through {!Reactor.run_io}: in fiber mode it is tried
   inline (most accepts under load find a queued connection and never
   touch the reactor) and otherwise submitted as an intent the pump
   completes — the accepted descriptor comes back through the
   completion; in blocking mode [accept] occupies the worker and
   shutdown wakes it with a self-connection. *)
let rec accept_one s =
  if Atomic.get s.stop then None
  else
    match
      (* The fault plane can fail the attempt (the pending connection
         stays in the kernel queue; we retry) or delay it. *)
      match Fault.on_accept (Reactor.fault s.rt) with
      | Fault.Fail e -> raise (Unix.Unix_error (e, "accept", "injected"))
      | Fault.Delay d ->
          Reactor.sleep s.rt d;
          Reactor.run_io s.rt `Readable s.listen_fd ~exec:(fun () ->
              Unix.accept ~cloexec:true s.listen_fd)
      | Fault.Pass | Fault.Short _ ->
          Reactor.run_io s.rt `Readable s.listen_fd ~exec:(fun () ->
              Unix.accept ~cloexec:true s.listen_fd)
    with
    | fd, _ ->
        if Atomic.get s.stop then begin
          (* Likely the shutdown wake-up connection; drop it. *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          None
        end
        else Some fd
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> accept_one s
    | exception Unix.Unix_error _ when Atomic.get s.stop -> None

let serve (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
    ?(config = default_config) ?dispatch addr ~handler =
  (* [dispatch] routes each connection's handler task; the default keeps
     it on the serving pool.  A topology passes its latency class's
     dispatcher here so batch work sharing the process never queues
     ahead of connection handling.  The acceptor and reaper always stay
     on the serving pool — they are this listener's control plane. *)
  let dispatch =
    match dispatch with
    | Some d -> d
    | None -> fun f -> ignore (P.async pool f : unit Lhws_runtime.Promise.t)
  in
  let listen_fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd config.backlog;
     if Reactor.is_fibers rt then Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let s =
    {
      listen_fd;
      bound = Unix.getsockname listen_fd;
      cfg = config;
      rt;
      stop = Atomic.make false;
      live = Atomic.make 0;
      accepted = Atomic.make 0;
      shed = Atomic.make 0;
      conns_mu = Mutex.create ();
      conns = Hashtbl.create 64;
      next_id = Atomic.make 0;
      acceptor_done = Atomic.make false;
      reaper_done = Atomic.make (config.idle_timeout = None);
    }
  in
  let spawn_handler fd =
    let c = Conn.create rt ?read_timeout:config.read_timeout ?write_timeout:config.write_timeout fd in
    let id = Atomic.fetch_and_add s.next_id 1 in
    Atomic.incr s.live;
    Atomic.incr s.accepted;
    add_conn s id c;
    dispatch (fun () ->
        Fun.protect
          ~finally:(fun () ->
            remove_conn s id;
            Conn.close c;
            Atomic.decr s.live)
          (fun () ->
            try handler c
            with Net.Closed | Net.Timeout | Net.Peer_closed | End_of_file -> ()))
  in
  (* Overload shedding: at or above the high-water mark, keep accepting
     but close each arrival immediately — the client gets a prompt EOF
     (and can back off or go elsewhere) instead of sitting unanswered in
     a queue that only grows.  Without a mark, the [max_conns] gate
     holds arrivals in the kernel backlog as before. *)
  let shed_now () =
    (match config.shed_above with
    | Some hw -> Atomic.get s.live >= hw
    | None -> false)
    || (match config.shed_pred with Some pred -> pred () | None -> false)
  in
  let rec accept_loop () =
    if Atomic.get s.stop then ()
    else if (not (shed_now ())) && Atomic.get s.live >= config.max_conns then begin
      P.sleep pool 0.0005;
      accept_loop ()
    end
    else
      match accept_one s with
      | None -> ()
      | Some fd ->
          (* Re-check at the moment of decision: [live] may have moved
             while the acceptor was parked. *)
          if shed_now () then begin
            Atomic.incr s.shed;
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ())
          end
          else spawn_handler fd;
          accept_loop ()
  in
  P.register_shed_counter pool (fun () -> Atomic.get s.shed);
  ignore
    (P.async pool (fun () ->
         Fun.protect
           ~finally:(fun () -> Atomic.set s.acceptor_done true)
           accept_loop));
  (match config.idle_timeout with
  | None -> ()
  | Some idle ->
      let rec reap_loop () =
        if Atomic.get s.stop then ()
        else begin
          P.sleep pool config.reap_interval;
          let now = Unix.gettimeofday () in
          List.iter
            (fun c -> if now -. Conn.last_active c > idle then Conn.close c)
            (conns_snapshot s);
          reap_loop ()
        end
      in
      ignore
        (P.async pool (fun () ->
             Fun.protect ~finally:(fun () -> Atomic.set s.reaper_done true) reap_loop)));
  L ((module P), pool, s)

let addr (L (_, _, s)) = s.bound
let live (L (_, _, s)) = Atomic.get s.live
let accepted (L (_, _, s)) = Atomic.get s.accepted
let shed (L (_, _, s)) = Atomic.get s.shed

(* Nudge a parked or blocked acceptor: it cannot be interrupted, but a
   connection to our own listen address makes [accept] return, after
   which it observes [stop] and exits. *)
let wake_acceptor s =
  match Unix.socket ~cloexec:true (Unix.domain_of_sockaddr s.bound) Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.connect fd s.bound with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let shutdown ?(grace = 5.) (L ((module P), pool, s)) =
  if Atomic.compare_and_set s.stop false true then begin
    let tick = 0.002 in
    wake_acceptor s;
    while not (Atomic.get s.acceptor_done && Atomic.get s.reaper_done) do
      P.sleep pool tick
    done;
    (try Unix.close s.listen_fd with Unix.Unix_error _ -> ());
    (* Drain: give in-flight handlers [grace] seconds to finish... *)
    let waited = ref 0. in
    while Atomic.get s.live > 0 && !waited < grace do
      P.sleep pool tick;
      waited := !waited +. tick
    done;
    (* ...then force the stragglers: closing wakes their parked waits,
       the handler observes Net.Closed / EOF and unwinds. *)
    List.iter Conn.close (conns_snapshot s);
    while Atomic.get s.live > 0 do
      P.sleep pool tick
    done
  end
