module Pool_intf = Lhws_workloads.Pool_intf
module Promise = Lhws_runtime.Promise

(* ------------------------------------------------------------------ *)
(* Messages                                                           *)
(* ------------------------------------------------------------------ *)

type version = [ `Http_1_0 | `Http_1_1 ]

type request = {
  meth : string;
  target : string;
  path : string;
  query : string;
  version : version;
  headers : (string * string) list;
  body : Bytes.t;
  keep_alive : bool;
}

let header req name = List.assoc_opt name req.headers

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : Bytes.t;
}

let reason_phrase = function
  | 100 -> "Continue"
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 301 -> "Moved Permanently"
  | 302 -> "Found"
  | 304 -> "Not Modified"
  | 400 -> "Bad Request"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Content Too Large"
  | 414 -> "URI Too Long"
  | 417 -> "Expectation Failed"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Status"

let response ?(status = 200) ?(reason = "") ?(headers = []) body =
  { status; reason; resp_headers = headers; resp_body = body }

let text ?(status = 200) s =
  response ~status
    ~headers:[ ("content-type", "text/plain") ]
    (Bytes.of_string s)

(* ------------------------------------------------------------------ *)
(* Lexical helpers (RFC 9110 token / whitespace)                      *)
(* ------------------------------------------------------------------ *)

(* Parse failures carry the status code the server answers with before
   closing; the client translates them to [Net.Protocol_error]. *)
exception Parse_err of int * string

let parse_err status reason = raise (Parse_err (status, reason))

let is_tchar = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_' | '`'
  | '|' | '~' ->
      true
  | _ -> false

let is_token s =
  s <> "" && String.for_all is_tchar s

let trim_ows s =
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < !j && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  while !j > !i && (s.[!j - 1] = ' ' || s.[!j - 1] = '\t') do decr j done;
  if !i = 0 && !j = n then s else String.sub s !i (!j - !i)

(* Split a head block (no trailing CRLF) into lines.  A '\r' not
   followed by '\n' stays inside its line and is rejected by the line
   parsers below — bare-CR smuggling never silently splits a header. *)
let split_crlf s =
  let n = String.length s in
  let rec sep i =
    match String.index_from_opt s i '\r' with
    | Some j when j + 1 < n && s.[j + 1] = '\n' -> Some j
    | Some j when j + 1 < n -> sep (j + 1)
    | _ -> None
  in
  let rec go acc i =
    if i > n then List.rev acc
    else
      match sep i with
      | None -> List.rev (String.sub s i (n - i) :: acc)
      | Some j -> go (String.sub s i (j - i) :: acc) (j + 2)
  in
  go [] 0

let clean_line kind s =
  if String.contains s '\r' then parse_err 400 (kind ^ " contains a bare CR");
  s

(* "name: value" with no whitespace allowed before the colon (a
   smuggling vector: two hops disagreeing on where the name ends). *)
let parse_header_line line =
  let line = clean_line "header line" line in
  match String.index_opt line ':' with
  | None -> parse_err 400 "header line without a colon"
  | Some i ->
      let name = String.sub line 0 i in
      if not (is_token name) then parse_err 400 "invalid header field name";
      let value = trim_ows (String.sub line (i + 1) (String.length line - i - 1)) in
      (String.lowercase_ascii name, value)

let parse_header_lines lines =
  List.map
    (fun line ->
      if line <> "" && (line.[0] = ' ' || line.[0] = '\t') then
        parse_err 400 "obsolete line folding";
      parse_header_line line)
    lines

(* Comma-separated list membership, case-insensitive — for
   [Connection: keep-alive, te] style values. *)
let list_has value member =
  String.split_on_char ',' value
  |> List.exists (fun tok -> String.lowercase_ascii (trim_ows tok) = member)

let keep_alive_of ~version headers =
  let conn = List.filter (fun (n, _) -> n = "connection") headers in
  let has m = List.exists (fun (_, v) -> list_has v m) conn in
  if has "close" then false
  else match version with `Http_1_1 -> true | `Http_1_0 -> has "keep-alive"

(* All Content-Length occurrences — separate headers and comma-joined
   values alike — must be the same pure-digit string; anything else is
   request smuggling material and poisons the stream. *)
let content_length_of headers ~max_body =
  let values =
    List.concat_map
      (fun (n, v) ->
        if n <> "content-length" then []
        else List.map trim_ows (String.split_on_char ',' v))
      headers
  in
  match values with
  | [] -> None
  | v :: rest ->
      if not (String.for_all (function '0' .. '9' -> true | _ -> false) v) || v = ""
      then parse_err 400 "malformed content-length";
      if List.exists (fun v' -> v' <> v) rest then
        parse_err 400 "conflicting content-length values";
      if String.length v > 15 then parse_err 413 "content-length out of range";
      let n = int_of_string v in
      if n > max_body then parse_err 413 "body exceeds the configured limit";
      Some n

type framing = Fixed of int | Chunked

let framing_of headers ~max_body =
  let te = List.filter (fun (n, _) -> n = "transfer-encoding") headers in
  let cl = content_length_of headers ~max_body in
  match (te, cl) with
  | [], None -> Fixed 0
  | [], Some n -> Fixed n
  | _ :: _, Some _ ->
      (* The classic CL.TE desync: two intermediaries picking different
         framings see different request boundaries.  Refuse. *)
      parse_err 400 "content-length alongside transfer-encoding"
  | tes, None ->
      let codings =
        List.concat_map
          (fun (_, v) ->
            List.map (fun c -> String.lowercase_ascii (trim_ows c))
              (String.split_on_char ',' v))
          tes
      in
      if codings = [ "chunked" ] then Chunked
      else parse_err 501 "unsupported transfer-encoding"

(* ------------------------------------------------------------------ *)
(* Incremental request parser                                         *)
(* ------------------------------------------------------------------ *)

module Parser = struct
  type error = { status : int; reason : string }

  type event = Need_more | Request of request | Failed of error

  (* Everything about the current request learned from its head. *)
  type head = {
    h_meth : string;
    h_target : string;
    h_path : string;
    h_query : string;
    h_version : version;
    h_headers : (string * string) list;
    h_keep : bool;
  }

  type state =
    | Scan_head
    | Body_fixed of head * int
    | Chunk_size of head * Buffer.t
    | Chunk_data of head * Buffer.t * int
    | Chunk_trailer of head * Buffer.t * int  (* trailer bytes consumed *)
    | Broken of error

  type t = {
    mutable buf : Bytes.t;
    mutable pos : int;  (* consumed prefix *)
    mutable len : int;  (* filled prefix *)
    mutable scanned : int;  (* head-terminator scan high-water mark *)
    mutable st : state;
    max_header : int;
    max_body : int;
  }

  let create ?(max_header_bytes = 16 * 1024) ?(max_body_bytes = 8 * 1024 * 1024) () =
    {
      buf = Bytes.create 4096;
      pos = 0;
      len = 0;
      scanned = 0;
      st = Scan_head;
      max_header = max_header_bytes;
      max_body = max_body_bytes;
    }

  let buffered t = t.len - t.pos
  let at_boundary t = (match t.st with Scan_head -> true | _ -> false) && buffered t = 0

  let feed t ?(off = 0) ?len src =
    let n = match len with Some n -> n | None -> Bytes.length src - off in
    if n < 0 || off < 0 || off + n > Bytes.length src then
      invalid_arg "Http.Parser.feed";
    match t.st with
    | Broken _ -> ()  (* poisoned stream: bytes are discarded *)
    | _ ->
        let cap = Bytes.length t.buf in
        if t.len + n > cap then begin
          (* Compact the consumed prefix first; grow only if the live
             region still does not fit. *)
          if t.pos > 0 then begin
            Bytes.blit t.buf t.pos t.buf 0 (t.len - t.pos);
            t.len <- t.len - t.pos;
            t.scanned <- max 0 (t.scanned - t.pos);
            t.pos <- 0
          end;
          if t.len + n > cap then begin
            let cap' =
              let c = ref (max 1 cap) in
              while t.len + n > !c do
                c := !c * 2
              done;
              !c
            in
            let b = Bytes.create cap' in
            Bytes.blit t.buf 0 b 0 t.len;
            t.buf <- b
          end
        end;
        Bytes.blit src off t.buf t.len n;
        t.len <- t.len + n

  (* Find "\r\n" at or after [from]; [None] if it is not buffered yet. *)
  let find_crlf t from =
    let rec go i =
      if i + 1 >= t.len then None
      else if Bytes.get t.buf i = '\r' && Bytes.get t.buf (i + 1) = '\n' then Some i
      else go (i + 1)
    in
    go (max from t.pos)

  let find_crlfcrlf t from =
    let rec go i =
      if i + 3 >= t.len then None
      else if
        Bytes.get t.buf i = '\r'
        && Bytes.get t.buf (i + 1) = '\n'
        && Bytes.get t.buf (i + 2) = '\r'
        && Bytes.get t.buf (i + 3) = '\n'
      then Some i
      else go (i + 1)
    in
    go (max from t.pos)

  let parse_request_line line =
    let line = clean_line "request line" line in
    match String.split_on_char ' ' line with
    | [ meth; target; version ] ->
        if not (is_token meth) then parse_err 400 "invalid method";
        if target = "" then parse_err 400 "empty request-target";
        let version =
          match version with
          | "HTTP/1.1" -> `Http_1_1
          | "HTTP/1.0" -> `Http_1_0
          | v when String.length v >= 5 && String.sub v 0 5 = "HTTP/" ->
              parse_err 505 ("unsupported protocol version " ^ v)
          | _ -> parse_err 400 "malformed request line"
        in
        (meth, target, version)
    | _ -> parse_err 400 "malformed request line"

  let parse_head_block t text =
    match split_crlf text with
    | [] -> parse_err 400 "empty head"
    | rline :: hlines ->
        let meth, target, version = parse_request_line rline in
        let headers = parse_header_lines hlines in
        let path, query =
          match String.index_opt target '?' with
          | None -> (target, "")
          | Some i ->
              ( String.sub target 0 i,
                String.sub target (i + 1) (String.length target - i - 1) )
        in
        let keep = keep_alive_of ~version headers in
        let h =
          {
            h_meth = meth;
            h_target = target;
            h_path = path;
            h_query = query;
            h_version = version;
            h_headers = headers;
            h_keep = keep;
          }
        in
        (h, framing_of headers ~max_body:t.max_body)

  let emit t h body =
    t.st <- Scan_head;
    t.scanned <- t.pos;
    Request
      {
        meth = h.h_meth;
        target = h.h_target;
        path = h.h_path;
        query = h.h_query;
        version = h.h_version;
        headers = h.h_headers;
        body;
        keep_alive = h.h_keep;
      }

  (* Chunk-size lines are tiny ("<hex>[;ext]"); a kilobyte of slack
     covers any sane extension without letting a hostile peer buffer
     forever looking for CRLF. *)
  let max_chunk_line = 1024

  let parse_chunk_size line =
    let line = clean_line "chunk size line" line in
    let hex =
      match String.index_opt line ';' with
      | None -> trim_ows line
      | Some i -> trim_ows (String.sub line 0 i)
    in
    if hex = "" || String.length hex > 14
       || not
            (String.for_all
               (function 'a' .. 'f' | 'A' .. 'F' | '0' .. '9' -> true | _ -> false)
               hex)
    then parse_err 400 "malformed chunk size";
    int_of_string ("0x" ^ hex)

  let rec next t =
    match t.st with
    | Broken e -> Failed e
    | st -> (
        match step t st with
        | ev -> ev
        | exception Parse_err (status, reason) ->
            let e = { status; reason } in
            t.st <- Broken e;
            Failed e)

  and step t st =
    match st with
    | Broken e -> Failed e
    | Scan_head -> (
        match find_crlfcrlf t t.scanned with
        | None ->
            (* Remember how far we scanned (a terminator can still start
               in the last three bytes), and refuse heads that outgrow
               the limit before terminating. *)
            t.scanned <- max t.scanned (max t.pos (t.len - 3));
            if buffered t > t.max_header then
              parse_err 431 "request head exceeds the configured limit";
            Need_more
        | Some i ->
            let head_len = i + 4 - t.pos in
            if head_len > t.max_header then
              parse_err 431 "request head exceeds the configured limit";
            let text = Bytes.sub_string t.buf t.pos (i - t.pos) in
            let h, framing = parse_head_block t text in
            t.pos <- i + 4;
            t.scanned <- t.pos;
            (match framing with
            | Fixed 0 -> t.st <- Body_fixed (h, 0)
            | Fixed n -> t.st <- Body_fixed (h, n)
            | Chunked -> t.st <- Chunk_size (h, Buffer.create 256));
            next t)
    | Body_fixed (h, n) ->
        if buffered t < n then Need_more
        else begin
          let body = Bytes.sub t.buf t.pos n in
          t.pos <- t.pos + n;
          emit t h body
        end
    | Chunk_size (h, body) -> (
        match find_crlf t t.pos with
        | None ->
            if buffered t > max_chunk_line then
              parse_err 400 "chunk size line too long";
            Need_more
        | Some i ->
            if i - t.pos > max_chunk_line then
              parse_err 400 "chunk size line too long";
            let line = Bytes.sub_string t.buf t.pos (i - t.pos) in
            let size = parse_chunk_size line in
            if size > t.max_body || Buffer.length body + size > t.max_body then
              parse_err 413 "chunked body exceeds the configured limit";
            t.pos <- i + 2;
            t.st <-
              (if size = 0 then Chunk_trailer (h, body, 0)
               else Chunk_data (h, body, size));
            next t)
    | Chunk_data (h, body, n) ->
        (* Wait for the data plus its trailing CRLF: the boundary check
           below is what catches a peer whose chunk sizes lie. *)
        if buffered t < n + 2 then Need_more
        else begin
          Buffer.add_subbytes body t.buf t.pos n;
          if Bytes.get t.buf (t.pos + n) <> '\r' || Bytes.get t.buf (t.pos + n + 1) <> '\n'
          then parse_err 400 "chunk data not terminated by CRLF";
          t.pos <- t.pos + n + 2;
          t.st <- Chunk_size (h, body);
          next t
        end
    | Chunk_trailer (h, body, consumed) -> (
        match find_crlf t t.pos with
        | None ->
            if consumed + buffered t > t.max_header then
              parse_err 431 "chunked trailer exceeds the configured limit";
            Need_more
        | Some i when i = t.pos ->
            (* Blank line: the chunked message ends.  Trailer fields
               above were validated and discarded. *)
            t.pos <- t.pos + 2;
            emit t h (Buffer.to_bytes body)
        | Some i ->
            let line = Bytes.sub_string t.buf t.pos (i - t.pos) in
            ignore (parse_header_line line : string * string);
            let consumed = consumed + (i + 2 - t.pos) in
            if consumed > t.max_header then
              parse_err 431 "chunked trailer exceeds the configured limit";
            t.pos <- i + 2;
            t.st <- Chunk_trailer (h, body, consumed);
            next t)
end

(* ------------------------------------------------------------------ *)
(* Response serialization                                             *)
(* ------------------------------------------------------------------ *)

let day_name = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |]

let month_name =
  [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]

let imf_fixdate t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day_name.(tm.Unix.tm_wday)
    tm.Unix.tm_mday month_name.(tm.Unix.tm_mon) (tm.Unix.tm_year + 1900)
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* Every response carries a Date header; formatting one per response
   would dominate small-request serialization, so cache per second.
   Racing writers at a second boundary at worst format it twice. *)
let date_cache = Atomic.make (0., "")

let date_header () =
  let now = Unix.time () in
  let sec, str = Atomic.get date_cache in
  if sec = now && str <> "" then str
  else begin
    let s = imf_fixdate now in
    Atomic.set date_cache (now, s);
    s
  end

let reserved_header = function
  | "date" | "content-length" | "connection" -> true
  | _ -> false

(* Header block + body as an iov: the ordered outbox hands batches of
   these to one [Conn.writev_all], so a burst of pipelined responses
   costs one gathering syscall. *)
let serialize ?(head_only = false) ~keep_alive r =
  let b = Buffer.create 256 in
  let reason = if r.reason = "" then reason_phrase r.status else r.reason in
  Buffer.add_string b "HTTP/1.1 ";
  Buffer.add_string b (string_of_int r.status);
  Buffer.add_char b ' ';
  Buffer.add_string b reason;
  Buffer.add_string b "\r\nDate: ";
  Buffer.add_string b (date_header ());
  Buffer.add_string b "\r\nContent-Length: ";
  Buffer.add_string b (string_of_int (Bytes.length r.resp_body));
  Buffer.add_string b
    (if keep_alive then "\r\nConnection: keep-alive" else "\r\nConnection: close");
  List.iter
    (fun (n, v) ->
      if not (reserved_header (String.lowercase_ascii n)) then begin
        Buffer.add_string b "\r\n";
        Buffer.add_string b n;
        Buffer.add_string b ": ";
        Buffer.add_string b v
      end)
    r.resp_headers;
  Buffer.add_string b "\r\n\r\n";
  let head = Buffer.to_bytes b in
  if head_only || Bytes.length r.resp_body = 0 then [ head ] else [ head; r.resp_body ]

(* ------------------------------------------------------------------ *)
(* The request-ordered combining outbox                               *)
(* ------------------------------------------------------------------ *)

(* {!Rpc}'s outbox flushes in completion order — correct there because
   request ids let the client demultiplex.  HTTP/1.1 has no ids:
   pipelined responses must leave in request order.  So instead of a
   stack, completed responses land in a slot table keyed by the
   sequence number their request was decoded with, and the flusher
   walks [next_send] upward, coalescing every {e consecutive} ready
   response into one vectored write.  A response finishing ahead of a
   still-running earlier handler parks in the table until the gap
   fills; its writer loops on its outcome cell exactly like Rpc's
   writers, so flush failures reach the writers whose frames were in
   the failed batch and no frame is ever abandoned. *)

type fstate = Fpending | Fdone | Ffailed of exn

type oentry = { iov : Bytes.t list; cell : fstate Atomic.t; close_after : bool }

type ordered_outbox = {
  mu : Mutex.t;  (* guards [ready] + [next_send]; never held across I/O *)
  ready : (int, oentry) Hashtbl.t;
  mutable next_send : int;
  next_seq : int Atomic.t;
  flushing : bool Atomic.t;  (* thread-agnostic: holder may park mid-writev *)
  sleep : unit -> unit;
}

let make_oob sleep =
  {
    mu = Mutex.create ();
    ready = Hashtbl.create 16;
    next_send = 0;
    next_seq = Atomic.make 0;
    flushing = Atomic.make false;
    sleep;
  }

let alloc_seq ob = Atomic.fetch_and_add ob.next_seq 1

let rec flush_oob ob conn =
  Mutex.lock ob.mu;
  let rec collect acc n =
    match Hashtbl.find_opt ob.ready n with
    | Some e ->
        Hashtbl.remove ob.ready n;
        collect (e :: acc) (n + 1)
    | None -> (List.rev acc, n)
  in
  let batch, n' = collect [] ob.next_send in
  ob.next_send <- n';
  Mutex.unlock ob.mu;
  match batch with
  | [] -> ()
  | batch ->
      (match Conn.writev_all conn (List.concat_map (fun e -> e.iov) batch) with
      | () ->
          List.iter (fun e -> Atomic.set e.cell Fdone) batch;
          (* [Connection: close] takes effect only after the bytes are
             out; anything sequenced after it fails with Net.Closed on
             the next pass. *)
          if List.exists (fun e -> e.close_after) batch then Conn.close conn
      | exception ex ->
          List.iter (fun e -> Atomic.set e.cell (Ffailed ex)) batch;
          Conn.close conn);
      flush_oob ob conn

(* Blocks (suspending the fiber via [sleep]) until this sequence slot's
   bytes are on the wire or the write failed.  Raising on failure lets
   the caller treat an unwritable response like Rpc does: the peer is
   owed bytes it will never get, so the connection must die. *)
let send_ordered ob conn ~seq iov ~close_after =
  let e = { iov; cell = Atomic.make Fpending; close_after } in
  Mutex.lock ob.mu;
  Hashtbl.replace ob.ready seq e;
  Mutex.unlock ob.mu;
  let rec resolve () =
    match Atomic.get e.cell with
    | Fdone -> ()
    | Ffailed ex -> raise ex
    | Fpending ->
        if Atomic.compare_and_set ob.flushing false true then
          Fun.protect
            ~finally:(fun () -> Atomic.set ob.flushing false)
            (fun () -> flush_oob ob conn);
        (* Unlike Rpc's outbox, a successful flush need not include our
           frame: an earlier sequence number may still be computing, in
           which case nothing was written.  Sleep on any pass that left
           the cell unresolved, or this loop hot-spins a worker for the
           whole gap. *)
        (match Atomic.get e.cell with Fpending -> ob.sleep () | _ -> ());
        resolve ()
  in
  resolve ()

(* ------------------------------------------------------------------ *)
(* Router                                                             *)
(* ------------------------------------------------------------------ *)

module Router = struct
  type params = (string * string) list

  type seg = Lit of string | Cap of string | Tail

  type route = {
    r_meth : string;
    r_segs : seg list;
    r_dispatch : ((unit -> unit) -> unit) option;
    r_handler : params -> request -> response;
  }

  let split_path p = String.split_on_char '/' p |> List.filter (fun s -> s <> "")

  let route ?dispatch ~meth pattern handler =
    if pattern = "" then invalid_arg "Http.Router.route: empty pattern";
    let segs =
      split_path pattern
      |> List.map (fun s ->
             if s = "*" then Tail
             else if String.length s > 1 && s.[0] = ':' then
               Cap (String.sub s 1 (String.length s - 1))
             else Lit s)
    in
    let rec check = function
      | [] | [ Tail ] -> ()
      | Tail :: _ -> invalid_arg "Http.Router.route: * must be the last segment"
      | _ :: tl -> check tl
    in
    check segs;
    { r_meth = meth; r_segs = segs; r_dispatch = dispatch; r_handler = handler }

  type t = { routes : route list; fallback : (request -> response) option }

  let create ?fallback routes = { routes; fallback }

  let match_segs segs path =
    let rec go acc segs path =
      match (segs, path) with
      | [], [] -> Some (List.rev acc)
      | [ Tail ], rest -> Some (List.rev (("*", String.concat "/" rest) :: acc))
      | Lit l :: tl, p :: ptl when l = p -> go acc tl ptl
      | Cap n :: tl, p :: ptl -> go ((n, p) :: acc) tl ptl
      | _ -> None
    in
    go [] segs path

  let dispatch_of t req =
    let psegs = split_path req.path in
    let rec find allow = function
      | [] ->
          let thunk =
            match t.fallback with
            | Some f -> fun () -> f req
            | None ->
                if allow <> [] then
                  let allow = String.concat ", " (List.rev allow) in
                  fun () ->
                    response ~status:405
                      ~headers:
                        [ ("allow", allow); ("content-type", "text/plain") ]
                      (Bytes.of_string "method not allowed\n")
                else fun () -> text ~status:404 "not found\n"
          in
          (None, thunk)
      | r :: tl -> (
          match match_segs r.r_segs psegs with
          | Some ps when r.r_meth = req.meth ->
              (r.r_dispatch, fun () -> r.r_handler ps req)
          | Some _ ->
              let allow = if List.mem r.r_meth allow then allow else r.r_meth :: allow in
              find allow tl
          | None -> find allow tl)
    in
    find [] t.routes
end

(* ------------------------------------------------------------------ *)
(* Oldest-pending-request age gauge                                   *)
(* ------------------------------------------------------------------ *)

(* Deadline-aware admission needs one number: how long ago was the
   oldest request we admitted and have not yet answered?  Admissions are
   FIFO by construction (ids increase with time), so a lazy-deletion
   queue gives it in O(1) amortized: completions mark their id done and
   drain the marked front, so the structure is bounded by the in-flight
   count even if the age is never read. *)
type age_gauge = {
  ag_mu : Mutex.t;
  ag_q : (int * float) Queue.t;  (* (id, admitted-at), oldest first *)
  ag_done : (int, unit) Hashtbl.t;  (* completed ids not yet popped *)
  mutable ag_next : int;
  ag_born : float Atomic.t;
      (* admit time of the oldest pending entry as of the last refresh
         (infinity = empty).  A snapshot for the hot admission path:
         ages derived from it keep growing in real time without taking
         [ag_mu], and it is at most [gauge_refresh_s] behind on {e
         which} entry is oldest. *)
  ag_born_at : float Atomic.t;  (* when [ag_born] was last refreshed *)
}

let make_gauge () =
  {
    ag_mu = Mutex.create ();
    ag_q = Queue.create ();
    ag_done = Hashtbl.create 64;
    ag_next = 0;
    ag_born = Atomic.make infinity;
    ag_born_at = Atomic.make 0.;
  }

(* Pop completed entries off the front; caller holds [ag_mu].  Returns
   the oldest still-pending entry, if any. *)
let rec gauge_front_locked g =
  match Queue.peek_opt g.ag_q with
  | Some (id, _) when Hashtbl.mem g.ag_done id ->
      Hashtbl.remove g.ag_done id;
      ignore (Queue.pop g.ag_q : int * float);
      gauge_front_locked g
  | other -> other

let gauge_admit g =
  Mutex.lock g.ag_mu;
  let id = g.ag_next in
  g.ag_next <- id + 1;
  Queue.push (id, Unix.gettimeofday ()) g.ag_q;
  Mutex.unlock g.ag_mu;
  id

let gauge_finish g id =
  Mutex.lock g.ag_mu;
  Hashtbl.replace g.ag_done id ();
  (* Drain here, not only on read: a server that never consults the
     gauge must not accumulate one queue entry per request forever. *)
  ignore (gauge_front_locked g : (int * float) option);
  Mutex.unlock g.ag_mu

let gauge_oldest_age g =
  Mutex.lock g.ag_mu;
  let f = gauge_front_locked g in
  Mutex.unlock g.ag_mu;
  match f with None -> 0. | Some (_, t) -> Unix.gettimeofday () -. t

(* The admission paths (accept-loop shed_pred, per-request brownout
   check) run on every arrival under exactly the overload the gauge
   exists to detect — they read a lock-free snapshot refreshed at most
   every [gauge_refresh_s] instead of contending on [ag_mu].  The
   snapshot stores the oldest entry's admit time, so the derived age
   stays exact in real time; only the identity of the oldest entry can
   lag, by at most one refresh interval — noise against queue-age
   budgets measured in tens of milliseconds. *)
let gauge_refresh_s = 0.002

let gauge_oldest_age_fast g =
  let now = Unix.gettimeofday () in
  let at = Atomic.get g.ag_born_at in
  let born =
    if now -. at <= gauge_refresh_s then Atomic.get g.ag_born
    else if Atomic.compare_and_set g.ag_born_at at now then begin
      (* Elected refresher: recompute under the mutex, publish. *)
      Mutex.lock g.ag_mu;
      let f = gauge_front_locked g in
      Mutex.unlock g.ag_mu;
      let b = match f with None -> infinity | Some (_, t) -> t in
      Atomic.set g.ag_born b;
      b
    end
    else Atomic.get g.ag_born  (* a racing refresher won; use its value *)
  in
  if born = infinity then 0. else now -. born

(* ------------------------------------------------------------------ *)
(* Server                                                             *)
(* ------------------------------------------------------------------ *)

type config = {
  listener : Listener.config;
  max_header_bytes : int;
  max_body_bytes : int;
  max_pipeline : int;
  shed_above : int option;
  max_queue_age : float option;
}

let default_config =
  {
    listener = { Listener.default_config with max_conns = 16384 };
    max_header_bytes = 16 * 1024;
    max_body_bytes = 8 * 1024 * 1024;
    max_pipeline = 64;
    shed_above = None;
    max_queue_age = None;
  }

type server = {
  mutable lst : Listener.t option;  (* filled right after Listener.serve *)
  s_draining : bool Atomic.t;
  s_inflight : int Atomic.t;
  s_served : int Atomic.t;
  s_shed : int Atomic.t;
  s_gauge : age_gauge;
}

let listener s =
  match s.lst with
  | Some l -> l
  | None -> invalid_arg "Http.listener: server not fully started"

let addr s = Listener.addr (listener s)
let inflight s = Atomic.get s.s_inflight
let served s = Atomic.get s.s_served
let shed_503 s = Atomic.get s.s_shed
let draining s = Atomic.get s.s_draining
let oldest_pending_age s = gauge_oldest_age s.s_gauge

(* One connection's serve loop: decode requests with the incremental
   parser, hand each to the pool through its dispatcher, and sequence
   responses through the ordered outbox.  The loop itself runs as the
   listener's per-connection task on the serving pool; handlers go
   wherever [route] says (default dispatcher, or a route's own — the
   topology pinning seam). *)
let serve_conn (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) ~cfg
    ~st ~default_dispatch ~route conn =
  let parser =
    Parser.create ~max_header_bytes:cfg.max_header_bytes
      ~max_body_bytes:cfg.max_body_bytes ()
  in
  let ob = make_oob (fun () -> P.sleep pool 0.0002) in
  let outstanding = Atomic.make 0 in
  let stop = ref false in
  let chunk = Bytes.create 8192 in
  let submit ~seq ~head_only ~keep_alive resp =
    let iov = serialize ~head_only ~keep_alive resp in
    (try send_ordered ob conn ~seq iov ~close_after:(not keep_alive)
     with Net.Closed | Net.Timeout | Unix.Unix_error _ -> Conn.close conn);
    Atomic.incr st.s_served
  in
  let handle (req : request) =
    let seq = alloc_seq ob in
    let head_only = req.meth = "HEAD" in
    if Atomic.get st.s_draining then begin
      (* Drain: answer, announce the close, stop decoding. *)
      Atomic.incr st.s_shed;
      submit ~seq ~head_only ~keep_alive:false (text ~status:503 "draining\n");
      stop := true
    end
    else if
      (match cfg.shed_above with
      | Some hi -> Atomic.get st.s_inflight >= hi
      | None -> false)
      ||
      (* Deadline-aware brownout: when the oldest admitted-but-unanswered
         request is already older than the budget, admitting more work
         only deepens the queue everyone is stuck behind.  Answer 503
         with a Retry-After instead — the freshest arrivals are exactly
         the ones whose deadline a retry can still meet. *)
      match cfg.max_queue_age with
      | Some age -> gauge_oldest_age_fast st.s_gauge > age
      | None -> false
    then begin
      (* Overload shed: reject fast without spending a pool task, but
         keep the connection — the peer may retry after backing off. *)
      Atomic.incr st.s_shed;
      submit ~seq ~head_only ~keep_alive:req.keep_alive
        (response ~status:503
           ~headers:[ ("retry-after", "1"); ("content-type", "text/plain") ]
           (Bytes.of_string "overloaded\n"));
      if not req.keep_alive then stop := true
    end
    else begin
      let dispatch_override, thunk = route req in
      let dispatch =
        match dispatch_override with Some d -> d | None -> default_dispatch
      in
      let gid = gauge_admit st.s_gauge in
      Atomic.incr outstanding;
      Atomic.incr st.s_inflight;
      dispatch (fun () ->
          Fun.protect
            ~finally:(fun () ->
              gauge_finish st.s_gauge gid;
              Atomic.decr outstanding;
              Atomic.decr st.s_inflight)
            (fun () ->
              let resp =
                match thunk () with
                | r -> r
                | exception e -> text ~status:500 (Printexc.to_string e ^ "\n")
              in
              submit ~seq ~head_only ~keep_alive:req.keep_alive resp));
      if not req.keep_alive then stop := true
    end
  in
  let step () =
    match Parser.next parser with
    | Parser.Request req -> handle req
    | Parser.Failed err ->
        (* Poisoned stream: answer with the parse error's status and
           close — never leave the peer hanging, never keep reading. *)
        let seq = alloc_seq ob in
        submit ~seq ~head_only:false ~keep_alive:false
          (text ~status:err.Parser.status (err.Parser.reason ^ "\n"));
        stop := true
    | Parser.Need_more -> (
        while Atomic.get outstanding >= cfg.max_pipeline do
          P.sleep pool 0.0002
        done;
        match Conn.read conn chunk 0 (Bytes.length chunk) with
        | 0 -> stop := true  (* EOF; a partial request has no one to answer *)
        | n -> Parser.feed parser ~len:n chunk
        | exception Net.Timeout ->
            if Parser.at_boundary parser then
              (* Idle keep-alive connection: close silently. *)
              stop := true
            else begin
              (* The peer stalled mid-request: tell it before closing. *)
              let seq = alloc_seq ob in
              submit ~seq ~head_only:false ~keep_alive:false
                (text ~status:408 "request timeout\n");
              stop := true
            end)
  in
  (try
     while not !stop do
       step ()
     done
   with Net.Closed | Net.Timeout | Net.Peer_closed | End_of_file -> ());
  (* The listener closes the conn the moment we return; in-flight
     handlers still owe responses — wait them out (each one's [submit]
     resolves even on failure, so this terminates). *)
  while Atomic.get outstanding > 0 do
    P.sleep pool 0.0002
  done

let serve_gen (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
    ?(config = default_config) ?dispatch addr ~route =
  let st =
    {
      lst = None;
      s_draining = Atomic.make false;
      s_inflight = Atomic.make 0;
      s_served = Atomic.make 0;
      s_shed = Atomic.make 0;
      s_gauge = make_gauge ();
    }
  in
  let default_dispatch =
    match dispatch with
    | Some d -> d
    | None -> fun f -> ignore (P.async pool f : unit Promise.t)
  in
  (* With a queue-age budget, admission control reaches all the way to
     the acceptor: while the oldest pending request is over age, new
     {e connections} are shed at accept (closed immediately) on top of
     the per-request 503s on live connections. *)
  let lcfg =
    match config.max_queue_age with
    | None -> config.listener
    | Some age ->
        let over_age () = gauge_oldest_age_fast st.s_gauge > age in
        let pred =
          match config.listener.Listener.shed_pred with
          | None -> over_age
          | Some p -> fun () -> p () || over_age ()
        in
        { config.listener with Listener.shed_pred = Some pred }
  in
  let l =
    Listener.serve
      (module P)
      pool rt ~config:lcfg addr
      ~handler:(fun conn ->
        serve_conn (module P) pool ~cfg:config ~st ~default_dispatch ~route conn)
  in
  st.lst <- Some l;
  st

let serve (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt ?config
    ?dispatch addr ~handler =
  serve_gen (module P) pool rt ?config ?dispatch addr ~route:(fun req ->
      (None, fun () -> handler req))

let serve_router (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
    ?config ?dispatch addr ~router =
  serve_gen (module P) pool rt ?config ?dispatch addr
    ~route:(Router.dispatch_of router)

let shutdown ?grace s =
  Atomic.set s.s_draining true;
  Listener.shutdown ?grace (listener s)

(* ------------------------------------------------------------------ *)
(* Client                                                             *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type resp = {
    status : int;
    reason : string;
    headers : (string * string) list;
    body : Bytes.t;
  }

  (* Sequential buffered reader over a Conn — the demux task is the
     only reader, so plain mutable state is fine.  Never reads past
     what the current response can contain only in the aggregate sense:
     overshoot stays buffered for the next response on the same
     connection. *)
  type rdbuf = { rconn : Conn.t; mutable b : Bytes.t; mutable rpos : int; mutable rlen : int }

  let make_rdbuf conn = { rconn = conn; b = Bytes.create 8192; rpos = 0; rlen = 0 }

  let max_resp_head = 64 * 1024

  (* Returns false at EOF. *)
  let refill rb =
    let cap = Bytes.length rb.b in
    if rb.rlen = cap then
      if rb.rpos > 0 then begin
        Bytes.blit rb.b rb.rpos rb.b 0 (rb.rlen - rb.rpos);
        rb.rlen <- rb.rlen - rb.rpos;
        rb.rpos <- 0
      end
      else begin
        let b = Bytes.create (cap * 2) in
        Bytes.blit rb.b 0 b 0 rb.rlen;
        rb.b <- b
      end;
    match Conn.read rb.rconn rb.b rb.rlen (Bytes.length rb.b - rb.rlen) with
    | 0 -> false
    | n ->
        rb.rlen <- rb.rlen + n;
        true

  let proto what = raise (Net.Protocol_error what)

  (* [None] on clean EOF before any byte of a head; Peer_closed on EOF
     anywhere inside a message — same boundary contract as Rpc. *)
  let read_head rb =
    let find_term () =
      let rec go i =
        if i + 3 >= rb.rlen then None
        else if
          Bytes.get rb.b i = '\r'
          && Bytes.get rb.b (i + 1) = '\n'
          && Bytes.get rb.b (i + 2) = '\r'
          && Bytes.get rb.b (i + 3) = '\n'
        then Some i
        else go (i + 1)
      in
      go rb.rpos
    in
    let rec wait () =
      match find_term () with
      | Some i -> Some i
      | None ->
          if rb.rlen - rb.rpos > max_resp_head then proto "response head too large";
          if refill rb then wait ()
          else if rb.rlen = rb.rpos then None
          else raise Net.Peer_closed
    in
    match wait () with
    | None -> None
    | Some i ->
        let text = Bytes.sub_string rb.b rb.rpos (i - rb.rpos) in
        rb.rpos <- i + 4;
        (match split_crlf text with
        | [] -> proto "empty response head"
        | sline :: hlines -> (
            let status, reason =
              match String.split_on_char ' ' sline with
              | version :: code :: rest
                when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
                ->
                  let status =
                    match int_of_string_opt code with
                    | Some s when s >= 100 && s <= 999 -> s
                    | _ -> proto "malformed status code"
                  in
                  (status, String.concat " " rest)
              | _ -> proto "malformed status line"
            in
            match parse_header_lines hlines with
            | headers -> Some (status, reason, headers)
            | exception Parse_err (_, why) -> proto why))

  let read_exact rb n =
    let out = Bytes.create n in
    let rec go filled =
      if filled >= n then out
      else begin
        let avail = min (rb.rlen - rb.rpos) (n - filled) in
        Bytes.blit rb.b rb.rpos out filled avail;
        rb.rpos <- rb.rpos + avail;
        let filled = filled + avail in
        if filled < n && not (refill rb) then raise Net.Peer_closed;
        go filled
      end
    in
    go 0

  let read_line rb =
    let find () =
      let rec go i =
        if i + 1 >= rb.rlen then None
        else if Bytes.get rb.b i = '\r' && Bytes.get rb.b (i + 1) = '\n' then Some i
        else go (i + 1)
      in
      go rb.rpos
    in
    let rec wait () =
      match find () with
      | Some i ->
          let line = Bytes.sub_string rb.b rb.rpos (i - rb.rpos) in
          rb.rpos <- i + 2;
          line
      | None ->
          if rb.rlen - rb.rpos > max_resp_head then proto "response line too long";
          if refill rb then wait () else raise Net.Peer_closed
    in
    wait ()

  let parse_chunk_size_line line =
    match Parser.parse_chunk_size line with
    | n -> n
    | exception Parse_err (_, why) -> proto why

  let read_body rb ~head_only ~status headers =
    if head_only || status = 204 || status = 304 || (status >= 100 && status < 200)
    then Bytes.create 0
    else
      match framing_of headers ~max_body:max_int with
      | Fixed n -> if n = 0 then Bytes.create 0 else read_exact rb n
      | Chunked ->
          let body = Buffer.create 256 in
          let rec chunks () =
            let size = parse_chunk_size_line (read_line rb) in
            if size > 0 then begin
              Buffer.add_bytes body (read_exact rb size);
              let crlf = read_exact rb 2 in
              if Bytes.to_string crlf <> "\r\n" then
                proto "chunk data not terminated by CRLF";
              chunks ()
            end
            else
              (* Trailers: discard lines until the blank one. *)
              let rec trailers () =
                if read_line rb <> "" then trailers ()
              in
              trailers ()
          in
          chunks ();
          Buffer.to_bytes body
      | exception Parse_err (_, why) -> proto why

  type entry = { e_promise : resp Promise.t; e_head_only : bool }

  type t = {
    conn : Conn.t;
    rb : rdbuf;
    q_mu : Mutex.t;
    q : entry Queue.t;
    wl : bool Atomic.t;  (* write lock: thread-agnostic, see Rpc.wlock *)
    sleep : unit -> unit;
    closed : bool Atomic.t;
    demux_done : bool Atomic.t;
  }

  let pop_entry c =
    Mutex.lock c.q_mu;
    let e = if Queue.is_empty c.q then None else Some (Queue.pop c.q) in
    Mutex.unlock c.q_mu;
    e

  let fail_all c e =
    Mutex.lock c.q_mu;
    let es = Queue.fold (fun acc en -> en :: acc) [] c.q in
    Queue.clear c.q;
    Mutex.unlock c.q_mu;
    List.iter
      (fun en ->
        try Promise.fulfill en.e_promise (Error e) with Invalid_argument _ -> ())
      es

  (* Same teardown discipline as Rpc.Client: mark closed before the
     drain so racing calls observe it, and close the conn ourselves so
     neither the fd nor the peer's handler outlives the client. *)
  let fail_conn c e =
    Atomic.set c.closed true;
    Conn.close c.conn;
    fail_all c e

  let demux c =
    let rec loop () =
      match read_head c.rb with
      | None -> fail_conn c Net.Closed
      | Some (status, reason, headers) -> (
          match pop_entry c with
          | None -> proto "response with no outstanding request"
          | Some en ->
              let body =
                read_body c.rb ~head_only:en.e_head_only ~status headers
              in
              (try
                 Promise.fulfill en.e_promise (Ok { status; reason; headers; body })
               with Invalid_argument _ -> ());
              let close =
                List.exists
                  (fun (n, v) -> n = "connection" && list_has v "close")
                  headers
              in
              if close then fail_conn c Net.Closed else loop ())
    in
    try loop () with
    | Net.Closed | Net.Timeout | End_of_file -> fail_conn c Net.Closed
    | e -> fail_conn c e

  let connect (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
      ?read_timeout ?write_timeout addr =
    let fd =
      Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
    in
    (try Unix.connect fd addr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let conn = Conn.create rt ?read_timeout ?write_timeout fd in
    let c =
      {
        conn;
        rb = make_rdbuf conn;
        q_mu = Mutex.create ();
        q = Queue.create ();
        wl = Atomic.make false;
        sleep = (fun () -> P.sleep pool 0.0002);
        closed = Atomic.make false;
        demux_done = Atomic.make false;
      }
    in
    ignore
      (P.async pool (fun () ->
           Fun.protect
             ~finally:(fun () -> Atomic.set c.demux_done true)
             (fun () -> demux c))
        : unit Promise.t);
    c

  let request_iov ?(headers = []) ?body ~meth ~target () =
    let b = Buffer.create 128 in
    Buffer.add_string b meth;
    Buffer.add_char b ' ';
    Buffer.add_string b target;
    Buffer.add_string b " HTTP/1.1\r\nHost: lhws";
    let body_len = match body with None -> 0 | Some bd -> Bytes.length bd in
    if
      not
        (List.exists
           (fun (n, _) -> String.lowercase_ascii n = "content-length")
           headers)
    then begin
      Buffer.add_string b "\r\nContent-Length: ";
      Buffer.add_string b (string_of_int body_len)
    end;
    List.iter
      (fun (n, v) ->
        Buffer.add_string b "\r\n";
        Buffer.add_string b n;
        Buffer.add_string b ": ";
        Buffer.add_string b v)
      headers;
    Buffer.add_string b "\r\n\r\n";
    let head = Buffer.to_bytes b in
    match body with
    | Some bd when Bytes.length bd > 0 -> [ head; bd ]
    | _ -> [ head ]

  (* The wire order of requests must equal the FIFO order of promises —
     that is the whole demultiplexing scheme — so the enqueue and the
     write happen under one lock, held across the (possibly parking)
     write.  Thread-agnostic flag lock, as everywhere a fiber can
     migrate workers mid-critical-section. *)
  let call c ?headers ?body ~meth ~target () =
    if Atomic.get c.closed then raise Net.Closed;
    let iov = request_iov ?headers ?body ~meth ~target () in
    let p = Promise.create () in
    let entry = { e_promise = p; e_head_only = meth = "HEAD" } in
    let rec acquire () =
      if not (Atomic.compare_and_set c.wl false true) then begin
        c.sleep ();
        acquire ()
      end
    in
    acquire ();
    Fun.protect
      ~finally:(fun () -> Atomic.set c.wl false)
      (fun () ->
        if Atomic.get c.closed then raise Net.Closed;
        Mutex.lock c.q_mu;
        Queue.push entry c.q;
        Mutex.unlock c.q_mu;
        try Conn.writev_all c.conn iov
        with e ->
          fail_conn c e;
          raise e);
    p

  let close c =
    if Atomic.compare_and_set c.closed false true then begin
      Conn.close c.conn;
      fail_all c Net.Closed
    end;
    while not (Atomic.get c.demux_done) do
      c.sleep ()
    done

  let call_sync conn ?headers ?body ~meth ~target () =
    Conn.writev_all conn (request_iov ?headers ?body ~meth ~target ());
    let rb = make_rdbuf conn in
    match read_head rb with
    | None -> raise Net.Closed
    | Some (status, reason, headers) ->
        let body = read_body rb ~head_only:(meth = "HEAD") ~status headers in
        { status; reason; headers; body }
end
