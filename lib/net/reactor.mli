(** How a pool does I/O: parked fibers over the {!Lhws_runtime.Io}
    reactor, or plain blocking syscalls.

    Every [lib/net] entry point takes one of these, so the same listener
    / connection / RPC code serves both the latency-hiding pools (fibers
    park on readiness, workers keep running other tasks — the paper's
    heavy-edge suspension) and the blocking baselines (a wait occupies
    the worker — the comparison the paper draws). *)

type t

val fibers :
  register:
    (pending:(unit -> int) option -> (unit -> int) -> unit) ->
  ?fault:Fault.t ->
  unit ->
  t
(** Builds a fiber-mode reactor: a fresh {!Lhws_runtime.Io.t} plus a
    dedicated deadline {!Lhws_runtime.Timer.t}, both handed to
    [register] so the pool's worker loop pumps them.  Call as
    [Reactor.fibers ~register:(fun ~pending poll ->
       Lhws_pool.register_poller p ?pending poll) ()].
    Only meaningful on suspension-capable pools.  [fault] attaches a
    {!Fault} plane: every connection and listener using this reactor
    consults it before kernel operations. *)

val blocking : ?fault:Fault.t -> unit -> t
(** Blocking mode: waits are [select] calls with the deadline as
    timeout, reads/writes plain syscalls.  For the WS and thread pools. *)

val is_fibers : t -> bool

val fault : t -> Fault.t option
(** The attached fault plane, if any. *)

val sleep : t -> float -> unit
(** Sleeps without holding a worker in fiber mode (the fiber parks on
    the reactor's deadline timer); plain [Unix.sleepf] in blocking mode.
    Used for injected latency and retry backoff. *)

val wait_readable : t -> ?deadline:float -> Unix.file_descr -> unit
(** Waits until the descriptor is readable.  [deadline] is absolute
    ([Unix.gettimeofday] seconds).
    @raise Net.Timeout when the deadline passes first.
    @raise Unix.Unix_error when the descriptor turns bad while parked. *)

val wait_writable : t -> ?deadline:float -> Unix.file_descr -> unit
