(** How a pool does I/O: intents submitted to the
    {!Lhws_runtime.Io} submission/completion reactor, or plain blocking
    syscalls.

    Every [lib/net] entry point takes one of these, so the same listener
    / connection / RPC code serves both the latency-hiding pools (fibers
    park on submitted intents, workers keep running other tasks — the
    paper's heavy-edge suspension) and the blocking baselines (a wait
    occupies the worker — the comparison the paper draws). *)

type t

val fibers :
  register:
    (pending:(unit -> int) option ->
    syscalls:(unit -> int) option ->
    (unit -> int) ->
    unit) ->
  ?fault:Fault.t ->
  ?watchdog:Lhws_runtime.Watchdog.t ->
  ?legacy:bool ->
  unit ->
  t
(** Builds a fiber-mode reactor: a fresh {!Lhws_runtime.Io.t} plus a
    dedicated deadline {!Lhws_runtime.Timer.t}, both handed to
    [register] so the pool's worker loop pumps them.  Call as
    [Reactor.fibers ~register:(fun ~pending ~syscalls poll ->
       Lhws_pool.register_poller p ?pending ?syscalls poll) ()].
    Only meaningful on suspension-capable pools.  [fault] attaches a
    {!Fault} plane: every connection and listener using this reactor
    consults it before kernel operations.  [watchdog] puts this
    reactor's parked intents under stall surveillance: the watchdog's
    sweep is registered as one more pump-driven poller and the fresh
    {!Lhws_runtime.Io.t} is attached to it, so lost wakeups and stale
    fd registrations fail loudly (see {!Lhws_runtime.Watchdog}).  Pair
    with the pool-side [register_watchdog] for heartbeat coverage and
    stats/tracing integration.  [legacy:true] selects the pre-batching
    wait-then-retry reactor (readiness wakes the fiber, which reissues
    its own syscall; no pump-side execution, no paced readiness pass) —
    the comparison leg of the NET3 bench. *)

val blocking : ?fault:Fault.t -> unit -> t
(** Blocking mode: waits are [select] calls with the deadline as
    timeout, reads/writes plain syscalls.  For the WS and thread pools. *)

val is_fibers : t -> bool

val is_batched : t -> bool
(** Fiber mode with the batched submission/completion path active
    (i.e. not [legacy], not blocking).  Upper layers use this to enable
    optimizations that only pay off with batching, such as {!Rpc}'s
    frame-coalescing writes. *)

val fault : t -> Fault.t option
(** The attached fault plane, if any. *)

val sleep : t -> float -> unit
(** Sleeps without holding a worker in fiber mode (the fiber parks on
    the reactor's deadline timer); plain [Unix.sleepf] in blocking mode.
    Used for injected latency and retry backoff. *)

val wait_readable : t -> ?deadline:float -> Unix.file_descr -> unit
(** Waits until the descriptor is readable.  [deadline] is absolute
    ([Unix.gettimeofday] seconds).
    @raise Net.Timeout when the deadline passes first.
    @raise Unix.Unix_error when the descriptor turns bad while parked. *)

val wait_writable : t -> ?deadline:float -> Unix.file_descr -> unit

val run_io :
  t ->
  ?deadline:float ->
  ?eager:bool ->
  [ `Readable | `Writable ] ->
  Unix.file_descr ->
  exec:(unit -> 'a) ->
  'a
(** Drives one kernel operation through the reactor.  [exec] performs
    the operation and may raise [EAGAIN]/[EWOULDBLOCK] (would block —
    retried through the reactor) or [EINTR] (retried immediately).

    Fiber mode: [exec] runs inline once first (eager completion; skip
    with [eager:false]); if it would block, an intent is submitted and
    the pump re-issues [exec] the moment the descriptor turns ready, so
    the fiber resumes with the result already produced.  Every [exec]
    invocation is counted in the reactor's [io_syscalls].  Blocking
    mode: waits with the deadline as timeout, then loops the syscall.

    Other exceptions from [exec] (kernel errors, injected faults)
    re-raise at this call, whether [exec] ran inline or in the pump.
    @raise Net.Timeout when [deadline] passes before completion. *)

val io_syscalls : t -> int
(** Kernel I/O calls issued through this reactor so far (0 in blocking
    mode, which has no reactor-side accounting). *)

val chaos_drop_completions : t -> every:int -> unit
(** Test-only mutation hook; see
    {!Lhws_runtime.Io.chaos_drop_completions}.  No-op in blocking
    mode. *)
