(* A buffered connection over a descriptor.  Reads go through a small
   input buffer (length-prefixed RPC framing issues many tiny reads);
   writes go straight to the kernel.  Every kernel operation is driven
   through {!Reactor.run_io}: in fiber mode it is attempted inline once
   (eager completion) and otherwise submitted as an intent the pump
   executes on readiness; in blocking mode the deadline becomes the
   select timeout — either way a dead peer costs Net.Timeout, never a
   worker parked forever. *)

module Iov = Lhws_runtime.Io.Iov

type t = {
  fd : Unix.file_descr;
  rt : Reactor.t;
  rbuf : Bytes.t;
  mutable rpos : int;  (* next unread byte in rbuf *)
  mutable rlen : int;  (* bytes buffered in rbuf *)
  read_timeout : float option;
  write_timeout : float option;
  mutable last_active : float;  (* for idle reaping; monotone enough *)
  closed : bool Atomic.t;
  (* In-flight kernel operations plus one reference for the open handle.
     [close] shuts the socket down immediately (waking parked waiters) but
     defers [Unix.close] until the count drains: an fd number freed while a
     fiber sits between its closed-check and [Unix.read], or parked in the
     reactor, could be reused by a freshly accepted connection and the
     stale operation would target the wrong descriptor. *)
  ops : int Atomic.t;
  fd_closed : bool Atomic.t;  (* [Unix.close] runs at most once *)
}

let buf_capacity = 16 * 1024

let create rt ?read_timeout ?write_timeout fd =
  if Reactor.is_fibers rt then Unix.set_nonblock fd;
  (* Small pipelined frames over one socket hit the classic Nagle +
     delayed-ACK interaction: a second sub-MSS write stalls until the
     peer ACKs (~40 ms), which shows up directly as RPC tail latency.
     This is a latency-first stack, so disable coalescing on every data
     connection.  Non-TCP fds (Unix-domain sockets) reject the option;
     that is fine. *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  {
    fd;
    rt;
    rbuf = Bytes.create buf_capacity;
    rpos = 0;
    rlen = 0;
    read_timeout;
    write_timeout;
    last_active = Unix.gettimeofday ();
    closed = Atomic.make false;
    ops = Atomic.make 1;
    fd_closed = Atomic.make false;
  }

let fd t = t.fd
let is_closed t = Atomic.get t.closed
let last_active t = t.last_active
let batched t = Reactor.is_batched t.rt

(* Drop one reference; the last one out actually closes the fd.  The
   [fd_closed] CAS keeps a late arrival (an [enter] that raced past a
   completed close) from issuing a second [Unix.close] that could hit a
   reused descriptor number. *)
let release t =
  if
    Atomic.fetch_and_add t.ops (-1) = 1
    && Atomic.compare_and_set t.fd_closed false true
  then begin
    (* The fd number is about to be reusable: drop any fault-plane
       blackout window so a freshly accepted connection that lands on
       the same number does not inherit it. *)
    Fault.forget_fd (Reactor.fault t.rt) t.fd;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Pin the fd for one operation.  The incr-then-check order means a
   concurrent [close] either sees our reference (and leaves the fd open
   until we [release]) or we see its [closed] flag and back out. *)
let enter t =
  Atomic.incr t.ops;
  if Atomic.get t.closed then begin
    release t;
    raise Net.Closed
  end

let close t =
  if Atomic.compare_and_set t.closed false true then begin
    (* [close] alone does not wake a blocked reader on Linux; [shutdown]
       does, and it also makes fiber-mode parked waiters fail fast
       (reads return EOF / the next select flags the fd).  The descriptor
       itself stays open until in-flight operations release it. *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error ((Unix.ENOTCONN | Unix.ENOTSOCK | Unix.EBADF | Unix.EINVAL), _, _) ->
       ());
    release t
  end

let deadline_of = function None -> None | Some s -> Some (Unix.gettimeofday () +. s)

(* Kernel operations consult the reactor's fault plane from inside the
   [exec] closure handed to {!Reactor.run_io}, so an injected verdict
   applies wherever the operation actually runs — the eager inline
   attempt or the pump.  An injected error is raised as the genuine
   [Unix.Unix_error], so it flows through exactly the handlers a
   kernel-reported one would (injected [EAGAIN] in particular forces the
   real park/submit path); a [Short] verdict clamps the byte count
   (framing code must tolerate fragmentation).  A [Delay] cannot sleep
   where [exec] runs — the pump has no fiber to suspend — so it raises
   {!Injected_delay}, which the operation loop catches back on the fiber
   to sleep and retry; [owed] then replays the already-drawn verdict so
   the decision stream advances exactly once per delayed operation,
   keeping the fault schedule seed-replayable. *)
exception Injected_delay of float

let draw_or_owed owed draw =
  match !owed with
  | Some v ->
      owed := None;
      v
  | None -> draw ()

let apply_verdict owed op v k =
  match v with
  | Fault.Delay d ->
      owed := Some Fault.Pass;
      raise (Injected_delay d)
  | Fault.Fail e -> raise (Unix.Unix_error (e, op, "injected"))
  | (Fault.Pass | Fault.Short _) as v -> k v

let clamp len = function Fault.Short cap -> min len (max 1 cap) | _ -> len

(* One kernel read into [buf].  Returns 0 at EOF (and treats a reset
   peer as EOF — for a server, a client that vanished is
   indistinguishable from one that hung up). *)
let read_once t buf pos len =
  enter t;
  Fun.protect ~finally:(fun () -> release t) @@ fun () ->
  let deadline = deadline_of t.read_timeout in
  let owed = ref None in
  let exec () =
    let v = draw_or_owed owed (fun () -> Fault.on_read (Reactor.fault t.rt) t.fd) in
    apply_verdict owed "read" v (fun v -> Unix.read t.fd buf pos (clamp len v))
  in
  let rec go () =
    match Reactor.run_io t.rt ?deadline `Readable t.fd ~exec with
    | n ->
        t.last_active <- Unix.gettimeofday ();
        n
    | exception Injected_delay d ->
        Reactor.sleep t.rt d;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
    (* An EBADF after a concurrent [close] (reaper, listener shutdown) —
       whether from the inline attempt or a parked intent the reactor
       failed — is this connection ending, not a reactor bug. *)
    | exception Unix.Unix_error (Unix.EBADF, _, _) when Atomic.get t.closed -> raise Net.Closed
  in
  go ()

let refill t =
  let n = read_once t t.rbuf 0 buf_capacity in
  t.rpos <- 0;
  t.rlen <- n;
  n

let read t buf pos len =
  if t.rpos < t.rlen then begin
    let n = min len (t.rlen - t.rpos) in
    Bytes.blit t.rbuf t.rpos buf pos n;
    t.rpos <- t.rpos + n;
    n
  end
  else if len >= buf_capacity then read_once t buf pos len
  else
    let n = refill t in
    if n = 0 then 0
    else begin
      let k = min len n in
      Bytes.blit t.rbuf 0 buf pos k;
      t.rpos <- k;
      k
    end

let read_exactly t buf len =
  let rec go pos =
    if pos < len then begin
      let n = read t buf pos (len - pos) in
      if n = 0 then raise End_of_file;
      go (pos + n)
    end
  in
  go 0

(* The shared engine under [write_all] / [writev_all]: drive the vector
   through the kernel until empty.  One logical operation draws one fault
   verdict per kernel attempt, but an injected short-write storm is
   counted once per logical op ([short_seen]) — a storm that fragments a
   big buffer into hundreds of 1-byte writes would otherwise swamp the
   chaos accounting with retry noise. *)
let writev_all t iovs =
  enter t;
  Fun.protect ~finally:(fun () -> release t) @@ fun () ->
  let deadline = deadline_of t.write_timeout in
  let rem = ref iovs in
  let owed = ref None in
  let short_seen = ref false in
  let exec () =
    let v =
      draw_or_owed owed (fun () ->
          let v =
            Fault.on_write ~count_short:(not !short_seen) (Reactor.fault t.rt) t.fd
          in
          (match v with Fault.Short _ -> short_seen := true | _ -> ());
          v)
    in
    apply_verdict owed "write" v (fun v ->
        match v with
        | Fault.Short cap -> Iov.write t.fd (Iov.take !rem (max 1 cap))
        | _ -> Iov.write t.fd !rem)
  in
  let rec go () =
    if Iov.length !rem > 0 then
      match Reactor.run_io t.rt ?deadline `Writable t.fd ~exec with
      | n ->
          t.last_active <- Unix.gettimeofday ();
          rem := Iov.drop !rem n;
          go ()
      | exception Injected_delay d ->
          Reactor.sleep t.rt d;
          go ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          (* The stream is broken mid-write: close the connection so
             readers parked on it (ours and, via the FIN, the peer's)
             find out, instead of waiting on bytes that already sank. *)
          close t;
          raise Net.Closed
      | exception Unix.Unix_error (Unix.EBADF, _, _) when Atomic.get t.closed -> raise Net.Closed
  in
  go ()

let write_all t buf = writev_all t [ buf ]
