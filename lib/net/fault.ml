(* Seeded, counter-based fault plane.  Every decision is a pure function
   of (seed, site, index): each site (read / write / accept) owns an
   atomic index counter, and decision [i] hashes (seed, site, i) through
   splitmix64 into the uniforms that pick a verdict.  Thread
   interleaving decides which operation consumes which index, but the
   decision stream itself — the fault schedule — is fixed by the seed,
   which is what makes a chaos failure replayable. *)

type config = {
  seed : int;
  p_error : float;
  p_eagain : float;
  p_short : float;
  p_delay : float;
  delay_s : float;
  p_accept_fail : float;
  p_blackout : float;
  blackout_s : float;
}

let disabled =
  {
    seed = 0;
    p_error = 0.;
    p_eagain = 0.;
    p_short = 0.;
    p_delay = 0.;
    delay_s = 0.;
    p_accept_fail = 0.;
    p_blackout = 0.;
    blackout_s = 0.;
  }

let storm ?(seed = 1) ~rate () =
  if rate < 0. || rate > 1. then invalid_arg "Fault.storm: rate must be in [0, 1]";
  {
    seed;
    p_error = rate;
    p_eagain = rate;
    p_short = rate;
    p_delay = rate;
    delay_s = 0.002;
    p_accept_fail = rate;
    p_blackout = rate;
    blackout_s = 0.010;
  }

(* --- counter-based RNG --- *)

let mix64 (z : int64) : int64 =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

(* The [k]-th uniform of decision [index] at [site].  Distinct odd
   multipliers keep the three inputs from aliasing. *)
let uniform ~seed ~site ~index k =
  let h =
    mix64
      (Int64.logxor
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.logxor
            (Int64.mul (Int64.of_int site) 0xBF58476D1CE4E5B9L)
            (Int64.mul (Int64.of_int ((index * 8) + k)) 0x94D049BB133111EBL)))
  in
  Int64.to_float (Int64.shift_right_logical h 11) *. (1. /. 9007199254740992.)

let site_read = 1
let site_write = 2
let site_accept = 3

type injected = {
  errors : int;
  eagains : int;
  shorts : int;
  delays : int;
  accept_fails : int;
  blackouts : int;
}

type t = {
  cfg : config;
  read_ix : int Atomic.t;
  write_ix : int Atomic.t;
  accept_ix : int Atomic.t;
  (* fd -> blackout window expiry ([Unix.gettimeofday] seconds) *)
  bl_mu : Mutex.t;
  blackouts_tbl : (Unix.file_descr, float) Hashtbl.t;
  c_errors : int Atomic.t;
  c_eagains : int Atomic.t;
  c_shorts : int Atomic.t;
  c_delays : int Atomic.t;
  c_accept_fails : int Atomic.t;
  c_blackouts : int Atomic.t;
}

let create cfg =
  {
    cfg;
    read_ix = Atomic.make 0;
    write_ix = Atomic.make 0;
    accept_ix = Atomic.make 0;
    bl_mu = Mutex.create ();
    blackouts_tbl = Hashtbl.create 16;
    c_errors = Atomic.make 0;
    c_eagains = Atomic.make 0;
    c_shorts = Atomic.make 0;
    c_delays = Atomic.make 0;
    c_accept_fails = Atomic.make 0;
    c_blackouts = Atomic.make 0;
  }

let seed t = t.cfg.seed
let config t = t.cfg

type verdict = Pass | Delay of float | Short of int | Fail of Unix.error

(* An active blackout window wins over the decision stream (and draws
   nothing from it, so the stream stays index-deterministic). *)
let blackout_remaining t fd =
  Mutex.lock t.bl_mu;
  let r =
    match Hashtbl.find_opt t.blackouts_tbl fd with
    | None -> None
    | Some until ->
        let left = until -. Unix.gettimeofday () in
        if left > 0. then Some left
        else begin
          Hashtbl.remove t.blackouts_tbl fd;
          None
        end
  in
  Mutex.unlock t.bl_mu;
  r

let open_blackout t fd =
  Mutex.lock t.bl_mu;
  Hashtbl.replace t.blackouts_tbl fd (Unix.gettimeofday () +. t.cfg.blackout_s);
  Mutex.unlock t.bl_mu;
  Atomic.incr t.c_blackouts

let forget_fd topt fd =
  match topt with
  | None -> ()
  | Some t ->
      Mutex.lock t.bl_mu;
      Hashtbl.remove t.blackouts_tbl fd;
      Mutex.unlock t.bl_mu

let on_io t ~site ~ix ~count_short ~hard_error fd =
  match blackout_remaining t fd with
  | Some left -> Delay left
  | None -> (
      let index = Atomic.fetch_and_add ix 1 in
      let u = uniform ~seed:t.cfg.seed ~site ~index 0 in
      let c = t.cfg in
      let t1 = c.p_error in
      let t2 = t1 +. c.p_eagain in
      let t3 = t2 +. c.p_short in
      let t4 = t3 +. c.p_delay in
      let t5 = t4 +. c.p_blackout in
      if u < t1 then begin
        Atomic.incr t.c_errors;
        Fail hard_error
      end
      else if u < t2 then begin
        Atomic.incr t.c_eagains;
        Fail Unix.EAGAIN
      end
      else if u < t3 then begin
        (* The verdict still fires; only the counter is conditional, so
           the decision stream stays identical whatever the caller's
           accounting — see [on_write]'s [count_short]. *)
        if count_short then Atomic.incr t.c_shorts;
        Short 1
      end
      else if u < t4 then begin
        Atomic.incr t.c_delays;
        Delay (uniform ~seed:t.cfg.seed ~site ~index 1 *. c.delay_s)
      end
      else if u < t5 then begin
        open_blackout t fd;
        Delay c.blackout_s
      end
      else Pass)

let on_read topt fd =
  match topt with
  | None -> Pass
  | Some t ->
      on_io t ~site:site_read ~ix:t.read_ix ~count_short:true ~hard_error:Unix.ECONNRESET
        fd

(* [count_short:false] suppresses only the [shorts] counter increment — a
   logical write retrying through an injected short-write storm counts
   the storm once, not once per 1-byte retry chunk — while the verdict
   stream itself still advances one draw per attempt. *)
let on_write ?(count_short = true) topt fd =
  match topt with
  | None -> Pass
  | Some t ->
      on_io t ~site:site_write ~ix:t.write_ix ~count_short ~hard_error:Unix.EPIPE fd

let on_accept topt =
  match topt with
  | None -> Pass
  | Some t ->
      let index = Atomic.fetch_and_add t.accept_ix 1 in
      let u = uniform ~seed:t.cfg.seed ~site:site_accept ~index 0 in
      if u < t.cfg.p_accept_fail then begin
        Atomic.incr t.c_accept_fails;
        Fail Unix.ECONNABORTED
      end
      else Pass

let injected t =
  {
    errors = Atomic.get t.c_errors;
    eagains = Atomic.get t.c_eagains;
    shorts = Atomic.get t.c_shorts;
    delays = Atomic.get t.c_delays;
    accept_fails = Atomic.get t.c_accept_fails;
    blackouts = Atomic.get t.c_blackouts;
  }

let total i = i.errors + i.eagains + i.shorts + i.delays + i.accept_fails + i.blackouts

let decisions t = Atomic.get t.read_ix + Atomic.get t.write_ix + Atomic.get t.accept_ix
