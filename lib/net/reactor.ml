open Lhws_runtime

type mode =
  | Fibers of { io : Io.t; timer : Timer.t }
  | Blocking

type t = { mode : mode; fault : Fault.t option }

(* A write into a peer-closed socket raises EPIPE only if SIGPIPE is not
   delivered first — by default it kills the process.  Every write path
   here handles EPIPE (close the conn, surface Net.Closed), so the signal
   carries no information we want; ignore it once, at reactor creation,
   like any socket-serving runtime.  [try] guards platforms without it. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

let fibers ~register ?fault ?watchdog ?(legacy = false) () =
  Lazy.force ignore_sigpipe;
  let io = Io.create ~legacy () in
  let timer = Timer.create () in
  register
    ~pending:(Some (fun () -> Io.pending io))
    ~syscalls:(Some (fun () -> Io.syscalls io))
    (fun () -> Io.poll io);
  register ~pending:None ~syscalls:None (fun () -> Timer.poll timer);
  (* Watchdog sweep rides the same pump as Io.poll.  Registered after it,
     and pollers run last-registered-first, so the sweep tends to run
     before the poll pass — harmless either way: [Io.sweep_stalled]
     drains the submission rings itself before judging intents. *)
  (match watchdog with
  | None -> ()
  | Some wd ->
      Watchdog.attach_io wd io;
      register ~pending:None ~syscalls:None (fun () -> Watchdog.poll wd));
  { mode = Fibers { io; timer }; fault }

let blocking ?fault () =
  Lazy.force ignore_sigpipe;
  { mode = Blocking; fault }

let is_fibers t = match t.mode with Fibers _ -> true | Blocking -> false

let is_batched t =
  match t.mode with Fibers { io; _ } -> not (Io.is_legacy io) | Blocking -> false

let fault t = t.fault

(* Sleep without holding a worker in fiber mode: park the fiber on the
   reactor's deadline timer (the same one racing I/O waits).  Blocking
   mode just blocks — that is its cost model.  Used by injected-latency
   faults and retry backoff. *)
let sleep t d =
  if d > 0. then
    match t.mode with
    | Blocking -> Unix.sleepf d
    | Fibers { timer; _ } ->
        let deadline = Unix.gettimeofday () +. d in
        Fiber.suspend (fun resume -> Timer.add timer ~deadline resume)

(* A fiber wait raced against a deadline.  Both the Io completion and the
   timer callback funnel through the reactor's intent-state mutex: the
   timer side only wins if [Io.cancel] claims the still-armed intent, so
   exactly one of them resumes the fiber, exactly once. *)
type verdict = Ready | Timed_out | Bad of exn

let wait_fibers io timer kind fd ~deadline =
  let verdict = ref Ready in
  let th = ref None in
  Fiber.suspend (fun resume ->
      let on_event e =
        (match e with None -> () | Some exn -> verdict := Bad exn);
        resume ()
      in
      let w =
        match kind with
        | `Readable -> Io.add_readable io fd on_event
        | `Writable -> Io.add_writable io fd on_event
      in
      match deadline with
      | None -> ()
      | Some d ->
          th :=
            Some
              (Timer.add_cancellable timer ~deadline:d (fun () ->
                   if Io.cancel io w then begin
                     verdict := Timed_out;
                     resume ()
                   end)));
  (* Withdraw the deadline entry when the I/O side won, so per-operation
     waits with long timeouts don't pile dead closures into the timer heap.
     Harmless if the timer fired (it removed itself) or is firing (its
     [Io.cancel] lost the race and does nothing). *)
  (match !th with None -> () | Some h -> Timer.cancel timer h);
  match !verdict with
  | Ready -> ()
  | Timed_out -> raise Net.Timeout
  | Bad e -> raise e

(* Blocking pools park in [poll(2)] itself ({!Io.poll_single} — select
   would cap descriptor numbers at FD_SETSIZE, far below the serving
   layer's connection counts); the deadline becomes its timeout, so a
   dead peer still cannot hold a worker forever.  poll's millisecond
   granularity rounds the timeout {e up}: a deadline may be overshot by
   up to 1 ms but never fires early with the fd unready. *)
let wait_blocking kind fd ~deadline =
  let kind = match kind with `Readable -> `R | `Writable -> `W in
  let timeout_ms () =
    match deadline with
    | None -> -1 (* no deadline: block until ready *)
    | Some d ->
        let left = d -. Unix.gettimeofday () in
        if left <= 0. then 0 else int_of_float (ceil (left *. 1000.))
  in
  let rec go () =
    match Io.poll_single kind fd ~timeout_ms:(timeout_ms ()) with
    | `Ready -> ()
    | `Interrupted -> go ()
    | `Timeout ->
        if deadline = None then go () (* spurious zero-timeout wake *)
        else if timeout_ms () = 0 then raise Net.Timeout
        else go ()
  in
  go ()

let wait t kind fd ~deadline =
  match t.mode with
  | Fibers { io; timer } -> wait_fibers io timer kind fd ~deadline
  | Blocking -> wait_blocking kind fd ~deadline

let wait_readable t ?deadline fd = wait t `Readable fd ~deadline
let wait_writable t ?deadline fd = wait t `Writable fd ~deadline

(* --- the submission/completion operation driver --- *)

(* Fiber mode, batched: try [exec] inline once (eager completion — most
   loopback operations succeed immediately and never touch the reactor);
   on would-block, submit an intent whose pump-side [run] re-issues
   [exec] directly when the fd turns ready, stashing the result, so the
   fiber wakes with its operation already done.  Fiber mode, legacy:
   identical eager attempt, but readiness only wakes the fiber, which
   loops back and re-issues [exec] itself — the pre-batching shape.
   Both race the park against [deadline] through {!Io.cancel}.

   Exceptions from [exec] other than EAGAIN/EINTR — kernel errors and
   injected faults alike, whether raised inline or in the pump — re-raise
   in the calling fiber, so call-site handlers see exactly what a plain
   syscall would have thrown. *)
let run_io_fibers io timer kind fd ~deadline ~eager ~exec =
  let ikind = match kind with `Readable -> `R | `Writable -> `W in
  let counted () =
    Io.count_syscall io;
    exec ()
  in
  let rec attempt ~eager =
    if not eager then park ()
    else
      match counted () with
      | v -> v
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> attempt ~eager:true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> park ()
  and park () =
    let res = ref None in
    let verdict = ref Ready in
    let th = ref None in
    Fiber.suspend (fun resume ->
        let rec run () =
          match counted () with
          | v ->
              res := Some v;
              `Done
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> run ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              `Again
        in
        let w =
          Io.submit io ~kind:ikind ~fd ~run (fun o ->
              (match o with
              | Io.Complete -> ()
              | Io.Cancelled -> verdict := Timed_out
              | Io.Error e -> verdict := Bad e);
              resume ())
        in
        match deadline with
        | None -> ()
        | Some d ->
            th :=
              Some
                (Timer.add_cancellable timer ~deadline:d (fun () ->
                     if Io.cancel io w then begin
                       verdict := Timed_out;
                       resume ()
                     end)));
    (match !th with None -> () | Some h -> Timer.cancel timer h);
    match !verdict with
    | Ready -> (
        match !res with
        | Some v -> v
        (* Legacy mode (readiness-only wake), or nothing stashed: the
           fiber re-issues the operation itself. *)
        | None -> attempt ~eager:true)
    | Timed_out -> raise Net.Timeout
    | Bad e -> raise e
  in
  attempt ~eager

(* Blocking mode keeps the pre-change shape: enforce the deadline up
   front by waiting with a timeout (a blocking op cannot be interrupted
   mid-call), then loop the plain syscall. *)
let run_io_blocking kind fd ~deadline ~exec =
  let rec go () =
    match exec () with
    | v -> v
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_blocking kind fd ~deadline;
        go ()
  in
  if deadline <> None then wait_blocking kind fd ~deadline;
  go ()

let run_io t ?deadline ?(eager = true) kind fd ~exec =
  match t.mode with
  | Fibers { io; timer } -> run_io_fibers io timer kind fd ~deadline ~eager ~exec
  | Blocking -> run_io_blocking kind fd ~deadline ~exec

(* Expose the reactor's I/O counter for benches that want syscalls/op
   without going through a pool's stats plumbing. *)
let io_syscalls t = match t.mode with Fibers { io; _ } -> Io.syscalls io | Blocking -> 0

(* Test-only: see {!Lhws_runtime.Io.chaos_drop_completions}. *)
let chaos_drop_completions t ~every =
  match t.mode with
  | Fibers { io; _ } -> Io.chaos_drop_completions io ~every
  | Blocking -> ()
