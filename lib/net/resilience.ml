module Pool_intf = Lhws_workloads.Pool_intf

(* --- circuit breaker --- *)

module Breaker = struct
  type state = Closed | Open | Half_open

  (* All transitions under one mutex: breaker operations are rare (one
     CAS-free lock per call attempt, not per byte) and the state machine
     is much easier to audit than a lock-free encoding.  The critical
     sections never block or allocate on the heap. *)
  type t = {
    failure_threshold : int;
    cooldown : float;
    half_open_probes : int;
    mu : Mutex.t;
    mutable st : state;
    mutable consec_failures : int;  (* while Closed *)
    mutable opened_at : float;  (* while Open *)
    mutable probes : int;  (* in-flight half-open probes *)
    mutable trip_count : int;
  }

  let create ?(failure_threshold = 5) ?(cooldown = 1.0) ?(half_open_probes = 1) () =
    if failure_threshold < 1 then invalid_arg "Breaker.create: failure_threshold < 1";
    if cooldown < 0. then invalid_arg "Breaker.create: negative cooldown";
    if half_open_probes < 1 then invalid_arg "Breaker.create: half_open_probes < 1";
    {
      failure_threshold;
      cooldown;
      half_open_probes;
      mu = Mutex.create ();
      st = Closed;
      consec_failures = 0;
      opened_at = 0.;
      probes = 0;
      trip_count = 0;
    }

  let locked b f =
    Mutex.lock b.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock b.mu) f

  (* Open -> Half_open when the cooldown has elapsed.  Called with the
     lock held; both [allow] and [state] go through it so a passive
     observer sees the same state a caller would act on. *)
  let refresh b =
    if b.st = Open && Unix.gettimeofday () -. b.opened_at >= b.cooldown then begin
      b.st <- Half_open;
      b.probes <- 0
    end

  let state b =
    locked b (fun () ->
        refresh b;
        b.st)

  let allow b =
    locked b (fun () ->
        refresh b;
        match b.st with
        | Closed -> true
        | Open -> false
        | Half_open ->
            if b.probes < b.half_open_probes then begin
              b.probes <- b.probes + 1;
              true
            end
            else false)

  let trip b =
    b.st <- Open;
    b.opened_at <- Unix.gettimeofday ();
    b.trip_count <- b.trip_count + 1

  let on_success b =
    locked b (fun () ->
        match b.st with
        | Closed -> b.consec_failures <- 0
        | Half_open ->
            (* One good probe is evidence enough: close and start clean. *)
            b.st <- Closed;
            b.consec_failures <- 0;
            b.probes <- 0
        | Open -> ())

  let on_failure b =
    locked b (fun () ->
        match b.st with
        | Closed ->
            b.consec_failures <- b.consec_failures + 1;
            if b.consec_failures >= b.failure_threshold then trip b
        | Half_open -> trip b  (* the probe failed: back to cooldown *)
        | Open -> ())

  let failures b = locked b (fun () -> b.consec_failures)
  let trips b = locked b (fun () -> b.trip_count)
end

(* --- retry --- *)

module Retry = struct
  type policy = {
    max_attempts : int;
    base_backoff : float;
    max_backoff : float;
    budget : float option;
    seed : int;
    retryable : exn -> bool;
  }

  let default_retryable = function
    | Net.Timeout | Net.Closed | Net.Peer_closed | End_of_file -> true
    | Unix.Unix_error
        ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE
          | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.ENETDOWN
          | Unix.ENETRESET | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR ),
          _,
          _ ) ->
        true
    | _ -> false

  let policy ?(max_attempts = 4) ?(base_backoff = 0.001) ?(max_backoff = 0.1) ?budget
      ?(seed = 0) ?(retryable = default_retryable) () =
    if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts < 1";
    if base_backoff < 0. || max_backoff < base_backoff then
      invalid_arg "Retry.policy: bad backoff range";
    { max_attempts; base_backoff; max_backoff; budget; seed; retryable }

  let no_retry = policy ~max_attempts:1 ()

  (* Same splitmix64-style mixing as the fault plane, so a seeded policy
     replays its jitter schedule the way a seeded fault config replays
     its fault schedule.  The per-process nonce decorrelates concurrent
     calls sharing one policy — without it every in-flight call would
     draw the identical backoff for attempt i and the retries would
     stampede in lockstep, which is the failure mode jitter exists to
     break. *)
  let mix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let nonce_counter = Atomic.make 0

  let uniform ~seed ~nonce ~attempt =
    let h =
      mix64
        (Int64.logxor
           (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
           (Int64.logxor
              (Int64.mul (Int64.of_int nonce) 0xBF58476D1CE4E5B9L)
              (Int64.mul (Int64.of_int (attempt + 1)) 0x94D049BB133111EBL)))
    in
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

  let run ~sleep ?breaker p f =
    let nonce = Atomic.fetch_and_add nonce_counter 1 in
    let deadline =
      match p.budget with
      | None -> infinity
      | Some b -> Unix.gettimeofday () +. b
    in
    let report ok =
      match breaker with
      | None -> ()
      | Some b -> if ok then Breaker.on_success b else Breaker.on_failure b
    in
    let rec attempt i prev_backoff =
      (match breaker with
      | Some b when not (Breaker.allow b) -> raise Net.Circuit_open
      | _ -> ());
      match f i with
      | v ->
          report true;
          v
      | exception e ->
          let retryable = p.retryable e in
          (* Non-retryable failures (Remote_error, Protocol_error,
             caller bugs) say nothing about endpoint health, so they
             neither trip nor reset the breaker. *)
          if retryable then report false;
          let remaining = deadline -. Unix.gettimeofday () in
          if (not retryable) || i + 1 >= p.max_attempts || remaining <= 0. then raise e
          else begin
            (* Decorrelated jitter: U(base, 3*prev) capped, never past
               the budget — the budget races the per-op deadlines inside
               [f]; the backoff must not be what overruns it. *)
            let hi =
              Float.min p.max_backoff (Float.max p.base_backoff (prev_backoff *. 3.))
            in
            let u = uniform ~seed:p.seed ~nonce ~attempt:i in
            let d = p.base_backoff +. (u *. (hi -. p.base_backoff)) in
            let d = Float.min d remaining in
            if d > 0. then sleep d;
            if Unix.gettimeofday () >= deadline then raise e else attempt (i + 1) d
          end
    in
    attempt 0 p.base_backoff

  let call (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) ?breaker
      policy f =
    run ~sleep:(fun d -> P.sleep pool d) ?breaker policy f
end

(* --- shared dial helper --- *)

let dial rt ?read_timeout ?write_timeout addr =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Conn.create rt ?read_timeout ?write_timeout fd

(* --- reconnecting pipelined client --- *)

module Client = struct
  type 'p inner = {
    pool_sleep : float -> unit;
    rt : Reactor.t;
    addr : Unix.sockaddr;
    policy : Retry.policy;
    breaker : Breaker.t option;
    read_timeout : float option;
    write_timeout : float option;
    (* Same thread-agnostic lock idiom as Rpc's wlock: the holder may
       suspend (dialing, or racing a close) and resume on another
       worker, so an OS mutex cannot guard [cur]. *)
    lock : bool Atomic.t;
    mutable cur : Rpc.Client.t option;
    reconnect_count : int Atomic.t;
    dialed_once : bool Atomic.t;
    closed : bool Atomic.t;
  }

  type t = C : (module Pool_intf.POOL with type t = 'p) * 'p * 'p inner -> t

  let create (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt
      ?(policy = Retry.policy ()) ?breaker ?read_timeout ?write_timeout addr =
    C
      ( (module P),
        pool,
        {
          pool_sleep = (fun d -> P.sleep pool d);
          rt;
          addr;
          policy;
          breaker;
          read_timeout;
          write_timeout;
          lock = Atomic.make false;
          cur = None;
          reconnect_count = Atomic.make 0;
          dialed_once = Atomic.make false;
          closed = Atomic.make false;
        } )

  let with_lock st f =
    let rec acquire () =
      if not (Atomic.compare_and_set st.lock false true) then begin
        st.pool_sleep 0.0002;
        acquire ()
      end
    in
    acquire ();
    Fun.protect ~finally:(fun () -> Atomic.set st.lock false) f

  (* Reuse the live connection or dial a fresh one.  Dial failures
     (ECONNREFUSED and friends) escape to the retry loop as ordinary
     retryable attempt failures. *)
  let acquire_client (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) st
      =
    with_lock st (fun () ->
        if Atomic.get st.closed then raise Net.Closed;
        match st.cur with
        | Some cl -> cl
        | None ->
            let cl =
              Rpc.Client.connect (module P) pool st.rt ?read_timeout:st.read_timeout
                ?write_timeout:st.write_timeout st.addr
            in
            if Atomic.get st.dialed_once then Atomic.incr st.reconnect_count
            else Atomic.set st.dialed_once true;
            st.cur <- Some cl;
            cl)

  (* The connection just failed a call: drop it so the next attempt
     dials fresh.  Guarded so concurrent failures on the same client
     drop it once, and a client installed by a faster retry survives. *)
  let drop_client st cl =
    with_lock st (fun () ->
        match st.cur with
        | Some c when c == cl -> st.cur <- None
        | _ -> ());
    Rpc.Client.close cl

  let call (C ((module P), pool, st)) payload =
    if Atomic.get st.closed then raise Net.Closed;
    Retry.run ~sleep:st.pool_sleep ?breaker:st.breaker st.policy (fun _attempt ->
        let cl = acquire_client (module P) pool st in
        match P.await pool (Rpc.Client.call cl payload) with
        | v -> v
        | exception e ->
            if st.policy.Retry.retryable e then drop_client st cl;
            raise e)

  let close (C (_, _, st)) =
    if Atomic.compare_and_set st.closed false true then
      let cl = with_lock st (fun () ->
          let c = st.cur in
          st.cur <- None;
          c)
      in
      Option.iter Rpc.Client.close cl

  let reconnects (C (_, _, st)) = Atomic.get st.reconnect_count
end

(* --- reconnecting synchronous client (blocking baselines) --- *)

module Sync_client = struct
  type t = {
    rt : Reactor.t;
    addr : Unix.sockaddr;
    policy : Retry.policy;
    breaker : Breaker.t option;
    read_timeout : float option;
    write_timeout : float option;
    mutable cur : Conn.t option;
    mutable reconnect_count : int;
    mutable dialed_once : bool;
    mutable closed : bool;
  }

  let create rt ?(policy = Retry.policy ()) ?breaker ?read_timeout ?write_timeout addr
      =
    {
      rt;
      addr;
      policy;
      breaker;
      read_timeout;
      write_timeout;
      cur = None;
      reconnect_count = 0;
      dialed_once = false;
      closed = false;
    }

  let acquire c =
    match c.cur with
    | Some conn -> conn
    | None ->
        let conn = dial c.rt ?read_timeout:c.read_timeout ?write_timeout:c.write_timeout c.addr in
        if c.dialed_once then c.reconnect_count <- c.reconnect_count + 1
        else c.dialed_once <- true;
        c.cur <- Some conn;
        conn

  let drop c =
    match c.cur with
    | None -> ()
    | Some conn ->
        c.cur <- None;
        Conn.close conn

  let call c payload =
    if c.closed then raise Net.Closed;
    (* Blocking cost model throughout: the backoff occupies the calling
       worker, exactly like the I/O it paces. *)
    Retry.run ~sleep:(fun d -> Reactor.sleep c.rt d) ?breaker:c.breaker c.policy
      (fun _attempt ->
        let conn = acquire c in
        match Rpc.call_sync conn payload with
        | v -> v
        | exception e ->
            if c.policy.Retry.retryable e then drop c;
            raise e)

  let close c =
    if not c.closed then begin
      c.closed <- true;
      drop c
    end

  let reconnects c = c.reconnect_count
end
