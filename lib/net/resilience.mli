(** Surviving the faults that {!Fault} injects (and the real network
    throws): per-call retries with exponential backoff and decorrelated
    jitter, retry budgets raced against per-operation deadlines, a
    per-endpoint circuit breaker, and reconnecting RPC clients for both
    reactor modes.

    The paper's model calls a latency-incurring operation a {e heavy
    edge}: the fiber suspends, U grows, and the worker moves on.  A
    retry makes the edge heavier — each attempt adds its backoff delay
    to the edge's δ, so a retried call is still {e one} suspension
    point from the scheduler's perspective, just a longer one.  A
    breaker caps how much δ a dead endpoint can inject: once open,
    calls fail in microseconds instead of growing U by a timeout each. *)

(** {1 Circuit breaker}

    One breaker per endpoint.  Closed → counting consecutive failures;
    at [failure_threshold] it opens and {!Breaker.allow} refuses
    everything for [cooldown] seconds; then the next caller becomes a
    half-open probe — its success closes the circuit, its failure
    re-opens it for another cooldown. *)

module Breaker : sig
  type state = Closed | Open | Half_open

  type t

  val create :
    ?failure_threshold:int -> ?cooldown:float -> ?half_open_probes:int -> unit -> t
  (** Defaults: threshold 5, cooldown 1 s, 1 concurrent half-open probe. *)

  val state : t -> state
  (** Reading the state performs the Open → Half_open transition when
      the cooldown has passed, so observers see the same state a caller
      would. *)

  val allow : t -> bool
  (** May a call be issued now?  [false] while Open (cooldown pending)
      or while Half_open with all probe slots taken.  An allowed call
      {e must} report {!on_success} or {!on_failure}. *)

  val on_success : t -> unit
  val on_failure : t -> unit

  val failures : t -> int
  (** Consecutive failures since the last success (while Closed). *)

  val trips : t -> int
  (** Times the circuit has opened. *)
end

(** {1 Retry policies} *)

module Retry : sig
  type policy = {
    max_attempts : int;  (** total attempts, including the first *)
    base_backoff : float;  (** seconds; first backoff is at least this *)
    max_backoff : float;  (** backoff cap, seconds *)
    budget : float option;
        (** total wall-clock allowance for all attempts and backoffs of
            one call.  Races the per-operation deadlines inside the
            attempt ({!Conn} timeouts enforced by the runtime timer):
            whichever runs out first fails the call.  A backoff never
            sleeps past the budget. *)
    seed : int;  (** jitter determinism, like the fault plane's seed *)
    retryable : exn -> bool;
        (** which failures may be retried; doubles as "counts as an
            endpoint failure" for the breaker *)
  }

  val default_retryable : exn -> bool
  (** [Net.Timeout], [Net.Closed], [Net.Peer_closed], [End_of_file] and
      transient [Unix_error]s (refused / reset / aborted / pipe /
      unreachable / timed out).  [Net.Protocol_error],
      [Net.Remote_error] and [Net.Circuit_open] are {e not} retryable:
      the first means the stream is garbage, the second that the
      request failed deterministically on a live server, the third that
      a breaker already said stop. *)

  val policy :
    ?max_attempts:int ->
    ?base_backoff:float ->
    ?max_backoff:float ->
    ?budget:float ->
    ?seed:int ->
    ?retryable:(exn -> bool) ->
    unit ->
    policy
  (** Defaults: 4 attempts, 1 ms base, 100 ms cap, no budget, seed 0,
      {!default_retryable}. *)

  val no_retry : policy
  (** One attempt, no backoff — breaker-only wiring. *)

  val run :
    sleep:(float -> unit) -> ?breaker:Breaker.t -> policy -> (int -> 'a) -> 'a
  (** [run ~sleep policy f] calls [f attempt] (0-based) until it
      returns, fails non-retryably, exhausts [max_attempts], or
      overruns [budget] — the last underlying exception is re-raised.
      Between attempts it sleeps a decorrelated-jitter backoff
      ([U(base, 3·prev)] capped at [max_backoff], clamped to the
      remaining budget).  [sleep] decides the cost model: [P.sleep] on
      a pool suspends the fiber, [Unix.sleepf] blocks the thread.
      With [breaker], each attempt first asks {!Breaker.allow} (raising
      [Net.Circuit_open] when refused) and reports its outcome back;
      only [retryable]-class failures count against the endpoint. *)

  val call :
    (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
    'p ->
    ?breaker:Breaker.t ->
    policy ->
    (int -> 'a) ->
    'a
  (** {!run} with the pool's [sleep] — backoffs suspend instead of
      holding a worker on suspension-capable pools. *)
end

(** {1 Reconnecting clients} *)

(** A pipelined {!Rpc.Client} wrapper that owns (re)connection: calls
    go through the retry/breaker path, and a connection that dies
    ([Net.Closed] / [Net.Peer_closed] / reset) is dropped and re-dialed
    on the next attempt.  For suspension-capable pools ({!Rpc.Client}'s
    own caveats apply). *)
module Client : sig
  type t

  val create :
    (module Lhws_workloads.Pool_intf.POOL with type t = 'p) ->
    'p ->
    Reactor.t ->
    ?policy:Retry.policy ->
    ?breaker:Breaker.t ->
    ?read_timeout:float ->
    ?write_timeout:float ->
    Unix.sockaddr ->
    t
  (** Connects lazily: the first {!call} dials, so a refused endpoint
      is a retryable call failure, not a constructor exception. *)

  val call : t -> bytes -> bytes
  (** One resilient round-trip (awaits internally).
      @raise Net.Circuit_open when the breaker refuses.
      @raise Net.Closed after {!close}. *)

  val close : t -> unit

  val reconnects : t -> int
  (** Successful dials beyond the first. *)
end

(** Synchronous counterpart over {!Rpc.call_sync} for blocking pools;
    backoffs block the calling worker (that is the baseline's cost
    model).  Not thread-safe — callers serialise access per client, as
    {!Net_map_reduce} does with its per-connection mutexes. *)
module Sync_client : sig
  type t

  val create :
    Reactor.t ->
    ?policy:Retry.policy ->
    ?breaker:Breaker.t ->
    ?read_timeout:float ->
    ?write_timeout:float ->
    Unix.sockaddr ->
    t

  val call : t -> bytes -> bytes
  val close : t -> unit
  val reconnects : t -> int
end
