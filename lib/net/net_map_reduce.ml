(* The paper's Figure 11 shape over real sockets: a parallel map-reduce
   whose map inputs are fetched from a remote data server, with the
   per-fetch latency δ induced server-side.  The client pool holds a
   small fixed set of connections; the latency-hiding pool pipelines all
   outstanding fetches over them (each fetch is a heavy edge — the fiber
   suspends, U grows, workers keep computing), while a blocking pool
   occupies one connection per blocked task, serialising the δs. *)

module Pool_intf = Lhws_workloads.Pool_intf
module W = Lhws_workloads

let value_of key = (key * 2654435761) land 0xFFFF

let encode_key key =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int key);
  b

let decode_value b =
  if Bytes.length b <> 8 then raise (Net.Protocol_error "data server: bad value frame");
  Int64.to_int (Bytes.get_int64_be b 0)

let expected ~n ~fib_n =
  let fib = W.Fib.seq fib_n in
  let rec go i acc = if i >= n then acc else go (i + 1) (acc + value_of i + fib) in
  go 0 0

(* --- the data server: threaded-blocking, in its own domain ---

   Its own domain because its handler threads would otherwise contend on
   the client pool domain's runtime lock; threaded-blocking because a
   data store that parks one thread per request while δ elapses is the
   realistic peer the paper measures against. *)

type server = { stop : bool Atomic.t; domain : unit Domain.t; addr : Unix.sockaddr }

let start_data_server ?(delta = 0.) () =
  let stop = Atomic.make false in
  let addr_slot = Atomic.make None in
  let handler payload =
    let key = Int64.to_int (Bytes.get_int64_be payload 0) in
    if delta > 0. then Unix.sleepf delta;
    encode_key (value_of key)
  in
  let domain =
    Domain.spawn (fun () ->
        let module P = Pool_intf.Threaded_instance in
        let pool = P.create () in
        Fun.protect
          ~finally:(fun () -> P.shutdown pool)
          (fun () ->
            P.run pool (fun () ->
                let rt = Reactor.blocking () in
                let l =
                  Rpc.serve (module P) pool rt
                    (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
                    ~handler
                in
                Atomic.set addr_slot (Some (Listener.addr l));
                while not (Atomic.get stop) do
                  Unix.sleepf 0.002
                done;
                Listener.shutdown ~grace:1. l)))
  in
  let rec await_addr () =
    match Atomic.get addr_slot with
    | Some addr -> addr
    | None ->
        Unix.sleepf 0.001;
        await_addr ()
  in
  { stop; domain; addr = await_addr () }

let addr s = s.addr

let stop_data_server s =
  Atomic.set s.stop true;
  Domain.join s.domain

let with_data_server ?delta f =
  let s = start_data_server ?delta () in
  Fun.protect ~finally:(fun () -> stop_data_server s) (fun () -> f s.addr)

(* --- the client-side workload --- *)

let fetch_pipelined (clients : Rpc.Client.t array) (type p)
    (module P : Pool_intf.POOL with type t = p) (pool : p) i =
  decode_value (P.await pool (Rpc.Client.call clients.(i mod Array.length clients) (encode_key i)))

let fetch_blocking conns mus i =
  let k = i mod Array.length conns in
  Mutex.lock mus.(k);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mus.(k))
    (fun () -> decode_value (Rpc.call_sync conns.(k) (encode_key i)))

(* Resilient fetch paths: same connection discipline as the plain ones,
   but each fetch goes through the retry/breaker machinery and a dead
   connection re-dials instead of failing the whole reduction. *)
let fetch_resilient (clients : Resilience.Client.t array) i =
  decode_value (Resilience.Client.call clients.(i mod Array.length clients) (encode_key i))

let fetch_resilient_sync (clients : Resilience.Sync_client.t array) mus i =
  let k = i mod Array.length clients in
  Mutex.lock mus.(k);
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mus.(k))
    (fun () -> decode_value (Resilience.Sync_client.call clients.(k) (encode_key i)))

let run (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) rt ~addr ~n
    ?(conns = 2) ?(fib_n = 10) ?retry ?breaker () =
  if conns < 1 then invalid_arg "Net_map_reduce.run: conns must be >= 1";
  let map fetch i = fetch i + W.Fib.seq fib_n in
  let reduce fetch =
    P.parallel_map_reduce pool ~lo:0 ~hi:n ~map:(map fetch) ~combine:( + ) ~id:0
  in
  match retry with
  | Some policy ->
      (* The breaker (if any) is shared across the connections: it judges
         the endpoint, not a socket. *)
      if Reactor.is_fibers rt then begin
        let clients =
          Array.init conns (fun _ ->
              Resilience.Client.create (module P) pool rt ~policy ?breaker addr)
        in
        Fun.protect
          ~finally:(fun () -> Array.iter Resilience.Client.close clients)
          (fun () -> reduce (fetch_resilient clients))
      end
      else begin
        let clients =
          Array.init conns (fun _ -> Resilience.Sync_client.create rt ~policy ?breaker addr)
        in
        let mus = Array.init conns (fun _ -> Mutex.create ()) in
        Fun.protect
          ~finally:(fun () -> Array.iter Resilience.Sync_client.close clients)
          (fun () -> reduce (fetch_resilient_sync clients mus))
      end
  | None ->
      if Reactor.is_fibers rt then begin
        let clients = Array.init conns (fun _ -> Rpc.Client.connect (module P) pool rt addr) in
        Fun.protect
          ~finally:(fun () -> Array.iter Rpc.Client.close clients)
          (fun () -> reduce (fetch_pipelined clients (module P) pool))
      end
      else begin
        let connect () =
          let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
          (try Unix.connect fd addr
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise e);
          Conn.create rt fd
        in
        let cs = Array.init conns (fun _ -> connect ()) in
        let mus = Array.init conns (fun _ -> Mutex.create ()) in
        Fun.protect
          ~finally:(fun () -> Array.iter Conn.close cs)
          (fun () -> reduce (fetch_blocking cs mus))
      end

(* The reduction pinned to a topology class: the whole fetch-and-compute
   job becomes a root task of that class's pool (batch, typically), so
   it can share a process with a latency class without ever running on
   the latency class's workers — scavenging aside, which only moves
   fresh tasks the other way if an edge says so. *)
(* The member's own [run] is held by the topology's driver domain, so
   the reduction travels the pool-pinned submit path ([Topology.run])
   and, once on a member worker, unpacks the pool to spawn its fetch
   fibers. *)
let run_class topo ~class_ rt ~addr ~n ?conns ?fib_n ?retry ?breaker () =
  W.Topology.run topo ~class_ (fun () ->
      W.Topology.use topo ~class_
        {
          W.Topology.use =
            (fun (type p) (module P : Pool_intf.POOL with type t = p) (pool : p) ->
              run (module P) pool rt ~addr ~n ?conns ?fib_n ?retry ?breaker ());
        })
